// Package repro reproduces Georgiades, Mavronicolas and Spirakis,
// "Optimal, Distributed Decision-Making: The Case of No Communication"
// (FCT 1999) as a production-quality Go library.
//
// The implementation lives under internal/: see internal/core for the
// task-oriented API, internal/obs for the dependency-free observability
// layer (metrics, spans, JSONL run logs) threaded through the simulation
// and optimization engines, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root package exists to carry the module documentation and the
// benchmark harness (bench_test.go), which regenerates every table and
// figure of the paper's evaluation under `go test -bench` — including the
// paired benchmarks bounding the telemetry layer's no-op overhead.
package repro
