// Command benchjson converts `go test -bench -benchmem` output into a
// JSON perf-trajectory file, so benchmark runs can be snapshotted,
// diffed, and checked for regressions over the life of the repo.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -label post-batch -out BENCH_sim.json
//
// Each invocation parses one benchmark run from stdin and merges it into
// the output file as a labeled snapshot (replacing any existing snapshot
// with the same label, so re-runs stay idempotent). Snapshots keep the
// raw benchmark lines alongside the parsed numbers, so `benchstat` can
// still compare any two snapshots after extracting the raw text.
//
// With -check OLD,NEW the command instead compares two stored snapshots
// and exits non-zero when a benchmark in NEW is more than -tolerance
// slower (ns/op) than in OLD, or allocates more — the regression gate.
// Two extra knobs turn the gate into an improvement gate: -match RE
// restricts the comparison to benchmarks whose name matches the regexp,
// and -improve R requires every compared benchmark in NEW to be at least
// R× faster than OLD (NEW ns/op ≤ OLD/R) instead of merely not slower.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iters is the measured iteration count.
	Iters int64 `json:"iters"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the reported per-operation
	// costs; BytesPerOp and AllocsPerOp are -1 when -benchmem was off.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Raw is the original output line, for benchstat replay.
	Raw string `json:"raw"`
}

// Snapshot is one labeled benchmark run.
type Snapshot struct {
	// Label names the snapshot (e.g. "baseline", "post-batch").
	Label string `json:"label"`
	// Recorded is the RFC 3339 capture time.
	Recorded string `json:"recorded"`
	// Goos/Goarch/CPU echo the run's environment header lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks holds the parsed results, sorted by name.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the on-disk BENCH_sim.json shape.
type File struct {
	// Snapshots is the perf trajectory, in insertion order.
	Snapshots []Snapshot `json:"snapshots"`
}

// benchLine matches `BenchmarkName-P  iters  12.3 ns/op [45 B/op  6 allocs/op]`.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parse reads one `go test -bench` run.
func parse(r io.Reader) (Snapshot, error) {
	var s Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Procs: 1, BytesPerOp: -1, AllocsPerOp: -1, Raw: line}
		if m[2] != "" {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				return s, fmt.Errorf("benchjson: bad procs in %q: %w", line, err)
			}
			b.Procs = p
		}
		var err error
		if b.Iters, err = strconv.ParseInt(m[3], 10, 64); err != nil {
			return s, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
			return s, fmt.Errorf("benchjson: bad ns/op in %q: %w", line, err)
		}
		if m[5] != "" {
			if b.BytesPerOp, err = strconv.ParseFloat(m[5], 64); err != nil {
				return s, fmt.Errorf("benchjson: bad B/op in %q: %w", line, err)
			}
		}
		if m[6] != "" {
			if b.AllocsPerOp, err = strconv.ParseInt(m[6], 10, 64); err != nil {
				return s, fmt.Errorf("benchjson: bad allocs/op in %q: %w", line, err)
			}
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	sort.Slice(s.Benchmarks, func(i, j int) bool {
		if s.Benchmarks[i].Name != s.Benchmarks[j].Name {
			return s.Benchmarks[i].Name < s.Benchmarks[j].Name
		}
		return s.Benchmarks[i].Procs < s.Benchmarks[j].Procs
	})
	return s, nil
}

// load reads an existing trajectory file; a missing file is an empty one.
func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return f, nil
}

// merge inserts s into f, replacing any snapshot with the same label.
func merge(f *File, s Snapshot) {
	for i := range f.Snapshots {
		if f.Snapshots[i].Label == s.Label {
			f.Snapshots[i] = s
			return
		}
	}
	f.Snapshots = append(f.Snapshots, s)
}

// find returns the snapshot with the given label.
func find(f File, label string) (Snapshot, error) {
	for _, s := range f.Snapshots {
		if s.Label == label {
			return s, nil
		}
	}
	return Snapshot{}, fmt.Errorf("benchjson: no snapshot labeled %q", label)
}

// check compares NEW against OLD benchmark-by-benchmark and returns the
// human-readable regressions: ns/op growth beyond tol (a ratio; 0.10 is
// +10%) or any allocs/op growth. A non-nil match restricts the comparison
// to benchmarks whose name matches; improve > 0 additionally requires
// every compared benchmark to be at least improve× faster in NEW
// (NEW ns/op ≤ OLD/improve) — the perf-PR gate, where "no slower" is not
// good enough. Benchmarks present in only one snapshot are skipped — the
// gate only judges comparable pairs.
func check(old, new Snapshot, tol, improve float64, match *regexp.Regexp) []string {
	byKey := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byKey[fmt.Sprintf("%s-%d", b.Name, b.Procs)] = b
	}
	var bad []string
	compared := 0
	for _, nb := range new.Benchmarks {
		if match != nil && !match.MatchString(nb.Name) {
			continue
		}
		ob, ok := byKey[fmt.Sprintf("%s-%d", nb.Name, nb.Procs)]
		if !ok {
			continue
		}
		compared++
		if improve > 0 {
			if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp/improve {
				bad = append(bad, fmt.Sprintf("%s: %.2f ns/op -> %.2f ns/op (%.2fx, required ≥%.2fx faster)",
					nb.Name, ob.NsPerOp, nb.NsPerOp, ob.NsPerOp/nb.NsPerOp, improve))
			}
		} else if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (+%.1f%%, tolerance %.0f%%)",
				nb.Name, ob.NsPerOp, nb.NsPerOp, 100*(nb.NsPerOp/ob.NsPerOp-1), 100*tol))
		}
		if ob.AllocsPerOp >= 0 && nb.AllocsPerOp > ob.AllocsPerOp {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op -> %d allocs/op",
				nb.Name, ob.AllocsPerOp, nb.AllocsPerOp))
		}
	}
	if compared == 0 {
		bad = append(bad, fmt.Sprintf("no comparable benchmarks between %q and %q (match=%v)",
			old.Label, new.Label, match))
	}
	return bad
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_sim.json", "trajectory file to update (or read with -check)")
	label := fs.String("label", "", "snapshot label to record (required unless -check)")
	checkPair := fs.String("check", "", "compare two stored snapshots: OLD,NEW")
	tol := fs.Float64("tolerance", 0.10, "allowed ns/op growth ratio for -check")
	improve := fs.Float64("improve", 0, "require NEW ≥ this ratio faster than OLD for -check (0 = regression gate)")
	matchRE := fs.String("match", "", "restrict -check to benchmarks whose name matches this regexp")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var match *regexp.Regexp
	if *matchRE != "" {
		var err error
		if match, err = regexp.Compile(*matchRE); err != nil {
			return fmt.Errorf("benchjson: bad -match regexp: %w", err)
		}
	}
	if *improve < 0 {
		return fmt.Errorf("benchjson: -improve must be non-negative, got %v", *improve)
	}
	f, err := load(*out)
	if err != nil {
		return err
	}
	if *checkPair != "" {
		labels := strings.Split(*checkPair, ",")
		if len(labels) != 2 {
			return fmt.Errorf("benchjson: -check wants OLD,NEW, got %q", *checkPair)
		}
		old, err := find(f, strings.TrimSpace(labels[0]))
		if err != nil {
			return err
		}
		new, err := find(f, strings.TrimSpace(labels[1]))
		if err != nil {
			return err
		}
		if bad := check(old, new, *tol, *improve, match); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintln(stderr, "regression:", line)
			}
			return fmt.Errorf("benchjson: %d benchmark regression(s) from %q to %q", len(bad), old.Label, new.Label)
		}
		if *improve > 0 {
			fmt.Fprintf(stdout, "benchjson: all compared benchmarks ≥%gx faster from %q to %q\n", *improve, old.Label, new.Label)
		} else {
			fmt.Fprintf(stdout, "benchjson: no regressions from %q to %q\n", old.Label, new.Label)
		}
		return nil
	}
	if *label == "" {
		return fmt.Errorf("benchjson: -label is required when recording")
	}
	s, err := parse(stdin)
	if err != nil {
		return err
	}
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin (did you pass -bench?)")
	}
	s.Label = *label
	s.Recorded = time.Now().UTC().Format(time.RFC3339)
	merge(&f, s)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchjson: recorded %d benchmark(s) as %q in %s\n", len(s.Benchmarks), s.Label, *out)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
