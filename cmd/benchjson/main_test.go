package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel Xeon
BenchmarkSimulation-1   	     142	   8606587 ns/op	 3962688 B/op	  165101 allocs/op
BenchmarkObsOverhead/baseline         	     126	   9400630 ns/op
BenchmarkQuick-8   	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	4.2s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || s.CPU != "Intel Xeon" {
		t.Errorf("env = %q/%q/%q", s.Goos, s.Goarch, s.CPU)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	// Sorted by name.
	obs, quick, sim := s.Benchmarks[0], s.Benchmarks[1], s.Benchmarks[2]
	if obs.Name != "BenchmarkObsOverhead/baseline" || obs.Procs != 1 {
		t.Errorf("obs = %+v", obs)
	}
	if obs.BytesPerOp != -1 || obs.AllocsPerOp != -1 {
		t.Errorf("missing -benchmem fields should be -1, got %+v", obs)
	}
	if sim.Name != "BenchmarkSimulation" || sim.Iters != 142 || sim.NsPerOp != 8606587 ||
		sim.BytesPerOp != 3962688 || sim.AllocsPerOp != 165101 {
		t.Errorf("sim = %+v", sim)
	}
	if quick.Procs != 8 || quick.NsPerOp != 1042 || quick.AllocsPerOp != 0 {
		t.Errorf("quick = %+v", quick)
	}
}

func TestRecordMergeAndCheck(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_sim.json")
	var stdout, stderr bytes.Buffer

	record := func(label, run string) error {
		t.Helper()
		return runCmd(t, []string{"-label", label, "-out", out}, run, &stdout, &stderr)
	}
	if err := record("baseline", sampleRun); err != nil {
		t.Fatal(err)
	}
	faster := strings.Replace(sampleRun, "8606587 ns/op	 3962688 B/op	  165101 allocs/op",
		"2260207 ns/op	     320 B/op	      28 allocs/op", 1)
	if err := record("post-batch", faster); err != nil {
		t.Fatal(err)
	}
	// Re-recording a label replaces, not appends.
	if err := record("post-batch", faster); err != nil {
		t.Fatal(err)
	}
	f, err := load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 2 {
		t.Fatalf("%d snapshots, want 2 (idempotent labels)", len(f.Snapshots))
	}
	if f.Snapshots[0].Label != "baseline" || f.Snapshots[1].Label != "post-batch" {
		t.Errorf("labels = %q, %q", f.Snapshots[0].Label, f.Snapshots[1].Label)
	}

	// Improvement passes the gate; the reverse direction fails it.
	if err := runCmd(t, []string{"-out", out, "-check", "baseline,post-batch"}, "", &stdout, &stderr); err != nil {
		t.Errorf("improvement flagged as regression: %v\n%s", err, stderr.String())
	}
	err = runCmd(t, []string{"-out", out, "-check", "post-batch,baseline"}, "", &stdout, &stderr)
	if err == nil {
		t.Error("regression not flagged")
	}
	if !strings.Contains(stderr.String(), "BenchmarkSimulation") {
		t.Errorf("regression output missing benchmark name:\n%s", stderr.String())
	}
}

func TestRecordRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "b.json")
	var stdout, stderr bytes.Buffer
	if err := runCmd(t, []string{"-label", "x", "-out", out}, "no benchmarks here\n", &stdout, &stderr); err == nil {
		t.Error("expected an error for input without benchmark lines")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("output file written despite parse failure")
	}
}

func runCmd(t *testing.T, args []string, stdin string, stdout, stderr *bytes.Buffer) error {
	t.Helper()
	return run(args, strings.NewReader(stdin), stdout, stderr)
}
