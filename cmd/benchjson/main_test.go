package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel Xeon
BenchmarkSimulation-1   	     142	   8606587 ns/op	 3962688 B/op	  165101 allocs/op
BenchmarkObsOverhead/baseline         	     126	   9400630 ns/op
BenchmarkQuick-8   	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	4.2s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || s.CPU != "Intel Xeon" {
		t.Errorf("env = %q/%q/%q", s.Goos, s.Goarch, s.CPU)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	// Sorted by name.
	obs, quick, sim := s.Benchmarks[0], s.Benchmarks[1], s.Benchmarks[2]
	if obs.Name != "BenchmarkObsOverhead/baseline" || obs.Procs != 1 {
		t.Errorf("obs = %+v", obs)
	}
	if obs.BytesPerOp != -1 || obs.AllocsPerOp != -1 {
		t.Errorf("missing -benchmem fields should be -1, got %+v", obs)
	}
	if sim.Name != "BenchmarkSimulation" || sim.Iters != 142 || sim.NsPerOp != 8606587 ||
		sim.BytesPerOp != 3962688 || sim.AllocsPerOp != 165101 {
		t.Errorf("sim = %+v", sim)
	}
	if quick.Procs != 8 || quick.NsPerOp != 1042 || quick.AllocsPerOp != 0 {
		t.Errorf("quick = %+v", quick)
	}
}

func TestRecordMergeAndCheck(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_sim.json")
	var stdout, stderr bytes.Buffer

	record := func(label, run string) error {
		t.Helper()
		return runCmd(t, []string{"-label", label, "-out", out}, run, &stdout, &stderr)
	}
	if err := record("baseline", sampleRun); err != nil {
		t.Fatal(err)
	}
	faster := strings.Replace(sampleRun, "8606587 ns/op	 3962688 B/op	  165101 allocs/op",
		"2260207 ns/op	     320 B/op	      28 allocs/op", 1)
	if err := record("post-batch", faster); err != nil {
		t.Fatal(err)
	}
	// Re-recording a label replaces, not appends.
	if err := record("post-batch", faster); err != nil {
		t.Fatal(err)
	}
	f, err := load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Snapshots) != 2 {
		t.Fatalf("%d snapshots, want 2 (idempotent labels)", len(f.Snapshots))
	}
	if f.Snapshots[0].Label != "baseline" || f.Snapshots[1].Label != "post-batch" {
		t.Errorf("labels = %q, %q", f.Snapshots[0].Label, f.Snapshots[1].Label)
	}

	// Improvement passes the gate; the reverse direction fails it.
	if err := runCmd(t, []string{"-out", out, "-check", "baseline,post-batch"}, "", &stdout, &stderr); err != nil {
		t.Errorf("improvement flagged as regression: %v\n%s", err, stderr.String())
	}
	err = runCmd(t, []string{"-out", out, "-check", "post-batch,baseline"}, "", &stdout, &stderr)
	if err == nil {
		t.Error("regression not flagged")
	}
	if !strings.Contains(stderr.String(), "BenchmarkSimulation") {
		t.Errorf("regression output missing benchmark name:\n%s", stderr.String())
	}
}

// TestImproveAndMatchGate covers the perf-PR knobs: -improve requires a
// minimum speedup ratio (not merely "no slower"), and -match restricts
// the comparison to a benchmark subset.
func TestImproveAndMatchGate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_sim.json")
	var stdout, stderr bytes.Buffer
	if err := runCmd(t, []string{"-label", "old", "-out", out}, sampleRun, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// Simulation 2x faster, Quick unchanged.
	faster := strings.Replace(sampleRun, "8606587 ns/op", "4303293 ns/op", 1)
	if err := runCmd(t, []string{"-label", "new", "-out", out}, faster, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}

	// 1.5x required, 2x delivered on the matched subset: pass.
	if err := runCmd(t, []string{"-out", out, "-check", "old,new", "-improve", "1.5",
		"-match", "^BenchmarkSimulation$"}, "", &stdout, &stderr); err != nil {
		t.Errorf("2x speedup failed a 1.5x gate: %v\n%s", err, stderr.String())
	}
	// 3x required: fail, naming the benchmark.
	stderr.Reset()
	if err := runCmd(t, []string{"-out", out, "-check", "old,new", "-improve", "3",
		"-match", "^BenchmarkSimulation$"}, "", &stdout, &stderr); err == nil {
		t.Error("2x speedup passed a 3x gate")
	} else if !strings.Contains(stderr.String(), "BenchmarkSimulation") {
		t.Errorf("gate failure output missing benchmark name:\n%s", stderr.String())
	}
	// Unmatched -improve over the whole set: Quick is unchanged, fail.
	if err := runCmd(t, []string{"-out", out, "-check", "old,new", "-improve", "1.5"}, "", &stdout, &stderr); err == nil {
		t.Error("unchanged benchmark passed a 1.5x improvement gate")
	}
	// -match with no survivors must fail loudly, not silently pass.
	if err := runCmd(t, []string{"-out", out, "-check", "old,new", "-match", "NoSuchBenchmark"}, "", &stdout, &stderr); err == nil {
		t.Error("empty comparison set passed the gate")
	}
	// -match still applies to the plain regression gate.
	slower := strings.Replace(sampleRun, "1042 ns/op", "9042 ns/op", 1)
	if err := runCmd(t, []string{"-label", "slow-quick", "-out", out}, slower, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := runCmd(t, []string{"-out", out, "-check", "old,slow-quick",
		"-match", "^BenchmarkSimulation$"}, "", &stdout, &stderr); err != nil {
		t.Errorf("-match failed to exclude the regressed benchmark: %v", err)
	}
	if err := runCmd(t, []string{"-out", out, "-check", "old,slow-quick"}, "", &stdout, &stderr); err == nil {
		t.Error("regression in unmatched run not flagged without -match")
	}
	// Bad flags.
	if err := runCmd(t, []string{"-out", out, "-check", "old,new", "-improve", "-2"}, "", &stdout, &stderr); err == nil {
		t.Error("negative -improve accepted")
	}
	if err := runCmd(t, []string{"-out", out, "-check", "old,new", "-match", "("}, "", &stdout, &stderr); err == nil {
		t.Error("invalid -match regexp accepted")
	}
}

func TestRecordRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "b.json")
	var stdout, stderr bytes.Buffer
	if err := runCmd(t, []string{"-label", "x", "-out", out}, "no benchmarks here\n", &stdout, &stderr); err == nil {
		t.Error("expected an error for input without benchmark lines")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("output file written despite parse failure")
	}
}

func runCmd(t *testing.T, args []string, stdin string, stdout, stderr *bytes.Buffer) error {
	t.Helper()
	return run(args, strings.NewReader(stdin), stdout, stderr)
}
