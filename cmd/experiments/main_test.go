package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/obs"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration is slow")
	}
	dir := t.TempDir()
	obsLog := filepath.Join(dir, "run.jsonl")
	if err := run([]string{"-out", dir, "-trials", "20000", "-points", "21", "-obs", obsLog}); err != nil {
		t.Fatal(err)
	}
	wantFiles := []string{
		"f1.csv", "f1.svg", "f2.csv", "f2.svg", "f3.csv", "f3.svg",
		"t1.txt", "t1.csv", "t1.md", "t2.txt", "t2.csv", "t2.md",
		"t3.txt", "t3.csv", "t3.md", "t4.txt", "t4.csv", "t4.md",
		"t5.txt", "t5.csv", "t5.md", "t6.txt", "t6.csv", "t6.md",
		"t7.txt", "t7.csv", "t7.md", "t8.txt", "t8.csv", "t8.md", "t9.txt", "t9.csv", "t9.md",
		"v1.txt", "v1.csv", "v1.md",
		"summary.txt",
	}
	for _, f := range wantFiles {
		path := filepath.Join(dir, f)
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s is empty", f)
		}
	}
	summary, err := os.ReadFile(filepath.Join(dir, "summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.622036", "0.677998", "T4", "V1"} {
		if !strings.Contains(string(summary), want) {
			t.Errorf("summary missing %q", want)
		}
	}

	// The observability log must hold one root span per experiment plus a
	// final metrics snapshot.
	f, err := os.Open(obsLog)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	roots := map[string]int{}
	sawSnapshot := false
	for _, ev := range events {
		if ev.Type == obs.EventSpanStart && ev.Parent == 0 && strings.HasPrefix(ev.Name, "experiment.") {
			roots[ev.Name]++
		}
		if ev.Type == obs.EventSnapshot {
			sawSnapshot = true
		}
	}
	for _, id := range harness.IDs() {
		if roots["experiment."+id] != 1 {
			t.Errorf("experiment %s has %d root spans, want 1", id, roots["experiment."+id])
		}
	}
	if !sawSnapshot {
		t.Error("run log lacks the final metrics snapshot")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag: expected error")
	}
}
