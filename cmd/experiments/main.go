// Command experiments regenerates every table and figure of the
// reproduction in one run, writing text, CSV and SVG artifacts into an
// output directory (default ./results). This is the one-button path behind
// EXPERIMENTS.md. With -obs it also writes a JSONL observability run log
// (one root span per experiment, simulation convergence traces, final
// metric snapshot) that `nocomm metrics` can replay, and -metrics prints a
// per-experiment wall-time snapshot on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	outDir := fs.String("out", "results", "output directory")
	trials := fs.Int("trials", 400_000, "Monte-Carlo trials for simulated columns")
	points := fs.Int("points", 201, "sweep points per figure curve")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS)")
	backend := fs.String("backend", "auto", "evaluation backend: exact, mc, mc-qmc or auto")
	replicates := fs.Int("replicates", 0, "scrambled randomizations per estimate (mc-qmc backend, 0 = default 16)")
	piStr := fs.String("pi", "", "comma-separated per-player input ranges π_i for experiments that accept heterogeneous instances (e.g. T10)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (empty = in-memory cache only)")
	obsPath := fs.String("obs", "", "append a JSONL observability run log to this file")
	metrics := fs.Bool("metrics", false, "print a JSON metrics snapshot on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("creating output directory: %w", err)
	}
	var o *obs.Observer
	if *obsPath != "" || *metrics {
		var sink *obs.Sink
		if *obsPath != "" {
			f, ferr := os.OpenFile(*obsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if ferr != nil {
				return fmt.Errorf("opening -obs log: %w", ferr)
			}
			defer func() {
				o.EmitSnapshot()
				if serr := sink.Err(); serr != nil && err == nil {
					err = serr
				}
				if cerr := f.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}()
			sink = obs.NewSink(f)
		}
		o = obs.New(obs.NewRegistry(), sink)
	}
	b, err := engine.ParseBackend(*backend)
	if err != nil {
		return err
	}
	pi, err := problem.ParsePi(*piStr)
	if err != nil {
		return err
	}
	st, err := store.New(store.Options{Dir: *cacheDir, Obs: o})
	if err != nil {
		return err
	}
	cfg := sim.Config{Trials: *trials, Seed: *seed, Workers: *workers, Replicates: *replicates, Obs: o}
	// One shared engine so evaluations repeated across experiments (e.g. the
	// same (n, δ, rule) point appearing in a figure and a table) are served
	// from the memoization cache, and so -metrics shows one hit/miss tally.
	// With -cache-dir the cache additionally persists across runs.
	eng := engine.New(engine.Config{Sim: cfg, Obs: o, ExactWorkers: cfg.Workers, Store: st})
	params := harness.Params{Points: *points, Sim: cfg, Backend: b, Pi: pi, Engine: eng}
	var summary strings.Builder
	for _, id := range harness.IDs() {
		exp, err := harness.Lookup(id)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s: %s ===\n", exp.ID, exp.Title)
		out, err := exp.Run(o, params)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		base := strings.ToLower(id)
		switch {
		case out.Figure != nil:
			fig := out.Figure
			ascii, err := fig.ASCII(0, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println(ascii)
			summary.WriteString(ascii + "\n")
			svg, err := fig.SVG(0, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, base+".svg"), []byte(svg), 0o644); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, base+".csv"))
			if err != nil {
				return err
			}
			err = fig.WriteCSV(f)
			cerr := f.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
		case out.Table != nil:
			tab := out.Table
			text, err := tab.Render()
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println(text)
			summary.WriteString(text + "\n")
			if err := os.WriteFile(filepath.Join(*outDir, base+".txt"), []byte(text), 0o644); err != nil {
				return err
			}
			md, err := tab.Markdown()
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, base+".md"), []byte(md), 0o644); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, base+".csv"))
			if err != nil {
				return err
			}
			err = tab.WriteCSV(f)
			cerr := f.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
		}
	}
	if err := os.WriteFile(filepath.Join(*outDir, "summary.txt"), []byte(summary.String()), 0o644); err != nil {
		return err
	}
	fmt.Println("all artifacts written to", *outDir)
	if *metrics {
		if err := o.Metrics.Snapshot().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
