// Command experiments regenerates every table and figure of the
// reproduction in one run, writing text, CSV and SVG artifacts into an
// output directory (default ./results). This is the one-button path behind
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	outDir := fs.String("out", "results", "output directory")
	trials := fs.Int("trials", 400_000, "Monte-Carlo trials for simulated columns")
	points := fs.Int("points", 201, "sweep points per figure curve")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("creating output directory: %w", err)
	}
	cfg := sim.Config{Trials: *trials, Seed: *seed}
	var summary strings.Builder
	for _, id := range harness.IDs() {
		exp, err := harness.Lookup(id)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s: %s ===\n", exp.ID, exp.Title)
		switch exp.Kind {
		case harness.KindFigure:
			fig, err := exp.RunFigure(*points)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			ascii, err := fig.ASCII(0, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println(ascii)
			summary.WriteString(ascii + "\n")
			svg, err := fig.SVG(0, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			base := strings.ToLower(id)
			if err := os.WriteFile(filepath.Join(*outDir, base+".svg"), []byte(svg), 0o644); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, base+".csv"))
			if err != nil {
				return err
			}
			err = fig.WriteCSV(f)
			cerr := f.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
		case harness.KindTable:
			tab, err := exp.RunTable(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			text, err := tab.Render()
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println(text)
			summary.WriteString(text + "\n")
			base := strings.ToLower(id)
			if err := os.WriteFile(filepath.Join(*outDir, base+".txt"), []byte(text), 0o644); err != nil {
				return err
			}
			md, err := tab.Markdown()
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, base+".md"), []byte(md), 0o644); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, base+".csv"))
			if err != nil {
				return err
			}
			err = tab.WriteCSV(f)
			cerr := f.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
		}
	}
	if err := os.WriteFile(filepath.Join(*outDir, "summary.txt"), []byte(summary.String()), 0o644); err != nil {
		return err
	}
	fmt.Println("all artifacts written to", *outDir)
	return nil
}
