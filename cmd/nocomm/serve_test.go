package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestServeHelpGolden pins `nocomm serve -h` byte-for-byte: the endpoint
// catalog and flag defaults are part of the operator contract.
func TestServeHelpGolden(t *testing.T) {
	got := captureStdout(t, func() error { return run([]string{"serve", "-h"}) })
	path := filepath.Join("testdata", "serve_help.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestServeBadFlags checks flag errors surface as errors, not as help.
func TestServeBadFlags(t *testing.T) {
	if err := run([]string{"serve", "-definitely-not-a-flag"}); err == nil {
		t.Fatal("expected error for unknown flag")
	}
	if err := run([]string{"serve", "-addr"}); err == nil {
		t.Fatal("expected error for missing flag value")
	}
}
