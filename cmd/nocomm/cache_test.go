package main

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestCacheGolden pins the `nocomm cache` subcommand byte-for-byte: the
// stats view over a freshly-filled directory, the purge report, and the
// stats view of the emptied directory. The test runs from a temp working
// directory with a relative -cache-dir so no machine-specific path leaks
// into the output; the byte counts are deterministic because the entry
// encoding (header + canonical JSON payload) is.
func TestCacheGolden(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join(wd, "testdata")
	t.Chdir(t.TempDir())

	// Fill the cache with one exact evaluation.
	captureStdout(t, func() error {
		return run([]string{"eval", "-cache-dir", "cache", "-n", "3", "-delta", "1",
			"-kind", "threshold", "-param", "0.6220355269907728", "-backend", "exact"})
	})

	check := func(name string, args []string) {
		t.Helper()
		got := captureStdout(t, func() error { return run(args) })
		path := filepath.Join(goldenDir, name)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading golden (run with -update-golden to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
	check("cache_stats.golden", []string{"cache", "-cache-dir", "cache"})
	check("cache_purge.golden", []string{"cache", "-cache-dir", "cache", "-purge"})
	check("cache_empty.golden", []string{"cache", "-cache-dir", "cache"})

	if err := run([]string{"cache"}); err == nil {
		t.Error("cache without -cache-dir should fail")
	}
}

// TestCacheGCGolden pins the `nocomm cache -max-age` / `-max-bytes`
// garbage-collection reports byte-for-byte. Two exact evaluations fill
// the cache; the entry sorting first by file name is backdated past the
// age bound, so the age pass purges exactly that entry, and a zero byte
// budget then empties the directory. Entry file names are content
// addresses of fixed keys and the encoding is canonical, so every count
// in the output is deterministic.
func TestCacheGCGolden(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join(wd, "testdata")
	t.Chdir(t.TempDir())

	for _, param := range []string{"0.5", "0.6220355269907728"} {
		captureStdout(t, func() error {
			return run([]string{"eval", "-cache-dir", "cache", "-n", "3", "-delta", "1",
				"-kind", "threshold", "-param", param, "-backend", "exact"})
		})
	}
	names, err := filepath.Glob(filepath.Join("cache", "*.ncs"))
	if err != nil || len(names) != 2 {
		t.Fatalf("cache holds %d entries (%v), want 2", len(names), err)
	}
	sort.Strings(names)
	stale := time.Now().Add(-100 * time.Hour)
	if err := os.Chtimes(names[0], stale, stale); err != nil {
		t.Fatal(err)
	}

	check := func(name string, args []string) {
		t.Helper()
		got := captureStdout(t, func() error { return run(args) })
		path := filepath.Join(goldenDir, name)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading golden (run with -update-golden to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
	check("cache_gc_age.golden", []string{"cache", "-cache-dir", "cache", "-max-age", "72h"})
	check("cache_gc_bytes.golden", []string{"cache", "-cache-dir", "cache", "-max-bytes", "0"})
	check("cache_gc_empty.golden", []string{"cache", "-cache-dir", "cache", "-max-age", "72h", "-max-bytes", "0"})

	if err := run([]string{"cache", "-cache-dir", "cache", "-purge", "-max-age", "1h"}); err == nil {
		t.Error("-purge with -max-age should be rejected")
	}
	if err := run([]string{"cache", "-cache-dir", "cache", "-max-age", "-1h"}); err == nil {
		t.Error("negative -max-age should be rejected")
	}
}

// TestEvalCacheDirWarm checks the CLI half of the warm-restart contract:
// a second `nocomm eval -cache-dir` process-equivalent run returns the
// same bytes as the first — the cached result is indistinguishable on
// stdout — and the disk tier reports the lookup as a hit.
func TestEvalCacheDirWarm(t *testing.T) {
	t.Chdir(t.TempDir())
	args := []string{"eval", "-cache-dir", "cache", "-n", "3", "-delta", "1",
		"-kind", "threshold", "-param", "0.6220355269907728", "-backend", "exact"}
	first := captureStdout(t, func() error { return run(args) })
	second := captureStdout(t, func() error { return run(args) })
	if first != second {
		t.Errorf("warm run output differs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
