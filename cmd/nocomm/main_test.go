package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunDispatch(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
	}{
		{"no args", nil, true},
		{"unknown", []string{"bogus"}, true},
		{"help", []string{"help"}, false},
		{"list", []string{"list"}, false},
		{"eval threshold", []string{"eval", "-n", "3", "-delta", "1", "-kind", "threshold", "-param", "0.622"}, false},
		{"eval oblivious", []string{"eval", "-kind", "oblivious", "-param", "0.5"}, false},
		{"eval bad kind", []string{"eval", "-kind", "quantum"}, true},
		{"eval bad instance", []string{"eval", "-n", "1"}, true},
		{"eval bad param", []string{"eval", "-kind", "threshold", "-param", "1.5"}, true},
		{"optimize threshold", []string{"optimize", "-n", "3", "-delta", "1", "-kind", "threshold"}, false},
		{"optimize oblivious", []string{"optimize", "-n", "4", "-delta", "1.3333333333333333", "-kind", "oblivious"}, false},
		{"optimize bad kind", []string{"optimize", "-kind", "psychic"}, true},
		{"simulate threshold", []string{"simulate", "-n", "3", "-delta", "1", "-kind", "threshold", "-param", "0.622", "-trials", "2000"}, false},
		{"simulate oblivious", []string{"simulate", "-kind", "oblivious", "-param", "0.5", "-trials", "2000"}, false},
		{"simulate feasibility", []string{"simulate", "-kind", "feasibility", "-trials", "2000"}, false},
		{"simulate bad kind", []string{"simulate", "-kind", "nope", "-trials", "10"}, true},
		{"simulate zero trials", []string{"simulate", "-trials", "0"}, true},
		{"certify n3", []string{"certify", "-n", "3", "-delta", "1"}, false},
		{"certify n4", []string{"certify", "-n", "4", "-delta", "1.3333333333333333"}, false},
		{"certify bad instance", []string{"certify", "-n", "0"}, true},
		{"certify irrational delta", []string{"certify", "-n", "3", "-delta", "1.0471975511965976"}, true},
		{"figure missing id", []string{"figure"}, true},
		{"figure unknown id", []string{"figure", "F9"}, true},
		{"figure on table id", []string{"figure", "T1"}, true},
		{"figure f1", []string{"figure", "f1", "-points", "21"}, false},
		{"table missing id", []string{"table"}, true},
		{"table unknown id", []string{"table", "T99"}, true},
		{"table on figure id", []string{"table", "F1"}, true},
		{"table t2", []string{"table", "t2"}, false},
		{"metrics missing path", []string{"metrics"}, true},
		{"metrics missing file", []string{"metrics", "/nonexistent/run.jsonl"}, true},
		{"bad metrics format", []string{"simulate", "-trials", "100", "-metrics", "-metrics-format", "xml"}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if c.wantErr && err == nil {
				t.Errorf("run(%v): expected error", c.args)
			}
			if !c.wantErr && err != nil {
				t.Errorf("run(%v): unexpected error %v", c.args, err)
			}
		})
	}
}

// TestUsageErrorListsAllSubcommands keeps the first-line usage error, the
// help output, and the dispatch switch consistent: every subcommand —
// including certify and metrics — must appear in the advertised list.
func TestUsageErrorListsAllSubcommands(t *testing.T) {
	err := run(nil)
	if err == nil {
		t.Fatal("no-args run should fail with a usage error")
	}
	for _, sub := range []string{"eval", "optimize", "simulate", "certify", "figure", "table", "metrics", "list"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("usage error omits subcommand %q: %v", sub, err)
		}
		if !strings.Contains(subcommandList, sub) {
			t.Errorf("help list omits subcommand %q: %s", sub, subcommandList)
		}
	}
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "certify") {
		t.Errorf("unknown-subcommand error should list all subcommands, got: %v", err)
	}
}

// TestObsRoundTripThroughCLI drives the full observability path the README
// documents: simulate with -obs writing a JSONL log, then replay it with
// the metrics subcommand machinery and check the convergence trace.
func TestObsRoundTripThroughCLI(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "run.jsonl")
	if err := run([]string{"simulate", "-n", "3", "-delta", "1", "-kind", "threshold",
		"-param", "0.622", "-trials", "24000", "-workers", "2", "-obs", log}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(log)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.Summarize(events)
	if len(sum.Checkpoints) != 1 || len(sum.Checkpoints[0].Points) < 10 {
		t.Fatalf("want one convergence stream with >= 10 checkpoints, got %+v", sum.Checkpoints)
	}
	if sum.Final == nil {
		t.Fatal("run log lacks the final metrics snapshot")
	}
	if sum.Final.Counters["sim.trials"] != 24000 {
		t.Errorf("sim.trials = %d, want 24000", sum.Final.Counters["sim.trials"])
	}
	if _, ok := sum.Final.Gauges["run.wall_seconds"]; !ok {
		t.Error("snapshot lacks run.wall_seconds")
	}
	text := sum.Render()
	for _, want := range []string{"sim.trials", "sim.wins", "convergence trace sim.convergence"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
	// The metrics subcommand must replay the same file without error.
	if err := run([]string{"metrics", log}); err != nil {
		t.Fatal(err)
	}
	// Global flags are also accepted before the subcommand.
	if err := run([]string{"-obs", log, "eval", "-n", "3", "-delta", "1", "-param", "0.5"}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileFlags checks that -cpuprofile/-memprofile produce pprof
// artifacts.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"simulate", "-trials", "5000", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunFigureWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "f2.svg")
	csv := filepath.Join(dir, "f2.csv")
	if err := run([]string{"figure", "F2", "-points", "11", "-svg", svg, "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svgData), "<svg") {
		t.Error("SVG artifact malformed")
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "series,") {
		t.Error("CSV artifact malformed")
	}
}

func TestRunTableWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "t1.csv")
	if err := run([]string{"table", "T1", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "0.416667") {
		t.Errorf("T1 CSV missing the 5/12 value:\n%s", data)
	}
}
