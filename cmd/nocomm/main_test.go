package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
	}{
		{"no args", nil, true},
		{"unknown", []string{"bogus"}, true},
		{"help", []string{"help"}, false},
		{"list", []string{"list"}, false},
		{"eval threshold", []string{"eval", "-n", "3", "-delta", "1", "-kind", "threshold", "-param", "0.622"}, false},
		{"eval oblivious", []string{"eval", "-kind", "oblivious", "-param", "0.5"}, false},
		{"eval bad kind", []string{"eval", "-kind", "quantum"}, true},
		{"eval bad instance", []string{"eval", "-n", "1"}, true},
		{"eval bad param", []string{"eval", "-kind", "threshold", "-param", "1.5"}, true},
		{"optimize threshold", []string{"optimize", "-n", "3", "-delta", "1", "-kind", "threshold"}, false},
		{"optimize oblivious", []string{"optimize", "-n", "4", "-delta", "1.3333333333333333", "-kind", "oblivious"}, false},
		{"optimize bad kind", []string{"optimize", "-kind", "psychic"}, true},
		{"simulate threshold", []string{"simulate", "-n", "3", "-delta", "1", "-kind", "threshold", "-param", "0.622", "-trials", "2000"}, false},
		{"simulate oblivious", []string{"simulate", "-kind", "oblivious", "-param", "0.5", "-trials", "2000"}, false},
		{"simulate feasibility", []string{"simulate", "-kind", "feasibility", "-trials", "2000"}, false},
		{"simulate bad kind", []string{"simulate", "-kind", "nope", "-trials", "10"}, true},
		{"simulate zero trials", []string{"simulate", "-trials", "0"}, true},
		{"certify n3", []string{"certify", "-n", "3", "-delta", "1"}, false},
		{"certify n4", []string{"certify", "-n", "4", "-delta", "1.3333333333333333"}, false},
		{"certify bad instance", []string{"certify", "-n", "0"}, true},
		{"certify irrational delta", []string{"certify", "-n", "3", "-delta", "1.0471975511965976"}, true},
		{"figure missing id", []string{"figure"}, true},
		{"figure unknown id", []string{"figure", "F9"}, true},
		{"figure on table id", []string{"figure", "T1"}, true},
		{"figure f1", []string{"figure", "f1", "-points", "21"}, false},
		{"table missing id", []string{"table"}, true},
		{"table unknown id", []string{"table", "T99"}, true},
		{"table on figure id", []string{"table", "F1"}, true},
		{"table t2", []string{"table", "t2"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if c.wantErr && err == nil {
				t.Errorf("run(%v): expected error", c.args)
			}
			if !c.wantErr && err != nil {
				t.Errorf("run(%v): unexpected error %v", c.args, err)
			}
		})
	}
}

func TestRunFigureWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "f2.svg")
	csv := filepath.Join(dir, "f2.csv")
	if err := run([]string{"figure", "F2", "-points", "11", "-svg", svg, "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svgData), "<svg") {
		t.Error("SVG artifact malformed")
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "series,") {
		t.Error("CSV artifact malformed")
	}
}

func TestRunTableWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "t1.csv")
	if err := run([]string{"table", "T1", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "0.416667") {
		t.Errorf("T1 CSV missing the 5/12 value:\n%s", data)
	}
}
