package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOptimizeGolden pins `nocomm optimize` output byte-for-byte. The
// threshold and oblivious goldens were generated BEFORE optimization moved
// into the engine (the ad-hoc closure era), so they are the rewire's
// byte-identity contract; the vector golden pins the new engine-native
// a-vector search, including its departure report and big.Rat certificate.
func TestOptimizeGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{"threshold", []string{"optimize", "-kind", "threshold"}, "optimize_threshold.golden"},
		{"oblivious", []string{"optimize", "-kind", "oblivious"}, "optimize_oblivious.golden"},
		{"threshold n4", []string{"optimize", "-n", "4", "-delta", "1.3333333333333333", "-kind", "threshold"}, "optimize_threshold_n4.golden"},
		{"vector hetero", []string{"optimize", "-kind", "vector", "-pi", "0.5,1,1"}, "optimize_vector.golden"},
		{"vector reuse verbose", []string{"optimize", "-kind", "vector", "-v"}, "optimize_vector_reuse.golden"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", c.golden))
			if err != nil {
				t.Fatal(err)
			}
			got := captureStdout(t, func() error { return run(c.args) })
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", c.golden, got, want)
			}
		})
	}
}

// TestOptimizeErrors exercises the optimize-specific error paths: an
// unknown kind, and a Monte-Carlo-only backend request on the vector
// family still works (auto resolves exact for thresholds) while a bogus
// backend is rejected.
func TestOptimizeErrors(t *testing.T) {
	if err := run([]string{"optimize", "-kind", "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("unknown kind: got %v", err)
	}
	if err := run([]string{"optimize", "-backend", "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend: got %v", err)
	}
}
