package main

import (
	"flag"
	"fmt"

	"repro/internal/store"
)

// cmdCache inspects, garbage-collects, or purges a persistent
// result-cache directory — the disk tier the other subcommands fill
// through -cache-dir.
//
//	nocomm cache -cache-dir results.cache               print stats
//	nocomm cache -cache-dir results.cache -max-age 72h  drop entries older than 72h
//	nocomm cache -cache-dir results.cache -max-bytes N  drop oldest entries over N bytes
//	nocomm cache -cache-dir results.cache -purge        delete every entry
func cmdCache(g *obsFlags, args []string) (err error) {
	fs := flag.NewFlagSet("cache", flag.ContinueOnError)
	g.register(fs)
	dir := fs.String("cache-dir", "", "persistent result-cache directory to inspect")
	purge := fs.Bool("purge", false, "delete every cached entry (and the quarantine) instead of printing stats")
	maxAge := fs.Duration("max-age", 0, "garbage-collect entries last written longer than this ago (0 = no age bound)")
	maxBytes := fs.Int64("max-bytes", -1, "garbage-collect oldest entries until the cache fits in this many bytes (-1 = no size bound)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache needs -cache-dir (the directory other subcommands filled via -cache-dir)")
	}
	if *purge && (*maxAge > 0 || *maxBytes >= 0) {
		return fmt.Errorf("cache: -purge and -max-age/-max-bytes are mutually exclusive")
	}
	if *maxAge < 0 {
		return fmt.Errorf("cache: -max-age must be non-negative, got %v", *maxAge)
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)
	d, err := store.OpenDisk(*dir, sess.observer)
	if err != nil {
		return err
	}
	if *purge {
		entries, bytes, err := d.Purge()
		if err != nil {
			return err
		}
		fmt.Printf("purged %d entries (%d bytes) from %s\n", entries, bytes, *dir)
		return nil
	}
	if *maxAge > 0 || *maxBytes >= 0 {
		entries, bytes, err := d.GC(*maxAge, *maxBytes)
		if err != nil {
			return err
		}
		st := d.Stats()
		fmt.Printf("gc %s: purged %d entries (%d bytes), %d entries (%d bytes) remain\n",
			*dir, entries, bytes, st.Entries, st.Bytes)
		return nil
	}
	st := d.Stats()
	fmt.Printf("cache %s\n", st.Dir)
	fmt.Printf("  entries: %d\n", st.Entries)
	fmt.Printf("  bytes:   %d\n", st.Bytes)
	if ratio, ok := st.HitRatio(); ok {
		fmt.Printf("  hit ratio: %.3f (%d hits / %d lookups since open)\n", ratio, st.Hits, st.Hits+st.Misses)
	} else {
		fmt.Printf("  hit ratio: n/a (no lookups since open)\n")
	}
	return nil
}
