package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/serve"
)

// cmdServe runs the evaluation HTTP service (internal/serve): a JSON API
// over the engine with live Prometheus metrics, per-request trace trees
// in the -obs run log, and deadline-bounded graceful degradation.
func cmdServe(g *obsFlags, args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(os.Stdout)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: nocomm serve [flags]")
		fmt.Fprintln(fs.Output(), "")
		fmt.Fprintln(fs.Output(), "Serve the evaluation engine over HTTP:")
		fmt.Fprintln(fs.Output(), "")
		fmt.Fprintln(fs.Output(), "  POST /v1/eval       evaluate one rule on one instance")
		fmt.Fprintln(fs.Output(), "  POST /v1/optimize   maximize a rule family (threshold, oblivious or vector)")
		fmt.Fprintln(fs.Output(), "  POST /v1/sweep      evaluate a rule family on a parameter grid")
		fmt.Fprintln(fs.Output(), "  POST /v1/table      render a harness table experiment")
		fmt.Fprintln(fs.Output(), "  GET  /metrics       live Prometheus metrics")
		fmt.Fprintln(fs.Output(), "  GET  /healthz       liveness probe")
		fmt.Fprintln(fs.Output(), "  GET  /readyz        readiness probe (warmup canary)")
		fmt.Fprintln(fs.Output(), "  GET  /debug/pprof/  runtime profilers (with -pprof)")
		fmt.Fprintln(fs.Output(), "")
		fmt.Fprintln(fs.Output(), "flags:")
		fs.PrintDefaults()
	}
	g.register(fs)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	trials := fs.Int("trials", engine.DefaultTrials, "default Monte-Carlo trials per request")
	degradedTrials := fs.Int("degraded-trials", serve.DefaultDegradedTrials, "Monte-Carlo trials of the exact-deadline fallback")
	deadline := fs.Duration("deadline", serve.DefaultDeadline, "per-request evaluation budget (requests may shorten, never extend)")
	maxN := fs.Int("max-n", serve.DefaultMaxN, "largest accepted player count")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)

	// The server always gets a live metrics registry — /metrics must work
	// even without -obs/-metrics — extended with the JSONL sink when the
	// session opened one.
	o := sess.observer
	if o == nil {
		o = obs.New(obs.NewRegistry(), nil)
	}
	stopCollector := obs.StartRuntimeCollector(o, 10*time.Second)
	defer stopCollector()

	// With -cache-dir the engine's result store gains a disk tier, so a
	// restarted server answers previously-computed evaluations from disk
	// (and /readyz reports what it inherited).
	st, err := storeFor(*cacheDir, o)
	if err != nil {
		return err
	}
	srv := serve.New(serve.Config{
		Obs:            o,
		Engine:         engine.New(engine.Config{Obs: o, Store: st}),
		Trials:         *trials,
		DegradedTrials: *degradedTrials,
		Deadline:       *deadline,
		MaxN:           *maxN,
		EnablePprof:    *pprofOn,
	})
	return serveHTTP(*addr, srv.Handler())
}

// serveHTTP listens on addr and serves h until SIGINT/SIGTERM, then
// drains in-flight requests for up to 5 seconds.
func serveHTTP(addr string, h http.Handler) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("nocomm serve: listening on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("nocomm serve: shut down")
	return nil
}
