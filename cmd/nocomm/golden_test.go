package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// everything the function printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	runErr := f()
	w.Close()
	out, readErr := io.ReadAll(r)
	r.Close()
	os.Stdout = orig
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", runErr, out)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out)
}

// TestTableGolden pins the rendered text of the paper tables byte-for-byte
// against golden files generated from the pre-engine entry points. Any
// drift in the numbers — however small — means an evaluation path changed
// behavior, not just plumbing. The tradeoff table includes Monte-Carlo
// columns, so its invocation pins trials, seed and worker count; the
// lowercase ids double as coverage for the mnemonic alias resolution.
func TestTableGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{"oblivious", []string{"table", "oblivious"}, "table_oblivious.golden"},
		{"case-n3", []string{"table", "case-n3"}, "table_case_n3.golden"},
		{"tradeoff", []string{"table", "tradeoff", "-trials", "20000", "-seed", "1", "-workers", "2"}, "table_tradeoff.golden"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", c.golden))
			if err != nil {
				t.Fatal(err)
			}
			got := captureStdout(t, func() error { return run(c.args) })
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", c.golden, got, want)
			}
		})
	}
}

// TestHeteroGolden pins the heterogeneous -pi outputs byte-for-byte: the
// T10 table (Monte-Carlo columns, so trials/seed/workers are fixed) and
// an exact eval where n is derived from the π vector. Drift here means
// the Lemma 2.4/2.7 subset-sum evaluators or the widths-aware sampling
// kernel changed behavior.
func TestHeteroGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{"table hetero", []string{"table", "hetero", "-trials", "50000", "-seed", "7", "-workers", "2"}, "table_hetero.golden"},
		{"eval hetero", []string{"eval", "-pi", "0.5,1,0.75", "-delta", "1", "-kind", "threshold", "-param", "0.5"}, "eval_hetero.golden"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", c.golden))
			if err != nil {
				t.Fatal(err)
			}
			got := captureStdout(t, func() error { return run(c.args) })
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", c.golden, got, want)
			}
		})
	}
}

// TestPiFlagErrors exercises the malformed-π error paths shared by eval,
// simulate and table: parse failures, non-positive entries, and a π
// length that contradicts an explicit -n.
func TestPiFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"empty entry", []string{"eval", "-pi", "0.5,,1"}, "empty entry"},
		{"not a number", []string{"eval", "-pi", "0.5,x"}, "not a number"},
		{"negative width", []string{"eval", "-pi", "0.5,-1"}, "strictly positive"},
		{"zero width", []string{"simulate", "-pi", "0,1", "-trials", "100"}, "strictly positive"},
		{"length vs explicit n", []string{"eval", "-n", "4", "-pi", "0.5,1"}, "players"},
		{"table bad pi", []string{"table", "hetero", "-pi", "1,,1"}, "empty entry"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil {
				t.Fatalf("run(%v): expected error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("run(%v): error %q should mention %q", c.args, err, c.want)
			}
		})
	}
}

// TestTableGoldenBackendExact checks that forcing -backend exact matches
// the auto default on an all-exact table (auto must resolve to exact).
func TestTableGoldenBackendExact(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "table_oblivious.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := captureStdout(t, func() error {
		return run([]string{"table", "oblivious", "-backend", "exact"})
	})
	if got != string(want) {
		t.Errorf("-backend exact output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
