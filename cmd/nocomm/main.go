// Command nocomm is the command-line front end of the reproduction: it
// evaluates exact winning probabilities, derives certified optima, runs
// Monte-Carlo simulations, regenerates every table and figure from the
// paper's evaluation, and replays observability run logs.
//
// Usage:
//
//	nocomm eval     -n 3 -delta 1 -kind threshold -param 0.622 [-backend exact|mc|mc-qmc|auto]
//	nocomm optimize -n 3 -delta 1 -kind threshold|oblivious|vector [-pi 0.5,1,1]
//	nocomm simulate -n 3 -delta 1 -kind oblivious -param 0.5 -trials 1000000
//	nocomm certify  -n 3 -delta 1
//	nocomm figure   F1 [-points 201] [-backend auto] [-svg f1.svg] [-csv f1.csv]
//	nocomm table    T2 [-trials 200000] [-backend auto] [-csv t2.csv]
//	nocomm serve    [-addr 127.0.0.1:8080] [-deadline 10s] [-pprof]
//	nocomm cache    -cache-dir results.cache [-purge]
//	nocomm metrics  run.jsonl
//	nocomm list
//
// serve exposes the engine as a JSON HTTP API (POST /v1/eval, /v1/optimize,
// /v1/sweep, /v1/table) with live Prometheus metrics on GET /metrics, liveness and
// readiness probes, and optional pprof profilers; combined with -obs it
// writes one span tree per request (handler → engine → backend) to the
// run log, replayable via `nocomm metrics`.
//
// eval, figure and table route through the unified evaluation engine
// (internal/engine): -backend selects exact closed forms, Monte-Carlo
// simulation, or auto (exact when available). Figure and table ids accept
// mnemonic aliases (`nocomm table oblivious` = T1), case-insensitively.
//
// eval, simulate and table also accept -pi, a comma-separated list of
// per-player input ranges for the heterogeneous game x_i ~ U[0, π_i]:
//
//	nocomm eval  -pi 0.5,1,0.75 -delta 1 -kind threshold -param 0.5
//	nocomm table hetero -pi 0.5,1,1 -trials 200000
//
// When -pi is given and -n is left unset, n follows the length of the π
// vector.
//
// eval, optimize, figure, table and serve accept -cache-dir, a persistent
// result-cache directory (the disk tier of the engine's store): results
// computed in one run are served from disk in the next, and `nocomm
// cache` inspects or purges the directory.
//
// Every workload subcommand also accepts the global observability flags
// (before or after the subcommand name):
//
//	-obs run.jsonl     append a structured JSONL event log (spans,
//	                   convergence checkpoints, errors, final snapshot)
//	-metrics           print a metrics snapshot on exit
//	-metrics-format f  snapshot format: json (default) or prom
//	-cpuprofile f      write a runtime/pprof CPU profile
//	-memprofile f      write a runtime/pprof heap profile
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/big"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sim"
	"repro/internal/store"
)

// subcommandList names every subcommand; keep the usage error, the help
// output, and the dispatch switch in sync.
const subcommandList = "eval, optimize, simulate, certify, figure, table, serve, cache, metrics, list"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nocomm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	g := &obsFlags{}
	top := flag.NewFlagSet("nocomm", flag.ContinueOnError)
	g.register(top)
	if err := top.Parse(args); err != nil {
		return err
	}
	rest := top.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand (%s)", subcommandList)
	}
	switch rest[0] {
	case "eval":
		return cmdEval(g, rest[1:])
	case "optimize":
		return cmdOptimize(g, rest[1:])
	case "simulate":
		return cmdSimulate(g, rest[1:])
	case "figure":
		return cmdFigure(g, rest[1:])
	case "table":
		return cmdTable(g, rest[1:])
	case "serve":
		return cmdServe(g, rest[1:])
	case "cache":
		return cmdCache(g, rest[1:])
	case "certify":
		return cmdCertify(g, rest[1:])
	case "metrics":
		return cmdMetrics(rest[1:])
	case "list":
		return cmdList()
	case "-h", "--help", "help":
		fmt.Println("subcommands:", subcommandList)
		fmt.Println("global flags: -obs <file.jsonl>, -metrics, -metrics-format json|prom, -cpuprofile <file>, -memprofile <file>")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (known: %s)", rest[0], subcommandList)
	}
}

// obsFlags holds the global observability flags. They are registered on
// the top-level flag set and on every workload subcommand's flag set (both
// write the same fields), so `nocomm -obs run.jsonl simulate ...` and
// `nocomm simulate ... -obs run.jsonl` both work.
type obsFlags struct {
	obsPath    string
	metrics    bool
	metricsFmt string
	cpuProfile string
	memProfile string
}

func (g *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&g.obsPath, "obs", g.obsPath, "append a JSONL observability run log to this file")
	fs.BoolVar(&g.metrics, "metrics", g.metrics, "print a metrics snapshot on exit")
	fs.StringVar(&g.metricsFmt, "metrics-format", cmpOr(g.metricsFmt, "json"), "metrics snapshot format: json or prom")
	fs.StringVar(&g.cpuProfile, "cpuprofile", g.cpuProfile, "write a CPU profile to this file")
	fs.StringVar(&g.memProfile, "memprofile", g.memProfile, "write a heap profile to this file")
}

func cmpOr(s, def string) string {
	if s != "" {
		return s
	}
	return def
}

// obsSession is one activated observability context: observer, open files,
// profiles. finish flushes everything and prints the snapshot.
type obsSession struct {
	g        *obsFlags
	observer *obs.Observer
	start    time.Time
	obsFile  *os.File
	cpuFile  *os.File
}

// start validates the flags and opens the requested instrumentation. It
// returns a session whose finish method must run after the workload.
func (g *obsFlags) start() (*obsSession, error) {
	s := &obsSession{g: g, start: time.Now()}
	switch g.metricsFmt {
	case "json", "prom":
	default:
		return nil, fmt.Errorf("unknown -metrics-format %q (want json or prom)", g.metricsFmt)
	}
	var sink *obs.Sink
	if g.obsPath != "" {
		f, err := os.OpenFile(g.obsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("opening -obs log: %w", err)
		}
		s.obsFile = f
		sink = obs.NewSink(f)
	}
	if g.obsPath != "" || g.metrics {
		s.observer = obs.New(obs.NewRegistry(), sink)
	}
	if g.cpuProfile != "" {
		f, err := os.Create(g.cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("creating -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// finish records the wall time, stops the profiles, appends the final
// snapshot to the run log, and prints the snapshot when -metrics is set.
// It reports its own failures through errp only if the workload succeeded.
func (s *obsSession) finish(errp *error) {
	fail := func(err error) {
		if err != nil && *errp == nil {
			*errp = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		fail(s.cpuFile.Close())
	}
	if s.g.memProfile != "" {
		f, err := os.Create(s.g.memProfile)
		if err != nil {
			fail(fmt.Errorf("creating -memprofile: %w", err))
		} else {
			runtime.GC()
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}
	}
	if s.observer == nil {
		return
	}
	s.observer.Gauge("run.wall_seconds").Set(time.Since(s.start).Seconds())
	s.observer.EmitSnapshot()
	if s.obsFile != nil {
		fail(s.observer.Events.Err())
		fail(s.obsFile.Close())
	}
	if s.g.metrics {
		snap := s.observer.Metrics.Snapshot()
		var err error
		if s.g.metricsFmt == "prom" {
			err = snap.WritePrometheus(os.Stdout)
		} else {
			err = snap.WriteJSON(os.Stdout)
		}
		fail(err)
	}
}

func instanceFlags(fs *flag.FlagSet) (n *int, delta *float64) {
	n = fs.Int("n", 3, "number of players")
	delta = fs.Float64("delta", 1, "bin capacity δ")
	return n, delta
}

// piFlag registers the shared -pi flag for subcommands that accept the
// heterogeneous game x_i ~ U[0, π_i].
func piFlag(fs *flag.FlagSet) *string {
	return fs.String("pi", "", "comma-separated per-player input ranges π_i (heterogeneous x_i ~ U[0, π_i]; sets n when -n is unset)")
}

// cacheDirFlag registers the shared -cache-dir flag for subcommands that
// evaluate through the engine: when set, the engine's result store gains
// a content-addressed disk tier in that directory, so expensive results
// survive across runs.
func cacheDirFlag(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", "", "persistent result-cache directory (empty = in-memory cache only)")
}

// storeFor opens the engine's result store: disk-tiered when dir is
// non-empty, memory-only otherwise.
func storeFor(dir string, o *obs.Observer) (store.Store, error) {
	return store.New(store.Options{Dir: dir, Obs: o})
}

// resolveInstance builds the instance from -n/-delta/-pi after fs has
// been parsed. When -pi is given and -n was left at its default, the
// player count follows the length of the π vector.
func resolveInstance(fs *flag.FlagSet, n int, delta float64, piStr string) (core.Instance, error) {
	pi, err := problem.ParsePi(piStr)
	if err != nil {
		return core.Instance{}, err
	}
	if pi != nil {
		nSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				nSet = true
			}
		})
		if !nSet {
			n = len(pi)
		}
	}
	return core.NewInstancePi(n, delta, pi)
}

// describeInstance renders the "n=3 δ=1" output prefix, extended with
// the π vector when the instance is heterogeneous. The homogeneous form
// is kept byte-identical to the pre-π output.
func describeInstance(inst core.Instance) string {
	s := fmt.Sprintf("n=%d δ=%g", inst.N, inst.Delta)
	if inst.Heterogeneous() {
		s += fmt.Sprintf(" π=(%s)", problem.FormatPi(inst.Pi))
	}
	return s
}

func cmdEval(g *obsFlags, args []string) (err error) {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	g.register(fs)
	n, delta := instanceFlags(fs)
	piStr := piFlag(fs)
	kind := fs.String("kind", "threshold", "algorithm kind: threshold or oblivious")
	param := fs.Float64("param", 0.5, "common threshold β (threshold) or bin-0 probability a (oblivious)")
	backend := fs.String("backend", "exact", "evaluation backend: exact, mc, mc-qmc or auto")
	trials := fs.Int("trials", engine.DefaultTrials, "sampled trials (mc / mc-qmc backends)")
	seed := fs.Uint64("seed", 1, "random seed (mc / mc-qmc backends)")
	workers := fs.Int("workers", 0, "parallel workers (mc backend, 0 = all cores)")
	replicates := fs.Int("replicates", 0, "scrambled randomizations (mc-qmc backend, 0 = default 16)")
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := engine.ParseBackend(*backend)
	if err != nil {
		return err
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)
	inst, err := resolveInstance(fs, *n, *delta, *piStr)
	if err != nil {
		return err
	}
	var rule engine.Rule
	switch *kind {
	case "threshold":
		rule = engine.SymmetricThreshold{Beta: *param}
	case "oblivious":
		rule = engine.SymmetricOblivious{A: *param}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	st, err := storeFor(*cacheDir, sess.observer)
	if err != nil {
		return err
	}
	cfg := sim.Config{Trials: *trials, Seed: *seed, Workers: *workers, Replicates: *replicates, Obs: sess.observer}
	eng := engine.New(engine.Config{Sim: cfg, Obs: sess.observer, ExactWorkers: cfg.Workers, Store: st})
	sp := sess.observer.StartSpan("eval")
	res, err := eng.Evaluate(inst.EngineInstance(), rule, b)
	sp.End()
	if err != nil {
		return err
	}
	if res.Backend == engine.MonteCarloQMC {
		fmt.Printf("%s %s(%g): P(win) = %.9f ± %.6f (mc-qmc, %d trials, %d replicates)\n",
			describeInstance(inst), *kind, *param, res.P, res.StdErr, res.Sim.Trials, res.Sim.Replicates)
	} else if res.Backend == engine.MonteCarlo {
		fmt.Printf("%s %s(%g): P(win) = %.9f ± %.6f (mc, %d trials)\n",
			describeInstance(inst), *kind, *param, res.P, res.StdErr, res.Sim.Trials)
	} else {
		fmt.Printf("%s %s(%g): P(win) = %.9f\n", describeInstance(inst), *kind, *param, res.P)
	}
	return nil
}

// cmdOptimize derives optima. Homogeneous threshold/oblivious instances
// keep the certified symbolic path (Sturm isolation / Theorem 4.3) with
// the engine-native numeric cross-check under -obs/-metrics; every other
// combination — heterogeneous instances, the full a-vector family — is
// searched numerically through engine.OptimizeCtx, sharing the memoization
// cache and span taxonomy with the HTTP service.
func cmdOptimize(g *obsFlags, args []string) (err error) {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	g.register(fs)
	n, delta := instanceFlags(fs)
	piStr := piFlag(fs)
	kind := fs.String("kind", "threshold", "algorithm kind: threshold, oblivious or vector")
	backend := fs.String("backend", "exact", "evaluation backend: exact, mc or auto")
	trials := fs.Int("trials", engine.DefaultTrials, "Monte-Carlo trials (mc backend)")
	seed := fs.Uint64("seed", 1, "random seed (mc backend)")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores)")
	grid := fs.Int("grid", engine.DefaultOptimizeGrid, "scalar search grid resolution")
	tol := fs.Float64("tol", engine.DefaultOptimizeTol, "search tolerance")
	passes := fs.Int("passes", 0, "vector coordinate-ascent pass cap (0 = default)")
	verbose := fs.Bool("v", false, "print search-cost detail (evals, cache hits, delta updates)")
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := engine.ParseBackend(*backend)
	if err != nil {
		return err
	}
	fam, err := engine.FamilyForKind(*kind)
	if err != nil {
		return fmt.Errorf("unknown kind %q (want threshold, oblivious or vector)", *kind)
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)
	o := sess.observer
	inst, err := resolveInstance(fs, *n, *delta, *piStr)
	if err != nil {
		return err
	}
	st, err := storeFor(*cacheDir, o)
	if err != nil {
		return err
	}
	cfg := sim.Config{Trials: *trials, Seed: *seed, Workers: *workers, Obs: o}
	eng := engine.New(engine.Config{Sim: cfg, Obs: o, ExactWorkers: *workers, Store: st})
	opts := engine.OptimizeOptions{Backend: b, Sim: cfg, GridPoints: *grid, Tol: *tol, Passes: *passes}
	sp := o.StartSpan("optimize")
	defer sp.End()
	ctx := context.Background()
	if sp != nil {
		ctx = obs.ContextWithSpan(ctx, sp)
	}

	// Homogeneous scalar kinds keep the certified symbolic output.
	if !inst.Heterogeneous() && *kind == "threshold" {
		res, err := inst.OptimalThreshold()
		if err != nil {
			return err
		}
		fmt.Printf("n=%d δ=%g optimal symmetric threshold:\n", inst.N, inst.Delta)
		fmt.Printf("  β* = %.12f\n  P* = %.12f\n", res.BetaFloat, res.WinProbabilityFloat)
		if !res.Condition.IsZero() {
			fmt.Printf("  optimality condition: %s = 0\n", res.Condition)
		}
		fmt.Printf("  P(β) pieces:\n")
		for i := 0; i < res.Curve.NumPieces(); i++ {
			piece, iv, err := res.Curve.Piece(i)
			if err != nil {
				return err
			}
			fmt.Printf("    [%s, %s]: %s\n", iv.Lo.RatString(), iv.Hi.RatString(), piece)
		}
		if o.Enabled() {
			// Numeric cross-check of the symbolic optimum, searched
			// through the engine (memo cache, optimize.* counters, the
			// engine.optimize span tree in the run log).
			num, err := eng.OptimizeCtx(ctx, inst.EngineInstance(), fam, opts)
			if err != nil {
				return err
			}
			fmt.Printf("  numeric cross-check: β ≈ %.9f, P ≈ %.9f (%d evals, %d iterations)\n",
				num.Params[0], num.Value, num.Evals, num.Iterations)
		}
		return nil
	}
	if !inst.Heterogeneous() && *kind == "oblivious" {
		res, err := inst.OptimalOblivious()
		if err != nil {
			return err
		}
		det, err := inst.OptimalObliviousDeterministic()
		if err != nil {
			return err
		}
		fmt.Printf("n=%d δ=%g optimal oblivious (Theorem 4.3, symmetric): α* = 1/2, P* = %.9f\n",
			inst.N, inst.Delta, res.WinProbability)
		fmt.Printf("  deterministic vertex optimum: %d players to bin 1, P = %.9f\n",
			det.Bin1Count, det.WinProbability)
		if o.Enabled() {
			num, err := eng.OptimizeCtx(ctx, inst.EngineInstance(), fam, opts)
			if err != nil {
				return err
			}
			fmt.Printf("  numeric cross-check: a ≈ %.9f, P ≈ %.9f (%d evals, %d iterations)\n",
				num.Params[0], num.Value, num.Evals, num.Iterations)
		}
		return nil
	}

	// Engine-native numeric search: the vector family, and scalar kinds on
	// heterogeneous instances (no symbolic path exists there).
	res, err := eng.OptimizeCtx(ctx, inst.EngineInstance(), fam, opts)
	if err != nil {
		return err
	}
	switch *kind {
	case "vector":
		fmt.Printf("%s optimal threshold vector (%s backend):\n", describeInstance(inst), res.Backend)
		fmt.Printf("  a* = (%s)\n", formatVector(res.Params))
		fmt.Printf("  P* = %.9f\n", res.Value)
		sym, err := eng.OptimizeCtx(ctx, inst.EngineInstance(), engine.ThresholdBetaFamily{}, opts)
		if err != nil {
			return err
		}
		departure := 0.0
		for _, a := range res.Params {
			departure = math.Max(departure, math.Abs(a-sym.Params[0]))
		}
		fmt.Printf("  symmetric best: β* = %.9f, P = %.9f (departure max|a_i−β*| = %.3e)\n",
			sym.Params[0], sym.Value, departure)
	case "threshold":
		fmt.Printf("%s optimal symmetric threshold (%s backend):\n", describeInstance(inst), res.Backend)
		fmt.Printf("  β* = %.9f\n  P* = %.9f\n", res.Params[0], res.Value)
	case "oblivious":
		fmt.Printf("%s optimal symmetric oblivious (%s backend):\n", describeInstance(inst), res.Backend)
		fmt.Printf("  α* = %.9f\n  P* = %.9f\n", res.Params[0], res.Value)
	}
	fmt.Printf("  search: %d evals (%d cached), %d iterations\n", res.Evals, res.CacheHits, res.Iterations)
	if *verbose {
		fmt.Printf("  search detail: optimize.evals=%d optimize.cache_hits=%d exact.delta.updates=%d\n",
			res.Evals, res.CacheHits, res.DeltaUpdates)
	}
	if res.Degraded {
		fmt.Printf("  degraded: deadline struck mid-search; best point so far\n")
	}
	if *kind == "vector" && res.Backend == engine.Exact && inst.N <= nonoblivious.MaxNExact {
		// A posteriori certification: re-evaluate the float optimum with
		// the big.Rat oracle and require agreement within the documented
		// forward-error bound.
		exact, bound, err := certifyThresholdVector(inst, res.Params)
		if err != nil {
			return err
		}
		diff := math.Abs(res.Value - exact)
		fmt.Printf("  certificate: |P* − exact| = %.3e ≤ %.3e (big.Rat oracle)\n", diff, bound)
		if diff > bound {
			return fmt.Errorf("certification failed: |%.17g − %.17g| exceeds the error bound %g", res.Value, exact, bound)
		}
	}
	return nil
}

// formatVector renders a parameter vector at reporting precision.
func formatVector(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%.9f", v)
	}
	return strings.Join(parts, ", ")
}

// certifyThresholdVector evaluates the threshold vector with the exact
// big.Rat Theorem 5.1 oracle (every float64 converted bit-exactly) and
// returns the exact value alongside the float path's documented error
// bound.
func certifyThresholdVector(inst core.Instance, a []float64) (exact, bound float64, err error) {
	aRat := make([]*big.Rat, len(a))
	for i, v := range a {
		aRat[i] = new(big.Rat).SetFloat64(v)
	}
	piMin := 1.0
	piRat := make([]*big.Rat, inst.N)
	for i := range piRat {
		piRat[i] = big.NewRat(1, 1)
		if inst.Pi != nil {
			piRat[i] = new(big.Rat).SetFloat64(inst.Pi[i])
			piMin = math.Min(piMin, inst.Pi[i])
		}
	}
	p, err := nonoblivious.WinningProbabilityPiRat(aRat, piRat, new(big.Rat).SetFloat64(inst.Delta))
	if err != nil {
		return 0, 0, err
	}
	exact, _ = p.Float64()
	return exact, nonoblivious.ExactErrorBound(inst.N, inst.Delta, piMin), nil
}

func cmdSimulate(g *obsFlags, args []string) (err error) {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	g.register(fs)
	n, delta := instanceFlags(fs)
	piStr := piFlag(fs)
	kind := fs.String("kind", "threshold", "algorithm kind: threshold, oblivious, or feasibility")
	param := fs.Float64("param", 0.5, "algorithm parameter")
	trials := fs.Int("trials", 1_000_000, "number of Monte-Carlo trials")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "convergence checkpoint interval in trials (0 = trials/20; needs -obs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)
	inst, err := resolveInstance(fs, *n, *delta, *piStr)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Trials: *trials, Seed: *seed, Workers: *workers,
		Obs: sess.observer, CheckpointEvery: *checkpointEvery,
	}
	var res sim.Result
	switch *kind {
	case "threshold":
		res, err = inst.SimulateThreshold(*param, cfg)
	case "oblivious":
		res, err = inst.SimulateOblivious(*param, cfg)
	case "feasibility":
		res, err = inst.FeasibilityUpperBound(cfg)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s %s(%g): P = %.6f ± %.6f (95%% CI [%.6f, %.6f], %d trials)\n",
		describeInstance(inst), *kind, *param, res.P, res.StdErr, res.CILo, res.CIHi, res.Trials)
	return nil
}

func cmdFigure(g *obsFlags, args []string) (err error) {
	if len(args) == 0 {
		return fmt.Errorf("figure needs an id (F1, F2, F3) or alias (thresholds, coins, crossover)")
	}
	id := args[0]
	fs := flag.NewFlagSet("figure", flag.ContinueOnError)
	g.register(fs)
	points := fs.Int("points", 201, "sweep points per curve")
	backend := fs.String("backend", "auto", "evaluation backend: exact, mc, mc-qmc or auto")
	trials := fs.Int("trials", engine.DefaultTrials, "Monte-Carlo trials per point (mc backend)")
	seed := fs.Uint64("seed", 1, "random seed (mc backend)")
	workers := fs.Int("workers", 0, "sweep workers (0 = all cores)")
	svgPath := fs.String("svg", "", "write SVG to this path")
	csvPath := fs.String("csv", "", "write CSV to this path")
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	b, err := engine.ParseBackend(*backend)
	if err != nil {
		return err
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)
	exp, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	if exp.Kind != harness.KindFigure {
		return fmt.Errorf("%s is not a figure", id)
	}
	p := harness.Params{
		Points:  *points,
		Sim:     sim.Config{Trials: *trials, Seed: *seed, Workers: *workers},
		Backend: b,
	}
	if *cacheDir != "" {
		st, err := storeFor(*cacheDir, sess.observer)
		if err != nil {
			return err
		}
		p.Engine = engine.New(engine.Config{Sim: p.Sim, Obs: sess.observer, ExactWorkers: *workers, Store: st})
	}
	out, err := exp.Run(sess.observer, p)
	if err != nil {
		return err
	}
	fig := *out.Figure
	ascii, err := fig.ASCII(0, 0)
	if err != nil {
		return err
	}
	fmt.Println(ascii)
	if *svgPath != "" {
		svg, err := fig.SVG(0, 0)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return fmt.Errorf("writing SVG: %w", err)
		}
		fmt.Println("wrote", *svgPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("creating CSV: %w", err)
		}
		defer f.Close()
		if err := fig.WriteCSV(f); err != nil {
			return err
		}
		fmt.Println("wrote", *csvPath)
	}
	return nil
}

func cmdTable(g *obsFlags, args []string) (err error) {
	if len(args) == 0 {
		return fmt.Errorf("table needs an id (T1..T11, V1) or alias (oblivious, case-n3, tradeoff, hetero, ...)")
	}
	id := args[0]
	fs := flag.NewFlagSet("table", flag.ContinueOnError)
	g.register(fs)
	trials := fs.Int("trials", 200_000, "Monte-Carlo trials for simulated columns")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores)")
	backend := fs.String("backend", "auto", "evaluation backend: exact, mc, mc-qmc or auto")
	piStr := fs.String("pi", "", "comma-separated per-player input ranges π_i (experiments that accept heterogeneous instances, e.g. T10)")
	csvPath := fs.String("csv", "", "write CSV to this path")
	cacheDir := cacheDirFlag(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	b, err := engine.ParseBackend(*backend)
	if err != nil {
		return err
	}
	pi, err := problem.ParsePi(*piStr)
	if err != nil {
		return err
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)
	exp, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	if exp.Kind != harness.KindTable {
		return fmt.Errorf("%s is not a table", id)
	}
	p := harness.Params{
		Sim:     sim.Config{Trials: *trials, Seed: *seed, Workers: *workers},
		Backend: b,
		Pi:      pi,
	}
	if *cacheDir != "" {
		st, err := storeFor(*cacheDir, sess.observer)
		if err != nil {
			return err
		}
		p.Engine = engine.New(engine.Config{Sim: p.Sim, Obs: sess.observer, ExactWorkers: *workers, Store: st})
	}
	out, err := exp.Run(sess.observer, p)
	if err != nil {
		return err
	}
	tab := *out.Table
	text, err := tab.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("creating CSV: %w", err)
		}
		defer f.Close()
		if err := tab.WriteCSV(f); err != nil {
			return err
		}
		fmt.Println("wrote", *csvPath)
	}
	return nil
}

// cmdCertify produces the exact-arithmetic certificates for both of the
// paper's optimality theorems on one instance: the Sturm-certified
// symmetric oblivious maximum at α = 1/2 (Theorem 4.3) and the certified
// optimal threshold with its optimality condition (Section 5.2).
func cmdCertify(g *obsFlags, args []string) (err error) {
	fs := flag.NewFlagSet("certify", flag.ContinueOnError)
	g.register(fs)
	n, delta := instanceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := g.start()
	if err != nil {
		return err
	}
	defer sess.finish(&err)
	inst, err := core.NewInstance(*n, *delta)
	if err != nil {
		return err
	}
	dr, ok := inst.DeltaRat()
	if !ok {
		return fmt.Errorf("capacity %v is not an exact rational; certificates need exact arithmetic", *delta)
	}
	root := sess.observer.StartSpan("certify")
	defer root.End()
	sp := root.Child("oblivious")
	cert, err := oblivious.CertifyHalfOptimal(*n, dr)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 4.3 certificate (n=%d, δ=%s):\n", *n, dr.RatString())
	fmt.Printf("  symmetric curve P(a) = %s\n", cert.Curve)
	fmt.Printf("  a=1/2 critical: %v; maximal among critical points: %v (interior critical points: %d)\n",
		cert.HalfIsCritical, cert.HalfIsMaximum, cert.InteriorCritical)
	fmt.Printf("  P(1/2) = %s\n\n", cert.HalfValue.RatString())

	sp = root.Child("threshold")
	thr, err := nonoblivious.OptimalSymmetric(*n, dr)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Printf("Section 5.2 certificate (n=%d, δ=%s):\n", *n, dr.RatString())
	fmt.Printf("  β* ∈ [%s..] width ≤ 2^-80, midpoint %.12f\n",
		truncateRat(thr.Beta.Lo.RatString(), 24), thr.BetaFloat)
	fmt.Printf("  P* = %.12f\n", thr.WinProbabilityFloat)
	if !thr.Condition.IsZero() {
		fmt.Printf("  optimality condition (monic): %s = 0\n",
			nonoblivious.PolyFromCondition(thr.Condition))
		resid, err := nonoblivious.OptimalityResidual(*n, dr, thr.Beta.Mid())
		if err != nil {
			return err
		}
		rf, _ := resid.Float64()
		fmt.Printf("  dP/dβ at enclosure midpoint: %.3e (Theorem 5.2 residual)\n", rf)
	}
	return nil
}

// cmdMetrics replays a JSONL run log written via -obs into a
// human-readable summary: span table, final metric values, convergence
// traces, and recorded errors.
func cmdMetrics(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("metrics needs a run log path (e.g. nocomm metrics run.jsonl)")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return fmt.Errorf("opening run log: %w", err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s contains no observability events", args[0])
	}
	fmt.Print(obs.Summarize(events).Render())
	return nil
}

func truncateRat(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func cmdList() error {
	fmt.Println("experiments:")
	for _, id := range harness.IDs() {
		e, err := harness.Lookup(id)
		if err != nil {
			return err
		}
		kind := "table "
		if e.Kind == harness.KindFigure {
			kind = "figure"
		}
		fmt.Printf("  %-3s %s  %s\n", e.ID, kind, e.Title)
	}
	return nil
}
