// Command nocomm is the command-line front end of the reproduction: it
// evaluates exact winning probabilities, derives certified optima, runs
// Monte-Carlo simulations, and regenerates every table and figure from the
// paper's evaluation.
//
// Usage:
//
//	nocomm eval     -n 3 -delta 1 -kind threshold -param 0.622
//	nocomm optimize -n 3 -delta 1 -kind threshold
//	nocomm simulate -n 3 -delta 1 -kind oblivious -param 0.5 -trials 1000000
//	nocomm figure   F1 [-points 201] [-svg f1.svg] [-csv f1.csv]
//	nocomm table    T2 [-trials 200000] [-csv t2.csv]
//	nocomm list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nocomm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (eval, optimize, simulate, figure, table, list)")
	}
	switch args[0] {
	case "eval":
		return cmdEval(args[1:])
	case "optimize":
		return cmdOptimize(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "figure":
		return cmdFigure(args[1:])
	case "table":
		return cmdTable(args[1:])
	case "certify":
		return cmdCertify(args[1:])
	case "list":
		return cmdList()
	case "-h", "--help", "help":
		fmt.Println("subcommands: eval, optimize, simulate, certify, figure, table, list")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func instanceFlags(fs *flag.FlagSet) (n *int, delta *float64) {
	n = fs.Int("n", 3, "number of players")
	delta = fs.Float64("delta", 1, "bin capacity δ")
	return n, delta
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	n, delta := instanceFlags(fs)
	kind := fs.String("kind", "threshold", "algorithm kind: threshold or oblivious")
	param := fs.Float64("param", 0.5, "common threshold β (threshold) or bin-0 probability a (oblivious)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := core.NewInstance(*n, *delta)
	if err != nil {
		return err
	}
	var p float64
	switch *kind {
	case "threshold":
		p, err = inst.SymmetricThresholdWinProbability(*param)
	case "oblivious":
		p, err = inst.SymmetricObliviousWinProbability(*param)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("n=%d δ=%g %s(%g): P(win) = %.9f\n", *n, *delta, *kind, *param, p)
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	n, delta := instanceFlags(fs)
	kind := fs.String("kind", "threshold", "algorithm kind: threshold or oblivious")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := core.NewInstance(*n, *delta)
	if err != nil {
		return err
	}
	switch *kind {
	case "threshold":
		res, err := inst.OptimalThreshold()
		if err != nil {
			return err
		}
		fmt.Printf("n=%d δ=%g optimal symmetric threshold:\n", *n, *delta)
		fmt.Printf("  β* = %.12f\n  P* = %.12f\n", res.BetaFloat, res.WinProbabilityFloat)
		if !res.Condition.IsZero() {
			fmt.Printf("  optimality condition: %s = 0\n", res.Condition)
		}
		fmt.Printf("  P(β) pieces:\n")
		for i := 0; i < res.Curve.NumPieces(); i++ {
			piece, iv, err := res.Curve.Piece(i)
			if err != nil {
				return err
			}
			fmt.Printf("    [%s, %s]: %s\n", iv.Lo.RatString(), iv.Hi.RatString(), piece)
		}
	case "oblivious":
		res, err := inst.OptimalOblivious()
		if err != nil {
			return err
		}
		det, err := inst.OptimalObliviousDeterministic()
		if err != nil {
			return err
		}
		fmt.Printf("n=%d δ=%g optimal oblivious (Theorem 4.3, symmetric): α* = 1/2, P* = %.9f\n",
			*n, *delta, res.WinProbability)
		fmt.Printf("  deterministic vertex optimum: %d players to bin 1, P = %.9f\n",
			det.Bin1Count, det.WinProbability)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	n, delta := instanceFlags(fs)
	kind := fs.String("kind", "threshold", "algorithm kind: threshold, oblivious, or feasibility")
	param := fs.Float64("param", 0.5, "algorithm parameter")
	trials := fs.Int("trials", 1_000_000, "number of Monte-Carlo trials")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := core.NewInstance(*n, *delta)
	if err != nil {
		return err
	}
	cfg := sim.Config{Trials: *trials, Seed: *seed, Workers: *workers}
	var res sim.Result
	switch *kind {
	case "threshold":
		res, err = inst.SimulateThreshold(*param, cfg)
	case "oblivious":
		res, err = inst.SimulateOblivious(*param, cfg)
	case "feasibility":
		res, err = inst.FeasibilityUpperBound(cfg)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("n=%d δ=%g %s(%g): P = %.6f ± %.6f (95%% CI [%.6f, %.6f], %d trials)\n",
		*n, *delta, *kind, *param, res.P, res.StdErr, res.CILo, res.CIHi, res.Trials)
	return nil
}

func cmdFigure(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("figure needs an id (F1 or F2)")
	}
	id := strings.ToUpper(args[0])
	fs := flag.NewFlagSet("figure", flag.ContinueOnError)
	points := fs.Int("points", 201, "sweep points per curve")
	svgPath := fs.String("svg", "", "write SVG to this path")
	csvPath := fs.String("csv", "", "write CSV to this path")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	exp, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	if exp.Kind != harness.KindFigure {
		return fmt.Errorf("%s is not a figure", id)
	}
	fig, err := exp.RunFigure(*points)
	if err != nil {
		return err
	}
	ascii, err := fig.ASCII(0, 0)
	if err != nil {
		return err
	}
	fmt.Println(ascii)
	if *svgPath != "" {
		svg, err := fig.SVG(0, 0)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return fmt.Errorf("writing SVG: %w", err)
		}
		fmt.Println("wrote", *svgPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("creating CSV: %w", err)
		}
		defer f.Close()
		if err := fig.WriteCSV(f); err != nil {
			return err
		}
		fmt.Println("wrote", *csvPath)
	}
	return nil
}

func cmdTable(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("table needs an id (T1, T2, T3, T4, V1)")
	}
	id := strings.ToUpper(args[0])
	fs := flag.NewFlagSet("table", flag.ContinueOnError)
	trials := fs.Int("trials", 200_000, "Monte-Carlo trials for simulated columns")
	seed := fs.Uint64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write CSV to this path")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	exp, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	if exp.Kind != harness.KindTable {
		return fmt.Errorf("%s is not a table", id)
	}
	tab, err := exp.RunTable(sim.Config{Trials: *trials, Seed: *seed})
	if err != nil {
		return err
	}
	out, err := tab.Render()
	if err != nil {
		return err
	}
	fmt.Println(out)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("creating CSV: %w", err)
		}
		defer f.Close()
		if err := tab.WriteCSV(f); err != nil {
			return err
		}
		fmt.Println("wrote", *csvPath)
	}
	return nil
}

// cmdCertify produces the exact-arithmetic certificates for both of the
// paper's optimality theorems on one instance: the Sturm-certified
// symmetric oblivious maximum at α = 1/2 (Theorem 4.3) and the certified
// optimal threshold with its optimality condition (Section 5.2).
func cmdCertify(args []string) error {
	fs := flag.NewFlagSet("certify", flag.ContinueOnError)
	n, delta := instanceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := core.NewInstance(*n, *delta)
	if err != nil {
		return err
	}
	dr, ok := inst.DeltaRat()
	if !ok {
		return fmt.Errorf("capacity %v is not an exact rational; certificates need exact arithmetic", *delta)
	}
	cert, err := oblivious.CertifyHalfOptimal(*n, dr)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 4.3 certificate (n=%d, δ=%s):\n", *n, dr.RatString())
	fmt.Printf("  symmetric curve P(a) = %s\n", cert.Curve)
	fmt.Printf("  a=1/2 critical: %v; maximal among critical points: %v (interior critical points: %d)\n",
		cert.HalfIsCritical, cert.HalfIsMaximum, cert.InteriorCritical)
	fmt.Printf("  P(1/2) = %s\n\n", cert.HalfValue.RatString())

	thr, err := nonoblivious.OptimalSymmetric(*n, dr)
	if err != nil {
		return err
	}
	fmt.Printf("Section 5.2 certificate (n=%d, δ=%s):\n", *n, dr.RatString())
	fmt.Printf("  β* ∈ [%s..] width ≤ 2^-80, midpoint %.12f\n",
		truncateRat(thr.Beta.Lo.RatString(), 24), thr.BetaFloat)
	fmt.Printf("  P* = %.12f\n", thr.WinProbabilityFloat)
	if !thr.Condition.IsZero() {
		fmt.Printf("  optimality condition (monic): %s = 0\n",
			nonoblivious.PolyFromCondition(thr.Condition))
		resid, err := nonoblivious.OptimalityResidual(*n, dr, thr.Beta.Mid())
		if err != nil {
			return err
		}
		rf, _ := resid.Float64()
		fmt.Printf("  dP/dβ at enclosure midpoint: %.3e (Theorem 5.2 residual)\n", rf)
	}
	return nil
}

func truncateRat(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func cmdList() error {
	fmt.Println("experiments:")
	for _, id := range harness.IDs() {
		e, err := harness.Lookup(id)
		if err != nil {
			return err
		}
		kind := "table "
		if e.Kind == harness.KindFigure {
			kind = "figure"
		}
		fmt.Printf("  %-3s %s  %s\n", e.ID, kind, e.Title)
	}
	return nil
}
