// Package core is the public face of the reproduction of Georgiades,
// Mavronicolas and Spirakis, "Optimal, Distributed Decision-Making: The
// Case of No Communication" (FCT 1999).
//
// It ties the substrate packages together behind a small, task-oriented
// API:
//
//   - describe an instance (n players, bin capacity δ, optional
//     per-player input ranges π_i),
//   - compute exact winning probabilities for oblivious (Theorem 4.1) and
//     single-threshold (Theorem 5.1) algorithms,
//   - derive certified optima (Theorem 4.3 and the Section 5.2 analysis),
//   - build runnable systems for the simulator and cross-check theory
//     against Monte-Carlo estimates.
//
// Downstream users who need finer control can reach the underlying
// packages directly (dist for the Section 2.2 distributions, poly for the
// symbolic machinery, sim for the engine, py91 for the 1991 baseline).
package core

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/problem"
	"repro/internal/sim"
)

// Instance is one distributed decision-making problem: N players with
// inputs uniform on [0, π_i] (homogeneous U[0,1] unless a π vector is
// given) and two bins of capacity Delta, no communication. It embeds the
// canonical problem.Instance — validation and cache identity live there,
// shared with the engine — and layers the paper-level derived quantities
// (certified optima, trade-off rows) on top.
type Instance struct {
	problem.Instance
}

// NewInstance validates and returns a homogeneous U[0,1] instance.
func NewInstance(n int, delta float64) (Instance, error) {
	return NewInstancePi(n, delta, nil)
}

// NewInstancePi validates and returns an instance with per-player input
// ranges π (nil means homogeneous U[0,1]; an all-ones vector is
// canonicalized to it).
func NewInstancePi(n int, delta float64, pi []float64) (Instance, error) {
	p, err := problem.NewPi(n, delta, pi)
	if err != nil {
		return Instance{}, err
	}
	return Instance{Instance: p}, nil
}

// PaperInstance returns the paper's scaling δ = n/3 for the given n (δ=1
// at n=3, δ=4/3 at n=4, ...).
func PaperInstance(n int) (Instance, error) {
	return NewInstance(n, float64(n)/3)
}

// DeltaRat returns the capacity as an exact rational when it is one (the
// paper's instances all are); it reports ok=false when Delta is not
// exactly representable as a small fraction.
func (inst Instance) DeltaRat() (r *big.Rat, ok bool) {
	r = new(big.Rat).SetFloat64(inst.Delta)
	if r == nil {
		return nil, false
	}
	// Accept only small denominators: the paper's δ are n/3-style
	// fractions; float64 artifacts produce huge denominators.
	if r.Denom().BitLen() > 20 {
		// Try to snap to a nearby small fraction k/d, d ≤ 64.
		for d := int64(1); d <= 64; d++ {
			num := math.Round(inst.Delta * float64(d))
			if math.Abs(inst.Delta-num/float64(d)) < 1e-12 {
				return big.NewRat(int64(num), d), true
			}
		}
		return nil, false
	}
	return r, true
}

// EngineInstance returns the canonical problem.Instance the evaluation
// engine consumes (engine.Instance is an alias of it).
func (inst Instance) EngineInstance() engine.Instance {
	return inst.Instance
}

// Evaluate runs an arbitrary engine rule on this instance through the
// shared memoizing engine — the uniform entry point behind the per-class
// helpers below, and the one to use for cross-class comparisons.
func (inst Instance) Evaluate(r engine.Rule, backend engine.Backend) (engine.Result, error) {
	return engine.Default().Evaluate(inst.EngineInstance(), r, backend)
}

// ObliviousWinProbability evaluates Theorem 4.1 for a general probability
// vector (alphas[i] = P(player i chooses bin 0)).
func (inst Instance) ObliviousWinProbability(alphas []float64) (float64, error) {
	if len(alphas) != inst.N {
		return 0, fmt.Errorf("core: %d probabilities for %d players", len(alphas), inst.N)
	}
	res, err := inst.Evaluate(engine.Oblivious{Alphas: alphas}, engine.Exact)
	return res.P, err
}

// SymmetricObliviousWinProbability evaluates Theorem 4.1 when every player
// plays bin 0 with the same probability a (the Figure 2 curve).
func (inst Instance) SymmetricObliviousWinProbability(a float64) (float64, error) {
	res, err := inst.Evaluate(engine.SymmetricOblivious{A: a}, engine.Exact)
	return res.P, err
}

// ThresholdWinProbability evaluates Theorem 5.1 for a general threshold
// vector.
func (inst Instance) ThresholdWinProbability(thresholds []float64) (float64, error) {
	if len(thresholds) != inst.N {
		return 0, fmt.Errorf("core: %d thresholds for %d players", len(thresholds), inst.N)
	}
	res, err := inst.Evaluate(engine.Threshold{Thresholds: thresholds}, engine.Exact)
	return res.P, err
}

// SymmetricThresholdWinProbability evaluates Theorem 5.1 when every player
// uses the common threshold β (the Figure 1 curve).
func (inst Instance) SymmetricThresholdWinProbability(beta float64) (float64, error) {
	res, err := inst.Evaluate(engine.SymmetricThreshold{Beta: beta}, engine.Exact)
	return res.P, err
}

// homogeneousOnly rejects heterogeneous instances for the certified
// optimality analyses, which are derived for the homogeneous game only.
func (inst Instance) homogeneousOnly(what string) error {
	if inst.Heterogeneous() {
		return fmt.Errorf("core: %s is defined for homogeneous U[0,1] inputs only, got π=(%s)",
			what, problem.FormatPi(inst.Pi))
	}
	return nil
}

// OptimalOblivious returns the Theorem 4.3 optimum (α = 1/2 uniformly; see
// the oblivious package for the deterministic-vertex caveat this
// reproduction documents). The analysis covers the homogeneous game only.
func (inst Instance) OptimalOblivious() (oblivious.OptimalResult, error) {
	if err := inst.homogeneousOnly("the Theorem 4.3 optimum"); err != nil {
		return oblivious.OptimalResult{}, err
	}
	return oblivious.Optimal(inst.N, inst.Delta)
}

// OptimalObliviousDeterministic returns the best deterministic oblivious
// algorithm (the balanced-partition vertex optimum, homogeneous game
// only).
func (inst Instance) OptimalObliviousDeterministic() (oblivious.DeterministicResult, error) {
	if err := inst.homogeneousOnly("the deterministic oblivious optimum"); err != nil {
		return oblivious.DeterministicResult{}, err
	}
	return oblivious.OptimalDeterministic(inst.N, inst.Delta)
}

// OptimalThreshold returns the certified optimal symmetric threshold
// (Section 5.2): the exact piecewise polynomial P(β), the Sturm-isolated
// β*, and the optimal winning probability. The capacity must be exactly
// rational (DeltaRat), and the symbolic analysis covers the homogeneous
// game only.
func (inst Instance) OptimalThreshold() (nonoblivious.OptimalResult, error) {
	if err := inst.homogeneousOnly("the Section 5.2 analysis"); err != nil {
		return nonoblivious.OptimalResult{}, err
	}
	d, ok := inst.DeltaRat()
	if !ok {
		return nonoblivious.OptimalResult{}, fmt.Errorf("core: capacity %v is not an exact rational; use nonoblivious.OptimalSymmetric directly", inst.Delta)
	}
	return nonoblivious.OptimalSymmetric(inst.N, d)
}

// ObliviousSystem builds a runnable system where every player plays bin 0
// with probability a.
func (inst Instance) ObliviousSystem(a float64) (*model.System, error) {
	rule, err := model.NewObliviousRule(a)
	if err != nil {
		return nil, err
	}
	return model.UniformSystemPi(inst.N, rule, inst.Delta, inst.Pi)
}

// ThresholdSystem builds a runnable system where every player uses the
// common threshold β.
func (inst Instance) ThresholdSystem(beta float64) (*model.System, error) {
	rule, err := model.NewThresholdRule(beta)
	if err != nil {
		return nil, err
	}
	return model.UniformSystemPi(inst.N, rule, inst.Delta, inst.Pi)
}

// SimulateThreshold estimates the symmetric-threshold winning probability
// by simulation; it is the empirical counterpart of
// SymmetricThresholdWinProbability.
func (inst Instance) SimulateThreshold(beta float64, cfg sim.Config) (sim.Result, error) {
	return inst.simulate(engine.SymmetricThreshold{Beta: beta}, cfg)
}

// SimulateOblivious estimates the symmetric-oblivious winning probability
// by simulation.
func (inst Instance) SimulateOblivious(a float64, cfg sim.Config) (sim.Result, error) {
	return inst.simulate(engine.SymmetricOblivious{A: a}, cfg)
}

// simulate routes a Monte-Carlo run through the shared engine (memoized on
// the rule and the (Trials, Seed, Workers) triple).
func (inst Instance) simulate(r engine.Rule, cfg sim.Config) (sim.Result, error) {
	if cfg.Trials <= 0 {
		return sim.Result{}, fmt.Errorf("core: trial count %d must be positive", cfg.Trials)
	}
	res, err := engine.Default().EvaluateWith(inst.EngineInstance(), r, engine.MonteCarlo, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return *res.Sim, nil
}

// FeasibilityUpperBound estimates the omniscient benchmark: the
// probability that any assignment at all fits both bins.
func (inst Instance) FeasibilityUpperBound(cfg sim.Config) (sim.Result, error) {
	return sim.FeasibilityProbability(inst.Instance, cfg)
}

// Tradeoff is one row of the knowledge/uniformity trade-off table (T4):
// the paper's three algorithm classes plus the omniscient bound on one
// instance.
type Tradeoff struct {
	// Instance identifies the row.
	Instance Instance
	// ObliviousHalf is the Theorem 4.3 value at α = 1/2.
	ObliviousHalf float64
	// ObliviousDeterministic is the balanced-partition vertex optimum.
	ObliviousDeterministic float64
	// ThresholdOptimum is the Section 5.2 optimal threshold value, with
	// OptimalBeta its argmax.
	ThresholdOptimum float64
	OptimalBeta      float64
	// Feasibility is the simulated omniscient upper bound.
	Feasibility float64
}

// ComputeTradeoff assembles the trade-off row for the instance, using cfg
// for the simulated feasibility column.
func (inst Instance) ComputeTradeoff(cfg sim.Config) (Tradeoff, error) {
	obl, err := inst.OptimalOblivious()
	if err != nil {
		return Tradeoff{}, err
	}
	det, err := inst.OptimalObliviousDeterministic()
	if err != nil {
		return Tradeoff{}, err
	}
	thr, err := inst.OptimalThreshold()
	if err != nil {
		return Tradeoff{}, err
	}
	feas, err := inst.FeasibilityUpperBound(cfg)
	if err != nil {
		return Tradeoff{}, err
	}
	return Tradeoff{
		Instance:               inst,
		ObliviousHalf:          obl.WinProbability,
		ObliviousDeterministic: det.WinProbability,
		ThresholdOptimum:       thr.WinProbabilityFloat,
		OptimalBeta:            thr.BetaFloat,
		Feasibility:            feas.P,
	}, nil
}
