package core

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/sim"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(1, 1); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := NewInstance(3, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := NewInstance(3, math.Inf(1)); err == nil {
		t.Error("infinite capacity: expected error")
	}
	inst, err := NewInstance(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N != 3 || inst.Delta != 1 {
		t.Errorf("instance = %+v", inst)
	}
}

func TestPaperInstanceScaling(t *testing.T) {
	inst, err := PaperInstance(4)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N != 4 || math.Abs(inst.Delta-4.0/3) > 1e-15 {
		t.Errorf("PaperInstance(4) = %+v, want δ = 4/3", inst)
	}
	if _, err := PaperInstance(1); err == nil {
		t.Error("n=1: expected error")
	}
}

func TestDeltaRat(t *testing.T) {
	inst, err := PaperInstance(4)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := inst.DeltaRat()
	if !ok {
		t.Fatal("δ = 4/3 should be recognized as rational")
	}
	if r.Cmp(big.NewRat(4, 3)) != 0 {
		t.Errorf("DeltaRat = %v, want 4/3", r)
	}
	exact, err := NewInstance(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r, ok = exact.DeltaRat()
	if !ok || r.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("DeltaRat(0.5) = %v, %v", r, ok)
	}
	irr, err := NewInstance(3, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := irr.DeltaRat(); ok {
		t.Error("π/3 should not be recognized as a small rational")
	}
}

func TestWinProbabilityWrappers(t *testing.T) {
	inst, err := NewInstance(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := inst.ObliviousWinProbability([]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-5.0/12) > 1e-14 {
		t.Errorf("oblivious P = %v, want 5/12", p)
	}
	if _, err := inst.ObliviousWinProbability([]float64{0.5}); err == nil {
		t.Error("wrong vector length: expected error")
	}
	ps, err := inst.SymmetricObliviousWinProbability(0.5)
	if err != nil || math.Abs(ps-p) > 1e-14 {
		t.Errorf("symmetric wrapper mismatch: %v vs %v (err=%v)", ps, p, err)
	}
	pt, err := inst.ThresholdWinProbability([]float64{0.622, 0.622, 0.622})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := inst.SymmetricThresholdWinProbability(0.622)
	if err != nil || math.Abs(pt-pts) > 1e-12 {
		t.Errorf("threshold wrappers mismatch: %v vs %v (err=%v)", pt, pts, err)
	}
	if _, err := inst.ThresholdWinProbability([]float64{0.5}); err == nil {
		t.Error("wrong vector length: expected error")
	}
}

func TestOptimaWrappers(t *testing.T) {
	inst, err := NewInstance(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	obl, err := inst.OptimalOblivious()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obl.WinProbability-5.0/12) > 1e-14 {
		t.Errorf("oblivious optimum = %v", obl.WinProbability)
	}
	det, err := inst.OptimalObliviousDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det.WinProbability-0.5) > 1e-14 {
		t.Errorf("deterministic optimum = %v, want 1/2", det.WinProbability)
	}
	thr, err := inst.OptimalThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thr.BetaFloat-(1-math.Sqrt(1.0/7))) > 1e-14 {
		t.Errorf("threshold optimum β* = %v", thr.BetaFloat)
	}
	irr, err := NewInstance(3, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := irr.OptimalThreshold(); err == nil {
		t.Error("irrational capacity: expected error from OptimalThreshold")
	}
}

func TestSystemBuildersAndSimulation(t *testing.T) {
	inst, err := NewInstance(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Trials: 200000, Seed: 9}
	beta := 1 - math.Sqrt(1.0/7)
	simRes, err := inst.SimulateThreshold(beta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := inst.SymmetricThresholdWinProbability(beta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simRes.P-exact) > 4*simRes.StdErr {
		t.Errorf("threshold sim %v ± %v vs exact %v", simRes.P, simRes.StdErr, exact)
	}
	oblRes, err := inst.SimulateOblivious(0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oblRes.P-5.0/12) > 4*oblRes.StdErr {
		t.Errorf("oblivious sim %v ± %v vs 5/12", oblRes.P, oblRes.StdErr)
	}
	feas, err := inst.FeasibilityUpperBound(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(feas.P-0.75) > 4*feas.StdErr {
		t.Errorf("feasibility %v ± %v vs 3/4", feas.P, feas.StdErr)
	}
	if _, err := inst.ThresholdSystem(1.5); err == nil {
		t.Error("bad threshold: expected error")
	}
	if _, err := inst.ObliviousSystem(-0.5); err == nil {
		t.Error("bad probability: expected error")
	}
}

func TestComputeTradeoffOrdering(t *testing.T) {
	inst, err := NewInstance(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	row, err := inst.ComputeTradeoff(sim.Config{Trials: 150000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// The ladder for n=3, δ=1: oblivious 1/2 (5/12) < deterministic split
	// (1/2) < threshold optimum (0.5446) < feasibility (3/4).
	if !(row.ObliviousHalf < row.ObliviousDeterministic &&
		row.ObliviousDeterministic < row.ThresholdOptimum &&
		row.ThresholdOptimum < row.Feasibility) {
		t.Errorf("trade-off ordering violated: %+v", row)
	}
	if math.Abs(row.OptimalBeta-(1-math.Sqrt(1.0/7))) > 1e-12 {
		t.Errorf("optimal β = %v", row.OptimalBeta)
	}
}
