package core_test

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// ExampleInstance_SymmetricThresholdWinProbability evaluates Theorem 5.1
// for the paper's flagship instance at the naive threshold 1/2.
func ExampleInstance_SymmetricThresholdWinProbability() {
	inst, err := core.NewInstance(3, 1.0)
	if err != nil {
		panic(err)
	}
	p, err := inst.SymmetricThresholdWinProbability(0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(win) at β=1/2: %.6f\n", p)
	// Output:
	// P(win) at β=1/2: 0.479167
}

// ExampleInstance_OptimalThreshold derives the paper's Section 5.2.1
// headline result: the certified optimal threshold for three players.
func ExampleInstance_OptimalThreshold() {
	inst, err := core.NewInstance(3, 1.0)
	if err != nil {
		panic(err)
	}
	opt, err := inst.OptimalThreshold()
	if err != nil {
		panic(err)
	}
	fmt.Printf("β* = %.6f (= 1 - √(1/7): %v)\n", opt.BetaFloat,
		math.Abs(opt.BetaFloat-(1-math.Sqrt(1.0/7))) < 1e-12)
	fmt.Printf("P* = %.6f\n", opt.WinProbabilityFloat)
	fmt.Printf("optimality condition: %s = 0\n", opt.Condition)
	// Output:
	// β* = 0.622036 (= 1 - √(1/7): true)
	// P* = 0.544631
	// optimality condition: 21/2·x^2 - 21·x + 9 = 0
}

// ExampleInstance_OptimalOblivious shows the Theorem 4.3 uniform optimum
// and the deterministic vertex optimum this reproduction documents.
func ExampleInstance_OptimalOblivious() {
	inst, err := core.NewInstance(3, 1.0)
	if err != nil {
		panic(err)
	}
	obl, err := inst.OptimalOblivious()
	if err != nil {
		panic(err)
	}
	det, err := inst.OptimalObliviousDeterministic()
	if err != nil {
		panic(err)
	}
	fmt.Printf("symmetric optimum: α = %.1f, P = %.6f\n", obl.Alpha, obl.WinProbability)
	fmt.Printf("vertex optimum: %d of %d players to bin 1, P = %.6f\n",
		det.Bin1Count, det.N, det.WinProbability)
	// Output:
	// symmetric optimum: α = 0.5, P = 0.416667
	// vertex optimum: 1 of 3 players to bin 1, P = 0.500000
}
