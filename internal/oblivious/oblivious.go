// Package oblivious implements Section 4 of the paper: winning
// probabilities and optimality analysis for oblivious no-communication
// algorithms, in which player i ignores its input and chooses bin 0 with
// probability α_i.
//
// The central objects are:
//
//   - WinningProbability — Theorem 4.1: the exact winning probability of an
//     arbitrary probability vector α, computed as
//     Σ_k φ_δ(k) · P(|b| = k), where φ_δ(k) = F_k(δ)·F_{n-k}(δ) is a
//     product of Irwin-Hall CDFs and |b| follows the Poisson-binomial
//     distribution of the bin choices. (The b-sum in the paper collapses
//     this way because φ depends only on |b|; the collapse turns the 2^n
//     sum into an O(n²) dynamic program.)
//   - OptimalityResidual — Corollary 4.2: the partial derivative
//     ∂P/∂α_k, which must vanish at an optimum.
//   - Optimal — Theorem 4.3: the optimal algorithm is uniform, α_i = 1/2
//     for every i and n.
package oblivious

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/combin"
	"repro/internal/dist"
)

// MaxN bounds the number of players for float64 evaluation; it matches the
// Irwin-Hall float64 stability limit.
const MaxN = dist.MaxIrwinHallN

// phiTable returns φ_δ(k) = F_k(δ) F_{n-k}(δ) for k = 0..n.
func phiTable(n int, capacity float64) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("oblivious: need at least 2 players, got %d", n)
	}
	if n > MaxN {
		return nil, fmt.Errorf("oblivious: float64 evaluation limited to %d players, got %d", MaxN, n)
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return nil, fmt.Errorf("oblivious: capacity %v must be strictly positive and finite", capacity)
	}
	cdf := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		v, err := dist.IrwinHallCDF(k, capacity)
		if err != nil {
			return nil, err
		}
		cdf[k] = v
	}
	phi := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		phi[k] = cdf[k] * cdf[n-k]
	}
	return phi, nil
}

// Phi returns φ_δ(k) = F_k(δ)·F_{n-k}(δ), the conditional winning
// probability of Theorem 4.1 given that exactly k players choose bin 1.
// Lemma 4.4's symmetry φ_δ(k) = φ_δ(n-k) holds by construction.
func Phi(n, k int, capacity float64) (float64, error) {
	if k < 0 || k > n {
		return 0, fmt.Errorf("oblivious: count %d outside [0, %d]", k, n)
	}
	phi, err := phiTable(n, capacity)
	if err != nil {
		return 0, err
	}
	return phi[k], nil
}

// poissonBinomial returns the distribution of the number of successes in
// independent Bernoulli trials with the given success probabilities,
// computed by the standard O(n²) dynamic program.
func poissonBinomial(ps []float64) []float64 {
	pmf := make([]float64, len(ps)+1)
	pmf[0] = 1
	for i, p := range ps {
		for k := i + 1; k >= 1; k-- {
			pmf[k] = pmf[k]*(1-p) + pmf[k-1]*p
		}
		pmf[0] *= 1 - p
	}
	return pmf
}

func validateAlphas(alphas []float64) error {
	if len(alphas) < 2 {
		return fmt.Errorf("oblivious: need at least 2 players, got %d", len(alphas))
	}
	for i, a := range alphas {
		if math.IsNaN(a) || a < 0 || a > 1 {
			return fmt.Errorf("oblivious: α[%d] = %v outside [0, 1]", i, a)
		}
	}
	return nil
}

// WinningProbability evaluates Theorem 4.1: the probability that neither
// bin overflows capacity δ when player i chooses bin 0 with probability
// alphas[i] and inputs are independent U[0,1]. WinningProbabilityPi
// handles heterogeneous ranges x_i ~ U[0, π_i].
func WinningProbability(alphas []float64, capacity float64) (float64, error) {
	if err := validateAlphas(alphas); err != nil {
		return 0, err
	}
	n := len(alphas)
	phi, err := phiTable(n, capacity)
	if err != nil {
		return 0, err
	}
	// b_i = 1 means "player i chose bin 1", which happens w.p. 1 - α_i.
	ps := make([]float64, n)
	for i, a := range alphas {
		ps[i] = 1 - a
	}
	pmf := poissonBinomial(ps)
	var acc combin.Accumulator
	for k := 0; k <= n; k++ {
		acc.Add(phi[k] * pmf[k])
	}
	return acc.Sum(), nil
}

// SymmetricWinningProbability evaluates Theorem 4.1 when every player uses
// the same bin-0 probability a:
//
//	P(δ) = Σ_k C(n,k) (1-a)^k a^(n-k) φ_δ(k).
//
// This is the curve reproduced in Figure 2.
func SymmetricWinningProbability(n int, capacity, a float64) (float64, error) {
	if math.IsNaN(a) || a < 0 || a > 1 {
		return 0, fmt.Errorf("oblivious: probability %v outside [0, 1]", a)
	}
	phi, err := phiTable(n, capacity)
	if err != nil {
		return 0, err
	}
	row, err := combin.PascalRow(n)
	if err != nil {
		return 0, err
	}
	var acc combin.Accumulator
	for k := 0; k <= n; k++ {
		acc.Add(row[k] * math.Pow(1-a, float64(k)) * math.Pow(a, float64(n-k)) * phi[k])
	}
	return acc.Sum(), nil
}

// OptimalityResidual evaluates the Corollary 4.2 condition for player k:
// the partial derivative ∂P_A(δ)/∂α_k of the Theorem 4.1 winning
// probability. At any optimal algorithm it is zero for every k.
func OptimalityResidual(alphas []float64, capacity float64, k int) (float64, error) {
	if err := validateAlphas(alphas); err != nil {
		return 0, err
	}
	n := len(alphas)
	if k < 0 || k >= n {
		return 0, fmt.Errorf("oblivious: player index %d outside [0, %d)", k, n)
	}
	phi, err := phiTable(n, capacity)
	if err != nil {
		return 0, err
	}
	// Leave player k out and compute the Poisson-binomial PMF of the
	// remaining bin-1 indicators.
	ps := make([]float64, 0, n-1)
	for i, a := range alphas {
		if i != k {
			ps = append(ps, 1-a)
		}
	}
	rest := poissonBinomial(ps)
	// P = Σ_j rest[j] · [ (1-α_k) φ(j+1) + α_k φ(j) ], so
	// ∂P/∂α_k = Σ_j rest[j] · (φ(j) - φ(j+1)).
	var acc combin.Accumulator
	for j := 0; j <= n-1; j++ {
		acc.Add(rest[j] * (phi[j] - phi[j+1]))
	}
	return acc.Sum(), nil
}

// OptimalityResidualNorm returns the Euclidean norm of the full gradient
// (∂P/∂α_1, ..., ∂P/∂α_n); it is zero exactly when the Corollary 4.2
// system is satisfied.
func OptimalityResidualNorm(alphas []float64, capacity float64) (float64, error) {
	var sq float64
	for k := range alphas {
		r, err := OptimalityResidual(alphas, capacity, k)
		if err != nil {
			return 0, err
		}
		sq += r * r
	}
	return math.Sqrt(sq), nil
}

// OptimalResult describes the optimal oblivious algorithm for a given
// instance size.
type OptimalResult struct {
	// N is the number of players.
	N int
	// Capacity is the bin capacity δ.
	Capacity float64
	// Alpha is the common optimal bin-0 probability (1/2, Theorem 4.3).
	Alpha float64
	// WinProbability is the optimal winning probability.
	WinProbability float64
}

// Optimal returns the Theorem 4.3 optimal oblivious algorithm: every
// player plays α = 1/2, and the winning probability is
// 2^(-n) Σ_k C(n,k) φ_δ(k).
//
// Reproduction note: Theorem 4.3's optimality claim holds within the class
// of symmetric (exchangeable) oblivious algorithms — α = 1/2 is the unique
// interior stationary point of the Corollary 4.2 system and the maximum of
// SymmetricWinningProbability. Because the winning probability is
// multilinear in the probability vector, its global maximum over ALL
// oblivious algorithms is attained at a hypercube vertex, i.e. by a
// deterministic, non-uniform assignment (see OptimalDeterministic), which
// strictly beats α = 1/2 already at n = 3, δ = 1 (1/2 vs 5/12). The
// paper's Lemma 4.5 symmetry argument applies only to interior critical
// points, which is how the corner solutions escape it; EXPERIMENTS.md
// records this discrepancy.
func Optimal(n int, capacity float64) (OptimalResult, error) {
	p, err := SymmetricWinningProbability(n, capacity, 0.5)
	if err != nil {
		return OptimalResult{}, err
	}
	return OptimalResult{N: n, Capacity: capacity, Alpha: 0.5, WinProbability: p}, nil
}

// DeterministicResult describes the best deterministic oblivious algorithm:
// a fixed partition of the players into the two bins.
type DeterministicResult struct {
	// N is the number of players.
	N int
	// Capacity is the bin capacity δ.
	Capacity float64
	// Bin1Count is the optimal number of players assigned to bin 1 (the
	// remaining N - Bin1Count go to bin 0). Ties resolve to the smaller
	// count.
	Bin1Count int
	// WinProbability is φ_δ(Bin1Count), the probability that neither bin
	// overflows under the fixed partition.
	WinProbability float64
}

// OptimalDeterministic returns the best deterministic oblivious algorithm.
// A deterministic oblivious algorithm is a vertex of the probability
// hypercube — a fixed partition sending k players to bin 1 — and wins with
// probability φ_δ(k), so the best one maximizes φ over k. Since the
// winning probability of Theorem 4.1 is multilinear in α, this vertex
// optimum is also the global optimum over all (randomized) oblivious
// algorithms.
func OptimalDeterministic(n int, capacity float64) (DeterministicResult, error) {
	phi, err := phiTable(n, capacity)
	if err != nil {
		return DeterministicResult{}, err
	}
	best := 0
	for k := 1; k <= n; k++ {
		if phi[k] > phi[best] {
			best = k
		}
	}
	return DeterministicResult{
		N:              n,
		Capacity:       capacity,
		Bin1Count:      best,
		WinProbability: phi[best],
	}, nil
}

// WinningProbabilityRat evaluates Theorem 4.1 exactly for rational
// parameters, serving as the oracle for the float64 path.
func WinningProbabilityRat(alphas []*big.Rat, capacity *big.Rat) (*big.Rat, error) {
	n := len(alphas)
	if n < 2 {
		return nil, fmt.Errorf("oblivious: need at least 2 players, got %d", n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("oblivious: capacity must be strictly positive")
	}
	one := big.NewRat(1, 1)
	for i, a := range alphas {
		if a == nil || a.Sign() < 0 || a.Cmp(one) > 0 {
			return nil, fmt.Errorf("oblivious: α[%d] outside [0, 1]", i)
		}
	}
	phi := make([]*big.Rat, n+1)
	for k := 0; k <= n; k++ {
		fk, err := dist.IrwinHallCDFRat(k, capacity)
		if err != nil {
			return nil, err
		}
		phi[k] = fk
	}
	for k := 0; k <= n/2; k++ {
		p := new(big.Rat).Mul(phi[k], phi[n-k])
		phi[k], phi[n-k] = p, p
		if k != n-k {
			phi[n-k] = new(big.Rat).Set(p)
		}
	}
	// Poisson-binomial DP over bin-1 probabilities 1 - α_i.
	pmf := make([]*big.Rat, n+1)
	pmf[0] = big.NewRat(1, 1)
	for i := 1; i <= n; i++ {
		pmf[i] = new(big.Rat)
	}
	tmp := new(big.Rat)
	for i, a := range alphas {
		p1 := new(big.Rat).Sub(one, a) // P(bin 1)
		for k := i + 1; k >= 1; k-- {
			pmf[k].Mul(pmf[k], a)
			tmp.Mul(pmf[k-1], p1)
			pmf[k].Add(pmf[k], tmp)
		}
		pmf[0].Mul(pmf[0], a)
	}
	total := new(big.Rat)
	for k := 0; k <= n; k++ {
		tmp.Mul(phi[k], pmf[k])
		total.Add(total, tmp)
	}
	return total, nil
}
