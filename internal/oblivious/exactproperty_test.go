package oblivious

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
)

// dyadicCapacity returns δ = round(n·64/3)/64 as (float64, *big.Rat),
// exactly representable in both arithmetics.
func dyadicCapacity(n int) (float64, *big.Rat) {
	k := int64(math.Round(float64(n) * 64 / 3))
	return float64(k) / 64, big.NewRat(k, 64)
}

// dyadic64 returns k/64 with k ~ U{lo, ..., hi} in both arithmetics.
func dyadic64(rng *rand.Rand, lo, hi int64) (float64, *big.Rat) {
	k := lo + rng.Int64N(hi-lo+1)
	return float64(k) / 64, big.NewRat(k, 64)
}

// TestWinningProbabilityPiMatchesRatOracle pins the float64 heterogeneous
// Theorem 4.1 fast path (sum-over-subsets volume table) against the exact
// rational oracle on random dyadic bin-0 probabilities and input ranges
// π ∈ [1/2, 2], within the documented ExactErrorBound.
func TestWinningProbabilityPiMatchesRatOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 1))
	for n := 2; n <= MaxNHeteroExact; n++ {
		capF, capR := dyadicCapacity(n)
		for trial := 0; trial < 3; trial++ {
			alphas := make([]float64, n)
			alphasR := make([]*big.Rat, n)
			pis := make([]float64, n)
			pisR := make([]*big.Rat, n)
			piMin := math.Inf(1)
			for i := range alphas {
				alphas[i], alphasR[i] = dyadic64(rng, 0, 64)
				pis[i], pisR[i] = dyadic64(rng, 32, 128)
				piMin = math.Min(piMin, pis[i])
			}
			bound := ExactErrorBound(n, capF, piMin)
			got, err := WinningProbabilityPi(alphas, pis, capF)
			if err != nil {
				t.Fatalf("n=%d float: %v", n, err)
			}
			want, err := WinningProbabilityPiRat(alphasR, pisR, capR)
			if err != nil {
				t.Fatalf("n=%d rat: %v", n, err)
			}
			wf, _ := want.Float64()
			if d := math.Abs(got - wf); d > bound {
				t.Errorf("n=%d trial %d: float %v vs oracle %v, |diff| %g exceeds certified bound %g",
					n, trial, got, wf, d, bound)
			}
		}
	}
}

// TestHeteroWorkerDeterminism requires the sharded enumeration to be
// bit-identical across worker counts — the property that keeps the worker
// count out of the engine's cache key.
func TestHeteroWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	const n = 12
	capF, _ := dyadicCapacity(n)
	alphas := make([]float64, n)
	pis := make([]float64, n)
	for i := range alphas {
		alphas[i], _ = dyadic64(rng, 0, 64)
		pis[i], _ = dyadic64(rng, 32, 128)
	}
	base, err := WinningProbabilityPiOpts(alphas, pis, capF, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := WinningProbabilityPiOpts(alphas, pis, capF, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(base) {
			t.Errorf("workers=%d returned %x, workers=1 returned %x",
				workers, math.Float64bits(got), math.Float64bits(base))
		}
	}
}
