package oblivious

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/dist"
)

// MaxNHetero bounds the player count for heterogeneous-input evaluation:
// the subset sum below costs Θ(3^n), matching the general non-oblivious
// evaluator's budget.
const MaxNHetero = 15

// WinningProbabilityPi generalizes Theorem 4.1 to heterogeneous inputs
// x_i ~ U[0, π_i]: the probability that neither bin overflows capacity δ
// when player i chooses bin 0 with probability alphas[i]. A nil (or
// all-ones) π delegates to the homogeneous Theorem 4.1 evaluator.
//
// With unequal ranges the bin loads are no longer exchangeable, so the
// Poisson-binomial collapse over |b| does not apply; instead the 2^n
// bin-choice vectors are summed directly,
//
//	P = Σ_S Π_{i∈S}(1-α_i) · Π_{i∉S}α_i · F_{Sᶜ}(δ) · F_S(δ),
//
// where S is the bin-1 set and F_T is the Lemma 2.4 CDF of Σ_{i∈T} x_i
// (dist.UniformSum over that subset's ranges, F_∅ ≡ 1) — exactly the
// φ_δ(k) = F_k(δ)F_{n-k}(δ) product of the homogeneous proof with
// Irwin-Hall CDFs replaced by their heterogeneous generalization.
func WinningProbabilityPi(alphas, pi []float64, capacity float64) (float64, error) {
	if err := validateAlphas(alphas); err != nil {
		return 0, err
	}
	n := len(alphas)
	hetero := false
	for _, w := range pi {
		if w != 1 {
			hetero = true
			break
		}
	}
	if !hetero {
		return WinningProbability(alphas, capacity)
	}
	if len(pi) != n {
		return 0, fmt.Errorf("oblivious: %d input ranges for %d players", len(pi), n)
	}
	for i, w := range pi {
		if !(w > 0) || math.IsInf(w, 1) {
			return 0, fmt.Errorf("oblivious: input range π[%d] = %v must be strictly positive and finite", i, w)
		}
	}
	if n > MaxNHetero {
		return 0, fmt.Errorf("oblivious: heterogeneous evaluation limited to %d players, got %d", MaxNHetero, n)
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return 0, fmt.Errorf("oblivious: capacity %v must be strictly positive and finite", capacity)
	}
	var total combin.Accumulator
	var cdfErr error
	zeros := make([]float64, 0, n)
	ones := make([]float64, 0, n)
	err := combin.ForEachSubset(n, func(b uint64) bool {
		weight := 1.0
		zeros = zeros[:0]
		ones = ones[:0]
		for i := 0; i < n; i++ {
			if b&(1<<uint(i)) == 0 {
				weight *= alphas[i]
				zeros = append(zeros, pi[i])
			} else {
				weight *= 1 - alphas[i]
				ones = append(ones, pi[i])
			}
		}
		if weight == 0 {
			return true
		}
		var f0, f1 float64
		if f0, cdfErr = subsetCDF(zeros, capacity); cdfErr != nil {
			return false
		}
		if f0 == 0 {
			return true
		}
		if f1, cdfErr = subsetCDF(ones, capacity); cdfErr != nil {
			return false
		}
		total.Add(weight * f0 * f1)
		return true
	})
	if err == nil {
		err = cdfErr
	}
	if err != nil {
		return 0, err
	}
	return clamp01(total.Sum()), nil
}

// subsetCDF returns P(Σ U[0, w_i] ≤ t) for the given ranges, with the
// empty sum fitting always.
func subsetCDF(widths []float64, t float64) (float64, error) {
	if len(widths) == 0 {
		return 1, nil
	}
	u, err := dist.NewUniformSum(widths)
	if err != nil {
		return 0, err
	}
	return u.CDF(t), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
