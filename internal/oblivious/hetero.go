package oblivious

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/dist"
	"repro/internal/obs"
)

// MaxNHetero bounds the player count for heterogeneous-input evaluation.
// The sum-over-subsets volume table costs O(n²·2^n) time and a handful of
// 2^n-entry float64 arrays (8·2^n bytes each), so n = 20 — double the old
// Θ(3^n) per-subset-CDF limit — evaluates in well under a second.
const MaxNHetero = 20

// WinningProbabilityPi generalizes Theorem 4.1 to heterogeneous inputs
// x_i ~ U[0, π_i]: the probability that neither bin overflows capacity δ
// when player i chooses bin 0 with probability alphas[i]. A nil (or
// all-ones) π delegates to the homogeneous Theorem 4.1 evaluator.
func WinningProbabilityPi(alphas, pi []float64, capacity float64) (float64, error) {
	return WinningProbabilityPiOpts(alphas, pi, capacity, 0, nil)
}

// WinningProbabilityPiOpts is WinningProbabilityPi with explicit worker
// sharding and observability. workers ≤ 1 evaluates serially; any worker
// count returns bit-identical results (the enumeration is split on a fixed
// chunk grid with a fixed-order reduction), so callers may key caches on
// the inputs alone. A nil observer disables instrumentation.
//
// With unequal ranges the bin loads are no longer exchangeable, so the
// Poisson-binomial collapse over |b| does not apply; the 2^n bin-choice
// vectors are summed directly,
//
//	P = Σ_S Π_{i∈S}(1-α_i) · Π_{i∉S}α_i · F_{Sᶜ}(δ) · F_S(δ),
//
// where S is the bin-1 set and F_T is the Lemma 2.4 CDF of Σ_{i∈T} x_i
// (F_∅ ≡ 1) — the φ_δ(k) = F_k(δ)F_{n-k}(δ) product of the homogeneous
// proof with Irwin-Hall CDFs replaced by their heterogeneous
// generalization. All 2^n CDFs come from one dist.AllSubsetVolumes
// sum-over-subsets table (O(n²·2^n) total) instead of a fresh Θ(2^|T|)
// inclusion-exclusion per subset, and the bin-choice weights come from two
// low-bit-recurrence product tables, making each summand O(1).
func WinningProbabilityPiOpts(alphas, pi []float64, capacity float64, workers int, o *obs.Observer) (float64, error) {
	if err := validateAlphas(alphas); err != nil {
		return 0, err
	}
	n := len(alphas)
	hetero := false
	for _, w := range pi {
		if w != 1 {
			hetero = true
			break
		}
	}
	if !hetero {
		return WinningProbability(alphas, capacity)
	}
	if len(pi) != n {
		return 0, fmt.Errorf("oblivious: %d input ranges for %d players", len(pi), n)
	}
	for i, w := range pi {
		if !(w > 0) || math.IsInf(w, 1) {
			return 0, fmt.Errorf("oblivious: input range π[%d] = %v must be strictly positive and finite", i, w)
		}
	}
	if n > MaxNHetero {
		return 0, fmt.Errorf("oblivious: heterogeneous evaluation limited to %d players, got %d", MaxNHetero, n)
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return 0, fmt.Errorf("oblivious: capacity %v must be strictly positive and finite", capacity)
	}
	if workers <= 0 {
		workers = 1
	}
	vol, stats, err := dist.AllSubsetVolumes(pi, capacity, workers)
	if err != nil {
		return 0, err
	}
	piProd, err := combin.SubsetProducts(pi)
	if err != nil {
		return 0, err
	}
	pZero, err := combin.SubsetProducts(alphas) // Π_{i∈T} α_i
	if err != nil {
		return 0, err
	}
	oneMinus := make([]float64, n)
	for i, a := range alphas {
		oneMinus[i] = 1 - a
	}
	pOne, err := combin.SubsetProducts(oneMinus) // Π_{i∈T} (1-α_i)
	if err != nil {
		return 0, err
	}
	// F_T(δ) = vol[T] / Π_{i∈T} π_i, reusing the volume table in place.
	cdf := vol
	for mask := range cdf {
		cdf[mask] = clamp01(cdf[mask] / piProd[mask])
	}
	full := (uint64(1) << uint(n)) - 1
	total, chunks, err := combin.ChunkedMaskSum(n, workers, func() func(uint64) float64 {
		return func(s uint64) float64 {
			z := full &^ s
			w := pZero[z] * pOne[s]
			if w == 0 {
				return 0
			}
			return w * cdf[z] * cdf[s]
		}
	})
	if err != nil {
		return 0, err
	}
	o.Counter("exact.subsets").Add(int64(stats.Subsets))
	o.Counter("exact.steps.incremental").Add(int64(stats.Incremental))
	o.Counter("exact.steps.rebuilt").Add(int64(stats.Rebuilt))
	o.Counter("exact.chunks").Add(int64(chunks))
	o.Gauge("exact.workers").Set(float64(workers))
	return clamp01(total), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ExactErrorBound is the documented absolute-error bound of the float64
// heterogeneous evaluator against the exact rational value (see
// WinningProbabilityPiRat): a conservative forward-error analysis of the
// inclusion-exclusion terms — at most n²·2^n compensated operations on
// terms no larger than M = max_m r^m/m! with r = max(δ, n−δ, 1), divided
// by the subset range products (bounded below by min(π_i, 1)^n). piMin is
// the smallest input range (pass 1 for homogeneous inputs). The bound is
// deliberately loose — observed errors at n = 10 are several orders of
// magnitude smaller — but it is certified: the property tests pin the
// float path against the big.Rat oracle within exactly this bound.
func ExactErrorBound(n int, capacity, piMin float64) float64 {
	return sosErrorBound(n, capacity, piMin, float64(n)*float64(n)*math.Exp2(float64(n)))
}

// sosErrorBound is the shared bound kernel: ops compensated operations on
// inclusion-exclusion terms of magnitude ≤ max_m r^m/m!, inflated by the
// worst-case range normalization.
func sosErrorBound(n int, capacity, piMin, ops float64) float64 {
	if n < 1 {
		return 0
	}
	r := math.Max(math.Max(capacity, float64(n)-capacity), 1)
	mag, term := 1.0, 1.0
	for m := 1; m <= n; m++ {
		term *= r / float64(m)
		mag = math.Max(mag, term)
	}
	norm := 1.0
	if piMin > 0 && piMin < 1 {
		norm = math.Pow(piMin, -float64(n))
	}
	return 32 * ops * mag * norm * 0x1p-53
}
