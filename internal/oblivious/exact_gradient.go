package oblivious

import (
	"fmt"
	"math/big"

	"repro/internal/dist"
)

// OptimalityResidualRat evaluates the Corollary 4.2 condition exactly:
// the partial derivative ∂P_A(δ)/∂α_k of the Theorem 4.1 winning
// probability at a rational probability vector. At α = (1/2, ..., 1/2)
// the result is exactly zero for every k, which certifies the stationarity
// half of Theorem 4.3 in exact arithmetic.
func OptimalityResidualRat(alphas []*big.Rat, capacity *big.Rat, k int) (*big.Rat, error) {
	n := len(alphas)
	if n < 2 {
		return nil, fmt.Errorf("oblivious: need at least 2 players, got %d", n)
	}
	if k < 0 || k >= n {
		return nil, fmt.Errorf("oblivious: player index %d outside [0, %d)", k, n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("oblivious: capacity must be strictly positive")
	}
	one := big.NewRat(1, 1)
	for i, a := range alphas {
		if a == nil || a.Sign() < 0 || a.Cmp(one) > 0 {
			return nil, fmt.Errorf("oblivious: α[%d] outside [0, 1]", i)
		}
	}
	// φ_δ(j) = F_j(δ) F_{n-j}(δ), exact.
	cdf := make([]*big.Rat, n+1)
	for j := 0; j <= n; j++ {
		v, err := dist.IrwinHallCDFRat(j, capacity)
		if err != nil {
			return nil, err
		}
		cdf[j] = v
	}
	phi := make([]*big.Rat, n+1)
	for j := 0; j <= n; j++ {
		phi[j] = new(big.Rat).Mul(cdf[j], cdf[n-j])
	}
	// Leave-one-out Poisson-binomial PMF of the bin-1 indicators.
	pmf := make([]*big.Rat, n)
	pmf[0] = big.NewRat(1, 1)
	for i := 1; i < n; i++ {
		pmf[i] = new(big.Rat)
	}
	tmp := new(big.Rat)
	idx := 0
	for i, a := range alphas {
		if i == k {
			continue
		}
		p1 := new(big.Rat).Sub(one, a)
		for j := idx + 1; j >= 1; j-- {
			pmf[j].Mul(pmf[j], a)
			tmp.Mul(pmf[j-1], p1)
			pmf[j].Add(pmf[j], tmp)
		}
		pmf[0].Mul(pmf[0], a)
		idx++
	}
	// ∂P/∂α_k = Σ_j pmf[j] (φ(j) - φ(j+1)).
	total := new(big.Rat)
	diff := new(big.Rat)
	for j := 0; j <= n-1; j++ {
		diff.Sub(phi[j], phi[j+1])
		tmp.Mul(pmf[j], diff)
		total.Add(total, tmp)
	}
	return total, nil
}
