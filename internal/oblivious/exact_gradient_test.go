package oblivious

import (
	"math"
	"math/big"
	"testing"
)

func TestOptimalityResidualRatZeroAtHalfExactly(t *testing.T) {
	half := big.NewRat(1, 2)
	for n := 2; n <= 8; n++ {
		alphas := make([]*big.Rat, n)
		for i := range alphas {
			alphas[i] = half
		}
		for _, capacity := range []*big.Rat{big.NewRat(1, 1), big.NewRat(int64(n), 3)} {
			for k := 0; k < n; k++ {
				r, err := OptimalityResidualRat(alphas, capacity, k)
				if err != nil {
					t.Fatal(err)
				}
				if r.Sign() != 0 {
					t.Errorf("n=%d δ=%v k=%d: exact residual %v, want exactly 0", n, capacity, k, r)
				}
			}
		}
	}
}

func TestOptimalityResidualRatMatchesFloat(t *testing.T) {
	alphas := []*big.Rat{big.NewRat(1, 3), big.NewRat(7, 10), big.NewRat(9, 20), big.NewRat(3, 5)}
	af := make([]float64, len(alphas))
	for i, a := range alphas {
		af[i], _ = a.Float64()
	}
	capacity := big.NewRat(6, 5)
	for k := range alphas {
		exact, err := OptimalityResidualRat(alphas, capacity, k)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := OptimalityResidual(af, 1.2, k)
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := exact.Float64()
		if math.Abs(approx-ef) > 1e-12 {
			t.Errorf("k=%d: float %v vs exact %v", k, approx, ef)
		}
	}
}

func TestOptimalityResidualRatValidation(t *testing.T) {
	half := big.NewRat(1, 2)
	one := big.NewRat(1, 1)
	pair := []*big.Rat{half, half}
	if _, err := OptimalityResidualRat([]*big.Rat{half}, one, 0); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := OptimalityResidualRat(pair, one, -1); err == nil {
		t.Error("k=-1: expected error")
	}
	if _, err := OptimalityResidualRat(pair, one, 2); err == nil {
		t.Error("k out of range: expected error")
	}
	if _, err := OptimalityResidualRat(pair, nil, 0); err == nil {
		t.Error("nil capacity: expected error")
	}
	if _, err := OptimalityResidualRat(pair, big.NewRat(0, 1), 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := OptimalityResidualRat([]*big.Rat{half, nil}, one, 0); err == nil {
		t.Error("nil α: expected error")
	}
	if _, err := OptimalityResidualRat([]*big.Rat{half, big.NewRat(2, 1)}, one, 0); err == nil {
		t.Error("α > 1: expected error")
	}
}

func TestOptimalityResidualRatNonZeroAwayFromHalf(t *testing.T) {
	alphas := []*big.Rat{big.NewRat(9, 10), big.NewRat(1, 10), big.NewRat(1, 2)}
	r, err := OptimalityResidualRat(alphas, big.NewRat(1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sign() == 0 {
		t.Error("residual at asymmetric point should be non-zero")
	}
}
