package oblivious

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestWinningProbabilityPiMatchesHomogeneous pins the heterogeneous
// evaluator to Theorem 4.1 when every range is 1 (spelled out or nil).
func TestWinningProbabilityPiMatchesHomogeneous(t *testing.T) {
	alphaSets := [][]float64{
		{0.5, 0.5, 0.5},
		{0.3, 0.7, 0.5},
		{1, 0, 0.25, 0.9},
	}
	for _, alphas := range alphaSets {
		for _, capacity := range []float64{0.5, 1, 1.5} {
			want, err := WinningProbability(alphas, capacity)
			if err != nil {
				t.Fatalf("WinningProbability(%v, %v): %v", alphas, capacity, err)
			}
			ones := make([]float64, len(alphas))
			for i := range ones {
				ones[i] = 1
			}
			for _, pi := range [][]float64{nil, ones} {
				got, err := WinningProbabilityPi(alphas, pi, capacity)
				if err != nil {
					t.Fatalf("WinningProbabilityPi(%v, %v, %v): %v", alphas, pi, capacity, err)
				}
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("WinningProbabilityPi(%v, %v, %v) = %v, want %v", alphas, pi, capacity, got, want)
				}
			}
		}
	}
}

// TestWinningProbabilityPiDegenerate pins hand-checkable heterogeneous
// cases: deterministic assignments reduce to products of uniform-sum
// CDFs.
func TestWinningProbabilityPiDegenerate(t *testing.T) {
	// Both players always choose bin 0: win iff x_0 + x_1 ≤ δ with
	// x_0 ~ U[0, 1/2], x_1 ~ U[0, 1]. For δ = 1:
	// P = 1 - P(sum > 1) = 1 - (1/2)·(1/2)²·... compute directly:
	// P(U[0,.5]+U[0,1] ≤ 1) = (area) = 1 - (0.5²/2)/(0.5·1) = 1 - 0.25.
	got, err := WinningProbabilityPi([]float64{1, 1}, []float64{0.5, 1}, 1)
	if err != nil {
		t.Fatalf("WinningProbabilityPi: %v", err)
	}
	if want := 0.75; math.Abs(got-want) > 1e-12 {
		t.Fatalf("both-to-bin0 = %v, want %v", got, want)
	}

	// Split assignment: player 0 (range 1/2) to bin 0, player 1 (range 1)
	// to bin 1. Each load fits capacity 1 surely: P = 1.
	got, err = WinningProbabilityPi([]float64{1, 0}, []float64{0.5, 1}, 1)
	if err != nil {
		t.Fatalf("WinningProbabilityPi: %v", err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("split = %v, want 1", got)
	}
}

// TestWinningProbabilityPiMonteCarlo cross-checks the subset-sum
// evaluator against direct simulation of the heterogeneous game.
func TestWinningProbabilityPiMonteCarlo(t *testing.T) {
	alphas := []float64{0.5, 0.3, 0.8}
	pi := []float64{0.5, 1, 0.75}
	capacity := 0.8
	exact, err := WinningProbabilityPi(alphas, pi, capacity)
	if err != nil {
		t.Fatalf("WinningProbabilityPi: %v", err)
	}
	rng := rand.New(rand.NewPCG(7, 11))
	const trials = 400_000
	wins := 0
	for trial := 0; trial < trials; trial++ {
		var load0, load1 float64
		for i := range alphas {
			x := rng.Float64() * pi[i]
			if rng.Float64() < alphas[i] {
				load0 += x
			} else {
				load1 += x
			}
		}
		if load0 <= capacity && load1 <= capacity {
			wins++
		}
	}
	mc := float64(wins) / trials
	se := math.Sqrt(exact * (1 - exact) / trials)
	if math.Abs(mc-exact) > 4*se+1e-9 {
		t.Fatalf("exact %v vs MC %v differ by more than 4σ (σ=%v)", exact, mc, se)
	}
}

// TestWinningProbabilityPiRejects covers the validation paths.
func TestWinningProbabilityPiRejects(t *testing.T) {
	cases := []struct {
		name     string
		alphas   []float64
		pi       []float64
		capacity float64
	}{
		{"short pi", []float64{0.5, 0.5}, []float64{0.5}, 1},
		{"zero range", []float64{0.5, 0.5}, []float64{0, 1}, 1},
		{"negative range", []float64{0.5, 0.5}, []float64{-1, 2}, 1},
		{"NaN range", []float64{0.5, 0.5}, []float64{math.NaN(), 2}, 1},
		{"bad alpha", []float64{1.5, 0.5}, []float64{0.5, 1}, 1},
		{"bad capacity", []float64{0.5, 0.5}, []float64{0.5, 2}, 0},
		{"too many players", make([]float64, MaxNHetero+1), headroomPi(MaxNHetero + 1), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := WinningProbabilityPi(tc.alphas, tc.pi, tc.capacity); err == nil {
				t.Fatalf("WinningProbabilityPi(%v, %v, %v) succeeded, want error", tc.alphas, tc.pi, tc.capacity)
			}
		})
	}
}

// headroomPi builds a heterogeneous π vector of the given length.
func headroomPi(n int) []float64 {
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 0.5
	}
	return pi
}
