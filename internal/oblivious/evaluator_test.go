package oblivious

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestEvaluatorBitIdenticalToOneShot requires every evaluator path — full
// refresh, single-coordinate delta, repeated reuse — to return exactly the
// bits of WinningProbabilityPiOpts, the property that lets engine sweeps
// memoize evaluator results under the one-shot cache keys.
func TestEvaluatorBitIdenticalToOneShot(t *testing.T) {
	rng := rand.New(rand.NewPCG(64, 1))
	for _, n := range []int{2, 5, 9} {
		capacity := float64(n) / 3
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = 0.5 + rng.Float64()*1.5
		}
		ev, err := NewEvaluator(pi, capacity, 1)
		if err != nil {
			t.Fatal(err)
		}
		alphas := make([]float64, n)
		for i := range alphas {
			alphas[i] = rng.Float64()
		}
		check := func(label string, got float64) {
			t.Helper()
			want, err := WinningProbabilityPiOpts(alphas, pi, capacity, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d %s: evaluator %x, one-shot %x",
					n, label, math.Float64bits(got), math.Float64bits(want))
			}
		}
		got, err := ev.Evaluate(alphas)
		if err != nil {
			t.Fatal(err)
		}
		check("initial", got)
		// 200-step random coordinate walk through SetCoord.
		for step := 0; step < 200; step++ {
			i := rng.IntN(n)
			alphas[i] = rng.Float64()
			got, err := ev.SetCoord(i, alphas[i])
			if err != nil {
				t.Fatal(err)
			}
			check("walk", got)
		}
		// Full-vector refreshes through Evaluate.
		for trial := 0; trial < 5; trial++ {
			for i := range alphas {
				alphas[i] = rng.Float64()
			}
			got, err := ev.Evaluate(alphas)
			if err != nil {
				t.Fatal(err)
			}
			check("refresh", got)
		}
		stats := ev.Stats()
		if stats.DeltaUpdates == 0 || stats.FullRebuilds == 0 {
			t.Errorf("n=%d: counters empty after walk: %+v", n, stats)
		}
	}
}

// TestEvaluatorSteadyStateAllocs pins steady-state Evaluate and SetCoord
// at zero allocations per operation.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	const n = 8
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 0.5 + float64(i)*0.1
	}
	ev, err := NewEvaluator(pi, float64(n)/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	alphas := make([]float64, n)
	for i := range alphas {
		alphas[i] = float64(i+1) / float64(n+1)
	}
	if _, err := ev.Evaluate(alphas); err != nil {
		t.Fatal(err)
	}
	other := make([]float64, n)
	for i := range other {
		other[i] = 1 - alphas[i]
	}
	swap := false
	if got := testing.AllocsPerRun(20, func() {
		swap = !swap
		v := alphas
		if swap {
			v = other
		}
		if _, err := ev.Evaluate(v); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Evaluate: %v allocs/op, want 0", got)
	}
	flip := 0.25
	if got := testing.AllocsPerRun(20, func() {
		flip = 0.75 - flip
		if _, err := ev.SetCoord(3, flip); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("SetCoord: %v allocs/op, want 0", got)
	}
}

// TestEvaluatorErrors covers the construction and input guards.
func TestEvaluatorErrors(t *testing.T) {
	if _, err := NewEvaluator([]float64{1.5}, 1, 1); err == nil {
		t.Error("single player accepted")
	}
	if _, err := NewEvaluator([]float64{1, 1, 1}, 1, 1); err == nil {
		t.Error("homogeneous π accepted")
	}
	if _, err := NewEvaluator([]float64{1, -2}, 1, 1); err == nil {
		t.Error("negative π accepted")
	}
	if _, err := NewEvaluator([]float64{1, math.Inf(1)}, 1, 1); err == nil {
		t.Error("infinite π accepted")
	}
	if _, err := NewEvaluator([]float64{1, 2}, -1, 1); err == nil {
		t.Error("negative capacity accepted")
	}
	pi := make([]float64, MaxNHetero+1)
	for i := range pi {
		pi[i] = 2
	}
	if _, err := NewEvaluator(pi, 1, 1); err == nil {
		t.Error("over-cap n accepted")
	}
	ev, err := NewEvaluator([]float64{0.5, 2}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.SetCoord(0, 0.5); err == nil {
		t.Error("SetCoord before Evaluate accepted")
	}
	if _, err := ev.Evaluate([]float64{0.5}); err == nil {
		t.Error("wrong-length α accepted")
	}
	if _, err := ev.Evaluate([]float64{0.5, math.NaN()}); err == nil {
		t.Error("NaN α accepted")
	}
	if _, err := ev.Evaluate([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.SetCoord(2, 0.5); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	if _, err := ev.SetCoord(0, 1.5); err == nil {
		t.Error("α above 1 accepted")
	}
}

// FuzzEvaluatorSetCoord feeds hostile coordinate updates and requires an
// error (never a panic) on invalid input and bit-identity with the
// one-shot evaluator on valid input.
func FuzzEvaluatorSetCoord(f *testing.F) {
	f.Add(0, 0.5)
	f.Add(-3, 0.25)
	f.Add(9, 2.0)
	f.Add(1, math.NaN())
	f.Add(2, math.Inf(-1))
	f.Fuzz(func(t *testing.T, i int, a float64) {
		pi := []float64{0.5, 1.25, 2}
		capacity := 1.0
		ev, err := NewEvaluator(pi, capacity, 1)
		if err != nil {
			t.Fatal(err)
		}
		alphas := []float64{0.25, 0.5, 0.75}
		if _, err := ev.Evaluate(alphas); err != nil {
			t.Fatal(err)
		}
		got, err := ev.SetCoord(i, a)
		if err != nil {
			return
		}
		if i < 0 || i >= len(pi) || math.IsNaN(a) || a < 0 || a > 1 {
			t.Fatalf("SetCoord(%d, %v) accepted invalid input", i, a)
		}
		alphas[i] = a
		want, err := WinningProbabilityPiOpts(alphas, pi, capacity, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("SetCoord(%d, %v) = %x, one-shot %x", i, a, math.Float64bits(got), math.Float64bits(want))
		}
	})
}
