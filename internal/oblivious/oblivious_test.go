package oblivious

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/sim"
)

func TestPhiSymmetryLemma44(t *testing.T) {
	// Lemma 4.4: φ_t(k) = φ_t(n - k).
	for n := 2; n <= 10; n++ {
		for _, capacity := range []float64{0.7, 1, float64(n) / 3, 2.5} {
			for k := 0; k <= n; k++ {
				a, err := Phi(n, k, capacity)
				if err != nil {
					t.Fatal(err)
				}
				b, err := Phi(n, n-k, capacity)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(a-b) > 1e-14 {
					t.Errorf("n=%d δ=%v: φ(%d)=%v != φ(%d)=%v", n, capacity, k, a, n-k, b)
				}
			}
		}
	}
}

func TestPhiValidation(t *testing.T) {
	if _, err := Phi(3, -1, 1); err == nil {
		t.Error("k=-1: expected error")
	}
	if _, err := Phi(3, 4, 1); err == nil {
		t.Error("k>n: expected error")
	}
	if _, err := Phi(1, 0, 1); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := Phi(3, 1, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := Phi(MaxN+1, 0, 1); err == nil {
		t.Error("n over limit: expected error")
	}
}

func TestWinningProbabilityKnownValueN3(t *testing.T) {
	// n=3, δ=1, α=(1/2,1/2,1/2): P = (1/8)Σ C(3,k) F_k F_{3-k}
	// = (1/8)(1·1/6 + 3·(1·1/2) + 3·(1/2·1) + 1/6) = 5/12.
	p, err := WinningProbability([]float64{0.5, 0.5, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-5.0/12) > 1e-14 {
		t.Errorf("P = %.15f, want 5/12 = %.15f", p, 5.0/12)
	}
}

func TestWinningProbabilityDeterministicVectors(t *testing.T) {
	// α = (1, 1, 0): players 1,2 in bin 0, player 3 in bin 1.
	// Win iff x1 + x2 ≤ 1 (prob 1/2) — x3 ≤ 1 always.
	p, err := WinningProbability([]float64{1, 1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-14 {
		t.Errorf("P = %v, want 0.5", p)
	}
	// All in one bin: win iff the sum of all three is ≤ 1, prob 1/6.
	p, err = WinningProbability([]float64{1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/6) > 1e-14 {
		t.Errorf("P(all bin 0) = %v, want 1/6", p)
	}
}

func TestWinningProbabilityValidation(t *testing.T) {
	if _, err := WinningProbability([]float64{0.5}, 1); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := WinningProbability([]float64{0.5, 1.2}, 1); err == nil {
		t.Error("α > 1: expected error")
	}
	if _, err := WinningProbability([]float64{0.5, math.NaN()}, 1); err == nil {
		t.Error("NaN α: expected error")
	}
	if _, err := WinningProbability([]float64{0.5, 0.5}, -1); err == nil {
		t.Error("negative capacity: expected error")
	}
}

func TestSymmetricMatchesGeneralVector(t *testing.T) {
	for _, a := range []float64{0, 0.25, 0.5, 0.8, 1} {
		alphas := []float64{a, a, a, a}
		general, err := WinningProbability(alphas, 4.0/3)
		if err != nil {
			t.Fatal(err)
		}
		symmetric, err := SymmetricWinningProbability(4, 4.0/3, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(general-symmetric) > 1e-13 {
			t.Errorf("a=%v: general %v vs symmetric %v", a, general, symmetric)
		}
	}
	if _, err := SymmetricWinningProbability(4, 1, -0.1); err == nil {
		t.Error("a<0: expected error")
	}
}

func TestWinningProbabilityAgainstSimulation(t *testing.T) {
	alphas := []float64{0.3, 0.6, 0.5, 0.7}
	capacity := 4.0 / 3
	analytic, err := WinningProbability(alphas, capacity)
	if err != nil {
		t.Fatal(err)
	}
	rules := make([]model.LocalRule, len(alphas))
	for i, a := range alphas {
		r, err := model.NewObliviousRule(a)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = r
	}
	sys, err := model.NewSystem(rules, capacity)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.WinProbability(sys, sim.Config{Trials: 400000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-analytic) > 4*res.StdErr {
		t.Errorf("Theorem 4.1 gives %v, simulation %v ± %v", analytic, res.P, res.StdErr)
	}
}

func TestOptimalityResidualVanishesAtHalf(t *testing.T) {
	// Corollary 4.2 at α = (1/2, ..., 1/2): every partial derivative is 0.
	for n := 2; n <= 8; n++ {
		alphas := make([]float64, n)
		for i := range alphas {
			alphas[i] = 0.5
		}
		for _, capacity := range []float64{1, float64(n) / 3} {
			for k := 0; k < n; k++ {
				r, err := OptimalityResidual(alphas, capacity, k)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(r) > 1e-12 {
					t.Errorf("n=%d δ=%v k=%d: residual %v, want 0", n, capacity, k, r)
				}
			}
		}
	}
}

func TestOptimalityResidualMatchesFiniteDifference(t *testing.T) {
	alphas := []float64{0.3, 0.7, 0.45, 0.6}
	capacity := 1.2
	const h = 1e-6
	for k := range alphas {
		analytic, err := OptimalityResidual(alphas, capacity, k)
		if err != nil {
			t.Fatal(err)
		}
		plus := append([]float64(nil), alphas...)
		minus := append([]float64(nil), alphas...)
		plus[k] += h
		minus[k] -= h
		pp, err := WinningProbability(plus, capacity)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := WinningProbability(minus, capacity)
		if err != nil {
			t.Fatal(err)
		}
		numeric := (pp - pm) / (2 * h)
		if math.Abs(analytic-numeric) > 1e-6 {
			t.Errorf("k=%d: analytic gradient %v vs numeric %v", k, analytic, numeric)
		}
	}
}

func TestOptimalityResidualValidation(t *testing.T) {
	alphas := []float64{0.5, 0.5}
	if _, err := OptimalityResidual(alphas, 1, -1); err == nil {
		t.Error("k=-1: expected error")
	}
	if _, err := OptimalityResidual(alphas, 1, 2); err == nil {
		t.Error("k out of range: expected error")
	}
	if _, err := OptimalityResidual([]float64{0.5}, 1, 0); err == nil {
		t.Error("single player: expected error")
	}
}

func TestOptimalityResidualNorm(t *testing.T) {
	norm, err := OptimalityResidualNorm([]float64{0.5, 0.5, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if norm > 1e-12 {
		t.Errorf("gradient norm at optimum = %v, want 0", norm)
	}
	norm, err = OptimalityResidualNorm([]float64{0.9, 0.1, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if norm < 1e-4 {
		t.Errorf("gradient norm away from optimum = %v, should be clearly positive", norm)
	}
}

func TestHalfIsSymmetricMaximumProperty(t *testing.T) {
	// Theorem 4.3 in its symmetric scope: among algorithms where every
	// player uses the same α, no value beats α = 1/2.
	f := func(aRaw uint16, nRaw, capRaw uint8) bool {
		a := float64(aRaw) / 65535
		n := 2 + int(nRaw%7)
		capacity := 0.5 + float64(capRaw)/128
		p, err := SymmetricWinningProbability(n, capacity, a)
		if err != nil {
			return false
		}
		opt, err := Optimal(n, capacity)
		if err != nil {
			return false
		}
		return p <= opt.WinProbability+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHalfIsSymmetricMaximumByScalarSearch(t *testing.T) {
	// Numeric cross-check of Theorem 4.3: maximizing the symmetric curve
	// over a ∈ [0, 1] lands on 1/2 for every n.
	for _, n := range []int{3, 4, 5, 8} {
		capacity := float64(n) / 3
		res, err := optimize.GridThenGoldenMax(func(a float64) float64 {
			p, err := SymmetricWinningProbability(n, capacity, a)
			if err != nil {
				return math.Inf(-1)
			}
			return p
		}, 0, 1, 201, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.X-0.5) > 1e-5 {
			t.Errorf("n=%d: symmetric argmax = %v, want 1/2", n, res.X)
		}
		opt, err := Optimal(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-opt.WinProbability) > 1e-10 {
			t.Errorf("n=%d: symmetric max %v vs Theorem 4.3 value %v", n, res.Value, opt.WinProbability)
		}
	}
}

func TestMultilinearVertexOptimumBeatsHalf(t *testing.T) {
	// Reproduction finding: the winning probability is multilinear in α,
	// so the global oblivious optimum is a deterministic balanced
	// partition, which strictly beats the paper's α = 1/2 algorithm.
	for _, n := range []int{3, 4, 5} {
		capacity := float64(n) / 3
		det, err := OptimalDeterministic(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimal(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if det.WinProbability <= opt.WinProbability {
			t.Errorf("n=%d: deterministic %v should beat symmetric 1/2 value %v",
				n, det.WinProbability, opt.WinProbability)
		}
		// The best partition is balanced (φ is maximized at ⌊n/2⌋ here).
		if det.Bin1Count != n/2 {
			t.Errorf("n=%d: best bin-1 count = %d, want %d", n, det.Bin1Count, n/2)
		}
		// Its probability equals φ(⌊n/2⌋) by construction; verify against
		// a direct vertex evaluation through Theorem 4.1.
		alphas := make([]float64, n)
		for i := range alphas {
			if i < det.Bin1Count {
				alphas[i] = 0 // bin 1
			} else {
				alphas[i] = 1 // bin 0
			}
		}
		p, err := WinningProbability(alphas, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-det.WinProbability) > 1e-13 {
			t.Errorf("n=%d: vertex evaluation %v vs φ(k) %v", n, p, det.WinProbability)
		}
	}
	// Concrete numbers for the n=3, δ=1 instance: 1/2 vs 5/12.
	det, err := OptimalDeterministic(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det.WinProbability-0.5) > 1e-14 {
		t.Errorf("n=3 balanced split P = %v, want 1/2", det.WinProbability)
	}
}

func TestCoordinateAscentFindsVertexOptimum(t *testing.T) {
	// Free (non-symmetric) ascent over the probability cube must reach the
	// deterministic vertex optimum, not the interior saddle at 1/2.
	for _, n := range []int{3, 4, 5} {
		capacity := float64(n) / 3
		det, err := OptimalDeterministic(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		start := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := range start {
			start[i] = 0.2 + 0.1*float64(i%3)
			hi[i] = 1
		}
		res, err := optimize.CoordinateAscentBox(func(x []float64) float64 {
			p, err := WinningProbability(x, capacity)
			if err != nil {
				return math.Inf(-1)
			}
			return p
		}, start, lo, hi, 60, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-det.WinProbability) > 1e-6 {
			t.Errorf("n=%d: ascent found %v, vertex optimum %v", n, res.Value, det.WinProbability)
		}
	}
}

func TestOptimalDeterministicValidation(t *testing.T) {
	if _, err := OptimalDeterministic(1, 1); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := OptimalDeterministic(3, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
}

func TestOptimalKnownValues(t *testing.T) {
	// n=3, δ=1: optimal oblivious P = 5/12.
	opt, err := Optimal(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Alpha != 0.5 || opt.N != 3 || opt.Capacity != 1 {
		t.Errorf("metadata wrong: %+v", opt)
	}
	if math.Abs(opt.WinProbability-5.0/12) > 1e-14 {
		t.Errorf("optimal P = %.15f, want 5/12", opt.WinProbability)
	}
}

func TestWinningProbabilityRatMatchesFloat(t *testing.T) {
	alphas := []*big.Rat{big.NewRat(1, 3), big.NewRat(2, 3), big.NewRat(1, 2), big.NewRat(3, 5)}
	af := make([]float64, len(alphas))
	for i, a := range alphas {
		af[i], _ = a.Float64()
	}
	capacity := big.NewRat(4, 3)
	exact, err := WinningProbabilityRat(alphas, capacity)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := WinningProbability(af, 4.0/3)
	if err != nil {
		t.Fatal(err)
	}
	ef, _ := exact.Float64()
	if math.Abs(approx-ef) > 1e-12 {
		t.Errorf("float %v vs exact %v", approx, ef)
	}
}

func TestWinningProbabilityRatExactHalfN3(t *testing.T) {
	half := big.NewRat(1, 2)
	exact, err := WinningProbabilityRat([]*big.Rat{half, half, half}, big.NewRat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cmp(big.NewRat(5, 12)) != 0 {
		t.Errorf("exact P = %v, want exactly 5/12", exact)
	}
}

func TestWinningProbabilityRatValidation(t *testing.T) {
	half := big.NewRat(1, 2)
	one := big.NewRat(1, 1)
	if _, err := WinningProbabilityRat([]*big.Rat{half}, one); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := WinningProbabilityRat([]*big.Rat{half, half}, nil); err == nil {
		t.Error("nil capacity: expected error")
	}
	if _, err := WinningProbabilityRat([]*big.Rat{half, nil}, one); err == nil {
		t.Error("nil α: expected error")
	}
	if _, err := WinningProbabilityRat([]*big.Rat{half, big.NewRat(3, 2)}, one); err == nil {
		t.Error("α > 1: expected error")
	}
	if _, err := WinningProbabilityRat([]*big.Rat{half, half}, big.NewRat(0, 1)); err == nil {
		t.Error("zero capacity: expected error")
	}
}

func TestWinningProbabilityInvariantUnderPermutationProperty(t *testing.T) {
	f := func(aRaw, bRaw, cRaw uint16) bool {
		a := float64(aRaw) / 65535
		b := float64(bRaw) / 65535
		c := float64(cRaw) / 65535
		p1, err1 := WinningProbability([]float64{a, b, c}, 1)
		p2, err2 := WinningProbability([]float64{c, a, b}, 1)
		return err1 == nil && err2 == nil && math.Abs(p1-p2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComplementSymmetryProperty(t *testing.T) {
	// Swapping bins (α → 1-α) leaves the winning probability unchanged.
	f := func(aRaw, bRaw, cRaw uint16, capRaw uint8) bool {
		alphas := []float64{float64(aRaw) / 65535, float64(bRaw) / 65535, float64(cRaw) / 65535}
		comp := []float64{1 - alphas[0], 1 - alphas[1], 1 - alphas[2]}
		capacity := 0.4 + float64(capRaw)/100
		p1, err1 := WinningProbability(alphas, capacity)
		p2, err2 := WinningProbability(comp, capacity)
		return err1 == nil && err2 == nil && math.Abs(p1-p2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
