package oblivious

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
	"repro/internal/dist"
	"repro/internal/poly"
)

// SymbolicSymmetric expands the Theorem 4.1 winning probability of the
// symmetric oblivious algorithm as an exact polynomial in the common
// bin-0 probability a:
//
//	P(a) = Σ_k C(n,k) φ_δ(k) (1-a)^k a^(n-k),
//
// with φ_δ(k) = F_k(δ)·F_{n-k}(δ) evaluated in exact rational arithmetic.
// The capacity must be a positive rational.
func SymbolicSymmetric(n int, capacity *big.Rat) (poly.RatPoly, error) {
	if n < 2 {
		return poly.RatPoly{}, fmt.Errorf("oblivious: need at least 2 players, got %d", n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return poly.RatPoly{}, fmt.Errorf("oblivious: capacity must be strictly positive")
	}
	cdf := make([]*big.Rat, n+1)
	for k := 0; k <= n; k++ {
		v, err := dist.IrwinHallCDFRat(k, capacity)
		if err != nil {
			return poly.RatPoly{}, err
		}
		cdf[k] = v
	}
	one := big.NewRat(1, 1)
	x := poly.RatPolyX()
	oneMinusX := poly.RatPolyAffine(one, big.NewRat(-1, 1))
	total := poly.RatPoly{}
	for k := 0; k <= n; k++ {
		c, err := combin.BinomialBig(n, k)
		if err != nil {
			return poly.RatPoly{}, err
		}
		phi := new(big.Rat).Mul(cdf[k], cdf[n-k])
		coeff := new(big.Rat).SetInt(c)
		coeff.Mul(coeff, phi)
		if coeff.Sign() == 0 {
			continue
		}
		pk, err := oneMinusX.Pow(k)
		if err != nil {
			return poly.RatPoly{}, err
		}
		pnk, err := x.Pow(n - k)
		if err != nil {
			return poly.RatPoly{}, err
		}
		total = total.Add(pk.Mul(pnk).Scale(coeff))
	}
	return total, nil
}

// HalfCertificate is the outcome of CertifyHalfOptimal: a Sturm-certified
// description of the interior critical points of the symmetric oblivious
// curve.
type HalfCertificate struct {
	// Curve is the exact polynomial P(a).
	Curve poly.RatPoly
	// Derivative is dP/da, whose interior roots are the candidates.
	Derivative poly.RatPoly
	// InteriorCritical counts distinct roots of the derivative in (0, 1).
	InteriorCritical int
	// HalfIsCritical reports whether a = 1/2 is one of them (exactly).
	HalfIsCritical bool
	// HalfValue is P(1/2), exact.
	HalfValue *big.Rat
	// HalfIsMaximum reports whether P(1/2) weakly dominates P at 0, 1 and
	// every other interior critical point (checked at certified
	// enclosures refined to 2^-60).
	HalfIsMaximum bool
}

// CertifyHalfOptimal certifies Theorem 4.3 for one instance: it derives
// the exact symmetric curve P(a), isolates all interior critical points
// with Sturm sequences, and verifies that a = 1/2 is critical and maximal
// among the candidates. Degenerate instances where P is constant (δ ≥ n:
// every assignment wins) are reported with InteriorCritical = 0 and
// HalfIsMaximum = true.
func CertifyHalfOptimal(n int, capacity *big.Rat) (HalfCertificate, error) {
	curve, err := SymbolicSymmetric(n, capacity)
	if err != nil {
		return HalfCertificate{}, err
	}
	half := big.NewRat(1, 2)
	cert := HalfCertificate{
		Curve:      curve,
		Derivative: curve.Derivative(),
		HalfValue:  curve.Eval(half),
	}
	if cert.Derivative.IsZero() {
		// Constant winning probability (e.g. δ ≥ n).
		cert.HalfIsMaximum = true
		return cert, nil
	}
	zero := new(big.Rat)
	one := big.NewRat(1, 1)
	ivs, err := poly.IsolateRoots(cert.Derivative, zero, one)
	if err != nil {
		return HalfCertificate{}, err
	}
	cert.HalfIsCritical = cert.Derivative.Eval(half).Sign() == 0
	best := new(big.Rat).Set(cert.HalfValue)
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 60))
	maximal := true
	count := 0
	for _, iv := range ivs {
		refined, err := poly.RefineRoot(cert.Derivative, iv, tol)
		if err != nil {
			return HalfCertificate{}, err
		}
		// Skip boundary roots (Sturm counts (0,1], and 1 may appear).
		mid := refined.Mid()
		if mid.Sign() <= 0 || mid.Cmp(one) >= 0 {
			continue
		}
		count++
		if curve.Eval(mid).Cmp(best) > 0 {
			maximal = false
		}
	}
	cert.InteriorCritical = count
	for _, endpoint := range []*big.Rat{zero, one} {
		if curve.Eval(endpoint).Cmp(best) > 0 {
			maximal = false
		}
	}
	cert.HalfIsMaximum = maximal
	return cert, nil
}
