package oblivious

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/dist"
)

// EvalStats counts the work an Evaluator performed since construction.
type EvalStats struct {
	// Evaluations is the number of Evaluate/SetCoord calls that produced
	// a value.
	Evaluations uint64
	// FullRebuilds counts full product-table rebuilds (the CDF table is
	// built exactly once, at construction).
	FullRebuilds uint64
	// DeltaUpdates counts single-coordinate evaluations that re-propagated
	// only the 2^(n-1) bin-choice weight cells containing the changed
	// coordinate.
	DeltaUpdates uint64
	// DeltaSubsets is the number of subset cells those updates touched.
	DeltaSubsets uint64
}

// Evaluator is a reusable heterogeneous Theorem 4.1 evaluator for a fixed
// instance (π, δ): the O(n²·2^n) subset-CDF table — the only part of
// WinningProbabilityPiOpts that depends on the instance rather than the
// rule — is built once at construction, and each α-vector evaluation then
// costs one product-table refresh plus the O(2^n) bin-choice sum. A
// single-coordinate change (the 1-D sweep and coordinate-search pattern)
// re-propagates only the 2^(n-1) weight cells containing the changed
// coordinate.
//
// Every path is bit-identical to WinningProbabilityPiOpts(α, π, δ, …): the
// product tables delta-update with the exact build recurrence and the
// bin-choice sum replicates the fixed chunk grid, Neumaier partials, and
// pairwise reduction of ChunkedMaskSum. Values from the evaluator are
// therefore safe to memoize under the same cache keys as the one-shot
// evaluator. Zero steady-state allocations.
type Evaluator struct {
	n        int
	capacity float64
	built    bool
	pi       []float64
	cdf      []float64 // F_T(δ), fixed for the life of the evaluator
	alphas   []float64 // committed bin-choice vector
	oneMinus []float64
	pZero    *combin.ProductTable // Π_{i∈T} α_i
	pOne     *combin.ProductTable // Π_{i∈T} (1-α_i)
	partial  []float64
	value    float64
	stats    EvalStats
}

// NewEvaluator builds the subset-CDF table for a heterogeneous instance
// x_i ~ U[0, π_i] with bin capacity δ. workers shards the construction
// (the result is bit-identical for every worker count). Homogeneous
// instances (all π_i = 1) are rejected: they have a closed-form evaluator
// (WinningProbability) that is already cheap, and WinningProbabilityPiOpts
// delegates to it rather than building tables.
func NewEvaluator(pi []float64, capacity float64, workers int) (*Evaluator, error) {
	n := len(pi)
	if n < 2 {
		return nil, fmt.Errorf("oblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNHetero {
		return nil, fmt.Errorf("oblivious: heterogeneous evaluation limited to %d players, got %d", MaxNHetero, n)
	}
	hetero := false
	for i, w := range pi {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("oblivious: input range π[%d] = %v must be strictly positive and finite", i, w)
		}
		if w != 1 {
			hetero = true
		}
	}
	if !hetero {
		return nil, fmt.Errorf("oblivious: evaluator requires heterogeneous input ranges; use WinningProbability for π ≡ 1")
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return nil, fmt.Errorf("oblivious: capacity %v must be strictly positive and finite", capacity)
	}
	if workers <= 0 {
		workers = 1
	}
	vol, _, err := dist.AllSubsetVolumes(pi, capacity, workers)
	if err != nil {
		return nil, err
	}
	piProd, err := combin.SubsetProducts(pi)
	if err != nil {
		return nil, err
	}
	for mask := range vol {
		vol[mask] = clamp01(vol[mask] / piProd[mask])
	}
	pZero, err := combin.NewProductTable(n)
	if err != nil {
		return nil, err
	}
	pOne, err := combin.NewProductTable(n)
	if err != nil {
		return nil, err
	}
	_, chunks := combin.ChunkSpan(uint64(1) << uint(n))
	return &Evaluator{
		n:        n,
		capacity: capacity,
		pi:       append([]float64(nil), pi...),
		cdf:      vol,
		alphas:   make([]float64, n),
		oneMinus: make([]float64, n),
		pZero:    pZero,
		pOne:     pOne,
		partial:  make([]float64, chunks),
	}, nil
}

// N returns the player count.
func (ev *Evaluator) N() int { return ev.n }

// Capacity returns the bin capacity δ.
func (ev *Evaluator) Capacity() float64 { return ev.capacity }

// Alphas returns the committed bin-choice vector. The slice is owned by
// the evaluator; callers must not modify it.
func (ev *Evaluator) Alphas() []float64 { return ev.alphas }

// Value returns the winning probability at the committed α. Only
// meaningful after a successful evaluation.
func (ev *Evaluator) Value() float64 { return ev.value }

// Stats returns the work counters accumulated since construction.
func (ev *Evaluator) Stats() EvalStats { return ev.stats }

// Evaluate computes the winning probability of an α-vector, reusing the
// fixed CDF table. A vector differing from the committed one in a single
// coordinate is delta-updated; anything wider refreshes the product
// tables in full (still no allocations). The result is committed and
// bit-identical to WinningProbabilityPiOpts.
func (ev *Evaluator) Evaluate(alphas []float64) (float64, error) {
	if err := validateAlphas(alphas); err != nil {
		return 0, err
	}
	if len(alphas) != ev.n {
		return 0, fmt.Errorf("oblivious: evaluator built for %d players, got %d", ev.n, len(alphas))
	}
	if ev.built {
		diff, d1 := 0, -1
		for i := range alphas {
			if alphas[i] != ev.alphas[i] {
				diff++
				d1 = i
			}
		}
		switch diff {
		case 0:
			ev.stats.Evaluations++
			return ev.value, nil
		case 1:
			return ev.SetCoord(d1, alphas[d1])
		}
	}
	copy(ev.alphas, alphas)
	for i, a := range alphas {
		ev.oneMinus[i] = 1 - a
	}
	if err := ev.pZero.Build(ev.alphas); err != nil {
		return 0, err
	}
	if err := ev.pOne.Build(ev.oneMinus); err != nil {
		return 0, err
	}
	ev.value = ev.maskSum()
	ev.built = true
	ev.stats.FullRebuilds++
	ev.stats.Evaluations++
	return ev.value, nil
}

// SetCoord commits α_i = a with a delta update, re-propagating only the
// 2^(n-1) product-table cells containing i, and returns the updated
// winning probability — bit-identical to a full evaluation of the
// resulting vector.
func (ev *Evaluator) SetCoord(i int, a float64) (float64, error) {
	if !ev.built {
		return 0, fmt.Errorf("oblivious: evaluator SetCoord before any full evaluation")
	}
	if i < 0 || i >= ev.n {
		return 0, fmt.Errorf("oblivious: evaluator coordinate %d out of range [0, %d)", i, ev.n)
	}
	if math.IsNaN(a) || a < 0 || a > 1 {
		return 0, fmt.Errorf("oblivious: α[%d] = %v outside [0, 1]", i, a)
	}
	if a == ev.alphas[i] {
		ev.stats.Evaluations++
		return ev.value, nil
	}
	ev.alphas[i] = a
	ev.oneMinus[i] = 1 - a
	if err := ev.pZero.SetCoord(i, a); err != nil {
		return 0, err
	}
	if err := ev.pOne.SetCoord(i, ev.oneMinus[i]); err != nil {
		return 0, err
	}
	ev.value = ev.maskSum()
	ev.stats.DeltaUpdates++
	ev.stats.DeltaSubsets += uint64(1) << uint(ev.n-1)
	ev.stats.Evaluations++
	return ev.value, nil
}

// maskSum reduces Σ_S w(S)·F_{Sᶜ}(δ)·F_S(δ) over the fixed chunk grid with
// Neumaier partials and the fixed-order pairwise tree — bit-identical to
// the ChunkedMaskSum reduction in WinningProbabilityPiOpts for every
// worker count.
func (ev *Evaluator) maskSum() float64 {
	pZero, pOne, cdf := ev.pZero.Values(), ev.pOne.Values(), ev.cdf
	size := uint64(1) << uint(ev.n)
	full := size - 1
	span, chunks := combin.ChunkSpan(size)
	for c := uint64(0); c < chunks; c++ {
		lo := c * span
		hi := lo + span
		if hi > size {
			hi = size
		}
		var acc combin.Accumulator
		for s := lo; s < hi; s++ {
			z := full &^ s
			w := pZero[z] * pOne[s]
			if w == 0 {
				continue
			}
			acc.Add(w * cdf[z] * cdf[s])
		}
		ev.partial[c] = acc.Sum()
	}
	part := ev.partial[:chunks]
	for len(part) > 1 {
		half := (len(part) + 1) / 2
		for i := 0; i < len(part)/2; i++ {
			part[i] = part[2*i] + part[2*i+1]
		}
		if len(part)%2 == 1 {
			part[half-1] = part[len(part)-1]
		}
		part = part[:half]
	}
	return clamp01(part[0])
}
