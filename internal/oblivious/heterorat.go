package oblivious

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
	"repro/internal/dist"
)

// MaxNHeteroExact bounds the player count for the exact rational
// heterogeneous evaluation (Θ(3^n) big.Rat arithmetic): the certifying
// oracle behind the float64 fast path, not a production evaluator.
const MaxNHeteroExact = 10

// WinningProbabilityPiRat evaluates the heterogeneous Theorem 4.1
// generalization exactly for rational bin-0 probabilities, input ranges
// and capacity — the certified oracle the float64 WinningProbabilityPi
// path is property-tested against. Each bin-choice vector's two
// conditional load CDFs are Lemma 2.4 evaluations in exact rational
// arithmetic (dist.CDFRat).
func WinningProbabilityPiRat(alphas, pi []*big.Rat, capacity *big.Rat) (*big.Rat, error) {
	n := len(alphas)
	if n < 2 {
		return nil, fmt.Errorf("oblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNHeteroExact {
		return nil, fmt.Errorf("oblivious: exact heterogeneous evaluation limited to %d players, got %d", MaxNHeteroExact, n)
	}
	if len(pi) != n {
		return nil, fmt.Errorf("oblivious: %d input ranges for %d players", len(pi), n)
	}
	one := big.NewRat(1, 1)
	for i, a := range alphas {
		if a == nil || a.Sign() < 0 || a.Cmp(one) > 0 {
			return nil, fmt.Errorf("oblivious: probability[%d] outside [0, 1]", i)
		}
	}
	for i, w := range pi {
		if w == nil || w.Sign() <= 0 {
			return nil, fmt.Errorf("oblivious: input range π[%d] must be strictly positive", i)
		}
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("oblivious: capacity must be strictly positive")
	}
	total := new(big.Rat)
	weight := new(big.Rat)
	factor := new(big.Rat)
	zeros := make([]*big.Rat, 0, n)
	ones := make([]*big.Rat, 0, n)
	err := combin.ForEachSubset(n, func(s uint64) bool {
		weight.SetInt64(1)
		zeros = zeros[:0]
		ones = ones[:0]
		for i := 0; i < n; i++ {
			if s&(1<<uint(i)) == 0 {
				weight.Mul(weight, alphas[i])
				zeros = append(zeros, pi[i])
			} else {
				factor.Sub(one, alphas[i])
				weight.Mul(weight, factor)
				ones = append(ones, pi[i])
			}
		}
		if weight.Sign() == 0 {
			return true
		}
		f0, err := subsetCDFRat(zeros, capacity)
		if err != nil || f0.Sign() == 0 {
			return true
		}
		f1, err := subsetCDFRat(ones, capacity)
		if err != nil {
			return true
		}
		weight.Mul(weight, f0)
		weight.Mul(weight, f1)
		total.Add(total, weight)
		return true
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// subsetCDFRat returns P(Σ U[0, w_i] ≤ t) exactly; the empty sum always
// fits (t > 0 is validated by the caller).
func subsetCDFRat(widths []*big.Rat, t *big.Rat) (*big.Rat, error) {
	if len(widths) == 0 {
		return big.NewRat(1, 1), nil
	}
	return dist.CDFRat(widths, t)
}
