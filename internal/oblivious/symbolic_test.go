package oblivious

import (
	"math"
	"math/big"
	"testing"
)

func TestSymbolicSymmetricMatchesFloat(t *testing.T) {
	cases := []struct {
		n   int
		cap *big.Rat
	}{
		{2, big.NewRat(2, 3)},
		{3, big.NewRat(1, 1)},
		{4, big.NewRat(4, 3)},
		{5, big.NewRat(5, 3)},
		{7, big.NewRat(7, 3)},
	}
	for _, c := range cases {
		curve, err := SymbolicSymmetric(c.n, c.cap)
		if err != nil {
			t.Fatal(err)
		}
		if curve.Degree() > c.n {
			t.Errorf("n=%d: curve degree %d exceeds n", c.n, curve.Degree())
		}
		cf, _ := c.cap.Float64()
		for num := int64(0); num <= 16; num++ {
			a := big.NewRat(num, 16)
			af, _ := a.Float64()
			exact := curve.Eval(a)
			ef, _ := exact.Float64()
			approx, err := SymmetricWinningProbability(c.n, cf, af)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(approx-ef) > 1e-12 {
				t.Errorf("n=%d a=%v: float %v vs exact %v", c.n, af, approx, ef)
			}
		}
	}
}

func TestSymbolicSymmetricKnownValueN3(t *testing.T) {
	curve, err := SymbolicSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// P(1/2) = 5/12 exactly.
	if got := curve.Eval(big.NewRat(1, 2)); got.Cmp(big.NewRat(5, 12)) != 0 {
		t.Errorf("P(1/2) = %v, want exactly 5/12", got)
	}
	// P(a) = (a³+(1-a)³)/6 + (3/2)a(1-a): expand to
	// 1/6 + a(1-a)·(3/2 - 1/2·...)— just verify P(0) = P(1) = 1/6.
	if got := curve.Eval(new(big.Rat)); got.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("P(0) = %v, want 1/6", got)
	}
	if got := curve.Eval(big.NewRat(1, 1)); got.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("P(1) = %v, want 1/6", got)
	}
}

func TestSymbolicSymmetricValidation(t *testing.T) {
	if _, err := SymbolicSymmetric(1, big.NewRat(1, 1)); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := SymbolicSymmetric(3, nil); err == nil {
		t.Error("nil capacity: expected error")
	}
	if _, err := SymbolicSymmetric(3, big.NewRat(-1, 1)); err == nil {
		t.Error("negative capacity: expected error")
	}
}

func TestCertifyHalfOptimalAcrossInstances(t *testing.T) {
	// Theorem 4.3 certified exactly: a = 1/2 is critical and maximal
	// among interior critical points for every tested instance.
	cases := []struct {
		n   int
		cap *big.Rat
	}{
		{2, big.NewRat(2, 3)},
		{3, big.NewRat(1, 1)},
		{4, big.NewRat(4, 3)},
		{5, big.NewRat(5, 3)},
		{6, big.NewRat(2, 1)},
		{8, big.NewRat(8, 3)},
		{4, big.NewRat(1, 2)},
	}
	for _, c := range cases {
		cert, err := CertifyHalfOptimal(c.n, c.cap)
		if err != nil {
			t.Fatalf("n=%d δ=%v: %v", c.n, c.cap, err)
		}
		if !cert.HalfIsCritical {
			t.Errorf("n=%d δ=%v: a=1/2 not critical", c.n, c.cap)
		}
		if !cert.HalfIsMaximum {
			t.Errorf("n=%d δ=%v: a=1/2 not maximal among critical points", c.n, c.cap)
		}
		if cert.InteriorCritical < 1 {
			t.Errorf("n=%d δ=%v: expected at least the 1/2 critical point, got %d",
				c.n, c.cap, cert.InteriorCritical)
		}
		// The certificate's exact value agrees with the float optimum.
		vf, _ := cert.HalfValue.Float64()
		cf, _ := c.cap.Float64()
		opt, err := Optimal(c.n, cf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vf-opt.WinProbability) > 1e-12 {
			t.Errorf("n=%d δ=%v: certificate %v vs float %v", c.n, c.cap, vf, opt.WinProbability)
		}
	}
}

func TestCertifyHalfOptimalDegenerate(t *testing.T) {
	// δ ≥ n: every outcome wins, P ≡ 1, derivative is the zero
	// polynomial.
	cert, err := CertifyHalfOptimal(3, big.NewRat(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Derivative.IsZero() {
		t.Errorf("derivative = %v, want 0", cert.Derivative)
	}
	if !cert.HalfIsMaximum || cert.InteriorCritical != 0 {
		t.Errorf("degenerate certificate wrong: %+v", cert)
	}
	if cert.HalfValue.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("P(1/2) = %v, want 1", cert.HalfValue)
	}
}

func TestCertifyHalfOptimalValidation(t *testing.T) {
	if _, err := CertifyHalfOptimal(0, big.NewRat(1, 1)); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := CertifyHalfOptimal(3, big.NewRat(0, 1)); err == nil {
		t.Error("zero capacity: expected error")
	}
}
