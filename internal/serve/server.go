package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// Defaults for the Config knobs; every limit is overridable per server.
const (
	// DefaultDeadline is the per-request evaluation budget.
	DefaultDeadline = 10 * time.Second
	// DefaultTrials is the Monte-Carlo trial count for mc-backend
	// requests that do not set one (matches the CLI default).
	DefaultTrials = engine.DefaultTrials
	// DefaultDegradedTrials is the trial count of the Monte-Carlo
	// fallback when an exact evaluation misses its deadline: small enough
	// to answer fast, large enough for a usable standard error (~0.003).
	DefaultDegradedTrials = 20_000
	// DefaultMaxBodyBytes caps request bodies.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxN caps the per-request player count: exact backends are
	// exponential in n, and the service must stay responsive.
	DefaultMaxN = 32
	// DefaultMaxTrials caps per-request Monte-Carlo trials.
	DefaultMaxTrials = 50_000_000
	// DefaultMaxPoints caps sweep grid sizes.
	DefaultMaxPoints = 4096
	// defaultSeed matches the CLIs' -seed default so a canonical request
	// reproduces CLI output bit-for-bit.
	defaultSeed = 1
)

// Config configures a Server. The zero value is usable: a private
// engine, no observability, all limits at their defaults.
type Config struct {
	// Engine is the evaluation engine (shared memoization cache). Nil
	// builds a private engine wired to Obs.
	Engine *engine.Engine
	// CacheDir enables the result store's disk tier for the private
	// engine built when Engine is nil: evaluations computed before a
	// restart are served from disk after it (warm start). Ignored when
	// Engine is supplied — wire the store into the engine instead. An
	// unopenable directory falls back to memory-only with an error event.
	CacheDir string
	// Obs receives the server's metrics, spans and access events. Nil
	// disables instrumentation (the handlers still work).
	Obs *obs.Observer
	// Trials is the default Monte-Carlo trial count (0 = DefaultTrials).
	Trials int
	// DegradedTrials is the Monte-Carlo budget of the degraded fallback
	// (0 = DefaultDegradedTrials).
	DegradedTrials int
	// Deadline is the default per-request budget (0 = DefaultDeadline).
	// Requests can lower it via deadline_ms but never exceed it.
	Deadline time.Duration
	// MaxN caps the instance size (0 = DefaultMaxN).
	MaxN int
	// MaxTrials caps per-request trial counts (0 = DefaultMaxTrials).
	MaxTrials int
	// MaxPoints caps sweep grids (0 = DefaultMaxPoints).
	MaxPoints int
	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Server is the evaluation service. Build with New, serve its Handler.
type Server struct {
	cfg Config
	eng *engine.Engine
	obs *obs.Observer
	mux *http.ServeMux

	runID    string       // random per-process prefix of request ids
	reqSeq   atomic.Int64 // per-process request sequence
	inflight atomic.Int64
	ready    atomic.Bool
}

// New builds a Server, applies Config defaults, registers metric help
// text, and mounts the routes. The returned server is ready to serve;
// Ready flips true after the warmup canary (a trivial exact evaluation)
// completes, which /readyz reports.
func New(cfg Config) *Server {
	if cfg.Trials <= 0 {
		cfg.Trials = DefaultTrials
	}
	if cfg.DegradedTrials <= 0 {
		cfg.DegradedTrials = DefaultDegradedTrials
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = DefaultDeadline
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = DefaultMaxN
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = DefaultMaxTrials
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = DefaultMaxPoints
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Engine == nil {
		st, err := store.New(store.Options{Dir: cfg.CacheDir, Obs: cfg.Obs})
		if err != nil {
			cfg.Obs.EmitError("serve.store", err)
			st = store.NewMemory(store.Options{Obs: cfg.Obs})
		}
		cfg.Engine = engine.New(engine.Config{Obs: cfg.Obs, Store: st})
	}
	s := &Server{
		cfg:   cfg,
		eng:   cfg.Engine,
		obs:   cfg.Obs,
		mux:   http.NewServeMux(),
		runID: newRunID(),
	}
	s.registerHelp()
	s.routes()
	go s.warmup()
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready reports whether the warmup canary has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// routes mounts every endpoint. API endpoints go through the instrument
// middleware (request id, span, latency histogram, status counters);
// /metrics and the pprof profilers are served raw so scrapes never skew
// the request metrics they report.
func (s *Server) routes() {
	s.mux.Handle("/v1/eval", s.instrument("eval", s.handleEval))
	s.mux.Handle("/v1/optimize", s.instrument("optimize", s.handleOptimize))
	s.mux.Handle("/v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.Handle("/v1/table", s.instrument("table", s.handleTable))
	s.mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("/readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// warmup runs the readiness canary: one trivial exact evaluation proving
// the whole evaluation stack (problem → engine → exact backend) works in
// this process. On success /readyz flips to 200.
func (s *Server) warmup() {
	inst, err := instanceFor(3, 1, nil, s.cfg.MaxN)
	if err == nil {
		_, err = s.eng.Evaluate(inst, engine.SymmetricThreshold{Beta: 0.5}, engine.Exact)
	}
	if err != nil {
		s.obs.EmitError("serve.warmup", err)
		return
	}
	s.ready.Store(true)
}

// registerHelp attaches Prometheus HELP text to every metric the server
// (and the engine underneath it) emits, so /metrics is self-describing.
func (s *Server) registerHelp() {
	if s.obs == nil || s.obs.Metrics == nil {
		return
	}
	reg := s.obs.Metrics
	reg.SetHelp("http.requests.total", "HTTP requests served, all endpoints.")
	reg.SetHelp("http.inflight", "HTTP requests currently being served.")
	reg.SetHelp("http.panics", "HTTP handlers recovered from a panic (each one is a bug).")
	reg.SetHelp("serve.degraded", "Requests answered by the Monte-Carlo fallback after an exact evaluation missed its deadline.")
	reg.SetHelp("engine.cache.hits", "Engine evaluations served from the memoization cache.")
	reg.SetHelp("engine.cache.misses", "Engine evaluations computed (cache misses).")
	reg.SetHelp("engine.cache.coalesced", "Engine evaluations that joined an identical in-flight computation.")
	reg.SetHelp("engine.evals.abandoned", "Engine evaluations whose caller gave up at a deadline while the computation continued in the background.")
	reg.SetHelp("optimize.evals", "Objective evaluations performed by engine optimization runs.")
	reg.SetHelp("optimize.cache_hits", "Optimization probes served from the engine's memoization cache.")
	reg.SetHelp("store.evictions", "Completed result-store entries evicted from the bounded memory tier.")
	reg.SetHelp("store.disk.hits", "Result-store lookups served from the disk tier.")
	reg.SetHelp("store.disk.misses", "Result-store disk-tier lookups that found no valid entry.")
	reg.SetHelp("store.disk.writes", "Result-store entries written through to the disk tier.")
	reg.SetHelp("store.corrupt", "Disk-tier entries that failed validation and were quarantined.")
	for _, ep := range []string{"eval", "optimize", "sweep", "table", "healthz", "readyz"} {
		reg.SetHelp("http.requests."+ep, "HTTP requests on /"+ep+".")
		reg.SetHelp("http.latency."+ep, "HTTP request latency on /"+ep+" in seconds.")
		for _, class := range []string{"2xx", "4xx", "5xx"} {
			reg.SetHelp("http.requests."+ep+"."+class, "HTTP "+class+" responses on /"+ep+".")
		}
	}
}

// newRunID draws a short random per-process prefix so request ids from
// different server processes never collide in shared logs.
func newRunID() string {
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "000000"
	}
	return hex.EncodeToString(b[:])
}

// nextRequestID mints the next request id: <runid>-<seq>.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.runID, s.reqSeq.Add(1))
}
