// Package serve is the long-running evaluation service over the unified
// engine: a stdlib net/http JSON API exposing Evaluate (/v1/eval), Sweep
// (/v1/sweep) and the harness tables (/v1/table), with observability as a
// first-class layer rather than an afterthought.
//
// Every request gets a request id (X-Request-Id) and a request-scoped
// span tree — http.<endpoint> → engine.evaluate → backend.exact|mc —
// emitted to the observer's JSONL sink together with one structured
// access event per request, so a run log replayed through `nocomm
// metrics` reconstructs exactly what the server did and how long each
// layer took. GET /metrics serves the live registry in the Prometheus
// text exposition format (per-endpoint latency histograms, status-class
// counters, in-flight gauge, engine cache hit/miss/coalesce counters,
// and Go runtime gauges sampled at scrape time); /debug/pprof mounts the
// runtime profilers behind Config.EnablePprof.
//
// Requests carry trial and deadline budgets. When an exact evaluation
// misses its deadline the server degrades gracefully: the exact
// computation keeps running in the background (warming the engine's
// memoization cache for the next request) while the response is answered
// by a bounded Monte-Carlo estimate with its standard error — and the
// degradation decision itself is observable (serve.degraded counter,
// degraded span attribute, degraded field in the response body), so
// operators can watch precision being traded for latency.
package serve
