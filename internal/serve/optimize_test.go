package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestOptimizeCanonicalGolden pins the canonical scalar optimization —
// recovering the n=3, δ=1 optimum β* through the engine-native search —
// byte-for-byte, so the /v1/optimize response encoding cannot drift
// silently.
func TestOptimizeCanonicalGolden(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	// Wait for the warmup canary: it evaluates β=0.5 on this very
	// instance, which is also a grid probe of the search below, so the
	// pinned cache_hits count is deterministic only once warmup is done.
	for !s.Ready() {
		time.Sleep(100 * time.Microsecond)
	}
	rec := postJSON(t, s.Handler(), "/v1/optimize",
		`{"n":3,"delta":1,"kind":"threshold","backend":"exact"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	checkGolden(t, "optimize_canonical.golden", rec.Body.Bytes())

	var resp OptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.Param-0.6220355269907728) > 1e-9 {
		t.Errorf("param = %v, want pinned optimum β* ≈ 0.6220355269907728", resp.Param)
	}
	if math.Abs(resp.P-0.5446311396758939) > 1e-9 {
		t.Errorf("P = %v, want pinned optimum P* ≈ 0.5446311396758939", resp.P)
	}
	if len(resp.Params) != 1 || resp.Params[0] != resp.Param {
		t.Errorf("params = %v should mirror param = %v", resp.Params, resp.Param)
	}
	if resp.Backend != "exact" || resp.Evals == 0 || resp.Degraded {
		t.Errorf("unexpected response flags: %+v", resp)
	}
}

// TestOptimizeVector checks the full a-vector search over HTTP: the
// heterogeneous π=(1/2,1,1) instance departs the symmetric ray, and a
// repeated request is served from the engine's memoization cache (the
// optimize.evals / optimize.cache_hits counters are the acceptance
// criterion for the cached search path).
func TestOptimizeVector(t *testing.T) {
	s, o, _ := newTestServer(t, Config{})
	body := `{"pi":[0.5,1,1],"delta":1,"kind":"vector","backend":"exact"}`

	rec := postJSON(t, s.Handler(), "/v1/optimize", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Params) != 3 {
		t.Fatalf("params = %v, want a 3-vector", resp.Params)
	}
	if resp.Param != 0 {
		t.Errorf("param mirror = %v should be omitted for vector results", resp.Param)
	}
	if math.Abs(resp.P-0.7247002) > 1e-4 {
		t.Errorf("P = %v, want ≈ 0.724700 for π=(1/2,1,1)", resp.P)
	}
	// The optimum leaves the symmetric ray: thresholds are not all equal.
	spread := 0.0
	for _, a := range resp.Params {
		spread = math.Max(spread, math.Abs(a-resp.Params[0]))
	}
	if spread < 0.01 {
		t.Errorf("a* = %v should depart the symmetric ray", resp.Params)
	}
	if o.Counter("optimize.evals").Value() == 0 {
		t.Error("optimize.evals counter did not move")
	}

	// Second identical request: every probe is a cache hit.
	rec = postJSON(t, s.Handler(), "/v1/optimize", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm status = %d", rec.Code)
	}
	var warm OptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &warm); err != nil {
		t.Fatal(err)
	}
	if warm.P != resp.P {
		t.Errorf("warm P = %v differs from cold %v", warm.P, resp.P)
	}
	if warm.CacheHits != warm.Evals || warm.CacheHits == 0 {
		t.Errorf("warm run: cache_hits = %d of %d evals, want all cached", warm.CacheHits, warm.Evals)
	}
	if o.Counter("optimize.cache_hits").Value() == 0 {
		t.Error("optimize.cache_hits counter did not move")
	}
	if o.Counter("engine.cache.hits").Value() == 0 {
		t.Error("engine.cache.hits counter did not move")
	}
}

// TestOptimizeDeltaUpdates checks that the search-cost surface includes
// the reusable evaluator's delta-update count: a homogeneous vector search
// routes probes through the per-search evaluator and reports
// delta_updates > 0, while a search outside the table-reuse gate (the
// heterogeneous instance) omits the field entirely.
func TestOptimizeDeltaUpdates(t *testing.T) {
	s, o, _ := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/optimize",
		`{"n":3,"delta":1,"kind":"vector","backend":"exact"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"delta_updates":`) {
		t.Errorf("response should surface delta_updates: %s", rec.Body.String())
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.DeltaUpdates == 0 {
		t.Error("homogeneous vector search reported no delta updates")
	}
	if got := o.Counter("exact.delta.updates").Value(); got != int64(resp.DeltaUpdates) {
		t.Errorf("exact.delta.updates counter %d != reported delta_updates %d", got, resp.DeltaUpdates)
	}

	rec = postJSON(t, s.Handler(), "/v1/optimize",
		`{"pi":[0.5,1,1],"delta":1,"kind":"vector","backend":"exact"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("hetero status = %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), `"delta_updates"`) {
		t.Errorf("heterogeneous search should omit delta_updates: %s", rec.Body.String())
	}
}

// TestOptimizeSpanTree checks the optimization trace: one request
// produces http.optimize → engine.optimize → engine.evaluate →
// backend.exact under a single request id.
func TestOptimizeSpanTree(t *testing.T) {
	s, _, buf := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/optimize",
		`{"n":3,"delta":1,"kind":"threshold","backend":"exact"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}

	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	starts := map[string]obs.Event{}
	for _, ev := range events {
		if ev.Type == obs.EventSpanStart {
			if _, seen := starts[ev.Name]; !seen {
				starts[ev.Name] = ev
			}
		}
	}
	root, ok := starts["http.optimize"]
	if !ok {
		t.Fatal("no http.optimize span")
	}
	optSpan, ok := starts["engine.optimize"]
	if !ok {
		t.Fatal("no engine.optimize span")
	}
	eng, ok := starts["engine.evaluate"]
	if !ok {
		t.Fatal("no engine.evaluate span")
	}
	backend, ok := starts["backend.exact"]
	if !ok {
		t.Fatal("no backend.exact span")
	}
	if optSpan.Parent != root.Span {
		t.Errorf("engine.optimize parent = %d, want http.optimize span %d", optSpan.Parent, root.Span)
	}
	if eng.Parent != optSpan.Span {
		t.Errorf("engine.evaluate parent = %d, want engine.optimize span %d", eng.Parent, optSpan.Span)
	}
	if backend.Parent != eng.Span {
		t.Errorf("backend.exact parent = %d, want engine.evaluate span %d", backend.Parent, eng.Span)
	}
}

// TestOptimizeDegradation checks the deadline contract over HTTP: a
// request whose context dies mid-search still answers 200 with the
// best-so-far point, flags degraded, and bumps serve.degraded.
func TestOptimizeDegradation(t *testing.T) {
	s, o, _ := newTestServer(t, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Cancel once a handful of probes have landed: the vector search
		// needs hundreds, so the cut lands mid-search with a finite
		// best-so-far already recorded.
		for o.Counter("optimize.evals").Value() < 5 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()

	// Monte-Carlo probes are slow enough (≫ the poll interval) that the
	// cancellation always lands while the search is still probing.
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize",
		strings.NewReader(`{"pi":[0.5,1,1],"delta":1,"kind":"vector","backend":"mc","trials":50000,"seed":7}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	<-done

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("response should be flagged degraded")
	}
	if len(resp.Params) != 3 || math.IsInf(resp.P, -1) || resp.P <= 0 {
		t.Errorf("degraded response should carry a finite best-so-far point: %+v", resp)
	}
	if got := o.Counter("serve.degraded").Value(); got != 1 {
		t.Errorf("serve.degraded = %d, want 1", got)
	}
}

// TestOptimizeErrors walks the /v1/optimize validation fences.
func TestOptimizeErrors(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name string
		body string
		code int
	}{
		{"missing kind", `{"n":3,"delta":1}`, http.StatusBadRequest},
		{"unknown kind", `{"n":3,"delta":1,"kind":"bogus"}`, http.StatusBadRequest},
		{"interval kind unsupported", `{"n":3,"delta":1,"kind":"interval"}`, http.StatusBadRequest},
		{"missing instance", `{"kind":"threshold"}`, http.StatusBadRequest},
		{"bad backend", `{"n":3,"delta":1,"kind":"threshold","backend":"quantum"}`, http.StatusBadRequest},
		{"negative grid", `{"n":3,"delta":1,"kind":"threshold","grid_points":-1}`, http.StatusBadRequest},
		{"huge grid", `{"n":3,"delta":1,"kind":"threshold","grid_points":1000000}`, http.StatusBadRequest},
		{"negative passes", `{"n":3,"delta":1,"kind":"vector","passes":-1}`, http.StatusBadRequest},
		{"negative tol", `{"n":3,"delta":1,"kind":"threshold","tol":-1}`, http.StatusBadRequest},
		{"get method", ``, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var rec *httptest.ResponseRecorder
			if c.name == "get method" {
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/optimize", nil))
			} else {
				rec = postJSON(t, h, "/v1/optimize", c.body)
			}
			if rec.Code != c.code {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, c.code, rec.Body.String())
			}
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body is not the stable shape: %v", err)
			}
			if eb.Error.Code == "" || eb.Error.Message == "" {
				t.Fatalf("error body missing code/message: %q", rec.Body.String())
			}
		})
	}
}
