package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sim"
)

// instanceFor builds and validates the request's problem instance,
// enforcing the server's size cap.
func instanceFor(n int, delta float64, pi []float64, maxN int) (engine.Instance, error) {
	if n == 0 {
		n = len(pi)
	}
	if n <= 0 {
		return engine.Instance{}, badRequest("n (or a non-empty pi vector) is required")
	}
	if n > maxN {
		return engine.Instance{}, badRequest("n = %d exceeds the server's limit %d", n, maxN)
	}
	if err := finite("delta", delta); err != nil {
		return engine.Instance{}, err
	}
	for i, p := range pi {
		if err := finite(fmt.Sprintf("pi[%d]", i), p); err != nil {
			return engine.Instance{}, err
		}
	}
	var inst problem.Instance
	var err error
	if len(pi) > 0 {
		inst, err = problem.NewPi(n, delta, pi)
	} else {
		inst, err = problem.New(n, delta)
	}
	if err != nil {
		return engine.Instance{}, badRequest("%v", err)
	}
	return inst, nil
}

// ruleFor builds the request's rule from its kind/param pair.
func ruleFor(kind string, param float64) (engine.Rule, error) {
	if err := finite("param", param); err != nil {
		return nil, err
	}
	switch kind {
	case "threshold":
		return engine.SymmetricThreshold{Beta: param}, nil
	case "oblivious":
		if param < 0 || param > 1 {
			return nil, badRequest("oblivious param (bin-0 probability) must be in [0, 1], got %g", param)
		}
		return engine.SymmetricOblivious{A: param}, nil
	case "":
		return nil, badRequest("kind is required (threshold or oblivious)")
	default:
		return nil, badRequest("unknown kind %q (want threshold or oblivious)", kind)
	}
}

// simConfigFor resolves a request's Monte-Carlo knobs against the
// server's defaults and caps. Seed 0 selects the CLI default seed so a
// canonical request reproduces `nocomm eval` output bit-for-bit.
// Replicates only matters to the mc-qmc backend (0 = sim default).
func (s *Server) simConfigFor(trials int, seed uint64, workers, replicates int) (sim.Config, error) {
	if trials < 0 {
		return sim.Config{}, badRequest("trials must be non-negative")
	}
	if trials == 0 {
		trials = s.cfg.Trials
	}
	if trials > s.cfg.MaxTrials {
		return sim.Config{}, badRequest("trials = %d exceeds the server's limit %d", trials, s.cfg.MaxTrials)
	}
	if workers < 0 {
		return sim.Config{}, badRequest("workers must be non-negative")
	}
	if replicates < 0 {
		return sim.Config{}, badRequest("replicates must be non-negative")
	}
	if replicates > trials {
		return sim.Config{}, badRequest("replicates = %d exceeds trials = %d", replicates, trials)
	}
	if seed == 0 {
		seed = defaultSeed
	}
	return sim.Config{Trials: trials, Seed: seed, Workers: workers, Replicates: replicates, Obs: s.obs}, nil
}

// deadlineFor resolves a request's deadline_ms against the server's
// default budget; requests can shorten the budget but never extend it.
func (s *Server) deadlineFor(ms int) (time.Duration, error) {
	if ms < 0 {
		return 0, badRequest("deadline_ms must be non-negative")
	}
	d := time.Duration(ms) * time.Millisecond
	if d == 0 || d > s.cfg.Deadline {
		d = s.cfg.Deadline
	}
	return d, nil
}

// requirePost rejects non-POST methods on the API endpoints.
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST with a JSON body")
		return false
	}
	return true
}

// evaluateOne runs one evaluation under the request deadline with
// graceful degradation: if an exact (or auto-resolved-exact) evaluation
// misses the deadline — the computation keeps running in the background,
// warming the engine cache — the request is answered by a bounded
// Monte-Carlo estimate instead, and the degradation is recorded in the
// serve.degraded counter and a degraded=1 attribute on the request span.
func (s *Server) evaluateOne(ctx context.Context, inst engine.Instance, rule engine.Rule, backend engine.Backend, simCfg sim.Config, deadline time.Duration) (engine.Result, bool, error) {
	dctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	res, err := s.eng.EvaluateWithCtx(dctx, inst, rule, backend, simCfg)
	if err == nil || !isDeadline(err) || backend == engine.MonteCarlo || backend == engine.MonteCarloQMC {
		return res, false, err
	}
	// Exact evaluation missed the budget: degrade to a fast sampled
	// estimate. Quasi-Monte-Carlo is tried first — at the degraded trial
	// budget its replicate error is several times tighter than plain MC —
	// and rules it cannot run (bespoke simulators, too many dimensions)
	// fall back to the pseudo-random estimator. Each fallback gets its own
	// (short) budget so a stuck simulation still cannot hold the
	// connection forever.
	s.obs.Counter("serve.degraded").Inc()
	if sp := obs.SpanFromContext(ctx); sp != nil {
		sp.SetAttr("degraded", 1)
	}
	mcCfg := simCfg
	mcCfg.Trials = s.cfg.DegradedTrials
	fctx, fcancel := context.WithTimeout(ctx, deadline)
	defer fcancel()
	if qres, qerr := s.eng.EvaluateWithCtx(fctx, inst, rule, engine.MonteCarloQMC, mcCfg); qerr == nil {
		return qres, true, nil
	} else if isDeadline(qerr) {
		return qres, true, qerr
	}
	res, err = s.eng.EvaluateWithCtx(fctx, inst, rule, engine.MonteCarlo, mcCfg)
	return res, err == nil, err
}

// handleEval serves POST /v1/eval: one rule on one instance.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req EvalRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeErr(w, err)
		return
	}
	inst, err := instanceFor(req.N, req.Delta, req.Pi, s.cfg.MaxN)
	if err != nil {
		writeErr(w, err)
		return
	}
	rule, err := ruleFor(req.Kind, req.Param)
	if err != nil {
		writeErr(w, err)
		return
	}
	backend, err := parseBackend(req.Backend)
	if err != nil {
		writeErr(w, err)
		return
	}
	simCfg, err := s.simConfigFor(req.Trials, req.Seed, req.Workers, req.Replicates)
	if err != nil {
		writeErr(w, err)
		return
	}
	deadline, err := s.deadlineFor(req.DeadlineMS)
	if err != nil {
		writeErr(w, err)
		return
	}

	res, degraded, err := s.evaluateOne(r.Context(), inst, rule, backend, simCfg, deadline)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := EvalResponse{
		N:        inst.N,
		Delta:    inst.Delta,
		Pi:       req.Pi,
		Kind:     req.Kind,
		Param:    req.Param,
		P:        res.P,
		StdErr:   res.StdErr,
		Backend:  res.Backend.String(),
		Cached:   res.Cached,
		Degraded: degraded,
	}
	if res.Sim != nil {
		resp.Trials = res.Sim.Trials
		resp.Replicates = res.Sim.Replicates
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleOptimize serves POST /v1/optimize: maximize a rule family's
// winning probability on one instance. The search routes through
// engine.OptimizeCtx, so probes share the server engine's memoization
// cache and the request span parents the
// engine.optimize → engine.evaluate → backend.* trace tree. A search that
// outlives the request deadline degrades to its best-so-far point
// (degraded=true, the serve.degraded counter, a degraded=1 span
// attribute), mirroring /v1/eval's degradation contract; a deadline that
// struck before any probe finished is a 503.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req OptimizeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeErr(w, err)
		return
	}
	inst, err := instanceFor(req.N, req.Delta, req.Pi, s.cfg.MaxN)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Kind == "" {
		writeErr(w, badRequest("kind is required (threshold, oblivious or vector)"))
		return
	}
	fam, err := engine.FamilyForKind(req.Kind)
	if err != nil {
		writeErr(w, badRequest("%v", err))
		return
	}
	backend, err := parseBackend(req.Backend)
	if err != nil {
		writeErr(w, err)
		return
	}
	simCfg, err := s.simConfigFor(req.Trials, req.Seed, req.Workers, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	deadline, err := s.deadlineFor(req.DeadlineMS)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.GridPoints < 0 || req.GridPoints > s.cfg.MaxPoints {
		writeErr(w, badRequest("grid_points = %d outside [0, %d]", req.GridPoints, s.cfg.MaxPoints))
		return
	}
	if req.Passes < 0 || req.Passes > s.cfg.MaxPoints {
		writeErr(w, badRequest("passes = %d outside [0, %d]", req.Passes, s.cfg.MaxPoints))
		return
	}
	if err := finite("tol", req.Tol); err != nil {
		writeErr(w, err)
		return
	}
	if req.Tol < 0 {
		writeErr(w, badRequest("tol must be non-negative"))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	res, err := s.eng.OptimizeCtx(ctx, inst, fam, engine.OptimizeOptions{
		Backend:    backend,
		Sim:        simCfg,
		GridPoints: req.GridPoints,
		Tol:        req.Tol,
		Passes:     req.Passes,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	if res.Degraded {
		s.obs.Counter("serve.degraded").Inc()
		if sp := obs.SpanFromContext(r.Context()); sp != nil {
			sp.SetAttr("degraded", 1)
		}
	}
	resp := OptimizeResponse{
		N:            inst.N,
		Delta:        inst.Delta,
		Pi:           req.Pi,
		Kind:         req.Kind,
		Params:       res.Params,
		P:            res.Value,
		Backend:      res.Backend.String(),
		Evals:        res.Evals,
		CacheHits:    res.CacheHits,
		Iterations:   res.Iterations,
		DeltaUpdates: res.DeltaUpdates,
		Degraded:     res.Degraded,
	}
	if len(res.Params) == 1 {
		resp.Param = res.Params[0]
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep serves POST /v1/sweep: one rule family on a parameter grid.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SweepRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeErr(w, err)
		return
	}
	inst, err := instanceFor(req.N, req.Delta, req.Pi, s.cfg.MaxN)
	if err != nil {
		writeErr(w, err)
		return
	}
	params, err := s.sweepGrid(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	backend, err := parseBackend(req.Backend)
	if err != nil {
		writeErr(w, err)
		return
	}
	simCfg, err := s.simConfigFor(req.Trials, req.Seed, req.Workers, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	deadline, err := s.deadlineFor(req.DeadlineMS)
	if err != nil {
		writeErr(w, err)
		return
	}

	points := make([]engine.Point, len(params))
	for i, p := range params {
		rule, err := ruleFor(req.Kind, p)
		if err != nil {
			writeErr(w, err)
			return
		}
		points[i] = engine.Point{Instance: inst, Rule: rule}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	opts := engine.SweepOptions{Backend: backend, Workers: req.Workers, Sim: simCfg}
	if req.Stream {
		s.streamSweep(ctx, w, req, inst, params, points, opts)
		return
	}
	results, err := s.eng.SweepCtx(ctx, points, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := SweepResponse{N: inst.N, Delta: inst.Delta, Pi: req.Pi, Kind: req.Kind, Points: make([]SweepPoint, len(results))}
	for i, res := range results {
		resp.Points[i] = SweepPoint{
			Param:   params[i],
			P:       res.P,
			StdErr:  res.StdErr,
			Backend: res.Backend.String(),
			Cached:  res.Cached,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepGrid resolves a sweep request's grid: explicit params, or a
// linear from/to/points ramp, capped at MaxPoints.
func (s *Server) sweepGrid(req SweepRequest) ([]float64, error) {
	if len(req.Params) > 0 {
		if req.Points != 0 || req.From != 0 || req.To != 0 {
			return nil, badRequest("params and from/to/points are mutually exclusive")
		}
		if len(req.Params) > s.cfg.MaxPoints {
			return nil, badRequest("%d params exceed the server's limit %d", len(req.Params), s.cfg.MaxPoints)
		}
		for i, p := range req.Params {
			if err := finite(fmt.Sprintf("params[%d]", i), p); err != nil {
				return nil, err
			}
		}
		return req.Params, nil
	}
	if req.Points <= 0 {
		return nil, badRequest("either params or from/to/points is required")
	}
	if req.Points > s.cfg.MaxPoints {
		return nil, badRequest("points = %d exceeds the server's limit %d", req.Points, s.cfg.MaxPoints)
	}
	if err := finite("from", req.From); err != nil {
		return nil, err
	}
	if err := finite("to", req.To); err != nil {
		return nil, err
	}
	grid := make([]float64, req.Points)
	if req.Points == 1 {
		grid[0] = req.From
		return grid, nil
	}
	step := (req.To - req.From) / float64(req.Points-1)
	for i := range grid {
		grid[i] = req.From + float64(i)*step
	}
	return grid, nil
}

// handleTable serves POST /v1/table: one harness table experiment,
// rendered as text. The run shares the server's engine, so repeated
// requests for the same table are served from the memoization cache.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req TableRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.ID == "" {
		writeErr(w, badRequest("id is required (a registry id like T1 or an alias like oblivious)"))
		return
	}
	exp, err := harness.Lookup(req.ID)
	if err != nil {
		writeErr(w, badRequest("%v", err))
		return
	}
	if exp.Kind != harness.KindTable {
		writeErr(w, badRequest("experiment %s is a figure; /v1/table serves table experiments", exp.ID))
		return
	}
	backend, err := parseBackend(req.Backend)
	if err != nil {
		writeErr(w, err)
		return
	}
	simCfg, err := s.simConfigFor(req.Trials, req.Seed, req.Workers, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	for i, p := range req.Pi {
		if err := finite(fmt.Sprintf("pi[%d]", i), p); err != nil {
			writeErr(w, err)
			return
		}
	}
	out, err := exp.Run(s.obs, harness.Params{
		Sim:     simCfg,
		Backend: backend,
		Pi:      req.Pi,
		Engine:  s.eng,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	text, err := out.Table.Render()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TableResponse{ID: exp.ID, Title: exp.Title, Text: text})
}

// handleHealthz is the liveness probe: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: 200 once the warmup canary (one
// trivial exact evaluation through the full stack) has completed. With a
// disk-tiered result store the body additionally reports the tier's
// stats, so a warm-started replica shows at a glance what it inherited.
// Without one the body is exactly "ready\n", byte-compatible with probes
// written before the store existed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "warming up\n")
		return
	}
	io.WriteString(w, "ready\n")
	if d := s.eng.ResultStore().Stats().Disk; d != nil {
		fmt.Fprintf(w, "store.disk.dir %s\n", d.Dir)
		fmt.Fprintf(w, "store.disk.entries %d\n", d.Entries)
		fmt.Fprintf(w, "store.disk.bytes %d\n", d.Bytes)
		fmt.Fprintf(w, "store.disk.hits %d\n", d.Hits)
		fmt.Fprintf(w, "store.disk.misses %d\n", d.Misses)
	}
}

// handleMetrics serves the live registry in the Prometheus text
// exposition format, sampling the Go runtime gauges at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil || s.obs.Metrics == nil {
		writeError(w, http.StatusNotImplemented, "no_metrics", "server started without a metrics registry")
		return
	}
	obs.CollectRuntime(s.obs)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obs.Metrics.Snapshot().WritePrometheus(w); err != nil {
		s.obs.EmitError("serve.metrics", err)
	}
}
