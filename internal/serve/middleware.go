package serve

import (
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// statusWriter captures the status code and body size a handler writes,
// for the status-class counters and the access event.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (the
// NDJSON sweep) can push each chunk onto the wire as it completes.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an endpoint handler with the server's observability:
//
//   - a request id, minted per request and echoed in X-Request-Id;
//   - a root span http.<endpoint> carrying the request id, propagated
//     through the request context so engine and backend spans parent
//     onto it (the handler → engine → backend trace tree);
//   - the http.requests.total counter, the per-endpoint request counter,
//     per-endpoint status-class counters (2xx/4xx/5xx), the
//     http.latency.<endpoint> histogram, and the http.inflight gauge;
//   - one structured access event per request;
//   - panic recovery: a handler panic becomes a 500 with the stable
//     error shape plus an http.panics counter and an error event, never
//     a dead connection.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := s.nextRequestID()
		w.Header().Set("X-Request-Id", reqID)
		sw := &statusWriter{ResponseWriter: w}

		s.obs.Gauge("http.inflight").Set(float64(s.inflight.Add(1)))
		start := time.Now()
		sp, ctx := s.obs.StartSpanCtx(r.Context(), "http."+endpoint)
		sp.SetField("request_id", reqID)

		defer func() {
			if rec := recover(); rec != nil {
				s.obs.Counter("http.panics").Inc()
				s.obs.EmitError("http."+endpoint, &panicError{val: rec, stack: debug.Stack()})
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			elapsed := time.Since(start)
			sp.SetAttr("status", float64(sw.status))
			sp.End()
			s.obs.Gauge("http.inflight").Set(float64(s.inflight.Add(-1)))
			s.obs.Counter("http.requests.total").Inc()
			s.obs.Counter("http.requests." + endpoint).Inc()
			s.obs.Counter("http.requests." + endpoint + "." + statusClass(sw.status)).Inc()
			s.obs.Histogram("http.latency."+endpoint, 0, 2.5, 50).Observe(elapsed.Seconds())
			s.obs.Emit(obs.Event{
				Type: obs.EventAccess,
				Name: "http.access",
				Span: sp.ID(),
				Fields: map[string]string{
					"id":       reqID,
					"method":   r.Method,
					"path":     r.URL.Path,
					"endpoint": endpoint,
				},
				Attrs: map[string]float64{
					"status":  float64(sw.status),
					"seconds": elapsed.Seconds(),
					"bytes":   float64(sw.bytes),
				},
			})
		}()

		h(sw, r.WithContext(ctx))
	})
}

// statusClass buckets a status code into 2xx/3xx/4xx/5xx.
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// panicError carries a recovered panic value into the error event log.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return "panic: " + stringify(e.val) + "\n" + string(e.stack)
}

func stringify(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	if s, ok := v.(string); ok {
		return s
	}
	return "non-string panic value"
}
