package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// benchServer runs a real HTTP server (httptest) over a fully
// instrumented serve stack, so the benchmarks price the whole request
// path: TCP, routing, middleware, JSON, engine, metrics.
func benchServer(b *testing.B) (*httptest.Server, *http.Client) {
	b.Helper()
	o := obs.New(obs.NewRegistry(), nil)
	s := New(Config{Obs: o, Engine: engine.New(engine.Config{Obs: o})})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts, ts.Client()
}

func benchPost(b *testing.B, c *http.Client, url, body string) {
	b.Helper()
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkEvalWarm serves the same exact evaluation repeatedly: after
// the first request every response is a cache hit, so this prices the
// HTTP + middleware + JSON overhead per request.
func BenchmarkEvalWarm(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/v1/eval"
	body := `{"n":3,"delta":1,"kind":"threshold","param":0.6220355269907728,"backend":"exact"}`
	benchPost(b, c, url, body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, c, url, body)
	}
}

// BenchmarkEvalCold serves a distinct exact evaluation every iteration:
// every request is a cache miss, pricing the full request + exact
// backend path (n=3 keeps the enumeration cheap enough to benchmark).
func BenchmarkEvalCold(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/v1/eval"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"n":3,"delta":1,"kind":"threshold","param":%.9f,"backend":"exact"}`, 0.1+0.8*float64(i%100000)/100000+1e-9*float64(i))
		benchPost(b, c, url, body)
	}
}

// BenchmarkOptimizeWarm serves the same scalar optimization repeatedly:
// after the first request every probe inside the search is an engine
// cache hit, so this prices the HTTP overhead plus the search driver
// walking a fully memoized objective.
func BenchmarkOptimizeWarm(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/v1/optimize"
	body := `{"n":3,"delta":1,"kind":"threshold","backend":"exact"}`
	benchPost(b, c, url, body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, c, url, body)
	}
}

// BenchmarkWarmRestartEval prices the tentpole contract: a restarted
// server answering a previously-computed exact evaluation. Every
// iteration builds a fresh server — a fresh memory tier, as after a
// process restart — over a cache directory and serves one /v1/eval of
// the same heavy exact result (a heterogeneous n=15 instance, so a cold
// recompute pays the Theorem 5.1 O(n²·2ⁿ) subset enumeration rather
// than the homogeneous closed form). Warm (the default, recorded as
// store-head): the directory was seeded once before the loop, so every
// "restart" fills from the disk tier. Cold (NOCOMM_STORE_BENCH=cold,
// recorded as store-baseline): every iteration starts from an empty
// directory and recomputes. The bench-check gate requires the warm
// restart to be ≥10x faster.
func BenchmarkWarmRestartEval(b *testing.B) {
	cold := os.Getenv("NOCOMM_STORE_BENCH") == "cold"
	body := warmRestartBody(15)
	root := b.TempDir()
	warmDir := filepath.Join(root, "warm")
	if !cold {
		restartEval(b, warmDir, body) // seed the disk tier
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := warmDir
		if cold {
			dir = filepath.Join(root, strconv.Itoa(i))
		}
		restartEval(b, dir, body)
	}
}

// warmRestartBody builds the benchmark's eval request: a heterogeneous
// π vector (distinct per-player input ranges) keeps the exact backend on
// the subset-enumeration path.
func warmRestartBody(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"n":%d,"delta":%d,"kind":"threshold","param":0.318,"backend":"exact","pi":[`, n, n/3)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%.2f", 0.80+0.02*float64(i))
	}
	sb.WriteString("]}")
	return sb.String()
}

// restartEval builds a fresh server over the cache directory and serves
// one eval through the full handler stack (no TCP: the restart path, not
// the socket, is what this prices).
func restartEval(b *testing.B, dir, body string) {
	b.Helper()
	o := obs.New(obs.NewRegistry(), nil)
	st, err := store.New(store.Options{Dir: dir, Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Obs: o, Engine: engine.New(engine.Config{Obs: o, Store: st})})
	req := httptest.NewRequest(http.MethodPost, "/v1/eval", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
}

// BenchmarkHealthz prices the instrumented no-work path: middleware,
// request ids, counters, histogram, access event bookkeeping.
func BenchmarkHealthz(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/healthz"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkMetrics prices a Prometheus scrape of a populated registry.
func BenchmarkMetrics(b *testing.B) {
	ts, c := benchServer(b)
	benchPost(b, c, ts.URL+"/v1/eval", `{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"exact"}`)
	url := ts.URL + "/metrics"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
