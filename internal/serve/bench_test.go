package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
)

// benchServer runs a real HTTP server (httptest) over a fully
// instrumented serve stack, so the benchmarks price the whole request
// path: TCP, routing, middleware, JSON, engine, metrics.
func benchServer(b *testing.B) (*httptest.Server, *http.Client) {
	b.Helper()
	o := obs.New(obs.NewRegistry(), nil)
	s := New(Config{Obs: o, Engine: engine.New(engine.Config{Obs: o})})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts, ts.Client()
}

func benchPost(b *testing.B, c *http.Client, url, body string) {
	b.Helper()
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkEvalWarm serves the same exact evaluation repeatedly: after
// the first request every response is a cache hit, so this prices the
// HTTP + middleware + JSON overhead per request.
func BenchmarkEvalWarm(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/v1/eval"
	body := `{"n":3,"delta":1,"kind":"threshold","param":0.6220355269907728,"backend":"exact"}`
	benchPost(b, c, url, body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, c, url, body)
	}
}

// BenchmarkEvalCold serves a distinct exact evaluation every iteration:
// every request is a cache miss, pricing the full request + exact
// backend path (n=3 keeps the enumeration cheap enough to benchmark).
func BenchmarkEvalCold(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/v1/eval"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"n":3,"delta":1,"kind":"threshold","param":%.9f,"backend":"exact"}`, 0.1+0.8*float64(i%100000)/100000+1e-9*float64(i))
		benchPost(b, c, url, body)
	}
}

// BenchmarkOptimizeWarm serves the same scalar optimization repeatedly:
// after the first request every probe inside the search is an engine
// cache hit, so this prices the HTTP overhead plus the search driver
// walking a fully memoized objective.
func BenchmarkOptimizeWarm(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/v1/optimize"
	body := `{"n":3,"delta":1,"kind":"threshold","backend":"exact"}`
	benchPost(b, c, url, body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, c, url, body)
	}
}

// BenchmarkHealthz prices the instrumented no-work path: middleware,
// request ids, counters, histogram, access event bookkeeping.
func BenchmarkHealthz(b *testing.B) {
	ts, c := benchServer(b)
	url := ts.URL + "/healthz"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkMetrics prices a Prometheus scrape of a populated registry.
func BenchmarkMetrics(b *testing.B) {
	ts, c := benchServer(b)
	benchPost(b, c, ts.URL+"/v1/eval", `{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"exact"}`)
	url := ts.URL + "/metrics"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
