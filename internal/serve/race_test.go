package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestEvalRace hammers /v1/eval from 8 goroutines with a mix of
// identical bodies (driving the engine's singleflight coalescing) and
// distinct ones (driving concurrent cache inserts). Run under -race in
// `make ci`; the assertions also pin the coalescing accounting: every
// response for the shared body after the first must agree bit-for-bit.
func TestEvalRace(t *testing.T) {
	s, o, _ := newTestServer(t, Config{})
	h := s.Handler()

	const goroutines = 8
	const perG = 6
	shared := `{"n":4,"delta":1.5,"kind":"threshold","param":0.55,"backend":"mc","trials":20000,"seed":3}`

	results := make([][]EvalResponse, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				body := shared
				if i%3 == 2 {
					// Every third request is distinct: concurrent misses
					// exercise the cache-insert path alongside the joins.
					body = fmt.Sprintf(`{"n":3,"delta":1,"kind":"threshold","param":0.%d%d,"backend":"exact"}`, g+1, i+1)
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/eval", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("goroutine %d request %d: status %d body %s", g, i, rec.Code, rec.Body.String())
					return
				}
				var resp EvalResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Error(err)
					return
				}
				if body == shared {
					results[g] = append(results[g], resp)
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var first *EvalResponse
	for g := range results {
		for i := range results[g] {
			r := &results[g][i]
			if first == nil {
				first = r
				continue
			}
			if r.P != first.P || r.StdErr != first.StdErr {
				t.Fatalf("shared-body responses disagree: %+v vs %+v", *r, *first)
			}
		}
	}
	hits := o.Counter("engine.cache.hits").Value()
	misses := o.Counter("engine.cache.misses").Value()
	if misses == 0 || hits == 0 {
		t.Errorf("cache counters implausible after race: hits=%d misses=%d", hits, misses)
	}
}
