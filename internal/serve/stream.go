package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/engine"
)

// DefaultSweepChunk is the points-per-line granularity of a streamed
// sweep when the request does not set chunk_size: small enough that the
// first line of a big grid lands fast, large enough that the line
// framing stays a rounding error against the evaluations.
const DefaultSweepChunk = 256

// streamSweep serves the NDJSON branch of /v1/sweep: a header line with
// the grid's shape, then one chunk line per completed run of points,
// each flushed onto the wire as soon as its evaluations finish. The
// engine reuses the per-chunk results buffer, and the encoder reuses its
// point buffer — the steady-state chunk path allocates per chunk, never
// per grid, so a 10k-point sweep streams its first chunk while later
// shards are still computing and holds memory for one chunk, not all
// points.
//
// Status semantics: errors before the header (none are possible here —
// validation already ran) would use the normal error shape; errors after
// the header cannot change the already-written 200, so they surface as
// a final {"error": ...} line and the stream ends early (fewer points
// than the header promised is the truncation signal).
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, req SweepRequest, inst engine.Instance, params []float64, points []engine.Point, opts engine.SweepOptions) {
	chunk := req.ChunkSize
	if chunk <= 0 {
		chunk = DefaultSweepChunk
	}
	if chunk > len(points) {
		chunk = len(points)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := newSweepChunkEncoder(w, flusher, params, chunk)
	if err := enc.header(SweepStreamHeader{N: inst.N, Delta: inst.Delta, Pi: req.Pi, Kind: req.Kind, Points: len(points), Chunk: chunk}); err != nil {
		return
	}
	if err := s.eng.SweepChunksCtx(ctx, points, opts, chunk, enc.emit); err != nil {
		enc.fail(err)
	}
}

// sweepChunkEncoder renders sweep chunks as NDJSON lines. Its point
// buffer is reused across chunks and the engine's results slice is
// consumed inside emit — nothing per-shard is retained, so encoding a
// chunk costs the same on the first and the ten-thousandth point.
type sweepChunkEncoder struct {
	enc    *json.Encoder
	flush  http.Flusher
	params []float64
	buf    []SweepPoint
	line   SweepStreamChunk
}

func newSweepChunkEncoder(w io.Writer, flush http.Flusher, params []float64, chunk int) *sweepChunkEncoder {
	return &sweepChunkEncoder{
		enc:    json.NewEncoder(w),
		flush:  flush,
		params: params,
		buf:    make([]SweepPoint, 0, chunk),
	}
}

// header writes the leading shape line and pushes it onto the wire, so
// clients see the stream is live before the first chunk computes.
func (e *sweepChunkEncoder) header(h SweepStreamHeader) error {
	if err := e.enc.Encode(&h); err != nil {
		return err
	}
	if e.flush != nil {
		e.flush.Flush()
	}
	return nil
}

// emit is the engine's SweepChunksCtx callback: encode one chunk line
// and flush it. The results slice is owned by the engine and reused for
// the next chunk; emit copies what it needs into its own reused buffer.
func (e *sweepChunkEncoder) emit(start int, results []engine.Result) error {
	e.buf = e.buf[:0]
	for i, res := range results {
		e.buf = append(e.buf, SweepPoint{
			Param:   e.params[start+i],
			P:       res.P,
			StdErr:  res.StdErr,
			Backend: res.Backend.String(),
			Cached:  res.Cached,
		})
	}
	e.line.Start = start
	e.line.Points = e.buf
	if err := e.enc.Encode(&e.line); err != nil {
		return err
	}
	if e.flush != nil {
		e.flush.Flush()
	}
	return nil
}

// fail appends the trailing error line of an aborted stream.
func (e *sweepChunkEncoder) fail(err error) {
	code := "bad_request"
	if isDeadline(err) {
		code = "deadline_exceeded"
	}
	_ = e.enc.Encode(errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
	if e.flush != nil {
		e.flush.Flush()
	}
}
