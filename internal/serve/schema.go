package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/engine"
)

// EvalRequest is the /v1/eval body: one rule evaluated on one instance.
type EvalRequest struct {
	// N is the player count; 0 derives it from the π vector.
	N int `json:"n,omitempty"`
	// Delta is the bin capacity δ (required, > 0).
	Delta float64 `json:"delta"`
	// Pi optionally sets per-player input ranges (x_i ~ U[0, π_i]).
	Pi []float64 `json:"pi,omitempty"`
	// Kind is the rule family: "threshold" or "oblivious".
	Kind string `json:"kind"`
	// Param is the common threshold β (threshold) or bin-0 probability α
	// (oblivious).
	Param float64 `json:"param"`
	// Backend is "exact", "mc", "mc-qmc" or "auto" (default "auto").
	Backend string `json:"backend,omitempty"`
	// Trials overrides the sampled trial count (mc and mc-qmc backends).
	Trials int `json:"trials,omitempty"`
	// Seed seeds the Monte-Carlo streams; 0 selects the default seed 1
	// (matching the CLI default, so canonical requests match CLI output).
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the parallel worker count (0 = all cores).
	Workers int `json:"workers,omitempty"`
	// Replicates is the number of independently scrambled randomizations
	// the mc-qmc backend averages (0 = the sim default, 16). Ignored by
	// the other backends.
	Replicates int `json:"replicates,omitempty"`
	// DeadlineMS is the per-request budget in milliseconds; 0 selects the
	// server default. When an exact evaluation misses the budget the
	// response degrades to a sampled estimate (quasi-Monte-Carlo when the
	// rule supports it, plain Monte-Carlo otherwise).
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// EvalResponse is the /v1/eval reply.
type EvalResponse struct {
	N        int       `json:"n"`
	Delta    float64   `json:"delta"`
	Pi       []float64 `json:"pi,omitempty"`
	Kind     string    `json:"kind"`
	Param    float64   `json:"param"`
	P        float64   `json:"p"`
	StdErr   float64   `json:"std_err,omitempty"`
	Backend  string    `json:"backend"`
	Cached   bool      `json:"cached"`
	Degraded bool      `json:"degraded,omitempty"`
	Trials   int64     `json:"trials,omitempty"`
	// Replicates reports the mc-qmc randomization count (0 for the other
	// backends).
	Replicates int `json:"replicates,omitempty"`
}

// SweepRequest is the /v1/sweep body: one rule family evaluated on a
// parameter grid, either explicit (params) or linear (from/to/points).
type SweepRequest struct {
	N       int       `json:"n,omitempty"`
	Delta   float64   `json:"delta"`
	Pi      []float64 `json:"pi,omitempty"`
	Kind    string    `json:"kind"`
	Params  []float64 `json:"params,omitempty"`
	From    float64   `json:"from,omitempty"`
	To      float64   `json:"to,omitempty"`
	Points  int       `json:"points,omitempty"`
	Backend string    `json:"backend,omitempty"`
	Trials  int       `json:"trials,omitempty"`
	Seed    uint64    `json:"seed,omitempty"`
	Workers int       `json:"workers,omitempty"`
	// DeadlineMS bounds the whole sweep; an expired budget aborts with
	// 503 (sweeps do not degrade point-by-point).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Stream switches the response to chunked NDJSON: one header line,
	// then one chunk line per ChunkSize evaluated points, each flushed as
	// soon as its chunk completes — the first results arrive long before
	// a large grid finishes. Errors after the header surface as a final
	// {"error": ...} line (the HTTP status is already on the wire).
	Stream bool `json:"stream,omitempty"`
	// ChunkSize is the points-per-line granularity of a streamed sweep
	// (0 = DefaultSweepChunk). Ignored unless Stream is set.
	ChunkSize int `json:"chunk_size,omitempty"`
}

// SweepStreamHeader is the first NDJSON line of a streamed sweep: the
// grid's shape, so consumers can pre-size before any chunk arrives.
type SweepStreamHeader struct {
	N      int       `json:"n"`
	Delta  float64   `json:"delta"`
	Pi     []float64 `json:"pi,omitempty"`
	Kind   string    `json:"kind"`
	Points int       `json:"points"`
	Chunk  int       `json:"chunk"`
}

// SweepStreamChunk is one NDJSON chunk line: a contiguous run of
// evaluated points starting at the given grid index.
type SweepStreamChunk struct {
	Start  int          `json:"start"`
	Points []SweepPoint `json:"points"`
}

// SweepPoint is one evaluated cell of a sweep response.
type SweepPoint struct {
	Param   float64 `json:"param"`
	P       float64 `json:"p"`
	StdErr  float64 `json:"std_err,omitempty"`
	Backend string  `json:"backend"`
	Cached  bool    `json:"cached"`
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	N      int          `json:"n"`
	Delta  float64      `json:"delta"`
	Pi     []float64    `json:"pi,omitempty"`
	Kind   string       `json:"kind"`
	Points []SweepPoint `json:"points"`
}

// OptimizeRequest is the /v1/optimize body: maximize a rule family's
// winning probability on one instance through engine.OptimizeCtx.
type OptimizeRequest struct {
	// N is the player count; 0 derives it from the π vector.
	N int `json:"n,omitempty"`
	// Delta is the bin capacity δ (required, > 0).
	Delta float64 `json:"delta"`
	// Pi optionally sets per-player input ranges (x_i ~ U[0, π_i]).
	Pi []float64 `json:"pi,omitempty"`
	// Kind is the rule family: "threshold" (symmetric β), "oblivious"
	// (symmetric α) or "vector" (the full per-player threshold vector).
	Kind string `json:"kind"`
	// Backend is "exact", "mc" or "auto" (default "auto").
	Backend string `json:"backend,omitempty"`
	// Trials overrides the Monte-Carlo trial count (mc backend).
	Trials int `json:"trials,omitempty"`
	// Seed seeds the Monte-Carlo streams; 0 selects the default seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the parallel worker count (0 = all cores).
	Workers int `json:"workers,omitempty"`
	// GridPoints overrides the scalar grid resolution (default 101),
	// capped at the server's MaxPoints.
	GridPoints int `json:"grid_points,omitempty"`
	// Tol overrides the convergence tolerance (default 1e-10).
	Tol float64 `json:"tol,omitempty"`
	// Passes caps the vector path's coordinate-ascent passes (default 64),
	// capped at the server's MaxPoints.
	Passes int `json:"passes,omitempty"`
	// DeadlineMS bounds the whole search; an expired budget answers with
	// the best point evaluated so far (degraded=true), or 503 when the
	// deadline struck before any probe finished.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// OptimizeResponse is the /v1/optimize reply.
type OptimizeResponse struct {
	N     int       `json:"n"`
	Delta float64   `json:"delta"`
	Pi    []float64 `json:"pi,omitempty"`
	Kind  string    `json:"kind"`
	// Params is the best parameter vector found (length 1 for the scalar
	// kinds, n for "vector").
	Params []float64 `json:"params"`
	// Param mirrors Params[0] for the scalar kinds.
	Param      float64 `json:"param,omitempty"`
	P          float64 `json:"p"`
	Backend    string  `json:"backend"`
	Evals      int     `json:"evals"`
	CacheHits  int     `json:"cache_hits"`
	Iterations int     `json:"iterations"`
	// DeltaUpdates counts the single-coordinate delta evaluations the
	// search's reusable exact evaluator served (omitted when the search
	// ran without table reuse).
	DeltaUpdates uint64 `json:"delta_updates,omitempty"`
	Degraded     bool   `json:"degraded,omitempty"`
}

// TableRequest is the /v1/table body: one harness table experiment by id
// or mnemonic alias (T1..T10, V1, "oblivious", "hetero", ...).
type TableRequest struct {
	ID      string    `json:"id"`
	Trials  int       `json:"trials,omitempty"`
	Seed    uint64    `json:"seed,omitempty"`
	Workers int       `json:"workers,omitempty"`
	Backend string    `json:"backend,omitempty"`
	Pi      []float64 `json:"pi,omitempty"`
}

// TableResponse is the /v1/table reply: the experiment's rendered text.
type TableResponse struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Text  string `json:"text"`
}

// errorBody is the stable JSON error shape every non-2xx response uses:
//
//	{"error": {"code": "bad_request", "message": "..."}}
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError is an error with an HTTP status and a stable machine code.
type apiError struct {
	status  int
	code    string
	message string
}

func (e *apiError) Error() string { return e.message }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_request", message: fmt.Sprintf(format, args...)}
}

// decodeJSON reads one JSON object into v with the service's hardening:
// a byte cap (MaxBytesReader), unknown fields rejected, and trailing
// garbage rejected. Every failure maps to a 400 apiError — malformed
// bodies must never reach the evaluation layers, let alone panic.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return badRequest("request body exceeds %d bytes", maxErr.Limit)
		}
		return badRequest("malformed JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("request body must be a single JSON object")
	}
	return nil
}

// parseBackend maps the request's backend spelling ("" = auto) onto the
// engine's enum, as a 400 on failure.
func parseBackend(s string) (engine.Backend, error) {
	if s == "" {
		return engine.Auto, nil
	}
	b, err := engine.ParseBackend(s)
	if err != nil {
		return engine.Auto, badRequest("%v", err)
	}
	return b, nil
}

// finite rejects NaN/±Inf. JSON cannot encode them directly, but float
// fields are validated anyway so the decoder stays panic-proof against
// every path that might construct a request programmatically.
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return badRequest("%s must be a finite number", name)
	}
	return nil
}

// writeJSON writes v with the given status. Encoding failures after the
// header is out can only be logged by the caller's middleware.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the stable error shape.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: message}})
}

// writeErr maps an error onto the wire: apiErrors keep their status and
// code, context deadline/cancel map to 503 deadline_exceeded, and
// anything else from the evaluation layers is a client-addressable
// domain error (bad instance, unsupported rule/backend combination) → 400.
func writeErr(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeError(w, ae.status, ae.code, ae.message)
		return
	}
	if isDeadline(err) {
		writeError(w, http.StatusServiceUnavailable, "deadline_exceeded", err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, "bad_request", err.Error())
}

// isDeadline reports whether err is a context deadline or cancellation.
func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
