package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// flushRecorder counts handler flushes, proving the stream pushes each
// chunk onto the wire instead of buffering the whole grid.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// decodeStream splits an NDJSON sweep body into its header, chunk lines
// and optional trailing error line.
func decodeStream(t *testing.T, body []byte) (SweepStreamHeader, []SweepStreamChunk, *errorBody) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	var header SweepStreamHeader
	var chunks []SweepStreamChunk
	var failure *errorBody
	for i := 0; sc.Scan(); i++ {
		line := sc.Bytes()
		if i == 0 {
			if err := json.Unmarshal(line, &header); err != nil {
				t.Fatalf("header line: %v", err)
			}
			continue
		}
		if bytes.Contains(line, []byte(`"error"`)) {
			failure = &errorBody{}
			if err := json.Unmarshal(line, failure); err != nil {
				t.Fatalf("error line: %v", err)
			}
			continue
		}
		var c SweepStreamChunk
		if err := json.Unmarshal(line, &c); err != nil {
			t.Fatalf("chunk line %d: %v", i, err)
		}
		chunks = append(chunks, c)
	}
	return header, chunks, failure
}

// TestSweepStream checks the NDJSON branch agrees bit-for-bit with the
// buffered response: same points in the same order, chunked at the
// requested granularity, with a header announcing the grid's shape.
func TestSweepStream(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	grid := `"n":3,"delta":1,"kind":"threshold","from":0.3,"to":0.7,"points":5,"backend":"exact"`

	plain := postJSON(t, s.Handler(), "/v1/sweep", `{`+grid+`}`)
	if plain.Code != http.StatusOK {
		t.Fatalf("buffered sweep status = %d: %s", plain.Code, plain.Body)
	}
	var want SweepResponse
	if err := json.Unmarshal(plain.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(`{`+grid+`,"stream":true,"chunk_size":2}`))
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("streamed sweep status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	header, chunks, failure := decodeStream(t, rec.Body.Bytes())
	if failure != nil {
		t.Fatalf("unexpected error line: %+v", failure)
	}
	if header.N != 3 || header.Points != 5 || header.Chunk != 2 || header.Kind != "threshold" {
		t.Errorf("header = %+v", header)
	}
	var got []SweepPoint
	for i, c := range chunks {
		if c.Start != len(got) {
			t.Errorf("chunk %d starts at %d, want %d", i, c.Start, len(got))
		}
		got = append(got, c.Points...)
	}
	if len(chunks) != 3 {
		t.Errorf("streamed %d chunks, want 3", len(chunks))
	}
	if len(got) != len(want.Points) {
		t.Fatalf("streamed %d points, want %d", len(got), len(want.Points))
	}
	for i := range got {
		if got[i].Param != want.Points[i].Param || got[i].P != want.Points[i].P || got[i].Backend != want.Points[i].Backend {
			t.Errorf("point %d: streamed %+v, buffered %+v", i, got[i], want.Points[i])
		}
	}
	// Header + one flush per chunk: the client sees results incrementally.
	if rec.flushes < 1+len(chunks) {
		t.Errorf("flushed %d times, want >= %d (header + every chunk)", rec.flushes, 1+len(chunks))
	}
}

// TestSweepStream10k is the acceptance-scale run: a 10k-point grid
// streams chunk by chunk — the first chunk line is flushed onto the wire
// while later shards are still evaluating, and the whole grid arrives.
func TestSweepStream10k(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxPoints: 10_000})
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(
		`{"n":3,"delta":1,"kind":"threshold","from":0.01,"to":0.99,"points":10000,"backend":"exact","stream":true}`))
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	header, chunks, failure := decodeStream(t, rec.Body.Bytes())
	if failure != nil {
		t.Fatalf("unexpected error line: %+v", failure)
	}
	if header.Points != 10_000 || header.Chunk != DefaultSweepChunk {
		t.Errorf("header = %+v", header)
	}
	total := 0
	for _, c := range chunks {
		total += len(c.Points)
	}
	if total != 10_000 {
		t.Errorf("streamed %d points, want 10000", total)
	}
	wantChunks := (10_000 + DefaultSweepChunk - 1) / DefaultSweepChunk
	if len(chunks) != wantChunks {
		t.Errorf("streamed %d chunks, want %d", len(chunks), wantChunks)
	}
	// Every chunk was flushed individually: the first chunk reached the
	// wire ~wantChunks flushes before the sweep finished.
	if rec.flushes < 1+wantChunks {
		t.Errorf("flushed %d times, want >= %d", rec.flushes, 1+wantChunks)
	}
}

// TestSweepStreamDeadline checks the mid-stream failure contract: once
// the header is on the wire a deadline cannot change the status, so the
// stream ends with an {"error": ...} line naming deadline_exceeded.
func TestSweepStreamDeadline(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	body := `{"n":3,"delta":1,"kind":"threshold","from":0.1,"to":0.9,"points":64,"backend":"mc","trials":5000000,"deadline_ms":1,"stream":true,"chunk_size":8}`
	rec := postJSON(t, s.Handler(), "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (the header commits the stream to 200)", rec.Code)
	}
	header, chunks, failure := decodeStream(t, rec.Body.Bytes())
	if failure == nil {
		t.Fatal("expected a trailing error line")
	}
	if failure.Error.Code != "deadline_exceeded" {
		t.Errorf("error code = %q, want deadline_exceeded", failure.Error.Code)
	}
	if got := len(chunks) * header.Chunk; got >= header.Points {
		t.Errorf("stream delivered all %d points despite the deadline", header.Points)
	}
}

// TestSweepStreamChunkEncoderAllocs is the retention guard on the
// steady-state chunk path: encoding chunk after chunk must reuse the
// point buffer, not accumulate the grid. A leak of the engine's reused
// results slice (or an append to a whole-response slice) shows up here
// as per-run allocation growth.
func TestSweepStreamChunkEncoderAllocs(t *testing.T) {
	const chunk = 256
	params := make([]float64, chunk)
	results := make([]engine.Result, chunk)
	for i := range params {
		params[i] = float64(i) / chunk
		results[i] = engine.Result{P: 0.5, Backend: engine.Exact, Cached: true}
	}
	enc := newSweepChunkEncoder(io.Discard, nil, params, chunk)
	if err := enc.emit(0, results); err != nil { // warm the encoder's buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := enc.emit(0, results); err != nil {
			t.Fatal(err)
		}
	})
	// json.Encoder costs a handful of allocations per Encode call; the
	// bound has headroom for that but not for anything per-point.
	if avg > 8 {
		t.Errorf("steady-state chunk emit allocates %.1f per chunk of %d points; the buffer is not being reused", avg, chunk)
	}
}

// TestServeWarmRestart is the serving half of the tentpole contract: a
// server restarted on the same cache directory answers a previously
// computed exact evaluation from disk — cached=true, zero exact backend
// runs — and /readyz reports the inherited disk tier.
func TestServeWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"n":3,"delta":1,"kind":"threshold","param":0.6220355269907728,"backend":"exact"}`

	s1, _ := newServerWithCacheDir(t, dir)
	cold := postJSON(t, s1.Handler(), "/v1/eval", body)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold eval status = %d: %s", cold.Code, cold.Body)
	}
	var coldResp EvalResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &coldResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.Cached {
		t.Error("cold evaluation claims to be cached")
	}

	// "Restart": a new server process over the same directory.
	s2, reg := restartServerOnCacheDir(t, dir)
	warm := postJSON(t, s2.Handler(), "/v1/eval", body)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm eval status = %d: %s", warm.Code, warm.Body)
	}
	var warmResp EvalResponse
	if err := json.Unmarshal(warm.Body.Bytes(), &warmResp); err != nil {
		t.Fatal(err)
	}
	if !warmResp.Cached {
		t.Error("warm-restart evaluation not served as cached")
	}
	if warmResp.P != coldResp.P {
		t.Errorf("P changed across restart: %v vs %v", warmResp.P, coldResp.P)
	}
	if got := reg.Counter("engine.evals.exact").Value(); got != 0 {
		t.Errorf("engine.evals.exact = %d after warm restart, want 0 (warmup canary included)", got)
	}

	rec := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	readyz := rec.Body.String()
	if !strings.HasPrefix(readyz, "ready\n") {
		t.Fatalf("readyz = %q", readyz)
	}
	for _, want := range []string{"store.disk.dir ", "store.disk.entries 2", "store.disk.hits "} {
		if !strings.Contains(readyz, want) {
			t.Errorf("readyz missing %q:\n%s", want, readyz)
		}
	}
}

// newServerWithCacheDir builds a ready server whose private engine sits
// on a disk-tiered store in dir.
func newServerWithCacheDir(t *testing.T, dir string) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := New(Config{Obs: obs.New(reg, nil), CacheDir: dir})
	waitReady(t, s)
	return s, reg
}

// restartServerOnCacheDir is newServerWithCacheDir under a name that
// says what the second call in a test means.
func restartServerOnCacheDir(t *testing.T, dir string) (*Server, *obs.Registry) {
	return newServerWithCacheDir(t, dir)
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(time.Millisecond)
	}
}
