package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// fuzzServer is shared across fuzz iterations: the decoder hardening
// under test is per-request, and a shared server exercises it against a
// warm process exactly as production would.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		// Tiny budgets keep accidental well-formed inputs cheap; the
		// registry makes the http.panics counter real, so the post-request
		// panic check below actually bites.
		o := obs.New(obs.NewRegistry(), nil)
		fuzzSrv = New(Config{Obs: o, Trials: 100, DegradedTrials: 100, MaxN: 8, MaxTrials: 1000, MaxBodyBytes: 4096})
	})
	return fuzzSrv.Handler()
}

// FuzzEvalDecode hammers the /v1/eval decoder with arbitrary bodies. The
// invariant: the handler never panics, never hangs, and every non-2xx
// response carries the stable JSON error shape. Seeds cover the
// documented hostile classes — malformed JSON, unknown fields, NaN/Inf
// spellings, oversized π vectors, absurd numbers, trailing garbage.
func FuzzEvalDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"exact"}`,
		`{"n":3,`,
		`{"n":"three","delta":1}`,
		`{"n":3,"delta":1,"kind":"threshold","param":NaN}`,
		`{"n":3,"delta":1,"kind":"threshold","param":1e309}`,
		`{"n":3,"delta":-1e308,"kind":"threshold","param":0.5}`,
		`{"n":-1,"delta":1,"kind":"threshold","param":0.5}`,
		`{"n":999999999,"delta":1,"kind":"threshold","param":0.5}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5,"trials":-5}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5,"deadline_ms":-1}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5,"unknown":true}`,
		`{"pi":[0.5,0.5,0.5],"delta":1,"kind":"oblivious","param":0.5}`,
		`{"pi":[` + strings.Repeat("1,", 500) + `1],"delta":1,"kind":"threshold","param":0.5}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5}{"n":4}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5}garbage`,
		"\x00\x01\x02",
		`{"n":3,"delta":1,"kind":"","param":0.5}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, "/v1/eval", body)
	})
}

// fuzzPost posts body to path on the shared fuzz server and asserts the
// decoder invariants: no panic, and a stable JSON error shape on every
// non-2xx response.
func fuzzPost(t *testing.T, path, body string) {
	t.Helper()
	h := fuzzHandler()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("non-2xx body is not the stable error shape: %v (%d %q)", err, rec.Code, rec.Body.String())
		}
		if eb.Error.Code == "" || eb.Error.Message == "" {
			t.Fatalf("error body missing code/message: %q", rec.Body.String())
		}
	}
	// The middleware converts handler panics into 500s; any panic on
	// this path is a decoder bug the fuzzer must surface.
	if got := fuzzSrv.obs.Counter("http.panics").Value(); got != 0 {
		t.Fatalf("handler panicked on body %q", body)
	}
}

// FuzzOptimizeDecode hammers the /v1/optimize decoder with arbitrary
// bodies, mirroring FuzzEvalDecode. Seeds add the optimize-specific
// surface: search knobs (grid_points, passes, tol), the vector kind with
// hostile π vectors, and deadline abuse.
func FuzzOptimizeDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`{"n":3,"delta":1,"kind":"threshold"}`,
		`{"n":3,"delta":1,"kind":"threshold","backend":"exact","grid_points":11,"tol":0.001}`,
		`{"pi":[0.5,1,1],"delta":1,"kind":"vector","passes":2,"tol":0.01}`,
		`{"n":3,"delta":1,"kind":"bogus"}`,
		`{"n":3,"delta":1}`,
		`{"n":3,"delta":1,"kind":"threshold","grid_points":-1}`,
		`{"n":3,"delta":1,"kind":"threshold","grid_points":999999999}`,
		`{"n":3,"delta":1,"kind":"vector","passes":-7}`,
		`{"n":3,"delta":1,"kind":"threshold","tol":-0.5}`,
		`{"n":3,"delta":1,"kind":"threshold","tol":1e309}`,
		`{"n":3,"delta":1,"kind":"threshold","tol":NaN}`,
		`{"n":-1,"delta":1,"kind":"vector"}`,
		`{"n":999999999,"delta":1,"kind":"vector"}`,
		`{"pi":[` + strings.Repeat("1,", 500) + `1],"delta":1,"kind":"vector"}`,
		`{"pi":[-1,2,1e308],"delta":1,"kind":"vector"}`,
		`{"n":3,"delta":-1e308,"kind":"oblivious"}`,
		`{"n":3,"delta":1,"kind":"threshold","deadline_ms":-1}`,
		`{"n":3,"delta":1,"kind":"threshold","trials":-5}`,
		`{"n":3,"delta":1,"kind":"threshold","unknown":true}`,
		`{"n":3,`,
		`{"n":3,"delta":1,"kind":"threshold"}garbage`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		fuzzPost(t, "/v1/optimize", body)
	})
}
