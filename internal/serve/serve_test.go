package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// newTestServer builds a server with an observer (registry + in-memory
// sink) sized for tests.
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Observer, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
	cfg.Obs = o
	if cfg.Engine == nil {
		cfg.Engine = engine.New(engine.Config{Obs: o})
	}
	return New(cfg), o, &buf
}

// postJSON posts body to path on h and returns the recorder.
func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestHealthzGolden pins the /healthz reply byte-for-byte.
func TestHealthzGolden(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	checkGolden(t, "healthz.golden", rec.Body.Bytes())
}

// TestEvalCanonicalGolden pins the canonical exact evaluation — the
// pinned optimum of the n=3, δ=1 case (Section 5.2.1) — byte-for-byte,
// so the response encoding (field set, order, float formatting) cannot
// drift silently.
func TestEvalCanonicalGolden(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/eval",
		`{"n":3,"delta":1,"kind":"threshold","param":0.6220355269907728,"backend":"exact"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	checkGolden(t, "eval_canonical.golden", rec.Body.Bytes())

	var resp EvalResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := 0.5446311396758939; resp.P != want {
		t.Errorf("P = %v, want pinned optimum %v", resp.P, want)
	}
	if resp.Backend != "exact" || resp.Cached || resp.Degraded {
		t.Errorf("unexpected response flags: %+v", resp)
	}
}

// TestEvalMonteCarlo checks the mc backend surfaces trials and a
// standard error, and that a repeated request is served from the cache.
func TestEvalMonteCarlo(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	body := `{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"mc","trials":10000,"seed":7}`
	rec := postJSON(t, s.Handler(), "/v1/eval", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp EvalResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Backend != "mc" || resp.Trials != 10000 || resp.StdErr <= 0 {
		t.Errorf("unexpected mc response: %+v", resp)
	}
	if resp.P <= 0 || resp.P >= 1 {
		t.Errorf("P = %v out of (0,1)", resp.P)
	}

	rec = postJSON(t, s.Handler(), "/v1/eval", body)
	var again EvalResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeated request should be served from the cache")
	}
	if again.P != resp.P {
		t.Errorf("cached P = %v differs from first %v", again.P, resp.P)
	}
}

// TestEvalQMC drives /v1/eval on the mc-qmc backend end to end: the
// response carries the replicate count and a replicate-based stderr, a
// worker-count change is a cache hit (QMC results are worker-
// independent), and invalid replicate counts are 400s.
func TestEvalQMC(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	body := `{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"mc-qmc","trials":16384,"seed":7,"replicates":8}`
	rec := postJSON(t, s.Handler(), "/v1/eval", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp EvalResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Backend != "mc-qmc" || resp.Replicates != 8 || resp.StdErr <= 0 {
		t.Errorf("unexpected mc-qmc response: %+v", resp)
	}
	if resp.Trials != 16384 {
		t.Errorf("Trials = %d, want 16384 (replicates divide the budget evenly)", resp.Trials)
	}
	if resp.P <= 0 || resp.P >= 1 {
		t.Errorf("P = %v out of (0,1)", resp.P)
	}

	other := `{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"mc-qmc","trials":16384,"seed":7,"replicates":8,"workers":4}`
	rec = postJSON(t, s.Handler(), "/v1/eval", other)
	var again EvalResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("worker-count change should hit the worker-independent qmc cache slot")
	}
	if again.P != resp.P || again.StdErr != resp.StdErr {
		t.Errorf("cached response %+v differs from first %+v", again, resp)
	}

	for _, bad := range []string{
		`{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"mc-qmc","replicates":-1}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"mc-qmc","trials":100,"replicates":200}`,
		`{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"mc-qmc","trials":1000,"replicates":1}`,
	} {
		rec := postJSON(t, s.Handler(), "/v1/eval", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status = %d, want 400 (%s)", bad, rec.Code, rec.Body.String())
		}
	}
}

// TestEvalErrors checks the stable error shape across rejection paths.
func TestEvalErrors(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxBodyBytes: 256})
	cases := []struct {
		name   string
		method string
		body   string
		status int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"malformed", http.MethodPost, `{"n":3,`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"n":3,"delta":1,"kind":"threshold","param":0.5,"bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, `{"n":3,"delta":1,"kind":"threshold","param":0.5} extra`, http.StatusBadRequest},
		{"missing kind", http.MethodPost, `{"n":3,"delta":1,"param":0.5}`, http.StatusBadRequest},
		{"bad kind", http.MethodPost, `{"n":3,"delta":1,"kind":"psychic","param":0.5}`, http.StatusBadRequest},
		{"n too large", http.MethodPost, `{"n":1000,"delta":1,"kind":"threshold","param":0.5}`, http.StatusBadRequest},
		{"bad delta", http.MethodPost, `{"n":3,"delta":-1,"kind":"threshold","param":0.5}`, http.StatusBadRequest},
		{"bad backend", http.MethodPost, `{"n":3,"delta":1,"kind":"threshold","param":0.5,"backend":"quantum"}`, http.StatusBadRequest},
		{"oversized", http.MethodPost, `{"pi":[` + strings.Repeat("0.5,", 200) + `0.5]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, "/v1/eval", strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body.String())
			}
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body is not the stable shape: %v (%s)", err, rec.Body.String())
			}
			if eb.Error.Code == "" || eb.Error.Message == "" {
				t.Errorf("error body missing code/message: %s", rec.Body.String())
			}
		})
	}
}

// TestSweep checks a linear grid sweep and its cache behavior.
func TestSweep(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	body := `{"n":3,"delta":1,"kind":"threshold","from":0.2,"to":0.8,"points":4,"backend":"exact"}`
	rec := postJSON(t, s.Handler(), "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(resp.Points))
	}
	if resp.Points[0].Param != 0.2 || resp.Points[3].Param != 0.8 {
		t.Errorf("grid endpoints = %v, %v, want 0.2, 0.8", resp.Points[0].Param, resp.Points[3].Param)
	}
	for _, p := range resp.Points {
		if p.P <= 0 || p.P >= 1 || p.Backend != "exact" {
			t.Errorf("suspect point %+v", p)
		}
	}

	rec = postJSON(t, s.Handler(), "/v1/sweep", body)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, p := range resp.Points {
		if !p.Cached {
			t.Errorf("repeated sweep point %v not cached", p.Param)
		}
	}
}

// TestTable checks /v1/table renders a harness table through the shared
// engine, and rejects figure ids.
func TestTable(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/table", `{"id":"case-n3"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp TableResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "T2" || !strings.Contains(resp.Text, "0.622") {
		t.Errorf("unexpected table response: id=%s text=%q", resp.ID, resp.Text)
	}

	rec = postJSON(t, s.Handler(), "/v1/table", `{"id":"F1"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("figure id status = %d, want 400", rec.Code)
	}
	rec = postJSON(t, s.Handler(), "/v1/table", `{"id":"T99"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown id status = %d, want 400", rec.Code)
	}
}

// TestReadyz checks the readiness probe flips to 200 once the warmup
// canary completes.
func TestReadyz(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	deadline := time.Now().Add(5 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ready\n" {
		t.Errorf("readyz = %d %q, want 200 %q", rec.Code, rec.Body.String(), "ready\n")
	}
}

// TestRequestIDs checks every response carries a distinct X-Request-Id.
func TestRequestIDs(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		id := rec.Header().Get("X-Request-Id")
		if id == "" {
			t.Fatal("missing X-Request-Id")
		}
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
}

// TestMetricsEndpoint drives traffic and checks /metrics exposes the
// acceptance-criteria families in valid Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	postJSON(t, s.Handler(), "/v1/eval", `{"n":3,"delta":1,"kind":"threshold","param":0.37,"backend":"exact"}`)
	postJSON(t, s.Handler(), "/v1/eval", `{"n":3,"delta":1,"kind":"threshold","param":0.37,"backend":"exact"}`)
	postJSON(t, s.Handler(), "/v1/eval", `{"bad`)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP http_requests_total HTTP requests served, all endpoints.",
		"# TYPE http_requests_total counter",
		"http_requests_total 3",
		"http_requests_eval_2xx 2",
		"http_requests_eval_4xx 1",
		"# TYPE http_latency_eval histogram",
		`http_latency_eval_bucket{le="+Inf"} 3`,
		"http_latency_eval_count 3",
		"http_inflight 0",
		"engine_cache_hits 1",
		"engine_cache_misses",
		"runtime_goroutines",
		"runtime_heap_alloc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestSpanTree checks the full request trace: one request produces a
// http.eval → engine.evaluate → backend.exact span tree under a single
// request id, plus one access event, and the whole log replays through
// obs.Summarize (the `nocomm metrics` path) without error.
func TestSpanTree(t *testing.T) {
	s, _, buf := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/eval", `{"n":3,"delta":1,"kind":"threshold","param":0.37,"backend":"exact"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	reqID := rec.Header().Get("X-Request-Id")

	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	starts := map[string]obs.Event{}
	var access *obs.Event
	for i, ev := range events {
		switch ev.Type {
		case obs.EventSpanStart:
			starts[ev.Name] = ev
		case obs.EventAccess:
			access = &events[i]
		}
	}
	root, ok := starts["http.eval"]
	if !ok {
		t.Fatal("no http.eval span")
	}
	eng, ok := starts["engine.evaluate"]
	if !ok {
		t.Fatal("no engine.evaluate span")
	}
	backend, ok := starts["backend.exact"]
	if !ok {
		t.Fatal("no backend.exact span")
	}
	if eng.Parent != root.Span {
		t.Errorf("engine.evaluate parent = %d, want http.eval span %d", eng.Parent, root.Span)
	}
	if backend.Parent != eng.Span {
		t.Errorf("backend.exact parent = %d, want engine.evaluate span %d", backend.Parent, eng.Span)
	}
	if access == nil {
		t.Fatal("no access event")
	}
	if access.Fields["id"] != reqID {
		t.Errorf("access event id = %q, want %q", access.Fields["id"], reqID)
	}
	if access.Attrs["status"] != 200 {
		t.Errorf("access status = %v, want 200", access.Attrs["status"])
	}
	var endFields map[string]string
	for _, ev := range events {
		if ev.Type == obs.EventSpanEnd && ev.Name == "http.eval" {
			endFields = ev.Fields
		}
	}
	if endFields["request_id"] != reqID {
		t.Errorf("http.eval span_end request_id = %q, want %q", endFields["request_id"], reqID)
	}

	if sum := obs.Summarize(events); sum == nil || len(sum.Spans) == 0 {
		t.Error("replay through Summarize produced no span summary")
	}
}

// slowExact is an exact-evaluable rule whose oracle blocks until
// released, driving the degradation path deterministically.
type slowExact struct {
	release chan struct{}
}

func (r *slowExact) Name() string        { return "slow" }
func (r *slowExact) Fingerprint() string { return "serve-slow-exact" }
func (r *slowExact) System(inst engine.Instance) (*model.System, error) {
	// Degraded fallbacks simulate through the rule's system: play the
	// β=0.5 threshold game so the Monte-Carlo estimate is meaningful.
	return engine.SymmetricThreshold{Beta: 0.5}.System(inst)
}
func (r *slowExact) ExactWinProbability(engine.Instance) (float64, error) {
	<-r.release
	return 0.25, nil
}

// TestDegradation checks the deadline fallback: an exact evaluation that
// misses its budget is answered by a sampled estimate — quasi-Monte-Carlo
// first, since its replicate error is tighter at the degraded budget —
// the serve.degraded counter bumps, and the request span carries
// degraded=1.
func TestDegradation(t *testing.T) {
	s, o, buf := newTestServer(t, Config{DegradedTrials: 5000})
	rule := &slowExact{release: make(chan struct{})}
	defer close(rule.release)
	inst, err := problem.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}

	sp, ctx := o.StartSpanCtx(context.Background(), "http.eval")
	simCfg := sim.Config{Trials: 5000, Seed: 1, Obs: o}
	res, degraded, err := s.evaluateOne(ctx, inst, rule, engine.Exact, simCfg, 20*time.Millisecond)
	sp.End()
	if err != nil {
		t.Fatalf("degraded evaluation failed: %v", err)
	}
	if !degraded {
		t.Fatal("evaluation should have degraded")
	}
	if res.Backend != engine.MonteCarloQMC || res.Sim == nil {
		t.Errorf("degraded result should be quasi-Monte-Carlo: %+v", res)
	}
	if res.Sim != nil && res.Sim.Replicates == 0 {
		t.Errorf("degraded QMC result reports no replicates: %+v", res.Sim)
	}
	if res.P <= 0.4 || res.P >= 0.7 {
		t.Errorf("degraded P = %v implausible for β=0.5, n=3, δ=1", res.P)
	}
	if got := o.Counter("serve.degraded").Value(); got != 1 {
		t.Errorf("serve.degraded = %d, want 1", got)
	}
	if got := o.Counter("engine.evals.abandoned").Value(); got != 1 {
		t.Errorf("engine.evals.abandoned = %d, want 1", got)
	}

	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sawDegraded bool
	for _, ev := range events {
		if ev.Type == obs.EventSpanEnd && ev.Name == "http.eval" && ev.Attrs["degraded"] == 1 {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Error("http.eval span_end missing degraded=1 attribute")
	}
}

// slowExactSimulator is slowExact for a rule that also carries a bespoke
// simulator: mc-qmc refuses such rules, so its degraded request must fall
// through to the plain Monte-Carlo estimator.
type slowExactSimulator struct{ slowExact }

func (r *slowExactSimulator) Simulate(inst engine.Instance, cfg sim.Config) (sim.Result, error) {
	sys, err := r.System(inst)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.WinProbability(sys, cfg)
}

// TestDegradationFallsBackToMC: when the preferred mc-qmc degraded path
// is unavailable (Simulator-only rule), degradation still answers with a
// plain Monte-Carlo estimate.
func TestDegradationFallsBackToMC(t *testing.T) {
	s, o, _ := newTestServer(t, Config{DegradedTrials: 5000})
	rule := &slowExactSimulator{slowExact{release: make(chan struct{})}}
	defer close(rule.release)
	inst, err := problem.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, degraded, err := s.evaluateOne(context.Background(), inst, rule, engine.Exact,
		sim.Config{Trials: 5000, Seed: 1, Obs: o}, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("degraded evaluation failed: %v", err)
	}
	if !degraded {
		t.Fatal("evaluation should have degraded")
	}
	if res.Backend != engine.MonteCarlo || res.Sim == nil {
		t.Errorf("degraded result should be plain Monte-Carlo: %+v", res)
	}
	if res.P <= 0.4 || res.P >= 0.7 {
		t.Errorf("degraded P = %v implausible for β=0.5, n=3, δ=1", res.P)
	}
}

// TestMonteCarloNoDegrade checks that a request already on the mc
// backend reports the deadline instead of degrading onto itself.
func TestMonteCarloNoDegrade(t *testing.T) {
	s, o, _ := newTestServer(t, Config{})
	inst, err := problem.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, degraded, err := s.evaluateOne(ctx, inst, engine.SymmetricThreshold{Beta: 0.5}, engine.MonteCarlo, sim.Config{Trials: 1000, Seed: 1}, time.Millisecond)
	if err == nil || degraded {
		t.Errorf("cancelled mc evaluation: err=%v degraded=%v, want error and no degradation", err, degraded)
	}
	if got := o.Counter("serve.degraded").Value(); got != 0 {
		t.Errorf("serve.degraded = %d, want 0", got)
	}
}

// TestPprofGate checks the profiler mount is opt-in.
func TestPprofGate(t *testing.T) {
	off, _, _ := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof without flag: status = %d, want 404", rec.Code)
	}

	on, _, _ := newTestServer(t, Config{EnablePprof: true})
	rec = httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof with flag: status = %d, want 200", rec.Code)
	}
}
