package plot

import (
	"math"
	"strings"
	"testing"
)

func sine(n int) Series {
	s := Series{Name: "sin"}
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		s.X = append(s.X, x)
		s.Y = append(s.Y, math.Sin(2*math.Pi*x))
	}
	return s
}

func TestASCIIBasics(t *testing.T) {
	out, err := ASCII([]Series{sine(50)}, Options{
		Title: "sine", XLabel: "x", YLabel: "y", Width: 60, Height: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sine") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing data marks")
	}
	if !strings.Contains(out, "sin") {
		t.Error("missing legend")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 17 {
		t.Errorf("chart has %d lines, expected at least height+2", len(lines))
	}
}

func TestASCIIMultiSeriesMarks(t *testing.T) {
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out, err := ASCII([]Series{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("expected distinct marks for two series")
	}
}

func TestASCIIValidation(t *testing.T) {
	if _, err := ASCII(nil, Options{}); err == nil {
		t.Error("no series: expected error")
	}
	if _, err := ASCII([]Series{{Name: "bad", X: []float64{1}, Y: nil}}, Options{}); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := ASCII([]Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}, Options{}); err == nil {
		t.Error("NaN: expected error")
	}
	if _, err := ASCII([]Series{sine(5)}, Options{Width: 5, Height: 2}); err == nil {
		t.Error("tiny area: expected error")
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	s := Series{Name: "const", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}}
	out, err := ASCII([]Series{s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("constant series should still draw marks")
	}
}

func TestSVGWellFormed(t *testing.T) {
	out, err := SVG([]Series{sine(50)}, Options{
		Title: "sine & cosine", XLabel: "x", YLabel: "amplitude",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "<polyline", "sine &amp; cosine", "amplitude"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 1 {
		t.Errorf("expected exactly 1 polyline, got %d", strings.Count(out, "<polyline"))
	}
}

func TestSVGMultipleSeriesDistinctColors(t *testing.T) {
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out, err := SVG([]Series{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, svgColors[0]) || !strings.Contains(out, svgColors[1]) {
		t.Error("expected two distinct stroke colors")
	}
}

func TestSVGValidation(t *testing.T) {
	if _, err := SVG(nil, Options{}); err == nil {
		t.Error("no series: expected error")
	}
	if _, err := SVG([]Series{sine(5)}, Options{Width: 50, Height: 50}); err == nil {
		t.Error("tiny area: expected error")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("xmlEscape = %q", got)
	}
}
