// Package plot renders line charts as ASCII (for terminals) and SVG (for
// files) using only the standard library. It exists to regenerate the
// paper's two figures; the harness package feeds it winning-probability
// series.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line: y[i] plotted against x[i].
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the coordinates; they must have equal non-zero length.
	X, Y []float64
}

func (s Series) validate() error {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x and %d y points", s.Name, len(s.X), len(s.Y))
	}
	for i := range s.X {
		if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
			return fmt.Errorf("plot: series %q has NaN at index %d", s.Name, i)
		}
	}
	return nil
}

// Options configures a chart.
type Options struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plot-area dimensions: characters for
	// ASCII, pixels for SVG. Zero selects defaults (72×20 ASCII,
	// 720×420 SVG).
	Width, Height int
}

func bounds(series []Series) (xmin, xmax, ymin, ymax float64, err error) {
	if len(series) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("plot: no series")
	}
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		if err := s.validate(); err != nil {
			return 0, 0, 0, 0, err
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, nil
}

var asciiMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// ASCII renders the series as a monospaced line chart with axes, ticks
// and a legend.
func ASCII(series []Series, opt Options) (string, error) {
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	if width < 16 || height < 4 {
		return "", fmt.Errorf("plot: ASCII chart area %dx%d too small", width, height)
	}
	xmin, xmax, ymin, ymax, err := bounds(series)
	if err != nil {
		return "", err
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := asciiMarks[si%len(asciiMarks)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = mark
			}
		}
	}
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yLab := fmt.Sprintf("%s ", opt.YLabel)
	pad := strings.Repeat(" ", len(yLab))
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%s%8.4f |%s\n", pad, ymax, string(row))
		case height - 1:
			fmt.Fprintf(&b, "%s%8.4f |%s\n", pad, ymin, string(row))
		case height / 2:
			lbl := opt.YLabel
			if len(lbl) > len(pad) {
				lbl = lbl[:len(pad)]
			}
			fmt.Fprintf(&b, "%-*s%8s |%s\n", len(pad), lbl, "", string(row))
		default:
			fmt.Fprintf(&b, "%s%8s |%s\n", pad, "", string(row))
		}
	}
	fmt.Fprintf(&b, "%s%8s +%s\n", pad, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s%8s  %-10.4f%*s%10.4f  %s\n", pad, "", xmin, width-22, "", xmax, opt.XLabel)
	for si, s := range series {
		fmt.Fprintf(&b, "%s%8s  %c %s\n", pad, "", asciiMarks[si%len(asciiMarks)], s.Name)
	}
	return b.String(), nil
}

var svgColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// SVG renders the series as a standalone SVG document.
func SVG(series []Series, opt Options) (string, error) {
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 420
	}
	if width < 100 || height < 80 {
		return "", fmt.Errorf("plot: SVG area %dx%d too small", width, height)
	}
	xmin, xmax, ymin, ymax, err := bounds(series)
	if err != nil {
		return "", err
	}
	const marginL, marginR, marginT, marginB = 64, 24, 36, 48
	pw := float64(width - marginL - marginR)
	ph := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*pw }
	py := func(y float64) float64 { return float64(marginT) + ph - (y-ymin)/(ymax-ymin)*ph }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			width/2, xmlEscape(opt.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	// Ticks: 5 on each axis.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%.3g</text>`+"\n",
			px(fx), height-marginB+16, fx)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%.3g</text>`+"\n",
			marginL-6, py(fy)+4, fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			px(fx), marginT, px(fx), height-marginB)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py(fy), width-marginR, py(fy))
	}
	if opt.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			width/2, height-10, xmlEscape(opt.XLabel))
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			height/2, height/2, xmlEscape(opt.YLabel))
	}
	for si, s := range series {
		color := svgColors[si%len(svgColors)]
		var pts strings.Builder
		for i := range s.X {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.2f,%.2f", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, pts.String())
		// Legend entry.
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			width-marginR-130, ly, width-marginR-110, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR-104, ly+4, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
