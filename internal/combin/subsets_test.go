package combin

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestForEachSubsetCountsAndOrder(t *testing.T) {
	for n := 0; n <= 10; n++ {
		var masks []uint64
		err := ForEachSubset(n, func(mask uint64) bool {
			masks = append(masks, mask)
			return true
		})
		if err != nil {
			t.Fatalf("ForEachSubset(%d): %v", n, err)
		}
		if len(masks) != 1<<n {
			t.Fatalf("ForEachSubset(%d) visited %d subsets, want %d", n, len(masks), 1<<n)
		}
		for i, m := range masks {
			if m != uint64(i) {
				t.Fatalf("ForEachSubset(%d) visit %d = %d, want increasing mask order", n, i, m)
			}
		}
	}
}

func TestForEachSubsetEarlyStop(t *testing.T) {
	count := 0
	err := ForEachSubset(10, func(mask uint64) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop visited %d subsets, want 5", count)
	}
}

func TestForEachSubsetRangeErrors(t *testing.T) {
	if err := ForEachSubset(-1, func(uint64) bool { return true }); err == nil {
		t.Error("ForEachSubset(-1): expected error")
	}
	if err := ForEachSubset(MaxSubsetGround+1, func(uint64) bool { return true }); err == nil {
		t.Error("ForEachSubset(63): expected error")
	}
}

func TestForEachSubsetGrayAdjacency(t *testing.T) {
	for n := 0; n <= 12; n++ {
		seen := make(map[uint64]bool)
		var prev uint64
		first := true
		err := ForEachSubsetGray(n, func(mask uint64, flipped int, added bool) bool {
			if seen[mask] {
				t.Fatalf("n=%d: mask %b visited twice", n, mask)
			}
			seen[mask] = true
			if first {
				if mask != 0 || flipped != -1 {
					t.Fatalf("n=%d: first visit (mask=%b flipped=%d), want empty set with flipped=-1", n, mask, flipped)
				}
				first = false
			} else {
				diff := mask ^ prev
				if bits.OnesCount64(diff) != 1 {
					t.Fatalf("n=%d: consecutive masks %b -> %b differ in %d bits", n, prev, mask, bits.OnesCount64(diff))
				}
				if flipped != bits.TrailingZeros64(diff) {
					t.Fatalf("n=%d: reported flip %d, actual %d", n, flipped, bits.TrailingZeros64(diff))
				}
				if added != (mask&diff != 0) {
					t.Fatalf("n=%d: reported added=%v disagrees with masks", n, added)
				}
			}
			prev = mask
			return true
		})
		if err != nil {
			t.Fatalf("ForEachSubsetGray(%d): %v", n, err)
		}
		if len(seen) != 1<<n {
			t.Fatalf("ForEachSubsetGray(%d) visited %d subsets, want %d", n, len(seen), 1<<n)
		}
	}
}

func TestForEachSubsetGrayEarlyStopAndErrors(t *testing.T) {
	count := 0
	if err := ForEachSubsetGray(8, func(uint64, int, bool) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("gray early stop visited %d, want 3", count)
	}
	if err := ForEachSubsetGray(-1, func(uint64, int, bool) bool { return true }); err == nil {
		t.Error("ForEachSubsetGray(-1): expected error")
	}
}

func TestForEachKSubsetEnumeration(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n+1; k++ {
			var visited [][]int
			err := ForEachKSubset(n, k, func(idx []int) bool {
				cp := make([]int, len(idx))
				copy(cp, idx)
				visited = append(visited, cp)
				return true
			})
			if err != nil {
				t.Fatalf("ForEachKSubset(%d, %d): %v", n, k, err)
			}
			want := int64(0)
			if k <= n {
				want = MustBinomial(n, k)
			}
			if int64(len(visited)) != want {
				t.Fatalf("ForEachKSubset(%d, %d) visited %d, want %d", n, k, len(visited), want)
			}
			for i, s := range visited {
				for j := 1; j < len(s); j++ {
					if s[j] <= s[j-1] {
						t.Fatalf("subset %v not strictly increasing", s)
					}
				}
				if len(s) > 0 && (s[0] < 0 || s[len(s)-1] >= n) {
					t.Fatalf("subset %v out of range [0, %d)", s, n)
				}
				if i > 0 && !lexLess(visited[i-1], s) {
					t.Fatalf("subsets %v, %v not in lexicographic order", visited[i-1], s)
				}
			}
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestForEachKSubsetErrorsAndEarlyStop(t *testing.T) {
	if err := ForEachKSubset(-1, 2, func([]int) bool { return true }); err == nil {
		t.Error("ForEachKSubset(-1, 2): expected error")
	}
	if err := ForEachKSubset(3, -1, func([]int) bool { return true }); err == nil {
		t.Error("ForEachKSubset(3, -1): expected error")
	}
	count := 0
	if err := ForEachKSubset(6, 3, func([]int) bool { count++; return false }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("early stop visited %d, want 1", count)
	}
}

func TestForEachKSubsetMaskMatchesSliceVersion(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			want := make(map[uint64]bool)
			if err := ForEachKSubset(n, k, func(idx []int) bool {
				var m uint64
				for _, i := range idx {
					m |= 1 << uint(i)
				}
				want[m] = true
				return true
			}); err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]bool)
			if err := ForEachKSubsetMask(n, k, func(mask uint64) bool {
				if bits.OnesCount64(mask) != k {
					t.Fatalf("mask %b has popcount %d, want %d", mask, bits.OnesCount64(mask), k)
				}
				got[mask] = true
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: mask version visited %d, slice version %d", n, k, len(got), len(want))
			}
			for m := range want {
				if !got[m] {
					t.Fatalf("n=%d k=%d: mask %b missing from mask enumeration", n, k, m)
				}
			}
		}
	}
}

func TestForEachKSubsetMaskErrors(t *testing.T) {
	if err := ForEachKSubsetMask(63, 2, func(uint64) bool { return true }); err == nil {
		t.Error("ForEachKSubsetMask(63, 2): expected range error")
	}
	if err := ForEachKSubsetMask(5, -1, func(uint64) bool { return true }); err == nil {
		t.Error("ForEachKSubsetMask(5, -1): expected error")
	}
}

func TestMaskIndicesAndSum(t *testing.T) {
	idx := MaskIndices(0b10110, nil)
	want := []int{1, 2, 4}
	if len(idx) != len(want) {
		t.Fatalf("MaskIndices = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("MaskIndices = %v, want %v", idx, want)
		}
	}
	vals := []float64{0.5, 1.5, 2.5, 3.5, 4.5}
	if got := MaskSum(0b10110, vals); got != 1.5+2.5+4.5 {
		t.Errorf("MaskSum = %g, want %g", got, 1.5+2.5+4.5)
	}
	if got := MaskSum(0, vals); got != 0 {
		t.Errorf("MaskSum(empty) = %g, want 0", got)
	}
}

func TestMaskSumMatchesIndicesProperty(t *testing.T) {
	vals := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	f := func(m uint8) bool {
		mask := uint64(m)
		var s float64
		for _, i := range MaskIndices(mask, nil) {
			s += vals[i]
		}
		return s == MaskSum(mask, vals) && s == float64(mask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForEachCompositionEnumeration(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for k := 1; k <= 5; k++ {
			count := 0
			seen := make(map[string]bool)
			err := ForEachComposition(n, k, func(parts []int) bool {
				if len(parts) != k {
					t.Fatalf("composition %v has %d parts, want %d", parts, len(parts), k)
				}
				sum := 0
				key := ""
				for _, p := range parts {
					if p < 0 {
						t.Fatalf("negative part in %v", parts)
					}
					sum += p
					key += string(rune('a'+p)) + ","
				}
				if sum != n {
					t.Fatalf("composition %v sums to %d, want %d", parts, sum, n)
				}
				if seen[key] {
					t.Fatalf("composition %v visited twice", parts)
				}
				seen[key] = true
				count++
				return true
			})
			if err != nil {
				t.Fatalf("ForEachComposition(%d, %d): %v", n, k, err)
			}
			want := MustBinomial(n+k-1, k-1)
			if int64(count) != want {
				t.Fatalf("ForEachComposition(%d, %d) visited %d, want %d", n, k, count, want)
			}
		}
	}
}

func TestForEachCompositionEdgeCases(t *testing.T) {
	// k = 0: exactly one (empty) composition when n = 0, none otherwise.
	calls := 0
	if err := ForEachComposition(0, 0, func([]int) bool { calls++; return true }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("ForEachComposition(0, 0) visited %d, want 1", calls)
	}
	calls = 0
	if err := ForEachComposition(3, 0, func([]int) bool { calls++; return true }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("ForEachComposition(3, 0) visited %d, want 0", calls)
	}
	if err := ForEachComposition(-1, 2, func([]int) bool { return true }); err == nil {
		t.Error("ForEachComposition(-1, 2): expected error")
	}
}

func TestPopcount(t *testing.T) {
	if Popcount(0) != 0 || Popcount(0b1011) != 3 || Popcount(^uint64(0)) != 64 {
		t.Error("Popcount returned wrong values")
	}
}
