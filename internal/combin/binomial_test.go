package combin

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestBinomialSmallTable(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{4, 2, 6},
		{5, 2, 10},
		{10, 3, 120},
		{10, 7, 120},
		{20, 10, 184756},
		{52, 5, 2598960},
		{61, 30, 232714176627630544},
		{3, 5, 0},
		{0, 1, 0},
	}
	for _, c := range cases {
		got, err := Binomial(c.n, c.k)
		if err != nil {
			t.Fatalf("Binomial(%d, %d): %v", c.n, c.k, err)
		}
		if got != c.want {
			t.Errorf("Binomial(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialNegativeArgs(t *testing.T) {
	if _, err := Binomial(-1, 0); err == nil {
		t.Error("Binomial(-1, 0): expected error")
	}
	if _, err := Binomial(3, -2); err == nil {
		t.Error("Binomial(3, -2): expected error")
	}
}

func TestBinomialOverflow(t *testing.T) {
	if _, err := Binomial(200, 100); err == nil {
		t.Error("Binomial(200, 100): expected overflow error")
	}
	// C(66, 33) > int64 max; C(61, 30) fits.
	if _, err := Binomial(66, 33); err == nil {
		t.Error("Binomial(66, 33): expected overflow error")
	}
	if _, err := Binomial(61, 30); err != nil {
		t.Errorf("Binomial(61, 30): unexpected error %v", err)
	}
}

func TestBinomialPascalIdentityProperty(t *testing.T) {
	// Property: C(n, k) = C(n-1, k-1) + C(n-1, k) on the int64-safe range.
	f := func(a, b uint8) bool {
		n := 1 + int(a%50)
		k := 1 + int(b%50)
		if k > n {
			n, k = k, n
		}
		return MustBinomial(n, k) == MustBinomial(n-1, k-1)+MustBinomial(n-1, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		n := int(a % 55)
		k := int(b % 56)
		if k > n {
			return true
		}
		return MustBinomial(n, k) == MustBinomial(n, n-k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialBigAgainstInt64(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			b, err := BinomialBig(n, k)
			if err != nil {
				t.Fatalf("BinomialBig(%d, %d): %v", n, k, err)
			}
			want, err := Binomial(n, k)
			if err != nil {
				continue // overflow cases exercised elsewhere
			}
			if !b.IsInt64() || b.Int64() != want {
				t.Errorf("BinomialBig(%d, %d) = %v, want %d", n, k, b, want)
			}
		}
	}
}

func TestBinomialBigRowSums(t *testing.T) {
	// Σ_k C(n, k) = 2^n, exactly, for large n beyond int64.
	for _, n := range []int{70, 100} {
		sum := new(big.Int)
		for k := 0; k <= n; k++ {
			c, err := BinomialBig(n, k)
			if err != nil {
				t.Fatalf("BinomialBig(%d, %d): %v", n, k, err)
			}
			sum.Add(sum, c)
		}
		want := new(big.Int).Lsh(big.NewInt(1), uint(n))
		if sum.Cmp(want) != 0 {
			t.Errorf("row %d sums to %v, want 2^%d", n, sum, n)
		}
	}
}

func TestBinomialBigKGreaterThanN(t *testing.T) {
	b, err := BinomialBig(3, 7)
	if err != nil {
		t.Fatalf("BinomialBig(3, 7): %v", err)
	}
	if b.Sign() != 0 {
		t.Errorf("BinomialBig(3, 7) = %v, want 0", b)
	}
}

func TestBinomialBigNegative(t *testing.T) {
	if _, err := BinomialBig(-2, 1); err == nil {
		t.Error("BinomialBig(-2, 1): expected error")
	}
}

func TestBinomialFloatExactRange(t *testing.T) {
	for n := 0; n <= 30; n++ {
		for k := 0; k <= n; k++ {
			got, err := BinomialFloat(n, k)
			if err != nil {
				t.Fatalf("BinomialFloat(%d, %d): %v", n, k, err)
			}
			if got != float64(MustBinomial(n, k)) {
				t.Errorf("BinomialFloat(%d, %d) = %g, want %d exactly", n, k, got, MustBinomial(n, k))
			}
		}
	}
}

func TestBinomialFloatZeroAndErrors(t *testing.T) {
	if got, err := BinomialFloat(4, 9); err != nil || got != 0 {
		t.Errorf("BinomialFloat(4, 9) = %g, %v; want 0, nil", got, err)
	}
	if _, err := BinomialFloat(-1, 1); err == nil {
		t.Error("BinomialFloat(-1, 1): expected error")
	}
}

func TestPascalRowMatchesBinomial(t *testing.T) {
	for n := 0; n <= 40; n++ {
		row, err := PascalRow(n)
		if err != nil {
			t.Fatalf("PascalRow(%d): %v", n, err)
		}
		if len(row) != n+1 {
			t.Fatalf("PascalRow(%d) has length %d, want %d", n, len(row), n+1)
		}
		for k := 0; k <= n; k++ {
			want, err := BinomialBig(n, k)
			if err != nil {
				t.Fatal(err)
			}
			wf, _ := new(big.Float).SetInt(want).Float64()
			if row[k] != wf {
				t.Errorf("PascalRow(%d)[%d] = %g, want %g", n, k, row[k], wf)
			}
		}
	}
}

func TestPascalRowErrors(t *testing.T) {
	if _, err := PascalRow(-1); err == nil {
		t.Error("PascalRow(-1): expected error")
	}
	if _, err := PascalRow(100); err == nil {
		t.Error("PascalRow(100): expected exact-range error")
	}
}

func TestPascalRowBig(t *testing.T) {
	row, err := PascalRowBig(64)
	if err != nil {
		t.Fatalf("PascalRowBig(64): %v", err)
	}
	mid := row[32]
	want, _ := BinomialBig(64, 32)
	if mid.Cmp(want) != 0 {
		t.Errorf("PascalRowBig(64)[32] = %v, want %v", mid, want)
	}
	if _, err := PascalRowBig(-1); err == nil {
		t.Error("PascalRowBig(-1): expected error")
	}
}

func TestMultinomial(t *testing.T) {
	cases := []struct {
		ks   []int
		want int64
	}{
		{[]int{0}, 1},
		{[]int{3}, 1},
		{[]int{1, 1, 1}, 6},
		{[]int{2, 1}, 3},
		{[]int{2, 2, 2}, 90},
		{[]int{4, 4, 4}, 34650},
	}
	for _, c := range cases {
		got, err := Multinomial(c.ks...)
		if err != nil {
			t.Fatalf("Multinomial(%v): %v", c.ks, err)
		}
		if got != c.want {
			t.Errorf("Multinomial(%v) = %d, want %d", c.ks, got, c.want)
		}
	}
	if _, err := Multinomial(2, -1); err == nil {
		t.Error("Multinomial(2, -1): expected error")
	}
	if _, err := Multinomial(40, 40, 40); err == nil {
		t.Error("Multinomial(40, 40, 40): expected overflow error")
	}
}

func TestMustBinomialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBinomial(-1, 0) did not panic")
		}
	}()
	MustBinomial(-1, 0)
}
