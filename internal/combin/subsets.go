package combin

import (
	"fmt"
	"math/bits"
)

// MaxSubsetGround is the largest ground-set size for which the mask-based
// subset iterators are supported (all 2^n masks must fit comfortably in a
// uint64 loop).
const MaxSubsetGround = 62

// ForEachSubset invokes fn once for every subset of {0, 1, ..., n-1},
// presented as a bitmask. Subsets are visited in increasing mask order,
// starting with the empty set. Iteration stops early if fn returns false.
// It returns an error if n is negative or exceeds MaxSubsetGround.
func ForEachSubset(n int, fn func(mask uint64) bool) error {
	if n < 0 || n > MaxSubsetGround {
		return fmt.Errorf("combin: subset ground size %d out of range [0, %d]", n, MaxSubsetGround)
	}
	total := uint64(1) << uint(n)
	for mask := uint64(0); mask < total; mask++ {
		if !fn(mask) {
			return nil
		}
	}
	return nil
}

// ForEachSubsetGray invokes fn for every subset of {0, ..., n-1} in Gray-code
// order, in which consecutive subsets differ in exactly one element. fn
// receives the current mask, the index of the element flipped relative to the
// previous subset, and whether that element was added (true) or removed
// (false). The first call presents the empty set with flipped = -1.
// Iteration stops early if fn returns false.
func ForEachSubsetGray(n int, fn func(mask uint64, flipped int, added bool) bool) error {
	if n < 0 || n > MaxSubsetGround {
		return fmt.Errorf("combin: subset ground size %d out of range [0, %d]", n, MaxSubsetGround)
	}
	if !fn(0, -1, false) {
		return nil
	}
	total := uint64(1) << uint(n)
	prev := uint64(0)
	for i := uint64(1); i < total; i++ {
		cur := i ^ (i >> 1) // binary-reflected Gray code
		diff := cur ^ prev
		flipped := bits.TrailingZeros64(diff)
		added := cur&diff != 0
		if !fn(cur, flipped, added) {
			return nil
		}
		prev = cur
	}
	return nil
}

// ForEachKSubset invokes fn once for every k-element subset of
// {0, ..., n-1}, presented as a sorted index slice. The slice is reused
// between calls; callers must copy it if they retain it. Subsets are visited
// in lexicographic order. Iteration stops early if fn returns false.
func ForEachKSubset(n, k int, fn func(idx []int) bool) error {
	if n < 0 || k < 0 {
		return fmt.Errorf("combin: k-subset with negative argument (n=%d, k=%d)", n, k)
	}
	if k > n {
		return nil // no k-subsets exist; vacuously done
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return nil
		}
		// Advance to the next k-subset in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// ForEachKSubsetMask invokes fn once for every k-element subset of
// {0, ..., n-1}, presented as a bitmask, in colexicographic order produced by
// Gosper's hack. Iteration stops early if fn returns false.
func ForEachKSubsetMask(n, k int, fn func(mask uint64) bool) error {
	if n < 0 || n > MaxSubsetGround || k < 0 {
		return fmt.Errorf("combin: k-subset mask arguments out of range (n=%d, k=%d)", n, k)
	}
	if k > n {
		return nil
	}
	if k == 0 {
		fn(0)
		return nil
	}
	limit := uint64(1) << uint(n)
	mask := uint64(1)<<uint(k) - 1
	for mask < limit {
		if !fn(mask) {
			return nil
		}
		// Gosper's hack: next integer with the same popcount.
		c := mask & (^mask + 1)
		r := mask + c
		mask = (((r ^ mask) >> 2) / c) | r
	}
	return nil
}

// MaskIndices appends the set bit positions of mask to dst and returns the
// extended slice. Positions are appended in increasing order.
func MaskIndices(mask uint64, dst []int) []int {
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		dst = append(dst, i)
		mask &^= 1 << uint(i)
	}
	return dst
}

// MaskSum returns the sum of vals[i] over the set bits i of mask.
// It panics if mask addresses an index beyond len(vals); masks are produced
// by the iterators above, which bound them by the ground-set size.
func MaskSum(mask uint64, vals []float64) float64 {
	var s float64
	for m := mask; m != 0; {
		i := bits.TrailingZeros64(m)
		s += vals[i]
		m &^= 1 << uint(i)
	}
	return s
}

// Popcount returns the number of set bits in mask.
func Popcount(mask uint64) int { return bits.OnesCount64(mask) }

// ForEachComposition invokes fn once for every weak composition of n into k
// non-negative parts, presented as a slice of length k summing to n. The
// slice is reused between calls. Iteration stops early if fn returns false.
func ForEachComposition(n, k int, fn func(parts []int) bool) error {
	if n < 0 || k < 0 {
		return fmt.Errorf("combin: composition with negative argument (n=%d, k=%d)", n, k)
	}
	if k == 0 {
		if n == 0 {
			fn(nil)
		}
		return nil
	}
	parts := make([]int, k)
	parts[0] = n
	for {
		if !fn(parts) {
			return nil
		}
		// Find the rightmost index before the last with a positive part.
		i := k - 2
		for i >= 0 && parts[i] == 0 {
			i--
		}
		if i < 0 {
			return nil
		}
		// Decrement it, move everything to its right into position i+1.
		tail := parts[k-1]
		parts[i]--
		parts[i+1] = tail + 1
		for j := i + 2; j < k; j++ {
			parts[j] = 0
		}
		if i+1 == k-1 {
			continue
		}
		parts[k-1] = 0
	}
}
