package combin

import (
	"fmt"
	"math/big"
)

// SignedSubsetSum evaluates the inclusion-exclusion expression
//
//	Σ_{I ⊆ {0..n-1}, guard(I)} (-1)^|I| · term(I)
//
// where subsets are presented to guard and term as bitmasks. This is the
// float64 workhorse behind Proposition 2.2 (volume of the simplex/box
// intersection) and Lemmas 2.4 and 2.7 (CDFs of uniform sums): in all of
// them, term is a power of an affine form in the subset sum and guard is a
// positivity condition on that form.
//
// The guard is consulted for every subset; term is evaluated only for
// subsets that pass. Summation is Neumaier-compensated.
func SignedSubsetSum(n int, guard func(mask uint64) bool, term func(mask uint64) float64) (float64, error) {
	if guard == nil || term == nil {
		return 0, fmt.Errorf("combin: SignedSubsetSum requires non-nil guard and term")
	}
	var acc Accumulator
	err := ForEachSubset(n, func(mask uint64) bool {
		if !guard(mask) {
			return true
		}
		v := term(mask)
		if Popcount(mask)%2 == 1 {
			v = -v
		}
		acc.Add(v)
		return true
	})
	if err != nil {
		return 0, err
	}
	return acc.Sum(), nil
}

// SignedSubsetSumRat evaluates the same inclusion-exclusion expression as
// SignedSubsetSum exactly over the rationals. term must return a freshly
// allocated or caller-owned value; it is not modified.
func SignedSubsetSumRat(n int, guard func(mask uint64) bool, term func(mask uint64) *big.Rat) (*big.Rat, error) {
	if guard == nil || term == nil {
		return nil, fmt.Errorf("combin: SignedSubsetSumRat requires non-nil guard and term")
	}
	total := new(big.Rat)
	err := ForEachSubset(n, func(mask uint64) bool {
		if !guard(mask) {
			return true
		}
		v := term(mask)
		if Popcount(mask)%2 == 1 {
			total.Sub(total, v)
		} else {
			total.Add(total, v)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// SignedBinomialSum evaluates the collapsed ("symmetric") form of an
// inclusion-exclusion expression,
//
//	Σ_{i=0..n, guard(i)} (-1)^i · C(n, i) · term(i),
//
// which arises whenever the per-element weights are all equal, so that the
// subset sum depends only on the subset's cardinality (Corollary 2.6 and the
// symmetric-threshold formulas of Section 5.2). Summation is compensated.
func SignedBinomialSum(n int, guard func(i int) bool, term func(i int) float64) (float64, error) {
	if guard == nil || term == nil {
		return 0, fmt.Errorf("combin: SignedBinomialSum requires non-nil guard and term")
	}
	row, err := PascalRow(n)
	if err != nil {
		return 0, err
	}
	var acc Accumulator
	for i := 0; i <= n; i++ {
		if !guard(i) {
			continue
		}
		v := row[i] * term(i)
		if i%2 == 1 {
			v = -v
		}
		acc.Add(v)
	}
	return acc.Sum(), nil
}

// SignedBinomialSumRat is the exact rational counterpart of
// SignedBinomialSum.
func SignedBinomialSumRat(n int, guard func(i int) bool, term func(i int) *big.Rat) (*big.Rat, error) {
	if guard == nil || term == nil {
		return nil, fmt.Errorf("combin: SignedBinomialSumRat requires non-nil guard and term")
	}
	total := new(big.Rat)
	scaled := new(big.Rat)
	for i := 0; i <= n; i++ {
		if !guard(i) {
			continue
		}
		c, err := BinomialBig(n, i)
		if err != nil {
			return nil, err
		}
		scaled.SetInt(c)
		scaled.Mul(scaled, term(i))
		if i%2 == 1 {
			total.Sub(total, scaled)
		} else {
			total.Add(total, scaled)
		}
	}
	return total, nil
}
