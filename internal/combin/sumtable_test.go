package combin

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestSumTableBuildMatchesSubsetSums pins Build against the one-shot
// SubsetSums bit for bit.
func TestSumTableBuildMatchesSubsetSums(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 1))
	for _, n := range []int{0, 1, 2, 5, 9} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 3
		}
		want, err := SubsetSums(vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st, err := NewSumTable(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := st.Build(vals); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for mask, w := range want {
			if math.Float64bits(st.Values()[mask]) != math.Float64bits(w) {
				t.Fatalf("n=%d mask=%d: table %x, SubsetSums %x", n, mask, st.Values()[mask], w)
			}
		}
	}
}

// TestSumTableSetCoordBitIdentical walks random coordinates and requires
// the delta-updated table to stay bit-identical to a fresh build — the
// property that lets the evaluators delta-update their subset-sum state
// without accumulating drift.
func TestSumTableSetCoordBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 2))
	const n = 9
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	st, err := NewSumTable(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Build(vals); err != nil {
		t.Fatal(err)
	}
	pt, err := NewProductTable(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Build(vals); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		i := rng.IntN(n)
		vals[i] = rng.Float64() * 2
		if err := st.SetCoord(i, vals[i]); err != nil {
			t.Fatal(err)
		}
		if err := pt.SetCoord(i, vals[i]); err != nil {
			t.Fatal(err)
		}
		wantS, err := SubsetSums(vals)
		if err != nil {
			t.Fatal(err)
		}
		wantP, err := SubsetProducts(vals)
		if err != nil {
			t.Fatal(err)
		}
		for mask := range wantS {
			if math.Float64bits(st.Values()[mask]) != math.Float64bits(wantS[mask]) {
				t.Fatalf("step %d sum mask=%d: delta table %x, fresh %x",
					step, mask, math.Float64bits(st.Values()[mask]), math.Float64bits(wantS[mask]))
			}
			if math.Float64bits(pt.Values()[mask]) != math.Float64bits(wantP[mask]) {
				t.Fatalf("step %d product mask=%d: delta table %x, fresh %x",
					step, mask, math.Float64bits(pt.Values()[mask]), math.Float64bits(wantP[mask]))
			}
		}
	}
}

// TestSumTableErrors covers the constructor and input guards.
func TestSumTableErrors(t *testing.T) {
	if _, err := NewSumTable(-1); err == nil {
		t.Error("NewSumTable(-1) accepted")
	}
	if _, err := NewSumTable(MaxSubsetTable + 1); err == nil {
		t.Error("NewSumTable over cap accepted")
	}
	if _, err := NewProductTable(MaxSubsetTable + 1); err == nil {
		t.Error("NewProductTable over cap accepted")
	}
	st, err := NewSumTable(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Build([]float64{1, 2}); err == nil {
		t.Error("Build with wrong length accepted")
	}
	if err := st.SetCoord(3, 0); err == nil {
		t.Error("SetCoord out of range accepted")
	}
	if err := st.SetCoord(-1, 0); err == nil {
		t.Error("SetCoord negative accepted")
	}
	pt, err := NewProductTable(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Build([]float64{1}); err == nil {
		t.Error("product Build with wrong length accepted")
	}
	if err := pt.SetCoord(7, 0); err == nil {
		t.Error("product SetCoord out of range accepted")
	}
}

// TestChunkSpanMatchesGrid requires the exported chunk geometry to cover
// [0, total) exactly with at most ChunkGrid chunks.
func TestChunkSpanMatchesGrid(t *testing.T) {
	for _, total := range []uint64{1, 7, 64, 65, 1 << 15} {
		span, chunks := ChunkSpan(total)
		if chunks > ChunkGrid {
			t.Errorf("total=%d: %d chunks exceeds grid %d", total, chunks, ChunkGrid)
		}
		if span*chunks < total || (chunks > 0 && (span*(chunks-1) >= total)) {
			t.Errorf("total=%d: span %d × chunks %d does not tile", total, span, chunks)
		}
	}
}
