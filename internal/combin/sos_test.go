package combin

import (
	"math"
	"testing"
)

// TestSubsetSumsAndProducts pins both table builders against direct
// per-mask evaluation.
func TestSubsetSumsAndProducts(t *testing.T) {
	vals := []float64{0.5, 1.25, 2, 0.125, 3}
	sums, err := SubsetSums(vals)
	if err != nil {
		t.Fatalf("SubsetSums: %v", err)
	}
	prods, err := SubsetProducts(vals)
	if err != nil {
		t.Fatalf("SubsetProducts: %v", err)
	}
	if len(sums) != 32 || len(prods) != 32 {
		t.Fatalf("table lengths %d, %d, want 32", len(sums), len(prods))
	}
	for mask := uint64(0); mask < 32; mask++ {
		wantS, wantP := 0.0, 1.0
		for i, v := range vals {
			if mask&(1<<uint(i)) != 0 {
				wantS += v
				wantP *= v
			}
		}
		// The values are dyadic, so both recurrences are exact.
		if sums[mask] != wantS {
			t.Fatalf("sums[%b] = %v, want %v", mask, sums[mask], wantS)
		}
		if prods[mask] != wantP {
			t.Fatalf("prods[%b] = %v, want %v", mask, prods[mask], wantP)
		}
	}
}

// TestSubsetTableLimits covers the table-size guards.
func TestSubsetTableLimits(t *testing.T) {
	big := make([]float64, MaxSubsetTable+1)
	if _, err := SubsetSums(big); err == nil {
		t.Fatal("SubsetSums accepted an oversized ground set")
	}
	if _, err := SubsetProducts(big); err == nil {
		t.Fatal("SubsetProducts accepted an oversized ground set")
	}
	if err := SumOverSubsets(make([]float64, 8), 4, 1); err == nil {
		t.Fatal("SumOverSubsets accepted a mismatched table length")
	}
	if _, _, err := ChunkedMaskSum(MaxSubsetTable+1, 1, nil); err == nil {
		t.Fatal("ChunkedMaskSum accepted an oversized ground set")
	}
}

// TestSumOverSubsets pins the zeta transform against the O(3^n) direct
// submask sum, serial and worker-parallel (which must agree exactly: the
// pair additions are identical, only their scheduling differs).
func TestSumOverSubsets(t *testing.T) {
	const n = 8
	base := make([]float64, 1<<n)
	for mask := range base {
		base[mask] = math.Sin(float64(mask)+1) / float64(mask+2)
	}
	want := make([]float64, len(base))
	for mask := uint64(0); mask < uint64(len(base)); mask++ {
		// Direct submask enumeration.
		sub := mask
		for {
			want[mask] += base[sub]
			if sub == 0 {
				break
			}
			sub = (sub - 1) & mask
		}
	}
	for _, workers := range []int{1, 4} {
		got := append([]float64(nil), base...)
		if err := SumOverSubsets(got, n, workers); err != nil {
			t.Fatalf("SumOverSubsets(workers=%d): %v", workers, err)
		}
		for mask := range got {
			if math.Abs(got[mask]-want[mask]) > 1e-12*(1+math.Abs(want[mask])) {
				t.Fatalf("workers=%d: zeta[%b] = %v, want %v", workers, mask, got[mask], want[mask])
			}
		}
	}
	serial := append([]float64(nil), base...)
	parallel := append([]float64(nil), base...)
	if err := SumOverSubsets(serial, n, 1); err != nil {
		t.Fatal(err)
	}
	if err := SumOverSubsets(parallel, n, 3); err != nil {
		t.Fatal(err)
	}
	for mask := range serial {
		if math.Float64bits(serial[mask]) != math.Float64bits(parallel[mask]) {
			t.Fatalf("zeta transform not bit-identical across worker counts at mask %b", mask)
		}
	}
}

// TestChunkedMaskSumDeterminism pins the sharded reduction: exact same
// bits for 1, 2 and 7 workers, and agreement with a compensated serial sum.
func TestChunkedMaskSumDeterminism(t *testing.T) {
	const n = 11
	term := func(mask uint64) float64 {
		v := math.Sin(float64(mask) + 0.5)
		if mask%3 == 1 {
			return -v
		}
		return v
	}
	makeTerm := func() func(uint64) float64 { return term }
	ref, chunks, err := ChunkedMaskSum(n, 1, makeTerm)
	if err != nil {
		t.Fatalf("ChunkedMaskSum: %v", err)
	}
	if chunks <= 1 {
		t.Fatalf("expected a multi-chunk grid at n=%d, got %d chunks", n, chunks)
	}
	for _, workers := range []int{2, 7} {
		got, gotChunks, err := ChunkedMaskSum(n, workers, makeTerm)
		if err != nil {
			t.Fatalf("ChunkedMaskSum(workers=%d): %v", workers, err)
		}
		if gotChunks != chunks {
			t.Fatalf("chunk grid changed with workers: %d vs %d", gotChunks, chunks)
		}
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Fatalf("workers=%d sum %v not bit-identical to serial %v", workers, got, ref)
		}
	}
	var acc Accumulator
	for mask := uint64(0); mask < 1<<n; mask++ {
		acc.Add(term(mask))
	}
	if math.Abs(ref-acc.Sum()) > 1e-10 {
		t.Fatalf("chunked sum %v far from compensated serial sum %v", ref, acc.Sum())
	}
}
