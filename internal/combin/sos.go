package combin

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// MaxSubsetTable bounds the ground-set size for the table-building helpers
// in this file, which materialize one float64 per subset (8·2^n bytes per
// table; n = 22 is 32 MiB per table).
const MaxSubsetTable = 22

// sumChunkGrid is the fixed number of chunks the mask range is split into
// for sharded reductions. The grid depends only on the problem size — never
// on the worker count — so per-chunk partial sums, and therefore the final
// fixed-order reduction, are bit-identical for every worker count.
const sumChunkGrid = 64

// SubsetSums returns sums[mask] = Σ_{i∈mask} vals[i] for every subset mask
// of {0, ..., len(vals)-1}, via the one-pass low-bit recurrence
// sums[mask] = sums[mask without its lowest bit] + vals[lowest bit]. Each
// entry costs one addition, so consecutive-mask walks see fully incremental
// subset-sum state.
func SubsetSums(vals []float64) ([]float64, error) {
	n := len(vals)
	if n > MaxSubsetTable {
		return nil, fmt.Errorf("combin: subset-sum table for %d elements exceeds the %d-element limit", n, MaxSubsetTable)
	}
	out := make([]float64, uint64(1)<<uint(n))
	for mask := uint64(1); mask < uint64(len(out)); mask++ {
		out[mask] = out[mask&(mask-1)] + vals[bits.TrailingZeros64(mask)]
	}
	return out, nil
}

// SubsetProducts returns prods[mask] = Π_{i∈mask} vals[i] for every subset
// mask of {0, ..., len(vals)-1} (empty product 1), via the same low-bit
// recurrence as SubsetSums.
func SubsetProducts(vals []float64) ([]float64, error) {
	n := len(vals)
	if n > MaxSubsetTable {
		return nil, fmt.Errorf("combin: subset-product table for %d elements exceeds the %d-element limit", n, MaxSubsetTable)
	}
	out := make([]float64, uint64(1)<<uint(n))
	out[0] = 1
	for mask := uint64(1); mask < uint64(len(out)); mask++ {
		out[mask] = out[mask&(mask-1)] * vals[bits.TrailingZeros64(mask)]
	}
	return out, nil
}

// SumOverSubsets transforms arr in place into its zeta transform:
// arr[T] becomes Σ_{I⊆T} arr[I]. arr must have length 2^n. The standard
// bitwise DP runs n passes of 2^(n-1) pair additions each; pass b adds the
// bit-b-clear half of every aligned block into the bit-b-set half, so
// writes are disjoint and the result is independent of how the block range
// is scheduled across workers. workers ≤ 1 runs serially.
func SumOverSubsets(arr []float64, n, workers int) error {
	if n < 0 || n > MaxSubsetTable {
		return fmt.Errorf("combin: sum-over-subsets ground size %d out of range [0, %d]", n, MaxSubsetTable)
	}
	size := uint64(1) << uint(n)
	if uint64(len(arr)) != size {
		return fmt.Errorf("combin: sum-over-subsets table length %d, want %d", len(arr), size)
	}
	for b := 0; b < n; b++ {
		half := uint64(1) << uint(b)
		step := half << 1
		blocks := size / step
		if workers <= 1 {
			// Serial fast path: writes are disjoint, so this is the same
			// sequence of pair additions the chunked path performs, without
			// the per-pass closure (which escapes through forChunks' worker
			// branch and would heap-allocate even when run serially).
			for base := uint64(0); base < size; base += step {
				low := arr[base : base+half]
				high := arr[base+half : base+step : base+step]
				for i := range high {
					high[i] += low[i]
				}
			}
			continue
		}
		forChunks(workers, blocks, func(_, lo, hi uint64) {
			for blk := lo; blk < hi; blk++ {
				base := blk * step
				low := arr[base : base+half]
				high := arr[base+half : base+step : base+step]
				for i := range high {
					high[i] += low[i]
				}
			}
		})
	}
	return nil
}

// ChunkedMaskSum sums term(mask) over all 2^n masks through a fixed chunk
// grid: each chunk is Neumaier-summed on its own Accumulator, and the
// per-chunk totals are combined by a fixed-order pairwise tree. Both the
// grid and the reduction order depend only on n, so the result is
// bit-identical for every worker count. makeTerm is invoked once per
// worker to build that worker's term function, letting callers attach
// private scratch state; each term function then sees strictly increasing
// masks within a chunk. It returns the total and the number of chunks.
func ChunkedMaskSum(n, workers int, makeTerm func() func(mask uint64) float64) (float64, int, error) {
	if n < 0 || n > MaxSubsetTable {
		return 0, 0, fmt.Errorf("combin: chunked mask sum ground size %d out of range [0, %d]", n, MaxSubsetTable)
	}
	total := uint64(1) << uint(n)
	span, nChunks := chunkSpan(total)
	partial := make([]float64, nChunks)
	run := func(term func(mask uint64) float64, c, lo, hi uint64) {
		var acc Accumulator
		for mask := lo; mask < hi; mask++ {
			acc.Add(term(mask))
		}
		partial[c] = acc.Sum()
	}
	if workers <= 1 {
		term := makeTerm()
		for c := uint64(0); c < nChunks; c++ {
			lo := c * span
			run(term, c, lo, min(lo+span, total))
		}
	} else {
		var cursor atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				term := makeTerm()
				for {
					c := cursor.Add(1) - 1
					if c >= nChunks {
						return
					}
					lo := c * span
					run(term, c, lo, min(lo+span, total))
				}
			}()
		}
		wg.Wait()
	}
	// Fixed-order pairwise tree over the chunk totals.
	for len(partial) > 1 {
		half := (len(partial) + 1) / 2
		for i := 0; i < len(partial)/2; i++ {
			partial[i] = partial[2*i] + partial[2*i+1]
		}
		if len(partial)%2 == 1 {
			partial[half-1] = partial[len(partial)-1]
		}
		partial = partial[:half]
	}
	return partial[0], int(nChunks), nil
}

// PowInt returns x^k for k ≥ 0 by binary exponentiation — cheaper and, for
// the small exponents of the inclusion-exclusion kernels, more accurate
// than math.Pow.
func PowInt(x float64, k int) float64 {
	r := 1.0
	for k > 0 {
		if k&1 == 1 {
			r *= x
		}
		x *= x
		k >>= 1
	}
	return r
}

// chunkSpan splits [0, total) into at most sumChunkGrid equal spans,
// independent of the worker count.
func chunkSpan(total uint64) (span, chunks uint64) {
	if total == 0 {
		return 1, 0
	}
	span = (total + sumChunkGrid - 1) / sumChunkGrid
	return span, (total + span - 1) / span
}

// forChunks splits [0, total) into the fixed chunk grid and invokes fn for
// every chunk, pulled by workers goroutines from an atomic cursor. fn must
// write only state owned by its range; under that contract the outcome is
// independent of scheduling.
func forChunks(workers int, total uint64, fn func(chunk, lo, hi uint64)) {
	span, nChunks := chunkSpan(total)
	if workers <= 1 || nChunks <= 1 {
		for c := uint64(0); c < nChunks; c++ {
			lo := c * span
			fn(c, lo, min(lo+span, total))
		}
		return
	}
	var cursor atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := cursor.Add(1) - 1
				if c >= nChunks {
					return
				}
				lo := c * span
				fn(c, lo, min(lo+span, total))
			}
		}()
	}
	wg.Wait()
}
