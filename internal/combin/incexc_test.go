package combin

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Sum() != 0 {
		t.Fatalf("zero accumulator sum = %g, want 0", a.Sum())
	}
	a.Add(1)
	a.Add(2)
	a.Add(3)
	if a.Sum() != 6 {
		t.Errorf("sum = %g, want 6", a.Sum())
	}
	a.Reset()
	if a.Sum() != 0 {
		t.Errorf("after Reset sum = %g, want 0", a.Sum())
	}
}

func TestAccumulatorCompensation(t *testing.T) {
	// Classic compensation test: 1 + 1e100 + 1 - 1e100 should be 2.
	var a Accumulator
	for _, v := range []float64{1, 1e100, 1, -1e100} {
		a.Add(v)
	}
	if a.Sum() != 2 {
		t.Errorf("compensated sum = %g, want 2", a.Sum())
	}
}

func TestSumCompensatedAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vs := make([]float64, 10000)
	exact := new(big.Float).SetPrec(200)
	for i := range vs {
		vs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)))
		exact.Add(exact, big.NewFloat(vs[i]))
	}
	want, _ := exact.Float64()
	got := SumCompensated(vs)
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("SumCompensated = %v, want %v", got, want)
	}
}

func TestSignedSubsetSumBinomialTheorem(t *testing.T) {
	// Σ_I (-1)^|I| 1 = 0 for n >= 1 (binomial theorem at x = -1).
	for n := 1; n <= 12; n++ {
		got, err := SignedSubsetSum(n,
			func(uint64) bool { return true },
			func(uint64) float64 { return 1 })
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if math.Abs(got) > 1e-12 {
			t.Errorf("n=%d: signed subset count = %g, want 0", n, got)
		}
	}
}

func TestSignedSubsetSumMatchesBinomialCollapse(t *testing.T) {
	// With equal weights, the subset formulation must agree with the
	// binomial collapse for a nontrivial alternating power sum.
	const n = 8
	const beta, tcap = 0.37, 1.9
	subset, err := SignedSubsetSum(n,
		func(mask uint64) bool { return tcap-beta*float64(Popcount(mask)) > 0 },
		func(mask uint64) float64 {
			return math.Pow(tcap-beta*float64(Popcount(mask)), n)
		})
	if err != nil {
		t.Fatal(err)
	}
	binom, err := SignedBinomialSum(n,
		func(i int) bool { return tcap-beta*float64(i) > 0 },
		func(i int) float64 { return math.Pow(tcap-beta*float64(i), n) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(subset-binom) > 1e-9*math.Max(1, math.Abs(binom)) {
		t.Errorf("subset form %v != binomial collapse %v", subset, binom)
	}
}

func TestSignedSubsetSumNilArgs(t *testing.T) {
	if _, err := SignedSubsetSum(3, nil, func(uint64) float64 { return 0 }); err == nil {
		t.Error("expected error for nil guard")
	}
	if _, err := SignedSubsetSum(3, func(uint64) bool { return true }, nil); err == nil {
		t.Error("expected error for nil term")
	}
	if _, err := SignedSubsetSum(99, func(uint64) bool { return true }, func(uint64) float64 { return 0 }); err == nil {
		t.Error("expected range error for n=99")
	}
}

func TestSignedSubsetSumRatMatchesFloat(t *testing.T) {
	const n = 6
	weights := []*big.Rat{
		big.NewRat(1, 3), big.NewRat(1, 4), big.NewRat(2, 5),
		big.NewRat(1, 2), big.NewRat(3, 7), big.NewRat(1, 6),
	}
	wf := make([]float64, n)
	for i, w := range weights {
		wf[i], _ = w.Float64()
	}
	tcap := big.NewRat(3, 2)
	tf, _ := tcap.Float64()

	guardRat := func(mask uint64) bool {
		s := new(big.Rat)
		for _, i := range MaskIndices(mask, nil) {
			s.Add(s, weights[i])
		}
		return s.Cmp(tcap) < 0
	}
	exact, err := SignedSubsetSumRat(n, guardRat, func(mask uint64) *big.Rat {
		s := new(big.Rat).Set(tcap)
		for _, i := range MaskIndices(mask, nil) {
			s.Sub(s, weights[i])
		}
		return ratPow(s, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SignedSubsetSum(n, guardRat, func(mask uint64) float64 {
		return math.Pow(tf-MaskSum(mask, wf), n)
	})
	if err != nil {
		t.Fatal(err)
	}
	exactF, _ := exact.Float64()
	if math.Abs(approx-exactF) > 1e-10*math.Max(1, math.Abs(exactF)) {
		t.Errorf("float %v != exact %v", approx, exactF)
	}
}

func TestSignedSubsetSumRatNilArgs(t *testing.T) {
	if _, err := SignedSubsetSumRat(3, nil, func(uint64) *big.Rat { return new(big.Rat) }); err == nil {
		t.Error("expected error for nil guard")
	}
	if _, err := SignedSubsetSumRat(3, func(uint64) bool { return true }, nil); err == nil {
		t.Error("expected error for nil term")
	}
	if _, err := SignedSubsetSumRat(-1, func(uint64) bool { return true }, func(uint64) *big.Rat { return new(big.Rat) }); err == nil {
		t.Error("expected range error")
	}
}

func ratPow(r *big.Rat, n int) *big.Rat {
	out := big.NewRat(1, 1)
	for i := 0; i < n; i++ {
		out.Mul(out, r)
	}
	return out
}

func TestSignedBinomialSumIrwinHallUnitCube(t *testing.T) {
	// F_n(n) = 1: the whole cube satisfies Σ x_i <= n.
	for n := 1; n <= 15; n++ {
		nf := float64(n)
		got, err := SignedBinomialSum(n,
			func(i int) bool { return float64(i) < nf },
			func(i int) float64 { return math.Pow(nf-float64(i), float64(n)) })
		if err != nil {
			t.Fatal(err)
		}
		got /= float64(MustFactorial(min(n, MaxFactorial64)))
		if n <= MaxFactorial64 && math.Abs(got-1) > 1e-9 {
			t.Errorf("n=%d: normalized Irwin-Hall F(n) = %v, want 1", n, got)
		}
	}
}

func TestSignedBinomialSumRatMatchesFloat(t *testing.T) {
	const n = 9
	beta := big.NewRat(2, 7)
	tcap := big.NewRat(5, 3)
	bf, _ := beta.Float64()
	tf, _ := tcap.Float64()
	exact, err := SignedBinomialSumRat(n,
		func(i int) bool {
			v := new(big.Rat).SetInt64(int64(i))
			v.Mul(v, beta)
			return v.Cmp(tcap) < 0
		},
		func(i int) *big.Rat {
			v := new(big.Rat).SetInt64(int64(i))
			v.Mul(v, beta)
			v.Sub(tcap, v)
			return ratPow(v, n)
		})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := SignedBinomialSum(n,
		func(i int) bool { return bf*float64(i) < tf },
		func(i int) float64 { return math.Pow(tf-bf*float64(i), n) })
	if err != nil {
		t.Fatal(err)
	}
	exactF, _ := exact.Float64()
	if math.Abs(approx-exactF) > 1e-9*math.Max(1, math.Abs(exactF)) {
		t.Errorf("float %v != exact %v", approx, exactF)
	}
}

func TestSignedBinomialSumNilArgs(t *testing.T) {
	if _, err := SignedBinomialSum(3, nil, func(int) float64 { return 0 }); err == nil {
		t.Error("expected error for nil guard")
	}
	if _, err := SignedBinomialSum(3, func(int) bool { return true }, nil); err == nil {
		t.Error("expected error for nil term")
	}
	if _, err := SignedBinomialSumRat(3, nil, func(int) *big.Rat { return new(big.Rat) }); err == nil {
		t.Error("expected error for nil guard (rat)")
	}
	if _, err := SignedBinomialSumRat(3, func(int) bool { return true }, nil); err == nil {
		t.Error("expected error for nil term (rat)")
	}
}

func TestSignedBinomialSumVanishesForConstantTermProperty(t *testing.T) {
	// Property: for any n >= 1 and constant c, Σ (-1)^i C(n,i) c = 0.
	f := func(a uint8, c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 {
			return true
		}
		n := 1 + int(a%20)
		got, err := SignedBinomialSum(n,
			func(int) bool { return true },
			func(int) float64 { return c })
		if err != nil {
			return false
		}
		return math.Abs(got) <= 1e-7*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
