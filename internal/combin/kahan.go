package combin

// Accumulator is a Neumaier-compensated floating-point accumulator. It keeps
// a running correction term so that long alternating sums — such as the
// inclusion-exclusion series in Proposition 2.2 and Corollary 2.6 of the
// paper — lose far less precision than naive summation.
//
// The zero value is an accumulator with sum 0 and is ready for use.
type Accumulator struct {
	sum float64
	c   float64 // running compensation for lost low-order bits
}

// Add incorporates v into the running sum.
func (a *Accumulator) Add(v float64) {
	t := a.sum + v
	if abs(a.sum) >= abs(v) {
		a.c += (a.sum - t) + v
	} else {
		a.c += (v - t) + a.sum
	}
	a.sum = t
}

// Sum returns the compensated running total.
func (a *Accumulator) Sum() float64 { return a.sum + a.c }

// Reset clears the accumulator back to zero.
func (a *Accumulator) Reset() { a.sum, a.c = 0, 0 }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SumCompensated returns the Neumaier-compensated sum of vs.
func SumCompensated(vs []float64) float64 {
	var a Accumulator
	for _, v := range vs {
		a.Add(v)
	}
	return a.Sum()
}
