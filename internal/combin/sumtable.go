package combin

import (
	"fmt"
	"math/bits"
)

// SumTable is a reusable subset-sum table: sums[mask] = Σ_{i∈mask} vals[i]
// for every subset mask of a fixed n-element ground set. Unlike SubsetSums
// it owns its storage across rebuilds (Build reuses the allocated table)
// and supports SetCoord, which re-propagates only the 2^(n-1) masks
// containing the changed coordinate.
//
// Both Build and SetCoord apply the same low-bit recurrence
//
//	out[mask] = out[mask without its lowest bit] + vals[lowest bit]
//
// so a table updated by any sequence of SetCoord calls is bit-identical to
// one rebuilt from scratch: for a mask whose lowest bit IS the changed
// coordinate i, the recurrence parent mask&(mask-1) excludes i and is
// unchanged; for every other mask containing i the parent also contains i
// and was already re-propagated (masks are visited in increasing order).
// Either way each entry is recomputed from exactly the operands a fresh
// Build would use.
type SumTable struct {
	n    int
	vals []float64
	out  []float64
}

// NewSumTable allocates a subset-sum table over an n-element ground set.
func NewSumTable(n int) (*SumTable, error) {
	if n < 0 || n > MaxSubsetTable {
		return nil, fmt.Errorf("combin: sum table ground size %d out of range [0, %d]", n, MaxSubsetTable)
	}
	return &SumTable{
		n:    n,
		vals: make([]float64, n),
		out:  make([]float64, uint64(1)<<uint(n)),
	}, nil
}

// N returns the ground-set size.
func (t *SumTable) N() int { return t.n }

// Values returns the table, indexed by subset mask. The slice is owned by
// the table and rewritten by Build and SetCoord; callers must not modify
// it.
func (t *SumTable) Values() []float64 { return t.out }

// Build fills the table for vals, reusing the allocated storage. The
// result is bit-identical to SubsetSums(vals).
func (t *SumTable) Build(vals []float64) error {
	if len(vals) != t.n {
		return fmt.Errorf("combin: sum table built for %d elements, got %d", t.n, len(vals))
	}
	copy(t.vals, vals)
	out := t.out
	out[0] = 0
	for mask := uint64(1); mask < uint64(len(out)); mask++ {
		out[mask] = out[mask&(mask-1)] + t.vals[bits.TrailingZeros64(mask)]
	}
	return nil
}

// SetCoord changes coordinate i to v and re-propagates the 2^(n-1) masks
// containing i with the build recurrence, leaving the table bit-identical
// to a fresh Build of the updated value vector.
func (t *SumTable) SetCoord(i int, v float64) error {
	if i < 0 || i >= t.n {
		return fmt.Errorf("combin: sum table coordinate %d out of range [0, %d)", i, t.n)
	}
	t.vals[i] = v
	forEachMaskContaining(t.n, i, func(mask uint64) {
		t.out[mask] = t.out[mask&(mask-1)] + t.vals[bits.TrailingZeros64(mask)]
	})
	return nil
}

// ProductTable is the multiplicative twin of SumTable:
// prods[mask] = Π_{i∈mask} vals[i] with empty product 1, rebuilt in place
// and delta-updated by the same low-bit recurrence (so SetCoord is likewise
// bit-identical to a fresh Build).
type ProductTable struct {
	n    int
	vals []float64
	out  []float64
}

// NewProductTable allocates a subset-product table over an n-element
// ground set.
func NewProductTable(n int) (*ProductTable, error) {
	if n < 0 || n > MaxSubsetTable {
		return nil, fmt.Errorf("combin: product table ground size %d out of range [0, %d]", n, MaxSubsetTable)
	}
	return &ProductTable{
		n:    n,
		vals: make([]float64, n),
		out:  make([]float64, uint64(1)<<uint(n)),
	}, nil
}

// N returns the ground-set size.
func (t *ProductTable) N() int { return t.n }

// Values returns the table, indexed by subset mask. The slice is owned by
// the table and rewritten by Build and SetCoord; callers must not modify
// it.
func (t *ProductTable) Values() []float64 { return t.out }

// Build fills the table for vals, reusing the allocated storage. The
// result is bit-identical to SubsetProducts(vals).
func (t *ProductTable) Build(vals []float64) error {
	if len(vals) != t.n {
		return fmt.Errorf("combin: product table built for %d elements, got %d", t.n, len(vals))
	}
	copy(t.vals, vals)
	out := t.out
	out[0] = 1
	for mask := uint64(1); mask < uint64(len(out)); mask++ {
		out[mask] = out[mask&(mask-1)] * t.vals[bits.TrailingZeros64(mask)]
	}
	return nil
}

// SetCoord changes coordinate i to v and re-propagates the 2^(n-1) masks
// containing i, bit-identical to a fresh Build of the updated vector.
func (t *ProductTable) SetCoord(i int, v float64) error {
	if i < 0 || i >= t.n {
		return fmt.Errorf("combin: product table coordinate %d out of range [0, %d)", i, t.n)
	}
	t.vals[i] = v
	forEachMaskContaining(t.n, i, func(mask uint64) {
		t.out[mask] = t.out[mask&(mask-1)] * t.vals[bits.TrailingZeros64(mask)]
	})
	return nil
}

// forEachMaskContaining visits every mask of the n-bit lattice containing
// bit i in increasing mask order: the 2^(n-1) masks lo | 1<<i | hi<<(i+1)
// enumerated by interleaving the i low bits with the n-1-i high bits.
func forEachMaskContaining(n, i int, fn func(mask uint64)) {
	bit := uint64(1) << uint(i)
	lowSize := bit                       // 2^i low-bit patterns
	highSize := uint64(1) << uint(n-i-1) // 2^(n-1-i) high-bit patterns
	for high := uint64(0); high < highSize; high++ {
		base := high<<uint(i+1) | bit
		for low := uint64(0); low < lowSize; low++ {
			fn(base | low)
		}
	}
}

// ChunkSpan splits [0, total) into at most ChunkGrid equal spans,
// independent of the worker count — the fixed grid every chunked reduction
// in this package shards on. Exported so reusable evaluators can replicate
// ChunkedMaskSum's exact summation order into caller-owned buffers.
func ChunkSpan(total uint64) (span, chunks uint64) { return chunkSpan(total) }

// ChunkGrid is the fixed chunk count of the sharded reductions (see
// sumChunkGrid).
const ChunkGrid = sumChunkGrid
