package combin

import (
	"fmt"
	"math"
	"math/big"
)

// Binomial returns the binomial coefficient C(n, k) as an int64.
// It returns an error if n or k is negative, or if the result would
// overflow int64. C(n, k) with k > n is 0 by convention.
func Binomial(n, k int) (int64, error) {
	if n < 0 || k < 0 {
		return 0, fmt.Errorf("combin: binomial with negative argument C(%d, %d)", n, k)
	}
	if k > n {
		return 0, nil
	}
	if k > n-k {
		k = n - k
	}
	// Multiplicative formula with overflow checks: result *= (n-k+i) / i.
	// The division is always exact at each step because the running product
	// of i consecutive integers is divisible by i!.
	var result int64 = 1
	for i := 1; i <= k; i++ {
		f := int64(n - k + i)
		hi, lo := bits64Mul(result, f)
		if hi != 0 {
			return 0, fmt.Errorf("combin: C(%d, %d) overflows int64", n, k)
		}
		result = lo / int64(i)
	}
	return result, nil
}

// bits64Mul multiplies two non-negative int64 values and reports whether the
// product fits: hi is non-zero exactly when the product overflows.
func bits64Mul(a, b int64) (hi, lo int64) {
	if a == 0 || b == 0 {
		return 0, 0
	}
	p := a * b
	if p/b != a || p < 0 {
		return 1, p
	}
	return 0, p
}

// MustBinomial returns C(n, k) as int64 and panics on error.
// It is intended for small, statically-bounded arguments.
func MustBinomial(n, k int) int64 {
	v, err := Binomial(n, k)
	if err != nil {
		panic(err)
	}
	return v
}

// BinomialBig returns the binomial coefficient C(n, k) as an exact big
// integer. It returns an error if n or k is negative. C(n, k) with k > n
// is 0 by convention.
func BinomialBig(n, k int) (*big.Int, error) {
	if n < 0 || k < 0 {
		return nil, fmt.Errorf("combin: binomial with negative argument C(%d, %d)", n, k)
	}
	if k > n {
		return big.NewInt(0), nil
	}
	return new(big.Int).Binomial(int64(n), int64(k)), nil
}

// BinomialFloat returns C(n, k) as a float64, using log-gamma for large
// arguments so that it degrades to +Inf rather than corrupting intermediate
// arithmetic. For results below 2^53 the value is exact.
func BinomialFloat(n, k int) (float64, error) {
	if n < 0 || k < 0 {
		return 0, fmt.Errorf("combin: binomial with negative argument C(%d, %d)", n, k)
	}
	if k > n {
		return 0, nil
	}
	if v, err := Binomial(n, k); err == nil {
		return float64(v), nil
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return math.Round(math.Exp(ln - lk - lnk)), nil
}

// PascalRow returns row n of Pascal's triangle, that is, the n+1 coefficients
// C(n, 0) ... C(n, n), as exact float64 values. It returns an error when any
// entry exceeds exact float64 range via int64 overflow (n > 61 can overflow;
// entries are computed pairwise from the previous row in float64, which stays
// exact up to n = 56).
func PascalRow(n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("combin: Pascal row of negative %d", n)
	}
	row := make([]float64, n+1)
	row[0] = 1
	for i := 1; i <= n; i++ {
		// Build in place right-to-left.
		row[i] = 1
		for j := i - 1; j > 0; j-- {
			row[j] += row[j-1]
		}
	}
	for _, v := range row {
		if v > 1<<53 {
			return nil, fmt.Errorf("combin: Pascal row %d exceeds exact float64 range", n)
		}
	}
	return row, nil
}

// PascalRowBig returns row n of Pascal's triangle as exact big integers.
func PascalRowBig(n int) ([]*big.Int, error) {
	if n < 0 {
		return nil, fmt.Errorf("combin: Pascal row of negative %d", n)
	}
	row := make([]*big.Int, n+1)
	for k := 0; k <= n; k++ {
		row[k] = new(big.Int).Binomial(int64(n), int64(k))
	}
	return row, nil
}

// Multinomial returns the multinomial coefficient (Σks)! / Π ks[i]! as an
// int64, or an error on negative parts or overflow.
func Multinomial(ks ...int) (int64, error) {
	n := 0
	for _, k := range ks {
		if k < 0 {
			return 0, fmt.Errorf("combin: multinomial with negative part %d", k)
		}
		n += k
	}
	var result int64 = 1
	rem := n
	for _, k := range ks {
		c, err := Binomial(rem, k)
		if err != nil {
			return 0, err
		}
		hi, lo := bits64Mul(result, c)
		if hi != 0 {
			return 0, fmt.Errorf("combin: multinomial %v overflows int64", ks)
		}
		result = lo
		rem -= k
	}
	return result, nil
}
