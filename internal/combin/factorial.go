package combin

import (
	"fmt"
	"math"
	"math/big"
)

// MaxFactorial64 is the largest n for which n! fits in an int64.
const MaxFactorial64 = 20

// factorialTable caches 0! through 20!, the full range representable in int64.
var factorialTable = func() [MaxFactorial64 + 1]int64 {
	var t [MaxFactorial64 + 1]int64
	t[0] = 1
	for i := 1; i <= MaxFactorial64; i++ {
		t[i] = t[i-1] * int64(i)
	}
	return t
}()

// Factorial returns n! as an int64.
// It returns an error if n is negative or if n! overflows int64 (n > 20).
func Factorial(n int) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("combin: factorial of negative %d", n)
	}
	if n > MaxFactorial64 {
		return 0, fmt.Errorf("combin: %d! overflows int64 (max n is %d)", n, MaxFactorial64)
	}
	return factorialTable[n], nil
}

// MustFactorial returns n! as an int64 and panics on invalid input.
// It is intended for callers that have already validated 0 <= n <= 20,
// such as table initialisation in tests.
func MustFactorial(n int) int64 {
	v, err := Factorial(n)
	if err != nil {
		panic(err)
	}
	return v
}

// FactorialBig returns n! as an exact big integer.
// It returns an error if n is negative.
func FactorialBig(n int) (*big.Int, error) {
	if n < 0 {
		return nil, fmt.Errorf("combin: factorial of negative %d", n)
	}
	return new(big.Int).MulRange(1, int64(n)), nil
}

// FactorialFloat returns n! as a float64, computed through the log-gamma
// function so that it degrades gracefully (to +Inf) instead of overflowing
// intermediate arithmetic. For n <= 20 the value is exact.
func FactorialFloat(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("combin: factorial of negative %d", n)
	}
	if n <= MaxFactorial64 {
		return float64(factorialTable[n]), nil
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return math.Exp(lg), nil
}

// LogFactorial returns ln(n!). It returns an error if n is negative.
func LogFactorial(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("combin: factorial of negative %d", n)
	}
	if n <= MaxFactorial64 {
		return math.Log(float64(factorialTable[n])), nil
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg, nil
}

// InvFactorialRat returns 1/n! as an exact rational.
// It returns an error if n is negative.
func InvFactorialRat(n int) (*big.Rat, error) {
	f, err := FactorialBig(n)
	if err != nil {
		return nil, err
	}
	return new(big.Rat).SetFrac(big.NewInt(1), f), nil
}
