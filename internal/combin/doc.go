// Package combin provides the combinatorial substrate used throughout the
// reproduction of Georgiades, Mavronicolas and Spirakis, "Optimal, Distributed
// Decision-Making: The Case of No Communication" (FCT 1999).
//
// The paper's central tool is the principle of inclusion-exclusion applied to
// sums over subsets of {1, ..., m} (Proposition 2.2 and its corollaries).
// This package supplies the pieces those formulas are assembled from:
//
//   - exact factorials and binomial coefficients in three numeric domains
//     (overflow-checked int64, math/big exact integers, and float64),
//   - iteration over fixed-size and arbitrary subsets, including a Gray-code
//     enumeration that changes one element at a time,
//   - compensated (Neumaier) floating-point summation for the alternating
//     series the inclusion-exclusion formulas produce, and
//   - a generic signed subset-sum engine that evaluates inclusion-exclusion
//     expressions of the form Σ_I (-1)^|I| f(I) over guarded subsets I.
//
// Everything here is deterministic, allocation-conscious and safe for
// concurrent use; none of the functions retain references to caller slices.
package combin
