package combin

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestFactorialSmallValues(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800}
	for n, w := range want {
		got, err := Factorial(n)
		if err != nil {
			t.Fatalf("Factorial(%d): unexpected error: %v", n, err)
		}
		if got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestFactorialMaxValue(t *testing.T) {
	got, err := Factorial(20)
	if err != nil {
		t.Fatalf("Factorial(20): %v", err)
	}
	const want = 2432902008176640000
	if got != want {
		t.Errorf("Factorial(20) = %d, want %d", got, want)
	}
}

func TestFactorialNegative(t *testing.T) {
	if _, err := Factorial(-1); err == nil {
		t.Error("Factorial(-1): expected error, got nil")
	}
}

func TestFactorialOverflow(t *testing.T) {
	if _, err := Factorial(21); err == nil {
		t.Error("Factorial(21): expected overflow error, got nil")
	}
}

func TestMustFactorialPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFactorial(-1) did not panic")
		}
	}()
	MustFactorial(-1)
}

func TestFactorialBigMatchesInt64(t *testing.T) {
	for n := 0; n <= MaxFactorial64; n++ {
		b, err := FactorialBig(n)
		if err != nil {
			t.Fatalf("FactorialBig(%d): %v", n, err)
		}
		if !b.IsInt64() || b.Int64() != MustFactorial(n) {
			t.Errorf("FactorialBig(%d) = %v, want %d", n, b, MustFactorial(n))
		}
	}
}

func TestFactorialBigRecurrence(t *testing.T) {
	prev := big.NewInt(1)
	for n := 1; n <= 60; n++ {
		cur, err := FactorialBig(n)
		if err != nil {
			t.Fatalf("FactorialBig(%d): %v", n, err)
		}
		want := new(big.Int).Mul(prev, big.NewInt(int64(n)))
		if cur.Cmp(want) != 0 {
			t.Fatalf("FactorialBig(%d) = %v, want n*(n-1)! = %v", n, cur, want)
		}
		prev = cur
	}
}

func TestFactorialBigNegative(t *testing.T) {
	if _, err := FactorialBig(-3); err == nil {
		t.Error("FactorialBig(-3): expected error, got nil")
	}
}

func TestFactorialFloatExactRange(t *testing.T) {
	for n := 0; n <= MaxFactorial64; n++ {
		got, err := FactorialFloat(n)
		if err != nil {
			t.Fatalf("FactorialFloat(%d): %v", n, err)
		}
		if got != float64(MustFactorial(n)) {
			t.Errorf("FactorialFloat(%d) = %g, want %d exactly", n, got, MustFactorial(n))
		}
	}
}

func TestFactorialFloatLarge(t *testing.T) {
	got, err := FactorialFloat(25)
	if err != nil {
		t.Fatalf("FactorialFloat(25): %v", err)
	}
	want, _ := new(big.Float).SetInt(new(big.Int).MulRange(1, 25)).Float64()
	if rel := math.Abs(got-want) / want; rel > 1e-12 {
		t.Errorf("FactorialFloat(25) = %g, want %g (rel err %g)", got, want, rel)
	}
}

func TestFactorialFloatNegative(t *testing.T) {
	if _, err := FactorialFloat(-1); err == nil {
		t.Error("FactorialFloat(-1): expected error, got nil")
	}
}

func TestLogFactorialConsistency(t *testing.T) {
	for _, n := range []int{0, 1, 5, 20, 50, 170} {
		lf, err := LogFactorial(n)
		if err != nil {
			t.Fatalf("LogFactorial(%d): %v", n, err)
		}
		exact, err := FactorialBig(n)
		if err != nil {
			t.Fatalf("FactorialBig(%d): %v", n, err)
		}
		wantLog := logBig(exact)
		if math.Abs(lf-wantLog) > 1e-9*math.Max(1, wantLog) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, lf, wantLog)
		}
	}
}

func TestLogFactorialNegative(t *testing.T) {
	if _, err := LogFactorial(-1); err == nil {
		t.Error("LogFactorial(-1): expected error, got nil")
	}
}

func logBig(x *big.Int) float64 {
	f := new(big.Float).SetInt(x)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m, _ := mant.Float64()
	return math.Log(m) + float64(exp)*math.Ln2
}

func TestInvFactorialRat(t *testing.T) {
	for n := 0; n <= 10; n++ {
		inv, err := InvFactorialRat(n)
		if err != nil {
			t.Fatalf("InvFactorialRat(%d): %v", n, err)
		}
		prod := new(big.Rat).Mul(inv, new(big.Rat).SetInt64(MustFactorial(n)))
		if prod.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("InvFactorialRat(%d) * %d! = %v, want 1", n, n, prod)
		}
	}
	if _, err := InvFactorialRat(-1); err == nil {
		t.Error("InvFactorialRat(-1): expected error, got nil")
	}
}

func TestFactorialRatioIsBinomialProperty(t *testing.T) {
	// Property: n! / (k!(n-k)!) equals Binomial(n, k) for all 0<=k<=n<=20.
	f := func(a, b uint8) bool {
		n := int(a % 21)
		k := int(b % 21)
		if k > n {
			return true
		}
		nf := MustFactorial(n)
		kf := MustFactorial(k)
		nkf := MustFactorial(n - k)
		return nf/(kf*nkf) == MustBinomial(n, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
