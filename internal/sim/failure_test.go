package sim

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/model"
)

var errInjected = errors.New("injected decision fault")

// failingRule fails on every decision, exercising the engine's error
// propagation across workers.
type failingRule struct{}

func (failingRule) Decide(float64, *rand.Rand) (model.Bin, error) {
	return 0, errInjected
}

// partiallyFailingRule fails only on inputs above its trigger point,
// modelling a rare fault that must still surface.
type partiallyFailingRule struct {
	trigger float64
}

func (r partiallyFailingRule) Decide(input float64, _ *rand.Rand) (model.Bin, error) {
	if input > r.trigger {
		return 0, errInjected
	}
	if input <= 0.5 {
		return model.Bin0, nil
	}
	return model.Bin1, nil
}

func TestWinProbabilityPropagatesRuleErrors(t *testing.T) {
	bad := failingRule{}
	sys, err := model.NewSystem([]model.LocalRule{bad, bad, bad}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = WinProbability(sys, Config{Trials: 1000, Workers: 4, Seed: 1})
	if err == nil {
		t.Fatal("expected the injected fault to surface")
	}
	if !errors.Is(err, errInjected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "trial failed") {
		t.Errorf("error lacks simulation context: %v", err)
	}
}

func TestLoadStatsPropagatesRuleErrors(t *testing.T) {
	bad := failingRule{}
	sys, err := model.NewSystem([]model.LocalRule{bad, bad}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadStats(sys, Config{Trials: 100, Workers: 2, Seed: 1}, func(model.Outcome) float64 { return 0 })
	if err == nil {
		t.Fatal("expected the injected fault to surface")
	}
	if !errors.Is(err, errInjected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
}

func TestPartialFaultStillFails(t *testing.T) {
	// Only one player's rule is faulty, and only for inputs above 0.99
	// (about 1% of decisions): the engine must still detect it rather
	// than silently skipping trials.
	good, err := model.NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	partial := partiallyFailingRule{trigger: 0.99}
	sys, err := model.NewSystem([]model.LocalRule{good, good, partial}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = WinProbability(sys, Config{Trials: 5000, Workers: 3, Seed: 2})
	if err == nil {
		t.Fatal("expected the rare injected fault to surface within 5000 trials")
	}
	if !errors.Is(err, errInjected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
}
