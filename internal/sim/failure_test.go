package sim

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
)

var errInjected = errors.New("injected decision fault")

// failingRule fails on every decision, exercising the engine's error
// propagation across workers.
type failingRule struct{}

func (failingRule) Decide(float64, *rand.Rand) (model.Bin, error) {
	return 0, errInjected
}

// partiallyFailingRule fails only on inputs above its trigger point,
// modelling a rare fault that must still surface.
type partiallyFailingRule struct {
	trigger float64
}

func (r partiallyFailingRule) Decide(input float64, _ *rand.Rand) (model.Bin, error) {
	if input > r.trigger {
		return 0, errInjected
	}
	if input <= 0.5 {
		return model.Bin0, nil
	}
	return model.Bin1, nil
}

func TestWinProbabilityPropagatesRuleErrors(t *testing.T) {
	bad := failingRule{}
	sys, err := model.NewSystem([]model.LocalRule{bad, bad, bad}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = WinProbability(sys, Config{Trials: 1000, Workers: 4, Seed: 1})
	if err == nil {
		t.Fatal("expected the injected fault to surface")
	}
	if !errors.Is(err, errInjected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	if !errors.Is(err, ErrRuleFailed) {
		t.Errorf("error not classified as ErrRuleFailed: %v", err)
	}
	if !strings.Contains(err.Error(), "trial failed") {
		t.Errorf("error lacks simulation context: %v", err)
	}
}

func TestLoadStatsPropagatesRuleErrors(t *testing.T) {
	bad := failingRule{}
	sys, err := model.NewSystem([]model.LocalRule{bad, bad}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadStats(sys, Config{Trials: 100, Workers: 2, Seed: 1}, func(model.Outcome) float64 { return 0 })
	if err == nil {
		t.Fatal("expected the injected fault to surface")
	}
	if !errors.Is(err, errInjected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	if !errors.Is(err, ErrRuleFailed) {
		t.Errorf("error not classified as ErrRuleFailed: %v", err)
	}
}

func TestPartialFaultStillFails(t *testing.T) {
	// Only one player's rule is faulty, and only for inputs above 0.99
	// (about 1% of decisions): the engine must still detect it rather
	// than silently skipping trials.
	good, err := model.NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	partial := partiallyFailingRule{trigger: 0.99}
	sys, err := model.NewSystem([]model.LocalRule{good, good, partial}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = WinProbability(sys, Config{Trials: 5000, Workers: 3, Seed: 2})
	if err == nil {
		t.Fatal("expected the rare injected fault to surface within 5000 trials")
	}
	if !errors.Is(err, errInjected) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	if !errors.Is(err, ErrRuleFailed) {
		t.Errorf("error not classified as ErrRuleFailed: %v", err)
	}
}

// TestObservedFailureEmitsErrorEvent checks that with observability on, a
// rule fault is classified, logged to the event sink, and counted.
func TestObservedFailureEmitsErrorEvent(t *testing.T) {
	bad := failingRule{}
	sys, err := model.NewSystem([]model.LocalRule{bad, bad}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
	_, err = WinProbability(sys, Config{Trials: 100, Workers: 2, Seed: 1, Obs: o})
	if !errors.Is(err, ErrRuleFailed) {
		t.Fatalf("expected ErrRuleFailed, got %v", err)
	}
	if got := o.Counter("errors.sim.trial").Value(); got != 1 {
		t.Errorf("errors.sim.trial = %d, want 1", got)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev.Type == obs.EventError && strings.Contains(ev.Msg, "injected decision fault") {
			found = true
		}
	}
	if !found {
		t.Error("no error event with the injected cause in the run log")
	}
}
