// Package sim is the Monte-Carlo engine used to validate every analytic
// result in the reproduction: it estimates winning probabilities of
// arbitrary decision systems (Theorems 4.1 and 5.1), the omniscient
// feasibility upper bound, and sample statistics of bin loads, with
// deterministic seeding and parallel workers.
package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrRuleFailed classifies simulation failures caused by a player's rule
// (or input sampler) returning an error mid-trial, as opposed to invalid
// configuration. Callers and the observability event sink use
// errors.Is(err, ErrRuleFailed) to tell the two apart; the original cause
// stays in the chain.
var ErrRuleFailed = errors.New("trial failed")

// defaultCheckpoints is the number of convergence checkpoints emitted per
// run when Config.CheckpointEvery is left zero.
const defaultCheckpoints = 20

// Config controls a simulation run.
type Config struct {
	// Trials is the total number of rounds to play. Must be positive.
	Trials int
	// Workers is the number of parallel workers; 0 selects GOMAXPROCS.
	// Results are deterministic for a fixed (Seed, Workers) pair: each
	// worker owns an independent, seeded PCG stream.
	Workers int
	// Seed seeds the per-worker random streams.
	Seed uint64
	// Obs optionally instruments the run: sim.trials / sim.wins /
	// sim.rng_draws counters, per-worker throughput gauges, nested
	// run → worker spans, and a convergence checkpoint trace. A nil
	// Observer keeps the hot loop exactly as fast as the uninstrumented
	// engine (a single branch per run, not per trial).
	Obs *obs.Observer
	// CheckpointEvery emits one convergence checkpoint (running estimate
	// + Wilson CI) every k trials when Obs is enabled. 0 picks
	// Trials/defaultCheckpoints; ignored without Obs.
	CheckpointEvery int
}

func (c Config) validate() (Config, error) {
	if c.Trials <= 0 {
		return c, fmt.Errorf("sim: trial count %d must be positive", c.Trials)
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("sim: checkpoint interval %d must be non-negative", c.CheckpointEvery)
	}
	w, err := WorkerCount(c.Workers, c.Trials)
	if err != nil {
		return c, err
	}
	c.Workers = w
	return c, nil
}

// WorkerCount resolves a requested parallel worker count against the
// repo-wide policy: 0 selects the default of runtime.GOMAXPROCS(0),
// negative counts are rejected, and a positive jobs bound clamps the count
// so no worker sits idle (jobs ≤ 0 means "unbounded"). Every parallel
// fan-out — sim.Config, py91.Evaluate, engine.Sweep, and the CLI -workers
// flags — routes through this one helper so defaulting and clamping cannot
// drift between layers again.
func WorkerCount(requested, jobs int) (int, error) {
	if requested < 0 {
		return 0, fmt.Errorf("sim: worker count %d must be non-negative", requested)
	}
	w := requested
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if jobs > 0 && w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w, nil
}

// workerSource derives worker w's independent random stream.
func (c Config) workerSource(w int) rand.Source {
	// SplitMix-style stream separation: distinct, well-mixed PCG seeds.
	s := c.Seed + 0x9e3779b97f4a7c15*uint64(w+1)
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	return rand.NewPCG(s, s^0x94d049bb133111eb)
}

func (c Config) workerRNG(w int) *rand.Rand {
	return rand.New(c.workerSource(w))
}

// countingSource wraps a rand.Source to count draws for the sim.rng_draws
// counter; it is only interposed when observability is enabled, so the
// plain path never pays the indirection.
type countingSource struct {
	src rand.Source
	n   int64
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Result summarizes a Bernoulli estimate (winning or feasibility
// probability).
type Result struct {
	// P is the estimated probability.
	P float64
	// StdErr is the binomial standard error.
	StdErr float64
	// CILo and CIHi bound the 95% Wilson confidence interval.
	CILo, CIHi float64
	// Wins and Trials are the raw counts.
	Wins, Trials int64
}

func resultFrom(p stats.Proportion) (Result, error) {
	lo, hi, err := p.WilsonCI(1.96)
	if err != nil {
		return Result{}, err
	}
	return Result{
		P:      p.Estimate(),
		StdErr: p.StdErr(),
		CILo:   lo,
		CIHi:   hi,
		Wins:   p.Successes(),
		Trials: p.Trials(),
	}, nil
}

// trialFunc plays one round and reports success.
type trialFunc func(rng *rand.Rand) (bool, error)

// wrapTrialErr classifies a mid-trial failure under ErrRuleFailed while
// keeping the cause in the chain.
func wrapTrialErr(err error) error {
	return fmt.Errorf("sim: %w: %w", ErrRuleFailed, err)
}

// runBernoulli fans trials out over workers and merges the counts. The
// name labels the run's root span when observability is on.
func runBernoulli(cfg Config, name string, trial trialFunc) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	if cfg.Obs.Enabled() {
		return runBernoulliObserved(cfg, name, trial)
	}
	counters := make([]stats.Proportion, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	base := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			rng := cfg.workerRNG(w)
			for i := 0; i < quota; i++ {
				ok, err := trial(rng)
				if err != nil {
					errs[w] = err
					return
				}
				counters[w].Add(ok)
			}
		}(w, quota)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, wrapTrialErr(err)
		}
	}
	var total stats.Proportion
	for _, c := range counters {
		total.Merge(c)
	}
	return resultFrom(total)
}

// runBernoulliObserved is the instrumented twin of runBernoulli's fan-out:
// same seeding, same per-worker quotas (so results are bit-identical with
// and without observability), plus a root span with one child span per
// worker, RNG-draw accounting, per-worker throughput gauges, and a
// convergence checkpoint trace emitted every cfg.CheckpointEvery trials.
func runBernoulliObserved(cfg Config, name string, trial trialFunc) (Result, error) {
	o := cfg.Obs
	root := o.StartSpan("sim." + name)
	defer root.End()

	every := int64(cfg.CheckpointEvery)
	if every == 0 {
		every = int64(cfg.Trials / defaultCheckpoints)
		if every < 1 {
			every = 1
		}
	}
	var liveTrials, liveWins, rngDraws atomic.Int64
	estHist := o.Histogram("sim.estimate", 0, 1, 20)

	counters := make([]stats.Proportion, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	base := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			sp := root.Child(fmt.Sprintf("worker[%d]", w))
			defer sp.End()
			src := &countingSource{src: cfg.workerSource(w)}
			rng := rand.New(src)
			start := time.Now()
			done := 0
			for i := 0; i < quota; i++ {
				ok, err := trial(rng)
				if err != nil {
					errs[w] = err
					break
				}
				counters[w].Add(ok)
				done++
				if ok {
					liveWins.Add(1)
				}
				if nt := liveTrials.Add(1); nt%every == 0 {
					emitCheckpoint(o, liveWins.Load(), nt, estHist)
				}
			}
			rngDraws.Add(src.n)
			if el := time.Since(start).Seconds(); el > 0 && done > 0 {
				o.Gauge(fmt.Sprintf("sim.worker.%d.trials_per_sec", w)).Set(float64(done) / el)
			}
		}(w, quota)
	}
	wg.Wait()

	o.Counter("sim.runs").Inc()
	o.Counter("sim.rng_draws").Add(rngDraws.Load())
	var total stats.Proportion
	for _, c := range counters {
		total.Merge(c)
	}
	o.Counter("sim.trials").Add(total.Trials())
	o.Counter("sim.wins").Add(total.Successes())
	for _, err := range errs {
		if err != nil {
			err = wrapTrialErr(err)
			o.EmitError("sim.trial", err)
			return Result{}, err
		}
	}
	return resultFrom(total)
}

// emitCheckpoint records one point of the convergence trace: the running
// estimate with its Wilson interval at nt trials. Counter reads race
// benignly with concurrent workers (the trace is diagnostic, the final
// Result is exact), so the win count is clamped into [0, nt].
func emitCheckpoint(o *obs.Observer, wins, nt int64, estHist *obs.Histogram) {
	if wins > nt {
		wins = nt
	}
	var p stats.Proportion
	if err := p.AddN(wins, nt); err != nil {
		return
	}
	est := p.Estimate()
	lo, hi, err := p.WilsonCI(1.96)
	if err != nil {
		return
	}
	estHist.Observe(est)
	o.Emit(obs.Event{
		Type: obs.EventCheckpoint,
		Name: "sim.convergence",
		Attrs: map[string]float64{
			"trials":   float64(nt),
			"wins":     float64(wins),
			"estimate": est,
			"ci_lo":    lo,
			"ci_hi":    hi,
		},
	})
}

// WinProbability estimates the winning probability P_A(δ) of the system by
// playing cfg.Trials independent rounds.
func WinProbability(sys *model.System, cfg Config) (Result, error) {
	if sys == nil {
		return Result{}, fmt.Errorf("sim: nil system")
	}
	return runBernoulli(cfg, "win_probability", func(rng *rand.Rand) (bool, error) {
		inputs, err := sys.SampleInputs(rng)
		if err != nil {
			return false, err
		}
		out, err := sys.Play(inputs, rng)
		if err != nil {
			return false, err
		}
		return out.Win, nil
	})
}

// FeasibilityProbability estimates the probability that SOME assignment of
// n uniform inputs to the two bins keeps both within capacity — the
// omniscient full-information benchmark that upper-bounds every distributed
// algorithm.
func FeasibilityProbability(n int, capacity float64, cfg Config) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("sim: need at least 1 player, got %d", n)
	}
	if n > 30 {
		return Result{}, fmt.Errorf("sim: feasibility limited to 30 players, got %d", n)
	}
	if !(capacity > 0) {
		return Result{}, fmt.Errorf("sim: capacity %v must be strictly positive", capacity)
	}
	return runBernoulli(cfg, "feasibility", func(rng *rand.Rand) (bool, error) {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		return model.FeasibleAssignmentExists(inputs, capacity)
	})
}

// LoadStats simulates the system and returns running statistics of the
// value extracted from each outcome by metric (for example the bin-0 load
// or the maximum load).
func LoadStats(sys *model.System, cfg Config, metric func(model.Outcome) float64) (stats.Running, error) {
	if sys == nil {
		return stats.Running{}, fmt.Errorf("sim: nil system")
	}
	if metric == nil {
		return stats.Running{}, fmt.Errorf("sim: nil metric")
	}
	cfg, err := cfg.validate()
	if err != nil {
		return stats.Running{}, err
	}
	root := cfg.Obs.StartSpan("sim.load_stats")
	defer root.End()
	accs := make([]stats.Running, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	base := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			rng := cfg.workerRNG(w)
			for i := 0; i < quota; i++ {
				inputs, err := sys.SampleInputs(rng)
				if err != nil {
					errs[w] = err
					return
				}
				out, err := sys.Play(inputs, rng)
				if err != nil {
					errs[w] = err
					return
				}
				accs[w].Add(metric(out))
			}
		}(w, quota)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			err = wrapTrialErr(err)
			cfg.Obs.EmitError("sim.trial", err)
			return stats.Running{}, err
		}
	}
	var total stats.Running
	for _, a := range accs {
		total.Merge(a)
	}
	cfg.Obs.Counter("sim.trials").Add(total.N())
	return total, nil
}

// Bernoulli estimates the success probability of an arbitrary trial
// function by playing cfg.Trials independent rounds across seeded parallel
// workers — the same deterministic fan-out that backs WinProbability and
// FeasibilityProbability, exported so higher layers (the evaluation engine,
// protocol simulators) can run custom trials without re-implementing the
// worker pool. name labels the run's root span when observability is on.
func Bernoulli(cfg Config, name string, trial func(rng *rand.Rand) (bool, error)) (Result, error) {
	if trial == nil {
		return Result{}, fmt.Errorf("sim: nil trial function")
	}
	if name == "" {
		name = "bernoulli"
	}
	return runBernoulli(cfg, name, trial)
}
