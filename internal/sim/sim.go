// Package sim is the Monte-Carlo engine used to validate every analytic
// result in the reproduction: it estimates winning probabilities of
// arbitrary decision systems (Theorems 4.1 and 5.1), the omniscient
// feasibility upper bound, and sample statistics of bin loads, with
// deterministic seeding and parallel workers.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/stats"
)

// ErrRuleFailed classifies simulation failures caused by a player's rule
// (or input sampler) returning an error mid-trial, as opposed to invalid
// configuration. Callers and the observability event sink use
// errors.Is(err, ErrRuleFailed) to tell the two apart; the original cause
// stays in the chain.
var ErrRuleFailed = errors.New("trial failed")

// defaultCheckpoints is the number of convergence checkpoints emitted per
// run when Config.CheckpointEvery is left zero.
const defaultCheckpoints = 20

// batchSize is how many trials the batched kernel samples and plays per
// iteration. Large enough to amortize the per-batch bookkeeping, small
// enough that the scratch buffers stay L1/L2-resident for the paper's
// player counts.
const batchSize = 256

// Config controls a simulation run.
type Config struct {
	// Trials is the total number of rounds to play. Must be positive.
	Trials int
	// Workers is the number of parallel workers; 0 selects GOMAXPROCS.
	// Results are deterministic for a fixed (Seed, Workers) pair: each
	// worker owns an independent, seeded PCG stream.
	Workers int
	// Seed seeds the per-worker random streams.
	Seed uint64
	// Obs optionally instruments the run: sim.trials / sim.wins /
	// sim.rng_draws counters, per-worker throughput gauges, nested
	// run → worker spans, and a convergence checkpoint trace. A nil
	// Observer keeps the hot loop exactly as fast as the uninstrumented
	// engine (a single branch per run, not per trial).
	Obs *obs.Observer
	// CheckpointEvery emits one convergence checkpoint (running estimate
	// + Wilson CI) every k trials when Obs is enabled. 0 picks
	// Trials/defaultCheckpoints; ignored without Obs.
	CheckpointEvery int
	// Replicates is the number of independently scrambled randomizations
	// the quasi-Monte-Carlo path (WinProbabilityQMC) averages to form its
	// estimate and standard error; 0 selects DefaultReplicates. Ignored by
	// the pseudo-random paths.
	Replicates int
}

func (c Config) validate() (Config, error) {
	if c.Trials <= 0 {
		return c, fmt.Errorf("sim: trial count %d must be positive", c.Trials)
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("sim: checkpoint interval %d must be non-negative", c.CheckpointEvery)
	}
	w, err := WorkerCount(c.Workers, c.Trials)
	if err != nil {
		return c, err
	}
	c.Workers = w
	return c, nil
}

// WorkerCount resolves a requested parallel worker count against the
// repo-wide policy: 0 selects the default of runtime.GOMAXPROCS(0),
// negative counts are rejected, and a positive jobs bound clamps the count
// so no worker sits idle (jobs ≤ 0 means "unbounded"). Every parallel
// fan-out — sim.Config, py91.Evaluate, engine.Sweep, and the CLI -workers
// flags — routes through this one helper so defaulting and clamping cannot
// drift between layers again.
func WorkerCount(requested, jobs int) (int, error) {
	if requested < 0 {
		return 0, fmt.Errorf("sim: worker count %d must be non-negative", requested)
	}
	w := requested
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if jobs > 0 && w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w, nil
}

// workerSource derives worker w's independent random stream.
func (c Config) workerSource(w int) rand.Source {
	// SplitMix-style stream separation: distinct, well-mixed PCG seeds.
	s := c.Seed + 0x9e3779b97f4a7c15*uint64(w+1)
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	return rand.NewPCG(s, s^0x94d049bb133111eb)
}

func (c Config) workerRNG(w int) *rand.Rand {
	return rand.New(c.workerSource(w))
}

// countingSource wraps a rand.Source to count draws for the sim.rng_draws
// counter; it is only interposed when observability is enabled, so the
// plain path never pays the indirection.
type countingSource struct {
	src rand.Source
	n   int64
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Result summarizes a Bernoulli estimate (winning or feasibility
// probability).
type Result struct {
	// P is the estimated probability.
	P float64
	// StdErr is the binomial standard error on the pseudo-random paths,
	// or the randomized-replicate standard error on the QMC path.
	StdErr float64
	// CILo and CIHi bound the 95% confidence interval: Wilson for the
	// pseudo-random paths, Student-t over replicate means for QMC.
	CILo, CIHi float64
	// Wins and Trials are the raw counts.
	Wins, Trials int64
	// Replicates is the number of QMC randomizations averaged; 0 on the
	// pseudo-random paths.
	Replicates int
}

func resultFrom(p stats.Proportion) (Result, error) {
	lo, hi, err := p.WilsonCI(1.96)
	if err != nil {
		return Result{}, err
	}
	return Result{
		P:      p.Estimate(),
		StdErr: p.StdErr(),
		CILo:   lo,
		CIHi:   hi,
		Wins:   p.Successes(),
		Trials: p.Trials(),
	}, nil
}

// trialFunc plays one round and reports success.
type trialFunc func(rng *rand.Rand) (bool, error)

// trialFactory builds worker w's trial function. It runs inside the
// worker goroutine, so the returned closure may own scratch buffers
// (input vectors, reusable Outcomes) without any cross-worker sharing.
type trialFactory func(w int) trialFunc

// wrapTrialErr classifies a mid-trial failure under ErrRuleFailed while
// keeping the cause in the chain.
func wrapTrialErr(err error) error {
	return fmt.Errorf("sim: %w: %w", ErrRuleFailed, err)
}

// runLabeled runs a worker body under a pprof goroutine label so
// -cpuprofile output attributes hot-loop samples per sim worker.
func runLabeled(w int, body func()) {
	pprof.Do(context.Background(), pprof.Labels("sim_worker", strconv.Itoa(w)), func(context.Context) {
		body()
	})
}

// splitQuota returns worker w's share of the trial budget.
func splitQuota(trials, workers, w int) int {
	quota := trials / workers
	if w < trials%workers {
		quota++
	}
	return quota
}

// runBernoulli fans per-trial rounds out over workers and merges the
// counts. The name labels the run's root span when observability is on.
// This is the generic path: the batched kernel in runBatch handles
// systems whose rules all implement model.BatchRule.
func runBernoulli(cfg Config, name string, newTrial trialFactory) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	if cfg.Obs.Enabled() {
		return runBernoulliObserved(cfg, name, newTrial)
	}
	counters := make([]stats.Proportion, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			runLabeled(w, func() {
				trial := newTrial(w)
				rng := cfg.workerRNG(w)
				for i := 0; i < quota; i++ {
					ok, err := trial(rng)
					if err != nil {
						errs[w] = err
						return
					}
					counters[w].Add(ok)
				}
			})
		}(w, splitQuota(cfg.Trials, cfg.Workers, w))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, wrapTrialErr(err)
		}
	}
	var total stats.Proportion
	for _, c := range counters {
		total.Merge(c)
	}
	return resultFrom(total)
}

// runBernoulliObserved is the instrumented twin of runBernoulli's fan-out:
// same seeding, same per-worker quotas (so results are bit-identical with
// and without observability), plus a root span with one child span per
// worker, RNG-draw accounting, per-worker throughput gauges, and a
// convergence checkpoint trace emitted every cfg.CheckpointEvery trials.
func runBernoulliObserved(cfg Config, name string, newTrial trialFactory) (Result, error) {
	o := cfg.Obs
	root := o.StartSpan("sim." + name)
	defer root.End()

	ck := newCheckpointer(cfg, o)
	counters := make([]stats.Proportion, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var rngDraws atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			runLabeled(w, func() {
				sp := root.Child(fmt.Sprintf("worker[%d]", w))
				defer sp.End()
				trial := newTrial(w)
				src := &countingSource{src: cfg.workerSource(w)}
				rng := rand.New(src)
				start := time.Now()
				done := 0
				for i := 0; i < quota; i++ {
					ok, err := trial(rng)
					if err != nil {
						errs[w] = err
						break
					}
					counters[w].Add(ok)
					done++
					ck.record(ok)
				}
				rngDraws.Add(src.n)
				if el := time.Since(start).Seconds(); el > 0 && done > 0 {
					o.Gauge(fmt.Sprintf("sim.worker.%d.trials_per_sec", w)).Set(float64(done) / el)
				}
			})
		}(w, splitQuota(cfg.Trials, cfg.Workers, w))
	}
	wg.Wait()
	return finishObserved(o, counters, errs, rngDraws.Load())
}

// checkpointer carries the shared convergence-trace state of an observed
// run: atomic live counts and the checkpoint cadence. Both the per-trial
// and the batched observed paths record through it trial by trial, so the
// checkpoint stream is identical between them.
type checkpointer struct {
	o          *obs.Observer
	every      int64
	estHist    *obs.Histogram
	liveTrials atomic.Int64
	liveWins   atomic.Int64
}

func newCheckpointer(cfg Config, o *obs.Observer) *checkpointer {
	every := int64(cfg.CheckpointEvery)
	if every == 0 {
		every = int64(cfg.Trials / defaultCheckpoints)
		if every < 1 {
			every = 1
		}
	}
	return &checkpointer{o: o, every: every, estHist: o.Histogram("sim.estimate", 0, 1, 20)}
}

// record accounts one finished trial and emits a checkpoint whenever the
// global trial count crosses a cadence boundary.
func (c *checkpointer) record(win bool) {
	if win {
		c.liveWins.Add(1)
	}
	if nt := c.liveTrials.Add(1); nt%c.every == 0 {
		emitCheckpoint(c.o, c.liveWins.Load(), nt, c.estHist)
	}
}

// finishObserved merges worker counters into the final observed Result
// and flushes the run-level counters.
func finishObserved(o *obs.Observer, counters []stats.Proportion, errs []error, rngDraws int64) (Result, error) {
	o.Counter("sim.runs").Inc()
	o.Counter("sim.rng_draws").Add(rngDraws)
	var total stats.Proportion
	for _, c := range counters {
		total.Merge(c)
	}
	o.Counter("sim.trials").Add(total.Trials())
	o.Counter("sim.wins").Add(total.Successes())
	for _, err := range errs {
		if err != nil {
			err = wrapTrialErr(err)
			o.EmitError("sim.trial", err)
			return Result{}, err
		}
	}
	return resultFrom(total)
}

// runBatch is the allocation-free fast path: each worker samples and
// plays batchSize trials per kernel call from pooled scratch buffers —
// no per-trial slices, no per-player interface dispatch. Seeding and
// per-worker quotas match runBernoulli exactly, and the kernel preserves
// the per-trial RNG draw order, so results are bit-identical to the
// per-trial path for a fixed (Seed, Workers) pair.
func runBatch(cfg Config, name string, k *model.BatchKernel) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	if cfg.Obs.Enabled() {
		return runBatchObserved(cfg, name, k)
	}
	if cfg.Workers == 1 {
		// Single-worker runs skip the fan-out scaffolding (WaitGroup,
		// goroutine closure, per-worker slices). Seeding and quota are the
		// worker-0 values of the general path, so results stay
		// bit-identical to a one-goroutine fan-out.
		var total stats.Proportion
		runLabeled(0, func() {
			err = batchWorker(cfg, k, 0, cfg.Trials, &total)
		})
		if err != nil {
			return Result{}, err
		}
		return resultFrom(total)
	}
	counters := make([]stats.Proportion, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			runLabeled(w, func() {
				errs[w] = batchWorker(cfg, k, w, quota, &counters[w])
			})
		}(w, splitQuota(cfg.Trials, cfg.Workers, w))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	var total stats.Proportion
	for _, c := range counters {
		total.Merge(c)
	}
	return resultFrom(total)
}

// batchWorker plays worker w's quota of trials through the kernel from
// pooled scratch, accumulating wins into out. It is the shared body of
// runBatch's inline single-worker path and its goroutine fan-out.
func batchWorker(cfg Config, k *model.BatchKernel, w, quota int, out *stats.Proportion) error {
	src := cfg.workerSource(w)
	sc := model.GetBatchScratch()
	defer sc.Release()
	var wins, trials int64
	for done := 0; done < quota; {
		b := batchSize
		if quota-done < b {
			b = quota - done
		}
		wins += int64(k.PlaySrc(sc, src, b))
		trials += int64(b)
		done += b
	}
	return out.AddN(wins, trials)
}

// runBatchObserved is the instrumented twin of runBatch: worker counters
// update at batch granularity, while the convergence checkpointer replays
// the batch's per-trial win flags so the checkpoint stream (cadence and
// values) is identical to the per-trial observed path.
func runBatchObserved(cfg Config, name string, k *model.BatchKernel) (Result, error) {
	o := cfg.Obs
	root := o.StartSpan("sim." + name)
	defer root.End()

	ck := newCheckpointer(cfg, o)
	counters := make([]stats.Proportion, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var rngDraws atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			runLabeled(w, func() {
				sp := root.Child(fmt.Sprintf("worker[%d]", w))
				defer sp.End()
				src := &countingSource{src: cfg.workerSource(w)}
				sc := model.GetBatchScratch()
				defer sc.Release()
				start := time.Now()
				var wins, trials int64
				for done := 0; done < quota; {
					b := batchSize
					if quota-done < b {
						b = quota - done
					}
					wins += int64(k.PlaySrc(sc, src, b))
					trials += int64(b)
					done += b
					for _, win := range sc.Wins()[:b] {
						ck.record(win)
					}
				}
				errs[w] = counters[w].AddN(wins, trials)
				rngDraws.Add(src.n)
				if el := time.Since(start).Seconds(); el > 0 && trials > 0 {
					o.Gauge(fmt.Sprintf("sim.worker.%d.trials_per_sec", w)).Set(float64(trials) / el)
				}
			})
		}(w, splitQuota(cfg.Trials, cfg.Workers, w))
	}
	wg.Wait()
	return finishObserved(o, counters, errs, rngDraws.Load())
}

// emitCheckpoint records one point of the convergence trace: the running
// estimate with its Wilson interval at nt trials. Counter reads race
// benignly with concurrent workers (the trace is diagnostic, the final
// Result is exact), so the win count is clamped into [0, nt].
func emitCheckpoint(o *obs.Observer, wins, nt int64, estHist *obs.Histogram) {
	if wins > nt {
		wins = nt
	}
	var p stats.Proportion
	if err := p.AddN(wins, nt); err != nil {
		return
	}
	est := p.Estimate()
	lo, hi, err := p.WilsonCI(1.96)
	if err != nil {
		return
	}
	estHist.Observe(est)
	o.Emit(obs.Event{
		Type: obs.EventCheckpoint,
		Name: "sim.convergence",
		Attrs: map[string]float64{
			"trials":   float64(nt),
			"wins":     float64(wins),
			"estimate": est,
			"ci_lo":    lo,
			"ci_hi":    hi,
		},
	})
}

// WinProbability estimates the winning probability P_A(δ) of the system by
// playing cfg.Trials independent rounds. Systems whose rules all implement
// model.BatchRule (threshold, oblivious-coin and interval-set rules) run
// through the allocation-free batched kernel; everything else takes the
// per-trial path with per-worker reusable buffers. Both paths draw the
// same RNG sequence, so the estimate for a fixed (Seed, Workers) pair does
// not depend on which one runs.
func WinProbability(sys *model.System, cfg Config) (Result, error) {
	if sys == nil {
		return Result{}, fmt.Errorf("sim: nil system")
	}
	if k, ok := model.NewBatchKernel(sys); ok {
		return runBatch(cfg, "win_probability", k)
	}
	return runBernoulli(cfg, "win_probability", func(int) trialFunc {
		inputs := make([]float64, sys.N())
		var out model.Outcome
		return func(rng *rand.Rand) (bool, error) {
			if err := sys.SampleInputsInto(inputs, rng); err != nil {
				return false, err
			}
			if err := sys.PlayInto(&out, inputs, rng); err != nil {
				return false, err
			}
			return out.Win, nil
		}
	})
}

// FeasibilityProbability estimates the probability that SOME assignment
// of the instance's inputs (x_i uniform on [0, π_i]) to the two bins
// keeps both within capacity — the omniscient full-information benchmark
// that upper-bounds every distributed algorithm.
func FeasibilityProbability(inst problem.Instance, cfg Config) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if inst.N > 30 {
		return Result{}, fmt.Errorf("sim: feasibility limited to 30 players, got %d", inst.N)
	}
	widths := inst.Widths()
	return runBernoulli(cfg, "feasibility", func(int) trialFunc {
		inputs := make([]float64, inst.N)
		return func(rng *rand.Rand) (bool, error) {
			if widths == nil {
				for i := range inputs {
					inputs[i] = rng.Float64()
				}
			} else {
				for i := range inputs {
					inputs[i] = rng.Float64() * widths[i]
				}
			}
			return model.FeasibleAssignmentExists(inputs, inst.Delta)
		}
	})
}

// LoadStats simulates the system and returns running statistics of the
// value extracted from each outcome by metric (for example the bin-0 load
// or the maximum load).
func LoadStats(sys *model.System, cfg Config, metric func(model.Outcome) float64) (stats.Running, error) {
	if sys == nil {
		return stats.Running{}, fmt.Errorf("sim: nil system")
	}
	if metric == nil {
		return stats.Running{}, fmt.Errorf("sim: nil metric")
	}
	cfg, err := cfg.validate()
	if err != nil {
		return stats.Running{}, err
	}
	root := cfg.Obs.StartSpan("sim.load_stats")
	defer root.End()
	accs := make([]stats.Running, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			runLabeled(w, func() {
				rng := cfg.workerRNG(w)
				inputs := make([]float64, sys.N())
				var out model.Outcome
				for i := 0; i < quota; i++ {
					if err := sys.SampleInputsInto(inputs, rng); err != nil {
						errs[w] = err
						return
					}
					if err := sys.PlayInto(&out, inputs, rng); err != nil {
						errs[w] = err
						return
					}
					accs[w].Add(metric(out))
				}
			})
		}(w, splitQuota(cfg.Trials, cfg.Workers, w))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			err = wrapTrialErr(err)
			cfg.Obs.EmitError("sim.trial", err)
			return stats.Running{}, err
		}
	}
	var total stats.Running
	for _, a := range accs {
		total.Merge(a)
	}
	cfg.Obs.Counter("sim.trials").Add(total.N())
	return total, nil
}

// Bernoulli estimates the success probability of an arbitrary trial
// function by playing cfg.Trials independent rounds across seeded parallel
// workers — the same deterministic fan-out that backs WinProbability and
// FeasibilityProbability, exported so higher layers (the evaluation engine,
// protocol simulators) can run custom trials without re-implementing the
// worker pool. name labels the run's root span when observability is on.
func Bernoulli(cfg Config, name string, trial func(rng *rand.Rand) (bool, error)) (Result, error) {
	if trial == nil {
		return Result{}, fmt.Errorf("sim: nil trial function")
	}
	if name == "" {
		name = "bernoulli"
	}
	return runBernoulli(cfg, name, func(int) trialFunc { return trial })
}
