// Package sim is the Monte-Carlo engine used to validate every analytic
// result in the reproduction: it estimates winning probabilities of
// arbitrary decision systems (Theorems 4.1 and 5.1), the omniscient
// feasibility upper bound, and sample statistics of bin loads, with
// deterministic seeding and parallel workers.
package sim

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/model"
	"repro/internal/stats"
)

// Config controls a simulation run.
type Config struct {
	// Trials is the total number of rounds to play. Must be positive.
	Trials int
	// Workers is the number of parallel workers; 0 selects GOMAXPROCS.
	// Results are deterministic for a fixed (Seed, Workers) pair: each
	// worker owns an independent, seeded PCG stream.
	Workers int
	// Seed seeds the per-worker random streams.
	Seed uint64
}

func (c Config) validate() (Config, error) {
	if c.Trials <= 0 {
		return c, fmt.Errorf("sim: trial count %d must be positive", c.Trials)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("sim: worker count %d must be non-negative", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Trials {
		c.Workers = c.Trials
	}
	return c, nil
}

// workerRNG derives worker w's independent random stream.
func (c Config) workerRNG(w int) *rand.Rand {
	// SplitMix-style stream separation: distinct, well-mixed PCG seeds.
	s := c.Seed + 0x9e3779b97f4a7c15*uint64(w+1)
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	return rand.New(rand.NewPCG(s, s^0x94d049bb133111eb))
}

// Result summarizes a Bernoulli estimate (winning or feasibility
// probability).
type Result struct {
	// P is the estimated probability.
	P float64
	// StdErr is the binomial standard error.
	StdErr float64
	// CILo and CIHi bound the 95% Wilson confidence interval.
	CILo, CIHi float64
	// Wins and Trials are the raw counts.
	Wins, Trials int64
}

func resultFrom(p stats.Proportion) (Result, error) {
	lo, hi, err := p.WilsonCI(1.96)
	if err != nil {
		return Result{}, err
	}
	return Result{
		P:      p.Estimate(),
		StdErr: p.StdErr(),
		CILo:   lo,
		CIHi:   hi,
		Wins:   p.Successes(),
		Trials: p.Trials(),
	}, nil
}

// trialFunc plays one round and reports success.
type trialFunc func(rng *rand.Rand) (bool, error)

// runBernoulli fans trials out over workers and merges the counts.
func runBernoulli(cfg Config, trial trialFunc) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	counters := make([]stats.Proportion, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	base := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			rng := cfg.workerRNG(w)
			for i := 0; i < quota; i++ {
				ok, err := trial(rng)
				if err != nil {
					errs[w] = err
					return
				}
				counters[w].Add(ok)
			}
		}(w, quota)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("sim: trial failed: %w", err)
		}
	}
	var total stats.Proportion
	for _, c := range counters {
		total.Merge(c)
	}
	return resultFrom(total)
}

// WinProbability estimates the winning probability P_A(δ) of the system by
// playing cfg.Trials independent rounds.
func WinProbability(sys *model.System, cfg Config) (Result, error) {
	if sys == nil {
		return Result{}, fmt.Errorf("sim: nil system")
	}
	return runBernoulli(cfg, func(rng *rand.Rand) (bool, error) {
		inputs, err := sys.SampleInputs(rng)
		if err != nil {
			return false, err
		}
		out, err := sys.Play(inputs, rng)
		if err != nil {
			return false, err
		}
		return out.Win, nil
	})
}

// FeasibilityProbability estimates the probability that SOME assignment of
// n uniform inputs to the two bins keeps both within capacity — the
// omniscient full-information benchmark that upper-bounds every distributed
// algorithm.
func FeasibilityProbability(n int, capacity float64, cfg Config) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("sim: need at least 1 player, got %d", n)
	}
	if n > 30 {
		return Result{}, fmt.Errorf("sim: feasibility limited to 30 players, got %d", n)
	}
	if !(capacity > 0) {
		return Result{}, fmt.Errorf("sim: capacity %v must be strictly positive", capacity)
	}
	return runBernoulli(cfg, func(rng *rand.Rand) (bool, error) {
		inputs := make([]float64, n)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		return model.FeasibleAssignmentExists(inputs, capacity)
	})
}

// LoadStats simulates the system and returns running statistics of the
// value extracted from each outcome by metric (for example the bin-0 load
// or the maximum load).
func LoadStats(sys *model.System, cfg Config, metric func(model.Outcome) float64) (stats.Running, error) {
	if sys == nil {
		return stats.Running{}, fmt.Errorf("sim: nil system")
	}
	if metric == nil {
		return stats.Running{}, fmt.Errorf("sim: nil metric")
	}
	cfg, err := cfg.validate()
	if err != nil {
		return stats.Running{}, err
	}
	accs := make([]stats.Running, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	base := cfg.Trials / cfg.Workers
	extra := cfg.Trials % cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		quota := base
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			rng := cfg.workerRNG(w)
			for i := 0; i < quota; i++ {
				inputs, err := sys.SampleInputs(rng)
				if err != nil {
					errs[w] = err
					return
				}
				out, err := sys.Play(inputs, rng)
				if err != nil {
					errs[w] = err
					return
				}
				accs[w].Add(metric(out))
			}
		}(w, quota)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats.Running{}, fmt.Errorf("sim: trial failed: %w", err)
		}
	}
	var total stats.Running
	for _, a := range accs {
		total.Merge(a)
	}
	return total, nil
}

// WinProbabilitySweep evaluates WinProbability for each system produced by
// build over the given parameter values, returning one Result per value.
// This is the engine behind the figure reproductions (threshold sweeps and
// coin-probability sweeps).
func WinProbabilitySweep(values []float64, cfg Config, build func(v float64) (*model.System, error)) ([]Result, error) {
	if build == nil {
		return nil, fmt.Errorf("sim: nil system builder")
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("sim: empty sweep")
	}
	out := make([]Result, len(values))
	for i, v := range values {
		sys, err := build(v)
		if err != nil {
			return nil, fmt.Errorf("sim: building system for value %v: %w", v, err)
		}
		r, err := WinProbability(sys, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
