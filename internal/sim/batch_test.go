package sim

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/response"
)

// noBatch hides a rule's BatchRule implementation so a test can force the
// per-trial fallback path through the same engine entry point.
type noBatch struct{ r model.LocalRule }

func (nb noBatch) Decide(x float64, rng *rand.Rand) (model.Bin, error) { return nb.r.Decide(x, rng) }

// goldenSystems builds the four reference systems used by the
// bit-identity tests: uniform threshold, uniform oblivious, an
// interval-union response set, and a mixed-rule system.
func goldenSystems(t *testing.T) []struct {
	name string
	sys  *model.System
} {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	thr, err := model.NewThresholdRule(0.622)
	must(err)
	thrSys, err := model.UniformSystem(3, thr, 1)
	must(err)

	obl, err := model.NewObliviousRule(0.37)
	must(err)
	oblSys, err := model.UniformSystem(3, obl, 1)
	must(err)

	band, err := response.NewIntervalSet([]response.Interval{{Lo: 0.2, Hi: 0.45}, {Lo: 0.6, Hi: 0.8}})
	must(err)
	bandRule, err := band.Rule("band")
	must(err)
	bandSys, err := model.UniformSystem(4, bandRule, 4.0/3)
	must(err)

	thr2, err := model.NewThresholdRule(0.31)
	must(err)
	mixedSys, err := model.NewSystem([]model.LocalRule{thr, obl, bandRule, thr2}, 1.2)
	must(err)

	return []struct {
		name string
		sys  *model.System
	}{
		{"threshold", thrSys},
		{"oblivious", oblSys},
		{"interval", bandSys},
		{"mixed", mixedSys},
	}
}

// unbatch rebuilds a system with every rule wrapped in noBatch, forcing
// WinProbability onto the per-trial fallback.
func unbatch(t *testing.T, sys *model.System) *model.System {
	t.Helper()
	rules := make([]model.LocalRule, sys.N())
	for i := range rules {
		r, err := sys.Rule(i)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = noBatch{r}
	}
	wrapped, err := model.NewSystem(rules, sys.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	return wrapped
}

// goldenWins holds win counts captured from the pre-batch per-trial
// engine at Trials=20000, Seed=99, for Workers=1 and Workers=4. The
// batched kernel must reproduce them exactly: any change here means the
// RNG draw order (and with it every published estimate) has shifted.
var goldenWins = map[string]map[int]int64{
	"threshold": {1: 10845, 4: 10828},
	"oblivious": {1: 7811, 4: 7883},
	"interval":  {1: 8367, 4: 8368},
	"mixed":     {1: 6316, 4: 6373},
}

// TestBatchedWinProbabilityMatchesGolden pins the batched engine to win
// counts recorded from the seed (pre-batch) engine for fixed
// (Seed, Workers) pairs.
func TestBatchedWinProbabilityMatchesGolden(t *testing.T) {
	for _, tc := range goldenSystems(t) {
		for _, w := range []int{1, 4} {
			res, err := WinProbability(tc.sys, Config{Trials: 20000, Workers: w, Seed: 99})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if want := goldenWins[tc.name][w]; res.Wins != want {
				t.Errorf("%s workers=%d: batched wins = %d, golden %d", tc.name, w, res.Wins, want)
			}
		}
	}
}

// TestBatchedMatchesForcedPerTrial runs every golden system through both
// engine paths — batched (rules implement model.BatchRule) and the
// per-trial fallback (rules wrapped to hide it) — and requires identical
// results, including the floating-point summaries.
func TestBatchedMatchesForcedPerTrial(t *testing.T) {
	for _, tc := range goldenSystems(t) {
		fallback := unbatch(t, tc.sys)
		if _, ok := model.NewBatchKernel(tc.sys); !ok {
			t.Fatalf("%s: expected the original system to be batchable", tc.name)
		}
		if _, ok := model.NewBatchKernel(fallback); ok {
			t.Fatalf("%s: wrapped system must not be batchable", tc.name)
		}
		for _, w := range []int{1, 4} {
			cfg := Config{Trials: 20000, Workers: w, Seed: 99}
			batched, err := WinProbability(tc.sys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			perTrial, err := WinProbability(fallback, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if batched != perTrial {
				t.Errorf("%s workers=%d: batched %+v != per-trial %+v", tc.name, w, batched, perTrial)
			}
		}
	}
}

// goldenCheckpoints holds the convergence-checkpoint streams captured
// from the pre-batch engine at Trials=10000, Workers=1, Seed=42,
// CheckpointEvery=2000. The batched observed path must replay wins
// per-trial so these streams stay bit-identical.
var goldenCheckpoints = map[string][5]int64{
	"threshold": {1080, 2206, 3307, 4365, 5475},
	"oblivious": {817, 1593, 2406, 3198, 4009},
	"interval":  {837, 1678, 2518, 3379, 4196},
	"mixed":     {663, 1287, 1959, 2616, 3248},
}

// TestBatchedCheckpointStreamMatchesGolden pins the observed batched
// path's checkpoint stream to the per-trial engine's.
func TestBatchedCheckpointStreamMatchesGolden(t *testing.T) {
	for _, tc := range goldenSystems(t) {
		var buf bytes.Buffer
		o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
		_, err := WinProbability(tc.sys, Config{Trials: 10000, Workers: 1, Seed: 42, Obs: o, CheckpointEvery: 2000})
		if err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ReadEvents(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := goldenCheckpoints[tc.name]
		var got []string
		for _, e := range evs {
			if e.Type == obs.EventCheckpoint {
				got = append(got, fmt.Sprintf("%v/%v", e.Attrs["trials"], e.Attrs["wins"]))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d checkpoints, want %d: %v", tc.name, len(got), len(want), got)
		}
		for i, w := range want {
			if exp := fmt.Sprintf("%d/%d", 2000*(i+1), w); got[i] != exp {
				t.Errorf("%s: checkpoint %d = %s, golden %s", tc.name, i, got[i], exp)
			}
		}
	}
}

// TestWinProbabilityAllocationRegression pins the tentpole's allocation
// contract: a batched run's allocations are per-run setup (goroutines,
// result assembly), not per-trial — well under 0.01 allocs/trial.
func TestWinProbabilityAllocationRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow in -short mode")
	}
	for _, tc := range goldenSystems(t) {
		const trials = 50000
		cfg := Config{Trials: trials, Workers: 1, Seed: 3}
		if _, err := WinProbability(tc.sys, cfg); err != nil { // warm pools
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := WinProbability(tc.sys, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if perTrial := allocs / trials; perTrial >= 0.01 {
			t.Errorf("%s: %v allocs per run (%v/trial), want < 0.01/trial", tc.name, allocs, perTrial)
		}
	}
}
