package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/model"
	"repro/internal/qrand"
)

// DefaultReplicates is the number of independently scrambled QMC
// randomizations WinProbabilityQMC averages when Config.Replicates is
// zero. 16 replicates keep the Student-t width penalty small (t ≈ 2.13)
// while leaving each replicate enough points for the low-discrepancy
// structure to bite.
const DefaultReplicates = 16

// MaxQMCDims is the largest sample-space dimension (players + coins) the
// QMC path supports, bounded by the Sobol direction-number table.
const MaxQMCDims = qrand.MaxDim

// scrambleSeed derives replicate r's digital-shift seed from the run
// seed, SplitMix-mixed so nearby (seed, replicate) labels give unrelated
// scramblings.
func scrambleSeed(seed uint64, r int) uint64 {
	s := seed + 0x9e3779b97f4a7c15*uint64(r+1)
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	return s
}

// tQuantile975 returns the two-sided 95% Student-t quantile for df
// degrees of freedom (exact table through df=30, then the usual
// large-sample breakpoints).
func tQuantile975(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df < 1:
		return math.Inf(1)
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// WinProbabilityQMC estimates the winning probability with randomized
// quasi-Monte-Carlo: cfg.Replicates independently scrambled Sobol
// sequences each contribute Trials/Replicates low-discrepancy trials,
// and the estimate is the mean of the replicate means. Because each
// scrambled point is uniform on [0,1)^dims, the estimator is unbiased,
// and the spread of the replicate means gives an honest standard error —
// StdErr and the Student-t CI in the Result replace the Bernoulli
// machinery, which would be wildly conservative for correlated QMC
// points. Replicates are deterministic functions of (Seed, replicate
// index), so results do not depend on Workers.
//
// The system's rules must all implement model.BatchRule (the QMC path is
// kernel-only) and the sample space must fit in MaxQMCDims dimensions.
func WinProbabilityQMC(sys *model.System, cfg Config) (Result, error) {
	if sys == nil {
		return Result{}, fmt.Errorf("sim: nil system")
	}
	k, ok := model.NewBatchKernel(sys)
	if !ok {
		return Result{}, fmt.Errorf("sim: qmc needs batchable rules (model.BatchRule); system %q has none", "win_probability")
	}
	return winProbabilityQMC(k, cfg)
}

func winProbabilityQMC(k *model.BatchKernel, cfg Config) (Result, error) {
	dims := k.Dims()
	if dims > MaxQMCDims {
		return Result{}, fmt.Errorf("sim: qmc supports at most %d dimensions (players + coins), got %d", MaxQMCDims, dims)
	}
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	reps := cfg.Replicates
	if reps == 0 {
		reps = DefaultReplicates
	}
	if reps < 2 {
		return Result{}, fmt.Errorf("sim: qmc needs at least 2 replicates for a standard error, got %d", reps)
	}
	m := cfg.Trials / reps
	if m < 1 {
		return Result{}, fmt.Errorf("sim: %d trials cannot cover %d qmc replicates", cfg.Trials, reps)
	}

	root := cfg.Obs.StartSpan("sim.win_probability_qmc")
	defer root.End()

	// One scrambled sequence per replicate; replicates are striped over
	// the workers. Each entry of wins is owned by exactly one worker.
	wins := make([]int64, reps)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runLabeled(w, func() {
				sc := model.GetBatchScratch()
				defer sc.Release()
				for r := w; r < reps; r += cfg.Workers {
					seq, err := qrand.New(dims, scrambleSeed(cfg.Seed, r))
					if err != nil {
						errs[w] = err
						return
					}
					var won int64
					for done := 0; done < m; {
						b := batchSize
						if m-done < b {
							b = m - done
						}
						won += int64(k.PlayQMC(sc, seq, uint64(done), b))
						done += b
					}
					wins[r] = won
				}
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	// Mean of replicate means and its sample standard error. With equal
	// per-replicate budgets the mean of means equals the pooled estimate.
	var total int64
	p := 0.0
	for _, won := range wins {
		total += won
		p += float64(won) / float64(m)
	}
	p /= float64(reps)
	var ss float64
	for _, won := range wins {
		d := float64(won)/float64(m) - p
		ss += d * d
	}
	stderr := math.Sqrt(ss / float64(reps-1) / float64(reps))
	t := tQuantile975(reps - 1)
	lo := math.Max(0, p-t*stderr)
	hi := math.Min(1, p+t*stderr)

	trials := int64(m) * int64(reps)
	cfg.Obs.Counter("sim.trials").Add(trials)
	cfg.Obs.Counter("sim.wins").Add(total)
	cfg.Obs.Counter("sim.qmc_replicates").Add(int64(reps))

	return Result{
		P:          p,
		StdErr:     stderr,
		CILo:       lo,
		CIHi:       hi,
		Wins:       total,
		Trials:     trials,
		Replicates: reps,
	}, nil
}
