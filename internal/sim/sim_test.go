package sim

import (
	"errors"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/problem"
)

func thresholdSystem(t *testing.T, n int, beta, capacity float64) *model.System {
	t.Helper()
	rule, err := model.NewThresholdRule(beta)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := model.UniformSystem(n, rule, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidation(t *testing.T) {
	sys := thresholdSystem(t, 3, 0.5, 1)
	if _, err := WinProbability(sys, Config{Trials: 0}); err == nil {
		t.Error("zero trials: expected error")
	}
	if _, err := WinProbability(sys, Config{Trials: 10, Workers: -1}); err == nil {
		t.Error("negative workers: expected error")
	}
	if _, err := WinProbability(nil, Config{Trials: 10}); err == nil {
		t.Error("nil system: expected error")
	}
	// More workers than trials is fine (clamped).
	if _, err := WinProbability(sys, Config{Trials: 3, Workers: 16}); err != nil {
		t.Errorf("workers > trials: unexpected error %v", err)
	}
}

func TestWinProbabilityDeterministicForSeed(t *testing.T) {
	sys := thresholdSystem(t, 3, 0.622, 1)
	cfg := Config{Trials: 20000, Workers: 4, Seed: 99}
	a, err := WinProbability(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WinProbability(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Wins != b.Wins || a.P != b.P {
		t.Errorf("same seed gave different results: %v vs %v", a, b)
	}
	c, err := WinProbability(sys, Config{Trials: 20000, Workers: 4, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a.Wins == c.Wins {
		t.Error("different seeds gave identical win counts (suspicious)")
	}
}

func TestWinProbabilityMatchesPaperN3Optimum(t *testing.T) {
	// Section 5.2.1: threshold 1-sqrt(1/7) at n=3, δ=1 wins with
	// probability ≈ 0.54498.
	beta := 1 - math.Sqrt(1.0/7)
	sys := thresholdSystem(t, 3, beta, 1)
	res, err := WinProbability(sys, Config{Trials: 400000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.54498
	if math.Abs(res.P-want) > 4*res.StdErr+1e-9 {
		t.Errorf("simulated P = %v ± %v, want ≈ %v", res.P, res.StdErr, want)
	}
	if !(res.CILo < want && want < res.CIHi) {
		t.Errorf("CI [%v, %v] should contain %v", res.CILo, res.CIHi, want)
	}
	if res.Trials != 400000 || res.Wins <= 0 {
		t.Errorf("counts: %d/%d", res.Wins, res.Trials)
	}
}

func TestWinProbabilityObliviousHalf(t *testing.T) {
	// Oblivious α = 1/2 at n=3, δ=1 wins with probability 5/12 ≈ 0.4167
	// (Theorem 4.3 evaluated directly).
	rule, err := model.NewObliviousRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := model.UniformSystem(3, rule, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WinProbability(sys, Config{Trials: 400000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 / 12
	if math.Abs(res.P-want) > 4*res.StdErr {
		t.Errorf("simulated oblivious P = %v ± %v, want 5/12 ≈ %v", res.P, res.StdErr, want)
	}
}

func TestFeasibilityProbabilityDominatesThreshold(t *testing.T) {
	sysRes, err := WinProbability(thresholdSystem(t, 3, 0.622, 1), Config{Trials: 200000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	feas, err := FeasibilityProbability(problem.Instance{N: 3, Delta: 1}, Config{Trials: 200000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if feas.P < sysRes.P {
		t.Errorf("omniscient feasibility %v below algorithm %v", feas.P, sysRes.P)
	}
	// For n=3, δ=1 the instance is feasible iff some pair of inputs sums
	// to at most 1, and Vol{x ∈ [0,1]³ : all pairwise sums > 1} = 1/4, so
	// the exact feasibility probability is 3/4.
	if math.Abs(feas.P-0.75) > 4*feas.StdErr {
		t.Errorf("feasibility P = %v ± %v, want exactly 3/4", feas.P, feas.StdErr)
	}
}

func TestFeasibilityProbabilityValidation(t *testing.T) {
	cfg := Config{Trials: 100}
	if _, err := FeasibilityProbability(problem.Instance{N: 0, Delta: 1}, cfg); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := FeasibilityProbability(problem.Instance{N: 31, Delta: 1}, cfg); err == nil {
		t.Error("n=31: expected error")
	}
	if _, err := FeasibilityProbability(problem.Instance{N: 3, Delta: 0}, cfg); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := FeasibilityProbability(problem.Instance{N: 3, Delta: 1}, Config{Trials: 0}); err == nil {
		t.Error("zero trials: expected error")
	}
}

func TestLoadStats(t *testing.T) {
	// With threshold 0.5 and n=4, bin-0 load is the sum of inputs below
	// 1/2: each contributes with probability 1/2 a U[0, 1/2] value, so the
	// mean is 4 · (1/2) · (1/4) = 1/2.
	sys := thresholdSystem(t, 4, 0.5, 10)
	r, err := LoadStats(sys, Config{Trials: 200000, Seed: 17}, func(o model.Outcome) float64 {
		return o.Load0
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Mean()-0.5) > 0.005 {
		t.Errorf("mean bin-0 load = %v, want ≈ 0.5", r.Mean())
	}
	if r.N() != 200000 {
		t.Errorf("N = %d", r.N())
	}
	if r.Min() < 0 || r.Max() > 2 {
		t.Errorf("load range [%v, %v] impossible", r.Min(), r.Max())
	}
	if _, err := LoadStats(nil, Config{Trials: 10}, func(model.Outcome) float64 { return 0 }); err == nil {
		t.Error("nil system: expected error")
	}
	if _, err := LoadStats(sys, Config{Trials: 10}, nil); err == nil {
		t.Error("nil metric: expected error")
	}
	if _, err := LoadStats(sys, Config{Trials: 0}, func(model.Outcome) float64 { return 0 }); err == nil {
		t.Error("zero trials: expected error")
	}
}

func TestBernoulli(t *testing.T) {
	// A trial that succeeds iff a uniform draw is below 0.25.
	trial := func(rng *rand.Rand) (bool, error) { return rng.Float64() < 0.25, nil }
	res, err := Bernoulli(Config{Trials: 200000, Seed: 23}, "quarter", trial)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-0.25) > 4*res.StdErr {
		t.Errorf("P = %v ± %v, want ≈ 0.25", res.P, res.StdErr)
	}
	if res.Trials != 200000 {
		t.Errorf("trials = %d", res.Trials)
	}
	// Deterministic for a fixed (seed, workers) layout.
	again, err := Bernoulli(Config{Trials: 200000, Seed: 23}, "quarter", trial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wins != again.Wins {
		t.Errorf("same seed gave %d then %d wins", res.Wins, again.Wins)
	}
	if _, err := Bernoulli(Config{Trials: 10}, "", nil); err == nil {
		t.Error("nil trial: expected error")
	}
	if _, err := Bernoulli(Config{Trials: 0}, "", trial); err == nil {
		t.Error("zero trials: expected error")
	}
	wantErr := errors.New("boom")
	if _, err := Bernoulli(Config{Trials: 10}, "", func(*rand.Rand) (bool, error) { return false, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("trial error not propagated: %v", err)
	}
}

func TestWorkerCount(t *testing.T) {
	// Regression test for the repo-wide worker policy: 0 defaults to
	// GOMAXPROCS, negatives are rejected, and a positive jobs bound clamps.
	if w, err := WorkerCount(0, 1<<30); err != nil || w != runtime.GOMAXPROCS(0) {
		t.Errorf("WorkerCount(0, big) = %d, %v; want GOMAXPROCS = %d", w, err, runtime.GOMAXPROCS(0))
	}
	if w, err := WorkerCount(5, 0); err != nil || w != 5 {
		t.Errorf("WorkerCount(5, unbounded) = %d, %v; want 5", w, err)
	}
	if w, err := WorkerCount(16, 3); err != nil || w != 3 {
		t.Errorf("WorkerCount(16, 3) = %d, %v; want clamp to 3", w, err)
	}
	if w, err := WorkerCount(2, 8); err != nil || w != 2 {
		t.Errorf("WorkerCount(2, 8) = %d, %v; want 2", w, err)
	}
	if _, err := WorkerCount(-1, 10); err == nil {
		t.Error("negative workers: expected error")
	}
	// The clamp never returns less than one worker.
	if w, err := WorkerCount(0, 1); err != nil || w != 1 {
		t.Errorf("WorkerCount(0, 1) = %d, %v; want 1", w, err)
	}
}

func TestWorkerCountDoesNotBiasEstimate(t *testing.T) {
	sys := thresholdSystem(t, 3, 0.622, 1)
	r1, err := WinProbability(sys, Config{Trials: 100000, Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := WinProbability(sys, Config{Trials: 100000, Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Different stream layouts, but both must agree within sampling error.
	if math.Abs(r1.P-r8.P) > 4*(r1.StdErr+r8.StdErr) {
		t.Errorf("1-worker %v vs 8-worker %v differ beyond sampling error", r1.P, r8.P)
	}
}
