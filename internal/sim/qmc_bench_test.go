package sim

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/model"
)

// precisionSampler selects which estimator the trials-to-precision
// benchmark drives: "mc" for the pseudo-random baseline, anything else
// (default) for quasi-Monte-Carlo. The Makefile's qmc-baseline/qmc-head
// snapshots record the same benchmark names under both settings, so
// `benchjson -check qmc-baseline,qmc-head -improve 4` gates the
// variance-reduction claim directly.
const precisionSamplerEnv = "NOCOMM_PRECISION_SAMPLER"

// precisionTarget is the standard-error budget each benchmark op must
// reach: ±1e-4, the paper-table precision.
const precisionTarget = 1e-4

// benchTrialsToPrecision runs a doubling ladder until the estimator's
// reported standard error is at or under the target; one benchmark op is
// one ladder, so ns/op is the full cost of buying ±1e-4 — the effective
// ns-per-unit-of-precision both samplers are judged on. The ladder
// doubles from the same floor for both samplers (its geometric overhead
// is a fair constant factor), and the final trial count is reported as
// the "trials" metric.
func benchTrialsToPrecision(b *testing.B, sys *model.System) {
	useMC := os.Getenv(precisionSamplerEnv) == "mc"
	var lastTrials int64
	for i := 0; i < b.N; i++ {
		trials := 1 << 14
		for {
			cfg := Config{Trials: trials, Workers: 1, Seed: uint64(55 + i)}
			var res Result
			var err error
			if useMC {
				res, err = WinProbability(sys, cfg)
			} else {
				res, err = WinProbabilityQMC(sys, cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			if res.StdErr <= precisionTarget {
				lastTrials = res.Trials
				break
			}
			if trials >= 1<<28 {
				b.Fatalf("stderr %v still above %v at %d trials", res.StdErr, precisionTarget, trials)
			}
			trials *= 2
		}
	}
	b.ReportMetric(float64(lastTrials), "trials")
}

// BenchmarkTrialsToPrecision measures the cost of a ±1e-4 win-probability
// estimate across the instance shapes the ROADMAP's repeated-evaluation
// workloads sweep: small, medium, and large homogeneous threshold games
// plus a heterogeneous-π mixed instance.
func BenchmarkTrialsToPrecision(b *testing.B) {
	mustThr := func(beta float64) model.LocalRule {
		r, err := model.NewThresholdRule(beta)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	for _, n := range []int{3, 10, 20} {
		var sys *model.System
		var err error
		if n == 3 {
			// The canonical Section 5.2.1 near-optimum.
			sys, err = model.UniformSystem(3, mustThr(0.622), 1)
		} else {
			sys, err = model.UniformSystem(n, mustThr(0.5), 0.375*float64(n))
		}
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchTrialsToPrecision(b, sys)
		})
	}
	hetero, err := model.NewSystemPi(
		[]model.LocalRule{mustThr(0.4), mustThr(0.622), mustThr(0.5)},
		1, []float64{0.5, 1, 0.75})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hetero", func(b *testing.B) {
		benchTrialsToPrecision(b, hetero)
	})
}
