package sim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestObservedRunMatchesPlainRun pins the key invariant of the
// instrumentation: enabling observability must not change the simulation's
// random streams or its result.
func TestObservedRunMatchesPlainRun(t *testing.T) {
	sys := thresholdSystem(t, 3, 0.622, 1)
	plain, err := WinProbability(sys, Config{Trials: 20000, Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
	observed, err := WinProbability(sys, Config{Trials: 20000, Workers: 4, Seed: 7, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Errorf("observability changed the result: plain %+v, observed %+v", plain, observed)
	}
	if got := o.Counter("sim.trials").Value(); got != 20000 {
		t.Errorf("sim.trials = %d, want 20000", got)
	}
	if got := o.Counter("sim.wins").Value(); got != observed.Wins {
		t.Errorf("sim.wins = %d, want %d", got, observed.Wins)
	}
	// Every trial draws 3 inputs, so at least 3 draws per trial must be
	// accounted (threshold rules draw no extra randomness).
	if got := o.Counter("sim.rng_draws").Value(); got < 3*20000 {
		t.Errorf("sim.rng_draws = %d, want >= 60000", got)
	}
	snap := o.Metrics.Snapshot()
	throughput := 0
	for name, v := range snap.Gauges {
		var w int
		if _, err := fmt.Sscanf(name, "sim.worker.%d.trials_per_sec", &w); err == nil && v > 0 {
			throughput++
		}
	}
	if throughput != 4 {
		t.Errorf("throughput gauges for %d workers, want 4 (gauges: %v)", throughput, snap.Gauges)
	}
}

// TestConvergenceTrace checks the checkpoint stream: cadence, monotone
// trial counts, and CI bounds that bracket the estimate.
func TestConvergenceTrace(t *testing.T) {
	sys := thresholdSystem(t, 3, 0.622, 1)
	var buf bytes.Buffer
	o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
	res, err := WinProbability(sys, Config{Trials: 10000, Workers: 2, Seed: 3, Obs: o, CheckpointEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.Summarize(events)
	if len(sum.Checkpoints) != 1 {
		t.Fatalf("checkpoint streams = %d, want 1", len(sum.Checkpoints))
	}
	pts := sum.Checkpoints[0].Points
	if len(pts) != 20 {
		t.Fatalf("checkpoints = %d, want 20 (10000 trials / every 500)", len(pts))
	}
	prev := 0.0
	for i, p := range pts {
		tr := p.Attrs["trials"]
		if tr <= prev {
			t.Errorf("checkpoint %d: trials %v not increasing past %v", i, tr, prev)
		}
		prev = tr
		est, lo, hi := p.Attrs["estimate"], p.Attrs["ci_lo"], p.Attrs["ci_hi"]
		if !(lo <= est && est <= hi) {
			t.Errorf("checkpoint %d: CI [%v, %v] does not bracket estimate %v", i, lo, hi, est)
		}
	}
	last := pts[len(pts)-1]
	if int64(last.Attrs["trials"]) != res.Trials {
		t.Errorf("final checkpoint at %v trials, want %d", last.Attrs["trials"], res.Trials)
	}
	// Span nesting: one root sim span, one child per worker.
	roots, workers := 0, 0
	for _, s := range sum.Spans {
		switch {
		case s.Name == "sim.win_probability" && s.Depth == 0:
			roots++
		case s.Depth == 1:
			workers += int(s.Count)
		}
	}
	if roots != 1 {
		t.Errorf("root sim spans = %d, want 1", roots)
	}
	if workers != 2 {
		t.Errorf("worker spans = %d, want 2", workers)
	}
	if sum.OpenSpans != 0 {
		t.Errorf("open spans = %d, want 0", sum.OpenSpans)
	}
}
