package sim

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
)

func qmcSystem(t *testing.T) *model.System {
	t.Helper()
	thr, err := model.NewThresholdRule(0.622)
	if err != nil {
		t.Fatal(err)
	}
	obl, err := model.NewObliviousRule(0.37)
	if err != nil {
		t.Fatal(err)
	}
	thr2, err := model.NewThresholdRule(0.31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := model.NewSystem([]model.LocalRule{thr, obl, thr2}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestWinProbabilityQMCWorkerIndependent pins the QMC contract the engine
// cache relies on: replicates are deterministic functions of
// (Seed, replicate index), so every worker count returns identical bits.
func TestWinProbabilityQMCWorkerIndependent(t *testing.T) {
	sys := qmcSystem(t)
	var ref Result
	for i, w := range []int{1, 2, 4, 7} {
		res, err := WinProbabilityQMC(sys, Config{Trials: 1 << 14, Workers: w, Seed: 9})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res != ref {
			t.Errorf("workers=%d: %+v differs from workers=1 %+v", w, res, ref)
		}
	}
	if ref.Replicates != DefaultReplicates {
		t.Errorf("Replicates = %d, want default %d", ref.Replicates, DefaultReplicates)
	}
	if ref.Trials != (1<<14/DefaultReplicates)*DefaultReplicates {
		t.Errorf("Trials = %d, want replicate-rounded %d", ref.Trials, (1<<14/DefaultReplicates)*DefaultReplicates)
	}
}

// TestWinProbabilityQMCSeedSensitivity: different seeds re-scramble every
// replicate, so estimates (and stderr) should differ; same seed repeats.
func TestWinProbabilityQMCSeedSensitivity(t *testing.T) {
	sys := qmcSystem(t)
	a1, err := WinProbabilityQMC(sys, Config{Trials: 1 << 13, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := WinProbabilityQMC(sys, Config{Trials: 1 << 13, Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("same seed gave %+v then %+v", a1, a2)
	}
	b, err := WinProbabilityQMC(sys, Config{Trials: 1 << 13, Workers: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a1.P == b.P {
		t.Errorf("seeds 5 and 6 produced identical estimates %v", a1.P)
	}
}

// TestWinProbabilityQMCReplicateCI sanity-checks the replicate-based
// interval: stderr positive and small at this budget, CI ordered, CI
// containing P, and CI clamped to [0,1].
func TestWinProbabilityQMCReplicateCI(t *testing.T) {
	sys := qmcSystem(t)
	res, err := WinProbabilityQMC(sys, Config{Trials: 1 << 14, Workers: 1, Seed: 1, Replicates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicates != 8 {
		t.Errorf("Replicates = %d, want 8", res.Replicates)
	}
	if !(res.StdErr > 0) {
		t.Errorf("StdErr = %v, want > 0", res.StdErr)
	}
	if res.StdErr > 0.01 {
		t.Errorf("StdErr = %v, implausibly wide for 2^14 QMC trials", res.StdErr)
	}
	if !(res.CILo <= res.P && res.P <= res.CIHi) {
		t.Errorf("CI [%v, %v] does not contain P=%v", res.CILo, res.CIHi, res.P)
	}
	if res.CILo < 0 || res.CIHi > 1 {
		t.Errorf("CI [%v, %v] outside [0,1]", res.CILo, res.CIHi)
	}
}

// nonBatchable hides BatchRule so the QMC entry's kernel check can fire.
type nonBatchable struct{ r model.LocalRule }

func (n nonBatchable) Decide(x float64, rng *rand.Rand) (model.Bin, error) {
	return n.r.Decide(x, rng)
}

// TestWinProbabilityQMCValidation exercises every rejection path.
func TestWinProbabilityQMCValidation(t *testing.T) {
	sys := qmcSystem(t)
	if _, err := WinProbabilityQMC(nil, Config{Trials: 1000}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := WinProbabilityQMC(sys, Config{Trials: 1000, Replicates: 1}); err == nil {
		t.Error("single replicate accepted (no stderr possible)")
	}
	if _, err := WinProbabilityQMC(sys, Config{Trials: 8, Replicates: 16}); err == nil {
		t.Error("fewer trials than replicates accepted")
	}
	if _, err := WinProbabilityQMC(sys, Config{Trials: -1}); err == nil {
		t.Error("negative trials accepted")
	}

	thr, err := model.NewThresholdRule(0.5)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := model.UniformSystem(MaxQMCDims+1, thr, float64(MaxQMCDims))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WinProbabilityQMC(wide, Config{Trials: 1000}); err == nil {
		t.Error("system beyond the Sobol dimension table accepted")
	} else if !strings.Contains(err.Error(), "dimensions") {
		t.Errorf("dimension error reads %q", err)
	}

	plain, err := model.NewSystem([]model.LocalRule{nonBatchable{thr}, nonBatchable{thr}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WinProbabilityQMC(plain, Config{Trials: 1000}); err == nil {
		t.Error("non-batchable system accepted by the kernel-only QMC path")
	}
}

// TestWinProbabilityQMCObserved checks the span and counters emitted by a
// QMC run.
func TestWinProbabilityQMCObserved(t *testing.T) {
	sys := qmcSystem(t)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	o := obs.New(reg, obs.NewSink(&buf))
	res, err := WinProbabilityQMC(sys, Config{Trials: 1 << 12, Workers: 2, Seed: 3, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sim.trials").Value(); got != res.Trials {
		t.Errorf("sim.trials = %d, want %d", got, res.Trials)
	}
	if got := reg.Counter("sim.wins").Value(); got != res.Wins {
		t.Errorf("sim.wins = %d, want %d", got, res.Wins)
	}
	if got := reg.Counter("sim.qmc_replicates").Value(); got != int64(res.Replicates) {
		t.Errorf("sim.qmc_replicates = %d, want %d", got, res.Replicates)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range evs {
		if e.Type == obs.EventSpanEnd && e.Name == "sim.win_probability_qmc" {
			found = true
		}
	}
	if !found {
		t.Error("no sim.win_probability_qmc span in the event stream")
	}
}

// TestWinProbabilityQMCAgreesWithMC: the two estimators target the same
// integral, so at matched budgets they must agree within joint error.
func TestWinProbabilityQMCAgreesWithMC(t *testing.T) {
	sys := qmcSystem(t)
	mc, err := WinProbability(sys, Config{Trials: 400_000, Workers: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	qmc, err := WinProbabilityQMC(sys, Config{Trials: 1 << 16, Workers: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	tol := 5 * math.Hypot(mc.StdErr, qmc.StdErr)
	if diff := math.Abs(mc.P - qmc.P); diff > tol {
		t.Errorf("MC %v vs QMC %v differ by %v > %v", mc.P, qmc.P, diff, tol)
	}
}
