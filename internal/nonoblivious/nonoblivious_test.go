package nonoblivious

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/oblivious"
	"repro/internal/optimize"
	"repro/internal/poly"
	"repro/internal/sim"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestWinningProbabilityValidation(t *testing.T) {
	if _, err := WinningProbability([]float64{0.5}, 1); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := WinningProbability(make([]float64, MaxNGeneral+1), 1); err == nil {
		t.Error("too many players: expected error")
	}
	if _, err := WinningProbability([]float64{0.5, 1.5}, 1); err == nil {
		t.Error("threshold > 1: expected error")
	}
	if _, err := WinningProbability([]float64{0.5, math.NaN()}, 1); err == nil {
		t.Error("NaN threshold: expected error")
	}
	if _, err := WinningProbability([]float64{0.5, 0.5}, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
}

func TestWinningProbabilityEndpoints(t *testing.T) {
	// β = 0: everyone goes to bin 1, so P = F_n(δ) (Irwin-Hall).
	p, err := WinningProbability([]float64{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/6) > 1e-12 {
		t.Errorf("P(all thresholds 0) = %v, want 1/6", p)
	}
	// β = 1: everyone goes to bin 0, same by symmetry.
	p, err = WinningProbability([]float64{1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/6) > 1e-12 {
		t.Errorf("P(all thresholds 1) = %v, want 1/6", p)
	}
}

func TestSymmetricMatchesGeneralEqualThresholds(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7} {
		capacity := float64(n) / 3
		for beta := 0.0; beta <= 1.0001; beta += 0.1 {
			b := math.Min(beta, 1)
			ths := make([]float64, n)
			for i := range ths {
				ths[i] = b
			}
			general, err := WinningProbability(ths, capacity)
			if err != nil {
				t.Fatal(err)
			}
			symmetric, err := SymmetricWinningProbability(n, capacity, b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(general-symmetric) > 1e-11 {
				t.Errorf("n=%d β=%v: general %v vs symmetric %v", n, b, general, symmetric)
			}
		}
	}
}

func TestSymmetricWinningProbabilityPaperN3Polynomials(t *testing.T) {
	// Section 5.2.1 closed forms for n=3, δ=1.
	low := func(b float64) float64 { return 1.0/6 + 1.5*b*b - 0.5*b*b*b }
	high := func(b float64) float64 { return -11.0/6 + 9*b - 10.5*b*b + 3.5*b*b*b }
	for b := 0.0; b <= 1.00001; b += 0.01 {
		bb := math.Min(b, 1)
		want := low(bb)
		if bb > 0.5 {
			want = high(bb)
		}
		got, err := SymmetricWinningProbability(3, 1, bb)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("β=%v: P = %.15f, paper polynomial %.15f", bb, got, want)
		}
	}
}

func TestSymmetricValidation(t *testing.T) {
	if _, err := SymmetricWinningProbability(1, 1, 0.5); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := SymmetricWinningProbability(MaxNSymmetric+1, 1, 0.5); err == nil {
		t.Error("n over limit: expected error")
	}
	if _, err := SymmetricWinningProbability(3, -1, 0.5); err == nil {
		t.Error("negative capacity: expected error")
	}
	if _, err := SymmetricWinningProbability(3, 1, 1.5); err == nil {
		t.Error("β > 1: expected error")
	}
	if _, err := SymmetricWinningProbability(3, 1, math.NaN()); err == nil {
		t.Error("NaN β: expected error")
	}
}

func TestSymbolicSymmetricMatchesPaperN3(t *testing.T) {
	pw, err := SymbolicSymmetric(3, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !pw.IsContinuous() {
		t.Error("P(β) should be continuous")
	}
	// Paper's two distinct polynomials.
	lowPoly, err := poly.RatPolyFromFracs([]int64{1, 0, 3, -1}, []int64{6, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	highPoly, err := poly.RatPolyFromFracs([]int64{-11, 9, -21, 7}, []int64{6, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	half := rat(1, 2)
	for i := 0; i < pw.NumPieces(); i++ {
		piece, iv, err := pw.Piece(i)
		if err != nil {
			t.Fatal(err)
		}
		want := lowPoly
		if iv.Lo.Cmp(half) >= 0 {
			want = highPoly
		}
		if !piece.Equal(want) {
			t.Errorf("piece %d on [%v, %v] = %v, want %v", i, iv.Lo, iv.Hi, piece, want)
		}
	}
}

func TestSymbolicSymmetricMatchesFloatEverywhere(t *testing.T) {
	cases := []struct {
		n        int
		capacity *big.Rat
	}{
		{2, rat(1, 1)},
		{3, rat(1, 1)},
		{4, rat(4, 3)},
		{5, rat(5, 3)},
		{6, rat(2, 1)},
		{4, rat(1, 2)},
	}
	for _, c := range cases {
		pw, err := SymbolicSymmetric(c.n, c.capacity)
		if err != nil {
			t.Fatal(err)
		}
		if !pw.IsContinuous() {
			t.Errorf("n=%d δ=%v: P(β) should be continuous", c.n, c.capacity)
		}
		cf, _ := c.capacity.Float64()
		for num := int64(0); num <= 64; num++ {
			b := rat(num, 64)
			bf, _ := b.Float64()
			exact, err := pw.Eval(b)
			if err != nil {
				t.Fatal(err)
			}
			ef, _ := exact.Float64()
			approx, err := SymmetricWinningProbability(c.n, cf, bf)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(approx-ef) > 1e-10 {
				t.Errorf("n=%d δ=%v β=%v: float %v vs exact %v", c.n, c.capacity, bf, approx, ef)
			}
		}
	}
}

func TestSymbolicSymmetricValidation(t *testing.T) {
	if _, err := SymbolicSymmetric(1, rat(1, 1)); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := SymbolicSymmetric(3, nil); err == nil {
		t.Error("nil capacity: expected error")
	}
	if _, err := SymbolicSymmetric(3, rat(0, 1)); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := SymbolicSymmetric(MaxNSymmetric+1, rat(1, 1)); err == nil {
		t.Error("n over limit: expected error")
	}
}

func TestOptimalSymmetricPaperN3(t *testing.T) {
	// The headline Section 5.2.1 result: β* = 1 - sqrt(1/7), P* ≈ 0.545,
	// settling the Papadimitriou-Yannakakis conjecture.
	res, err := OptimalSymmetric(3, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantBeta := 1 - math.Sqrt(1.0/7)
	if math.Abs(res.BetaFloat-wantBeta) > 1e-15 {
		t.Errorf("β* = %.17g, want 1-sqrt(1/7) = %.17g", res.BetaFloat, wantBeta)
	}
	if math.Abs(res.WinProbabilityFloat-0.545) > 1e-3 {
		t.Errorf("P* = %.6f, want ≈ 0.545 (paper)", res.WinProbabilityFloat)
	}
	// The optimality condition on the winning piece is the paper's
	// 9 - 21β + (21/2)β², i.e. (21/2)(β² - 2β + 6/7).
	if res.Condition.IsZero() {
		t.Fatal("interior optimum should carry its optimality condition")
	}
	scaled := res.Condition.Scale(rat(2, 21))
	want, err := poly.RatPolyFromFracs([]int64{6, -2, 1}, []int64{7, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !scaled.Equal(want) {
		t.Errorf("optimality condition = %v, want (21/2)(β² - 2β + 6/7)", res.Condition)
	}
}

func TestOptimalSymmetricPaperN4(t *testing.T) {
	// Section 5.2.2: for n=4, δ=4/3 the paper reports β* ≈ 0.678.
	res, err := OptimalSymmetric(4, rat(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BetaFloat-0.678) > 0.005 {
		t.Errorf("β* = %.6f, want ≈ 0.678 (paper)", res.BetaFloat)
	}
	// Non-uniformity: the n=4 optimum differs from the n=3 optimum.
	n3, err := OptimalSymmetric(3, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BetaFloat-n3.BetaFloat) < 0.01 {
		t.Errorf("n=4 optimum %v too close to n=3 optimum %v: non-uniformity not visible",
			res.BetaFloat, n3.BetaFloat)
	}
}

func TestOptimalSymmetricVersusObliviousOptimum(t *testing.T) {
	// The knowledge trade-off, as actually measured. The paper states that
	// non-oblivious optima "achieve larger winning probabilities than
	// their oblivious counterparts"; that holds at n=3, δ=1 (0.5446 vs
	// 5/12) and n=5, δ=5/3, but the reproduction finds it FAILS at n=4,
	// δ=4/3, where the oblivious 1/2-coin (0.43133) beats the optimal
	// threshold algorithm (0.42854). Both values are validated against
	// Monte-Carlo simulation; EXPERIMENTS.md records the discrepancy.
	cases := []struct {
		n                  int
		capacity           *big.Rat
		thresholdShouldWin bool
	}{
		{3, rat(1, 1), true},
		{4, rat(4, 3), false},
		{5, rat(5, 3), true},
	}
	for _, c := range cases {
		res, err := OptimalSymmetric(c.n, c.capacity)
		if err != nil {
			t.Fatal(err)
		}
		cf, _ := c.capacity.Float64()
		obl, err := oblivious.Optimal(c.n, cf)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.WinProbabilityFloat > obl.WinProbability; got != c.thresholdShouldWin {
			t.Errorf("n=%d δ=%v: threshold optimum %v vs oblivious %v; thresholdWins=%v, want %v",
				c.n, c.capacity, res.WinProbabilityFloat, obl.WinProbability, got, c.thresholdShouldWin)
		}
	}
}

func TestOptimalSymmetricAgainstNumericSweep(t *testing.T) {
	// Independent numeric optimization must agree with the certified
	// symbolic optimum.
	cases := []struct {
		n        int
		capacity *big.Rat
	}{
		{3, rat(1, 1)},
		{4, rat(4, 3)},
		{5, rat(5, 3)},
		{6, rat(2, 1)},
	}
	for _, c := range cases {
		res, err := OptimalSymmetric(c.n, c.capacity)
		if err != nil {
			t.Fatal(err)
		}
		cf, _ := c.capacity.Float64()
		num, err := optimize.GridThenGoldenMax(func(b float64) float64 {
			p, err := SymmetricWinningProbability(c.n, cf, b)
			if err != nil {
				return math.Inf(-1)
			}
			return p
		}, 0, 1, 401, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(num.X-res.BetaFloat) > 1e-6 {
			t.Errorf("n=%d: numeric argmax %v vs symbolic %v", c.n, num.X, res.BetaFloat)
		}
		if math.Abs(num.Value-res.WinProbabilityFloat) > 1e-9 {
			t.Errorf("n=%d: numeric max %v vs symbolic %v", c.n, num.Value, res.WinProbabilityFloat)
		}
	}
}

func TestOptimalIsSymmetricViaFreeOptimization(t *testing.T) {
	// Theorem 5.2 implies the optimal threshold vector is symmetric; a
	// free 3-dimensional search over (a₁, a₂, a₃) must land on the
	// symmetric optimum.
	res, err := OptimalSymmetric(3, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	obj := func(x []float64) float64 {
		p, err := WinningProbability(x, 1)
		if err != nil {
			return math.Inf(-1)
		}
		return p
	}
	nm, err := optimize.NelderMeadMax(obj,
		[]float64{0.4, 0.55, 0.7},
		[]float64{0, 0, 0}, []float64{1, 1, 1},
		0.15, 20000, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nm.Value-res.WinProbabilityFloat) > 1e-6 {
		t.Errorf("free optimum %v vs symmetric optimum %v", nm.Value, res.WinProbabilityFloat)
	}
	for i, x := range nm.X {
		if math.Abs(x-res.BetaFloat) > 1e-2 {
			t.Errorf("free optimum coordinate %d = %v, want symmetric %v", i, x, res.BetaFloat)
		}
	}
}

func TestWinningProbabilityAgainstSimulation(t *testing.T) {
	ths := []float64{0.4, 0.7, 0.55, 0.62}
	capacity := 4.0 / 3
	analytic, err := WinningProbability(ths, capacity)
	if err != nil {
		t.Fatal(err)
	}
	rules := make([]model.LocalRule, len(ths))
	for i, a := range ths {
		r, err := model.NewThresholdRule(a)
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = r
	}
	sys, err := model.NewSystem(rules, capacity)
	if err != nil {
		t.Fatal(err)
	}
	resSim, err := sim.WinProbability(sys, sim.Config{Trials: 400000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resSim.P-analytic) > 4*resSim.StdErr {
		t.Errorf("Theorem 5.1 gives %v, simulation %v ± %v", analytic, resSim.P, resSim.StdErr)
	}
}

func TestLargeCapacityWinsAlmostSurely(t *testing.T) {
	// δ ≥ n means no bin can ever overflow.
	p, err := SymmetricWinningProbability(4, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("P with δ=n = %v, want 1", p)
	}
}

func TestEndpointsMatchIrwinHallProperty(t *testing.T) {
	// P(β=0) = F_n(δ) and P(β=1) = F_n(δ) for all n, δ.
	f := func(nRaw, capRaw uint8) bool {
		n := 2 + int(nRaw%8)
		capacity := 0.3 + float64(capRaw)/64
		fn, err := dist.IrwinHallCDF(n, capacity)
		if err != nil {
			return false
		}
		p0, err := SymmetricWinningProbability(n, capacity, 0)
		if err != nil {
			return false
		}
		p1, err := SymmetricWinningProbability(n, capacity, 1)
		if err != nil {
			return false
		}
		return math.Abs(p0-fn) < 1e-10 && math.Abs(p1-fn) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComplementSymmetryProperty(t *testing.T) {
	// Swapping bins maps β to 1-β: P(β) = P(1-β)? This does NOT hold in
	// general (the bins see different conditional distributions), but the
	// probability must be invariant under relabeling players.
	f := func(aRaw, bRaw, cRaw uint16, capRaw uint8) bool {
		ths := []float64{float64(aRaw) / 65535, float64(bRaw) / 65535, float64(cRaw) / 65535}
		capacity := 0.4 + float64(capRaw)/100
		p1, err1 := WinningProbability(ths, capacity)
		p2, err2 := WinningProbability([]float64{ths[2], ths[0], ths[1]}, capacity)
		return err1 == nil && err2 == nil && math.Abs(p1-p2) < 1e-11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdCurveIsAsymmetric(t *testing.T) {
	// Unlike the oblivious curve, P(β) is NOT symmetric about 1/2 (the
	// bin-0 load is a sum of inputs conditioned small, the bin-1 load a
	// sum conditioned large) — which is exactly why the optimum sits at
	// 0.622 rather than 0.5 for n=3, δ=1.
	pLow, err := SymmetricWinningProbability(3, 1, 0.378)
	if err != nil {
		t.Fatal(err)
	}
	pHigh, err := SymmetricWinningProbability(3, 1, 0.622)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pLow-pHigh) < 1e-3 {
		t.Errorf("P(0.378)=%v and P(0.622)=%v should differ (asymmetric curve)", pLow, pHigh)
	}
	if pHigh < pLow {
		t.Errorf("P(0.622)=%v should exceed P(0.378)=%v", pHigh, pLow)
	}
}

func TestOptimalSymmetricValidation(t *testing.T) {
	if _, err := OptimalSymmetric(1, rat(1, 1)); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := OptimalSymmetric(3, rat(-1, 1)); err == nil {
		t.Error("negative capacity: expected error")
	}
}
