package nonoblivious

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestWinningProbabilityPiMatchesHomogeneous pins the heterogeneous
// evaluator to Theorem 5.1 when every range is 1 (spelled out or nil).
func TestWinningProbabilityPiMatchesHomogeneous(t *testing.T) {
	thresholdSets := [][]float64{
		{0.5, 0.5, 0.5},
		{0.3, 0.7, 0.5},
		{1, 0, 0.25, 0.9},
	}
	for _, ths := range thresholdSets {
		for _, capacity := range []float64{0.5, 1, 1.5} {
			want, err := WinningProbability(ths, capacity)
			if err != nil {
				t.Fatalf("WinningProbability(%v, %v): %v", ths, capacity, err)
			}
			ones := make([]float64, len(ths))
			for i := range ones {
				ones[i] = 1
			}
			for _, pi := range [][]float64{nil, ones} {
				got, err := WinningProbabilityPi(ths, pi, capacity)
				if err != nil {
					t.Fatalf("WinningProbabilityPi(%v, %v, %v): %v", ths, pi, capacity, err)
				}
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("WinningProbabilityPi(%v, %v, %v) = %v, want %v", ths, pi, capacity, got, want)
				}
			}
		}
	}
}

// TestWinningProbabilityPiDegenerate pins hand-checkable heterogeneous
// cases.
func TestWinningProbabilityPiDegenerate(t *testing.T) {
	// Thresholds at the top of each range: both players always choose
	// bin 0, so the game wins iff x_0 + x_1 ≤ δ; for π = (1/2, 1), δ = 1
	// that is 3/4 (triangle cut off the (1/2)×1 rectangle).
	got, err := WinningProbabilityPi([]float64{0.5, 1}, []float64{0.5, 1}, 1)
	if err != nil {
		t.Fatalf("WinningProbabilityPi: %v", err)
	}
	if want := 0.75; math.Abs(got-want) > 1e-12 {
		t.Fatalf("all-low = %v, want %v", got, want)
	}

	// Zero thresholds: both players always choose bin 1 (x_i > 0 a.s.),
	// same fit probability on the other bin.
	got, err = WinningProbabilityPi([]float64{0, 0}, []float64{0.5, 1}, 1)
	if err != nil {
		t.Fatalf("WinningProbabilityPi: %v", err)
	}
	if want := 0.75; math.Abs(got-want) > 1e-12 {
		t.Fatalf("all-high = %v, want %v", got, want)
	}
}

// TestWinningProbabilityPiMonteCarlo cross-checks the conditioned
// subset-sum evaluator against direct simulation of the heterogeneous
// threshold game, on a mix of unit and non-unit ranges so both the
// Lemma 2.7 branch and the shift-identity branch are exercised.
func TestWinningProbabilityPiMonteCarlo(t *testing.T) {
	cases := []struct {
		ths, pi  []float64
		capacity float64
	}{
		{[]float64{0.4, 0.6, 0.5}, []float64{0.5, 1, 0.75}, 0.8},
		{[]float64{0.5, 0.5, 0.5}, []float64{0.5, 1, 1}, 1},
		{[]float64{0.3, 0.9}, []float64{2, 0.25}, 1.2},
	}
	for _, tc := range cases {
		exact, err := WinningProbabilityPi(tc.ths, tc.pi, tc.capacity)
		if err != nil {
			t.Fatalf("WinningProbabilityPi(%v, %v, %v): %v", tc.ths, tc.pi, tc.capacity, err)
		}
		rng := rand.New(rand.NewPCG(3, 13))
		const trials = 400_000
		wins := 0
		for trial := 0; trial < trials; trial++ {
			var load0, load1 float64
			for i := range tc.ths {
				x := rng.Float64() * tc.pi[i]
				if x <= tc.ths[i] {
					load0 += x
				} else {
					load1 += x
				}
			}
			if load0 <= tc.capacity && load1 <= tc.capacity {
				wins++
			}
		}
		mc := float64(wins) / trials
		se := math.Sqrt(math.Max(exact*(1-exact), 1e-12) / trials)
		if math.Abs(mc-exact) > 4*se+1e-9 {
			t.Fatalf("case %v/%v/%v: exact %v vs MC %v differ by more than 4σ (σ=%v)",
				tc.ths, tc.pi, tc.capacity, exact, mc, se)
		}
	}
}

// TestWinningProbabilityPiRejects covers the validation paths.
func TestWinningProbabilityPiRejects(t *testing.T) {
	cases := []struct {
		name     string
		ths      []float64
		pi       []float64
		capacity float64
	}{
		{"short pi", []float64{0.5, 0.5}, []float64{0.5}, 1},
		{"zero range", []float64{0.5, 0.5}, []float64{0, 1}, 1},
		{"negative range", []float64{0.5, 0.5}, []float64{-1, 2}, 1},
		{"NaN range", []float64{0.5, 0.5}, []float64{math.NaN(), 2}, 1},
		{"bad threshold", []float64{1.5, 0.5}, []float64{0.5, 1}, 1},
		{"bad capacity", []float64{0.5, 0.5}, []float64{0.5, 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := WinningProbabilityPi(tc.ths, tc.pi, tc.capacity); err == nil {
				t.Fatalf("WinningProbabilityPi(%v, %v, %v) succeeded, want error", tc.ths, tc.pi, tc.capacity)
			}
		})
	}
}
