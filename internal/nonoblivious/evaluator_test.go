package nonoblivious

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
)

// TestEvaluatorEvaluateBitIdentical pins the evaluator's full path against
// WinningProbabilityOpts bit for bit across repeated reuse of the same
// tables.
func TestEvaluatorEvaluateBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 1))
	for _, n := range []int{2, 5, 9, 12} {
		capacity := float64(n) / 3
		ev, err := NewEvaluator(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			ths := make([]float64, n)
			for i := range ths {
				ths[i] = rng.Float64()
			}
			want, err := WinningProbabilityOpts(ths, capacity, 1, nil)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			got, err := ev.Evaluate(ths)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("n=%d trial %d: evaluator %x, WinningProbabilityOpts %x",
					n, trial, math.Float64bits(got), math.Float64bits(want))
			}
			if math.Float64bits(ev.Value()) != math.Float64bits(want) {
				t.Errorf("n=%d trial %d: committed value drifted", n, trial)
			}
		}
	}
}

// TestEvaluatorCoordinateWalk drives a 200-step random coordinate walk of
// SetCoord commits and checks every step against a fresh
// WinningProbabilityOpts rebuild within ExactErrorBound.
func TestEvaluatorCoordinateWalk(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 2))
	for _, n := range []int{2, 6, 10} {
		capacity := float64(n) / 3
		bound := ExactErrorBound(n, capacity, 1)
		ev, err := NewEvaluator(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		ths := make([]float64, n)
		for i := range ths {
			ths[i] = rng.Float64()
		}
		if _, err := ev.Evaluate(ths); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200; step++ {
			i := rng.IntN(n)
			ths[i] = rng.Float64()
			got, err := ev.SetCoord(i, ths[i])
			if err != nil {
				t.Fatal(err)
			}
			want, err := WinningProbabilityOpts(ths, capacity, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got - want); d > bound {
				t.Fatalf("n=%d step %d: delta %v vs rebuild %v (|diff| %g exceeds bound %g)",
					n, step, got, want, d, bound)
			}
		}
		stats := ev.Stats()
		if stats.DeltaUpdates == 0 || stats.DeltaSubsets == 0 {
			t.Errorf("n=%d: delta counters empty after walk: %+v", n, stats)
		}
	}
}

// TestEvaluatorProfileMatchesRebuild probes single-coordinate lines
// through EvaluateVector — the non-committing profile path the optimizer's
// line searches hit — and checks each probe against a fresh rebuild, plus
// that the committed state stayed at the base vector.
func TestEvaluatorProfileMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 3))
	for _, n := range []int{2, 3, 6, 10} {
		capacity := float64(n) / 3
		bound := ExactErrorBound(n, capacity, 1)
		ev, err := NewEvaluator(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		base := make([]float64, n)
		for i := range base {
			base[i] = rng.Float64()
		}
		committed, err := ev.Evaluate(base)
		if err != nil {
			t.Fatal(err)
		}
		probe := make([]float64, n)
		for line := 0; line < 2*n; line++ {
			i := rng.IntN(n)
			for p := 0; p < 10; p++ {
				copy(probe, base)
				probe[i] = rng.Float64()
				got, err := ev.EvaluateVector(probe)
				if err != nil {
					t.Fatal(err)
				}
				want, err := WinningProbabilityOpts(probe, capacity, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(got - want); d > bound {
					t.Fatalf("n=%d line %d coord %d probe %v: profile %v vs rebuild %v (|diff| %g exceeds bound %g)",
						n, line, i, probe[i], got, want, d, bound)
				}
			}
		}
		if math.Float64bits(ev.Value()) != math.Float64bits(committed) {
			t.Errorf("n=%d: probes moved the committed value", n)
		}
	}
}

// TestEvaluatorAscentPattern exercises the coordinate-ascent shape: probe
// a line, commit its best by probing the next line with two coordinates
// changed (the profiled one plus the next), as the optimizer's closures
// do.
func TestEvaluatorAscentPattern(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 4))
	const n = 7
	capacity := float64(n) / 3
	bound := ExactErrorBound(n, capacity, 1)
	ev, err := NewEvaluator(n, capacity)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	if _, err := ev.Evaluate(x); err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, n)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			// Probe the line at coordinate i a few times.
			for p := 0; p < 5; p++ {
				copy(probe, x)
				probe[i] = rng.Float64()
				got, err := ev.EvaluateVector(probe)
				if err != nil {
					t.Fatal(err)
				}
				want, err := WinningProbabilityOpts(probe, capacity, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(got - want); d > bound {
					t.Fatalf("pass %d line %d probe %d: %v vs %v (|diff| %g)", pass, i, p, got, want, d)
				}
			}
			// Commit a new value for i implicitly by probing line i+1 with
			// both coordinates changed.
			x[i] = rng.Float64()
			j := (i + 1) % n
			copy(probe, x)
			probe[j] = rng.Float64()
			got, err := ev.EvaluateVector(probe)
			if err != nil {
				t.Fatal(err)
			}
			want, err := WinningProbabilityOpts(probe, capacity, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got - want); d > bound {
				t.Fatalf("pass %d commit %d: %v vs %v (|diff| %g)", pass, i, got, want, d)
			}
		}
	}
}

// TestEvaluatorMatchesRatOracle checks delta-updated values against the
// exact rational oracle on random dyadic walks for every n up to the
// oracle cap.
func TestEvaluatorMatchesRatOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 5))
	for n := 2; n <= MaxNExact; n++ {
		capF, capR := dyadicCapacity(n)
		bound := ExactErrorBound(n, capF, 1)
		ev, err := NewEvaluator(n, capF)
		if err != nil {
			t.Fatal(err)
		}
		ths := make([]float64, n)
		thsR := make([]*big.Rat, n)
		for i := range ths {
			ths[i], thsR[i] = dyadic64(rng, 0, 64)
		}
		if _, err := ev.Evaluate(ths); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20; step++ {
			i := rng.IntN(n)
			ths[i], thsR[i] = dyadic64(rng, 0, 64)
			got, err := ev.SetCoord(i, ths[i])
			if err != nil {
				t.Fatal(err)
			}
			want, err := WinningProbabilityRat(thsR, capR)
			if err != nil {
				t.Fatal(err)
			}
			wf, _ := want.Float64()
			if d := math.Abs(got - wf); d > bound {
				t.Fatalf("n=%d step %d: delta %v vs oracle %v (|diff| %g exceeds bound %g)",
					n, step, got, wf, d, bound)
			}
		}
	}
}

// TestEvaluatorSteadyStateAllocs pins the steady-state paths at zero
// allocations per operation: full Evaluate reuse, SetCoord delta commits,
// and line-profile probes.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	const n = 8
	capacity := float64(n) / 3
	ev, err := NewEvaluator(n, capacity)
	if err != nil {
		t.Fatal(err)
	}
	ths := make([]float64, n)
	for i := range ths {
		ths[i] = float64(i+1) / float64(n+1)
	}
	if _, err := ev.Evaluate(ths); err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, n)
	copy(probe, ths)
	if got := testing.AllocsPerRun(20, func() {
		if _, err := ev.Evaluate(ths); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Evaluate: %v allocs/op, want 0", got)
	}
	flip := 0.25
	if got := testing.AllocsPerRun(20, func() {
		flip = 0.75 - flip
		if _, err := ev.SetCoord(2, flip); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("SetCoord: %v allocs/op, want 0", got)
	}
	copy(probe, ev.Thresholds())
	step := 0.0
	if got := testing.AllocsPerRun(20, func() {
		step += 0.01
		probe[5] = 0.3 + step
		if _, err := ev.EvaluateVector(probe); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("EvaluateVector profile probe: %v allocs/op, want 0", got)
	}
}

// TestEvaluatorErrors covers the guards: construction bounds, vector
// validation, and SetCoord misuse.
func TestEvaluatorErrors(t *testing.T) {
	if _, err := NewEvaluator(1, 1); err == nil {
		t.Error("NewEvaluator(1) accepted")
	}
	if _, err := NewEvaluator(MaxNGeneral+1, 1); err == nil {
		t.Error("NewEvaluator over cap accepted")
	}
	if _, err := NewEvaluator(3, math.NaN()); err == nil {
		t.Error("NaN capacity accepted")
	}
	ev, err := NewEvaluator(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.SetCoord(0, 0.5); err == nil {
		t.Error("SetCoord before Evaluate accepted")
	}
	if _, err := ev.Evaluate([]float64{0.5, 0.5}); err == nil {
		t.Error("wrong-length vector accepted")
	}
	if _, err := ev.Evaluate([]float64{0.5, 0.5, 1.5}); err == nil {
		t.Error("threshold above 1 accepted")
	}
	if _, err := ev.Evaluate([]float64{0.5, 0.5, math.NaN()}); err == nil {
		t.Error("NaN threshold accepted")
	}
	if _, err := ev.Evaluate([]float64{0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.SetCoord(-1, 0.5); err == nil {
		t.Error("SetCoord(-1) accepted")
	}
	if _, err := ev.SetCoord(3, 0.5); err == nil {
		t.Error("SetCoord out of range accepted")
	}
	if _, err := ev.SetCoord(0, -0.1); err == nil {
		t.Error("SetCoord below 0 accepted")
	}
	if _, err := ev.SetCoord(0, math.NaN()); err == nil {
		t.Error("SetCoord NaN accepted")
	}
}

// FuzzEvaluatorSetCoord feeds hostile coordinates and values — NaN,
// infinities, out-of-range indices, values outside [0, 1] — and requires
// the evaluator to reject them with an error (never a panic) while valid
// updates stay within the certified bound of a fresh rebuild.
func FuzzEvaluatorSetCoord(f *testing.F) {
	f.Add(0, 0.5)
	f.Add(-1, 0.25)
	f.Add(4, 2.0)
	f.Add(2, math.NaN())
	f.Add(1, math.Inf(1))
	f.Add(3, -0.5)
	const n = 4
	capacity := 4.0 / 3
	f.Fuzz(func(t *testing.T, i int, v float64) {
		ev, err := NewEvaluator(n, capacity)
		if err != nil {
			t.Fatal(err)
		}
		ths := []float64{0.25, 0.5, 0.75, 0.375}
		if _, err := ev.Evaluate(ths); err != nil {
			t.Fatal(err)
		}
		got, err := ev.SetCoord(i, v)
		if err != nil {
			return // rejected, fine — must not panic
		}
		if i < 0 || i >= n || math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("SetCoord(%d, %v) accepted invalid input", i, v)
		}
		ths[i] = v
		want, err := WinningProbabilityOpts(ths, capacity, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got - want); d > ExactErrorBound(n, capacity, 1) {
			t.Fatalf("SetCoord(%d, %v) = %v, rebuild %v (|diff| %g)", i, v, got, want, d)
		}
	})
}
