package nonoblivious

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
)

// dyadicCapacity returns δ = round(n·64/3)/64 as (float64, *big.Rat): a
// capacity near the paper's δ = n/3 regime that is exactly representable
// in both arithmetics, so the float and rational evaluators see the same
// instance bit-for-bit.
func dyadicCapacity(n int) (float64, *big.Rat) {
	k := int64(math.Round(float64(n) * 64 / 3))
	return float64(k) / 64, big.NewRat(k, 64)
}

// dyadic64 returns k/64 with k ~ U{lo, ..., hi} as matching float64 and
// big.Rat values.
func dyadic64(rng *rand.Rand, lo, hi int64) (float64, *big.Rat) {
	k := lo + rng.Int64N(hi-lo+1)
	return float64(k) / 64, big.NewRat(k, 64)
}

// TestWinningProbabilityMatchesRatOracle pins the float64 Theorem 5.1
// fast path against the exact rational oracle on random dyadic threshold
// vectors for every n up to the oracle cap, within the documented
// ExactErrorBound.
func TestWinningProbabilityMatchesRatOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 1))
	for n := 2; n <= MaxNExact; n++ {
		capF, capR := dyadicCapacity(n)
		bound := ExactErrorBound(n, capF, 1)
		for trial := 0; trial < 3; trial++ {
			ths := make([]float64, n)
			thsR := make([]*big.Rat, n)
			for i := range ths {
				ths[i], thsR[i] = dyadic64(rng, 0, 64)
			}
			got, err := WinningProbability(ths, capF)
			if err != nil {
				t.Fatalf("n=%d float: %v", n, err)
			}
			want, err := WinningProbabilityRat(thsR, capR)
			if err != nil {
				t.Fatalf("n=%d rat: %v", n, err)
			}
			wf, _ := want.Float64()
			if d := math.Abs(got - wf); d > bound {
				t.Errorf("n=%d trial %d: float %v vs oracle %v, |diff| %g exceeds certified bound %g",
					n, trial, got, wf, d, bound)
			}
		}
	}
}

// TestWinningProbabilityPiMatchesRatOracle pins the heterogeneous float64
// path (SOS bin-0 table + pruned DFS bin-1 walk) against its rational
// oracle on random dyadic thresholds and input ranges π ∈ [1/2, 2].
func TestWinningProbabilityPiMatchesRatOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 2))
	for n := 2; n <= MaxNExact; n++ {
		capF, capR := dyadicCapacity(n)
		for trial := 0; trial < 3; trial++ {
			ths := make([]float64, n)
			thsR := make([]*big.Rat, n)
			pis := make([]float64, n)
			pisR := make([]*big.Rat, n)
			piMin := math.Inf(1)
			for i := range ths {
				ths[i], thsR[i] = dyadic64(rng, 0, 64)
				pis[i], pisR[i] = dyadic64(rng, 32, 128)
				piMin = math.Min(piMin, pis[i])
			}
			bound := ExactErrorBound(n, capF, piMin)
			got, err := WinningProbabilityPi(ths, pis, capF)
			if err != nil {
				t.Fatalf("n=%d float: %v", n, err)
			}
			want, err := WinningProbabilityPiRat(thsR, pisR, capR)
			if err != nil {
				t.Fatalf("n=%d rat: %v", n, err)
			}
			wf, _ := want.Float64()
			if d := math.Abs(got - wf); d > bound {
				t.Errorf("n=%d trial %d: float %v vs oracle %v, |diff| %g exceeds certified bound %g",
					n, trial, got, wf, d, bound)
			}
		}
	}
}

// TestExactWorkerDeterminism requires the sharded enumerations to be
// bit-identical across worker counts — the property that keeps the worker
// count out of the engine's cache key.
func TestExactWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 3))
	const n = 12
	capF, _ := dyadicCapacity(n)
	ths := make([]float64, n)
	pis := make([]float64, n)
	for i := range ths {
		ths[i], _ = dyadic64(rng, 0, 64)
		pis[i], _ = dyadic64(rng, 32, 128)
	}
	base, err := WinningProbabilityOpts(ths, capF, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseHet, err := WinningProbabilityPiOpts(ths, pis, capF, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := WinningProbabilityOpts(ths, capF, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(base) {
			t.Errorf("homogeneous: workers=%d returned %x, workers=1 returned %x",
				workers, math.Float64bits(got), math.Float64bits(base))
		}
		gotHet, err := WinningProbabilityPiOpts(ths, pis, capF, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotHet) != math.Float64bits(baseHet) {
			t.Errorf("hetero: workers=%d returned %x, workers=1 returned %x",
				workers, math.Float64bits(gotHet), math.Float64bits(baseHet))
		}
	}
}

// TestOptimalSymmetricPinnedN3 pins the certified Sturm-isolated optimum
// for the paper's flagship instance (n = 3, δ = 1) to more than 10
// decimal places: β* the root of the monic β² − 2β + 6/7 on the optimal
// piece, and the winning probability there.
func TestOptimalSymmetricPinnedN3(t *testing.T) {
	res, err := OptimalSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	const (
		wantBeta = 0.6220355269907728
		wantP    = 0.5446311396758939
	)
	if d := math.Abs(res.BetaFloat - wantBeta); d > 5e-14 {
		t.Errorf("β* = %.16f, want %.16f (|diff| %g)", res.BetaFloat, wantBeta, d)
	}
	if d := math.Abs(res.WinProbabilityFloat - wantP); d > 5e-14 {
		t.Errorf("P* = %.16f, want %.16f (|diff| %g)", res.WinProbabilityFloat, wantP, d)
	}
}
