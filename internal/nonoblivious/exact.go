package nonoblivious

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
	"repro/internal/poly"
)

// MaxNExact bounds the player count for the exact rational Theorem 5.1
// evaluation of general threshold vectors (Θ(3^n) big.Rat arithmetic).
const MaxNExact = 10

// WinningProbabilityRat evaluates Theorem 5.1 exactly for rational
// thresholds and capacity. It is the certified oracle behind the float64
// path: Σ_b N₀(b)·N₁(b) with both numerators computed in exact rational
// arithmetic. The outer enumeration walks bin vectors in Gray-code order,
// maintaining the two bins' threshold lists by O(1) swap-deletes per step
// (the numerators are symmetric in their arguments, so list order is
// immaterial).
func WinningProbabilityRat(thresholds []*big.Rat, capacity *big.Rat) (*big.Rat, error) {
	n := len(thresholds)
	if n < 2 {
		return nil, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNExact {
		return nil, fmt.Errorf("nonoblivious: exact evaluation limited to %d players, got %d", MaxNExact, n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("nonoblivious: capacity must be strictly positive")
	}
	one := big.NewRat(1, 1)
	for i, a := range thresholds {
		if a == nil || a.Sign() < 0 || a.Cmp(one) > 0 {
			return nil, fmt.Errorf("nonoblivious: threshold[%d] outside [0, 1]", i)
		}
	}
	total := new(big.Rat)
	// Gray walk state: player i's threshold lives at index loc[i] of the
	// bin its current side selects; zeroID/oneID invert loc for the
	// swap-delete that keeps both lists dense.
	zeros := make([]*big.Rat, n)
	zeroID := make([]int, n)
	loc := make([]int, n)
	for i, a := range thresholds {
		zeros[i], zeroID[i], loc[i] = a, i, i
	}
	ones := make([]*big.Rat, 0, n)
	oneID := make([]int, 0, n)
	err := combin.ForEachSubsetGray(n, func(b uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added { // bin 0 → bin 1
				j, last := loc[flipped], len(zeros)-1
				zeros[j], zeroID[j] = zeros[last], zeroID[last]
				loc[zeroID[j]] = j
				zeros, zeroID = zeros[:last], zeroID[:last]
				loc[flipped] = len(ones)
				ones = append(ones, thresholds[flipped])
				oneID = append(oneID, flipped)
			} else { // bin 1 → bin 0
				j, last := loc[flipped], len(ones)-1
				ones[j], oneID[j] = ones[last], oneID[last]
				loc[oneID[j]] = j
				ones, oneID = ones[:last], oneID[:last]
				loc[flipped] = len(zeros)
				zeros = append(zeros, thresholds[flipped])
				zeroID = append(zeroID, flipped)
			}
		}
		n0, err := bin0NumeratorRat(zeros, capacity)
		if err != nil || n0.Sign() == 0 {
			return true
		}
		n1, err := bin1NumeratorRat(ones, capacity)
		if err != nil {
			return true
		}
		total.Add(total, n0.Mul(n0, n1))
		return true
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// bin0NumeratorRat is the exact rational counterpart of bin0Numerator.
func bin0NumeratorRat(a []*big.Rat, capacity *big.Rat) (*big.Rat, error) {
	m := len(a)
	if m == 0 {
		return big.NewRat(1, 1), nil
	}
	total := new(big.Rat)
	running := new(big.Rat)
	rem := new(big.Rat)
	err := combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running.Add(running, a[flipped])
			} else {
				running.Sub(running, a[flipped])
			}
		}
		rem.Sub(capacity, running)
		if rem.Sign() <= 0 {
			return true
		}
		term := ratPowLocal(rem, m)
		if combin.Popcount(mask)%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	inv, err := combin.InvFactorialRat(m)
	if err != nil {
		return nil, err
	}
	total.Mul(total, inv)
	if total.Sign() < 0 {
		return new(big.Rat), nil
	}
	return total, nil
}

// bin1NumeratorRat is the exact rational counterpart of bin1Numerator.
func bin1NumeratorRat(a []*big.Rat, capacity *big.Rat) (*big.Rat, error) {
	m := len(a)
	if m == 0 {
		return big.NewRat(1, 1), nil
	}
	one := big.NewRat(1, 1)
	prod := big.NewRat(1, 1)
	for _, ai := range a {
		f := new(big.Rat).Sub(one, ai)
		prod.Mul(prod, f)
	}
	base := new(big.Rat).SetInt64(int64(m))
	base.Sub(base, capacity)
	total := new(big.Rat)
	running := new(big.Rat)
	rem := new(big.Rat)
	err := combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running.Add(running, a[flipped])
			} else {
				running.Sub(running, a[flipped])
			}
		}
		rem.SetInt64(int64(combin.Popcount(mask)))
		rem.Sub(base, rem)
		rem.Add(rem, running)
		if rem.Sign() <= 0 {
			return true
		}
		term := ratPowLocal(rem, m)
		if combin.Popcount(mask)%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	inv, err := combin.InvFactorialRat(m)
	if err != nil {
		return nil, err
	}
	total.Mul(total, inv)
	out := new(big.Rat).Sub(prod, total)
	if out.Sign() < 0 {
		return new(big.Rat), nil
	}
	return out, nil
}

func ratPowLocal(r *big.Rat, n int) *big.Rat {
	out := big.NewRat(1, 1)
	base := new(big.Rat).Set(r)
	for n > 0 {
		if n&1 == 1 {
			out.Mul(out, base)
		}
		base.Mul(base, base)
		n >>= 1
	}
	return out
}

// OptimalityResidual evaluates the Theorem 5.2 optimality condition for
// the symmetric single-threshold algorithm: dP/dβ at the given rational β,
// computed exactly from the symbolic piecewise polynomial. A zero value
// (together with a negative second derivative) certifies a stationary
// point of the winning probability; the paper's optimal β* satisfies
// residual = 0. At the exact breakpoints the left piece's derivative is
// reported.
func OptimalityResidual(n int, capacity, beta *big.Rat) (*big.Rat, error) {
	if beta == nil || beta.Sign() < 0 || beta.Cmp(big.NewRat(1, 1)) > 0 {
		return nil, fmt.Errorf("nonoblivious: threshold outside [0, 1]")
	}
	pw, err := SymbolicSymmetric(n, capacity)
	if err != nil {
		return nil, err
	}
	return pw.Derivative().Eval(beta)
}

// SecondDerivative evaluates d²P/dβ² at β from the symbolic curve — used
// together with OptimalityResidual to certify a maximum.
func SecondDerivative(n int, capacity, beta *big.Rat) (*big.Rat, error) {
	if beta == nil || beta.Sign() < 0 || beta.Cmp(big.NewRat(1, 1)) > 0 {
		return nil, fmt.Errorf("nonoblivious: threshold outside [0, 1]")
	}
	pw, err := SymbolicSymmetric(n, capacity)
	if err != nil {
		return nil, err
	}
	return pw.Derivative().Derivative().Eval(beta)
}

// SweepOptima derives the certified optimum for each instance size in ns
// with the capacity produced by scale (for example δ = n/3). It is the
// engine behind the uniformity analyses: the returned β* sequence is
// non-constant, demonstrating the paper's non-uniformity theorem.
func SweepOptima(ns []int, scale func(n int) *big.Rat) ([]OptimalResult, error) {
	if scale == nil {
		return nil, fmt.Errorf("nonoblivious: nil capacity scaling")
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("nonoblivious: empty instance list")
	}
	out := make([]OptimalResult, len(ns))
	for i, n := range ns {
		capacity := scale(n)
		res, err := OptimalSymmetric(n, capacity)
		if err != nil {
			return nil, fmt.Errorf("nonoblivious: optimum for n=%d: %w", n, err)
		}
		out[i] = res
	}
	return out, nil
}

// PolyFromCondition normalizes an optimality-condition polynomial to monic
// form for presentation (the paper reports the monic β² - 2β + 6/7).
func PolyFromCondition(cond poly.RatPoly) poly.RatPoly {
	if cond.IsZero() {
		return cond
	}
	lead := cond.LeadingCoeff()
	if lead.Sign() == 0 {
		return cond
	}
	return cond.Scale(new(big.Rat).Inv(lead))
}
