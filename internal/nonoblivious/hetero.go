package nonoblivious

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/combin"
	"repro/internal/dist"
	"repro/internal/obs"
)

// MaxNHetero bounds the player count for heterogeneous-input evaluation.
// Unlike the homogeneous path, the bin-1 numerator's inclusion-exclusion
// threshold δ − Σ_{i∈S} a_i varies with the outer set S, which defeats the
// sum-over-subsets collapse; the evaluation falls back to a pruned
// depth-first walk per outer set (worst case Θ(3^n), heavily cut by the
// positivity guards), so the heterogeneous cap stays at the old general
// limit while the homogeneous MaxNGeneral moved to 20.
const MaxNHetero = 15

// WinningProbabilityPi generalizes Theorem 5.1 to heterogeneous inputs
// x_i ~ U[0, π_i]: the probability that neither bin overflows capacity δ
// when player i sends its input to bin 0 exactly when x_i ≤ thresholds[i].
// A nil (or all-ones) π delegates to the homogeneous Theorem 5.1
// evaluator. Thresholds stay in [0, 1], matching the rule class the model
// layer admits; a threshold above π_i simply sends player i to bin 0
// always.
func WinningProbabilityPi(thresholds, pi []float64, capacity float64) (float64, error) {
	return WinningProbabilityPiOpts(thresholds, pi, capacity, 0, nil)
}

// WinningProbabilityPiOpts is WinningProbabilityPi with explicit worker
// sharding and observability. workers ≤ 1 evaluates serially; every worker
// count returns bit-identical results (fixed chunk grid, fixed-order
// reduction). A nil observer disables instrumentation.
//
// The evaluation conditions per bin exactly as the homogeneous proof does.
// Writing S for the bin-1 set, Z = Sᶜ, c_i = min(a_i, π_i) and
// w_i = π_i − a_i:
//
//   - bin 0 contributes P(x_i ≤ a_i ∀i∈Z, Σ_Z x ≤ δ) =
//     Vol{0 ≤ y_i ≤ c_i, Σ y ≤ δ} / Π_{i∈Z} π_i — a Proposition 2.2
//     volume at the shared threshold δ, so all 2^n of them come from one
//     dist.AllSubsetVolumes sum-over-subsets table;
//   - bin 1 contributes P(x_i > a_i ∀i∈S, Σ_S x ≤ δ) =
//     Vol{0 ≤ y_i ≤ w_i, Σ y ≤ δ − Σ_{i∈S} a_i} / Π_{i∈S} π_i — the shift
//     identity behind Lemma 2.7. Its threshold depends on S, so this side
//     is evaluated per outer set by a depth-first inclusion-exclusion walk
//     over S's widths in ascending order, visiting only the subsets with
//     positive remainder (once a partial width sum reaches the threshold,
//     every extension and every later sibling is pruned).
//
// Outer sets are skipped wholesale when any member has a_i ≥ π_i (it can
// never choose bin 1), when δ − Σ_{i∈S} a_i ≤ 0, when |S| exceeds the
// largest cardinality whose cheapest threshold sum stays below δ, or when
// the bin-0 side already vanishes.
func WinningProbabilityPiOpts(thresholds, pi []float64, capacity float64, workers int, o *obs.Observer) (float64, error) {
	n := len(thresholds)
	if n < 2 {
		return 0, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	hetero := false
	for _, w := range pi {
		if w != 1 {
			hetero = true
			break
		}
	}
	if !hetero {
		return WinningProbabilityOpts(thresholds, capacity, workers, o)
	}
	if len(pi) != n {
		return 0, fmt.Errorf("nonoblivious: %d input ranges for %d players", len(pi), n)
	}
	for i, w := range pi {
		if !(w > 0) || math.IsInf(w, 1) {
			return 0, fmt.Errorf("nonoblivious: input range π[%d] = %v must be strictly positive and finite", i, w)
		}
	}
	if n > MaxNHetero {
		return 0, fmt.Errorf("nonoblivious: heterogeneous evaluation limited to %d players, got %d", MaxNHetero, n)
	}
	if err := validateCapacity(capacity); err != nil {
		return 0, err
	}
	for i, a := range thresholds {
		if math.IsNaN(a) || a < 0 || a > 1 {
			return 0, fmt.Errorf("nonoblivious: threshold[%d] = %v outside [0, 1]", i, a)
		}
	}
	if workers <= 0 {
		workers = 1
	}
	lows := make([]float64, n)  // c_i = min(a_i, π_i): conditional bin-0 widths
	highs := make([]float64, n) // w_i = π_i − a_i: residual bin-1 widths
	piProd := 1.0
	var badHigh uint64 // players that can never choose bin 1
	for i := 0; i < n; i++ {
		piProd *= pi[i]
		lows[i] = math.Min(thresholds[i], pi[i])
		if w := pi[i] - thresholds[i]; w > 0 {
			highs[i] = w
		} else {
			badHigh |= 1 << uint(i)
		}
	}
	vol0, stats, err := dist.AllSubsetVolumes(lows, capacity, workers)
	if err != nil {
		return 0, err
	}
	aSums, err := combin.SubsetSums(thresholds)
	if err != nil {
		return 0, err
	}
	wSums, err := combin.SubsetSums(highs)
	if err != nil {
		return 0, err
	}
	wProd, err := combin.SubsetProducts(highs)
	if err != nil {
		return 0, err
	}
	invFact := make([]float64, n+1)
	for m := 0; m <= n; m++ {
		f, err := combin.FactorialFloat(m)
		if err != nil {
			return 0, err
		}
		invFact[m] = 1 / f
	}
	// kmax: the largest bin-1 cardinality whose cheapest threshold sum
	// stays below δ — larger sets force δ − Σ_S a ≤ 0 and vanish.
	sorted := append([]float64(nil), thresholds...)
	sort.Float64s(sorted)
	kmax, prefix := 0, 0.0
	for k := 1; k <= n; k++ {
		prefix += sorted[k-1]
		if prefix >= capacity {
			break
		}
		kmax = k
	}
	// DFS element order: ascending residual width, so the first sibling
	// whose width no longer fits under the remainder prunes the rest.
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if badHigh&(1<<uint(i)) == 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(x, y int) bool { return highs[order[x]] < highs[order[y]] })

	var mu sync.Mutex
	var dfsTerms []*uint64
	full := (uint64(1) << uint(n)) - 1
	total, chunks, err := combin.ChunkedMaskSum(n, workers, func() func(uint64) float64 {
		terms := new(uint64)
		mu.Lock()
		dfsTerms = append(dfsTerms, terms)
		mu.Unlock()
		ws := make([]float64, 0, n)
		return func(s uint64) float64 {
			if s&badHigh != 0 {
				return 0
			}
			m := bits.OnesCount64(s)
			if m > kmax {
				return 0
			}
			v0 := vol0[full&^s]
			if v0 <= 0 {
				return 0
			}
			if m == 0 {
				return v0 // empty bin 1 always fits
			}
			t := capacity - aSums[s]
			if t <= 0 {
				return 0
			}
			if t >= wSums[s] {
				// The whole residual box fits under the threshold: the
				// volume is exactly Π w_i, no inclusion-exclusion needed.
				*terms++
				return v0 * wProd[s]
			}
			ws = ws[:0]
			for _, i := range order {
				if s&(1<<uint(i)) != 0 {
					ws = append(ws, highs[i])
				}
			}
			v1, steps := tailVolumeDFS(ws, t, m, invFact[m])
			*terms += steps
			if v1 <= 0 {
				return 0
			}
			return v0 * v1
		}
	})
	if err != nil {
		return 0, err
	}
	for _, c := range dfsTerms {
		stats.Rebuilt += *c
	}
	o.Counter("exact.subsets").Add(int64(stats.Subsets))
	o.Counter("exact.steps.incremental").Add(int64(stats.Incremental))
	o.Counter("exact.steps.rebuilt").Add(int64(stats.Rebuilt))
	o.Counter("exact.chunks").Add(int64(chunks))
	o.Gauge("exact.workers").Set(float64(workers))
	return clamp01(total / piProd), nil
}

// tailVolumeDFS evaluates the Proposition 2.2 volume
// (1/m!) Σ_{J ⊆ ws} (−1)^{|J|} (t − Σ_J w)_+^m by depth-first subset
// enumeration over the ascending widths ws, visiting only subsets with
// positive remainder: widths are positive and sorted, so once a partial
// sum reaches t the current branch and all later siblings are dead. Plain
// (uncompensated) summation — the ExactErrorBound budget dwarfs the Θ(2^m)
// rounding worst case. It returns the volume and the number of terms
// evaluated.
func tailVolumeDFS(ws []float64, t float64, m int, invFact float64) (float64, uint64) {
	var acc float64
	var steps uint64
	var walk func(start int, sum, sign float64)
	walk = func(start int, sum, sign float64) {
		steps++
		acc += sign * combin.PowInt(t-sum, m)
		for j := start; j < len(ws); j++ {
			next := sum + ws[j]
			if next >= t {
				return
			}
			walk(j+1, next, -sign)
		}
	}
	walk(0, 0, 1)
	return acc * invFact, steps
}
