package nonoblivious

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/dist"
)

// WinningProbabilityPi generalizes Theorem 5.1 to heterogeneous inputs
// x_i ~ U[0, π_i]: the probability that neither bin overflows capacity δ
// when player i sends its input to bin 0 exactly when x_i ≤ thresholds[i].
// A nil (or all-ones) π delegates to the homogeneous Theorem 5.1
// evaluator. Thresholds stay in [0, 1], matching the rule class the model
// layer admits; a threshold above π_i simply sends player i to bin 0
// always.
//
// The evaluation conditions per bin exactly as the homogeneous proof
// does. For each bin-1 set S,
//
//   - bin 0 contributes P(x_i ≤ a_i ∀i∉S) · P(Σ ≤ δ | all low):
//     each low input is U[0, c_i] with c_i = min(a_i, π_i) and branch
//     probability c_i/π_i, so the conditional sum CDF is Lemma 2.4
//     (dist.UniformSum) over the c_i;
//   - bin 1 contributes P(x_i > a_i ∀i∈S) · P(Σ ≤ δ | all high):
//     each high input is U[a_i, π_i] with branch probability
//     (π_i - a_i)/π_i. When every bin-1 range is 1 the conditional sum
//     is the literal Lemma 2.7 distribution (dist.ShiftedUniformSum);
//     otherwise Σ U[a_i, π_i] = Σ a_i + Σ U[0, π_i - a_i] — the shift
//     identity behind Lemma 2.7's proof — reduces its CDF at δ to the
//     Lemma 2.4 CDF of the residual widths at δ - Σ_{i∈S} a_i.
func WinningProbabilityPi(thresholds, pi []float64, capacity float64) (float64, error) {
	n := len(thresholds)
	if n < 2 {
		return 0, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	hetero := false
	for _, w := range pi {
		if w != 1 {
			hetero = true
			break
		}
	}
	if !hetero {
		return WinningProbability(thresholds, capacity)
	}
	if len(pi) != n {
		return 0, fmt.Errorf("nonoblivious: %d input ranges for %d players", len(pi), n)
	}
	for i, w := range pi {
		if !(w > 0) || math.IsInf(w, 1) {
			return 0, fmt.Errorf("nonoblivious: input range π[%d] = %v must be strictly positive and finite", i, w)
		}
	}
	if n > MaxNGeneral {
		return 0, fmt.Errorf("nonoblivious: general evaluation limited to %d players, got %d", MaxNGeneral, n)
	}
	if err := validateCapacity(capacity); err != nil {
		return 0, err
	}
	for i, a := range thresholds {
		if math.IsNaN(a) || a < 0 || a > 1 {
			return 0, fmt.Errorf("nonoblivious: threshold[%d] = %v outside [0, 1]", i, a)
		}
	}
	var total combin.Accumulator
	var cdfErr error
	lows := make([]float64, 0, n)   // conditional U[0, c_i] widths, bin 0
	highs := make([]float64, 0, n)  // residual widths π_i - a_i, bin 1
	lowers := make([]float64, 0, n) // bin-1 thresholds when every π_i∈S is 1
	err := combin.ForEachSubset(n, func(b uint64) bool {
		weight := 1.0
		shift := 0.0     // Σ_{i∈S} a_i, the bin-1 sum's lower support bound
		unitHigh := true // every bin-1 player has the unit range π_i = 1
		lows = lows[:0]
		highs = highs[:0]
		lowers = lowers[:0]
		for i := 0; i < n; i++ {
			if b&(1<<uint(i)) == 0 {
				c := math.Min(thresholds[i], pi[i])
				if c == 0 {
					weight = 0 // P(x_i ≤ 0) = 0 for a continuous input
					break
				}
				weight *= c / pi[i]
				lows = append(lows, c)
			} else {
				if thresholds[i] >= pi[i] {
					weight = 0 // P(x_i > a_i) = 0 when a_i covers the range
					break
				}
				weight *= (pi[i] - thresholds[i]) / pi[i]
				shift += thresholds[i]
				highs = append(highs, pi[i]-thresholds[i])
				if pi[i] != 1 {
					unitHigh = false
				} else {
					lowers = append(lowers, thresholds[i])
				}
			}
		}
		if weight == 0 {
			return true
		}
		var f0, f1 float64
		if f0, cdfErr = conditionalSumCDF(lows, capacity); cdfErr != nil {
			return false
		}
		if f0 == 0 {
			return true
		}
		if unitHigh {
			// Every bin-1 range is 1: the conditional load is the literal
			// Lemma 2.7 distribution Σ U[a_i, 1].
			f1, cdfErr = shiftedTailCDF(lowers, capacity)
		} else {
			f1, cdfErr = conditionalSumCDF(highs, capacity-shift)
		}
		if cdfErr != nil {
			return false
		}
		total.Add(weight * f0 * f1)
		return true
	})
	if err == nil {
		err = cdfErr
	}
	if err != nil {
		return 0, err
	}
	return clamp01(total.Sum()), nil
}

// conditionalSumCDF returns P(Σ U[0, w_i] ≤ t); the empty sum fits
// exactly when t ≥ 0.
func conditionalSumCDF(widths []float64, t float64) (float64, error) {
	if len(widths) == 0 {
		if t >= 0 {
			return 1, nil
		}
		return 0, nil
	}
	u, err := dist.NewUniformSum(widths)
	if err != nil {
		return 0, err
	}
	return u.CDF(t), nil
}

// shiftedTailCDF returns P(Σ U[a_i, 1] ≤ t), the Lemma 2.7 conditional
// bin-1 load distribution; the empty sum fits exactly when t ≥ 0.
func shiftedTailCDF(lowers []float64, t float64) (float64, error) {
	if len(lowers) == 0 {
		if t >= 0 {
			return 1, nil
		}
		return 0, nil
	}
	s, err := dist.NewShiftedUniformSum(lowers)
	if err != nil {
		return 0, err
	}
	return s.CDF(t), nil
}
