// Package nonoblivious implements Section 5 of the paper: winning
// probabilities and optimality analysis for non-oblivious single-threshold
// algorithms with no communication, in which player i chooses bin 0 exactly
// when its input is at most the threshold a_i.
//
// Three layers of machinery are provided:
//
//   - WinningProbability — Theorem 5.1 for an arbitrary threshold vector,
//     evaluated as Σ_b N₀(b)·N₁(b) where N₀ is the joint probability that
//     the "low" players fit in bin 0 (a Proposition 2.2 volume) and N₁ the
//     joint probability that the "high" players fit in bin 1 (a Lemma 2.7
//     tail). Both numerator families are tabulated for every subset at
//     once by per-cardinality sum-over-subsets transforms (O(n²·2^n)
//     total; see WinningProbabilityOpts), with an O(n²) fast path for
//     symmetric thresholds.
//   - SymbolicSymmetric — the exact Section 5.2 analysis for any n and
//     rational δ: the winning probability as a piecewise polynomial in the
//     common threshold β with exact rational breakpoints and coefficients.
//   - OptimalSymmetric — the certified optimum: Sturm-isolated roots of
//     the per-piece derivative (the specialization of the Theorem 5.2
//     optimality condition), refined by rational bisection.
package nonoblivious

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"repro/internal/combin"
	"repro/internal/poly"
)

// MaxNGeneral bounds the player count for arbitrary threshold vectors.
// The sum-over-subsets evaluation (see WinningProbabilityOpts) costs
// O(n²·2^n) time and a handful of 2^n-entry float64 tables, with float64
// accuracy certified against the rational oracle by ExactErrorBound —
// which is what allows 20 players where the old Θ(3^n) per-subset
// inclusion-exclusion capped out at 15.
const MaxNGeneral = 20

// MaxNSymmetric bounds the player count for the symmetric fast path,
// matching the float64 cancellation limit of the underlying alternating
// series.
const MaxNSymmetric = 25

func validateCapacity(capacity float64) error {
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return fmt.Errorf("nonoblivious: capacity %v must be strictly positive and finite", capacity)
	}
	return nil
}

// WinningProbability evaluates Theorem 5.1: the probability that neither
// bin overflows capacity δ when player i uses threshold thresholds[i] and
// inputs are independent U[0,1]. WinningProbabilityPi handles
// heterogeneous ranges x_i ~ U[0, π_i]; WinningProbabilityOpts exposes
// worker sharding and observability.
func WinningProbability(thresholds []float64, capacity float64) (float64, error) {
	return WinningProbabilityOpts(thresholds, capacity, 0, nil)
}

// SymmetricWinningProbability evaluates Theorem 5.1 when every player uses
// the same threshold β, via the binomial collapse of Section 5.2:
//
//	P(β) = Σ_k C(n,k) N₀(n-k, β) N₁(k, β)
//
// in O(n²) arithmetic. This is the curve reproduced in Figure 1.
func SymmetricWinningProbability(n int, capacity, beta float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNSymmetric {
		return 0, fmt.Errorf("nonoblivious: symmetric evaluation limited to %d players, got %d", MaxNSymmetric, n)
	}
	if err := validateCapacity(capacity); err != nil {
		return 0, err
	}
	if math.IsNaN(beta) || beta < 0 || beta > 1 {
		return 0, fmt.Errorf("nonoblivious: threshold %v outside [0, 1]", beta)
	}
	row, err := combin.PascalRow(n)
	if err != nil {
		return 0, err
	}
	n0 := make([]float64, n+1) // N₀ by bin-0 size m
	n1 := make([]float64, n+1) // N₁ by bin-1 size k
	for m := 0; m <= n; m++ {
		n0[m] = symBin0(m, capacity, beta)
		n1[m] = symBin1(m, capacity, beta)
	}
	var acc combin.Accumulator
	for k := 0; k <= n; k++ {
		acc.Add(row[k] * n0[n-k] * n1[k])
	}
	return clamp01(acc.Sum()), nil
}

// symBin0 is bin0Numerator with all thresholds equal to β:
// (1/m!) Σ_{l : δ-lβ > 0} (-1)^l C(m,l) (δ - lβ)^m.
func symBin0(m int, capacity, beta float64) float64 {
	if m == 0 {
		return 1
	}
	sum, err := combin.SignedBinomialSum(m,
		func(l int) bool { return capacity-float64(l)*beta > 0 },
		func(l int) float64 { return math.Pow(capacity-float64(l)*beta, float64(m)) })
	if err != nil {
		return math.NaN()
	}
	f, err := combin.FactorialFloat(m)
	if err != nil {
		return math.NaN()
	}
	v := sum / f
	if v < 0 {
		return 0
	}
	return v
}

// symBin1 is bin1Numerator with all thresholds equal to β:
// (1-β)^k - (1/k!) Σ_{l : k-δ-l(1-β) > 0} (-1)^l C(k,l) (k - δ - l(1-β))^k.
func symBin1(k int, capacity, beta float64) float64 {
	if k == 0 {
		return 1
	}
	base := float64(k) - capacity
	sum, err := combin.SignedBinomialSum(k,
		func(l int) bool { return base-float64(l)*(1-beta) > 0 },
		func(l int) float64 { return math.Pow(base-float64(l)*(1-beta), float64(k)) })
	if err != nil {
		return math.NaN()
	}
	f, err := combin.FactorialFloat(k)
	if err != nil {
		return math.NaN()
	}
	v := math.Pow(1-beta, float64(k)) - sum/f
	if v < 0 {
		return 0
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SymbolicSymmetric performs the Section 5.2 case analysis for general n
// and exact rational capacity δ: it returns the winning probability of the
// symmetric single-threshold algorithm as a piecewise polynomial in the
// common threshold β over [0, 1], with exact rational breakpoints (where
// the inclusion-exclusion guards flip) and exact rational coefficients.
func SymbolicSymmetric(n int, capacity *big.Rat) (*poly.Piecewise, error) {
	if n < 2 {
		return nil, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNSymmetric {
		return nil, fmt.Errorf("nonoblivious: symbolic analysis limited to %d players, got %d", MaxNSymmetric, n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("nonoblivious: capacity must be strictly positive")
	}
	breaks := symbolicBreakpoints(n, capacity)
	pieces := make([]poly.RatPoly, len(breaks)-1)
	for i := 0; i+1 < len(breaks); i++ {
		mid := new(big.Rat).Add(breaks[i], breaks[i+1])
		mid.Mul(mid, big.NewRat(1, 2))
		piece, err := symbolicPiece(n, capacity, mid)
		if err != nil {
			return nil, err
		}
		pieces[i] = piece
	}
	return poly.NewPiecewise(breaks, pieces)
}

// symbolicBreakpoints collects the β values in [0, 1] where some
// inclusion-exclusion guard changes truth value: β = δ/l (bin-0 guards)
// and β = 1 - (k-δ)/l (bin-1 guards).
func symbolicBreakpoints(n int, capacity *big.Rat) []*big.Rat {
	one := big.NewRat(1, 1)
	zero := new(big.Rat)
	set := map[string]*big.Rat{
		zero.RatString(): zero,
		one.RatString():  one,
	}
	add := func(r *big.Rat) {
		if r.Sign() > 0 && r.Cmp(one) < 0 {
			set[r.RatString()] = new(big.Rat).Set(r)
		}
	}
	for l := 1; l <= n; l++ {
		// δ - lβ = 0 → β = δ/l.
		add(new(big.Rat).Quo(capacity, new(big.Rat).SetInt64(int64(l))))
		// k - δ - l(1-β) = 0 → β = 1 - (k-δ)/l, for any k with l ≤ k ≤ n.
		for k := l; k <= n; k++ {
			kd := new(big.Rat).SetInt64(int64(k))
			kd.Sub(kd, capacity)
			if kd.Sign() <= 0 {
				continue
			}
			b := new(big.Rat).Quo(kd, new(big.Rat).SetInt64(int64(l)))
			b.Sub(one, b)
			add(b)
		}
	}
	out := make([]*big.Rat, 0, len(set))
	for _, r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	return out
}

// symbolicPiece expands P(β) = Σ_k C(n,k) N₀(n-k) N₁(k) as an exact
// polynomial in β, with the guards frozen at the probe point μ (a point
// interior to the piece).
func symbolicPiece(n int, capacity, mu *big.Rat) (poly.RatPoly, error) {
	n0 := make([]poly.RatPoly, n+1)
	n1 := make([]poly.RatPoly, n+1)
	for m := 0; m <= n; m++ {
		p0, err := symbolicBin0(m, capacity, mu)
		if err != nil {
			return poly.RatPoly{}, err
		}
		n0[m] = p0
		p1, err := symbolicBin1(m, capacity, mu)
		if err != nil {
			return poly.RatPoly{}, err
		}
		n1[m] = p1
	}
	total := poly.RatPoly{}
	for k := 0; k <= n; k++ {
		c, err := combin.BinomialBig(n, k)
		if err != nil {
			return poly.RatPoly{}, err
		}
		term := n0[n-k].Mul(n1[k]).Scale(new(big.Rat).SetInt(c))
		total = total.Add(term)
	}
	return total, nil
}

// symbolicBin0 expands N₀(m) = (1/m!) Σ_{l : δ-lμ > 0} (-1)^l C(m,l)
// (δ - lβ)^m as a polynomial in β.
func symbolicBin0(m int, capacity, mu *big.Rat) (poly.RatPoly, error) {
	if m == 0 {
		return poly.RatPolyFromInt64(1), nil
	}
	total := poly.RatPoly{}
	probe := new(big.Rat)
	for l := 0; l <= m; l++ {
		lr := new(big.Rat).SetInt64(int64(l))
		probe.Mul(lr, mu)
		probe.Sub(capacity, probe)
		if probe.Sign() <= 0 {
			continue
		}
		// (δ - lβ)^m.
		base := poly.RatPolyAffine(capacity, new(big.Rat).Neg(lr))
		pw, err := base.Pow(m)
		if err != nil {
			return poly.RatPoly{}, err
		}
		c, err := combin.BinomialBig(m, l)
		if err != nil {
			return poly.RatPoly{}, err
		}
		coeff := new(big.Rat).SetInt(c)
		if l%2 == 1 {
			coeff.Neg(coeff)
		}
		total = total.Add(pw.Scale(coeff))
	}
	invFact, err := combin.InvFactorialRat(m)
	if err != nil {
		return poly.RatPoly{}, err
	}
	return total.Scale(invFact), nil
}

// symbolicBin1 expands N₁(k) = (1-β)^k - (1/k!) Σ_{l : k-δ-l(1-μ) > 0}
// (-1)^l C(k,l) (k - δ - l + lβ)^k as a polynomial in β.
func symbolicBin1(k int, capacity, mu *big.Rat) (poly.RatPoly, error) {
	if k == 0 {
		return poly.RatPolyFromInt64(1), nil
	}
	one := big.NewRat(1, 1)
	lead, err := poly.RatPolyAffine(one, big.NewRat(-1, 1)).Pow(k) // (1-β)^k
	if err != nil {
		return poly.RatPoly{}, err
	}
	kd := new(big.Rat).SetInt64(int64(k))
	kd.Sub(kd, capacity) // k - δ
	total := poly.RatPoly{}
	probe := new(big.Rat)
	oneMinusMu := new(big.Rat).Sub(one, mu)
	for l := 0; l <= k; l++ {
		lr := new(big.Rat).SetInt64(int64(l))
		probe.Mul(lr, oneMinusMu)
		probe.Sub(kd, probe)
		if probe.Sign() <= 0 {
			continue
		}
		// (k - δ - l + lβ)^k.
		shift := new(big.Rat).Sub(kd, lr)
		base := poly.RatPolyAffine(shift, lr)
		pw, err := base.Pow(k)
		if err != nil {
			return poly.RatPoly{}, err
		}
		c, err := combin.BinomialBig(k, l)
		if err != nil {
			return poly.RatPoly{}, err
		}
		coeff := new(big.Rat).SetInt(c)
		if l%2 == 1 {
			coeff.Neg(coeff)
		}
		total = total.Add(pw.Scale(coeff))
	}
	invFact, err := combin.InvFactorialRat(k)
	if err != nil {
		return poly.RatPoly{}, err
	}
	return lead.Sub(total.Scale(invFact)), nil
}

// OptimalResult describes the certified optimal symmetric single-threshold
// algorithm for one instance.
type OptimalResult struct {
	// N is the number of players and Capacity the rational bin capacity δ.
	N        int
	Capacity *big.Rat
	// Beta encloses the optimal threshold β*; for rational optima
	// Beta.Lo == Beta.Hi.
	Beta poly.Interval
	// BetaFloat is the midpoint of Beta as a float64.
	BetaFloat float64
	// WinProbability is P(β*), exact at the enclosure midpoint.
	WinProbability *big.Rat
	// WinProbabilityFloat is WinProbability as a float64.
	WinProbabilityFloat float64
	// Condition is the optimality-condition polynomial (the derivative of
	// the winning probability on the optimal piece) whose root β* is, or
	// the zero polynomial for endpoint optima. This is the Theorem 5.2
	// condition specialized to the optimal piece.
	Condition poly.RatPoly
	// Curve is the full piecewise winning probability P(β).
	Curve *poly.Piecewise
}

// OptimalSymmetric derives the exact optimal symmetric threshold for n
// players and rational capacity δ by maximizing the SymbolicSymmetric
// piecewise polynomial with Sturm-certified critical points.
func OptimalSymmetric(n int, capacity *big.Rat) (OptimalResult, error) {
	pw, err := SymbolicSymmetric(n, capacity)
	if err != nil {
		return OptimalResult{}, err
	}
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 80))
	ext, err := pw.GlobalMax(tol)
	if err != nil {
		return OptimalResult{}, err
	}
	res := OptimalResult{
		N:              n,
		Capacity:       new(big.Rat).Set(capacity),
		Beta:           ext.X,
		BetaFloat:      ext.X.MidFloat(),
		WinProbability: ext.Value,
		Curve:          pw,
	}
	res.WinProbabilityFloat, _ = ext.Value.Float64()
	if ext.Critical != nil {
		res.Condition = *ext.Critical
	}
	return res, nil
}
