package nonoblivious

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
	"repro/internal/dist"
)

// WinningProbabilityPiRat evaluates the heterogeneous Theorem 5.1
// generalization exactly for rational thresholds, input ranges and
// capacity — the certifying oracle the float64 WinningProbabilityPi path
// is property-tested against (cap MaxNExact, Θ(3^n) big.Rat arithmetic).
//
// For each bin-1 set S with complement Z, conditioning x_i ~ U[0, π_i] on
// its bin choice gives
//
//	P₀(Z) = Π_{i∈Z} (c_i/π_i) · P(Σ U[0, c_i] ≤ δ)          c_i = min(a_i, π_i)
//	P₁(S) = Π_{i∈S} (w_i/π_i) · P(Σ U[0, w_i] ≤ δ − Σ_S a)  w_i = π_i − a_i
//
// both Lemma 2.4 CDFs in exact rational arithmetic (dist.CDFRat). A player
// with a_i = 0 can never pick bin 0 (c_i = 0) and one with a_i ≥ π_i can
// never pick bin 1 (w_i ≤ 0); those vectors contribute zero.
func WinningProbabilityPiRat(thresholds, pi []*big.Rat, capacity *big.Rat) (*big.Rat, error) {
	n := len(thresholds)
	if n < 2 {
		return nil, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNExact {
		return nil, fmt.Errorf("nonoblivious: exact evaluation limited to %d players, got %d", MaxNExact, n)
	}
	if len(pi) != n {
		return nil, fmt.Errorf("nonoblivious: %d input ranges for %d players", len(pi), n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("nonoblivious: capacity must be strictly positive")
	}
	one := big.NewRat(1, 1)
	for i, a := range thresholds {
		if a == nil || a.Sign() < 0 || a.Cmp(one) > 0 {
			return nil, fmt.Errorf("nonoblivious: threshold[%d] outside [0, 1]", i)
		}
	}
	for i, w := range pi {
		if w == nil || w.Sign() <= 0 {
			return nil, fmt.Errorf("nonoblivious: input range π[%d] must be strictly positive", i)
		}
	}
	lows := make([]*big.Rat, n)  // c_i = min(a_i, π_i)
	highs := make([]*big.Rat, n) // w_i = π_i − a_i, nil when ≤ 0
	for i := 0; i < n; i++ {
		if thresholds[i].Cmp(pi[i]) < 0 {
			lows[i] = thresholds[i]
			highs[i] = new(big.Rat).Sub(pi[i], thresholds[i])
		} else {
			lows[i] = pi[i]
		}
	}
	total := new(big.Rat)
	weight := new(big.Rat)
	shifted := new(big.Rat)
	zeroWidths := make([]*big.Rat, 0, n)
	oneWidths := make([]*big.Rat, 0, n)
	err := combin.ForEachSubset(n, func(s uint64) bool {
		weight.SetInt64(1)
		shifted.Set(capacity)
		zeroWidths = zeroWidths[:0]
		oneWidths = oneWidths[:0]
		for i := 0; i < n; i++ {
			if s&(1<<uint(i)) == 0 {
				if lows[i].Sign() == 0 {
					return true // P(x_i ≤ 0) = 0
				}
				weight.Mul(weight, lows[i])
				weight.Quo(weight, pi[i])
				zeroWidths = append(zeroWidths, lows[i])
			} else {
				if highs[i] == nil {
					return true // P(x_i > a_i) = 0
				}
				weight.Mul(weight, highs[i])
				weight.Quo(weight, pi[i])
				oneWidths = append(oneWidths, highs[i])
				shifted.Sub(shifted, thresholds[i])
			}
		}
		if shifted.Sign() <= 0 {
			return true
		}
		f0, err := subsetCDFRat(zeroWidths, capacity)
		if err != nil || f0.Sign() == 0 {
			return true
		}
		f1, err := subsetCDFRat(oneWidths, shifted)
		if err != nil {
			return true
		}
		weight.Mul(weight, f0)
		weight.Mul(weight, f1)
		total.Add(total, weight)
		return true
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// subsetCDFRat returns P(Σ U[0, w_i] ≤ t) exactly; the empty sum always
// fits (t > 0 is validated by the caller).
func subsetCDFRat(widths []*big.Rat, t *big.Rat) (*big.Rat, error) {
	if len(widths) == 0 {
		return big.NewRat(1, 1), nil
	}
	return dist.CDFRat(widths, t)
}
