package nonoblivious_test

import (
	"fmt"
	"math/big"

	"repro/internal/nonoblivious"
)

// ExampleOptimalSymmetric re-derives the paper's two case studies in a few
// lines: the Section 5.2.1 optimum (settling the PY91 conjecture) and the
// Section 5.2.2 optimum.
func ExampleOptimalSymmetric() {
	n3, err := nonoblivious.OptimalSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		panic(err)
	}
	n4, err := nonoblivious.OptimalSymmetric(4, big.NewRat(4, 3))
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=3, δ=1:   β* = %.6f, P* = %.6f\n", n3.BetaFloat, n3.WinProbabilityFloat)
	fmt.Printf("n=4, δ=4/3: β* = %.6f, P* = %.6f\n", n4.BetaFloat, n4.WinProbabilityFloat)
	fmt.Printf("non-uniform: %v\n", n3.BetaFloat != n4.BetaFloat)
	// Output:
	// n=3, δ=1:   β* = 0.622036, P* = 0.544631
	// n=4, δ=4/3: β* = 0.677998, P* = 0.428539
	// non-uniform: true
}

// ExampleSymbolicSymmetric prints the exact piecewise polynomial P(β) the
// paper derives by hand in Section 5.2.1.
func ExampleSymbolicSymmetric() {
	pw, err := nonoblivious.SymbolicSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println(pw)
	// Output:
	// [0, 1/3]: -1/2·x^3 + 3/2·x^2 + 1/6
	// [1/3, 1/2]: -1/2·x^3 + 3/2·x^2 + 1/6
	// [1/2, 1]: 7/2·x^3 - 21/2·x^2 + 9·x - 11/6
}

// ExampleWinningProbability evaluates Theorem 5.1 for a non-symmetric
// threshold vector.
func ExampleWinningProbability() {
	p, err := nonoblivious.WinningProbability([]float64{0.5, 0.6, 0.7}, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(win) = %.6f\n", p)
	// Output:
	// P(win) = 0.538667
}
