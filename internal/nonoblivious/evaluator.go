package nonoblivious

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/combin"
	"repro/internal/dist"
)

// MaxNProfile bounds the player count for the evaluator's single-coordinate
// line-profile fast path, which materializes two n·2^(n-1)-entry
// cardinality-indexed superset-sum tables (8 MiB at n = 16). Beyond it,
// single-coordinate probes fall back to delta-updating the committed tables
// directly.
const MaxNProfile = 16

// EvalStats counts the work an Evaluator performed since construction.
type EvalStats struct {
	// Evaluations is the total number of Evaluate/SetCoord/EvaluateVector
	// calls that produced a value.
	Evaluations uint64
	// FullRebuilds counts full O(n²·2^n) table rebuilds.
	FullRebuilds uint64
	// DeltaUpdates counts single-coordinate evaluations served by delta
	// machinery: committed-table SetCoord updates and line-profile probes.
	DeltaUpdates uint64
	// DeltaSubsets is the number of subset cells those delta updates
	// re-propagated (2^(n-1) each — only the subsets containing the
	// changed coordinate).
	DeltaSubsets uint64
}

// Evaluator is a reusable Theorem 5.1 evaluator for homogeneous-input
// threshold vectors: it builds the N₀ subset-volume and N₁ bin-1 tail
// tables once and then supports
//
//   - Evaluate: a full evaluation reusing the allocated tables — bit-
//     identical to WinningProbabilityOpts, zero steady-state allocations;
//
//   - SetCoord(i, a_i): a delta update that re-propagates only the 2^(n-1)
//     subsets containing coordinate i (dist.VolumeTable's restricted zeta
//     pass plus the exact bin-1 radix re-propagation) instead of
//     rebuilding all n·2^n cells;
//
//   - EvaluateVector: the optimizer's probe entry, which diffs the probe
//     against the committed thresholds and dispatches to the cheapest
//     path. For n ≤ MaxNProfile a single-coordinate probe evaluates
//     through a line profile: with every other threshold frozen, P(a) as
//     a function of a_i alone collapses (see DESIGN S26) to
//
//     P(v) = T(δ) − T(δ−v) + (1−v)·K₁ − V(1) + V(v)
//
// where T and V are 2^(n-1)-term inclusion-exclusion sums whose
// cardinality-aggregated coefficient tables depend only on the frozen
// coordinates. Splitting each into the part whose clamped radix keeps one
// sign over v ∈ [0, 1] (pre-expanded into one degree-≤n polynomial) and
// the at-most-one crossing term per subset (evaluated per probe) makes a
// probe O(2^(n-1)) — the polynomial Horner pass is O(n) and the crossing
// corrections dominate — against O(n²·2^n) for a rebuild.
//
// Full evaluations are bit-identical to WinningProbabilityOpts; delta
// updates and profile probes agree with a fresh rebuild within
// ExactErrorBound (property-tested along random coordinate walks), so
// search loops probe through the evaluator and re-evaluate only the final
// optimum canonically.
type Evaluator struct {
	n        int
	capacity float64
	built    bool
	a        []float64 // committed thresholds
	value    float64   // P at the committed thresholds

	vt *dist.VolumeTable // N₀: box-simplex volumes at threshold δ

	// N₁ state (Lemma 2.7 tails), rebuilt per exponent like bin1Table.
	sumsA    *combin.SumTable     // subset sums of a
	prod     *combin.ProductTable // subset products of 1−a
	oneMinus []float64
	sm1      []float64 // σ_J a − |J|
	pcf      []float64 // float64 popcounts (fixed)
	sign     []float64 // parity signs (fixed)
	n1       []float64 // clamped N₁ table
	base     []float64 // zeta scratch
	partial  []float64 // chunked-sum partials (fixed grid)

	invFact []float64 // 1/m!
	invInt  []float64 // 1/m
	binom   []float64 // C(m, t), stride n+2

	prof  lineProfile
	stats EvalStats
}

// lineProfile is the single-coordinate probe state: everything about
// P(a_1, …, v, …, a_n) as a function of v alone that does not depend on v.
type lineProfile struct {
	coord               int // profiled coordinate, -1 when closed
	aR, omR             []float64
	sumsR, signR, prodR []float64 // compressed (n-1)-bit lattice
	m, p                []float64 // M^c / P^c superset sums, strided [J·n + c]
	tCoef, vCoef        []float64 // always-signed parts as polynomials in v
	crossT              []int32   // T-subsets whose radix changes sign on [0, 1]
	ntx                 int
	vxRho, vxW          []float64 // V crossing terms: radix offset, weight
	vxE                 []int32   // V crossing exponents
	nvx                 int
	k1, tAt0, vAt1      float64
}

// NewEvaluator allocates an evaluator for n players at capacity δ. All
// tables are allocated here; subsequent evaluations reuse them.
func NewEvaluator(n int, capacity float64) (*Evaluator, error) {
	if n < 2 {
		return nil, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNGeneral {
		return nil, fmt.Errorf("nonoblivious: general evaluation limited to %d players, got %d", MaxNGeneral, n)
	}
	if err := validateCapacity(capacity); err != nil {
		return nil, err
	}
	vt, err := dist.NewVolumeTable(n)
	if err != nil {
		return nil, err
	}
	sumsA, err := combin.NewSumTable(n)
	if err != nil {
		return nil, err
	}
	prod, err := combin.NewProductTable(n)
	if err != nil {
		return nil, err
	}
	size := 1 << uint(n)
	ev := &Evaluator{
		n:        n,
		capacity: capacity,
		a:        make([]float64, n),
		vt:       vt,
		sumsA:    sumsA,
		prod:     prod,
		oneMinus: make([]float64, n),
		sm1:      make([]float64, size),
		pcf:      make([]float64, size),
		sign:     make([]float64, size),
		n1:       make([]float64, size),
		base:     make([]float64, size),
		invFact:  make([]float64, n+2),
		invInt:   make([]float64, n+2),
		binom:    make([]float64, (n+2)*(n+2)),
	}
	_, chunks := combin.ChunkSpan(uint64(size))
	ev.partial = make([]float64, chunks)
	ev.sign[0] = 1
	for mask := 1; mask < size; mask++ {
		ev.pcf[mask] = float64(bits.OnesCount64(uint64(mask)))
		ev.sign[mask] = -ev.sign[mask&(mask-1)]
	}
	for m := 0; m <= n+1; m++ {
		f, ferr := combin.FactorialFloat(m)
		if ferr != nil {
			return nil, ferr
		}
		ev.invFact[m] = 1 / f
		if m > 0 {
			ev.invInt[m] = 1 / float64(m)
		}
		for t := 0; t <= m; t++ {
			b, berr := combin.BinomialFloat(m, t)
			if berr != nil {
				return nil, berr
			}
			ev.binom[m*(n+2)+t] = b
		}
	}
	ev.prof.coord = -1
	if n <= MaxNProfile {
		h := 1 << uint(n-1)
		ev.prof.aR = make([]float64, n-1)
		ev.prof.omR = make([]float64, n-1)
		ev.prof.sumsR = make([]float64, h)
		ev.prof.signR = make([]float64, h)
		ev.prof.prodR = make([]float64, h)
		ev.prof.m = make([]float64, h*n)
		ev.prof.p = make([]float64, h*n)
		ev.prof.tCoef = make([]float64, n+2)
		ev.prof.vCoef = make([]float64, n+2)
		ev.prof.crossT = make([]int32, h)
		ev.prof.vxRho = make([]float64, h)
		ev.prof.vxW = make([]float64, h)
		ev.prof.vxE = make([]int32, h)
	}
	return ev, nil
}

// N returns the player count.
func (ev *Evaluator) N() int { return ev.n }

// Capacity returns the bin capacity δ.
func (ev *Evaluator) Capacity() float64 { return ev.capacity }

// Thresholds returns the committed threshold vector. The slice is owned by
// the evaluator; callers must not modify it.
func (ev *Evaluator) Thresholds() []float64 { return ev.a }

// Value returns the winning probability at the committed thresholds. Only
// meaningful after a successful evaluation.
func (ev *Evaluator) Value() float64 { return ev.value }

// Stats returns the work counters accumulated since construction.
func (ev *Evaluator) Stats() EvalStats { return ev.stats }

func (ev *Evaluator) validate(thresholds []float64) error {
	if len(thresholds) != ev.n {
		return fmt.Errorf("nonoblivious: evaluator built for %d players, got %d thresholds", ev.n, len(thresholds))
	}
	for i, a := range thresholds {
		if math.IsNaN(a) || a < 0 || a > 1 {
			return fmt.Errorf("nonoblivious: threshold[%d] = %v outside [0, 1]", i, a)
		}
	}
	return nil
}

// Evaluate computes the winning probability of the threshold vector with a
// full table rebuild that reuses the allocated storage — zero steady-state
// allocations, bit-identical to WinningProbabilityOpts — and commits the
// vector as the evaluator's new state.
func (ev *Evaluator) Evaluate(thresholds []float64) (float64, error) {
	if err := ev.validate(thresholds); err != nil {
		return 0, err
	}
	return ev.evaluateFull(thresholds)
}

func (ev *Evaluator) evaluateFull(thresholds []float64) (float64, error) {
	if err := ev.vt.Build(thresholds, ev.capacity, 1); err != nil {
		return 0, err
	}
	copy(ev.a, thresholds)
	if err := ev.sumsA.Build(ev.a); err != nil {
		return 0, err
	}
	sums := ev.sumsA.Values()
	for mask := range ev.sm1 {
		ev.sm1[mask] = sums[mask] - ev.pcf[mask]
	}
	for i, a := range ev.a {
		ev.oneMinus[i] = 1 - a
	}
	if err := ev.prod.Build(ev.oneMinus); err != nil {
		return 0, err
	}
	if err := ev.bin1Passes(); err != nil {
		return 0, err
	}
	ev.value = ev.maskSum()
	ev.built = true
	ev.prof.coord = -1
	ev.stats.FullRebuilds++
	ev.stats.Evaluations++
	return ev.value, nil
}

// SetCoord commits threshold i to v with a delta update: the N₀ volume
// table re-propagates only the 2^(n-1) subsets containing i
// (dist.VolumeTable.SetCoord), the subset-sum and product state is
// re-propagated with the exact build recurrences, and the N₁ per-exponent
// passes rerun over the updated state. It returns the updated winning
// probability, which agrees with a fresh rebuild within ExactErrorBound.
func (ev *Evaluator) SetCoord(i int, v float64) (float64, error) {
	if !ev.built {
		return 0, fmt.Errorf("nonoblivious: evaluator SetCoord before any full evaluation")
	}
	if i < 0 || i >= ev.n {
		return 0, fmt.Errorf("nonoblivious: evaluator coordinate %d out of range [0, %d)", i, ev.n)
	}
	if math.IsNaN(v) || v < 0 || v > 1 {
		return 0, fmt.Errorf("nonoblivious: threshold[%d] = %v outside [0, 1]", i, v)
	}
	if v == ev.a[i] {
		ev.stats.Evaluations++
		return ev.value, nil
	}
	if err := ev.vt.SetCoord(i, v); err != nil {
		return 0, err
	}
	ev.a[i] = v
	ev.oneMinus[i] = 1 - v
	if err := ev.sumsA.SetCoord(i, v); err != nil {
		return 0, err
	}
	if err := ev.prod.SetCoord(i, ev.oneMinus[i]); err != nil {
		return 0, err
	}
	// Refresh σ_J a − |J| on the re-propagated half-lattice.
	sums := ev.sumsA.Values()
	bit := 1 << uint(i)
	size := 1 << uint(ev.n)
	for mask := bit; mask < size; mask++ {
		if mask&bit == 0 {
			continue
		}
		ev.sm1[mask] = sums[mask] - ev.pcf[mask]
	}
	if err := ev.bin1Passes(); err != nil {
		return 0, err
	}
	ev.value = ev.maskSum()
	ev.prof.coord = -1
	ev.stats.DeltaUpdates++
	ev.stats.DeltaSubsets += uint64(1) << uint(ev.n-1)
	ev.stats.Evaluations++
	return ev.value, nil
}

// EvaluateVector evaluates an arbitrary threshold vector by diffing it
// against the committed state: an unchanged vector returns the committed
// value, a single-coordinate change evaluates through the line profile
// (n ≤ MaxNProfile) or a SetCoord delta commit, a two-coordinate change
// whose first coordinate is the profiled one — the coordinate-ascent
// pattern of committing one line's optimum while probing the next —
// commits it by delta and re-profiles, and anything wider falls back to a
// full bit-identical rebuild. Line-profile probes do NOT commit: the
// committed state keeps pointing at the last committed vector.
func (ev *Evaluator) EvaluateVector(x []float64) (float64, error) {
	if err := ev.validate(x); err != nil {
		return 0, err
	}
	if !ev.built {
		return ev.evaluateFull(x)
	}
	d1, d2, diffs := -1, -1, 0
	for i := range x {
		if x[i] != ev.a[i] {
			diffs++
			if d1 < 0 {
				d1 = i
			} else if d2 < 0 {
				d2 = i
			}
		}
	}
	switch {
	case diffs == 0:
		ev.stats.Evaluations++
		return ev.value, nil
	case diffs == 1:
		return ev.lineValue(d1, x[d1])
	case diffs == 2 && ev.prof.coord >= 0 && (d1 == ev.prof.coord || d2 == ev.prof.coord):
		commit, probe := d1, d2
		if d2 == ev.prof.coord {
			commit, probe = d2, d1
		}
		if _, err := ev.SetCoord(commit, x[commit]); err != nil {
			return 0, err
		}
		return ev.lineValue(probe, x[probe])
	default:
		return ev.evaluateFull(x)
	}
}

// lineValue evaluates a single-coordinate change without committing it
// (profile path) or by delta commit (n > MaxNProfile).
func (ev *Evaluator) lineValue(i int, v float64) (float64, error) {
	if ev.n > MaxNProfile {
		return ev.SetCoord(i, v)
	}
	if ev.prof.coord != i {
		ev.openProfile(i)
	}
	ev.stats.DeltaUpdates++
	ev.stats.DeltaSubsets += uint64(1) << uint(ev.n-1)
	ev.stats.Evaluations++
	return ev.profEval(v), nil
}

// bin1Passes rebuilds the N₁ table from the current subset-sum/product
// state, mirroring bin1Table's per-exponent signed-base/zeta/readoff
// passes operation for operation.
func (ev *Evaluator) bin1Passes() error {
	n := ev.n
	size := 1 << uint(n)
	prod := ev.prod.Values()
	ev.n1[0] = 1
	for m := 1; m <= n; m++ {
		invFact := ev.invFact[m]
		shift := float64(m) - ev.capacity
		for mask := 0; mask < size; mask++ {
			r := shift + ev.sm1[mask]
			if r > 0 {
				ev.base[mask] = ev.sign[mask] * invFact * combin.PowInt(r, m)
			} else {
				ev.base[mask] = 0
			}
		}
		if err := combin.SumOverSubsets(ev.base, n, 1); err != nil {
			return err
		}
		for mask := 0; mask < size; mask++ {
			if bits.OnesCount64(uint64(mask)) != m {
				continue
			}
			v := prod[mask] - ev.base[mask]
			if v < 0 {
				v = 0
			}
			ev.n1[mask] = v
		}
	}
	return nil
}

// maskSum reduces the Theorem 5.1 sum Σ_s N₀[full∖s]·N₁[s] over the fixed
// chunk grid with Neumaier partials and the fixed-order pairwise tree —
// bit-identical to the ChunkedMaskSum reduction in WinningProbabilityOpts
// for every worker count — into the evaluator-owned partial buffer.
func (ev *Evaluator) maskSum() float64 {
	n0 := ev.vt.Vol()
	n1 := ev.n1
	size := uint64(1) << uint(ev.n)
	full := size - 1
	span, chunks := combin.ChunkSpan(size)
	for c := uint64(0); c < chunks; c++ {
		lo := c * span
		hi := lo + span
		if hi > size {
			hi = size
		}
		var acc combin.Accumulator
		for mask := lo; mask < hi; mask++ {
			v := n0[full&^mask]
			if v <= 0 {
				continue
			}
			acc.Add(v * n1[mask])
		}
		ev.partial[c] = acc.Sum()
	}
	part := ev.partial[:chunks]
	for len(part) > 1 {
		half := (len(part) + 1) / 2
		for i := 0; i < len(part)/2; i++ {
			part[i] = part[2*i] + part[2*i+1]
		}
		if len(part)%2 == 1 {
			part[half-1] = part[len(part)-1]
		}
		part = part[:half]
	}
	return clamp01(part[0])
}

// openProfile builds the line profile for coordinate i from the committed
// tables: the compressed-lattice sums/signs/products over the frozen
// coordinates, the cardinality-indexed superset-sum tables M^c (N₁ weights
// for the T part) and P^c (N₀ weights for the V part), the pre-expanded
// sign-stable polynomials, the sign-crossing term lists, and the probe
// constants K₁, T(δ), V(1).
func (ev *Evaluator) openProfile(i int) {
	p := &ev.prof
	p.coord = -1
	n := ev.n
	h := 1 << uint(n-1)
	hm := uint64(h - 1)
	bit := uint64(1) << uint(i)
	lowMask := bit - 1
	for j2 := 0; j2 < n-1; j2++ {
		src := j2
		if j2 >= i {
			src = j2 + 1
		}
		p.aR[j2] = ev.a[src]
		p.omR[j2] = 1 - ev.a[src]
	}
	p.sumsR[0], p.signR[0], p.prodR[0] = 0, 1, 1
	for mask := 1; mask < h; mask++ {
		par := mask & (mask - 1)
		tz := bits.TrailingZeros64(uint64(mask))
		p.sumsR[mask] = p.sumsR[par] + p.aR[tz]
		p.signR[mask] = -p.signR[par]
		p.prodR[mask] = p.prodR[par] * p.omR[tz]
	}
	// Cardinality-diagonal fill: M holds N₁[R∖T'] at (T', |T'|), P holds
	// N₀[R∖s] at (s, |s|); the vectorized superset-sum pass then yields
	// M^c[J] = Σ_{T'⊇J, |T'|=c} N₁[R∖T'] (and likewise P^c) for every
	// cardinality at once.
	vol := ev.vt.Vol()
	for idx := range p.m[:h*n] {
		p.m[idx] = 0
		p.p[idx] = 0
	}
	for j := 0; j < h; j++ {
		comp := hm &^ uint64(j)
		fullMask := (comp & lowMask) | (comp&^lowMask)<<1
		c := bits.OnesCount64(uint64(j))
		p.m[j*n+c] = ev.n1[fullMask]
		p.p[j*n+c] = vol[fullMask]
	}
	supersetSumStrided(p.m, n-1, n)
	supersetSumStrided(p.p, n-1, n)

	for t := range p.tCoef {
		p.tCoef[t] = 0
		p.vCoef[t] = 0
	}
	p.ntx, p.nvx = 0, 0
	delta := ev.capacity
	var k1 combin.Accumulator
	for j := 0; j < h; j++ {
		sig := p.sumsR[j]
		k := bits.OnesCount64(uint64(j))
		sgn := p.signR[j]
		comp := hm &^ uint64(j)
		fullMask := (comp & lowMask) | (comp&^lowMask)<<1
		k1.Add(vol[fullMask] * p.prodR[j])
		// T part: radix δ−v−σ_J. Stable on [0, 1] when σ_J ≤ δ−1 →
		// pre-expand (b−v)^(c+1); sign-crossing when δ−1 < σ_J < δ;
		// never positive when σ_J ≥ δ.
		if sig <= delta-1 {
			b := delta - sig
			row := p.m[j*n:]
			for c := k; c < n; c++ {
				w := sgn * ev.invFact[c+1] * row[c]
				if w != 0 {
					brow := ev.binom[(c+1)*(n+2):]
					pw := 1.0
					for t := c + 1; t >= 0; t-- {
						cc := w * brow[t] * pw
						if t&1 == 1 {
							cc = -cc
						}
						p.tCoef[t] += cc
						pw *= b
					}
				}
			}
		} else if sig < delta {
			p.crossT[p.ntx] = int32(j)
			p.ntx++
		}
		// V part: radix c−δ−|J|+σ_J+v per cardinality. Positive at v=0 →
		// pre-expand (r₀+v)^(c+1); r₀ ∈ (−1, 0] crosses zero on (0, 1] →
		// per-probe correction; r₀ ≤ −1 never contributes for v ≤ 1.
		rho := sig - delta - float64(k)
		rowP := p.p[j*n:]
		for c := k; c < n; c++ {
			r0 := float64(c) + rho
			if r0 <= -1 {
				continue
			}
			w := sgn * ev.invFact[c+1] * rowP[c]
			if w == 0 {
				continue
			}
			if r0 > 0 {
				brow := ev.binom[(c+1)*(n+2):]
				pw := 1.0
				for t := c + 1; t >= 0; t-- {
					p.vCoef[t] += w * brow[t] * pw
					pw *= r0
				}
			} else {
				p.vxRho[p.nvx] = r0
				p.vxW[p.nvx] = w
				p.vxE[p.nvx] = int32(c + 1)
				p.nvx++
			}
		}
	}
	p.k1 = k1.Sum()
	p.tAt0 = ev.profT(0)
	p.vAt1 = ev.profV(1)
	p.coord = i
}

// profT evaluates T(δ−v): the pre-expanded polynomial by Horner plus the
// sign-crossing subsets' power ladders.
func (ev *Evaluator) profT(v float64) float64 {
	p := &ev.prof
	n := ev.n
	acc := 0.0
	for t := n + 1; t >= 0; t-- {
		acc = acc*v + p.tCoef[t]
	}
	for x := 0; x < p.ntx; x++ {
		j := int(p.crossT[x])
		r := ev.capacity - v - p.sumsR[j]
		if r <= 0 {
			continue
		}
		k := bits.OnesCount64(uint64(j))
		pw := combin.PowInt(r, k+1) * ev.invFact[k+1]
		row := p.m[j*n:]
		s := 0.0
		for c := k; c < n; c++ {
			s += row[c] * pw
			pw *= r * ev.invInt[c+2]
		}
		acc += p.signR[j] * s
	}
	return acc
}

// profV evaluates V(v): the pre-expanded polynomial by Horner plus the
// crossing terms whose radix turns positive at this v.
func (ev *Evaluator) profV(v float64) float64 {
	p := &ev.prof
	acc := 0.0
	for t := ev.n + 1; t >= 0; t-- {
		acc = acc*v + p.vCoef[t]
	}
	for x := 0; x < p.nvx; x++ {
		r := p.vxRho[x] + v
		if r <= 0 {
			continue
		}
		acc += p.vxW[x] * combin.PowInt(r, int(p.vxE[x]))
	}
	return acc
}

// profEval assembles the line value P(v) from the profile.
func (ev *Evaluator) profEval(v float64) float64 {
	p := &ev.prof
	return clamp01(p.tAt0 - ev.profT(v) + (1-v)*p.k1 - p.vAt1 + ev.profV(v))
}

// supersetSumStrided transforms arr — 2^ground cells of stride contiguous
// float64 lanes — in place so cell J becomes Σ_{T ⊇ J} cell T, lane by
// lane: the superset (reverse zeta) twin of combin.SumOverSubsets, with
// the lane vectors added contiguously for cache locality.
func supersetSumStrided(arr []float64, ground, stride int) {
	size := 1 << uint(ground)
	for b := 0; b < ground; b++ {
		half := 1 << uint(b)
		step := half << 1
		for base := 0; base < size; base += step {
			for j := base; j < base+half; j++ {
				lo := arr[j*stride : (j+1)*stride]
				hi := arr[(j+half)*stride : (j+half+1)*stride : (j+half+1)*stride]
				for c := range lo {
					lo[c] += hi[c]
				}
			}
		}
	}
}
