package nonoblivious

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/poly"
)

func TestWinningProbabilityRatMatchesFloat(t *testing.T) {
	cases := [][]*big.Rat{
		{rat(1, 2), rat(1, 2), rat(1, 2)},
		{rat(2, 5), rat(7, 10), rat(11, 20)},
		{rat(0, 1), rat(1, 1), rat(1, 2)},
		{rat(3, 5), rat(3, 5), rat(3, 5), rat(3, 5)},
	}
	capacity := rat(4, 3)
	cf, _ := capacity.Float64()
	for _, ths := range cases {
		tf := make([]float64, len(ths))
		for i, a := range ths {
			tf[i], _ = a.Float64()
		}
		exact, err := WinningProbabilityRat(ths, capacity)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := WinningProbability(tf, cf)
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := exact.Float64()
		if math.Abs(approx-ef) > 1e-12 {
			t.Errorf("thresholds %v: float %v vs exact %v", tf, approx, ef)
		}
	}
}

func TestWinningProbabilityRatExactValueN3(t *testing.T) {
	// β = 0: P = F_3(1) = 1/6, exactly.
	zero := new(big.Rat)
	p, err := WinningProbabilityRat([]*big.Rat{zero, zero, zero}, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(rat(1, 6)) != 0 {
		t.Errorf("P(0,0,0) = %v, want exactly 1/6", p)
	}
	// The symmetric symbolic curve at β = 1/2 must agree exactly.
	half := rat(1, 2)
	p, err = WinningProbabilityRat([]*big.Rat{half, half, half}, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	pw, err := SymbolicSymmetric(3, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := pw.Eval(half)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(want) != 0 {
		t.Errorf("general exact %v vs symbolic symmetric %v", p, want)
	}
}

func TestWinningProbabilityRatValidation(t *testing.T) {
	half := rat(1, 2)
	one := rat(1, 1)
	if _, err := WinningProbabilityRat([]*big.Rat{half}, one); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := WinningProbabilityRat([]*big.Rat{half, half}, nil); err == nil {
		t.Error("nil capacity: expected error")
	}
	if _, err := WinningProbabilityRat([]*big.Rat{half, nil}, one); err == nil {
		t.Error("nil threshold: expected error")
	}
	if _, err := WinningProbabilityRat([]*big.Rat{half, rat(3, 2)}, one); err == nil {
		t.Error("threshold > 1: expected error")
	}
	many := make([]*big.Rat, MaxNExact+1)
	for i := range many {
		many[i] = half
	}
	if _, err := WinningProbabilityRat(many, one); err == nil {
		t.Error("too many players: expected error")
	}
}

func TestOptimalityResidualAtOptimumChangesSign(t *testing.T) {
	// Theorem 5.2: the residual dP/dβ is positive just below β* and
	// negative just above, and the second derivative at (near) β* is
	// negative. β* for n=3 is irrational, so probe bracketing rationals.
	below := rat(62, 100)
	above := rat(63, 100)
	rb, err := OptimalityResidual(3, rat(1, 1), below)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := OptimalityResidual(3, rat(1, 1), above)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Sign() <= 0 || ra.Sign() >= 0 {
		t.Errorf("residuals around β*: below %v (want >0), above %v (want <0)", rb, ra)
	}
	sd, err := SecondDerivative(3, rat(1, 1), below)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Sign() >= 0 {
		t.Errorf("second derivative near β* = %v, want negative (maximum)", sd)
	}
}

func TestOptimalityResidualMatchesFiniteDifference(t *testing.T) {
	const h = 1e-7
	for _, bnum := range []int64{20, 45, 70, 90} {
		beta := rat(bnum, 100)
		bf, _ := beta.Float64()
		exact, err := OptimalityResidual(4, rat(4, 3), beta)
		if err != nil {
			t.Fatal(err)
		}
		pPlus, err := SymmetricWinningProbability(4, 4.0/3, bf+h)
		if err != nil {
			t.Fatal(err)
		}
		pMinus, err := SymmetricWinningProbability(4, 4.0/3, bf-h)
		if err != nil {
			t.Fatal(err)
		}
		numeric := (pPlus - pMinus) / (2 * h)
		ef, _ := exact.Float64()
		if math.Abs(numeric-ef) > 1e-4 {
			t.Errorf("β=%v: symbolic dP/dβ %v vs numeric %v", bf, ef, numeric)
		}
	}
}

func TestOptimalityResidualValidation(t *testing.T) {
	if _, err := OptimalityResidual(3, rat(1, 1), nil); err == nil {
		t.Error("nil β: expected error")
	}
	if _, err := OptimalityResidual(3, rat(1, 1), rat(3, 2)); err == nil {
		t.Error("β > 1: expected error")
	}
	if _, err := OptimalityResidual(1, rat(1, 1), rat(1, 2)); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := SecondDerivative(3, rat(1, 1), rat(-1, 2)); err == nil {
		t.Error("β < 0: expected error")
	}
	if _, err := SecondDerivative(1, rat(1, 1), rat(1, 2)); err == nil {
		t.Error("n=1: expected error")
	}
}

func TestSweepOptimaNonUniform(t *testing.T) {
	ns := []int{3, 4, 5, 6}
	res, err := SweepOptima(ns, func(n int) *big.Rat { return big.NewRat(int64(n), 3) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ns) {
		t.Fatalf("got %d results", len(res))
	}
	allEqual := true
	for i := 1; i < len(res); i++ {
		if math.Abs(res[i].BetaFloat-res[0].BetaFloat) > 1e-6 {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("β* constant across n: non-uniformity not reproduced")
	}
	if _, err := SweepOptima(nil, func(int) *big.Rat { return rat(1, 1) }); err == nil {
		t.Error("empty list: expected error")
	}
	if _, err := SweepOptima(ns, nil); err == nil {
		t.Error("nil scaling: expected error")
	}
	if _, err := SweepOptima([]int{1}, func(int) *big.Rat { return rat(1, 1) }); err == nil {
		t.Error("n=1 in list: expected error")
	}
}

func TestPolyFromCondition(t *testing.T) {
	cond := poly.RatPolyFromInt64(9, -21).Add(poly.RatPolyFromInt64(0, 0, 1).Scale(rat(21, 2)))
	monic := PolyFromCondition(cond)
	if monic.LeadingCoeff().Cmp(rat(1, 1)) != 0 {
		t.Errorf("leading coefficient = %v, want 1", monic.LeadingCoeff())
	}
	if monic.Coeff(0).Cmp(rat(6, 7)) != 0 {
		t.Errorf("constant term = %v, want 6/7", monic.Coeff(0))
	}
	if !PolyFromCondition(poly.RatPoly{}).IsZero() {
		t.Error("zero condition should stay zero")
	}
}

func TestExactSymmetricAgreementProperty(t *testing.T) {
	// Property: exact general Theorem 5.1 with equal rational thresholds
	// equals the symbolic symmetric curve, exactly.
	pw, err := SymbolicSymmetric(3, rat(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	f := func(num uint8) bool {
		beta := big.NewRat(int64(num%33), 32)
		general, err := WinningProbabilityRat([]*big.Rat{beta, beta, beta}, rat(1, 1))
		if err != nil {
			return false
		}
		symbolic, err := pw.Eval(beta)
		if err != nil {
			return false
		}
		return general.Cmp(symbolic) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
