package nonoblivious

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/combin"
	"repro/internal/dist"
	"repro/internal/obs"
)

// WinningProbabilityOpts is WinningProbability with explicit worker
// sharding and observability. workers ≤ 1 evaluates serially; every worker
// count returns bit-identical results (fixed chunk grid, fixed-order
// reduction), so callers may key caches on the inputs alone. A nil
// observer disables instrumentation.
//
// The Theorem 5.1 sum Σ_b N₀(b)·N₁(b) is evaluated from two precomputed
// subset tables instead of Θ(3^n) per-subset inclusion-exclusion:
//
//   - N₀ for every bin-1 complement comes from one dist.AllSubsetVolumes
//     call (the Proposition 2.2 volumes share the threshold δ, so their
//     signed base terms update incrementally across exponents);
//   - N₁ for every bin-1 set comes from the same per-cardinality
//     sum-over-subsets scheme, except the Lemma 2.7 radix m−δ−|J|+σ_J a
//     depends on the outer cardinality m, so each exponent rebuilds its
//     signed base table before the zeta pass (counted as rebuilt steps).
//
// Total cost O(n²·2^n) time and a few 2^n-entry float64 arrays, which is
// what lets MaxNGeneral sit at 20 with certified float64 accuracy (see
// ExactErrorBound) instead of the old Θ(3^n) limit of 15.
func WinningProbabilityOpts(thresholds []float64, capacity float64, workers int, o *obs.Observer) (float64, error) {
	n := len(thresholds)
	if n < 2 {
		return 0, fmt.Errorf("nonoblivious: need at least 2 players, got %d", n)
	}
	if n > MaxNGeneral {
		return 0, fmt.Errorf("nonoblivious: general evaluation limited to %d players, got %d", MaxNGeneral, n)
	}
	if err := validateCapacity(capacity); err != nil {
		return 0, err
	}
	for i, a := range thresholds {
		if math.IsNaN(a) || a < 0 || a > 1 {
			return 0, fmt.Errorf("nonoblivious: threshold[%d] = %v outside [0, 1]", i, a)
		}
	}
	if workers <= 0 {
		workers = 1
	}
	// N₀[Z] = P(x_i ≤ a_i ∀i∈Z ∧ Σ_Z x ≤ δ): the box-simplex volume with
	// widths a_i at threshold δ.
	n0, stats, err := dist.AllSubsetVolumes(thresholds, capacity, workers)
	if err != nil {
		return 0, err
	}
	n1, err := bin1Table(thresholds, capacity, workers, &stats)
	if err != nil {
		return 0, err
	}
	full := (uint64(1) << uint(n)) - 1
	total, chunks, err := combin.ChunkedMaskSum(n, workers, func() func(uint64) float64 {
		return func(s uint64) float64 {
			v := n0[full&^s]
			if v <= 0 {
				return 0
			}
			return v * n1[s]
		}
	})
	if err != nil {
		return 0, err
	}
	o.Counter("exact.subsets").Add(int64(stats.Subsets))
	o.Counter("exact.steps.incremental").Add(int64(stats.Incremental))
	o.Counter("exact.steps.rebuilt").Add(int64(stats.Rebuilt))
	o.Counter("exact.chunks").Add(int64(chunks))
	o.Gauge("exact.workers").Set(float64(workers))
	return clamp01(total), nil
}

// bin1Table returns N₁[O] = P(x_i > a_i ∀i∈O ∧ Σ_O x ≤ δ) for every
// subset O — the Lemma 2.7 tail
//
//	Π_{i∈O}(1-a_i) − (1/m!) Σ_{J⊆O} (−1)^{|J|} (m − δ − |J| + σ_J a)_+^m
//
// with m = |O|. The base term depends on J only through |J| and σ_J a, so
// for each exponent m one signed base table over all J feeds a single
// sum-over-subsets pass that yields every |O| = m entry at once. Unlike
// the N₀ radix, this radix shifts with m, so each exponent's base is
// rebuilt from the precomputed σ_J a − |J| table (stats.Rebuilt) rather
// than updated incrementally.
func bin1Table(a []float64, capacity float64, workers int, stats *dist.SubsetVolumeStats) ([]float64, error) {
	n := len(a)
	size := uint64(1) << uint(n)
	sums, err := combin.SubsetSums(a)
	if err != nil {
		return nil, err
	}
	oneMinus := make([]float64, n)
	for i, ai := range a {
		oneMinus[i] = 1 - ai
	}
	prod, err := combin.SubsetProducts(oneMinus)
	if err != nil {
		return nil, err
	}
	// sign[J]·(σ_J a − |J|): parity-signed radix offsets, both tabulated
	// once so each exponent's rebuild is a guard, a PowInt and a multiply.
	sign := make([]float64, size)
	sign[0] = 1
	for mask := uint64(1); mask < size; mask++ {
		sums[mask] -= float64(bits.OnesCount64(mask))
		sign[mask] = -sign[mask&(mask-1)]
	}
	out := make([]float64, size)
	out[0] = 1 // the empty bin always fits
	base := make([]float64, size)
	for m := 1; m <= n; m++ {
		f, err := combin.FactorialFloat(m)
		if err != nil {
			return nil, err
		}
		invFact := 1 / f
		shift := float64(m) - capacity
		for mask := uint64(0); mask < size; mask++ {
			r := shift + sums[mask]
			if r > 0 {
				base[mask] = sign[mask] * invFact * combin.PowInt(r, m)
			} else {
				base[mask] = 0
			}
		}
		if err := combin.SumOverSubsets(base, n, workers); err != nil {
			return nil, err
		}
		// Only the |O| = m entries are Lemma 2.7 tails at this exponent.
		if err := combin.ForEachKSubsetMask(n, m, func(mask uint64) bool {
			v := prod[mask] - base[mask]
			if v < 0 {
				v = 0
			}
			out[mask] = v
			return true
		}); err != nil {
			return nil, err
		}
	}
	stats.Subsets += size
	stats.Rebuilt += uint64(n) * size
	stats.Incremental += uint64(n) * uint64(n) * size / 2
	return out, nil
}

// ExactErrorBound is the documented absolute-error bound of the float64
// exact evaluators (WinningProbability and WinningProbabilityPi) against
// the big.Rat oracles (WinningProbabilityRat, WinningProbabilityPiRat): a
// conservative forward-error analysis over at most n²·3^n compensated
// operations — the 3^n covers the heterogeneous evaluator's pruned
// inclusion-exclusion walk — on terms no larger than M = max_m r^m/m! with
// r = max(δ, n−δ, 1), inflated by the worst-case range normalization
// min(π_i, 1)^−n. piMin is the smallest input range (pass 1 for
// homogeneous inputs). Deliberately loose — observed n = 10 errors are
// orders of magnitude smaller — but certified: the property tests pin the
// float path against the rational oracle within exactly this bound.
func ExactErrorBound(n int, capacity, piMin float64) float64 {
	if n < 1 {
		return 0
	}
	r := math.Max(math.Max(capacity, float64(n)-capacity), 1)
	mag, term := 1.0, 1.0
	for m := 1; m <= n; m++ {
		term *= r / float64(m)
		mag = math.Max(mag, term)
	}
	norm := 1.0
	if piMin > 0 && piMin < 1 {
		norm = math.Pow(piMin, -float64(n))
	}
	ops := float64(n) * float64(n) * math.Pow(3, float64(n))
	return 32 * ops * mag * norm * 0x1p-53
}
