package engine

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/obs"
	"repro/internal/py91"
	"repro/internal/response"
	"repro/internal/sim"
)

func mustInstance(t *testing.T, n int, delta float64) Instance {
	t.Helper()
	inst := Instance{N: n, Delta: delta}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestExactParity pins the engine's Exact backend to the pre-refactor
// per-package entry points, bit for bit, for all five rule classes.
func TestExactParity(t *testing.T) {
	e := New(Config{})
	inst := mustInstance(t, 3, 1)

	t.Run("oblivious", func(t *testing.T) {
		want, err := oblivious.SymmetricWinningProbability(3, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(inst, SymmetricOblivious{A: 0.5}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want {
			t.Errorf("engine %v != oblivious %v", got.P, want)
		}
		alphas := []float64{0.3, 0.5, 0.9}
		wantVec, err := oblivious.WinningProbability(alphas, 1)
		if err != nil {
			t.Fatal(err)
		}
		gotVec, err := e.Evaluate(inst, Oblivious{Alphas: alphas}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if gotVec.P != wantVec {
			t.Errorf("engine %v != oblivious vector %v", gotVec.P, wantVec)
		}
		det, err := oblivious.WinningProbability([]float64{1, 1, 0}, 1)
		if err != nil {
			t.Fatal(err)
		}
		gotDet, err := e.Evaluate(inst, DeterministicSplit{K: 2}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if gotDet.P != det {
			t.Errorf("engine split %v != vertex %v", gotDet.P, det)
		}
	})

	t.Run("threshold", func(t *testing.T) {
		beta := 1 - math.Sqrt(1.0/7)
		want, err := nonoblivious.SymmetricWinningProbability(3, 1, beta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(inst, SymmetricThreshold{Beta: beta}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want {
			t.Errorf("engine %v != nonoblivious %v", got.P, want)
		}
		ths := []float64{0.6, 0.62, 0.64}
		wantVec, err := nonoblivious.WinningProbability(ths, 1)
		if err != nil {
			t.Fatal(err)
		}
		gotVec, err := e.Evaluate(inst, Threshold{Thresholds: ths}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if gotVec.P != wantVec {
			t.Errorf("engine %v != nonoblivious vector %v", gotVec.P, wantVec)
		}
	})

	t.Run("interval", func(t *testing.T) {
		set, err := response.NewIntervalSet([]response.Interval{{Lo: 0, Hi: 0.4}, {Lo: 0.7, Hi: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := response.NewEvaluator(3, 1, 2048)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ev.WinProbability(set)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(inst, IntervalRule{Set: set, Grid: 2048}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want {
			t.Errorf("engine %v != response oracle %v", got.P, want)
		}
	})

	t.Run("comm", func(t *testing.T) {
		p := comm.OneBitBroadcast{N: 3, Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.7, BetaHigh: 0.5}
		want, err := p.WinProbability(1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(inst, OneBitRule{Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.7, BetaHigh: 0.5}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want {
			t.Errorf("engine %v != comm %v", got.P, want)
		}
	})

	t.Run("py91", func(t *testing.T) {
		proto := py91.ConjecturedOptimal()
		want, err := proto.ExactWinProbability()
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(inst, PY91Rule{Protocol: proto}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want {
			t.Errorf("engine %v != py91 closed form %v", got.P, want)
		}
		// Non-threshold protocols fall through to quadrature.
		w, err := py91.NewWeightedAverageProtocol(py91.Broadcast, 0.6, 0.8, 0.8, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		wantQ, err := py91.EvaluateByQuadrature(w, DefaultQuadratureGrid)
		if err != nil {
			t.Fatal(err)
		}
		gotQ, err := e.Evaluate(inst, PY91Rule{Protocol: w}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if gotQ.P != wantQ {
			t.Errorf("engine %v != py91 quadrature %v", gotQ.P, wantQ)
		}
	})
}

// TestMonteCarloParity pins the engine's MC backend to the pre-refactor
// simulation entry points for every rule class that had one.
func TestMonteCarloParity(t *testing.T) {
	e := New(Config{})
	inst := mustInstance(t, 3, 1)
	cfg := sim.Config{Trials: 50000, Seed: 9, Workers: 4}

	t.Run("threshold", func(t *testing.T) {
		r := SymmetricThreshold{Beta: 0.622}
		sys, err := r.System(inst)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.WinProbability(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.EvaluateWith(inst, r, MonteCarlo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want.P || got.Sim.Wins != want.Wins {
			t.Errorf("engine %v (%d wins) != sim %v (%d wins)", got.P, got.Sim.Wins, want.P, want.Wins)
		}
		if got.Backend != MonteCarlo || got.StdErr != want.StdErr {
			t.Errorf("result metadata mismatch: %+v vs %+v", got, want)
		}
	})

	t.Run("oblivious", func(t *testing.T) {
		r := SymmetricOblivious{A: 0.5}
		sys, err := r.System(inst)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.WinProbability(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.EvaluateWith(inst, r, MonteCarlo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want.P || got.Sim.Wins != want.Wins {
			t.Errorf("engine %v != sim %v", got.P, want.P)
		}
	})

	t.Run("py91", func(t *testing.T) {
		proto := py91.ConjecturedOptimal()
		want, err := py91.Evaluate(proto, py91.SimConfig{Trials: cfg.Trials, Workers: cfg.Workers, Seed: cfg.Seed})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.EvaluateWith(inst, PY91Rule{Protocol: proto}, MonteCarlo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != want.P || got.StdErr != want.StdErr {
			t.Errorf("engine %v ± %v != py91.Evaluate %v ± %v", got.P, got.StdErr, want.P, want.StdErr)
		}
	})

	t.Run("comm", func(t *testing.T) {
		// No pre-refactor MC entry point existed; check the simulator
		// against the exact value instead.
		r := OneBitRule{Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.7, BetaHigh: 0.5}
		exact, err := e.Evaluate(inst, r, Exact)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := e.EvaluateWith(inst, r, MonteCarlo, sim.Config{Trials: 200000, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc.P-exact.P) > 4*mc.StdErr {
			t.Errorf("one-bit MC %v ± %v far from exact %v", mc.P, mc.StdErr, exact.P)
		}
	})

	t.Run("interval", func(t *testing.T) {
		set, err := response.Threshold(0.622)
		if err != nil {
			t.Fatal(err)
		}
		r := IntervalRule{Set: set}
		exact, err := e.Evaluate(inst, r, Exact)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := e.EvaluateWith(inst, r, MonteCarlo, sim.Config{Trials: 200000, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc.P-exact.P) > 4*mc.StdErr+1e-3 {
			t.Errorf("interval MC %v ± %v far from oracle %v", mc.P, mc.StdErr, exact.P)
		}
	})
}

func TestAutoResolution(t *testing.T) {
	e := New(Config{Sim: sim.Config{Trials: 1000, Seed: 1}})
	inst := mustInstance(t, 3, 1)
	// Every bundled rule has an exact oracle, so Auto resolves to Exact.
	res, err := e.Evaluate(inst, SymmetricThreshold{Beta: 0.5}, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != Exact {
		t.Errorf("auto resolved to %v, want exact", res.Backend)
	}
	// A rule without an exact oracle falls back to Monte-Carlo.
	res, err = e.Evaluate(inst, mcOnlyRule{}, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != MonteCarlo {
		t.Errorf("auto resolved to %v, want mc", res.Backend)
	}
	// Forcing Exact on it fails up front.
	if _, err := e.Evaluate(inst, mcOnlyRule{}, Exact); err == nil {
		t.Error("exact on mc-only rule: expected error")
	}
}

// mcOnlyRule is a test rule with no exact oracle.
type mcOnlyRule struct{}

func (mcOnlyRule) Name() string        { return "mc-only" }
func (mcOnlyRule) Fingerprint() string { return "test:mc-only" }
func (mcOnlyRule) System(inst Instance) (*model.System, error) {
	return SymmetricThreshold{Beta: 0.5}.System(inst)
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{{"exact", Exact}, {"MC", MonteCarlo}, {"montecarlo", MonteCarlo}, {"auto", Auto}, {"sim", MonteCarlo}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseBackend("quantum"); err == nil {
		t.Error("unknown backend: expected error")
	}
}

func TestEvaluateValidation(t *testing.T) {
	e := New(Config{})
	inst := mustInstance(t, 3, 1)
	if _, err := e.Evaluate(inst, nil, Auto); err == nil {
		t.Error("nil rule: expected error")
	}
	if _, err := e.Evaluate(Instance{N: 1, Delta: 1}, SymmetricThreshold{Beta: 0.5}, Exact); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := e.Evaluate(Instance{N: 3, Delta: 0}, SymmetricThreshold{Beta: 0.5}, Exact); err == nil {
		t.Error("δ=0: expected error")
	}
	// Rule-level validation surfaces (wrong vector length).
	if _, err := e.Evaluate(inst, Threshold{Thresholds: []float64{0.5}}, Exact); err == nil {
		t.Error("wrong vector length: expected error")
	}
	// System on a communication rule reports ErrNoSystem.
	if _, err := (OneBitRule{}).System(inst); !errors.Is(err, ErrNoSystem) {
		t.Error("one-bit System should wrap ErrNoSystem")
	}
	if _, err := (PY91Rule{}).System(inst); !errors.Is(err, ErrNoSystem) {
		t.Error("py91 System should wrap ErrNoSystem")
	}
}

// TestCacheHitSemantics checks the memoization contract: the second
// identical evaluation is served from cache with identical bits, distinct
// keys stay distinct, and counters record the traffic.
func TestCacheHitSemantics(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Obs: obs.New(reg, nil)})
	inst := mustInstance(t, 3, 1)
	cfg := sim.Config{Trials: 20000, Seed: 5, Workers: 2}

	first, err := e.EvaluateWith(inst, SymmetricThreshold{Beta: 0.622}, MonteCarlo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first evaluation claims to be cached")
	}
	second, err := e.EvaluateWith(inst, SymmetricThreshold{Beta: 0.622}, MonteCarlo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical evaluation not cached")
	}
	if second.P != first.P || second.Sim.Wins != first.Sim.Wins {
		t.Errorf("cache returned different bits: %v vs %v", second, first)
	}
	// A different seed is a different key.
	third, err := e.EvaluateWith(inst, SymmetricThreshold{Beta: 0.622}, MonteCarlo, sim.Config{Trials: 20000, Seed: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("distinct seed served from cache")
	}
	// Exact and MC are distinct keys for the same rule.
	if _, err := e.Evaluate(inst, SymmetricThreshold{Beta: 0.622}, Exact); err != nil {
		t.Fatal(err)
	}
	if e.CacheLen() != 3 {
		t.Errorf("cache has %d entries, want 3", e.CacheLen())
	}
	if hits := reg.Counter("engine.cache.hits").Value(); hits != 1 {
		t.Errorf("hit counter = %d, want 1", hits)
	}
	if misses := reg.Counter("engine.cache.misses").Value(); misses != 3 {
		t.Errorf("miss counter = %d, want 3", misses)
	}
	// Errors are not poisoned into successful entries: an error result is
	// returned to every caller of that key.
	if _, err := e.Evaluate(inst, Threshold{Thresholds: []float64{0.5}}, Exact); err == nil {
		t.Fatal("expected error")
	}
}

// TestCacheConcurrency exercises the singleflight cache under the race
// detector: many goroutines evaluating overlapping keys must agree bit-
// for-bit with an uncached engine, and concurrent identical calls must
// coalesce into one computation.
func TestCacheConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Obs: obs.New(reg, nil)})
	inst := mustInstance(t, 3, 1)
	cfg := sim.Config{Trials: 5000, Seed: 7, Workers: 2}
	betas := []float64{0.3, 0.4, 0.5, 0.6, 0.622}

	// Uncached reference results.
	want := make([]Result, len(betas))
	for i, b := range betas {
		r, err := New(Config{}).EvaluateWith(inst, SymmetricThreshold{Beta: b}, MonteCarlo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const goroutines = 8
	got := make([][]Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]Result, len(betas))
			for i, b := range betas {
				r, err := e.EvaluateWith(inst, SymmetricThreshold{Beta: b}, MonteCarlo, cfg)
				if err != nil {
					t.Error(err)
					return
				}
				got[g][i] = r
			}
		}(g)
	}
	wg.Wait()

	for g := range got {
		for i := range betas {
			if got[g][i].P != want[i].P || got[g][i].Sim.Wins != want[i].Sim.Wins {
				t.Errorf("goroutine %d β=%v: cached %v != uncached %v", g, betas[i], got[g][i].P, want[i].P)
			}
		}
	}
	if misses := reg.Counter("engine.cache.misses").Value(); misses != int64(len(betas)) {
		t.Errorf("computed %d times, want exactly %d (singleflight)", misses, len(betas))
	}
	if hits := reg.Counter("engine.cache.hits").Value(); hits < 1 {
		t.Error("no cache hits recorded across concurrent identical evaluations")
	}
}

func TestDefaultEngineShared(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() is not a singleton")
	}
	if Default().SimConfig().Trials != DefaultTrials {
		t.Errorf("default trials = %d", Default().SimConfig().Trials)
	}
}
