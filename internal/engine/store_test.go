package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// newDiskEngine builds an engine over a disk-tiered store rooted at dir,
// returning the registry its counters land in.
func newDiskEngine(t *testing.T, dir string) (*Engine, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	o := obs.New(reg, nil)
	st, err := store.New(store.Options{Dir: dir, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Obs: o, Store: st}), reg
}

// TestDiskWarmRestart is the tentpole contract: a second engine opened on
// the same cache directory serves a previously-computed exact result from
// disk — Cached=true, zero engine.evals.exact, bit-identical value.
func TestDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	inst := mustInstance(t, 3, 1)
	rule := SymmetricThreshold{Beta: 0.6220355269907728}

	e1, reg1 := newDiskEngine(t, dir)
	cold, err := e1.Evaluate(inst, rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("cold evaluation claims to be cached")
	}
	if got := reg1.Counter("store.disk.writes").Value(); got != 1 {
		t.Errorf("store.disk.writes = %d, want 1", got)
	}

	// "Restart": a fresh engine and store over the same directory.
	e2, reg2 := newDiskEngine(t, dir)
	warm, err := e2.Evaluate(inst, rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("warm-restart evaluation not served as cached")
	}
	if warm.P != cold.P || warm.Backend != cold.Backend {
		t.Errorf("disk round trip changed bits: %+v vs %+v", warm, cold)
	}
	if got := reg2.Counter("engine.evals.exact").Value(); got != 0 {
		t.Errorf("engine.evals.exact = %d after warm restart, want 0", got)
	}
	if got := reg2.Counter("engine.cache.hits").Value(); got != 1 {
		t.Errorf("engine.cache.hits = %d, want 1", got)
	}
	if got := reg2.Counter("engine.cache.misses").Value(); got != 0 {
		t.Errorf("engine.cache.misses = %d, want 0", got)
	}
	if got := reg2.Counter("store.disk.hits").Value(); got != 1 {
		t.Errorf("store.disk.hits = %d, want 1", got)
	}
}

// TestDiskRoundTripMC checks that a Monte-Carlo result — including its
// full sim.Result payload — survives the disk encoding, so a restarted
// engine returns the same bits the original simulation produced.
func TestDiskRoundTripMC(t *testing.T) {
	dir := t.TempDir()
	inst := mustInstance(t, 3, 1)
	rule := SymmetricThreshold{Beta: 0.5}
	cfg := sim.Config{Trials: 5000, Seed: 11, Workers: 2}

	e1, _ := newDiskEngine(t, dir)
	cold, err := e1.EvaluateWith(inst, rule, MonteCarlo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := newDiskEngine(t, dir)
	warm, err := e2.EvaluateWith(inst, rule, MonteCarlo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("warm-restart MC evaluation not served as cached")
	}
	if warm.P != cold.P || warm.StdErr != cold.StdErr {
		t.Errorf("P/StdErr changed across restart: %+v vs %+v", warm, cold)
	}
	if warm.Sim == nil {
		t.Fatal("Sim payload lost across restart")
	}
	if warm.Sim.Wins != cold.Sim.Wins || warm.Sim.Trials != cold.Sim.Trials {
		t.Errorf("sim payload changed across restart: %+v vs %+v", warm.Sim, cold.Sim)
	}
}

// TestBoundedStoreEvicts wires a size-bounded store into the engine and
// checks that the cache stays within its bound while evictions are
// counted — and that evaluations still return correct values throughout.
func TestBoundedStoreEvicts(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.New(reg, nil)
	e := New(Config{Obs: o, Store: store.NewMemory(store.Options{MaxEntries: 2, Obs: o})})
	inst := mustInstance(t, 3, 1)
	for _, beta := range []float64{0.3, 0.4, 0.5, 0.6} {
		if _, err := e.Evaluate(inst, SymmetricThreshold{Beta: beta}, Exact); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.CacheLen(); n > 2 {
		t.Errorf("bounded cache holds %d entries, want <= 2", n)
	}
	if got := reg.Counter("store.evictions").Value(); got != 2 {
		t.Errorf("store.evictions = %d, want 2", got)
	}
}

// TestSweepChunksCtx checks the streaming seam: chunked results agree
// bit-for-bit with a whole-grid sweep, chunks arrive in order with
// correct global offsets, and the reused buffer forces emit to copy.
func TestSweepChunksCtx(t *testing.T) {
	e := New(Config{})
	inst := mustInstance(t, 3, 1)
	betas := []float64{0.3, 0.4, 0.5, 0.6, 0.622}
	points := make([]Point, len(betas))
	for i, b := range betas {
		points[i] = Point{Instance: inst, Rule: SymmetricThreshold{Beta: b}}
	}
	opts := SweepOptions{Backend: Exact, Workers: 2}

	want, err := e.SweepCtx(context.Background(), points, opts)
	if err != nil {
		t.Fatal(err)
	}

	var starts []int
	got := make([]Result, 0, len(points))
	err = e.SweepChunksCtx(context.Background(), points, opts, 2, func(start int, results []Result) error {
		starts = append(starts, start)
		got = append(got, results...) // copy: the slice is reused
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 3 || starts[0] != 0 || starts[1] != 2 || starts[2] != 4 {
		t.Errorf("chunk starts = %v, want [0 2 4]", starts)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].P != want[i].P {
			t.Errorf("point %d: streamed P=%v, sweep P=%v", i, got[i].P, want[i].P)
		}
	}

	// A failing point aborts with its global index.
	bad := append(append([]Point(nil), points...), Point{Instance: inst, Rule: Threshold{Thresholds: []float64{0.5}}})
	err = e.SweepChunksCtx(context.Background(), bad, SweepOptions{Backend: Exact}, 2, func(int, []Result) error { return nil })
	if err == nil {
		t.Fatal("expected error from invalid point")
	}
	if want := "sweep point 5"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name global point index (%q)", err, want)
	}
}
