package engine

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/problem"
)

// TestExactWorkersBitIdentical evaluates the sharded exact rules through
// engines with different ExactWorkers settings and requires bit-identical
// probabilities — the invariant that keeps ExactWorkers out of the cache
// key — plus populated exact.* enumeration counters.
func TestExactWorkersBitIdentical(t *testing.T) {
	inst := Instance{N: 6, Delta: 2, Pi: []float64{0.5, 1.25, 0.75, 2, 1, 1.5}}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	rules := []Rule{
		Threshold{Thresholds: []float64{0.25, 0.5, 0.75, 0.375, 0.625, 0.5}},
		SymmetricThreshold{Beta: 0.625},
		Oblivious{Alphas: []float64{0.25, 0.5, 0.75, 0.375, 0.625, 0.5}},
		SymmetricOblivious{A: 0.5},
		DeterministicSplit{K: 3},
	}
	for _, r := range rules {
		if _, ok := r.(ExactOpts); !ok {
			t.Fatalf("rule %s does not implement ExactOpts", r.Name())
		}
	}
	reg := obs.NewRegistry()
	base := New(Config{Obs: obs.New(reg, nil), ExactWorkers: 1})
	sharded := New(Config{ExactWorkers: 4})
	for _, r := range rules {
		want, err := base.Evaluate(inst, r, Exact)
		if err != nil {
			t.Fatalf("%s workers=1: %v", r.Name(), err)
		}
		got, err := sharded.Evaluate(inst, r, Exact)
		if err != nil {
			t.Fatalf("%s workers=4: %v", r.Name(), err)
		}
		if math.Float64bits(got.P) != math.Float64bits(want.P) {
			t.Errorf("%s: workers=4 returned %x, workers=1 returned %x",
				r.Name(), math.Float64bits(got.P), math.Float64bits(want.P))
		}
	}
	snap := reg.Snapshot()
	for _, name := range []string{"exact.subsets", "exact.steps.incremental", "exact.chunks"} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s not populated: %d", name, snap.Counters[name])
		}
	}
	if snap.Gauges["exact.workers"] != 1 {
		t.Errorf("exact.workers gauge = %v, want 1", snap.Gauges["exact.workers"])
	}
	// The homogeneous game still routes through the Opts path (serial
	// closed forms for the symmetric rules, sharded SOS for Threshold).
	homog := problem.Instance{N: 6, Delta: 2}
	for _, r := range rules {
		want, err := base.Evaluate(homog, r, Exact)
		if err != nil {
			t.Fatalf("%s homogeneous workers=1: %v", r.Name(), err)
		}
		got, err := sharded.Evaluate(homog, r, Exact)
		if err != nil {
			t.Fatalf("%s homogeneous workers=4: %v", r.Name(), err)
		}
		if math.Float64bits(got.P) != math.Float64bits(want.P) {
			t.Errorf("%s homogeneous: workers=4 returned %x, workers=1 returned %x",
				r.Name(), math.Float64bits(got.P), math.Float64bits(want.P))
		}
	}
}
