package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/nonoblivious"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/sim"
)

// Default optimization knobs. The scalar defaults reproduce the numeric
// cross-checks the CLI ran before optimization moved into the engine
// (101-point grid, 1e-10 bracket), so their outputs stay bit-identical.
const (
	// DefaultOptimizeGrid is the scalar grid resolution.
	DefaultOptimizeGrid = 101
	// DefaultOptimizeTol is the bracket / simplex-spread tolerance.
	DefaultOptimizeTol = 1e-10
	// DefaultOptimizePasses caps the vector coordinate-ascent passes
	// (ascent stops earlier on the first pass without improvement).
	DefaultOptimizePasses = 64
)

// OptimizeOptions configures one optimization run.
type OptimizeOptions struct {
	// Backend selects the evaluation backend for every probe.
	Backend Backend
	// Sim configures the Monte-Carlo backend (zero Trials selects the
	// engine default).
	Sim sim.Config
	// GridPoints is the scalar path's grid resolution; 0 selects
	// DefaultOptimizeGrid.
	GridPoints int
	// Tol is the convergence tolerance; 0 selects DefaultOptimizeTol.
	Tol float64
	// Passes caps the vector path's coordinate-ascent passes; 0 selects
	// DefaultOptimizePasses.
	Passes int
	// Start optionally seeds the vector search; nil starts from the box
	// midpoint. Ignored by the scalar path (the grid scan brackets the
	// global maximum on its own).
	Start []float64
	// SkipPolish skips the vector path's Nelder-Mead polish, returning the
	// coordinate-ascent optimum directly. Benchmarks isolating the ascent
	// use it; production searches should leave it false.
	SkipPolish bool
	// NoTableReuse disables the per-search reusable evaluator, forcing
	// every probe through the one-shot exact path. It exists to measure
	// the table-reuse speedup; leaving it false is strictly faster and
	// agrees within the exact backend's certified error bound.
	NoTableReuse bool
}

// OptimizeResult is the outcome of one optimization run.
type OptimizeResult struct {
	// Family is the optimized family's name.
	Family string
	// Params is the best parameter vector found.
	Params []float64
	// Rule is the materialized rule at Params.
	Rule Rule
	// Value is the winning probability at Params.
	Value float64
	// Backend is the backend that evaluated the probes (never Auto).
	Backend Backend
	// Evals counts objective evaluations (cache hits included).
	Evals int
	// CacheHits counts the evaluations served from the memoization cache.
	CacheHits int
	// Iterations counts searcher iterations (bracket shrinks for the
	// scalar path, ascent passes plus simplex moves for the vector path).
	Iterations int
	// DeltaUpdates counts the reusable evaluator's single-coordinate
	// delta evaluations (0 when the search ran without table reuse).
	DeltaUpdates uint64
	// Degraded reports that the context expired mid-search and the result
	// is the best point evaluated before the deadline, not a converged
	// optimum.
	Degraded bool
}

// Optimize maximizes the family's winning probability over its parameter
// box with Background context; see OptimizeCtx.
func (e *Engine) Optimize(inst Instance, fam RuleFamily, opts OptimizeOptions) (OptimizeResult, error) {
	return e.OptimizeCtx(context.Background(), inst, fam, opts)
}

// OptimizeCtx maximizes the family's winning probability over its parameter
// box. Every probe routes through EvaluateWithCtx, so repeated points hit
// the memoization cache, concurrent searches coalesce, and — when ctx
// carries an obs span — the search emits the
// engine.optimize → engine.evaluate → backend.* trace tree. Scalar families
// run grid-then-golden search; higher-dimensional families run coordinate
// ascent followed by a Nelder-Mead polish, keeping the better optimum.
//
// Probe counts land in the optimize.evals / optimize.cache_hits counters.
// A cancellable ctx bounds the search: once ctx expires, remaining probes
// fail fast and the call returns the best point already evaluated with
// Degraded set — the serving layer's best-so-far degraded response — or
// ctx.Err() when the deadline struck before any probe finished.
func (e *Engine) OptimizeCtx(ctx context.Context, inst Instance, fam RuleFamily, opts OptimizeOptions) (OptimizeResult, error) {
	if fam == nil {
		return OptimizeResult{}, fmt.Errorf("engine: nil rule family")
	}
	if err := inst.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	lo, hi, err := fam.Bounds(inst)
	if err != nil {
		return OptimizeResult{}, err
	}
	if len(lo) == 0 || len(lo) != len(hi) {
		return OptimizeResult{}, fmt.Errorf("engine: family %s returned an invalid %d/%d-dimensional box", fam.Name(), len(lo), len(hi))
	}
	if opts.GridPoints <= 0 {
		opts.GridPoints = DefaultOptimizeGrid
	}
	if opts.Tol <= 0 {
		opts.Tol = DefaultOptimizeTol
	}
	if opts.Passes <= 0 {
		opts.Passes = DefaultOptimizePasses
	}

	var sp *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp = parent.Child("engine.optimize")
		sp.SetField("family", fam.Name())
		sp.SetField("backend", opts.Backend.String())
		ctx = obs.ContextWithSpan(ctx, sp)
		defer sp.End()
	}

	// Vector searches over homogeneous threshold instances probe through a
	// per-search reusable evaluator: the exact tables are built once and
	// delta-updated per probe. Probes deliberately do NOT consult the memo
	// store — probe values must depend only on the probe sequence, never on
	// cache state, so concurrent searches stay bit-identical. Probe values
	// agree with the one-shot path within the exact backend's certified
	// error bound; the final optimum is re-evaluated through the normal
	// memoizing path below, so the returned Value carries the one-shot
	// bits and repeated searches hit the cache there.
	var pev *nonoblivious.Evaluator
	if len(lo) > 1 && !opts.NoTableReuse &&
		(opts.Backend == Exact || opts.Backend == Auto) && !inst.Heterogeneous() {
		if _, ok := fam.(ThresholdVectorFamily); ok && inst.N <= nonoblivious.MaxNGeneral {
			if evp, eerr := nonoblivious.NewEvaluator(inst.N, inst.Delta); eerr == nil {
				pev = evp
			}
		}
	}

	best := OptimizeResult{Family: fam.Name(), Value: math.Inf(-1)}
	var firstErr error
	objective := func(params []float64) float64 {
		r, err := fam.Rule(inst, params)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return math.Inf(-1)
		}
		best.Evals++
		e.obs.Counter("optimize.evals").Inc()
		var p float64
		var backend Backend
		cached := false
		if pev != nil {
			if ctx.Err() != nil {
				return math.Inf(-1)
			}
			var perr error
			p, perr = pev.EvaluateVector(params)
			if perr != nil {
				if firstErr == nil {
					firstErr = perr
				}
				return math.Inf(-1)
			}
			backend = Exact
		} else {
			res, err := e.EvaluateWithCtx(ctx, inst, r, opts.Backend, opts.Sim)
			if err != nil {
				if firstErr == nil && ctx.Err() == nil {
					firstErr = err
				}
				return math.Inf(-1)
			}
			p, backend, cached = res.P, res.Backend, res.Cached
		}
		if cached {
			best.CacheHits++
			e.obs.Counter("optimize.cache_hits").Inc()
		}
		if p > best.Value {
			best.Value = p
			best.Params = append(best.Params[:0], params...)
			best.Rule = r
			best.Backend = backend
		}
		return p
	}

	if len(lo) == 1 {
		res, serr := optimize.GridThenGoldenMaxObserved(e.obs, func(x float64) float64 {
			return objective([]float64{x})
		}, lo[0], hi[0], opts.GridPoints, opts.Tol)
		if serr != nil {
			return OptimizeResult{}, serr
		}
		best.Iterations = res.Iterations
	} else {
		start := opts.Start
		if start == nil {
			start = make([]float64, len(lo))
			for i := range start {
				start[i] = (lo[i] + hi[i]) / 2
			}
		}
		ca, serr := optimize.CoordinateAscentBoxObserved(e.obs, objective, start, lo, hi, opts.Passes, opts.Tol)
		if serr != nil {
			return OptimizeResult{}, serr
		}
		best.Iterations = ca.Iterations
		if !opts.SkipPolish {
			// Polish with Nelder-Mead from the ascent's optimum: coordinate
			// ascent can stall on diagonal ridges that simplex moves cross.
			minWidth := math.Inf(1)
			for i := range lo {
				minWidth = math.Min(minWidth, hi[i]-lo[i])
			}
			nm, serr := optimize.NelderMeadMaxObserved(e.obs, objective, ca.X, lo, hi, minWidth/8, 200*len(lo), opts.Tol)
			if serr != nil {
				return OptimizeResult{}, serr
			}
			best.Iterations += nm.Iterations
		}
	}

	if pev != nil {
		st := pev.Stats()
		best.DeltaUpdates = st.DeltaUpdates
		e.obs.Counter("exact.delta.updates").Add(int64(st.DeltaUpdates))
		e.obs.Counter("exact.delta.subsets").Add(int64(st.DeltaSubsets))
		if best.Rule != nil {
			// Canonicalize: delta-updated probe values drift within the
			// certified bound, so the reported optimum is re-evaluated
			// through the normal memoizing path and carries the one-shot
			// bits. A deadline striking here keeps the evaluator's value;
			// the result is flagged Degraded below.
			res, rerr := e.EvaluateWithCtx(ctx, inst, best.Rule, opts.Backend, opts.Sim)
			best.Evals++
			e.obs.Counter("optimize.evals").Inc()
			if rerr == nil {
				best.Value = res.P
				best.Backend = res.Backend
				if res.Cached {
					best.CacheHits++
					e.obs.Counter("optimize.cache_hits").Inc()
				}
			}
		}
	}

	if sp != nil {
		sp.SetAttr("evals", float64(best.Evals))
		sp.SetAttr("cache_hits", float64(best.CacheHits))
		if pev != nil {
			sp.SetAttr("optimize.table_reuse", 1)
			sp.SetAttr("optimize.delta_updates", float64(best.DeltaUpdates))
		}
	}
	if math.IsInf(best.Value, -1) {
		// No probe succeeded: report the deadline if one struck, the first
		// evaluation error otherwise.
		if cerr := ctx.Err(); cerr != nil {
			return OptimizeResult{}, cerr
		}
		if firstErr != nil {
			return OptimizeResult{}, firstErr
		}
		return OptimizeResult{}, fmt.Errorf("engine: optimization of %s produced no finite value", fam.Name())
	}
	if ctx.Err() != nil {
		best.Degraded = true
		sp.SetAttr("degraded", 1)
	}
	return best, nil
}
