package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/response"
)

// RuleFamily is a parametric family of rules viewed through the optimizer:
// a box of parameter vectors, each of which materializes into a Rule. The
// materialized Rule's fingerprint covers the parameter vector (every Rule
// fingerprint already encodes its parameters bit-exactly), so repeated
// evaluations of the same point hit the engine's memoization cache and
// concurrent searches coalesce through the singleflight entries.
type RuleFamily interface {
	// Name is the family's stable name (also the CLI/HTTP "kind").
	Name() string
	// Bounds returns the search box [lo_i, hi_i] for the instance. The
	// common length of lo and hi is the family's dimension there.
	Bounds(inst Instance) (lo, hi []float64, err error)
	// Rule materializes the parameter vector into an evaluable rule.
	Rule(inst Instance, params []float64) (Rule, error)
}

// checkParams validates a parameter vector against a family's box.
func checkParams(fam string, params, lo, hi []float64) error {
	if len(params) != len(lo) {
		return fmt.Errorf("engine: %s wants %d parameters, got %d", fam, len(lo), len(params))
	}
	for i, v := range params {
		if math.IsNaN(v) || v < lo[i] || v > hi[i] {
			return fmt.Errorf("engine: %s parameter %d = %v outside [%v, %v]", fam, i, v, lo[i], hi[i])
		}
	}
	return nil
}

// ThresholdBetaFamily is the symmetric threshold family: one parameter
// β ∈ [0, 1], every player cutting at β (SymmetricThreshold). On
// heterogeneous instances a β above π_i simply sends player i to bin 0
// always, so the box stays [0, 1].
type ThresholdBetaFamily struct{}

// Name implements RuleFamily.
func (ThresholdBetaFamily) Name() string { return "threshold" }

// Bounds implements RuleFamily.
func (ThresholdBetaFamily) Bounds(Instance) ([]float64, []float64, error) {
	return []float64{0}, []float64{1}, nil
}

// Rule implements RuleFamily.
func (f ThresholdBetaFamily) Rule(inst Instance, params []float64) (Rule, error) {
	lo, hi, _ := f.Bounds(inst)
	if err := checkParams("threshold family", params, lo, hi); err != nil {
		return nil, err
	}
	return SymmetricThreshold{Beta: params[0]}, nil
}

// ObliviousAlphaFamily is the symmetric oblivious family: one parameter
// α ∈ [0, 1], every player entering bin 0 with probability α
// (SymmetricOblivious) — the Theorem 4.3 ray.
type ObliviousAlphaFamily struct{}

// Name implements RuleFamily.
func (ObliviousAlphaFamily) Name() string { return "oblivious" }

// Bounds implements RuleFamily.
func (ObliviousAlphaFamily) Bounds(Instance) ([]float64, []float64, error) {
	return []float64{0}, []float64{1}, nil
}

// Rule implements RuleFamily.
func (f ObliviousAlphaFamily) Rule(inst Instance, params []float64) (Rule, error) {
	lo, hi, _ := f.Bounds(inst)
	if err := checkParams("oblivious family", params, lo, hi); err != nil {
		return nil, err
	}
	return SymmetricOblivious{A: params[0]}, nil
}

// ThresholdVectorFamily is the full non-uniform threshold family the paper
// leaves open: one threshold a_i per player (Threshold). The box is
// [0, min(1, π_i)] per coordinate — thresholds beyond a player's input
// range only replicate the boundary rule, so excluding them loses nothing
// and keeps the search box tight.
type ThresholdVectorFamily struct{}

// Name implements RuleFamily.
func (ThresholdVectorFamily) Name() string { return "vector" }

// Bounds implements RuleFamily.
func (ThresholdVectorFamily) Bounds(inst Instance) ([]float64, []float64, error) {
	if inst.N <= 0 {
		return nil, nil, fmt.Errorf("engine: vector family needs n ≥ 1, got %d", inst.N)
	}
	lo := make([]float64, inst.N)
	hi := make([]float64, inst.N)
	for i := range hi {
		hi[i] = 1
		if inst.Pi != nil && inst.Pi[i] < 1 {
			hi[i] = inst.Pi[i]
		}
	}
	return lo, hi, nil
}

// Rule implements RuleFamily.
func (f ThresholdVectorFamily) Rule(inst Instance, params []float64) (Rule, error) {
	lo, hi, err := f.Bounds(inst)
	if err != nil {
		return nil, err
	}
	if err := checkParams("vector family", params, lo, hi); err != nil {
		return nil, err
	}
	thresholds := make([]float64, len(params))
	copy(thresholds, params)
	return Threshold{Thresholds: thresholds}, nil
}

// IntervalFamily is the symmetric interval-set family: 2K free endpoints in
// [0, 1], sorted and paired into K bin-0 intervals (overlapping or touching
// pairs merge, so the family continuously covers unions of fewer than K
// intervals too). Evaluated by the grid-convolution oracle at the Grid
// resolution.
type IntervalFamily struct {
	// K is the number of intervals (2K parameters).
	K int
	// Grid is the oracle resolution; 0 selects DefaultOracleGrid.
	Grid int
}

// Name implements RuleFamily.
func (f IntervalFamily) Name() string { return "interval(k=" + strconv.Itoa(f.K) + ")" }

// Bounds implements RuleFamily.
func (f IntervalFamily) Bounds(Instance) ([]float64, []float64, error) {
	if f.K <= 0 {
		return nil, nil, fmt.Errorf("engine: interval family needs K ≥ 1, got %d", f.K)
	}
	lo := make([]float64, 2*f.K)
	hi := make([]float64, 2*f.K)
	for i := range hi {
		hi[i] = 1
	}
	return lo, hi, nil
}

// Rule implements RuleFamily.
func (f IntervalFamily) Rule(inst Instance, params []float64) (Rule, error) {
	lo, hi, err := f.Bounds(inst)
	if err != nil {
		return nil, err
	}
	if err := checkParams("interval family", params, lo, hi); err != nil {
		return nil, err
	}
	ends := make([]float64, len(params))
	copy(ends, params)
	sort.Float64s(ends)
	ivs := make([]response.Interval, f.K)
	for i := range ivs {
		ivs[i] = response.Interval{Lo: ends[2*i], Hi: ends[2*i+1]}
	}
	set, err := response.NewIntervalSet(ivs)
	if err != nil {
		return nil, err
	}
	return IntervalRule{Set: set, Grid: f.Grid}, nil
}

// FamilyForKind maps the CLI/HTTP spelling of an optimization kind onto its
// rule family: "threshold" (symmetric β), "oblivious" (symmetric α), or
// "vector" (the full per-player threshold vector). The interval family is
// constructed directly (it needs an interval count).
func FamilyForKind(kind string) (RuleFamily, error) {
	switch kind {
	case "threshold":
		return ThresholdBetaFamily{}, nil
	case "oblivious":
		return ObliviousAlphaFamily{}, nil
	case "vector":
		return ThresholdVectorFamily{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown optimization kind %q (want threshold, oblivious or vector)", kind)
	}
}
