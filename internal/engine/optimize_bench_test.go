package engine

import (
	"os"
	"testing"

	"repro/internal/problem"
)

func benchInstance(b *testing.B, n int, delta float64, pi []float64) Instance {
	b.Helper()
	var inst problem.Instance
	var err error
	if pi != nil {
		inst, err = problem.NewPi(n, delta, pi)
	} else {
		inst, err = problem.New(n, delta)
	}
	if err != nil {
		b.Fatalf("instance: %v", err)
	}
	return inst
}

// BenchmarkOptimizeScalarCold prices a full scalar threshold search
// (grid + golden-section, exact backend) against an empty memoization
// cache every iteration.
func BenchmarkOptimizeScalarCold(b *testing.B) {
	inst := benchInstance(b, 3, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Config{})
		if _, err := e.Optimize(inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeScalarWarm repeats the same search on one shared
// engine: after the first run every probe is a cache hit, so this prices
// the search driver + cache lookup overhead alone.
func BenchmarkOptimizeScalarWarm(b *testing.B) {
	inst := benchInstance(b, 3, 1, nil)
	e := New(Config{})
	if _, err := e.Optimize(inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Optimize(inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeVectorCold prices the full a-vector search (coordinate
// ascent + Nelder–Mead polish, exact backend) on the heterogeneous
// π=(1/2,1,1) instance with a cold cache every iteration.
func BenchmarkOptimizeVectorCold(b *testing.B) {
	inst := benchInstance(b, 3, 1, []float64{0.5, 1, 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Config{})
		if _, err := e.Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{Backend: Exact}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeVectorN15 prices one coordinate-ascent pass over the
// homogeneous n=15 a-vector box with a cold cache every iteration — the
// table-reuse pair's workload. By default probes route through the
// per-search reusable evaluator (the ascent-head snapshot);
// NOCOMM_ASCENT_BENCH=legacy forces NoTableReuse, rebuilding the exact
// tables from scratch on every probe (the ascent-baseline snapshot). The
// polish is skipped and the pass count pinned so both sides run the
// identical probe sequence. Record both sides with
// `make bench-ascent-json`; bench-check requires the head ≥5× faster.
func BenchmarkOptimizeVectorN15(b *testing.B) {
	inst := benchInstance(b, 15, 5, nil)
	legacy := os.Getenv("NOCOMM_ASCENT_BENCH") == "legacy"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Config{})
		res, err := e.Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{
			Backend:      Exact,
			Passes:       1,
			SkipPolish:   true,
			NoTableReuse: legacy,
		})
		if err != nil {
			b.Fatal(err)
		}
		if legacy == (res.DeltaUpdates > 0) {
			b.Fatalf("legacy=%v but DeltaUpdates=%d: benchmark not exercising the intended path", legacy, res.DeltaUpdates)
		}
	}
}

// BenchmarkOptimizeVectorWarm repeats the a-vector search on one shared
// engine, pricing the searcher + memoization path with a hot cache.
func BenchmarkOptimizeVectorWarm(b *testing.B) {
	inst := benchInstance(b, 3, 1, []float64{0.5, 1, 1})
	e := New(Config{})
	if _, err := e.Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{Backend: Exact}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{Backend: Exact}); err != nil {
			b.Fatal(err)
		}
	}
}
