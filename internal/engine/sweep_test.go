package engine

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func betaGrid(inst Instance, betas []float64) []Point {
	points := make([]Point, len(betas))
	for i, b := range betas {
		points[i] = Point{Instance: inst, Rule: SymmetricThreshold{Beta: b}}
	}
	return points
}

func TestSweepMatchesPointwise(t *testing.T) {
	e := New(Config{})
	inst := Instance{N: 3, Delta: 1}
	betas := []float64{0.1, 0.3, 0.5, 0.622, 0.8, 1}
	results, err := e.Sweep(betaGrid(inst, betas), SweepOptions{Backend: Exact, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(betas) {
		t.Fatalf("got %d results for %d points", len(results), len(betas))
	}
	for i, b := range betas {
		want, err := New(Config{}).Evaluate(inst, SymmetricThreshold{Beta: b}, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].P != want.P {
			t.Errorf("β=%v: sweep %v != pointwise %v", b, results[i].P, want.P)
		}
	}
	// The β* ≈ 0.622 column should dominate the sampled grid.
	best := 0
	for i := range results {
		if results[i].P > results[best].P {
			best = i
		}
	}
	if betas[best] != 0.622 {
		t.Errorf("best sampled threshold %v, want 0.622", betas[best])
	}
}

func TestSweepVaryingInstance(t *testing.T) {
	// The Figure 3 shape: one rule class, capacity varying per point.
	e := New(Config{})
	var points []Point
	for _, d := range []float64{0.5, 0.75, 1, 1.25} {
		points = append(points, Point{Instance: Instance{N: 3, Delta: d}, Rule: SymmetricOblivious{A: 0.5}})
	}
	results, err := e.Sweep(points, SweepOptions{Backend: Exact})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].P < results[i-1].P {
			t.Errorf("winning probability not monotone in δ: %v then %v", results[i-1].P, results[i].P)
		}
	}
}

func TestSweepErrorsAndEdgeCases(t *testing.T) {
	e := New(Config{})
	inst := Instance{N: 3, Delta: 1}
	if res, err := e.Sweep(nil, SweepOptions{}); err != nil || res != nil {
		t.Errorf("empty sweep: got %v, %v", res, err)
	}
	// The lowest-indexed failing point's error wins deterministically.
	points := []Point{
		{Instance: inst, Rule: SymmetricThreshold{Beta: 0.5}},
		{Instance: Instance{N: 1, Delta: 1}, Rule: SymmetricThreshold{Beta: 0.5}},
		{Instance: Instance{N: 0, Delta: 0}, Rule: nil},
	}
	_, err := e.Sweep(points, SweepOptions{Backend: Exact, Workers: 4})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); !strings.Contains(got, "sweep point 1") {
		t.Errorf("error %q should name point 1 (lowest failing index)", got)
	}
	if _, err := e.Sweep(points[:1], SweepOptions{Workers: -2}); err == nil {
		t.Error("negative workers: expected error")
	}
}

// TestConcurrentSweepsShareCache runs identical and distinct sweeps
// concurrently (the satellite's -race scenario) and checks results stay
// bit-identical to uncached evaluation with at least one recorded hit.
func TestConcurrentSweepsShareCache(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Obs: obs.New(reg, nil)})
	inst := Instance{N: 3, Delta: 1}
	cfg := sim.Config{Trials: 4000, Seed: 13, Workers: 2}
	shared := []float64{0.4, 0.5, 0.6}
	distinct := [][]float64{{0.45, 0.55}, {0.65, 0.7}, {0.2, 0.3}}

	want := map[float64]Result{}
	for _, b := range append(append([]float64{}, shared...), 0.45, 0.55, 0.65, 0.7, 0.2, 0.3) {
		r, err := New(Config{}).EvaluateWith(inst, SymmetricThreshold{Beta: b}, MonteCarlo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[b] = r
	}

	check := func(betas []float64, got []Result) {
		for i, b := range betas {
			if got[i].P != want[b].P || got[i].Sim.Wins != want[b].Sim.Wins {
				t.Errorf("β=%v: concurrent sweep %v != uncached %v", b, got[i].P, want[b].P)
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(2)
		go func() { // identical sweep, repeated concurrently
			defer wg.Done()
			res, err := e.Sweep(betaGrid(inst, shared), SweepOptions{Backend: MonteCarlo, Sim: cfg, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			check(shared, res)
		}()
		go func(g int) { // distinct sweep per goroutine
			defer wg.Done()
			res, err := e.Sweep(betaGrid(inst, distinct[g]), SweepOptions{Backend: MonteCarlo, Sim: cfg, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			check(distinct[g], res)
		}(g)
	}
	wg.Wait()

	wantKeys := int64(len(shared) + 6)
	if misses := reg.Counter("engine.cache.misses").Value(); misses != wantKeys {
		t.Errorf("misses = %d, want %d distinct computations", misses, wantKeys)
	}
	if hits := reg.Counter("engine.cache.hits").Value(); hits < 1 {
		t.Error("no cache hit recorded across repeated identical sweeps")
	}
}

// TestRepeatedSweepServedFromCache is the deterministic counterpart of the
// cold/warm benchmark: the second identical sweep must be 100% hits.
func TestRepeatedSweepServedFromCache(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Obs: obs.New(reg, nil)})
	inst := Instance{N: 3, Delta: 1}
	points := betaGrid(inst, []float64{0.3, 0.5, 0.7})
	opts := SweepOptions{Backend: MonteCarlo, Sim: sim.Config{Trials: 2000, Seed: 2, Workers: 2}}

	cold, err := e.Sweep(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Sweep(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if warm[i].P != cold[i].P {
			t.Errorf("point %d: warm %v != cold %v", i, warm[i].P, cold[i].P)
		}
		if !warm[i].Cached {
			t.Errorf("point %d not served from cache on repeat", i)
		}
	}
	if hits := reg.Counter("engine.cache.hits").Value(); hits != int64(len(points)) {
		t.Errorf("hits = %d, want %d", hits, len(points))
	}
}

// BenchmarkSweepCold and BenchmarkSweepWarm are the paired benchmark from
// the acceptance criteria: the warm path re-runs an identical sweep
// against a shared engine (all cache hits) and must be ≥10× faster than
// the cold path, which pays the full Monte-Carlo cost every iteration.
func benchmarkPoints() ([]Point, SweepOptions) {
	inst := Instance{N: 3, Delta: 1}
	betas := []float64{0.3, 0.4, 0.5, 0.6, 0.622, 0.7, 0.8, 0.9}
	return betaGrid(inst, betas), SweepOptions{Backend: MonteCarlo, Sim: sim.Config{Trials: 100000, Seed: 3, Workers: 2}}
}

func BenchmarkSweepCold(b *testing.B) {
	points, opts := benchmarkPoints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{}).Sweep(points, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepWarm(b *testing.B) {
	points, opts := benchmarkPoints()
	e := New(Config{})
	if _, err := e.Sweep(points, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Sweep(points, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSweepAutoMixedRules sweeps a heterogeneous rule set — the T4-style
// cross-class comparison — through Auto.
func TestSweepAutoMixedRules(t *testing.T) {
	e := New(Config{Sim: sim.Config{Trials: 2000, Seed: 1}})
	inst := Instance{N: 3, Delta: 1}
	points := []Point{
		{Instance: inst, Rule: SymmetricOblivious{A: 0.5}},
		{Instance: inst, Rule: DeterministicSplit{K: 2}},
		{Instance: inst, Rule: SymmetricThreshold{Beta: 0.622}},
		{Instance: inst, Rule: OneBitRule{Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.7, BetaHigh: 0.5}},
	}
	results, err := e.Sweep(points, SweepOptions{Backend: Auto})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Backend != Exact {
			t.Errorf("point %d resolved to %v, want exact", i, r.Backend)
		}
		if math.IsNaN(r.P) || r.P < 0 || r.P > 1 {
			t.Errorf("point %d: P = %v out of range", i, r.P)
		}
	}
	// More informed classes should do at least as well as less informed
	// ones on this instance (the paper's trade-off).
	if results[2].P < results[0].P {
		t.Errorf("threshold %v below oblivious %v", results[2].P, results[0].P)
	}
}
