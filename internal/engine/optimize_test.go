package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/problem"
)

// The Section 5.2 pinned optimum at n=3, δ=1.
const (
	pinnedBeta = 0.6220355269907728
	pinnedP    = 0.5446311396758939
)

func optInstance(t *testing.T, n int, delta float64, pi []float64) Instance {
	t.Helper()
	var inst problem.Instance
	var err error
	if pi != nil {
		inst, err = problem.NewPi(n, delta, pi)
	} else {
		inst, err = problem.New(n, delta)
	}
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	return inst
}

func TestOptimizeScalarThresholdRecoversPinnedOptimum(t *testing.T) {
	e := New(Config{})
	inst := optInstance(t, 3, 1, nil)
	res, err := e.Optimize(inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if math.Abs(res.Params[0]-pinnedBeta) > 1e-8 {
		t.Errorf("β* = %.16f, want %.16f", res.Params[0], pinnedBeta)
	}
	if math.Abs(res.Value-pinnedP) > 1e-12 {
		t.Errorf("P* = %.16f, want %.16f", res.Value, pinnedP)
	}
	if res.Backend != Exact {
		t.Errorf("backend = %v, want Exact", res.Backend)
	}
	if res.Evals <= 0 || res.Iterations <= 0 {
		t.Errorf("missing search stats: %+v", res)
	}
	if res.Family != "threshold" {
		t.Errorf("family = %q", res.Family)
	}
}

// TestOptimizeVectorRecoversSymmetricOptimum is the tentpole property test:
// searching the full n-dimensional a-vector on the homogeneous n=3, δ=1
// instance must land back on the symmetric ray at the pinned β*/P*.
func TestOptimizeVectorRecoversSymmetricOptimum(t *testing.T) {
	e := New(Config{})
	inst := optInstance(t, 3, 1, nil)
	res, err := e.Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(res.Params) != 3 {
		t.Fatalf("got %d params, want 3", len(res.Params))
	}
	for i, a := range res.Params {
		if math.Abs(a-pinnedBeta) > 1e-4 {
			t.Errorf("a*[%d] = %.12f, want %.12f ± 1e-4", i, a, pinnedBeta)
		}
	}
	if math.Abs(res.Value-pinnedP) > 1e-9 {
		t.Errorf("P* = %.16f, want %.16f ± 1e-9", res.Value, pinnedP)
	}
}

// TestOptimizeScalarMatchesSearcher pins the engine's scalar path to the
// plain GridThenGoldenMax run the CLI cross-check used before optimization
// moved into the engine: same argmax, value, eval and iteration counts —
// the byte-identity contract of the rewired `nocomm optimize`.
func TestOptimizeScalarMatchesSearcher(t *testing.T) {
	e := New(Config{})
	inst := optInstance(t, 3, 1, nil)
	res, err := e.Optimize(inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	direct, err := optimize.GridThenGoldenMax(func(beta float64) float64 {
		r, err := e.Evaluate(inst, SymmetricThreshold{Beta: beta}, Exact)
		if err != nil {
			return math.Inf(-1)
		}
		return r.P
	}, 0, 1, DefaultOptimizeGrid, DefaultOptimizeTol)
	if err != nil {
		t.Fatalf("GridThenGoldenMax: %v", err)
	}
	if res.Params[0] != direct.X || res.Value != direct.Value {
		t.Errorf("engine (%v, %v) != searcher (%v, %v)", res.Params[0], res.Value, direct.X, direct.Value)
	}
	if res.Evals != direct.Evals || res.Iterations != direct.Iterations {
		t.Errorf("engine stats (%d evals, %d iters) != searcher (%d, %d)",
			res.Evals, res.Iterations, direct.Evals, direct.Iterations)
	}
}

// TestOptimizeWarmCache verifies the acceptance criterion that a repeated
// optimize run is served from the memoization cache: the second identical
// search reports every probe cached and the engine.cache.hits counter grows.
func TestOptimizeWarmCache(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	e := New(Config{Obs: o})
	inst := optInstance(t, 3, 1, nil)
	cold, err := e.Optimize(inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatalf("cold Optimize: %v", err)
	}
	warm, err := e.Optimize(inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatalf("warm Optimize: %v", err)
	}
	if warm.Params[0] != cold.Params[0] || warm.Value != cold.Value {
		t.Errorf("warm run differs: (%v, %v) != (%v, %v)", warm.Params[0], warm.Value, cold.Params[0], cold.Value)
	}
	if warm.CacheHits != warm.Evals {
		t.Errorf("warm run: %d of %d probes cached, want all", warm.CacheHits, warm.Evals)
	}
	if hits := o.Counter("engine.cache.hits").Value(); hits <= 0 {
		t.Errorf("engine.cache.hits = %d, want > 0", hits)
	}
	if hits := o.Counter("optimize.cache_hits").Value(); int(hits) < warm.Evals {
		t.Errorf("optimize.cache_hits = %d, want ≥ %d", hits, warm.Evals)
	}
	if evals := o.Counter("optimize.evals").Value(); int(evals) != cold.Evals+warm.Evals {
		t.Errorf("optimize.evals = %d, want %d", evals, cold.Evals+warm.Evals)
	}
}

// TestOptimizeParallelSharedCache is the singleflight hammer: parallel
// engine.Optimize calls on the same instance share the memo cache without
// races and every goroutine observes bit-identical results.
func TestOptimizeParallelSharedCache(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	e := New(Config{Obs: o})
	inst := optInstance(t, 3, 1, nil)
	const goroutines = 8
	results := make([]OptimizeResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fam := RuleFamily(ThresholdBetaFamily{})
			if g%2 == 1 {
				fam = ThresholdVectorFamily{}
			}
			results[g], errs[g] = e.Optimize(inst, fam, OptimizeOptions{Backend: Exact})
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		ref := results[g%2]
		if results[g].Value != ref.Value {
			t.Errorf("goroutine %d: P = %v, want %v (bit-identical)", g, results[g].Value, ref.Value)
		}
		for i, p := range results[g].Params {
			if p != ref.Params[i] {
				t.Errorf("goroutine %d: params[%d] = %v, want %v", g, i, p, ref.Params[i])
			}
		}
	}
	hits := o.Counter("engine.cache.hits").Value()
	misses := o.Counter("engine.cache.misses").Value()
	if hits <= 0 {
		t.Errorf("engine.cache.hits = %d, want > 0 (parallel searches share the cache)", hits)
	}
	if misses <= 0 {
		t.Errorf("engine.cache.misses = %d, want > 0", misses)
	}
}

// TestOptimizeDeadline covers both deadline outcomes: a context cancelled
// mid-search degrades to the best point already evaluated, and a context
// dead on arrival returns its error.
func TestOptimizeDeadline(t *testing.T) {
	e := New(Config{})
	inst := optInstance(t, 3, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	fam := cancelAfterFamily{inner: ThresholdBetaFamily{}, cancel: cancel, after: 10}
	res, err := e.OptimizeCtx(ctx, inst, &fam, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatalf("OptimizeCtx: %v", err)
	}
	if !res.Degraded {
		t.Errorf("cancelled mid-search: Degraded = false, want true")
	}
	if math.IsInf(res.Value, -1) || len(res.Params) != 1 {
		t.Errorf("degraded result carries no best point: %+v", res)
	}

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := e.OptimizeCtx(dead, inst, ThresholdBetaFamily{}, OptimizeOptions{Backend: Exact}); err == nil {
		t.Errorf("dead-on-arrival context: err = nil, want context error")
	}
}

// cancelAfterFamily cancels its context after a fixed number of rule
// materializations, simulating a deadline striking mid-search.
type cancelAfterFamily struct {
	inner  ThresholdBetaFamily
	cancel context.CancelFunc
	after  int
	calls  int
}

func (f *cancelAfterFamily) Name() string { return f.inner.Name() }
func (f *cancelAfterFamily) Bounds(inst Instance) ([]float64, []float64, error) {
	return f.inner.Bounds(inst)
}
func (f *cancelAfterFamily) Rule(inst Instance, params []float64) (Rule, error) {
	f.calls++
	if f.calls == f.after {
		f.cancel()
	}
	return f.inner.Rule(inst, params)
}

func TestOptimizeObliviousFamily(t *testing.T) {
	e := New(Config{})
	inst := optInstance(t, 3, 1, nil)
	res, err := e.Optimize(inst, ObliviousAlphaFamily{}, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// Theorem 4.3: α* = 1/2, P* = 5/12 at n=3, δ=1.
	if math.Abs(res.Params[0]-0.5) > 1e-6 {
		t.Errorf("α* = %.12f, want 0.5", res.Params[0])
	}
	if math.Abs(res.Value-5.0/12.0) > 1e-10 {
		t.Errorf("P* = %.12f, want %.12f", res.Value, 5.0/12.0)
	}
}

func TestIntervalFamily(t *testing.T) {
	inst := optInstance(t, 3, 1, nil)
	fam := IntervalFamily{K: 2, Grid: 512}
	lo, hi, err := fam.Bounds(inst)
	if err != nil {
		t.Fatalf("Bounds: %v", err)
	}
	if len(lo) != 4 || len(hi) != 4 {
		t.Fatalf("dim = %d/%d, want 4", len(lo), len(hi))
	}
	// Unsorted endpoints sort into intervals; touching pairs merge.
	r, err := fam.Rule(inst, []float64{0.7, 0.1, 0.3, 0.3})
	if err != nil {
		t.Fatalf("Rule: %v", err)
	}
	ir, ok := r.(IntervalRule)
	if !ok {
		t.Fatalf("rule type %T", r)
	}
	ivs := ir.Set.Intervals()
	if len(ivs) != 1 || ivs[0].Lo != 0.1 || ivs[0].Hi != 0.7 {
		t.Errorf("intervals = %v, want one merged [0.1, 0.7]", ivs)
	}
	if _, err := fam.Rule(inst, []float64{0.1, 0.2}); err == nil {
		t.Errorf("wrong dimension accepted")
	}
	empty := IntervalFamily{}
	if _, _, err := empty.Bounds(inst); err == nil {
		t.Errorf("K = 0 accepted")
	}
}

func TestThresholdVectorFamilyBounds(t *testing.T) {
	inst := optInstance(t, 3, 1, []float64{0.5, 1, 2})
	lo, hi, err := ThresholdVectorFamily{}.Bounds(inst)
	if err != nil {
		t.Fatalf("Bounds: %v", err)
	}
	want := []float64{0.5, 1, 1} // min(1, π_i)
	for i := range hi {
		if lo[i] != 0 || hi[i] != want[i] {
			t.Errorf("bounds[%d] = [%v, %v], want [0, %v]", i, lo[i], hi[i], want[i])
		}
	}
	vf := ThresholdVectorFamily{}
	if _, err := vf.Rule(inst, []float64{0.6, 0.5, 0.5}); err == nil {
		t.Errorf("out-of-box params accepted (a_0 > π_0)")
	}
}

func TestFamilyForKind(t *testing.T) {
	kinds := map[string]string{"threshold": "threshold", "oblivious": "oblivious", "vector": "vector"}
	for kind, want := range kinds {
		fam, err := FamilyForKind(kind)
		if err != nil {
			t.Fatalf("FamilyForKind(%q): %v", kind, err)
		}
		if fam.Name() != want {
			t.Errorf("FamilyForKind(%q).Name() = %q", kind, fam.Name())
		}
	}
	if _, err := FamilyForKind("bogus"); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if _, err := New(Config{}).Optimize(optInstance(t, 3, 1, nil), nil, OptimizeOptions{}); err == nil {
		t.Errorf("nil family accepted")
	}
}
