package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Point is one cell of a sweep: a rule evaluated on an instance. Sweeps
// over a parameter (the Figure 1 β grid, the Figure 2 α grid) hold the
// instance fixed and vary the rule; sweeps over δ (Figure 3) vary the
// instance too.
type Point struct {
	// Instance is the problem the rule plays on.
	Instance Instance
	// Rule is the rule to evaluate.
	Rule Rule
}

// SweepOptions configures Engine.Sweep.
type SweepOptions struct {
	// Backend selects the backend for every point (Auto resolves per
	// rule).
	Backend Backend
	// Workers is the sharding width; 0 selects the repo-wide default
	// (GOMAXPROCS, clamped to the point count) via sim.WorkerCount.
	Workers int
	// Sim overrides the engine's Monte-Carlo configuration for points
	// that resolve to the MonteCarlo backend; zero Trials keeps the
	// engine default.
	Sim sim.Config
}

// Sweep evaluates every point, sharding the grid across workers with an
// atomic cursor (no per-worker slab imbalance: each worker pulls the next
// unclaimed index). Results align with points; every point's result is
// memoized individually, so a repeated sweep — or a sweep overlapping an
// earlier one — is served from cache. On failure the error of the
// lowest-indexed failing point is returned, independent of scheduling.
func (e *Engine) Sweep(points []Point, opts SweepOptions) ([]Result, error) {
	return e.SweepCtx(context.Background(), points, opts)
}

// SweepCtx is Sweep with a caller context: every point evaluates through
// EvaluateWithCtx, so spans parent onto any obs span riding ctx and a
// cancelled or expired ctx stops workers from claiming further points
// (points already in flight finish in the background and land in the
// cache). On cancellation the context's error is returned.
func (e *Engine) SweepCtx(ctx context.Context, points []Point, opts SweepOptions) ([]Result, error) {
	if len(points) == 0 {
		return nil, nil
	}
	results := make([]Result, len(points))
	errs := make([]error, len(points))
	if err := e.sweepInto(ctx, points, results, errs, opts); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: sweep point %d: %w", i, err)
		}
	}
	return results, nil
}

// SweepChunksCtx evaluates the grid chunk by chunk, calling emit after
// each chunk completes with the chunk's starting point index and its
// results. It is the streaming seam under /v1/sweep: the first chunk is
// emitted as soon as it finishes, long before the last shard of a large
// grid runs. chunk <= 0 sweeps the whole grid as one chunk. The results
// slice passed to emit is reused across chunks — emit must encode or
// copy, never retain it. Errors keep sweep semantics per chunk: the
// lowest-indexed failing point aborts the stream, its index global to
// the grid. A non-nil error from emit aborts the sweep.
func (e *Engine) SweepChunksCtx(ctx context.Context, points []Point, opts SweepOptions, chunk int, emit func(start int, results []Result) error) error {
	if len(points) == 0 {
		return nil
	}
	if chunk <= 0 || chunk > len(points) {
		chunk = len(points)
	}
	results := make([]Result, chunk)
	errs := make([]error, chunk)
	for start := 0; start < len(points); start += chunk {
		end := start + chunk
		if end > len(points) {
			end = len(points)
		}
		n := end - start
		if err := e.sweepInto(ctx, points[start:end], results[:n], errs[:n], opts); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for i, err := range errs[:n] {
			if err != nil {
				return fmt.Errorf("engine: sweep point %d: %w", start+i, err)
			}
		}
		if err := emit(start, results[:n]); err != nil {
			return err
		}
	}
	return nil
}

// sweepInto shards points across workers with an atomic cursor, writing
// into caller-owned results/errs slices (len(points) each) so chunked
// sweeps can reuse their buffers.
func (e *Engine) sweepInto(ctx context.Context, points []Point, results []Result, errs []error, opts SweepOptions) error {
	workers, err := sim.WorkerCount(opts.Workers, len(points))
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	// Qualifying sweeps (one shared heterogeneous instance, all-oblivious
	// rules, exact backend) give each worker a reusable evaluator that
	// builds the instance's subset-CDF table once and delta-updates per
	// point — bit-identical to the one-shot path, so results memoize under
	// the same keys.
	makeOverride := e.sweepOverrideFactory(points, opts.Backend)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := ctx
			if makeOverride != nil {
				if ov := makeOverride(); ov != nil {
					wctx = withExactOverride(ctx, ov)
				}
			}
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(points) {
					return
				}
				results[i], errs[i] = e.EvaluateWithCtx(wctx, points[i].Instance, points[i].Rule, opts.Backend, opts.Sim)
			}
		}()
	}
	wg.Wait()
	return nil
}
