package engine

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// slowExactRule is an ExactEvaluator whose oracle blocks until released,
// standing in for a large-n exact evaluation in deadline tests.
type slowExactRule struct {
	release chan struct{}
	value   float64
}

func (r *slowExactRule) Name() string        { return "slow-exact" }
func (r *slowExactRule) Fingerprint() string { return "slow-exact" }
func (r *slowExactRule) System(Instance) (*model.System, error) {
	return nil, ErrNoSystem
}
func (r *slowExactRule) ExactWinProbability(Instance) (float64, error) {
	<-r.release
	return r.value, nil
}

// TestEvaluateCtxDeadline exercises the deadline-bounded wait: an expired
// context abandons the in-flight exact evaluation (ctx.Err() comes back,
// the abandoned counter bumps) while the computation finishes in the
// background and warms the cache for the next caller.
func TestEvaluateCtxDeadline(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	eng := New(Config{Obs: o})
	inst := mustInstance(t, 3, 1)
	rule := &slowExactRule{release: make(chan struct{}), value: 0.25}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := eng.EvaluateCtx(ctx, inst, rule, Exact)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EvaluateCtx error = %v, want context.DeadlineExceeded", err)
	}
	if got := o.Counter("engine.evals.abandoned").Value(); got != 1 {
		t.Errorf("engine.evals.abandoned = %d, want 1", got)
	}

	// Release the oracle; the background computation must land in the
	// cache so a later caller gets a (cached) result without recomputing.
	close(rule.release)
	deadline := time.Now().Add(2 * time.Second)
	for eng.CacheLen() == 0 || o.Counter("engine.evals.exact").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background computation never completed")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := eng.Evaluate(inst, rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0.25 {
		t.Errorf("P = %v, want 0.25", res.P)
	}
	if !res.Cached {
		t.Error("second call should be served from the cache warmed by the abandoned computation")
	}
	if got := o.Counter("engine.evals.exact").Value(); got != 1 {
		t.Errorf("engine.evals.exact = %d, want 1 (no recomputation)", got)
	}
}

// TestEvaluateCtxSpanTree checks span parenting: a span riding the
// context yields engine.evaluate → backend.exact children on a miss and a
// cached=1 annotation on a hit.
func TestEvaluateCtxSpanTree(t *testing.T) {
	var buf bytes.Buffer
	o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
	eng := New(Config{Obs: o})
	inst := mustInstance(t, 3, 1)
	rule := SymmetricThreshold{Beta: 0.5}

	root, ctx := o.StartSpanCtx(context.Background(), "handler")
	if _, err := eng.EvaluateCtx(ctx, inst, rule, Exact); err != nil {
		t.Fatal(err)
	}
	res, err := eng.EvaluateCtx(ctx, inst, rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second evaluation should be cached")
	}
	root.End()

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	starts := map[string][]obs.Event{}
	var cachedEnds int
	for _, ev := range events {
		if ev.Type == obs.EventSpanStart {
			starts[ev.Name] = append(starts[ev.Name], ev)
		}
		if ev.Type == obs.EventSpanEnd && ev.Name == "engine.evaluate" && ev.Attrs["cached"] == 1 {
			cachedEnds++
		}
	}
	if len(starts["engine.evaluate"]) != 2 {
		t.Fatalf("engine.evaluate spans = %d, want 2", len(starts["engine.evaluate"]))
	}
	if len(starts["backend.exact"]) != 1 {
		t.Fatalf("backend.exact spans = %d, want 1 (hit must not recompute)", len(starts["backend.exact"]))
	}
	rootID := starts["handler"][0].Span
	for _, ev := range starts["engine.evaluate"] {
		if ev.Parent != rootID {
			t.Errorf("engine.evaluate parent = %d, want handler span %d", ev.Parent, rootID)
		}
	}
	if got, want := starts["backend.exact"][0].Parent, starts["engine.evaluate"][0].Span; got != want {
		t.Errorf("backend.exact parent = %d, want first engine.evaluate span %d", got, want)
	}
	if cachedEnds != 1 {
		t.Errorf("cached=1 span_end annotations = %d, want 1", cachedEnds)
	}
}

// TestEvaluateCoalescedCounter checks that concurrent identical
// evaluations joining an in-flight computation are counted as coalesced
// (as well as hits), while plain warm hits are not.
func TestEvaluateCoalescedCounter(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	eng := New(Config{Obs: o})
	inst := mustInstance(t, 3, 1)
	rule := &slowExactRule{release: make(chan struct{}), value: 0.5}

	const joiners = 4
	var wg sync.WaitGroup
	for i := 0; i < joiners+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Evaluate(inst, rule, Exact); err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until every goroutine is either computing or parked in
	// once.Do, then release the oracle.
	time.Sleep(20 * time.Millisecond)
	close(rule.release)
	wg.Wait()

	coalesced := o.Counter("engine.cache.coalesced").Value()
	hits := o.Counter("engine.cache.hits").Value()
	if hits != joiners {
		t.Errorf("engine.cache.hits = %d, want %d", hits, joiners)
	}
	if coalesced == 0 || coalesced > joiners {
		t.Errorf("engine.cache.coalesced = %d, want in [1, %d]", coalesced, joiners)
	}
	// A warm hit after completion is a hit but not a coalesce.
	if _, err := eng.Evaluate(inst, rule, Exact); err != nil {
		t.Fatal(err)
	}
	if got := o.Counter("engine.cache.coalesced").Value(); got != coalesced {
		t.Errorf("warm hit bumped coalesced: %d -> %d", coalesced, got)
	}
}

// TestSweepCtxCancel checks that a cancelled context aborts a sweep with
// the context's error.
func TestSweepCtxCancel(t *testing.T) {
	eng := New(Config{})
	inst := mustInstance(t, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := []Point{{Instance: inst, Rule: SymmetricThreshold{Beta: 0.3}}}
	if _, err := eng.SweepCtx(ctx, pts, SweepOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepCtx error = %v, want context.Canceled", err)
	}
	cfg := sim.Config{}
	_ = cfg // keep sim imported for future config-sensitive cases
}
