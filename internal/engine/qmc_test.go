package engine

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/sim"
)

func TestParseBackendQMC(t *testing.T) {
	for _, s := range []string{"mc-qmc", "qmc", "MCQMC", "Mc-Qmc"} {
		b, err := ParseBackend(s)
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", s, err)
		}
		if b != MonteCarloQMC {
			t.Errorf("ParseBackend(%q) = %v, want MonteCarloQMC", s, b)
		}
	}
	if MonteCarloQMC.String() != "mc-qmc" {
		t.Errorf("MonteCarloQMC.String() = %q, want mc-qmc", MonteCarloQMC.String())
	}
}

// TestQMCBackendDispatch: an explicit mc-qmc request runs the QMC
// estimator and surfaces the replicate machinery in the result.
func TestQMCBackendDispatch(t *testing.T) {
	e := New(Config{})
	inst := Instance{N: 3, Delta: 1}
	res, err := e.EvaluateWith(inst, SymmetricThreshold{Beta: 0.622}, MonteCarloQMC,
		sim.Config{Trials: 1 << 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != MonteCarloQMC {
		t.Errorf("Backend = %v, want MonteCarloQMC", res.Backend)
	}
	if res.Sim == nil || res.Sim.Replicates != sim.DefaultReplicates {
		t.Errorf("Sim result %+v lacks replicate count %d", res.Sim, sim.DefaultReplicates)
	}
	if !(res.StdErr > 0) {
		t.Errorf("StdErr = %v, want > 0", res.StdErr)
	}
}

// TestQMCRejectsSimulatorRules: protocol rules carry bespoke trial logic
// that cannot run on the lane kernel; mc-qmc must refuse, not silently
// fall back.
func TestQMCRejectsSimulatorRules(t *testing.T) {
	e := New(Config{})
	inst := Instance{N: 2, Delta: 1}
	r := OneBitRule{}
	if _, err := e.EvaluateWith(inst, r, MonteCarloQMC, sim.Config{Trials: 1000}); err == nil {
		t.Error("mc-qmc accepted a Simulator-only protocol rule")
	}
}

// TestQMCCacheKeyWorkerIndependent: QMC results do not depend on Workers,
// so evaluations differing only in worker count must share a cache slot —
// while a different Replicates count must not.
func TestQMCCacheKeyWorkerIndependent(t *testing.T) {
	e := New(Config{})
	inst := Instance{N: 3, Delta: 1}
	r := SymmetricThreshold{Beta: 0.5}
	base := sim.Config{Trials: 1 << 13, Seed: 11, Workers: 1}
	first, err := e.EvaluateWith(inst, r, MonteCarloQMC, base)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first evaluation reported cached")
	}
	base.Workers = 4
	again, err := e.EvaluateWith(inst, r, MonteCarloQMC, base)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("worker count changed the mc-qmc cache key")
	}
	if again.P != first.P || again.StdErr != first.StdErr {
		t.Errorf("cached result %+v differs from first %+v", again, first)
	}
	base.Replicates = 8
	other, err := e.EvaluateWith(inst, r, MonteCarloQMC, base)
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("replicate count is missing from the mc-qmc cache key")
	}
}

// TestQMCMatchesExactOnDyadicInstances is the QMC correctness property
// test: on random dyadic instances — thresholds, coin biases, capacities
// and per-player π all multiples of 1/2^k — the mc-qmc estimate must land
// within its own replicate error bound of the analytic oracle. Dyadic
// parameters align the win-region boundaries with the Sobol point set's
// dyadic stratification, so these are exactly the instances where a
// broken scrambler or index stream would show up as bias rather than
// noise.
func TestQMCMatchesExactOnDyadicInstances(t *testing.T) {
	e := New(Config{})
	rng := rand.New(rand.NewPCG(2026, 8))
	dyadic := func(k int) float64 { // uniform multiple of 2^-k in (0, 1]
		return float64(rng.IntN(1<<k)+1) / float64(int(1)<<k)
	}
	const trials = 1 << 15
	for i := 0; i < 12; i++ {
		n := 2 + rng.IntN(4)
		inst := Instance{N: n, Delta: dyadic(3) * float64(n)}
		hetero := i%2 == 1
		if hetero {
			pi := make([]float64, n)
			for j := range pi {
				pi[j] = dyadic(4)
			}
			inst.Pi = pi
		}
		var r ExactEvaluator
		if i%4 < 2 {
			r = SymmetricThreshold{Beta: dyadic(4)}
		} else {
			r = SymmetricOblivious{A: dyadic(4)}
		}
		exact, err := e.EvaluateWith(inst, r, Exact, sim.Config{})
		if err != nil {
			t.Fatalf("case %d (%s on %+v): exact: %v", i, r.Name(), inst, err)
		}
		qmc, err := e.EvaluateWith(inst, r, MonteCarloQMC,
			sim.Config{Trials: trials, Seed: uint64(1000 + i)})
		if err != nil {
			t.Fatalf("case %d (%s on %+v): qmc: %v", i, r.Name(), inst, err)
		}
		// 6 stderr with a small absolute floor: ~1e-8 per-case false
		// positive rate, yet tight enough that any systematic bias in the
		// sampler (values outside [0,1), broken scrambling, repeated
		// indices) fails loudly.
		tol := math.Max(6*qmc.StdErr, 5e-4)
		if diff := math.Abs(qmc.P - exact.P); diff > tol {
			t.Errorf("case %d (%s on %+v): qmc %v vs exact %v, |diff| %v > %v (stderr %v)",
				i, r.Name(), inst, qmc.P, exact.P, diff, tol, qmc.StdErr)
		}
	}
}
