package engine

import (
	"testing"

	"repro/internal/oblivious"
	"repro/internal/obs"
)

// TestSweepHeteroObliviousOverrideBitIdentical checks the sweep's reusable
// evaluator path: a heterogeneous α sweep routes every point through a
// per-worker oblivious.Evaluator, and because the evaluator is bit-identical
// to the one-shot path, every result — and every memoized entry — carries
// exactly the one-shot bits.
func TestSweepHeteroObliviousOverrideBitIdentical(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Obs: obs.New(reg, nil)})
	pi := []float64{0.5, 1, 0.75, 0.9, 1}
	inst := mustInstancePi(t, 5, 1.25, pi)

	alphas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	points := make([]Point, 0, len(alphas)+1)
	for _, a := range alphas {
		points = append(points, Point{Instance: inst, Rule: SymmetricOblivious{A: a}})
	}
	// A full-vector rule rides the same sweep: the override handles any
	// rule exposing its α-vector, not just the symmetric ones.
	full := Oblivious{Alphas: []float64{0.15, 0.35, 0.55, 0.75, 0.95}}
	points = append(points, Point{Instance: inst, Rule: full})

	results, err := e.Sweep(points, SweepOptions{Backend: Exact, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range alphas {
		want, err := oblivious.WinningProbabilityPi([]float64{a, a, a, a, a}, pi, inst.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].P != want {
			t.Errorf("α=%v: sweep %v != one-shot %v (must be bit-identical)", a, results[i].P, want)
		}
		if results[i].Backend != Exact {
			t.Errorf("α=%v: backend %v, want exact", a, results[i].Backend)
		}
	}
	wantFull, err := oblivious.WinningProbabilityPi(full.Alphas, pi, inst.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if results[len(alphas)].P != wantFull {
		t.Errorf("vector point: sweep %v != one-shot %v", results[len(alphas)].P, wantFull)
	}

	// Overridden results memoize under the normal keys: a repeated sweep is
	// 100% cache hits with identical bits.
	again, err := e.Sweep(points, SweepOptions{Backend: Exact, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Cached {
			t.Errorf("point %d not served from cache on repeat", i)
		}
		if again[i].P != results[i].P {
			t.Errorf("point %d: cached %v != first %v", i, again[i].P, results[i].P)
		}
	}
}

// TestSweepDeltaUpdateCounters walks a single-worker sweep through
// full-vector points that each differ from their predecessor in exactly one
// coordinate: the evaluator serves every point after the first with a
// single-coordinate delta update, and the engine counters record it.
func TestSweepDeltaUpdateCounters(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Obs: obs.New(reg, nil)})
	pi := []float64{0.5, 1, 0.75}
	inst := mustInstancePi(t, 3, 1, pi)

	walk := [][]float64{
		{0.2, 0.4, 0.6},
		{0.5, 0.4, 0.6}, // coord 0
		{0.5, 0.7, 0.6}, // coord 1
		{0.5, 0.7, 0.3}, // coord 2
	}
	points := make([]Point, len(walk))
	for i, a := range walk {
		points[i] = Point{Instance: inst, Rule: Oblivious{Alphas: a}}
	}
	results, err := e.Sweep(points, SweepOptions{Backend: Exact, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range walk {
		want, err := oblivious.WinningProbabilityPi(a, pi, inst.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].P != want {
			t.Errorf("point %d: sweep %v != one-shot %v (must be bit-identical)", i, results[i].P, want)
		}
	}
	// Points may be claimed in any order, but any serial order of this walk
	// has at least one adjacent single-coordinate pair.
	if du := reg.Counter("exact.delta.updates").Value(); du < 1 {
		t.Errorf("exact.delta.updates = %d, want ≥ 1", du)
	}
	if ds := reg.Counter("exact.delta.subsets").Value(); ds < 1 {
		t.Errorf("exact.delta.subsets = %d, want ≥ 1", ds)
	}
}

// TestSweepOverrideFactoryGating enumerates the disqualifying shapes: the
// factory must return nil whenever the reusable-evaluator contract (shared
// heterogeneous instance, all α-exposing rules, exact backend, ≥2 points)
// does not hold.
func TestSweepOverrideFactoryGating(t *testing.T) {
	e := New(Config{})
	het := mustInstancePi(t, 3, 1, []float64{0.5, 1, 0.75})
	het2 := mustInstancePi(t, 3, 1, []float64{0.6, 1, 0.75})
	hom := Instance{N: 3, Delta: 1}
	obl := func(inst Instance, a float64) Point {
		return Point{Instance: inst, Rule: SymmetricOblivious{A: a}}
	}
	cases := []struct {
		name    string
		points  []Point
		backend Backend
		want    bool
	}{
		{"qualifying", []Point{obl(het, 0.3), obl(het, 0.5)}, Exact, true},
		{"qualifying auto", []Point{obl(het, 0.3), obl(het, 0.5)}, Auto, true},
		{"monte carlo", []Point{obl(het, 0.3), obl(het, 0.5)}, MonteCarlo, false},
		{"single point", []Point{obl(het, 0.3)}, Exact, false},
		{"homogeneous", []Point{obl(hom, 0.3), obl(hom, 0.5)}, Exact, false},
		{"mixed instances", []Point{obl(het, 0.3), obl(het2, 0.5)}, Exact, false},
		{"non-oblivious rule", []Point{obl(het, 0.3), {Instance: het, Rule: SymmetricThreshold{Beta: 0.5}}}, Exact, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := e.sweepOverrideFactory(c.points, c.backend)
			if (got != nil) != c.want {
				t.Errorf("factory non-nil = %v, want %v", got != nil, c.want)
			}
			if got != nil {
				ov := got()
				if ov == nil || ov.ev == nil {
					t.Fatal("qualifying factory built no evaluator")
				}
			}
		})
	}
}

// TestOptimizeVectorTableReuse compares the vector search with and without
// the per-search reusable evaluator: the reused search must record delta
// updates, and both searches must land on the same optimum well within the
// exact backend's certified drift.
func TestOptimizeVectorTableReuse(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Obs: obs.New(reg, nil)})
	inst := Instance{N: 4, Delta: 4.0 / 3}

	reused, err := e.Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{Backend: Exact})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := New(Config{}).Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{Backend: Exact, NoTableReuse: true})
	if err != nil {
		t.Fatal(err)
	}

	if reused.DeltaUpdates == 0 {
		t.Error("table-reuse search recorded no delta updates")
	}
	if baseline.DeltaUpdates != 0 {
		t.Errorf("NoTableReuse search recorded %d delta updates", baseline.DeltaUpdates)
	}
	if du := reg.Counter("exact.delta.updates").Value(); du != int64(reused.DeltaUpdates) {
		t.Errorf("exact.delta.updates counter %d != result DeltaUpdates %d", du, reused.DeltaUpdates)
	}
	if len(reused.Params) != inst.N {
		t.Fatalf("got %d params, want %d", len(reused.Params), inst.N)
	}
	for i := range reused.Params {
		if d := reused.Params[i] - baseline.Params[i]; d > 1e-6 || d < -1e-6 {
			t.Errorf("param %d: reuse %v vs baseline %v", i, reused.Params[i], baseline.Params[i])
		}
	}
	if d := reused.Value - baseline.Value; d > 1e-9 || d < -1e-9 {
		t.Errorf("value: reuse %v vs baseline %v", reused.Value, baseline.Value)
	}
	if reused.Backend != Exact || baseline.Backend != Exact {
		t.Errorf("backends %v/%v, want exact", reused.Backend, baseline.Backend)
	}

	// The canonical re-evaluation lands the optimum in the memo cache under
	// the one-shot key: evaluating the returned rule again must hit.
	res, err := e.Evaluate(inst, reused.Rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("optimum not memoized by the canonical re-evaluation")
	}
	if res.P != reused.Value {
		t.Errorf("memoized %v != reported optimum %v (canonicalization must store one-shot bits)", res.P, reused.Value)
	}
}

// TestOptimizeParallelTableReuseDeterministic runs the same vector search
// concurrently against one shared engine: probe values must never depend on
// cache state, so every search walks the same trajectory bit for bit.
func TestOptimizeParallelTableReuseDeterministic(t *testing.T) {
	e := New(Config{})
	inst := Instance{N: 3, Delta: 1}
	const searches = 4
	results := make([]OptimizeResult, searches)
	errs := make([]error, searches)
	done := make(chan int, searches)
	for g := 0; g < searches; g++ {
		go func(g int) {
			results[g], errs[g] = e.Optimize(inst, ThresholdVectorFamily{}, OptimizeOptions{Backend: Exact})
			done <- g
		}(g)
	}
	for i := 0; i < searches; i++ {
		<-done
	}
	for g := 0; g < searches; g++ {
		if errs[g] != nil {
			t.Fatalf("search %d: %v", g, errs[g])
		}
		if results[g].Value != results[0].Value {
			t.Errorf("search %d: value %v != search 0 %v (must be bit-identical)", g, results[g].Value, results[0].Value)
		}
		for i := range results[g].Params {
			if results[g].Params[i] != results[0].Params[i] {
				t.Errorf("search %d param %d: %v != %v", g, i, results[g].Params[i], results[0].Params[i])
			}
		}
	}
}
