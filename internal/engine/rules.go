package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/py91"
	"repro/internal/response"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Rule is one decision-making algorithm viewed through the engine: it can
// name itself, fingerprint its parameters canonically for the memoization
// cache, and build the runnable model.System the Monte-Carlo backend
// plays. Rules that also have an analytic oracle implement ExactEvaluator;
// rules whose trial logic cannot be expressed as per-player local rules
// (communication protocols) implement Simulator instead of System.
type Rule interface {
	// Name is the human-readable rule name.
	Name() string
	// Fingerprint is a canonical encoding of the rule's parameters:
	// equal fingerprints must mean bit-identical evaluation results.
	// Floats are encoded by their exact bit patterns.
	Fingerprint() string
	// System builds the runnable n-player system on the instance, or
	// returns an error wrapping ErrNoSystem when the rule cannot be
	// expressed as independent local rules.
	System(inst Instance) (*model.System, error)
}

// ExactEvaluator is implemented by rules with an analytic oracle
// (Theorem 4.1, Theorem 5.1, the grid-convolution oracle, the
// interval-pair conditioning of one-bit protocols, PY91 quadrature).
type ExactEvaluator interface {
	Rule
	// ExactWinProbability computes the rule's winning probability on the
	// instance without sampling.
	ExactWinProbability(inst Instance) (float64, error)
}

// ExactOpts is implemented by exact rules whose oracle supports sharded
// subset enumeration and observability — the oblivious and threshold
// families, whose Theorem 4.1 / 5.1 evaluations shard across workers with
// bit-identical results for every worker count. The engine prefers it over
// plain ExactEvaluator, passing its resolved ExactWorkers and observer.
type ExactOpts interface {
	ExactEvaluator
	// ExactWinProbabilityOpts is ExactWinProbability with explicit worker
	// sharding (≤ 1 means serial) and optional instrumentation.
	ExactWinProbabilityOpts(inst Instance, workers int, o *obs.Observer) (float64, error)
}

// Simulator is implemented by rules that carry their own Monte-Carlo
// procedure; the engine prefers it over System + sim.WinProbability.
type Simulator interface {
	Rule
	// Simulate estimates the winning probability on the instance.
	Simulate(inst Instance, cfg sim.Config) (sim.Result, error)
}

// ErrNoSystem marks rules that cannot be materialized as a no-communication
// model.System (they still simulate through the Simulator interface).
var ErrNoSystem = errors.New("engine: rule has no local-rule system")

// fbits encodes a float by its exact bit pattern (cache-key safe).
func fbits(v float64) string { return strconv.FormatUint(math.Float64bits(v), 16) }

// homogeneousOnly rejects heterogeneous instances for rules whose exact
// oracle (or bespoke simulator) is defined only for U[0,1] inputs.
func homogeneousOnly(inst Instance, what string) error {
	if inst.Heterogeneous() {
		return fmt.Errorf("engine: %s supports only homogeneous U[0,1] inputs, got π=(%s)",
			what, problem.FormatPi(inst.Pi))
	}
	return nil
}

// repeated expands a per-player constant to a vector of the instance's
// size (the symmetric rules' bridge to the general hetero evaluators).
func repeated(v float64, n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = v
	}
	return vs
}

// fbitsList encodes a float slice.
func fbitsList(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fbits(v)
	}
	return strings.Join(parts, ",")
}

// ---------------------------------------------------------------------------
// Oblivious rules (Section 4)

// SymmetricOblivious is the rule where every player chooses bin 0 with the
// same probability A — the Theorem 4.3 family (A = 1/2 at the optimum).
type SymmetricOblivious struct {
	// A is the common bin-0 probability α ∈ [0, 1].
	A float64
}

// Name implements Rule.
func (r SymmetricOblivious) Name() string { return fmt.Sprintf("oblivious(α=%g)", r.A) }

// Fingerprint implements Rule.
func (r SymmetricOblivious) Fingerprint() string { return "obl-sym:" + fbits(r.A) }

// System implements Rule.
func (r SymmetricOblivious) System(inst Instance) (*model.System, error) {
	rule, err := model.NewObliviousRule(r.A)
	if err != nil {
		return nil, err
	}
	return model.UniformSystemPi(inst.N, rule, inst.Delta, inst.Pi)
}

// ExactWinProbability implements ExactEvaluator through Theorem 4.1 (its
// heterogeneous generalization when the instance carries a π vector).
func (r SymmetricOblivious) ExactWinProbability(inst Instance) (float64, error) {
	return r.ExactWinProbabilityOpts(inst, 0, nil)
}

// ExactWinProbabilityOpts implements ExactOpts. The homogeneous closed
// form is O(n²) and ignores the worker count; the heterogeneous subset
// enumeration shards across workers.
func (r SymmetricOblivious) ExactWinProbabilityOpts(inst Instance, workers int, o *obs.Observer) (float64, error) {
	if inst.Heterogeneous() {
		return oblivious.WinningProbabilityPiOpts(repeated(r.A, inst.N), inst.Pi, inst.Delta, workers, o)
	}
	return oblivious.SymmetricWinningProbability(inst.N, inst.Delta, r.A)
}

// Oblivious is the general oblivious rule: player i chooses bin 0 with
// probability Alphas[i]. The vector length must match the instance's N.
type Oblivious struct {
	// Alphas are the per-player bin-0 probabilities.
	Alphas []float64
}

// Name implements Rule.
func (r Oblivious) Name() string { return fmt.Sprintf("oblivious(%d players)", len(r.Alphas)) }

// Fingerprint implements Rule.
func (r Oblivious) Fingerprint() string { return "obl:" + fbitsList(r.Alphas) }

func (r Oblivious) check(inst Instance) error {
	if len(r.Alphas) != inst.N {
		return fmt.Errorf("engine: %d oblivious probabilities for %d players", len(r.Alphas), inst.N)
	}
	return nil
}

// System implements Rule.
func (r Oblivious) System(inst Instance) (*model.System, error) {
	if err := r.check(inst); err != nil {
		return nil, err
	}
	rules := make([]model.LocalRule, inst.N)
	for i, a := range r.Alphas {
		lr, err := model.NewObliviousRule(a)
		if err != nil {
			return nil, err
		}
		rules[i] = lr
	}
	return model.NewSystemPi(rules, inst.Delta, inst.Pi)
}

// ExactWinProbability implements ExactEvaluator through Theorem 4.1 (its
// heterogeneous generalization when the instance carries a π vector).
func (r Oblivious) ExactWinProbability(inst Instance) (float64, error) {
	return r.ExactWinProbabilityOpts(inst, 0, nil)
}

// ExactWinProbabilityOpts implements ExactOpts. The homogeneous
// Poisson-binomial evaluation is O(n²) and ignores the worker count; the
// heterogeneous subset enumeration shards across workers.
func (r Oblivious) ExactWinProbabilityOpts(inst Instance, workers int, o *obs.Observer) (float64, error) {
	if err := r.check(inst); err != nil {
		return 0, err
	}
	if inst.Heterogeneous() {
		return oblivious.WinningProbabilityPiOpts(r.Alphas, inst.Pi, inst.Delta, workers, o)
	}
	return oblivious.WinningProbability(r.Alphas, inst.Delta)
}

// DeterministicSplit is the deterministic oblivious vertex: the first K
// players enter bin 0, the remaining n−K enter bin 1 (the balanced
// partition K = ⌈n/2⌉ is the deterministic optimum).
type DeterministicSplit struct {
	// K is the number of players sent to bin 0.
	K int
}

// Name implements Rule.
func (r DeterministicSplit) Name() string { return fmt.Sprintf("split(%d→bin0)", r.K) }

// Fingerprint implements Rule.
func (r DeterministicSplit) Fingerprint() string { return "obl-split:" + strconv.Itoa(r.K) }

func (r DeterministicSplit) alphas(inst Instance) ([]float64, error) {
	if r.K < 0 || r.K > inst.N {
		return nil, fmt.Errorf("engine: split %d outside [0, %d]", r.K, inst.N)
	}
	alphas := make([]float64, inst.N)
	for i := 0; i < r.K; i++ {
		alphas[i] = 1
	}
	return alphas, nil
}

// System implements Rule.
func (r DeterministicSplit) System(inst Instance) (*model.System, error) {
	alphas, err := r.alphas(inst)
	if err != nil {
		return nil, err
	}
	return Oblivious{Alphas: alphas}.System(inst)
}

// ExactWinProbability implements ExactEvaluator through Theorem 4.1 at the
// 0/1 vertex.
func (r DeterministicSplit) ExactWinProbability(inst Instance) (float64, error) {
	return r.ExactWinProbabilityOpts(inst, 0, nil)
}

// ExactWinProbabilityOpts implements ExactOpts (see Oblivious).
func (r DeterministicSplit) ExactWinProbabilityOpts(inst Instance, workers int, o *obs.Observer) (float64, error) {
	alphas, err := r.alphas(inst)
	if err != nil {
		return 0, err
	}
	return Oblivious{Alphas: alphas}.ExactWinProbabilityOpts(inst, workers, o)
}

// ---------------------------------------------------------------------------
// Single-threshold rules (Section 5)

// SymmetricThreshold is the rule where every player enters bin 0 exactly
// when its input is at most Beta — the Figure 1 / Section 5.2 family.
type SymmetricThreshold struct {
	// Beta is the common threshold β ∈ [0, 1].
	Beta float64
}

// Name implements Rule.
func (r SymmetricThreshold) Name() string { return fmt.Sprintf("threshold(β=%g)", r.Beta) }

// Fingerprint implements Rule.
func (r SymmetricThreshold) Fingerprint() string { return "thr-sym:" + fbits(r.Beta) }

// System implements Rule.
func (r SymmetricThreshold) System(inst Instance) (*model.System, error) {
	rule, err := model.NewThresholdRule(r.Beta)
	if err != nil {
		return nil, err
	}
	return model.UniformSystemPi(inst.N, rule, inst.Delta, inst.Pi)
}

// ExactWinProbability implements ExactEvaluator through Theorem 5.1 (its
// heterogeneous generalization when the instance carries a π vector).
func (r SymmetricThreshold) ExactWinProbability(inst Instance) (float64, error) {
	return r.ExactWinProbabilityOpts(inst, 0, nil)
}

// ExactWinProbabilityOpts implements ExactOpts. The homogeneous symmetric
// closed form ignores the worker count; the heterogeneous subset
// enumeration shards across workers.
func (r SymmetricThreshold) ExactWinProbabilityOpts(inst Instance, workers int, o *obs.Observer) (float64, error) {
	if inst.Heterogeneous() {
		return nonoblivious.WinningProbabilityPiOpts(repeated(r.Beta, inst.N), inst.Pi, inst.Delta, workers, o)
	}
	return nonoblivious.SymmetricWinningProbability(inst.N, inst.Delta, r.Beta)
}

// Threshold is the general single-threshold rule: player i enters bin 0
// exactly when its input is at most Thresholds[i].
type Threshold struct {
	// Thresholds are the per-player cut points.
	Thresholds []float64
}

// Name implements Rule.
func (r Threshold) Name() string { return fmt.Sprintf("threshold(%d players)", len(r.Thresholds)) }

// Fingerprint implements Rule.
func (r Threshold) Fingerprint() string { return "thr:" + fbitsList(r.Thresholds) }

func (r Threshold) check(inst Instance) error {
	if len(r.Thresholds) != inst.N {
		return fmt.Errorf("engine: %d thresholds for %d players", len(r.Thresholds), inst.N)
	}
	return nil
}

// System implements Rule.
func (r Threshold) System(inst Instance) (*model.System, error) {
	if err := r.check(inst); err != nil {
		return nil, err
	}
	rules := make([]model.LocalRule, inst.N)
	for i, b := range r.Thresholds {
		lr, err := model.NewThresholdRule(b)
		if err != nil {
			return nil, err
		}
		rules[i] = lr
	}
	return model.NewSystemPi(rules, inst.Delta, inst.Pi)
}

// ExactWinProbability implements ExactEvaluator through Theorem 5.1 (its
// heterogeneous generalization when the instance carries a π vector).
func (r Threshold) ExactWinProbability(inst Instance) (float64, error) {
	return r.ExactWinProbabilityOpts(inst, 0, nil)
}

// ExactWinProbabilityOpts implements ExactOpts: both the homogeneous and
// heterogeneous Theorem 5.1 enumerations shard across workers.
func (r Threshold) ExactWinProbabilityOpts(inst Instance, workers int, o *obs.Observer) (float64, error) {
	if err := r.check(inst); err != nil {
		return 0, err
	}
	if inst.Heterogeneous() {
		return nonoblivious.WinningProbabilityPiOpts(r.Thresholds, inst.Pi, inst.Delta, workers, o)
	}
	return nonoblivious.WinningProbabilityOpts(r.Thresholds, inst.Delta, workers, o)
}

// ---------------------------------------------------------------------------
// Interval-set response rules (beyond-threshold deterministic rules)

// DefaultOracleGrid is the grid resolution the interval-set oracle uses
// when IntervalRule.Grid is zero. It matches the resolution the beyond
// example and harness extensions were using before the engine existed.
const DefaultOracleGrid = 4096

// IntervalRule is the symmetric deterministic rule whose bin-0 region is
// an arbitrary finite union of intervals, evaluated exactly by the
// grid-convolution oracle.
type IntervalRule struct {
	// Set is the bin-0 region S ⊆ [0, 1].
	Set response.IntervalSet
	// Grid is the oracle resolution (cells per unit); 0 selects
	// DefaultOracleGrid. It is part of the fingerprint because it bounds
	// the oracle's discretization error.
	Grid int
}

// Name implements Rule.
func (r IntervalRule) Name() string { return fmt.Sprintf("interval%v", r.Set) }

// Fingerprint implements Rule.
func (r IntervalRule) Fingerprint() string {
	ivs := r.Set.Intervals()
	parts := make([]string, len(ivs))
	for i, iv := range ivs {
		parts[i] = fbits(iv.Lo) + "-" + fbits(iv.Hi)
	}
	return "ivl:" + strings.Join(parts, ",") + ";g=" + strconv.Itoa(r.grid())
}

func (r IntervalRule) grid() int {
	if r.Grid <= 0 {
		return DefaultOracleGrid
	}
	return r.Grid
}

// System implements Rule. Heterogeneous instances are allowed — inputs
// beyond an interval set's [0, 1] domain simply fall in bin 1 — so the
// Monte-Carlo backend still covers them.
func (r IntervalRule) System(inst Instance) (*model.System, error) {
	rule, err := r.Set.Rule(r.Name())
	if err != nil {
		return nil, err
	}
	return model.UniformSystemPi(inst.N, rule, inst.Delta, inst.Pi)
}

// ExactWinProbability implements ExactEvaluator through the
// grid-convolution oracle. The oracle discretizes U[0,1] inputs, so
// heterogeneous instances are rejected here (simulate them instead).
func (r IntervalRule) ExactWinProbability(inst Instance) (float64, error) {
	if err := homogeneousOnly(inst, "the interval-set oracle"); err != nil {
		return 0, err
	}
	ev, err := response.NewEvaluator(inst.N, inst.Delta, r.grid())
	if err != nil {
		return 0, err
	}
	return ev.WinProbability(r.Set)
}

// ---------------------------------------------------------------------------
// One-bit broadcast protocols (communication extension)

// OneBitRule is the one-bit broadcast protocol: player 0 announces
// 1{x₀ > Cut}; it enters bin 0 when x₀ ≤ SenderTheta, and every listener
// thresholds its own input at BetaLow (bit 0) or BetaHigh (bit 1). The bit
// couples the players, so the rule has no local-rule System; Monte-Carlo
// runs through its own Simulator.
type OneBitRule struct {
	// Cut is the broadcast cut point.
	Cut float64
	// SenderTheta is the sender's own bin-0 threshold.
	SenderTheta float64
	// BetaLow and BetaHigh are the listeners' bit-conditional thresholds.
	BetaLow, BetaHigh float64
}

// Name implements Rule.
func (r OneBitRule) Name() string {
	return fmt.Sprintf("onebit(cut=%g,θ=%g,β=%g|%g)", r.Cut, r.SenderTheta, r.BetaLow, r.BetaHigh)
}

// Fingerprint implements Rule.
func (r OneBitRule) Fingerprint() string {
	return "comm1:" + fbits(r.Cut) + "," + fbits(r.SenderTheta) + "," + fbits(r.BetaLow) + "," + fbits(r.BetaHigh)
}

func (r OneBitRule) protocol(inst Instance) (comm.OneBitBroadcast, error) {
	if err := homogeneousOnly(inst, "the one-bit protocol"); err != nil {
		return comm.OneBitBroadcast{}, err
	}
	p := comm.OneBitBroadcast{N: inst.N, Cut: r.Cut, SenderTheta: r.SenderTheta, BetaLow: r.BetaLow, BetaHigh: r.BetaHigh}
	if err := p.Validate(); err != nil {
		return comm.OneBitBroadcast{}, err
	}
	return p, nil
}

// System implements Rule; the broadcast bit makes the players dependent,
// so no no-communication system exists.
func (r OneBitRule) System(Instance) (*model.System, error) {
	return nil, fmt.Errorf("%w: the broadcast bit couples the players", ErrNoSystem)
}

// ExactWinProbability implements ExactEvaluator by conditioning on the bit
// and evaluating each world's interval-pair vector.
func (r OneBitRule) ExactWinProbability(inst Instance) (float64, error) {
	p, err := r.protocol(inst)
	if err != nil {
		return 0, err
	}
	return p.WinProbability(inst.Delta)
}

// Simulate implements Simulator: one trial samples all inputs, resolves
// the bit from the sender's input, and plays the matching threshold set.
func (r OneBitRule) Simulate(inst Instance, cfg sim.Config) (sim.Result, error) {
	if _, err := r.protocol(inst); err != nil {
		return sim.Result{}, err
	}
	n, delta := inst.N, inst.Delta
	return sim.Bernoulli(cfg, "engine.onebit", func(rng *rand.Rand) (bool, error) {
		var load0, load1 float64
		x0 := rng.Float64()
		if x0 <= r.SenderTheta {
			load0 = x0
		} else {
			load1 = x0
		}
		beta := r.BetaLow
		if x0 > r.Cut {
			beta = r.BetaHigh
		}
		for i := 1; i < n; i++ {
			x := rng.Float64()
			if x <= beta {
				load0 += x
			} else {
				load1 += x
			}
		}
		return load0 <= delta && load1 <= delta, nil
	})
}

// ---------------------------------------------------------------------------
// PY91 baseline protocols

// DefaultQuadratureGrid is the quadrature resolution PY91Rule uses for
// non-threshold protocols when Grid is zero.
const DefaultQuadratureGrid = 400

// PY91Rule wraps a Papadimitriou–Yannakakis 1991 protocol. It only
// evaluates on the PY91 instance (3 players, capacity 1); threshold
// protocols go through the reproduced Theorem 5.1 closed form, every other
// deterministic protocol through midpoint quadrature, and Monte-Carlo
// through the py91 evaluator (its own seeding discipline, preserved
// bit-for-bit from the pre-engine entry point).
type PY91Rule struct {
	// Protocol is the wrapped protocol.
	Protocol py91.Protocol
	// Grid is the quadrature resolution for non-threshold protocols; 0
	// selects DefaultQuadratureGrid.
	Grid int
}

// Name implements Rule.
func (r PY91Rule) Name() string {
	if r.Protocol == nil {
		return "py91(nil)"
	}
	return "py91:" + r.Protocol.Name()
}

// Fingerprint implements Rule. Protocol names embed their parameters at
// 4-decimal precision, so the fingerprint appends the exact threshold bits
// when available.
func (r PY91Rule) Fingerprint() string {
	if r.Protocol == nil {
		return "py91:nil"
	}
	fp := "py91:" + r.Protocol.Name() + ";g=" + strconv.Itoa(r.grid())
	if tp, ok := r.Protocol.(*py91.ThresholdProtocol); ok {
		fp += ";θ=" + fbitsList(tp.Theta[:])
	}
	return fp
}

func (r PY91Rule) grid() int {
	if r.Grid <= 0 {
		return DefaultQuadratureGrid
	}
	return r.Grid
}

func (r PY91Rule) check(inst Instance) error {
	if r.Protocol == nil {
		return fmt.Errorf("engine: nil py91 protocol")
	}
	if err := homogeneousOnly(inst, "py91 protocols"); err != nil {
		return err
	}
	if inst.N != py91.Players || inst.Delta != py91.Capacity {
		return fmt.Errorf("engine: py91 protocols evaluate only on n=%d, δ=%v (got n=%d, δ=%v)",
			py91.Players, py91.Capacity, inst.N, inst.Delta)
	}
	return nil
}

// System implements Rule; PY91 protocols may communicate, so no
// no-communication system exists in general.
func (r PY91Rule) System(Instance) (*model.System, error) {
	return nil, fmt.Errorf("%w: py91 protocols may communicate", ErrNoSystem)
}

// ExactWinProbability implements ExactEvaluator: the Theorem 5.1 closed
// form for threshold protocols, midpoint quadrature otherwise.
func (r PY91Rule) ExactWinProbability(inst Instance) (float64, error) {
	if err := r.check(inst); err != nil {
		return 0, err
	}
	if tp, ok := r.Protocol.(*py91.ThresholdProtocol); ok {
		return tp.ExactWinProbability()
	}
	return py91.EvaluateByQuadrature(r.Protocol, r.grid())
}

// Simulate implements Simulator by delegating to py91.Evaluate, keeping
// the baseline's historical per-worker seeding (and therefore its
// published estimates) intact.
func (r PY91Rule) Simulate(inst Instance, cfg sim.Config) (sim.Result, error) {
	if err := r.check(inst); err != nil {
		return sim.Result{}, err
	}
	ev, err := py91.Evaluate(r.Protocol, py91.SimConfig{Trials: cfg.Trials, Workers: cfg.Workers, Seed: cfg.Seed})
	if err != nil {
		return sim.Result{}, err
	}
	var prop stats.Proportion
	if err := prop.AddN(int64(math.Round(ev.P*float64(ev.Trials))), ev.Trials); err != nil {
		return sim.Result{}, err
	}
	lo, hi, err := prop.WilsonCI(1.96)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Result{P: ev.P, StdErr: ev.StdErr, CILo: lo, CIHi: hi, Wins: prop.Successes(), Trials: ev.Trials}, nil
}
