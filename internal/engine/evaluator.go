package engine

import (
	"context"
	"sync"

	"repro/internal/oblivious"
)

// obliviousAlphaRule is implemented by the oblivious rules that can expose
// their full bin-choice vector, letting sweeps route them through a
// reusable per-worker evaluator instead of rebuilding the subset-CDF
// table per point.
type obliviousAlphaRule interface {
	alphaVector(n int) []float64
}

func (r SymmetricOblivious) alphaVector(n int) []float64 { return repeated(r.A, n) }

func (r Oblivious) alphaVector(int) []float64 { return r.Alphas }

// exactOverride carries a reusable oblivious evaluator through the context
// into compute()'s Exact branch. The evaluator is bit-identical to the
// one-shot WinningProbabilityPiOpts, so overridden results land in the
// memoization cache under the normal keys. The mutex serializes the owner
// worker against abandoned evaluations still running in the background
// after their caller's deadline struck.
type exactOverride struct {
	mu      sync.Mutex
	ev      *oblivious.Evaluator
	instKey string
}

type exactOverrideKey struct{}

func withExactOverride(ctx context.Context, ov *exactOverride) context.Context {
	return context.WithValue(ctx, exactOverrideKey{}, ov)
}

// sweepOverrideFactory decides whether a sweep qualifies for per-worker
// reusable evaluators — an Exact/Auto backend, every point on one shared
// heterogeneous instance within the evaluator's range, every rule an
// oblivious rule exposing its α-vector (the 1-D α sweeps and their
// chunked/streamed variants) — and returns a constructor for per-worker
// overrides, or nil when the sweep should take the one-shot path.
func (e *Engine) sweepOverrideFactory(points []Point, backend Backend) func() *exactOverride {
	if backend != Exact && backend != Auto {
		return nil
	}
	if len(points) < 2 {
		return nil
	}
	inst := points[0].Instance
	if !inst.Heterogeneous() || inst.N < 2 || inst.N > oblivious.MaxNHetero {
		return nil
	}
	key := inst.Key()
	for _, pt := range points {
		if _, ok := pt.Rule.(obliviousAlphaRule); !ok {
			return nil
		}
		if pt.Instance.Key() != key {
			return nil
		}
	}
	return func() *exactOverride {
		ev, err := oblivious.NewEvaluator(inst.Pi, inst.Delta, 1)
		if err != nil {
			// Instance rejected by the evaluator (e.g. a capacity the
			// one-shot path will reject identically): disable the override
			// and let the points fail through the normal path.
			return nil
		}
		return &exactOverride{ev: ev, instKey: key}
	}
}

// overriddenExact serves an Exact computation from the context's reusable
// evaluator when one is riding ctx and matches (instance, rule shape).
// The bool reports whether the override applied.
func (e *Engine) overriddenExact(ctx context.Context, inst Instance, r Rule) (Result, bool, error) {
	ov, ok := ctx.Value(exactOverrideKey{}).(*exactOverride)
	if !ok || ov == nil {
		return Result{}, false, nil
	}
	ar, ok := r.(obliviousAlphaRule)
	if !ok || inst.Key() != ov.instKey {
		return Result{}, false, nil
	}
	ov.mu.Lock()
	before := ov.ev.Stats()
	p, err := ov.ev.Evaluate(ar.alphaVector(inst.N))
	after := ov.ev.Stats()
	ov.mu.Unlock()
	e.obs.Counter("exact.delta.updates").Add(int64(after.DeltaUpdates - before.DeltaUpdates))
	e.obs.Counter("exact.delta.subsets").Add(int64(after.DeltaSubsets - before.DeltaSubsets))
	if err != nil {
		return Result{}, true, err
	}
	return Result{P: p, Backend: Exact}, true, nil
}
