package engine

import (
	"math"
	"strings"
	"testing"

	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/problem"
	"repro/internal/py91"
	"repro/internal/response"
	"repro/internal/sim"
)

func mustInstancePi(t *testing.T, n int, delta float64, pi []float64) Instance {
	t.Helper()
	inst, err := problem.NewPi(n, delta, pi)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestHeteroExactParity pins the engine's heterogeneous Exact dispatch to
// the underlying subset-sum evaluators, bit for bit.
func TestHeteroExactParity(t *testing.T) {
	e := New(Config{})
	pi := []float64{0.5, 1, 0.75}
	inst := mustInstancePi(t, 3, 1, pi)

	wantObl, err := oblivious.WinningProbabilityPi([]float64{0.5, 0.5, 0.5}, pi, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotObl, err := e.Evaluate(inst, SymmetricOblivious{A: 0.5}, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if gotObl.P != wantObl {
		t.Errorf("oblivious: engine %v != evaluator %v", gotObl.P, wantObl)
	}

	wantThr, err := nonoblivious.WinningProbabilityPi([]float64{0.5, 0.5, 0.5}, pi, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotThr, err := e.Evaluate(inst, SymmetricThreshold{Beta: 0.5}, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if gotThr.P != wantThr {
		t.Errorf("threshold: engine %v != evaluator %v", gotThr.P, wantThr)
	}

	wantVec, err := nonoblivious.WinningProbabilityPi([]float64{0.3, 0.5, 0.7}, pi, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotVec, err := e.Evaluate(inst, Threshold{Thresholds: []float64{0.3, 0.5, 0.7}}, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if gotVec.P != wantVec {
		t.Errorf("threshold vector: engine %v != evaluator %v", gotVec.P, wantVec)
	}
}

// TestHeteroExactVsMonteCarlo cross-checks the heterogeneous Exact
// backend against the widths-aware sampling kernel through the engine for
// every simulable rule class.
func TestHeteroExactVsMonteCarlo(t *testing.T) {
	e := New(Config{})
	inst := mustInstancePi(t, 3, 1, []float64{0.5, 1, 0.75})
	cfg := sim.Config{Trials: 200_000, Seed: 17, Workers: 2}
	rules := []Rule{
		SymmetricOblivious{A: 0.5},
		Oblivious{Alphas: []float64{0.2, 0.6, 0.9}},
		DeterministicSplit{K: 2},
		SymmetricThreshold{Beta: 0.5},
		Threshold{Thresholds: []float64{0.3, 0.5, 0.7}},
	}
	for _, r := range rules {
		exact, err := e.Evaluate(inst, r, Exact)
		if err != nil {
			t.Fatalf("%s exact: %v", r.Name(), err)
		}
		mc, err := e.EvaluateWith(inst, r, MonteCarlo, cfg)
		if err != nil {
			t.Fatalf("%s mc: %v", r.Name(), err)
		}
		if mc.StdErr <= 0 {
			t.Fatalf("%s: no standard error", r.Name())
		}
		if z := math.Abs(mc.P-exact.P) / mc.StdErr; z > 4 {
			t.Errorf("%s: mc %v vs exact %v is %.1f standard errors apart", r.Name(), mc.P, exact.P, z)
		}
	}
}

// TestHeteroUnsupportedRules checks that rule classes whose exact
// analysis or protocol is homogeneous-only reject heterogeneous
// instances with a diagnostic naming the π vector.
func TestHeteroUnsupportedRules(t *testing.T) {
	e := New(Config{})
	inst := mustInstancePi(t, 2, 1, []float64{0.5, 1})
	set, err := response.NewIntervalSet([]response.Interval{{Lo: 0, Hi: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	iv := IntervalRule{Set: set}
	cases := []struct {
		name    string
		rule    Rule
		backend Backend
	}{
		{"interval exact", iv, Exact},
		{"one-bit exact", OneBitRule{Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.7, BetaHigh: 0.5}, Exact},
		{"one-bit mc", OneBitRule{Cut: 0.5, SenderTheta: 0.6, BetaLow: 0.7, BetaHigh: 0.5}, MonteCarlo},
		{"py91 exact", PY91Rule{Protocol: py91.ConjecturedOptimal()}, Exact},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := e.Evaluate(inst, c.rule, c.backend)
			if err == nil {
				t.Fatal("expected heterogeneous rejection")
			}
			if !strings.Contains(err.Error(), "π=(0.5,1)") {
				t.Errorf("error should name the π vector: %v", err)
			}
		})
	}
	// Interval rules still simulate on heterogeneous instances: only the
	// exact interval-set oracle is homogeneous-bound.
	if _, err := e.EvaluateWith(inst, iv, MonteCarlo, sim.Config{Trials: 1000, Seed: 1}); err != nil {
		t.Errorf("interval mc on heterogeneous instance: %v", err)
	}
}

// TestHeteroCacheKeys checks the memoization identity over π: an
// all-ones vector shares the homogeneous entry, a genuinely
// heterogeneous vector gets its own.
func TestHeteroCacheKeys(t *testing.T) {
	e := New(Config{})
	hom := mustInstance(t, 3, 1)
	ones := mustInstancePi(t, 3, 1, []float64{1, 1, 1})
	het := mustInstancePi(t, 3, 1, []float64{0.5, 1, 1})
	rule := SymmetricThreshold{Beta: 0.5}

	first, err := e.Evaluate(hom, rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := e.Evaluate(ones, rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || cached.P != first.P {
		t.Errorf("all-ones π should hit the homogeneous cache entry: %+v", cached)
	}
	other, err := e.Evaluate(het, rule, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("heterogeneous instance served from the homogeneous cache entry")
	}
	if other.P == first.P {
		t.Errorf("heterogeneous value %v should differ from homogeneous %v", other.P, first.P)
	}
	if e.CacheLen() != 2 {
		t.Errorf("cache has %d entries, want 2", e.CacheLen())
	}
}

// TestMonteCarloEvaluateAllocs bounds the allocations of one full
// Monte-Carlo Evaluate on a fresh engine: setup cost only, nothing per
// trial (50k trials would dwarf the bound if sampling allocated).
func TestMonteCarloEvaluateAllocs(t *testing.T) {
	inst := mustInstancePi(t, 3, 1, []float64{0.5, 1, 0.75})
	cfg := sim.Config{Trials: 50_000, Seed: 3, Workers: 1}
	allocs := testing.AllocsPerRun(5, func() {
		e := New(Config{})
		if _, err := e.EvaluateWith(inst, SymmetricThreshold{Beta: 0.5}, MonteCarlo, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 200 {
		t.Errorf("Monte-Carlo Evaluate allocated %v times for 50k trials; sampling must not allocate per trial", allocs)
	}
}
