// Package engine is the unified evaluation service of the reproduction:
// one Rule abstraction covering every algorithm class the repo analyses
// (oblivious coins, single thresholds, interval-set response rules, one-bit
// communication protocols, and the PY91 baseline), evaluated on any
// instance through pluggable backends.
//
// Four backends are provided:
//
//   - Exact — the per-class analytic oracle (Theorem 4.1 for oblivious
//     rules, Theorem 5.1 for thresholds, the grid-convolution oracle for
//     interval sets, the conditioned interval-pair evaluation for one-bit
//     protocols, closed form or quadrature for PY91 protocols);
//   - MonteCarlo — the sim package's deterministic parallel estimator;
//   - MonteCarloQMC — the randomized quasi-Monte-Carlo estimator
//     (scrambled Sobol replicates) for local-rule systems;
//   - Auto — exact when the rule has an exact evaluator, simulation
//     otherwise.
//
// Every evaluation is memoized behind a concurrency-safe cache keyed on
// (instance, rule fingerprint, resolved backend, backend tolerance), with
// hit/miss counters registered in the internal/obs registry, and Sweep
// shards whole parameter grids across workers. The engine is the seam the
// layers above share: core delegates its per-class methods here, harness
// experiments build rule sets instead of bespoke closures, and both CLIs
// expose the backend choice as a flag.
package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sim"
	"repro/internal/store"
)

// Instance is the canonical problem instance: N players with inputs
// uniform on [0, π_i] (nil Pi ⇒ the homogeneous U[0,1] game) and two
// bins of capacity Delta. It is an alias of problem.Instance, so the
// engine, core and the harness all share one definition, one Validate,
// and one cache key.
type Instance = problem.Instance

// Backend selects how a rule is evaluated.
type Backend int

// The three backends.
const (
	// Auto picks Exact when the rule implements ExactEvaluator and falls
	// back to MonteCarlo otherwise.
	Auto Backend = iota
	// Exact evaluates through the rule's analytic oracle.
	Exact
	// MonteCarlo estimates by simulation (sim.WinProbability for rules
	// with a local-rule system, the rule's own simulator otherwise).
	// Systems whose rules implement model.BatchRule run on the
	// allocation-free batch kernel; results are bit-identical to the
	// per-trial path for a fixed (Seed, Workers) pair either way.
	MonteCarlo
	// MonteCarloQMC estimates by randomized quasi-Monte-Carlo
	// (sim.WinProbabilityQMC): scrambled Sobol replicates instead of
	// pseudo-random trials, buying far fewer trials per unit of
	// precision. Only rules whose trial logic is a local-rule system
	// qualify (protocol rules with their own Simulator are rejected at
	// resolve time); results depend on (Trials, Seed, Replicates) but
	// not on Workers.
	MonteCarloQMC
)

// String returns "auto", "exact", "mc" or "mc-qmc".
func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case Exact:
		return "exact"
	case MonteCarlo:
		return "mc"
	case MonteCarloQMC:
		return "mc-qmc"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend parses the CLI spelling of a backend: exact, mc (or
// montecarlo), mc-qmc (or qmc), auto.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(s) {
	case "auto":
		return Auto, nil
	case "exact":
		return Exact, nil
	case "mc", "montecarlo", "monte-carlo", "sim":
		return MonteCarlo, nil
	case "mc-qmc", "qmc", "mcqmc":
		return MonteCarloQMC, nil
	default:
		return Auto, fmt.Errorf("engine: unknown backend %q (want exact, mc, mc-qmc or auto)", s)
	}
}

// Result is one evaluated winning probability.
type Result struct {
	// P is the winning probability (exact value or simulation estimate).
	P float64
	// StdErr is the estimate's standard error (0 for exact backends).
	StdErr float64
	// Backend is the backend that actually ran (Exact, MonteCarlo or
	// MonteCarloQMC, never Auto).
	Backend Backend
	// Cached reports whether the value was served from the memoization
	// cache rather than recomputed.
	Cached bool
	// Sim holds the full simulation result when Backend == MonteCarlo.
	Sim *sim.Result
}

// Config configures an Engine.
type Config struct {
	// Sim is the default Monte-Carlo configuration used by Evaluate when
	// the caller does not supply one. A zero Trials selects
	// DefaultTrials.
	Sim sim.Config
	// Obs optionally registers the engine's cache hit/miss and
	// per-backend evaluation counters (engine.cache.hits,
	// engine.cache.misses, engine.evals.exact, engine.evals.mc) plus the
	// exact backend's exact.* enumeration counters.
	Obs *obs.Observer
	// ExactWorkers shards the exact backend's subset enumeration for rules
	// implementing ExactOpts. 0 selects the repo-wide default
	// (sim.WorkerCount: GOMAXPROCS), clamped to the 64-chunk shard grid.
	ExactWorkers int
	// Store is the tiered result store backing the memoization cache.
	// Nil selects a private, unbounded memory store — the engine's
	// original process-local behavior. Supplying a disk-tiered store
	// (store.New with Options.Dir) makes expensive results survive
	// restarts and lets replicas share a cache directory.
	Store store.Store
}

// DefaultTrials is the Monte-Carlo trial count used when neither the
// engine's Config nor the caller specifies one.
const DefaultTrials = 200_000

// Engine evaluates rules on instances through pluggable backends behind a
// concurrency-safe memoization cache (a store.Store: singleflight memory
// tier, optional content-addressed disk tier). The zero value is not
// usable; use New.
type Engine struct {
	simCfg       sim.Config
	obs          *obs.Observer
	exactWorkers int
	store        store.Store
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Sim.Trials <= 0 {
		cfg.Sim.Trials = DefaultTrials
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMemory(store.Options{Obs: cfg.Obs})
	}
	return &Engine{simCfg: cfg.Sim, obs: cfg.Obs, exactWorkers: cfg.ExactWorkers, store: st}
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide shared engine (no observability, the
// DefaultTrials Monte-Carlo configuration). core's per-class methods
// delegate through it, so repeated evaluations of the same rule anywhere
// in the process hit one shared cache.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Config{}) })
	return defaultEngine
}

// SimConfig returns the engine's default Monte-Carlo configuration.
func (e *Engine) SimConfig() sim.Config { return e.simCfg }

// CacheLen reports the number of memoized evaluations.
func (e *Engine) CacheLen() int { return e.store.Len() }

// ResultStore returns the engine's result store, exposing its stats (and
// disk tier, when one is configured) to the layers above.
func (e *Engine) ResultStore() store.Store { return e.store }

// Evaluate evaluates the rule on the instance with the engine's default
// Monte-Carlo configuration.
func (e *Engine) Evaluate(inst Instance, r Rule, backend Backend) (Result, error) {
	return e.EvaluateWithCtx(context.Background(), inst, r, backend, e.simCfg)
}

// EvaluateCtx is Evaluate with a caller context: the evaluation's spans
// parent onto any obs span riding ctx, and a cancellable ctx bounds the
// wait (see EvaluateWithCtx).
func (e *Engine) EvaluateCtx(ctx context.Context, inst Instance, r Rule, backend Backend) (Result, error) {
	return e.EvaluateWithCtx(ctx, inst, r, backend, e.simCfg)
}

// EvaluateWith evaluates the rule on the instance, using simCfg when the
// resolved backend is MonteCarlo. Results are memoized: the cache key is
// (instance, rule fingerprint, resolved backend, backend tolerance), where
// the tolerance is the (Trials, Seed, Workers) triple for Monte-Carlo —
// the knobs that change the returned bits — and is empty for Exact
// (rule-level tolerances such as oracle grids are part of the
// fingerprint). ExactWorkers is deliberately NOT part of the key: the
// sharded exact backend reduces over a fixed chunk grid in a fixed order,
// so every worker count returns bit-identical values. Observability
// settings are likewise excluded: they never change the result, but a
// cache hit skips the simulation and therefore re-emits no convergence
// events.
func (e *Engine) EvaluateWith(inst Instance, r Rule, backend Backend, simCfg sim.Config) (Result, error) {
	return e.EvaluateWithCtx(context.Background(), inst, r, backend, simCfg)
}

// EvaluateWithCtx is EvaluateWith with a caller context, the seam the
// serving layer runs on. Two context features are honored:
//
//   - Span parenting: when ctx carries an obs span (obs.ContextWithSpan),
//     the evaluation opens an engine.evaluate child span, and an uncached
//     computation opens a backend.exact / backend.mc child under that —
//     the handler → engine → backend trace tree. Without a span in ctx
//     the evaluation emits no spans, keeping the library path identical
//     to the pre-context behavior.
//   - Deadline/cancellation: a cancellable ctx bounds the *wait*, not the
//     work. If ctx expires while the result is being computed, the call
//     returns ctx.Err() immediately, the computation keeps running in the
//     background, and its result still lands in the cache — so an
//     abandoned exact evaluation warms the cache for the next request.
//     The abandonment is recorded in the engine.evals.abandoned counter
//     and a deadline_exceeded span attribute.
//
// The cache key is unchanged by ctx: contexts never alter the returned
// bits, only how long the caller is willing to wait for them.
func (e *Engine) EvaluateWithCtx(ctx context.Context, inst Instance, r Rule, backend Backend, simCfg sim.Config) (Result, error) {
	if r == nil {
		return Result{}, fmt.Errorf("engine: nil rule")
	}
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	resolved, err := e.resolve(r, backend)
	if err != nil {
		return Result{}, err
	}
	if simCfg.Trials <= 0 {
		simCfg = e.simCfg
	}
	key := inst.Key() + "|r=" + r.Fingerprint() + "|b=" + resolved.String()
	switch resolved {
	case MonteCarlo:
		key += "|t=" + strconv.Itoa(simCfg.Trials) +
			",s=" + strconv.FormatUint(simCfg.Seed, 10) +
			",w=" + strconv.Itoa(simCfg.Workers)
	case MonteCarloQMC:
		// Replicates are striped deterministically, so Workers never
		// changes the returned bits and stays out of the key.
		key += "|t=" + strconv.Itoa(simCfg.Trials) +
			",s=" + strconv.FormatUint(simCfg.Seed, 10) +
			",r=" + strconv.Itoa(simCfg.Replicates)
	}

	slot, ok := e.store.Acquire(key)
	joined := ok && !slot.Done()

	var sp *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp = parent.Child("engine.evaluate")
		sp.SetField("rule", r.Name())
		sp.SetField("backend", resolved.String())
		ctx = obs.ContextWithSpan(ctx, sp)
		defer sp.End()
	}

	computed := false
	work := func() {
		slot.Fill(func() (store.Value, error) {
			computed = true
			e.obs.Counter("engine.cache.misses").Inc()
			res, err := e.compute(ctx, inst, r, resolved, simCfg)
			if err != nil {
				return store.Value{}, err
			}
			return store.Value{P: res.P, StdErr: res.StdErr, Backend: res.Backend.String(), Sim: res.Sim}, nil
		})
	}
	if ctx.Done() == nil || slot.Done() {
		// No deadline to watch (or the slot is already warm, so Fill
		// returns without blocking): run inline, no goroutine overhead.
		work()
	} else {
		finished := make(chan struct{})
		go func() {
			work()
			close(finished)
		}()
		select {
		case <-finished:
		case <-ctx.Done():
			sp.SetAttr("deadline_exceeded", 1)
			e.obs.Counter("engine.evals.abandoned").Inc()
			return Result{}, ctx.Err()
		}
	}
	val, err := slot.Result()
	if err != nil {
		return Result{}, err
	}
	res, err := resultFromValue(val)
	if err != nil {
		return Result{}, err
	}
	if !computed {
		// A slot filled from the disk tier counts as a cache hit: the
		// value was served from the store, not recomputed — no backend
		// ran, no engine.evals.* counter moved.
		if joined {
			e.obs.Counter("engine.cache.coalesced").Inc()
		}
		e.obs.Counter("engine.cache.hits").Inc()
		res.Cached = true
		sp.SetAttr("cached", 1)
		if slot.FromDisk() {
			sp.SetAttr("store.fill", 1)
		}
	}
	return res, nil
}

// resultFromValue rehydrates an engine Result from its store encoding,
// copying the Sim payload so callers can never alias the cached value.
func resultFromValue(v store.Value) (Result, error) {
	b, err := ParseBackend(v.Backend)
	if err != nil {
		return Result{}, fmt.Errorf("engine: cached value from incompatible store: %w", err)
	}
	res := Result{P: v.P, StdErr: v.StdErr, Backend: b}
	if v.Sim != nil {
		cp := *v.Sim
		res.Sim = &cp
	}
	return res, nil
}

// resolve maps Auto onto a concrete backend and rejects impossible
// requests early (Exact on a rule without an exact oracle).
func (e *Engine) resolve(r Rule, backend Backend) (Backend, error) {
	switch backend {
	case Exact:
		if _, ok := r.(ExactEvaluator); !ok {
			return 0, fmt.Errorf("engine: rule %s has no exact evaluator", r.Name())
		}
		return Exact, nil
	case MonteCarlo:
		return MonteCarlo, nil
	case MonteCarloQMC:
		if _, ok := r.(Simulator); ok {
			return 0, fmt.Errorf("engine: rule %s has a bespoke simulator; mc-qmc needs a local-rule system", r.Name())
		}
		return MonteCarloQMC, nil
	case Auto:
		if _, ok := r.(ExactEvaluator); ok {
			return Exact, nil
		}
		return MonteCarlo, nil
	default:
		return 0, fmt.Errorf("engine: unknown backend %d", int(backend))
	}
}

// compute runs one uncached evaluation on the resolved backend. When ctx
// carries an obs span (the engine.evaluate span of the caller that won the
// singleflight race) the computation runs under a backend.exact /
// backend.mc child span.
func (e *Engine) compute(ctx context.Context, inst Instance, r Rule, backend Backend, simCfg sim.Config) (Result, error) {
	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp := parent.Child("backend." + backend.String())
		defer sp.End()
	}
	switch backend {
	case Exact:
		e.obs.Counter("engine.evals.exact").Inc()
		if res, ok, err := e.overriddenExact(ctx, inst, r); ok {
			if err != nil {
				return Result{}, err
			}
			return res, nil
		}
		var p float64
		var err error
		if ro, ok := r.(ExactOpts); ok {
			// Clamp to the shard grid: combin.ChunkedMaskSum splits every
			// enumeration into 64 chunks, so more workers would sit idle.
			workers, werr := sim.WorkerCount(e.exactWorkers, 64)
			if werr != nil {
				return Result{}, werr
			}
			p, err = ro.ExactWinProbabilityOpts(inst, workers, e.obs)
		} else {
			p, err = r.(ExactEvaluator).ExactWinProbability(inst)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{P: p, Backend: Exact}, nil
	case MonteCarlo:
		e.obs.Counter("engine.evals.mc").Inc()
		res, err := e.simulate(inst, r, simCfg)
		if err != nil {
			return Result{}, err
		}
		return Result{P: res.P, StdErr: res.StdErr, Backend: MonteCarlo, Sim: &res}, nil
	case MonteCarloQMC:
		e.obs.Counter("engine.evals.mc_qmc").Inc()
		sys, err := r.System(inst)
		if err != nil {
			return Result{}, err
		}
		res, err := sim.WinProbabilityQMC(sys, simCfg)
		if err != nil {
			return Result{}, err
		}
		return Result{P: res.P, StdErr: res.StdErr, Backend: MonteCarloQMC, Sim: &res}, nil
	default:
		return Result{}, fmt.Errorf("engine: unresolved backend %v", backend)
	}
}

// simulate runs the Monte-Carlo backend: rules with their own simulator
// (protocols whose trial logic cannot be expressed as per-player local
// rules) take precedence; everything else builds a model.System and runs
// through sim.WinProbability — bit-identical to calling the simulator
// directly.
func (e *Engine) simulate(inst Instance, r Rule, simCfg sim.Config) (sim.Result, error) {
	if s, ok := r.(Simulator); ok {
		return s.Simulate(inst, simCfg)
	}
	sys, err := r.System(inst)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.WinProbability(sys, simCfg)
}
