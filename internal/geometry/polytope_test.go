package geometry

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewSimplexValidation(t *testing.T) {
	if _, err := NewSimplex(nil); err == nil {
		t.Error("empty sides: expected error")
	}
	if _, err := NewSimplex([]float64{1, 0}); err == nil {
		t.Error("zero side: expected error")
	}
	if _, err := NewSimplex([]float64{1, -2}); err == nil {
		t.Error("negative side: expected error")
	}
	if _, err := NewSimplex([]float64{math.NaN()}); err == nil {
		t.Error("NaN side: expected error")
	}
	if _, err := NewSimplex([]float64{math.Inf(1)}); err == nil {
		t.Error("infinite side: expected error")
	}
}

func TestSimplexVolumeAndContains(t *testing.T) {
	s, err := NewSimplex([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 3 {
		t.Errorf("Dim = %d, want 3", s.Dim())
	}
	if got := s.Volume(); math.Abs(got-1.0/6) > 1e-15 {
		t.Errorf("unit simplex volume = %v, want 1/6", got)
	}
	s2, err := NewSimplex([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Volume(); math.Abs(got-3) > 1e-15 {
		t.Errorf("simplex(2,3) volume = %v, want 3", got)
	}
	in, err := s.Contains([]float64{0.2, 0.3, 0.4})
	if err != nil || !in {
		t.Errorf("point inside reported outside (err=%v)", err)
	}
	in, err = s.Contains([]float64{0.5, 0.5, 0.5})
	if err != nil || in {
		t.Errorf("point outside reported inside (err=%v)", err)
	}
	in, err = s.Contains([]float64{-0.1, 0.1, 0.1})
	if err != nil || in {
		t.Errorf("negative point reported inside (err=%v)", err)
	}
	if _, err := s.Contains([]float64{0.1}); err == nil {
		t.Error("dimension mismatch: expected error")
	}
	sides := s.Sides()
	sides[0] = 99
	if s.sides[0] == 99 {
		t.Error("Sides() leaked internal slice")
	}
}

func TestNewBoxValidationAndBasics(t *testing.T) {
	if _, err := NewBox(nil); err == nil {
		t.Error("empty sides: expected error")
	}
	if _, err := NewBox([]float64{0.5, -1}); err == nil {
		t.Error("negative side: expected error")
	}
	b, err := NewBox([]float64{2, 0.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim() != 3 {
		t.Errorf("Dim = %d", b.Dim())
	}
	if got := b.Volume(); math.Abs(got-3) > 1e-15 {
		t.Errorf("box volume = %v, want 3", got)
	}
	in, err := b.Contains([]float64{1.9, 0.5, 0})
	if err != nil || !in {
		t.Errorf("corner point should be inside (err=%v)", err)
	}
	in, err = b.Contains([]float64{2.1, 0.1, 0.1})
	if err != nil || in {
		t.Errorf("outside point reported inside (err=%v)", err)
	}
	if _, err := b.Contains([]float64{1}); err == nil {
		t.Error("dimension mismatch: expected error")
	}
	sides := b.Sides()
	sides[0] = 99
	if b.sides[0] == 99 {
		t.Error("Sides() leaked internal slice")
	}
}

func mustSimplex(t *testing.T, sides ...float64) *Simplex {
	t.Helper()
	s, err := NewSimplex(sides)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustBox(t *testing.T, sides ...float64) *Box {
	t.Helper()
	b, err := NewBox(sides)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewSimplexBoxIntersectionValidation(t *testing.T) {
	s := mustSimplex(t, 1, 1)
	b := mustBox(t, 1, 1, 1)
	if _, err := NewSimplexBoxIntersection(s, b); err == nil {
		t.Error("dimension mismatch: expected error")
	}
	if _, err := NewSimplexBoxIntersection(nil, b); err == nil {
		t.Error("nil simplex: expected error")
	}
	if _, err := NewSimplexBoxIntersection(s, nil); err == nil {
		t.Error("nil box: expected error")
	}
}

func TestIntersectionVolumeBoxInsideSimplex(t *testing.T) {
	// Tiny box fully inside a big simplex: volume is the box volume.
	s := mustSimplex(t, 100, 100, 100)
	b := mustBox(t, 0.5, 0.5, 0.5)
	p, err := NewSimplexBoxIntersection(s, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Volume()
	if err != nil {
		t.Fatal(err)
	}
	// Proposition 2.2 is ill-conditioned in float64 when the box is much
	// smaller than the simplex (terms near 1 scaled by Πσ/m! ≈ 1.7e5), so
	// only ~1e-10 absolute accuracy is achievable here; VolumeRat is exact.
	if math.Abs(got-0.125) > 1e-9 {
		t.Errorf("volume = %v, want 0.125 (box inside simplex)", got)
	}
	sigma := []*big.Rat{big.NewRat(100, 1), big.NewRat(100, 1), big.NewRat(100, 1)}
	pi := []*big.Rat{big.NewRat(1, 2), big.NewRat(1, 2), big.NewRat(1, 2)}
	exact, err := VolumeRat(sigma, pi)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cmp(big.NewRat(1, 8)) != 0 {
		t.Errorf("exact volume = %v, want exactly 1/8", exact)
	}
}

func TestIntersectionVolumeSimplexInsideBox(t *testing.T) {
	// Simplex fully inside the box: volume is the simplex volume.
	s := mustSimplex(t, 0.5, 0.5)
	b := mustBox(t, 1, 1)
	p, err := NewSimplexBoxIntersection(s, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.125) > 1e-12 {
		t.Errorf("volume = %v, want 0.125 (simplex volume)", got)
	}
}

func TestIntersectionVolumeIrwinHallHalf(t *testing.T) {
	// Vol({x ∈ [0,1]^2 : x1 + x2 ≤ 1}) = 1/2; with threshold 1.5 it is
	// 1 - 2·(0.5²/2) = 0.875.
	b := mustBox(t, 1, 1)
	p1, err := NewSimplexBoxIntersection(mustSimplex(t, 1, 1), b)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := p1.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-0.5) > 1e-14 {
		t.Errorf("unit triangle volume = %v, want 0.5", v1)
	}
	p2, err := NewSimplexBoxIntersection(mustSimplex(t, 1.5, 1.5), b)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p2.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v2-0.875) > 1e-14 {
		t.Errorf("t=1.5 volume = %v, want 0.875", v2)
	}
}

func TestIntersectionVolumeDimensionLimit(t *testing.T) {
	sides := make([]float64, 31)
	for i := range sides {
		sides[i] = 1
	}
	p, err := NewSimplexBoxIntersection(mustSimplex(t, sides...), mustBox(t, sides...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Volume(); err == nil {
		t.Error("dimension 31: expected error from Volume")
	}
}

func TestIntersectionContains(t *testing.T) {
	p, err := NewSimplexBoxIntersection(mustSimplex(t, 1, 1), mustBox(t, 0.6, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 2 {
		t.Errorf("Dim = %d", p.Dim())
	}
	cases := []struct {
		pt   []float64
		want bool
	}{
		{[]float64{0.3, 0.3}, true},
		{[]float64{0.7, 0.1}, false},   // outside box
		{[]float64{0.55, 0.55}, false}, // outside simplex
		{[]float64{0, 0}, true},
	}
	for _, c := range cases {
		got, err := p.Contains(c.pt)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.pt, got, c.want)
		}
	}
	if _, err := p.Contains([]float64{0.1}); err == nil {
		t.Error("dimension mismatch: expected error")
	}
}

func TestVolumeRatMatchesFloat(t *testing.T) {
	sigma := []*big.Rat{big.NewRat(3, 2), big.NewRat(3, 2), big.NewRat(3, 2)}
	pi := []*big.Rat{big.NewRat(1, 1), big.NewRat(1, 1), big.NewRat(1, 1)}
	exact, err := VolumeRat(sigma, pi)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSimplexBoxIntersection(mustSimplex(t, 1.5, 1.5, 1.5), mustBox(t, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := p.Volume()
	if err != nil {
		t.Fatal(err)
	}
	ef, _ := exact.Float64()
	if math.Abs(approx-ef) > 1e-12 {
		t.Errorf("float volume %v != exact %v", approx, ef)
	}
}

func TestVolumeRatValidation(t *testing.T) {
	one := big.NewRat(1, 1)
	if _, err := VolumeRat(nil, nil); err == nil {
		t.Error("empty vectors: expected error")
	}
	if _, err := VolumeRat([]*big.Rat{one}, []*big.Rat{one, one}); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := VolumeRat([]*big.Rat{big.NewRat(0, 1)}, []*big.Rat{one}); err == nil {
		t.Error("zero sigma: expected error")
	}
	if _, err := VolumeRat([]*big.Rat{one}, []*big.Rat{nil}); err == nil {
		t.Error("nil pi: expected error")
	}
	big25 := make([]*big.Rat, 25)
	for i := range big25 {
		big25[i] = one
	}
	if _, err := VolumeRat(big25, big25); err == nil {
		t.Error("dimension 25: expected error")
	}
}

func TestVolumeAgainstMonteCarlo(t *testing.T) {
	// Random-ish asymmetric instance cross-checked by rejection sampling.
	s := mustSimplex(t, 1.2, 0.9, 1.7)
	b := mustBox(t, 0.8, 0.6, 1.0)
	p, err := NewSimplexBoxIntersection(s, b)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := p.Volume()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(42, 43))
	est, err := EstimateVolume(p, b, 400000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(est.Volume - exact); diff > 5*est.StdErr+1e-9 {
		t.Errorf("MC volume %v ± %v vs exact %v (diff %v)", est.Volume, est.StdErr, exact, diff)
	}
}

func TestEstimateVolumeValidation(t *testing.T) {
	s := mustSimplex(t, 1, 1)
	b := mustBox(t, 1, 1)
	p, err := NewSimplexBoxIntersection(s, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateVolume(nil, b, 100, nil); err == nil {
		t.Error("nil region: expected error")
	}
	if _, err := EstimateVolume(p, nil, 100, nil); err == nil {
		t.Error("nil box: expected error")
	}
	if _, err := EstimateVolume(p, b, 0, nil); err == nil {
		t.Error("zero samples: expected error")
	}
	if _, err := EstimateVolume(p, mustBox(t, 1, 1, 1), 100, nil); err == nil {
		t.Error("dimension mismatch: expected error")
	}
	// nil rng must be accepted (deterministic default stream).
	est, err := EstimateVolume(p, b, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 1000 || est.Volume < 0 || est.Volume > 1 {
		t.Errorf("estimate = %+v out of expected range", est)
	}
}

func TestVolumeMonotoneInBoxProperty(t *testing.T) {
	// Property: growing the box never decreases the intersection volume.
	f := func(a, b, c, d uint8) bool {
		s1 := 0.2 + float64(a%50)/25
		s2 := 0.2 + float64(b%50)/25
		p1 := 0.05 + float64(c%40)/40
		p2 := 0.05 + float64(d%40)/40
		simplex, err := NewSimplex([]float64{s1, s2})
		if err != nil {
			return false
		}
		small, err := NewBox([]float64{p1, p2})
		if err != nil {
			return false
		}
		large, err := NewBox([]float64{p1 * 1.5, p2 * 1.5})
		if err != nil {
			return false
		}
		ps, err := NewSimplexBoxIntersection(simplex, small)
		if err != nil {
			return false
		}
		pl, err := NewSimplexBoxIntersection(simplex, large)
		if err != nil {
			return false
		}
		vs, err := ps.Volume()
		if err != nil {
			return false
		}
		vl, err := pl.Volume()
		if err != nil {
			return false
		}
		return vl >= vs-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVolumeBoundedBySimplexAndBoxProperty(t *testing.T) {
	f := func(a, b, c, d, e, g uint8) bool {
		sides := []float64{0.1 + float64(a)/128, 0.1 + float64(b)/128, 0.1 + float64(c)/128}
		box := []float64{0.1 + float64(d)/128, 0.1 + float64(e)/128, 0.1 + float64(g)/128}
		s, err := NewSimplex(sides)
		if err != nil {
			return false
		}
		bx, err := NewBox(box)
		if err != nil {
			return false
		}
		p, err := NewSimplexBoxIntersection(s, bx)
		if err != nil {
			return false
		}
		v, err := p.Volume()
		if err != nil {
			return false
		}
		return v >= -1e-12 && v <= s.Volume()+1e-12 && v <= bx.Volume()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
