package geometry

import (
	"math"
	"math/big"

	"repro/internal/combin"
)

// signedGuardedPowerSum computes Σ_{I ⊆ {0..m-1}, Σ_{l∈I} w_l < limit}
// (-1)^|I| (limit - Σ_{l∈I} w_l)^m using a Gray-code walk so that each
// subset sum is maintained incrementally in O(1).
func signedGuardedPowerSum(m int, weights []float64, limit float64) (float64, error) {
	var acc combin.Accumulator
	var running float64
	err := combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running += weights[flipped]
			} else {
				running -= weights[flipped]
			}
		}
		rem := limit - running
		if rem <= 0 {
			return true
		}
		v := math.Pow(rem, float64(m))
		if combin.Popcount(mask)%2 == 1 {
			v = -v
		}
		acc.Add(v)
		return true
	})
	if err != nil {
		return 0, err
	}
	return acc.Sum(), nil
}

// signedGuardedPowerSumRat is the exact rational analogue of
// signedGuardedPowerSum.
func signedGuardedPowerSumRat(m int, weights []*big.Rat, limit *big.Rat) (*big.Rat, error) {
	total := new(big.Rat)
	running := new(big.Rat)
	rem := new(big.Rat)
	err := combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running.Add(running, weights[flipped])
			} else {
				running.Sub(running, weights[flipped])
			}
		}
		rem.Sub(limit, running)
		if rem.Sign() <= 0 {
			return true
		}
		term := ratPow(rem, m)
		if combin.Popcount(mask)%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

func ratPow(r *big.Rat, n int) *big.Rat {
	out := big.NewRat(1, 1)
	base := new(big.Rat).Set(r)
	for n > 0 {
		if n&1 == 1 {
			out.Mul(out, base)
		}
		base.Mul(base, base)
		n >>= 1
	}
	return out
}
