package geometry

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// ContainmentRegion is any region of R^m with a membership test; both the
// polytopes of this package and arbitrary test regions satisfy it.
type ContainmentRegion interface {
	Dim() int
	Contains(x []float64) (bool, error)
}

// Compile-time interface compliance checks.
var (
	_ ContainmentRegion = (*Simplex)(nil)
	_ ContainmentRegion = (*Box)(nil)
	_ ContainmentRegion = (*SimplexBoxIntersection)(nil)
)

// VolumeEstimate is a Monte-Carlo volume estimate with a standard error.
type VolumeEstimate struct {
	// Volume is the point estimate.
	Volume float64
	// StdErr is the standard error of the estimate.
	StdErr float64
	// Samples is the number of points drawn.
	Samples int
}

// EstimateVolume estimates the volume of region by rejection sampling
// inside the bounding box: it draws samples uniform points in box and
// multiplies the hit fraction by the box volume. The region must be a
// subset of the box for the estimate to be unbiased. A nil rng seeds a
// deterministic PCG stream.
func EstimateVolume(region ContainmentRegion, box *Box, samples int, rng *rand.Rand) (VolumeEstimate, error) {
	if region == nil || box == nil {
		return VolumeEstimate{}, fmt.Errorf("geometry: nil region or bounding box")
	}
	if region.Dim() != box.Dim() {
		return VolumeEstimate{}, fmt.Errorf("geometry: region dimension %d != box dimension %d", region.Dim(), box.Dim())
	}
	if samples <= 0 {
		return VolumeEstimate{}, fmt.Errorf("geometry: sample count %d must be positive", samples)
	}
	if rng == nil {
		rng = rand.New(rand.NewPCG(0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9))
	}
	point := make([]float64, box.Dim())
	hits := 0
	for s := 0; s < samples; s++ {
		for i := range point {
			point[i] = rng.Float64() * box.sides[i]
		}
		in, err := region.Contains(point)
		if err != nil {
			return VolumeEstimate{}, fmt.Errorf("geometry: membership test failed: %w", err)
		}
		if in {
			hits++
		}
	}
	p := float64(hits) / float64(samples)
	bv := box.Volume()
	se := bv * math.Sqrt(p*(1-p)/float64(samples))
	return VolumeEstimate{Volume: bv * p, StdErr: se, Samples: samples}, nil
}
