// Package geometry implements the polytopes of Section 2.1 of the paper and
// their volumes.
//
// The paper's combinatorial cornerstone (Proposition 2.2) is an explicit
// inclusion-exclusion formula for the volume of
//
//	ΣΠ^(m)(σ, π) = Σ^(m)(σ) ∩ Π^(m)(π),
//
// the intersection of the m-dimensional orthogonal simplex
// Σ^(m)(σ) = {x ∈ R₊^m : Σ x_l/σ_l ≤ 1} with the axis-aligned box
// Π^(m)(π) = [0,π₁] × ... × [0,π_m]:
//
//	Vol(ΣΠ) = (1/m!) Π σ_l · Σ_{I : Σ_{l∈I} π_l/σ_l < 1} (-1)^|I| (1 - Σ_{l∈I} π_l/σ_l)^m.
//
// This volume is what turns into the probability that a sum of independent
// uniform random variables stays below a capacity threshold (Lemmas 2.4 and
// 2.7), which in turn is the building block of both winning-probability
// theorems (4.1 and 5.1).
//
// Volumes are available in float64 (compensated summation) and in exact
// rational arithmetic, plus a Monte-Carlo estimator used as an independent
// oracle in tests.
package geometry
