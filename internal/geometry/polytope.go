package geometry

import (
	"fmt"
	"math/big"
)

// Simplex is the m-dimensional orthogonal simplex Σ^(m)(σ) of the paper:
// the set of non-negative points x with Σ x_l/σ_l ≤ 1. All orthogonal side
// lengths σ_l must be strictly positive.
type Simplex struct {
	sides []float64
}

// NewSimplex constructs Σ^(m)(σ). It returns an error if fewer than one
// side is given or any side is not strictly positive and finite.
func NewSimplex(sides []float64) (*Simplex, error) {
	if len(sides) == 0 {
		return nil, fmt.Errorf("geometry: simplex needs at least one side")
	}
	cp := make([]float64, len(sides))
	for i, s := range sides {
		if !(s > 0) || s > maxSide {
			return nil, fmt.Errorf("geometry: simplex side %d = %v must be in (0, %g]", i, s, maxSide)
		}
		cp[i] = s
	}
	return &Simplex{sides: cp}, nil
}

const maxSide = 1e300

// Dim returns the dimension m.
func (s *Simplex) Dim() int { return len(s.sides) }

// Sides returns a copy of the orthogonal side lengths.
func (s *Simplex) Sides() []float64 {
	out := make([]float64, len(s.sides))
	copy(out, s.sides)
	return out
}

// Contains reports whether x lies in the simplex. It returns an error if
// the dimension of x does not match.
func (s *Simplex) Contains(x []float64) (bool, error) {
	if len(x) != len(s.sides) {
		return false, fmt.Errorf("geometry: point dimension %d, simplex dimension %d", len(x), len(s.sides))
	}
	var sum float64
	for i, xi := range x {
		if xi < 0 {
			return false, nil
		}
		sum += xi / s.sides[i]
	}
	return sum <= 1, nil
}

// Volume returns Vol(Σ^(m)(σ)) = (1/m!) Π σ_l (Lemma 2.1(1)).
func (s *Simplex) Volume() float64 {
	v := 1.0
	for i, side := range s.sides {
		v *= side / float64(i+1)
	}
	return v
}

// Box is the m-dimensional axis-aligned box Π^(m)(π) = Π_l [0, π_l].
type Box struct {
	sides []float64
}

// NewBox constructs Π^(m)(π). It returns an error if fewer than one side is
// given or any side is not strictly positive and finite.
func NewBox(sides []float64) (*Box, error) {
	if len(sides) == 0 {
		return nil, fmt.Errorf("geometry: box needs at least one side")
	}
	cp := make([]float64, len(sides))
	for i, s := range sides {
		if !(s > 0) || s > maxSide {
			return nil, fmt.Errorf("geometry: box side %d = %v must be in (0, %g]", i, s, maxSide)
		}
		cp[i] = s
	}
	return &Box{sides: cp}, nil
}

// Dim returns the dimension m.
func (b *Box) Dim() int { return len(b.sides) }

// Sides returns a copy of the side lengths.
func (b *Box) Sides() []float64 {
	out := make([]float64, len(b.sides))
	copy(out, b.sides)
	return out
}

// Contains reports whether x lies in the box. It returns an error if the
// dimension of x does not match.
func (b *Box) Contains(x []float64) (bool, error) {
	if len(x) != len(b.sides) {
		return false, fmt.Errorf("geometry: point dimension %d, box dimension %d", len(x), len(b.sides))
	}
	for i, xi := range x {
		if xi < 0 || xi > b.sides[i] {
			return false, nil
		}
	}
	return true, nil
}

// Volume returns Vol(Π^(m)(π)) = Π π_l (Lemma 2.1(2)).
func (b *Box) Volume() float64 {
	v := 1.0
	for _, side := range b.sides {
		v *= side
	}
	return v
}

// SimplexBoxIntersection is the polytope ΣΠ^(m)(σ, π) of Proposition 2.2:
// the intersection of a simplex and a box of the same dimension.
type SimplexBoxIntersection struct {
	simplex *Simplex
	box     *Box
}

// NewSimplexBoxIntersection constructs ΣΠ^(m)(σ, π). It returns an error
// if the two polytopes have different dimensions.
func NewSimplexBoxIntersection(simplex *Simplex, box *Box) (*SimplexBoxIntersection, error) {
	if simplex == nil || box == nil {
		return nil, fmt.Errorf("geometry: nil simplex or box")
	}
	if simplex.Dim() != box.Dim() {
		return nil, fmt.Errorf("geometry: simplex dimension %d != box dimension %d", simplex.Dim(), box.Dim())
	}
	return &SimplexBoxIntersection{simplex: simplex, box: box}, nil
}

// Dim returns the dimension m.
func (p *SimplexBoxIntersection) Dim() int { return p.simplex.Dim() }

// Contains reports whether x lies in the intersection.
func (p *SimplexBoxIntersection) Contains(x []float64) (bool, error) {
	inS, err := p.simplex.Contains(x)
	if err != nil {
		return false, err
	}
	if !inS {
		return false, nil
	}
	return p.box.Contains(x)
}

// Volume evaluates the inclusion-exclusion formula of Proposition 2.2 in
// float64 with compensated summation:
//
//	Vol = (1/m!) Π σ_l · Σ_{I : Σ_{l∈I} π_l/σ_l < 1} (-1)^|I| (1 - Σ_{l∈I} π_l/σ_l)^m.
//
// The subset sum has 2^m terms; m is limited to 30 to keep evaluation
// tractable (the probabilistic applications in this reproduction use much
// smaller m).
func (p *SimplexBoxIntersection) Volume() (float64, error) {
	m := p.Dim()
	if m > 30 {
		return 0, fmt.Errorf("geometry: exact inclusion-exclusion volume limited to dimension 30, got %d", m)
	}
	ratios := make([]float64, m)
	for i := range ratios {
		ratios[i] = p.box.sides[i] / p.simplex.sides[i]
	}
	sum, err := signedGuardedPowerSum(m, ratios, 1)
	if err != nil {
		return 0, err
	}
	return p.simplex.Volume() * sum, nil
}

// VolumeRat evaluates Proposition 2.2 exactly for rational side vectors.
// sigma and pi must have equal positive length and strictly positive
// entries.
func VolumeRat(sigma, pi []*big.Rat) (*big.Rat, error) {
	m := len(sigma)
	if m == 0 || len(pi) != m {
		return nil, fmt.Errorf("geometry: side vectors must have equal positive length (%d vs %d)", m, len(pi))
	}
	if m > 24 {
		return nil, fmt.Errorf("geometry: exact rational volume limited to dimension 24, got %d", m)
	}
	for i := 0; i < m; i++ {
		if sigma[i] == nil || pi[i] == nil || sigma[i].Sign() <= 0 || pi[i].Sign() <= 0 {
			return nil, fmt.Errorf("geometry: side %d must be strictly positive", i)
		}
	}
	ratios := make([]*big.Rat, m)
	for i := 0; i < m; i++ {
		ratios[i] = new(big.Rat).Quo(pi[i], sigma[i])
	}
	one := big.NewRat(1, 1)
	sum, err := signedGuardedPowerSumRat(m, ratios, one)
	if err != nil {
		return nil, err
	}
	// Prefactor (1/m!) Π σ_l.
	pre := big.NewRat(1, 1)
	for i := 0; i < m; i++ {
		pre.Mul(pre, sigma[i])
		pre.Mul(pre, big.NewRat(1, int64(i+1)))
	}
	return pre.Mul(pre, sum), nil
}
