package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Options configures New.
type Options struct {
	// MaxEntries bounds the memory tier: once exceeded, the least
	// recently used completed slots are evicted (store.evictions).
	// 0 means unbounded — the engine's original behavior.
	MaxEntries int
	// Dir enables the disk tier in this directory (created on open).
	// Empty keeps the store memory-only.
	Dir string
	// Obs optionally counts store.evictions plus the disk tier's
	// store.disk.hits / store.disk.misses / store.disk.writes /
	// store.corrupt.
	Obs *obs.Observer
}

// New opens a store: a memory tier, layered over a disk tier when
// Options.Dir is set.
func New(opts Options) (Store, error) {
	m := &Memory{
		max:   opts.MaxEntries,
		obs:   opts.Obs,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
	if opts.Dir != "" {
		d, err := OpenDisk(opts.Dir, opts.Obs)
		if err != nil {
			return nil, err
		}
		m.disk = d
	}
	return m, nil
}

// NewMemory builds a memory-only store (never fails: there is no disk
// tier to open). This is the engine's default.
func NewMemory(opts Options) *Memory {
	return &Memory{
		max:   opts.MaxEntries,
		obs:   opts.Obs,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// Memory is the memory tier: a singleflight slot per key with LRU
// eviction, optionally layered over a disk tier. Safe for concurrent
// use.
type Memory struct {
	max  int
	obs  *obs.Observer
	disk *Disk

	mu        sync.Mutex
	index     map[string]*list.Element
	lru       *list.List // front = most recently used; holds *lruEntry
	evictions atomic.Int64
}

// lruEntry is one LRU node: the key alongside its slot, so eviction can
// delete from the index without a reverse lookup.
type lruEntry struct {
	key  string
	slot *Slot
}

// Acquire implements Store. An existing slot is refreshed to the LRU
// front; a new slot may push the least recently used completed slots
// out (in-flight slots are skipped — evicting them would sever the
// abandoned-computation-warms-cache path).
func (m *Memory) Acquire(key string) (*Slot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.index[key]; ok {
		m.lru.MoveToFront(el)
		return el.Value.(*lruEntry).slot, true
	}
	slot := &Slot{key: key, disk: m.disk}
	m.index[key] = m.lru.PushFront(&lruEntry{key: key, slot: slot})
	m.evict()
	return slot, false
}

// evict trims completed slots from the LRU tail until the bound holds.
// Called with mu held. The store may transiently exceed the bound when
// every overflow candidate is still in flight.
func (m *Memory) evict() {
	if m.max <= 0 {
		return
	}
	for el := m.lru.Back(); el != nil && len(m.index) > m.max; {
		prev := el.Prev()
		if le := el.Value.(*lruEntry); le.slot.Done() {
			m.lru.Remove(el)
			delete(m.index, le.key)
			m.evictions.Add(1)
			m.obs.Counter("store.evictions").Inc()
		}
		el = prev
	}
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.index)
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	entries := len(m.index)
	m.mu.Unlock()
	st := Stats{Entries: entries, MaxEntries: m.max, Evictions: m.evictions.Load()}
	if m.disk != nil {
		d := m.disk.Stats()
		st.Disk = &d
	}
	return st
}

// Disk returns the disk tier, nil when memory-only.
func (m *Memory) Disk() *Disk { return m.disk }

// Close implements Store.
func (m *Memory) Close() error {
	if m.disk != nil {
		return m.disk.Close()
	}
	return nil
}
