package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// FuzzDecodeEntry feeds arbitrary bytes to the entry decoder: it must
// never panic, and it must never accept bytes whose checksum does not
// cover the payload it returns. Seeds cover a valid entry plus each
// header field mutated.
func FuzzDecodeEntry(f *testing.F) {
	valid, err := EncodeEntry("seed|key", Value{P: 0.5, Backend: "exact"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("NCSE"))
	short := append([]byte(nil), valid[:headerSize]...)
	f.Add(short)
	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVersion[4:8], 2)
	f.Add(badVersion)
	badLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(badLen[8:16], 1<<40)
	f.Add(badLen)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeEntry(data, "seed|key")
		if err != nil {
			return
		}
		// Anything the decoder accepts must be a structurally complete
		// entry: header plus the declared payload.
		if len(data) < headerSize {
			t.Fatalf("accepted %d bytes, below the header size", len(data))
		}
		_ = v
	})
}

// FuzzDiskGet plants arbitrary bytes at a key's content address and
// checks the full lookup path: never a panic, never a served value, and
// the junk is quarantined and counted as store.corrupt. (A fuzz input
// that happens to be the key's one valid encoding is unreachable: the
// checksummed payload must name the exact key.)
func FuzzDiskGet(f *testing.F) {
	valid, err := EncodeEntry("fuzz|key", Value{P: 0.25, Backend: "exact"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("garbage"))
	f.Add(valid[:headerSize])
	mangled := append([]byte(nil), valid...)
	mangled[headerSize] ^= 0xFF
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		reg := obs.NewRegistry()
		d, err := OpenDisk(t.TempDir(), obs.New(reg, nil))
		if err != nil {
			t.Fatal(err)
		}
		path := d.path("fuzz|key")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if v, ok := d.Get("fuzz|key"); ok {
			// Only the bit-exact valid encoding may be served.
			if v.P != 0.25 || v.Backend != "exact" {
				t.Fatalf("served a mangled value: %+v", v)
			}
			return
		}
		if got := reg.Counter("store.corrupt").Value(); got != 1 {
			t.Fatalf("store.corrupt = %d, want 1", got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatal("rejected entry still addressable")
		}
		if _, err := os.Stat(filepath.Join(d.Dir(), corruptDir)); err != nil {
			t.Fatalf("no quarantine directory: %v", err)
		}
	})
}
