package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestMemorySingleflight checks the slot coalescing contract the engine
// depends on: concurrent fills of one key run the compute exactly once,
// and every caller observes the same bits.
func TestMemorySingleflight(t *testing.T) {
	m := NewMemory(Options{})
	var computes atomic.Int64
	const goroutines = 16
	var wg sync.WaitGroup
	vals := make([]Value, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			slot, _ := m.Acquire("k")
			slot.Fill(func() (Value, error) {
				computes.Add(1)
				return Value{P: 0.25, Backend: "exact"}, nil
			})
			vals[g], _ = slot.Result()
		}(g)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for g, v := range vals {
		if v.P != 0.25 || v.Backend != "exact" {
			t.Errorf("goroutine %d saw %+v", g, v)
		}
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

// TestFillError checks that a failed fill is cached (the engine's
// original behavior: the error sticks to the slot) and never written
// through to disk.
func TestFillError(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	slot, _ := s.Acquire("bad")
	slot.Fill(func() (Value, error) {
		return Value{}, os.ErrInvalid
	})
	if _, err := slot.Result(); err == nil {
		t.Fatal("error not cached in slot")
	}
	if st := s.Stats(); st.Disk.Entries != 0 {
		t.Errorf("failed fill wrote %d disk entries", st.Disk.Entries)
	}
}

// TestLRUEviction checks the memory bound: completed slots are evicted
// least-recently-used first, the store.evictions counter counts them,
// and an evicted key is recomputed on next acquire.
func TestLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMemory(Options{MaxEntries: 2, Obs: obs.New(reg, nil)})
	fill := func(key string, p float64) {
		slot, _ := m.Acquire(key)
		slot.Fill(func() (Value, error) { return Value{P: p}, nil })
	}
	fill("a", 1)
	fill("b", 2)
	// Refresh "a" so "b" is the LRU victim.
	if _, ok := m.Acquire("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	fill("c", 3)
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	// Probe the index directly: Acquire would itself insert (and evict).
	resident := func(key string) bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		_, ok := m.index[key]
		return ok
	}
	if resident("b") {
		t.Error("LRU victim b still resident")
	}
	if !resident("a") {
		t.Error("recently used a was evicted")
	}
	if got := reg.Counter("store.evictions").Value(); got < 1 {
		t.Errorf("store.evictions = %d, want ≥ 1", got)
	}
	if st := m.Stats(); st.Evictions < 1 || st.MaxEntries != 2 {
		t.Errorf("Stats = %+v", st)
	}
}

// TestLRUKeepsInflight checks that an in-flight slot is never evicted:
// evicting it would sever the abandoned-computation-warms-cache path.
func TestLRUKeepsInflight(t *testing.T) {
	m := NewMemory(Options{MaxEntries: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		slot, _ := m.Acquire("slow")
		slot.Fill(func() (Value, error) {
			close(started)
			<-release
			return Value{P: 9}, nil
		})
	}()
	<-started
	// Overflow the bound while "slow" is still computing.
	slot, _ := m.Acquire("fast")
	slot.Fill(func() (Value, error) { return Value{P: 1}, nil })
	if _, ok := m.Acquire("slow"); !ok {
		t.Error("in-flight slot was evicted")
	}
	close(release)
}

// TestDiskRoundTrip checks Put/Get value fidelity, including the nested
// simulation result.
func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Value{
		P:       0.5446311396758939,
		StdErr:  0.00123,
		Backend: "mc",
		Sim:     &sim.Result{P: 0.5446, StdErr: 0.00123, CILo: 0.54, CIHi: 0.55, Wins: 54460, Trials: 100000},
	}
	if err := d.Put("key-1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("key-1")
	if !ok {
		t.Fatal("entry not found after Put")
	}
	if got.P != want.P || got.StdErr != want.StdErr || got.Backend != want.Backend {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if got.Sim == nil || *got.Sim != *want.Sim {
		t.Errorf("sim result mangled: %+v vs %+v", got.Sim, want.Sim)
	}
	if _, ok := d.Get("key-2"); ok {
		t.Error("absent key reported found")
	}
	st := d.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Bytes <= 0 {
		t.Errorf("Stats = %+v", st)
	}
	if ratio, ok := st.HitRatio(); !ok || ratio != 0.5 {
		t.Errorf("HitRatio = %v, %v; want 0.5, true", ratio, ok)
	}
}

// TestWriteThroughAcrossRestart is the tentpole contract: a value
// computed through one store is served from disk — without recompute —
// by a fresh store opened on the same directory.
func TestWriteThroughAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	slot, _ := s1.Acquire("eval-key")
	slot.Fill(func() (Value, error) { return Value{P: 0.75, Backend: "exact"}, nil })
	if slot.FromDisk() {
		t.Error("computed slot claims disk origin")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Disk.Entries != 1 {
		t.Fatalf("restarted store sees %d entries, want 1", st.Disk.Entries)
	}
	slot2, existed := s2.Acquire("eval-key")
	if existed {
		t.Error("fresh memory tier claims the key is resident")
	}
	computed := false
	slot2.Fill(func() (Value, error) {
		computed = true
		return Value{}, nil
	})
	if computed {
		t.Error("restart recomputed a persisted value")
	}
	if !slot2.FromDisk() {
		t.Error("slot not marked as disk-filled")
	}
	if v, _ := slot2.Result(); v.P != 0.75 || v.Backend != "exact" {
		t.Errorf("disk value = %+v", v)
	}
}

// TestCorruptQuarantine checks every validation failure class: the
// entry is quarantined into corrupt/ (never served), counted, and the
// key recomputes.
func TestCorruptQuarantine(t *testing.T) {
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:headerSize-4] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"version mismatch", func(b []byte) []byte { b[4] = 99; return b }},
		{"bad length", func(b []byte) []byte { b[8] ^= 0xFF; return b }},
		{"checksum mismatch", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"arbitrary garbage", func(b []byte) []byte { return []byte("not an entry at all") }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			d, err := OpenDisk(t.TempDir(), obs.New(reg, nil))
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put("k", Value{P: 0.5, Backend: "exact"}); err != nil {
				t.Fatal(err)
			}
			path := d.path("k")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.Get("k"); ok {
				t.Fatal("mangled entry was served")
			}
			if got := reg.Counter("store.corrupt").Value(); got != 1 {
				t.Errorf("store.corrupt = %d, want 1", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("mangled entry still addressable")
			}
			q, err := os.ReadDir(filepath.Join(d.dir, corruptDir))
			if err != nil || len(q) != 1 {
				t.Errorf("quarantine holds %d files (err %v), want 1", len(q), err)
			}
			if st := d.Stats(); st.Entries != 0 {
				t.Errorf("corrupt entry still counted: %+v", st)
			}
		})
	}
}

// TestKeyMismatch checks the hash-collision guard: an entry file copied
// onto another key's address decodes but names the wrong key, so it is
// rejected.
func TestKeyMismatch(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("original", Value{P: 0.5}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(d.path("original"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("impostor"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("impostor"); ok {
		t.Error("entry served under the wrong key")
	}
}

// TestPurge checks the cache-clearing path behind `nocomm cache -purge`.
func TestPurge(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := d.Put(k, Value{P: 1}); err != nil {
			t.Fatal(err)
		}
	}
	entries, bytes, err := d.Purge()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 3 || bytes <= 0 {
		t.Errorf("Purge removed %d entries, %d bytes", entries, bytes)
	}
	if st := d.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("Stats after purge: %+v", st)
	}
	if _, ok := d.Get("a"); ok {
		t.Error("entry survived purge")
	}
}

// TestGCMaxAge checks the age half of the GC contract behind
// `nocomm cache -max-age`: entries last written before the cutoff go,
// younger ones stay, and the accounting tracks.
func TestGCMaxAge(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"old-a", "old-b", "young"} {
		if err := d.Put(k, Value{P: 1}); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-100 * time.Hour)
	for _, k := range []string{"old-a", "old-b"} {
		if err := os.Chtimes(d.path(k), stale, stale); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats()
	entries, bytes, err := d.GC(72*time.Hour, -1)
	if err != nil {
		t.Fatal(err)
	}
	if entries != 2 || bytes <= 0 {
		t.Errorf("GC removed %d entries, %d bytes; want 2 expired entries", entries, bytes)
	}
	st := d.Stats()
	if st.Entries != 1 || st.Bytes != before.Bytes-bytes {
		t.Errorf("Stats after GC: %+v (purged %d bytes of %d)", st, bytes, before.Bytes)
	}
	if _, ok := d.Get("old-a"); ok {
		t.Error("expired entry survived GC")
	}
	if _, ok := d.Get("young"); !ok {
		t.Error("young entry did not survive GC")
	}
	// A second pass with the same bounds is a no-op.
	if entries, bytes, err = d.GC(72*time.Hour, -1); err != nil || entries != 0 || bytes != 0 {
		t.Errorf("repeated GC: %d entries, %d bytes, %v; want no-op", entries, bytes, err)
	}
}

// TestGCMaxBytes checks the size half: the oldest entries go first until
// the tier fits, and maxBytes 0 empties it.
func TestGCMaxBytes(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"first", "second", "third"}
	for i, k := range keys {
		if err := d.Put(k, Value{P: float64(i)}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes, oldest first, without sleeping.
		ts := time.Now().Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(d.path(k), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	total := d.Stats().Bytes
	// Budget for exactly the two youngest entries: only the oldest goes.
	oldest, err := os.Stat(d.path("first"))
	if err != nil {
		t.Fatal(err)
	}
	budget := total - oldest.Size()
	entries, bytes, err := d.GC(0, budget)
	if err != nil {
		t.Fatal(err)
	}
	if entries != 1 {
		t.Errorf("GC removed %d entries, want the single oldest", entries)
	}
	if _, ok := d.Get("first"); ok {
		t.Error("oldest entry survived a size-bound GC")
	}
	for _, k := range keys[1:] {
		if _, ok := d.Get(k); !ok {
			t.Errorf("entry %q should have survived", k)
		}
	}
	if st := d.Stats(); st.Bytes != total-bytes || st.Bytes > budget {
		t.Errorf("Stats after GC: %+v, want ≤ %d bytes", st, budget)
	}
	// maxBytes 0 empties the tier.
	if entries, _, err = d.GC(0, 0); err != nil || entries != 2 {
		t.Errorf("GC to zero: removed %d entries, %v; want the remaining 2", entries, err)
	}
	if st := d.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("Stats after GC to zero: %+v", st)
	}
}

// TestOpenCleansTempFiles checks that temp files abandoned by a crashed
// writer are removed on open and never counted as entries.
func TestOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tmp-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Entries != 0 {
		t.Errorf("temp file counted as entry: %+v", st)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "tmp-") {
			t.Error("stale temp file survived open")
		}
	}
}

// TestEncodeDecodeEntry round-trips the entry codec directly.
func TestEncodeDecodeEntry(t *testing.T) {
	want := Value{P: 0.123, StdErr: 0.004, Backend: "mc-qmc", Sim: &sim.Result{Replicates: 16, Trials: 65536}}
	data, err := EncodeEntry("some|key", want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(data, "some|key")
	if err != nil {
		t.Fatal(err)
	}
	if got.P != want.P || got.Backend != want.Backend || got.Sim.Replicates != 16 {
		t.Errorf("round trip: %+v vs %+v", got, want)
	}
	if _, err := DecodeEntry(data, "other|key"); err == nil {
		t.Error("key mismatch accepted")
	}
	if _, err := DecodeEntry(data, ""); err != nil {
		t.Errorf("empty wantKey should skip the key check: %v", err)
	}
}
