// Package store is the engine's tiered result store: the memoization
// layer that used to live as an unexported map inside internal/engine,
// extracted behind a small Store interface so cached evaluations can be
// size-bounded, persisted across process restarts, and shared between
// replicas.
//
// Two tiers compose:
//
//   - The memory tier (Memory) keeps the engine's original singleflight
//     semantics bit-for-bit: one Slot per cache key, concurrent identical
//     evaluations coalesce onto one computation via sync.Once, and a
//     computation abandoned by its caller still lands in the slot. On top
//     it adds size-bounded LRU eviction (Options.MaxEntries) with a
//     store.evictions counter; in-flight slots are never evicted.
//
//   - The optional disk tier (Disk) is content-addressed by the full
//     cache key (problem.Key + rule fingerprint + backend/config key):
//     each entry is one file named by the SHA-256 of its key, written
//     atomically (temp file + rename) in a versioned, checksummed format.
//     Corrupt or version-mismatched entries are never trusted: they are
//     quarantined into a corrupt/ subdirectory and counted in
//     store.corrupt. Hits, misses and writes since open are counted in
//     store.disk.hits / store.disk.misses / store.disk.writes.
//
// A memory miss consults the disk tier before computing, and a computed
// success is written through — so expensive exact and QMC results survive
// restarts, and replicas sharing a cache directory warm each other.
// Whether a slot was filled from disk is reported by Slot.FromDisk, which
// the engine surfaces as a store.fill span attribute.
//
// Entry invalidation is by construction, not by protocol: the cache key
// encodes every knob that changes the returned bits (instance bit
// patterns, rule fingerprint, resolved backend, trial/seed/worker or
// replicate tolerances), so a changed configuration addresses a different
// entry, and entryVersion is bumped whenever the Value encoding or any
// evaluation semantics change — old entries then fail the version check
// and are evicted rather than served.
package store
