package store

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Value is one cached evaluation result — the engine's payload, kept
// backend-agnostic so the store never imports the engine. Backend is the
// resolved backend's canonical spelling ("exact", "mc", "mc-qmc"); Sim
// carries the full simulation result for the sampled backends.
type Value struct {
	// P is the winning probability.
	P float64 `json:"p"`
	// StdErr is the estimate's standard error (0 for exact results).
	StdErr float64 `json:"std_err,omitempty"`
	// Backend is the resolved backend spelling.
	Backend string `json:"backend"`
	// Sim holds the full simulation result for sampled backends.
	Sim *sim.Result `json:"sim,omitempty"`
}

// Store is the contract the engine evaluates against: singleflight slot
// acquisition over however many tiers the implementation layers.
type Store interface {
	// Acquire returns the slot for key — created when absent — and
	// whether the slot already existed. The caller fills it via
	// Slot.Fill; concurrent identical keys share one slot.
	Acquire(key string) (*Slot, bool)
	// Len reports the number of resident (memory-tier) entries.
	Len() int
	// Stats reports the store's counters and tier sizes.
	Stats() Stats
	// Close releases the disk tier, if any. The store must not be used
	// after Close.
	Close() error
}

// Stats is a point-in-time snapshot of a store's accounting.
type Stats struct {
	// Entries is the resident memory-tier entry count.
	Entries int
	// MaxEntries is the memory tier's LRU bound (0 = unbounded).
	MaxEntries int
	// Evictions counts memory-tier LRU evictions since open.
	Evictions int64
	// Disk holds the disk tier's stats, nil when the store is
	// memory-only.
	Disk *DiskStats
}

// DiskStats is the disk tier's accounting since open.
type DiskStats struct {
	// Dir is the cache directory.
	Dir string
	// Entries and Bytes size the resident entry files.
	Entries int
	Bytes   int64
	// Hits, Misses and Writes count lookups and write-throughs since
	// open; Corrupt counts entries quarantined after failing the
	// magic/version/checksum/key validation.
	Hits, Misses, Writes, Corrupt int64
}

// HitRatio returns hits/(hits+misses) since open, and whether any
// lookup happened at all.
func (d DiskStats) HitRatio() (float64, bool) {
	total := d.Hits + d.Misses
	if total == 0 {
		return 0, false
	}
	return float64(d.Hits) / float64(total), true
}

// Slot is one singleflight cache slot. The sync.Once gives the engine's
// original coalescing semantics: concurrent identical evaluations share
// one fill, and every later caller observes the same bits. done flips
// after the fill finishes, distinguishing a warm hit from a coalesced
// join onto an in-flight computation and letting deadline-aware callers
// skip the watchdog goroutine on warm slots.
type Slot struct {
	once     sync.Once
	done     atomic.Bool
	fromDisk bool
	val      Value
	err      error

	key  string
	disk *Disk // nil on memory-only stores
}

// Done reports whether the slot has been filled.
func (s *Slot) Done() bool { return s.done.Load() }

// FromDisk reports whether the slot was filled from the disk tier
// rather than computed. It is meaningful only after Done.
func (s *Slot) FromDisk() bool { return s.Done() && s.fromDisk }

// Result returns the filled value and error. It is meaningful only
// after Done (or after Fill returns).
func (s *Slot) Result() (Value, error) { return s.val, s.err }

// Fill runs the slot's singleflight fill and reports whether this call
// ran it (false: the slot was already filled, or another goroutine is
// filling it — Fill then blocks until that fill completes, exactly like
// the sync.Once it wraps). The disk tier, when present, is consulted
// before compute, and a computed success is written through to it;
// compute errors stay memory-only, so a restart retries them.
func (s *Slot) Fill(compute func() (Value, error)) (ran bool) {
	s.once.Do(func() {
		ran = true
		if s.disk != nil {
			if v, ok := s.disk.Get(s.key); ok {
				s.val, s.fromDisk = v, true
				s.done.Store(true)
				return
			}
		}
		s.val, s.err = compute()
		if s.err == nil && s.disk != nil {
			s.disk.Put(s.key, s.val)
		}
		s.done.Store(true)
	})
	return ran
}
