package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Disk entry format, version 1. Each entry is one file named by the
// SHA-256 hex of its cache key, carrying a fixed 24-byte header followed
// by a JSON payload:
//
//	[0:4]   magic "NCSE"
//	[4:8]   format version, uint32 little-endian
//	[8:16]  payload length, uint64 little-endian
//	[16:24] FNV-64a checksum of the payload, uint64 little-endian
//	[24:]   payload: {"key": <cache key>, "value": <Value>}
//
// The payload repeats the full cache key so a hash collision (or a file
// renamed by hand) is detected and rejected rather than served. Bump
// entryVersion whenever the Value encoding — or the meaning of any key
// component — changes: mismatched versions fail validation and are
// quarantined, never trusted.
const (
	entryMagic   = "NCSE"
	entryVersion = 1
	headerSize   = 24
	// entryExt is the entry file suffix; everything else in the
	// directory is ignored by scans.
	entryExt = ".ncs"
	// corruptDir is the quarantine subdirectory for entries that failed
	// validation.
	corruptDir = "corrupt"
)

// diskEntry is the JSON payload of one entry file.
type diskEntry struct {
	Key   string `json:"key"`
	Value Value  `json:"value"`
}

// Disk is the content-addressed disk tier. Safe for concurrent use;
// writes are atomic (temp file + rename), so concurrent replicas can
// share one directory.
type Disk struct {
	dir string
	obs *obs.Observer

	mu      sync.Mutex // guards entries/bytes accounting
	entries int
	bytes   int64

	hits, misses, writes, corrupt atomic.Int64
}

// OpenDisk opens (creating if needed) the disk tier rooted at dir,
// scanning it once for the resident entry count and byte size and
// clearing temp files left by a crashed writer.
func OpenDisk(dir string, o *obs.Observer) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening cache dir: %w", err)
	}
	d := &Disk{dir: dir, obs: o}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning cache dir: %w", err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(de.Name(), "tmp-") {
			os.Remove(filepath.Join(dir, de.Name()))
			continue
		}
		if !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		d.entries++
		d.bytes += info.Size()
	}
	return d, nil
}

// Dir returns the cache directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a cache key onto its content-addressed entry file.
func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+entryExt)
}

// Get looks the key up, returning the stored value and whether it was
// found. Entries that fail validation (bad magic, version, length,
// checksum, or a payload key that does not match) are quarantined and
// reported as misses — a corrupt cache can cost a recomputation, never
// a wrong answer.
func (d *Disk) Get(key string) (Value, bool) {
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		d.obs.Counter("store.disk.misses").Inc()
		return Value{}, false
	}
	v, err := DecodeEntry(data, key)
	if err != nil {
		d.quarantine(path, int64(len(data)))
		d.misses.Add(1)
		d.obs.Counter("store.disk.misses").Inc()
		return Value{}, false
	}
	d.hits.Add(1)
	d.obs.Counter("store.disk.hits").Inc()
	return v, true
}

// Put writes the entry atomically: encode, write to a temp file in the
// same directory, fsync-free rename over the final name. Write failures
// are reported to the observer and returned, but callers on the
// evaluation path treat them as advisory — a failed write-through must
// never fail the evaluation that produced the value.
func (d *Disk) Put(key string, v Value) error {
	data, err := EncodeEntry(key, v)
	if err != nil {
		d.obs.EmitError("store.disk", err)
		return err
	}
	path := d.path(key)
	if err := d.writeAtomic(path, data); err != nil {
		d.obs.EmitError("store.disk", err)
		return err
	}
	d.writes.Add(1)
	d.obs.Counter("store.disk.writes").Inc()
	return nil
}

// writeAtomic lands data at path via temp file + rename, updating the
// entry accounting.
func (d *Disk) writeAtomic(path string, data []byte) error {
	var old int64
	existed := false
	if info, err := os.Stat(path); err == nil {
		old, existed = info.Size(), true
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing entry: %w", err)
	}
	d.mu.Lock()
	if existed {
		d.bytes += int64(len(data)) - old
	} else {
		d.entries++
		d.bytes += int64(len(data))
	}
	d.mu.Unlock()
	return nil
}

// quarantine moves an invalid entry into the corrupt/ subdirectory
// (falling back to deletion when the move fails) and counts it. The
// entry stops being addressable either way — it is evicted, not
// trusted.
func (d *Disk) quarantine(path string, size int64) {
	d.corrupt.Add(1)
	d.obs.Counter("store.corrupt").Inc()
	qdir := filepath.Join(d.dir, corruptDir)
	moved := false
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		moved = os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil
	}
	if !moved {
		os.Remove(path)
	}
	d.mu.Lock()
	d.entries--
	d.bytes -= size
	d.mu.Unlock()
}

// Purge deletes every entry file and the quarantine directory,
// returning how many entries (and bytes) were removed. Lookup/write
// counters keep counting across a purge.
func (d *Disk) Purge() (entries int, bytes int64, err error) {
	des, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: scanning cache dir: %w", err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		info, ierr := de.Info()
		if rerr := os.Remove(filepath.Join(d.dir, de.Name())); rerr != nil {
			err = errors.Join(err, rerr)
			continue
		}
		entries++
		if ierr == nil {
			bytes += info.Size()
		}
	}
	if rerr := os.RemoveAll(filepath.Join(d.dir, corruptDir)); rerr != nil {
		err = errors.Join(err, rerr)
	}
	d.mu.Lock()
	d.entries -= entries
	d.bytes -= bytes
	d.mu.Unlock()
	return entries, bytes, err
}

// GC prunes the disk tier by age and size: entries older than maxAge are
// removed (maxAge <= 0 disables the age bound), then — when maxBytes >= 0
// — the oldest surviving entries are removed until the tier fits in
// maxBytes. Entries are aged by file modification time, which the atomic
// write path refreshes on every write-through, so "oldest" means least
// recently written. Returns how many entries (and bytes) were purged.
// Ties on modification time break by file name, so a GC pass is
// deterministic for a given directory state.
func (d *Disk) GC(maxAge time.Duration, maxBytes int64) (entries int, bytes int64, err error) {
	des, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: scanning cache dir: %w", err)
	}
	type entry struct {
		name string
		size int64
		mod  time.Time
	}
	var live []entry
	var total int64
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		info, ierr := de.Info()
		if ierr != nil {
			continue
		}
		live = append(live, entry{name: de.Name(), size: info.Size(), mod: info.ModTime()})
		total += info.Size()
	}
	sort.Slice(live, func(i, j int) bool {
		if !live[i].mod.Equal(live[j].mod) {
			return live[i].mod.Before(live[j].mod)
		}
		return live[i].name < live[j].name
	})
	cutoff := time.Time{}
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
	}
	for _, e := range live {
		expired := maxAge > 0 && e.mod.Before(cutoff)
		oversize := maxBytes >= 0 && total > maxBytes
		if !expired && !oversize {
			// live is oldest-first: once one entry survives both bounds,
			// every younger entry does too.
			break
		}
		if rerr := os.Remove(filepath.Join(d.dir, e.name)); rerr != nil {
			err = errors.Join(err, rerr)
			continue
		}
		entries++
		bytes += e.size
		total -= e.size
	}
	d.mu.Lock()
	d.entries -= entries
	d.bytes -= bytes
	d.mu.Unlock()
	return entries, bytes, err
}

// Stats implements the disk half of Store.Stats.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	entries, bytes := d.entries, d.bytes
	d.mu.Unlock()
	return DiskStats{
		Dir:     d.dir,
		Entries: entries,
		Bytes:   bytes,
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
		Writes:  d.writes.Load(),
		Corrupt: d.corrupt.Load(),
	}
}

// Close releases the tier. No handles are held open between operations,
// so this is currently a no-op kept for the Store contract.
func (d *Disk) Close() error { return nil }

// EncodeEntry renders one entry file: header + JSON payload.
func EncodeEntry(key string, v Value) ([]byte, error) {
	payload, err := json.Marshal(diskEntry{Key: key, Value: v})
	if err != nil {
		return nil, fmt.Errorf("store: encoding entry: %w", err)
	}
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], entryMagic)
	binary.LittleEndian.PutUint32(buf[4:8], entryVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	h := fnv.New64a()
	h.Write(payload)
	binary.LittleEndian.PutUint64(buf[16:24], h.Sum64())
	copy(buf[headerSize:], payload)
	return buf, nil
}

// DecodeEntry validates and decodes one entry file. A non-empty wantKey
// additionally requires the payload's key to match — the guard against
// hash collisions and hand-renamed files. DecodeEntry never panics,
// whatever the bytes: every malformation is an error.
func DecodeEntry(data []byte, wantKey string) (Value, error) {
	if len(data) < headerSize {
		return Value{}, fmt.Errorf("store: entry truncated: %d bytes", len(data))
	}
	if string(data[0:4]) != entryMagic {
		return Value{}, fmt.Errorf("store: bad entry magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != entryVersion {
		return Value{}, fmt.Errorf("store: entry version %d, want %d", v, entryVersion)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n != uint64(len(data)-headerSize) {
		return Value{}, fmt.Errorf("store: entry payload length %d, have %d bytes", n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	h := fnv.New64a()
	h.Write(payload)
	if sum := binary.LittleEndian.Uint64(data[16:24]); sum != h.Sum64() {
		return Value{}, fmt.Errorf("store: entry checksum mismatch")
	}
	var ent diskEntry
	dec := json.NewDecoder(strings.NewReader(string(payload)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ent); err != nil {
		return Value{}, fmt.Errorf("store: decoding entry payload: %w", err)
	}
	if wantKey != "" && ent.Key != wantKey {
		return Value{}, fmt.Errorf("store: entry key mismatch (hash collision or renamed file)")
	}
	return ent.Value, nil
}
