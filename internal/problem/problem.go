// Package problem defines the canonical distributed decision-making
// problem instance shared by every layer of the reproduction: n players,
// two bins of common capacity δ, and per-player input ranges — player i's
// private input is uniform on [0, π_i] (the heterogeneous regime of the
// paper's Section 2.2 distribution machinery, Lemmas 2.4–2.7). A nil or
// empty π vector means the homogeneous U[0, 1] game analysed in
// Sections 4 and 5.
//
// The package is a leaf: it imports only the standard library, so model,
// sim, engine, core and the harness can all depend on the one Instance
// type without cycles. It owns the single Validate implementation (the
// checks previously duplicated across engine.Instance and core.Instance)
// and the canonical bit-pattern cache key used by the evaluation engine's
// memoization layer.
package problem

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Instance is one distributed decision-making problem: N players with
// independent inputs x_i ~ U[0, π_i] and two bins of capacity Delta, no
// communication. A nil (or empty) Pi means the homogeneous U[0, 1] game;
// every layer treats that case exactly as it did before heterogeneous
// instances existed.
type Instance struct {
	// N is the number of players (n ≥ 2).
	N int
	// Delta is the bin capacity (the paper's δ = t > 0).
	Delta float64
	// Pi holds the per-player input ranges π_i (x_i ~ U[0, π_i]); nil or
	// empty selects the homogeneous U[0, 1] game. When non-empty it must
	// have exactly N strictly positive, finite entries.
	Pi []float64
}

// New validates and returns a homogeneous U[0, 1] instance.
func New(n int, delta float64) (Instance, error) {
	return NewPi(n, delta, nil)
}

// NewPi validates and returns an instance with per-player input ranges.
// The π vector is copied; nil or empty pi selects the homogeneous game,
// and an all-ones pi is canonicalized to nil (U[0, 1] spelled out is the
// same instance).
func NewPi(n int, delta float64, pi []float64) (Instance, error) {
	inst := Instance{N: n, Delta: delta}
	if len(pi) > 0 {
		inst.Pi = append([]float64(nil), pi...)
	}
	if err := inst.Validate(); err != nil {
		return Instance{}, err
	}
	if !inst.Heterogeneous() {
		inst.Pi = nil
	}
	return inst, nil
}

// Validate checks the instance: n ≥ 2, strictly positive finite capacity,
// and — when a π vector is present — one strictly positive finite range
// per player.
func (inst Instance) Validate() error {
	if inst.N < 2 {
		return fmt.Errorf("problem: need at least 2 players, got %d", inst.N)
	}
	if !(inst.Delta > 0) || math.IsInf(inst.Delta, 1) {
		return fmt.Errorf("problem: capacity %v must be strictly positive and finite", inst.Delta)
	}
	if len(inst.Pi) == 0 {
		return nil
	}
	if len(inst.Pi) != inst.N {
		return fmt.Errorf("problem: %d input ranges for %d players", len(inst.Pi), inst.N)
	}
	for i, w := range inst.Pi {
		if !(w > 0) || math.IsInf(w, 1) {
			return fmt.Errorf("problem: input range π[%d] = %v must be strictly positive and finite", i, w)
		}
	}
	return nil
}

// Heterogeneous reports whether the instance departs from the homogeneous
// U[0, 1] game: a non-empty π vector with some π_i ≠ 1. An all-ones π is
// the homogeneous game spelled out, so it reports false.
func (inst Instance) Heterogeneous() bool {
	for _, w := range inst.Pi {
		if w != 1 {
			return true
		}
	}
	return false
}

// Width returns player i's input range π_i (1 for homogeneous instances).
// The index is not bounds-checked beyond the π vector: any index of a
// homogeneous instance yields 1.
func (inst Instance) Width(i int) float64 {
	if i >= 0 && i < len(inst.Pi) {
		return inst.Pi[i]
	}
	return 1
}

// Widths returns a copy of the π vector, or nil for homogeneous
// instances (including all-ones π). Callers that need one width per
// player regardless should use Width.
func (inst Instance) Widths() []float64 {
	if !inst.Heterogeneous() {
		return nil
	}
	return append([]float64(nil), inst.Pi...)
}

// Key is the instance's canonical cache-key component. The capacity and
// every π_i are keyed by their exact float64 bit patterns, so nearby
// floats never collide, and the π part is omitted for homogeneous
// instances (an all-ones π keys identically to nil — they are the same
// game). Distinct (N, Delta bits, canonical π bits) triples map to
// distinct keys.
func (inst Instance) Key() string {
	if !inst.Heterogeneous() {
		return "n=" + strconv.Itoa(inst.N) + "|d=" + strconv.FormatUint(math.Float64bits(inst.Delta), 16)
	}
	var b strings.Builder
	b.Grow(32 + 17*len(inst.Pi))
	var buf [16]byte
	b.WriteString("n=")
	b.Write(strconv.AppendInt(buf[:0], int64(inst.N), 10))
	b.WriteString("|d=")
	b.Write(strconv.AppendUint(buf[:0], math.Float64bits(inst.Delta), 16))
	b.WriteString("|pi=")
	for i, w := range inst.Pi {
		if i > 0 {
			b.WriteByte(',')
		}
		b.Write(strconv.AppendUint(buf[:0], math.Float64bits(w), 16))
	}
	return b.String()
}

// String renders the instance for logs and CLI output: "n=3 δ=1" or
// "n=3 δ=1 π=(0.5,1,0.75)".
func (inst Instance) String() string {
	s := fmt.Sprintf("n=%d δ=%g", inst.N, inst.Delta)
	if inst.Heterogeneous() {
		s += " π=(" + FormatPi(inst.Pi) + ")"
	}
	return s
}

// ParsePi parses the CLI spelling of a π vector: a comma-separated float
// list such as "0.5,1,0.75". Whitespace around entries is ignored; an
// empty (or all-whitespace) string parses to nil, the homogeneous game.
// Entries must be strictly positive and finite.
func ParsePi(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	pi := make([]float64, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("problem: empty entry %d in π list %q", i, s)
		}
		w, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("problem: bad π[%d] %q: not a number", i, part)
		}
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("problem: π[%d] = %v must be strictly positive and finite", i, w)
		}
		pi[i] = w
	}
	return pi, nil
}

// FormatPi renders a π vector in the form ParsePi accepts ("0.5,1,0.75").
func FormatPi(pi []float64) string {
	parts := make([]string, len(pi))
	for i, w := range pi {
		parts[i] = strconv.FormatFloat(w, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
