package problem

import (
	"math"
	"testing"
)

// FuzzValidate checks that validation never panics, whatever bits land in
// the instance, and that instances passing Validate have a well-formed π
// vector (nil or exactly N strictly positive finite entries).
func FuzzValidate(f *testing.F) {
	f.Add(3, 1.0, 0.5, 1.0, 0.75, 3)
	f.Add(2, 0.0, 0.0, 0.0, 0.0, 0)
	f.Add(-1, math.Inf(1), math.NaN(), -1.0, 1e308, 2)
	f.Add(1<<30, math.SmallestNonzeroFloat64, 1.0, 1.0, 1.0, 1)
	f.Fuzz(func(t *testing.T, n int, delta, p0, p1, p2 float64, npi int) {
		all := []float64{p0, p1, p2}
		var pi []float64
		if npi > 0 {
			pi = all[:npi%(len(all)+1)]
		}
		inst := Instance{N: n, Delta: delta, Pi: pi}
		err := inst.Validate() // must not panic
		if err != nil {
			return
		}
		if len(inst.Pi) != 0 && len(inst.Pi) != inst.N {
			t.Fatalf("Validate accepted π of length %d for n=%d", len(inst.Pi), inst.N)
		}
		for i, w := range inst.Pi {
			if !(w > 0) || math.IsInf(w, 1) {
				t.Fatalf("Validate accepted π[%d] = %v", i, w)
			}
		}
		// Key and String must also be total on valid instances.
		_ = inst.Key()
		_ = inst.String()
	})
}

// FuzzKeyInjective checks that the cache key separates distinct
// instances: two valid instances share a key only when they are the same
// game — equal (N, Δ bits) and canonically equal π vectors (nil ≡
// all-ones). Nearby floats differ in bits, so they must not collide.
func FuzzKeyInjective(f *testing.F) {
	f.Add(3, 1.0, 1.0, 1.0, 3, 1.0, 0.5, 1.0)
	f.Add(3, 0.5, 0.5, 0.75, 3, 0.5, 0.5, 0.75)
	f.Add(2, 1.0, 1.0, 1.0, 2, math.Nextafter(1, 2), 1.0, 1.0)
	f.Add(2, 0.25, math.Nextafter(0.5, 1), 1.0, 2, 0.25, 0.5, 1.0)
	f.Fuzz(func(t *testing.T, n1 int, d1, a1, b1 float64, n2 int, d2, a2, b2 float64) {
		i1 := Instance{N: n1, Delta: d1, Pi: []float64{a1, b1}}
		i2 := Instance{N: n2, Delta: d2, Pi: []float64{a2, b2}}
		if i1.Validate() != nil || i2.Validate() != nil {
			return
		}
		if i1.Key() != i2.Key() {
			return
		}
		// Shared key ⇒ same canonical instance.
		if i1.N != i2.N || math.Float64bits(i1.Delta) != math.Float64bits(i2.Delta) {
			t.Fatalf("key collision across (N, Δ): %+v vs %+v", i1, i2)
		}
		if i1.Heterogeneous() != i2.Heterogeneous() {
			t.Fatalf("key collision across homogeneity: %+v vs %+v", i1, i2)
		}
		if i1.Heterogeneous() {
			for k := range i1.Pi {
				if math.Float64bits(i1.Pi[k]) != math.Float64bits(i2.Pi[k]) {
					t.Fatalf("key collision across π bits: %+v vs %+v", i1, i2)
				}
			}
		}
	})
}
