package problem

import (
	"math"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		inst Instance
		ok   bool
	}{
		{"homogeneous", Instance{N: 3, Delta: 1}, true},
		{"fractional capacity", Instance{N: 4, Delta: 0.75}, true},
		{"hetero", Instance{N: 3, Delta: 1, Pi: []float64{0.5, 1, 0.75}}, true},
		{"all-ones pi", Instance{N: 2, Delta: 1, Pi: []float64{1, 1}}, true},
		{"one player", Instance{N: 1, Delta: 1}, false},
		{"zero players", Instance{N: 0, Delta: 1}, false},
		{"negative players", Instance{N: -2, Delta: 1}, false},
		{"zero capacity", Instance{N: 3, Delta: 0}, false},
		{"negative capacity", Instance{N: 3, Delta: -1}, false},
		{"NaN capacity", Instance{N: 3, Delta: math.NaN()}, false},
		{"infinite capacity", Instance{N: 3, Delta: math.Inf(1)}, false},
		{"pi length mismatch", Instance{N: 3, Delta: 1, Pi: []float64{0.5, 1}}, false},
		{"zero pi entry", Instance{N: 2, Delta: 1, Pi: []float64{0, 1}}, false},
		{"negative pi entry", Instance{N: 2, Delta: 1, Pi: []float64{-0.5, 1}}, false},
		{"NaN pi entry", Instance{N: 2, Delta: 1, Pi: []float64{math.NaN(), 1}}, false},
		{"infinite pi entry", Instance{N: 2, Delta: 1, Pi: []float64{math.Inf(1), 1}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.inst.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
			if err != nil && !strings.HasPrefix(err.Error(), "problem: ") {
				t.Fatalf("error %q lacks the problem: prefix", err)
			}
		})
	}
}

func TestNewPiCanonicalizes(t *testing.T) {
	inst, err := NewPi(3, 1, []float64{1, 1, 1})
	if err != nil {
		t.Fatalf("NewPi: %v", err)
	}
	if inst.Pi != nil {
		t.Fatalf("all-ones π not canonicalized to nil: %v", inst.Pi)
	}
	if inst.Heterogeneous() {
		t.Fatalf("all-ones instance reported heterogeneous")
	}

	pi := []float64{0.5, 1, 0.75}
	inst, err = NewPi(3, 1, pi)
	if err != nil {
		t.Fatalf("NewPi: %v", err)
	}
	pi[0] = 99 // NewPi must have copied
	if inst.Pi[0] != 0.5 {
		t.Fatalf("NewPi aliased the caller's slice")
	}
	if !inst.Heterogeneous() {
		t.Fatalf("π=(0.5,1,0.75) reported homogeneous")
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Fatalf("New(1, 1) succeeded")
	}
	if _, err := NewPi(3, 1, []float64{0.5, 1}); err == nil {
		t.Fatalf("NewPi with short π succeeded")
	}
}

func TestWidth(t *testing.T) {
	hom := Instance{N: 3, Delta: 1}
	for i := 0; i < 3; i++ {
		if w := hom.Width(i); w != 1 {
			t.Fatalf("homogeneous Width(%d) = %v, want 1", i, w)
		}
	}
	if hom.Widths() != nil {
		t.Fatalf("homogeneous Widths() = %v, want nil", hom.Widths())
	}

	het := Instance{N: 3, Delta: 1, Pi: []float64{0.5, 1, 0.75}}
	want := []float64{0.5, 1, 0.75}
	for i, w := range want {
		if got := het.Width(i); got != w {
			t.Fatalf("Width(%d) = %v, want %v", i, got, w)
		}
	}
	ws := het.Widths()
	ws[0] = 99
	if het.Pi[0] != 0.5 {
		t.Fatalf("Widths() aliased the instance's slice")
	}

	allOnes := Instance{N: 2, Delta: 1, Pi: []float64{1, 1}}
	if allOnes.Widths() != nil {
		t.Fatalf("all-ones Widths() = %v, want nil", allOnes.Widths())
	}
}

func TestKey(t *testing.T) {
	a := Instance{N: 3, Delta: 1}
	b := Instance{N: 3, Delta: 1}
	if a.Key() != b.Key() {
		t.Fatalf("identical instances keyed differently")
	}
	// An all-ones π is the same game, so it must share the key (and
	// therefore the memoized evaluations).
	ones := Instance{N: 3, Delta: 1, Pi: []float64{1, 1, 1}}
	if ones.Key() != a.Key() {
		t.Fatalf("all-ones π keyed differently from nil π: %q vs %q", ones.Key(), a.Key())
	}

	distinct := []Instance{
		{N: 3, Delta: 1},
		{N: 4, Delta: 1},
		{N: 3, Delta: math.Nextafter(1, 2)},
		{N: 3, Delta: 1, Pi: []float64{0.5, 1, 1}},
		{N: 3, Delta: 1, Pi: []float64{1, 0.5, 1}},
		{N: 3, Delta: 1, Pi: []float64{math.Nextafter(0.5, 1), 1, 1}},
	}
	seen := make(map[string]int)
	for i, inst := range distinct {
		k := inst.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("instances %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}
}

func TestString(t *testing.T) {
	hom := Instance{N: 3, Delta: 0.5}
	if got := hom.String(); got != "n=3 δ=0.5" {
		t.Fatalf("String() = %q", got)
	}
	het := Instance{N: 3, Delta: 1, Pi: []float64{0.5, 1, 0.75}}
	if got := het.String(); got != "n=3 δ=1 π=(0.5,1,0.75)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParsePi(t *testing.T) {
	good := []struct {
		in   string
		want []float64
	}{
		{"", nil},
		{"   ", nil},
		{"0.5,1,0.75", []float64{0.5, 1, 0.75}},
		{" 0.5 , 1 , 0.75 ", []float64{0.5, 1, 0.75}},
		{"2", []float64{2}},
	}
	for _, tc := range good {
		got, err := ParsePi(tc.in)
		if err != nil {
			t.Fatalf("ParsePi(%q): %v", tc.in, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("ParsePi(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("ParsePi(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}

	bad := []string{"0.5,,1", "0.5,x", "0.5,-1", "0,1", "1,+Inf", "1,NaN", ","}
	for _, in := range bad {
		if _, err := ParsePi(in); err == nil {
			t.Fatalf("ParsePi(%q) succeeded, want error", in)
		}
	}
}

func TestFormatPiRoundTrips(t *testing.T) {
	pi := []float64{0.5, 1, 0.75, 1.0 / 3.0}
	back, err := ParsePi(FormatPi(pi))
	if err != nil {
		t.Fatalf("ParsePi(FormatPi): %v", err)
	}
	for i := range pi {
		if back[i] != pi[i] {
			t.Fatalf("round trip changed π[%d]: %v -> %v", i, pi[i], back[i])
		}
	}
}

// TestValidateAllocs guards the hot path: Validate runs inside every
// engine evaluation and must not allocate on success.
func TestValidateAllocs(t *testing.T) {
	inst := Instance{N: 5, Delta: 1, Pi: []float64{0.5, 1, 0.75, 1, 0.25}}
	allocs := testing.AllocsPerRun(100, func() {
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Validate allocates %.1f times per call, want 0", allocs)
	}
}

// TestKeyAllocs bounds Key's allocation count so cache lookups stay
// cheap: one for the homogeneous concatenation, a handful for the π
// builder.
func TestKeyAllocs(t *testing.T) {
	hom := Instance{N: 5, Delta: 0.75}
	if allocs := testing.AllocsPerRun(100, func() { _ = hom.Key() }); allocs > 2 {
		t.Fatalf("homogeneous Key allocates %.1f times per call, want ≤ 2", allocs)
	}
	het := Instance{N: 5, Delta: 0.75, Pi: []float64{0.5, 1, 0.75, 1, 0.25}}
	if allocs := testing.AllocsPerRun(100, func() { _ = het.Key() }); allocs > 10 {
		t.Fatalf("heterogeneous Key allocates %.1f times per call, want ≤ 10", allocs)
	}
}
