package harness

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/problem"
)

// DefaultHeteroPi is the heterogeneous instance T10 evaluates when
// Params.Pi is empty: three players with ranges (1/2, 1, 1) — the
// smallest departure from the paper's homogeneous n=3, δ=1 case study.
var DefaultHeteroPi = []float64{0.5, 1, 1}

// TableHeterogeneous builds T10: winning probabilities of the paper's
// algorithm classes on a heterogeneous instance x_i ~ U[0, π_i], each
// evaluated by the exact subset-sum generalization of Theorems 4.1/5.1
// AND re-estimated by Monte-Carlo, with the deviation in standard
// errors. The π vector comes from Params.Pi (DefaultHeteroPi when
// empty), δ from the paper's n/3 scaling.
func TableHeterogeneous(p Params) (Table, error) {
	pi := p.Pi
	if len(pi) == 0 {
		pi = DefaultHeteroPi
	}
	n := len(pi)
	inst, err := problem.NewPi(n, float64(n)/3, pi)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "T10",
		Title: "Heterogeneous input ranges (extension)",
		Columns: []string{
			"algorithm", "exact", "simulated", "std err", "|z|",
		},
		Notes: []string{
			fmt.Sprintf("instance: %s (x_i ~ U[0, π_i]); exact values via the Lemma 2.4/2.7 subset sums", inst),
		},
	}
	rules := []engine.Rule{
		engine.SymmetricOblivious{A: 0.5},
		engine.DeterministicSplit{K: (n + 1) / 2},
		engine.SymmetricThreshold{Beta: 0.5},
		engine.SymmetricThreshold{Beta: 2.0 / 3.0},
	}
	eng := p.engine()
	for _, r := range rules {
		exact, err := eng.Evaluate(inst, r, engine.Exact)
		if err != nil {
			return Table{}, err
		}
		mc, err := eng.EvaluateWith(inst, r, engine.MonteCarlo, p.Sim)
		if err != nil {
			return Table{}, err
		}
		z := math.Inf(1)
		if mc.StdErr > 0 {
			z = math.Abs(mc.P-exact.P) / mc.StdErr
		}
		t.Rows = append(t.Rows, []string{
			r.Name(),
			fmt.Sprintf("%.6f", exact.P),
			fmt.Sprintf("%.6f", mc.P),
			fmt.Sprintf("%.6f", mc.StdErr),
			fmt.Sprintf("%.2f", z),
		})
	}
	return t, nil
}
