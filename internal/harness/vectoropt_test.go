package harness

import (
	"math"
	"testing"
)

// TestVectorOptimumRows checks the T11 chart's substance: the
// homogeneous case study stays on the symmetric ray, at least one
// heterogeneous instance provably departs it (departure and gain far
// above the certified numerical error), and every n ≤ MaxNExact row
// carries a big.Rat certificate within its bound.
func TestVectorOptimumRows(t *testing.T) {
	instances, err := vectorOptimumInstances()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := VectorOptimumRows(Params{}, instances)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(instances) {
		t.Fatalf("want %d rows, got %d", len(instances), len(rows))
	}

	// Row 0 is the homogeneous n=3, δ=1 case study: the optimum must sit
	// on the symmetric ray at the pinned Section 5.2.1 values.
	homog := rows[0]
	if homog.Departure > 1e-3 {
		t.Errorf("homogeneous instance departs the ray by %v; a* = %v", homog.Departure, homog.A)
	}
	if math.Abs(homog.Beta-0.6220355269907728) > 1e-6 {
		t.Errorf("β* = %v, want the pinned 0.6220355269907728", homog.Beta)
	}
	if math.Abs(homog.PVector-0.5446311396758939) > 1e-6 {
		t.Errorf("P*(a*) = %v, want the pinned 0.5446311396758939", homog.PVector)
	}

	departures := 0
	for _, r := range rows {
		if !r.Certified {
			t.Errorf("%s: row not certified (n = %d ≤ MaxNExact expected)", r.Instance, r.Instance.N)
			continue
		}
		if r.CertErr > r.CertBound {
			t.Errorf("%s: certificate error %g exceeds bound %g", r.Instance, r.CertErr, r.CertBound)
		}
		if r.Gain < -1e-9 {
			t.Errorf("%s: vector optimum %v below symmetric optimum %v", r.Instance, r.PVector, r.PSymmetric)
		}
		// A departure is provably real only when the gain dwarfs every
		// numerical error in play: the oracle certificate plus search tol.
		if r.Departure > 0.01 && r.Gain > 100*r.CertBound && r.Gain > 1e-6 {
			departures++
		}
	}
	if departures == 0 {
		t.Error("no instance provably departs the symmetric ray")
	}
}

// TestTableVectorOptimum checks T11 renders and is registered.
func TestTableVectorOptimum(t *testing.T) {
	tbl, err := TableVectorOptimum(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(tbl.Rows))
	}
	if _, err := tbl.Render(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T11", "vector-optimum"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", id, err)
		}
		if exp.ID != "T11" || exp.Kind != KindTable {
			t.Errorf("Lookup(%q) = %+v, want table T11", id, exp)
		}
	}
}
