package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTableHeterogeneous(t *testing.T) {
	p := Params{Sim: sim.Config{Trials: 50_000, Seed: 11}}
	tbl, err := TableHeterogeneous(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(tbl.Rows))
	}
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "π=(0.5,1,1)") {
		t.Errorf("notes should name the default instance: %v", tbl.Notes)
	}
	for _, row := range tbl.Rows {
		exact, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("row %v: exact column not a float: %v", row, err)
		}
		if exact <= 0 || exact >= 1 {
			t.Errorf("%s: exact %v outside (0,1)", row[0], exact)
		}
		z, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("row %v: |z| column not a float: %v", row, err)
		}
		if z > 4 {
			t.Errorf("%s: Monte-Carlo deviates %v standard errors from exact", row[0], z)
		}
	}
}

func TestTableHeterogeneousCustomPi(t *testing.T) {
	p := Params{
		Pi:  []float64{0.25, 0.75},
		Sim: sim.Config{Trials: 20_000, Seed: 5},
	}
	tbl, err := TableHeterogeneous(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Notes[0], "n=2") || !strings.Contains(tbl.Notes[0], "π=(0.25,0.75)") {
		t.Errorf("notes should reflect Params.Pi: %v", tbl.Notes)
	}
}

func TestTableHeterogeneousRejectsBadPi(t *testing.T) {
	if _, err := TableHeterogeneous(Params{Pi: []float64{0.5, -1}}); err == nil {
		t.Error("negative π entry: expected error")
	}
	if _, err := TableHeterogeneous(Params{Pi: []float64{0.5}}); err == nil {
		t.Error("single player: expected error")
	}
}
