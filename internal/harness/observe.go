package harness

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// RunOutput is the artifact produced by an observed experiment run:
// exactly one of Figure or Table is non-nil, matching the experiment's
// Kind.
type RunOutput struct {
	Figure *Figure
	Table  *Table
}

// Run regenerates the experiment under observability: the whole run is
// wrapped in exactly one root span named experiment.<ID>, its wall time is
// recorded in the exp.<id>.wall_seconds gauge, the experiment counter is
// bumped, and any embedded simulation inherits the observer through
// cfg.Obs. points applies to figures, cfg to tables; a nil observer
// degrades to the plain RunFigure/RunTable behavior.
func (e Experiment) Run(o *obs.Observer, points int, cfg sim.Config) (RunOutput, error) {
	root := o.StartSpan("experiment." + e.ID)
	start := time.Now()
	defer func() {
		root.End()
		o.Gauge(fmt.Sprintf("exp.%s.wall_seconds", e.ID)).Set(time.Since(start).Seconds())
	}()
	o.Counter("harness.experiments").Inc()
	cfg.Obs = o
	switch e.Kind {
	case KindFigure:
		if e.RunFigure == nil {
			return RunOutput{}, fmt.Errorf("harness: experiment %s has no figure runner", e.ID)
		}
		fig, err := e.RunFigure(points)
		if err != nil {
			o.EmitError("experiment."+e.ID, err)
			return RunOutput{}, err
		}
		return RunOutput{Figure: &fig}, nil
	case KindTable:
		if e.RunTable == nil {
			return RunOutput{}, fmt.Errorf("harness: experiment %s has no table runner", e.ID)
		}
		tab, err := e.RunTable(cfg)
		if err != nil {
			o.EmitError("experiment."+e.ID, err)
			return RunOutput{}, err
		}
		return RunOutput{Table: &tab}, nil
	default:
		return RunOutput{}, fmt.Errorf("harness: experiment %s has unknown kind %d", e.ID, e.Kind)
	}
}
