package harness

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// RunOutput is the artifact produced by an observed experiment run:
// exactly one of Figure or Table is non-nil, matching the experiment's
// Kind.
type RunOutput struct {
	Figure *Figure
	Table  *Table
}

// Run regenerates the experiment under observability: the whole run is
// wrapped in exactly one root span named experiment.<ID>, its wall time is
// recorded in the exp.<id>.wall_seconds gauge, the experiment counter is
// bumped, and any embedded simulation inherits the observer through
// p.Sim.Obs. When p.Engine is nil the run gets an engine wired to the same
// observer, so cache hit/miss counters surface in the metrics snapshot; a
// nil observer degrades to the plain RunFigure/RunTable behavior.
func (e Experiment) Run(o *obs.Observer, p Params) (RunOutput, error) {
	root := o.StartSpan("experiment." + e.ID)
	start := time.Now()
	defer func() {
		root.End()
		o.Gauge(fmt.Sprintf("exp.%s.wall_seconds", e.ID)).Set(time.Since(start).Seconds())
	}()
	o.Counter("harness.experiments").Inc()
	p.Sim.Obs = o
	if p.Engine == nil {
		p.Engine = engine.New(engine.Config{Sim: p.Sim, Obs: o, ExactWorkers: p.Sim.Workers})
	}
	switch e.Kind {
	case KindFigure:
		if e.RunFigure == nil {
			return RunOutput{}, fmt.Errorf("harness: experiment %s has no figure runner", e.ID)
		}
		fig, err := e.RunFigure(p)
		if err != nil {
			o.EmitError("experiment."+e.ID, err)
			return RunOutput{}, err
		}
		return RunOutput{Figure: &fig}, nil
	case KindTable:
		if e.RunTable == nil {
			return RunOutput{}, fmt.Errorf("harness: experiment %s has no table runner", e.ID)
		}
		tab, err := e.RunTable(p)
		if err != nil {
			o.EmitError("experiment."+e.ID, err)
			return RunOutput{}, err
		}
		return RunOutput{Table: &tab}, nil
	default:
		return RunOutput{}, fmt.Errorf("harness: experiment %s has unknown kind %d", e.ID, e.Kind)
	}
}
