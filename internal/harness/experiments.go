package harness

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/plot"
	"repro/internal/py91"
)

// FigureNs are the instance sizes shown in the paper's figures ("the
// winning probabilities for n = 3, n = 4 and n = 5").
var FigureNs = []int{3, 4, 5}

// figureSweep renders one figure: for each n in FigureNs it evaluates the
// rule family over a [0, 1] parameter grid through one sharded engine
// sweep (all curves in a single call, memoized per point).
func figureSweep(p Params, rule func(x float64) engine.Rule) ([]plot.Series, error) {
	if p.Points < 2 {
		return nil, fmt.Errorf("harness: figure needs at least 2 points, got %d", p.Points)
	}
	var points []engine.Point
	var xs []float64
	for _, n := range FigureNs {
		inst, err := core.PaperInstance(n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.Points; i++ {
			x := float64(i) / float64(p.Points-1)
			points = append(points, engine.Point{Instance: inst.EngineInstance(), Rule: rule(x)})
			xs = append(xs, x)
		}
	}
	results, err := p.engine().Sweep(points, engine.SweepOptions{
		Backend: p.Backend, Workers: p.Sim.Workers, Sim: p.Sim,
	})
	if err != nil {
		return nil, err
	}
	series := make([]plot.Series, len(FigureNs))
	for j, n := range FigureNs {
		s := plot.Series{Name: fmt.Sprintf("n=%d", n)}
		for i := 0; i < p.Points; i++ {
			k := j*p.Points + i
			s.X = append(s.X, xs[k])
			s.Y = append(s.Y, results[k].P)
		}
		series[j] = s
	}
	return series, nil
}

// Figure1 reproduces Figure 1: the winning probability of the symmetric
// single-threshold (non-oblivious) algorithm as a function of the common
// threshold β, for n = 3, 4, 5 with the paper's capacity scaling δ = n/3.
// p.Points is the number of sweep points per curve (≥ 2).
func Figure1(p Params) (Figure, error) {
	series, err := figureSweep(p, func(beta float64) engine.Rule {
		return engine.SymmetricThreshold{Beta: beta}
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "F1",
		Title:  "Non-oblivious winning probability vs threshold (δ = n/3)",
		XLabel: "threshold β",
		YLabel: "P(win)",
		Series: series,
	}, nil
}

// Figure2 reproduces Figure 2: the winning probability of the symmetric
// oblivious algorithm as a function of the common bin-0 probability a, for
// n = 3, 4, 5 with δ = n/3. The maximum sits at a = 1/2 for every n
// (Theorem 4.3's uniformity), in contrast with Figure 1's moving optimum.
func Figure2(p Params) (Figure, error) {
	series, err := figureSweep(p, func(a float64) engine.Rule {
		return engine.SymmetricOblivious{A: a}
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "F2",
		Title:  "Oblivious winning probability vs coin bias (δ = n/3)",
		XLabel: "P(bin 0) = a",
		YLabel: "P(win)",
		Series: series,
	}, nil
}

// TableOblivious builds T1: the Theorem 4.3 optimal (symmetric) oblivious
// algorithm per instance size, for δ = 1 and δ = n/3, next to the
// deterministic vertex optimum this reproduction documents. The two P(win)
// columns are evaluated through the engine; the best-split argmax comes
// from the oblivious optimizer.
func TableOblivious(ns []int, p Params) (Table, error) {
	if len(ns) == 0 {
		return Table{}, fmt.Errorf("harness: empty instance list")
	}
	t := Table{
		ID:      "T1",
		Title:   "Optimal oblivious algorithms (Theorem 4.3) per n",
		Columns: []string{"n", "δ", "α*", "P(win) @ α=1/2", "P(win) balanced split", "best split k"},
		Notes: []string{
			"α* = 1/2 for every n: the Theorem 4.3 uniformity claim, exact within symmetric algorithms.",
			"The balanced deterministic split (a hypercube vertex) exceeds the α=1/2 value because the winning probability is multilinear in α; see EXPERIMENTS.md.",
		},
	}
	eng := p.engine()
	for _, n := range ns {
		deltas := []float64{1, float64(n) / 3}
		if n == 3 {
			deltas = deltas[:1] // n/3 coincides with δ=1
		}
		for _, delta := range deltas {
			inst := engine.Instance{N: n, Delta: delta}
			half, err := eng.Evaluate(inst, engine.SymmetricOblivious{A: 0.5}, p.Backend)
			if err != nil {
				return Table{}, err
			}
			det, err := oblivious.OptimalDeterministic(n, delta)
			if err != nil {
				return Table{}, err
			}
			split, err := eng.Evaluate(inst, engine.DeterministicSplit{K: n - det.Bin1Count}, p.Backend)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.4f", delta),
				"0.5",
				fmt.Sprintf("%.6f", half.P),
				fmt.Sprintf("%.6f", split.P),
				fmt.Sprintf("%d/%d", det.Bin1Count, n),
			})
		}
	}
	return t, nil
}

// TableCaseN3 builds T2: the Section 5.2.1 case study (n=3, δ=1) — the
// exact piecewise polynomials, the optimality condition, and the optimum
// that settles the Papadimitriou-Yannakakis conjecture.
func TableCaseN3() (Table, error) {
	res, err := nonoblivious.OptimalSymmetric(3, big.NewRat(1, 1))
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "T2",
		Title:   "Case n=3, δ=1 (Section 5.2.1)",
		Columns: []string{"quantity", "paper", "reproduction"},
	}
	wantBeta := 1 - math.Sqrt(1.0/7)
	t.Rows = append(t.Rows,
		[]string{"P(β) on [0, 1/2]", "1/6 + 3/2·β² - 1/2·β³", pieceString(res, 0)},
		[]string{"P(β) on (1/2, 1]", "-11/6 + 9β - 21/2·β² + 7/2·β³", pieceString(res, -1)},
		[]string{"optimality condition", "β² - 2β + 6/7 = 0", normalizedCondition(res)},
		[]string{"β*", fmt.Sprintf("1 - √(1/7) = %.6f", wantBeta), fmt.Sprintf("%.6f", res.BetaFloat)},
		[]string{"P*", "0.545", fmt.Sprintf("%.6f", res.WinProbabilityFloat)},
	)
	t.Notes = append(t.Notes, "β* settles the PY91 conjecture; condition shown monic (paper's normalization).")
	return t, nil
}

// TableCaseN4 builds T3: the Section 5.2.2 case study (n=4, δ=4/3).
func TableCaseN4() (Table, error) {
	res, err := nonoblivious.OptimalSymmetric(4, big.NewRat(4, 3))
	if err != nil {
		return Table{}, err
	}
	obl, err := oblivious.Optimal(4, 4.0/3)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "T3",
		Title:   "Case n=4, δ=4/3 (Section 5.2.2)",
		Columns: []string{"quantity", "paper", "reproduction"},
	}
	t.Rows = append(t.Rows,
		[]string{"β*", "≈ 0.678", fmt.Sprintf("%.6f", res.BetaFloat)},
		[]string{"P*", "(not stated)", fmt.Sprintf("%.6f", res.WinProbabilityFloat)},
		[]string{"optimality condition", "cubic (OCR-corrupted in source)", normalizedCondition(res)},
		[]string{"oblivious α=1/2 value", "(comparison claimed smaller)", fmt.Sprintf("%.6f", obl.WinProbability)},
	)
	t.Notes = append(t.Notes,
		"Reproduction finding: at n=4, δ=4/3 the oblivious 1/2-coin BEATS the optimal threshold algorithm (0.43133 > 0.42854); the paper's blanket improvement claim holds at n=3 and n=5 but not here.",
		"The paper's printed cubic -(26/3)β³+(98/3)β²-(368/9)β-416/27 has no root near 0.678 (transcription damage); the derived condition above does.",
	)
	return t, nil
}

// TableTradeoff builds T4: the knowledge/uniformity trade-off across
// instance sizes with δ = n/3 — oblivious (symmetric and deterministic),
// optimal threshold, and the omniscient feasibility bound.
func TableTradeoff(ns []int, p Params) (Table, error) {
	if len(ns) == 0 {
		return Table{}, fmt.Errorf("harness: empty instance list")
	}
	t := Table{
		ID:      "T4",
		Title:   "Knowledge/uniformity trade-off (δ = n/3)",
		Columns: []string{"n", "δ", "oblivious α=1/2", "oblivious split", "threshold β*", "P* threshold", "feasibility (sim)"},
	}
	for _, n := range ns {
		inst, err := core.PaperInstance(n)
		if err != nil {
			return Table{}, err
		}
		row, err := inst.ComputeTradeoff(p.Sim)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", inst.Delta),
			fmt.Sprintf("%.6f", row.ObliviousHalf),
			fmt.Sprintf("%.6f", row.ObliviousDeterministic),
			fmt.Sprintf("%.6f", row.OptimalBeta),
			fmt.Sprintf("%.6f", row.ThresholdOptimum),
			fmt.Sprintf("%.6f", row.Feasibility),
		})
	}
	t.Notes = append(t.Notes, "feasibility is the omniscient full-information upper bound (Monte-Carlo).")
	return t, nil
}

// TableValidation builds V1: every analytic winning probability checked
// against Monte-Carlo simulation, reporting the deviation in standard
// errors. Both columns flow through the engine — the exact backend for the
// analytic value, the Monte-Carlo backend for the estimate — so this table
// is also the end-to-end check of the engine's backend plumbing.
func TableValidation(p Params) (Table, error) {
	t := Table{
		ID:      "V1",
		Title:   "Exact formulas vs Monte-Carlo simulation",
		Columns: []string{"instance", "algorithm", "exact", "simulated", "std err", "|z|"},
	}
	eng := p.engine()
	type check struct {
		label, algo string
		inst        engine.Instance
		rule        engine.Rule
	}
	var checks []check
	for _, n := range FigureNs {
		inst, err := core.PaperInstance(n)
		if err != nil {
			return Table{}, err
		}
		label := fmt.Sprintf("n=%d δ=%.3f", n, inst.Delta)
		checks = append(checks, check{label, "oblivious a=0.5", inst.EngineInstance(), engine.SymmetricOblivious{A: 0.5}})
		opt, err := inst.OptimalThreshold()
		if err != nil {
			return Table{}, err
		}
		checks = append(checks, check{label, fmt.Sprintf("threshold β*=%.4f", opt.BetaFloat),
			inst.EngineInstance(), engine.SymmetricThreshold{Beta: opt.BetaFloat}})
	}
	checks = append(checks, check{"n=3 δ=1", "PY91 conjectured",
		engine.Instance{N: py91.Players, Delta: py91.Capacity}, engine.PY91Rule{Protocol: py91.ConjecturedOptimal()}})

	for _, c := range checks {
		exact, err := eng.Evaluate(c.inst, c.rule, engine.Exact)
		if err != nil {
			return Table{}, err
		}
		mc, err := eng.EvaluateWith(c.inst, c.rule, engine.MonteCarlo, p.Sim)
		if err != nil {
			return Table{}, err
		}
		z := math.Inf(1)
		if mc.StdErr > 0 {
			z = math.Abs(mc.P-exact.P) / mc.StdErr
		}
		t.Rows = append(t.Rows, []string{
			c.label, c.algo,
			fmt.Sprintf("%.6f", exact.P),
			fmt.Sprintf("%.6f", mc.P),
			fmt.Sprintf("%.6f", mc.StdErr),
			fmt.Sprintf("%.2f", z),
		})
	}
	return t, nil
}

// pieceString renders piece i of the optimal curve (negative i counts from
// the end).
func pieceString(res nonoblivious.OptimalResult, i int) string {
	if i < 0 {
		i += res.Curve.NumPieces()
	}
	p, _, err := res.Curve.Piece(i)
	if err != nil {
		return fmt.Sprintf("(error: %v)", err)
	}
	return p.String()
}

// normalizedCondition renders the optimality condition as a monic
// polynomial equation.
func normalizedCondition(res nonoblivious.OptimalResult) string {
	c := res.Condition
	if c.IsZero() {
		return "(endpoint optimum)"
	}
	lead := c.LeadingCoeff()
	if lead.Sign() != 0 {
		c = c.Scale(new(big.Rat).Inv(lead))
	}
	return c.String() + " = 0"
}
