package harness

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/sim"
)

func TestFigure3CrossoverAtN4(t *testing.T) {
	fig, err := Figure3(4, Params{Points: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("got %d series", len(fig.Series))
	}
	threshold, coin, split := fig.Series[0], fig.Series[1], fig.Series[2]
	if len(threshold.X) != len(coin.X) || len(coin.X) != len(split.X) {
		t.Fatal("series lengths differ")
	}
	// The documented finding: near δ = 4/3 the coin beats the optimal
	// threshold; at small δ the threshold wins.
	coinWinsSomewhere := false
	thresholdWinsSomewhere := false
	for i := range threshold.X {
		if coin.Y[i] > threshold.Y[i]+1e-9 {
			coinWinsSomewhere = true
		}
		if threshold.Y[i] > coin.Y[i]+1e-9 {
			thresholdWinsSomewhere = true
		}
		// The balanced split dominates the coin everywhere (multilinear
		// vertex optimum).
		if split.Y[i] < coin.Y[i]-1e-9 {
			t.Errorf("δ=%v: balanced split %v below coin %v", threshold.X[i], split.Y[i], coin.Y[i])
		}
		for _, s := range fig.Series {
			if s.Y[i] < 0 || s.Y[i] > 1 {
				t.Fatalf("series %q has probability %v outside [0,1]", s.Name, s.Y[i])
			}
		}
	}
	if !coinWinsSomewhere {
		t.Error("expected a region where the oblivious coin beats the threshold optimum")
	}
	if !thresholdWinsSomewhere {
		t.Error("expected a region where the threshold optimum beats the coin")
	}
}

func TestFigure3MonotoneInCapacity(t *testing.T) {
	fig, err := Figure3(3, Params{Points: 13})
	if err != nil {
		t.Fatal(err)
	}
	// More capacity never hurts any of the classes.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Errorf("series %q decreases from δ=%v to δ=%v (%v -> %v)",
					s.Name, s.X[i-1], s.X[i], s.Y[i-1], s.Y[i])
			}
		}
	}
}

func TestFigure3Validation(t *testing.T) {
	if _, err := Figure3(1, Params{Points: 10}); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := Figure3(4, Params{Points: 1}); err == nil {
		t.Error("1 point: expected error")
	}
}

func TestTableBeyondThresholds(t *testing.T) {
	tab, err := TableBeyondThresholds(192) // coarse grid: shape checks only
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	improvements := make([]float64, len(tab.Rows))
	for i, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", row[5], err)
		}
		improvements[i] = v
	}
	// n=3: no improvement beyond grid noise; n=4: the band rule improves
	// by ≈ +0.05.
	if math.Abs(improvements[0]) > 5e-3 {
		t.Errorf("n=3 improvement = %v, want ≈ 0 (threshold optimal)", improvements[0])
	}
	if improvements[1] < 0.03 {
		t.Errorf("n=4 improvement = %v, want ≈ +0.05 (band rule)", improvements[1])
	}
}

func TestTableAsymptoticsTrend(t *testing.T) {
	tab, err := TableAsymptotics([]int{4, 8, 16, 24}, Params{Sim: sim.Config{Trials: 20000, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", s, err)
		}
		return v
	}
	// P* threshold and oblivious both increase with n at δ = n/3
	// (concentration), and the balanced split dominates the coin.
	var prevThr, prevObl float64
	for i, row := range tab.Rows {
		thr := parse(row[2])
		obl := parse(row[3])
		split := parse(row[4])
		if i > 0 {
			if thr < prevThr-1e-9 {
				t.Errorf("threshold P* decreased at row %d: %v -> %v", i, prevThr, thr)
			}
			if obl < prevObl-1e-9 {
				t.Errorf("oblivious P decreased at row %d: %v -> %v", i, prevObl, obl)
			}
		}
		if split < obl-1e-9 {
			t.Errorf("row %d: balanced split %v below coin %v", i, split, obl)
		}
		prevThr, prevObl = thr, obl
	}
	// Large-n feasibility column is suppressed (too expensive).
	last := tab.Rows[len(tab.Rows)-1]
	if last[5] != "-" {
		t.Errorf("n=24 feasibility = %q, want suppressed", last[5])
	}
	if _, err := TableAsymptotics(nil, Params{Sim: sim.Config{Trials: 10}}); err == nil {
		t.Error("empty list: expected error")
	}
}

func TestTableOneBitValue(t *testing.T) {
	tab, err := TableOneBitValue([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		gain, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("parsing gain %q: %v", row[4], err)
		}
		// One bit strictly helps on both paper instances.
		if gain < 0.01 {
			t.Errorf("row %v: one-bit gain %v should be clearly positive", row, gain)
		}
	}
	if _, err := TableOneBitValue(nil); err == nil {
		t.Error("empty list: expected error")
	}
}

func TestTableNonUniformInputs(t *testing.T) {
	tab, err := TableNonUniformInputs()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", s, err)
		}
		return v
	}
	// Row 0 is uniform: best β on the 1/64 grid is 0.625, and the two P
	// columns coincide.
	if tab.Rows[0][1] != "0.6250" || tab.Rows[0][2] != tab.Rows[0][3] {
		t.Errorf("uniform row wrong: %v", tab.Rows[0])
	}
	// Small-skew rows pull β down and raise P; large-skew pushes β up and
	// lowers P.
	uniformBest := parse(tab.Rows[0][1])
	if parse(tab.Rows[1][1]) >= uniformBest {
		t.Errorf("small skew should lower β*: %v", tab.Rows[1])
	}
	if parse(tab.Rows[2][1]) <= uniformBest {
		t.Errorf("large skew should raise β*: %v", tab.Rows[2])
	}
	if parse(tab.Rows[1][2]) <= parse(tab.Rows[0][2]) {
		t.Errorf("small skew should raise P*: %v", tab.Rows[1])
	}
	if parse(tab.Rows[2][2]) >= parse(tab.Rows[0][2]) {
		t.Errorf("large skew should lower P*: %v", tab.Rows[2])
	}
	// The uniform-case threshold is strictly suboptimal under skew.
	for _, i := range []int{1, 2, 3} {
		if parse(tab.Rows[i][3]) >= parse(tab.Rows[i][2]) {
			t.Errorf("row %d: uniform-case β should be suboptimal: %v", i, tab.Rows[i])
		}
	}
}

func TestTableValueOfInformationLadder(t *testing.T) {
	tab, err := TableValueOfInformation(Params{Sim: sim.Config{Trials: 30000, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows, want 6 rungs", len(tab.Rows))
	}
	// Parse the P column and check the ladder is (weakly) increasing from
	// the no-communication optimum to full information, allowing the
	// tuned middle rungs a small simulation slack.
	ps := make([]float64, len(tab.Rows))
	for i, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", row[2], err)
		}
		ps[i] = v
	}
	last := len(ps) - 1
	if !(ps[0] < ps[last]) {
		t.Errorf("full information %v should beat no communication %v", ps[last], ps[0])
	}
	if math.Abs(ps[last]-0.75) > 0.02 {
		t.Errorf("full information P = %v, want ≈ 3/4", ps[last])
	}
	// The exact one-bit rung strictly improves on no communication and
	// stays below the full-value broadcast rung.
	if !(ps[1] > ps[0]+0.02) {
		t.Errorf("one-bit rung %v should clearly beat no communication %v", ps[1], ps[0])
	}
	for i := 1; i < last; i++ {
		if ps[i] < ps[0]-0.02 || ps[i] > ps[last]+0.02 {
			t.Errorf("rung %d value %v outside ladder [%v, %v]", i, ps[i], ps[0], ps[last])
		}
	}
}
