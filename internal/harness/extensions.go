package harness

import (
	"fmt"
	"math/big"

	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/optimize"
	"repro/internal/plot"
	"repro/internal/problem"
	"repro/internal/py91"
	"repro/internal/response"
	"repro/internal/sim"
)

// Figure3 is an extension experiment (F3): the crossover chart behind the
// reproduction findings. For a fixed n it sweeps the capacity δ and plots
// the three algorithm classes — the optimal symmetric threshold P*(δ),
// the oblivious 1/2-coin, and the deterministic balanced split — exposing
// where knowledge of the input wins and where it does not (at n = 4 the
// coin overtakes the threshold optimum around δ ≈ 4/3, the paper's own
// operating point).
func Figure3(n int, p Params) (Figure, error) {
	if n < 2 {
		return Figure{}, fmt.Errorf("harness: need at least 2 players, got %d", n)
	}
	if p.Points < 2 {
		return Figure{}, fmt.Errorf("harness: figure needs at least 2 points, got %d", p.Points)
	}
	fig := Figure{
		ID:     "F3",
		Title:  fmt.Sprintf("Algorithm classes vs capacity δ (n=%d, extension)", n),
		XLabel: "capacity δ",
		YLabel: "P(win)",
	}
	threshold := plot.Series{Name: "optimal threshold"}
	coin := plot.Series{Name: "oblivious 1/2"}
	split := plot.Series{Name: "balanced split"}
	// Sweep δ over [n/6, n/2] on a rational grid so the symbolic pipeline
	// stays exact.
	const denom = 24
	lo := n * denom / 6
	hi := n * denom / 2
	step := (hi - lo) / (p.Points - 1)
	if step < 1 {
		step = 1
	}
	// The two optimizer series walk the grid directly; the coin series is
	// a varying-instance engine sweep (one rule, many δ).
	var coinPoints []engine.Point
	for num := lo; num <= hi; num += step {
		delta := big.NewRat(int64(num), denom)
		df, _ := delta.Float64()
		opt, err := nonoblivious.OptimalSymmetric(n, delta)
		if err != nil {
			return Figure{}, err
		}
		det, err := oblivious.OptimalDeterministic(n, df)
		if err != nil {
			return Figure{}, err
		}
		coinPoints = append(coinPoints, engine.Point{
			Instance: engine.Instance{N: n, Delta: df},
			Rule:     engine.SymmetricOblivious{A: 0.5},
		})
		threshold.X = append(threshold.X, df)
		threshold.Y = append(threshold.Y, opt.WinProbabilityFloat)
		coin.X = append(coin.X, df)
		split.X = append(split.X, df)
		split.Y = append(split.Y, det.WinProbability)
	}
	coinRes, err := p.engine().Sweep(coinPoints, engine.SweepOptions{
		Backend: p.Backend, Workers: p.Sim.Workers, Sim: p.Sim,
	})
	if err != nil {
		return Figure{}, err
	}
	for _, r := range coinRes {
		coin.Y = append(coin.Y, r.P)
	}
	fig.Series = []plot.Series{threshold, coin, split}
	return fig, nil
}

// TableValueOfInformation is an extension experiment (T5): the PY91
// communication ladder for the three-player, δ=1 instance. Each row adds
// information and (weakly) winning probability, quantifying the "value of
// information" the 1991 paper introduced and this paper's no-communication
// analysis anchors.
func TableValueOfInformation(p Params) (Table, error) {
	t := Table{
		ID:      "T5",
		Title:   "Value of information (PY91 ladder, n=3, δ=1; extension)",
		Columns: []string{"pattern", "protocol", "P(win)", "std err", "source"},
	}
	cfg := p.Sim
	pcfg := py91.SimConfig{Trials: cfg.Trials, Workers: cfg.Workers, Seed: cfg.Seed}
	py91Inst := engine.Instance{N: py91.Players, Delta: py91.Capacity}

	// Rung 0: no communication, proven optimal threshold (exact, through
	// the engine).
	none := py91.ConjecturedOptimal()
	exactRes, err := p.engine().Evaluate(py91Inst, engine.PY91Rule{Protocol: none}, engine.Exact)
	if err != nil {
		return Table{}, err
	}
	exact := exactRes.P
	t.Rows = append(t.Rows, []string{
		py91.NoCommunication.String(), none.Name(),
		fmt.Sprintf("%.6f", exact), "0 (exact)", "Theorem 5.1 + §5.2.1",
	})

	// Rung 0.5: a single broadcast bit, evaluated exactly through the
	// Section 6 generalization (package comm) and tuned by Nelder-Mead.
	oneBit, err := comm.Optimize(3, 1, py91.ConjecturedOptimalThreshold)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{
		"one bit", fmt.Sprintf("cut=%.3f θ=%.3f β=%.3f/%.3f",
			oneBit.Protocol.Cut, oneBit.Protocol.SenderTheta,
			oneBit.Protocol.BetaLow, oneBit.Protocol.BetaHigh),
		fmt.Sprintf("%.6f", oneBit.WinProbability), "0 (exact)", "comm.OneBitBroadcast, tuned",
	})

	// Rung 1: one-way communication. Two families: the PY91
	// weighted-average shape (simulated) and the exact one-bit-to-one
	// protocol, whose freed third player makes it surprisingly strong.
	oneWay, evOne, err := py91.OptimizeWeighted(py91.OneWay, pcfg)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{
		py91.OneWay.String(), oneWay.Name(),
		fmt.Sprintf("%.6f", evOne.P), fmt.Sprintf("%.6f", evOne.StdErr), "simulated, tuned",
	})
	owBit, owVal, err := comm.OptimizeOneWay(3, 1, py91.ConjecturedOptimalThreshold)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{
		"one-way bit", fmt.Sprintf("cut=%.3f θ=%.3f β₁=%.3f/%.3f β₂=%.3f",
			owBit.Cut, owBit.SenderTheta, owBit.BetaLow, owBit.BetaHigh, owBit.Beta),
		fmt.Sprintf("%.6f", owVal), "0 (exact)", "comm.OneBitToOne, tuned",
	})

	// Rung 2: broadcast.
	bc, evBC, err := py91.OptimizeWeighted(py91.Broadcast, pcfg)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{
		py91.Broadcast.String(), bc.Name(),
		fmt.Sprintf("%.6f", evBC.P), fmt.Sprintf("%.6f", evBC.StdErr), "simulated, tuned",
	})

	// Rung 3: full information (the feasibility bound, exactly 3/4),
	// simulated through the engine's py91 Monte-Carlo backend.
	evFull, err := p.engine().EvaluateWith(py91Inst,
		engine.PY91Rule{Protocol: py91.FullInformationProtocol{}}, engine.MonteCarlo, cfg)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{
		py91.Full.String(), "full-information",
		fmt.Sprintf("%.6f", evFull.P), fmt.Sprintf("%.6f", evFull.StdErr), "simulated (exact value 3/4)",
	})
	t.Notes = append(t.Notes,
		"Tuned protocols use the PY91 weighted-average shape; their values are lower bounds on the pattern optimum.",
	)
	return t, nil
}

// TableAsymptotics is an extension experiment (T7): how the optimal
// winning probabilities scale with n under the paper's δ = n/3 capacity
// scaling, up to the float64 stability limit. The threshold and oblivious
// columns use the exact O(n²) formulas with numeric maximization; the
// feasibility column is simulated where the 2^n check is affordable.
// As n grows the total load concentrates around n/2 < 2δ, so the
// omniscient bound tends to 1; the table quantifies how much of that the
// no-communication algorithm classes capture.
func TableAsymptotics(ns []int, p Params) (Table, error) {
	if len(ns) == 0 {
		return Table{}, fmt.Errorf("harness: empty instance list")
	}
	cfg := p.Sim
	eng := p.engine()
	t := Table{
		ID:      "T7",
		Title:   "Scaling with n at δ = n/3 (extension)",
		Columns: []string{"n", "β* (numeric)", "P* threshold", "oblivious α=1/2", "balanced split", "feasibility (sim)"},
	}
	for _, n := range ns {
		delta := float64(n) / 3
		betaStar, pStar, err := numericThresholdOptimum(n, delta)
		if err != nil {
			return Table{}, err
		}
		obl, err := eng.Evaluate(engine.Instance{N: n, Delta: delta}, engine.SymmetricOblivious{A: 0.5}, engine.Exact)
		if err != nil {
			return Table{}, err
		}
		det, err := oblivious.OptimalDeterministic(n, delta)
		if err != nil {
			return Table{}, err
		}
		feas := "-"
		if n <= 14 && cfg.Trials > 0 {
			trials := cfg.Trials
			if trials > 100_000 {
				trials = 100_000
			}
			res, err := sim.FeasibilityProbability(problem.Instance{N: n, Delta: delta}, sim.Config{
				Trials: trials, Workers: cfg.Workers, Seed: cfg.Seed,
			})
			if err != nil {
				return Table{}, err
			}
			feas = fmt.Sprintf("%.4f", res.P)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.6f", betaStar),
			fmt.Sprintf("%.6f", pStar),
			fmt.Sprintf("%.6f", obl.P),
			fmt.Sprintf("%.6f", det.WinProbability),
			feas,
		})
	}
	t.Notes = append(t.Notes,
		"All classes approach the omniscient bound as n grows: concentration makes δ = n/3 easy at scale.",
	)
	return t, nil
}

// numericThresholdOptimum maximizes the symmetric-threshold curve with the
// float fast path (grid + golden-section), for instance sizes beyond the
// symbolic pipeline's comfort zone.
func numericThresholdOptimum(n int, delta float64) (beta, p float64, err error) {
	res, err := optimize.GridThenGoldenMax(func(b float64) float64 {
		v, err := nonoblivious.SymmetricWinningProbability(n, delta, b)
		if err != nil {
			return -1
		}
		return v
	}, 0, 1, 401, 1e-10)
	if err != nil {
		return 0, 0, err
	}
	return res.X, res.Value, nil
}

// TableOneBitValue is an extension experiment (T8): the exact value of a
// single broadcast bit across instance sizes with δ = n/3 — the simplest
// instantiation of the paper's Section 6 program ("general communication
// patterns ... can all be treated in our combinatorial framework"). For
// each n the one-bit protocol is tuned over (cut, sender threshold,
// conditional listener thresholds) against the no-communication optimum.
func TableOneBitValue(ns []int) (Table, error) {
	if len(ns) == 0 {
		return Table{}, fmt.Errorf("harness: empty instance list")
	}
	t := Table{
		ID:      "T8",
		Title:   "Value of one broadcast bit (δ = n/3; extension)",
		Columns: []string{"n", "δ", "no-comm P*", "one-bit P*", "gain", "tuned protocol"},
	}
	for _, n := range ns {
		capacity := big.NewRat(int64(n), 3)
		noComm, err := nonoblivious.OptimalSymmetric(n, capacity)
		if err != nil {
			return Table{}, err
		}
		cf, _ := capacity.Float64()
		oneBit, err := comm.Optimize(n, cf, noComm.BetaFloat)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			capacity.RatString(),
			fmt.Sprintf("%.6f", noComm.WinProbabilityFloat),
			fmt.Sprintf("%.6f", oneBit.WinProbability),
			fmt.Sprintf("%+.6f", oneBit.WinProbability-noComm.WinProbabilityFloat),
			fmt.Sprintf("cut=%.3f θ=%.3f β=%.3f/%.3f",
				oneBit.Protocol.Cut, oneBit.Protocol.SenderTheta,
				oneBit.Protocol.BetaLow, oneBit.Protocol.BetaHigh),
		})
	}
	t.Notes = append(t.Notes,
		"One-bit values are exact (conditioned interval-pair evaluation); tuning is numeric, so gains are lower bounds.",
	)
	return t, nil
}

// TableNonUniformInputs is an extension experiment (T9): the paper's
// third future-work axis ("more realistic assumptions on the distribution
// of inputs"), quantified. For piecewise-constant input densities of
// varying skew, the best threshold on a 1/64 grid is derived exactly and
// compared with the uniform-case optimum β = 0.622 (n = 3, δ = 1).
func TableNonUniformInputs() (Table, error) {
	t := Table{
		ID:      "T9",
		Title:   "Non-uniform input distributions (n=3, δ=1; extension)",
		Columns: []string{"density (low half : high half)", "best β (1/64 grid)", "P at best β", "P at uniform-case β*"},
	}
	one := big.NewRat(1, 1)
	cases := []struct {
		label     string
		lowHeight *big.Rat
	}{
		{"1 : 1 (uniform)", big.NewRat(1, 1)},
		{"3 : 1 (small-skewed)", big.NewRat(3, 2)},
		{"1 : 3 (large-skewed)", big.NewRat(1, 2)},
		{"7 : 1 (strongly small)", big.NewRat(7, 4)},
	}
	uniformBeta := big.NewRat(40, 64) // ≈ 0.625, the grid point nearest 0.622
	for _, c := range cases {
		highHeight := new(big.Rat).Sub(big.NewRat(2, 1), c.lowHeight)
		density, err := response.NewPiecewiseDensity(
			[]*big.Rat{new(big.Rat), big.NewRat(1, 2), one},
			[]*big.Rat{c.lowHeight, highHeight},
		)
		if err != nil {
			return Table{}, err
		}
		bestBeta := new(big.Rat)
		bestP := new(big.Rat).SetInt64(-1)
		var uniP *big.Rat
		for num := int64(0); num <= 64; num++ {
			beta := big.NewRat(num, 64)
			set, err := response.NewRatIntervalSet([]response.RatInterval{{Lo: new(big.Rat), Hi: beta}})
			if err != nil {
				return Table{}, err
			}
			p, err := response.ExactWinProbabilityDist(3, one, set, density)
			if err != nil {
				return Table{}, err
			}
			if p.Cmp(bestP) > 0 {
				bestP = p
				bestBeta = beta
			}
			if beta.Cmp(uniformBeta) == 0 {
				uniP = p
			}
		}
		bb, _ := bestBeta.Float64()
		bp, _ := bestP.Float64()
		up, _ := uniP.Float64()
		t.Rows = append(t.Rows, []string{
			c.label,
			fmt.Sprintf("%.4f", bb),
			fmt.Sprintf("%.6f", bp),
			fmt.Sprintf("%.6f", up),
		})
	}
	t.Notes = append(t.Notes,
		"Two-piece densities: height h on [0,1/2] and 2-h on [1/2,1]; all values exact rationals.",
		"Skewing inputs small raises P* and pulls β* down; the uniform-case threshold is suboptimal under skew.",
	)
	return t, nil
}

// TableBeyondThresholds is an extension experiment (T6): it searches the
// two-interval family of deterministic decision rules — the smallest
// family strictly containing the paper's single thresholds — for each
// instance and reports whether leaving the single-threshold family helps.
// The headline reproduction finding: at n=4, δ=4/3 a middle-band rule
// beats both the optimal threshold AND the oblivious coin.
func TableBeyondThresholds(grid int) (Table, error) {
	if grid <= 0 {
		grid = 512
	}
	t := Table{
		ID:      "T6",
		Title:   "Beyond single thresholds: two-interval rules (extension)",
		Columns: []string{"n", "δ", "threshold P*", "two-interval P*", "best bin-0 region", "improvement"},
	}
	cases := []struct {
		n        int
		capacity *big.Rat
	}{
		{3, big.NewRat(1, 1)},
		{4, big.NewRat(4, 3)},
		{5, big.NewRat(5, 3)},
	}
	for _, c := range cases {
		cf, _ := c.capacity.Float64()
		exactOpt, err := nonoblivious.OptimalSymmetric(c.n, c.capacity)
		if err != nil {
			return Table{}, err
		}
		ev, err := response.NewEvaluator(c.n, cf, grid)
		if err != nil {
			return Table{}, err
		}
		double, err := ev.OptimizeTwoInterval()
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.n),
			c.capacity.RatString(),
			fmt.Sprintf("%.6f", exactOpt.WinProbabilityFloat),
			fmt.Sprintf("%.6f", double.WinProbability),
			double.Set.String(),
			fmt.Sprintf("%+.6f", double.WinProbability-exactOpt.WinProbabilityFloat),
		})
	}
	t.Notes = append(t.Notes,
		"Two-interval values come from the grid-convolution oracle (O(1/grid²) accuracy) and are simulation-verified in tests.",
		"n=3: the search collapses back to [0, 0.622] — the paper's single-threshold restriction is lossless there.",
		"n=4: the middle band beats the threshold optimum AND the oblivious coin; single thresholds are not optimal in the full §3 model.",
	)
	return t, nil
}
