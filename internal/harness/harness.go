// Package harness assembles the reproduction's experiments: it sweeps
// parameters through the exact theory and the simulator, formats the
// results as text tables and CSV, and feeds the plot package to regenerate
// the paper's figures. Each experiment in DESIGN.md's per-experiment index
// (F1, F2, T1-T4, V1) has a constructor here, and the registry exposes
// them by id to the command-line tools and benchmarks.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/plot"
)

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	// ID is the experiment identifier (e.g. "T2").
	ID string
	// Title describes the experiment.
	Title string
	// Columns holds the header cells.
	Columns []string
	// Rows holds the data cells; every row must have len(Columns) cells.
	Rows [][]string
	// Notes are free-form footnotes rendered under the table.
	Notes []string
}

// Validate checks the table's shape.
func (t *Table) Validate() error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("harness: table %s has no columns", t.ID)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("harness: table %s row %d has %d cells, want %d", t.ID, i, len(row), len(t.Columns))
		}
	}
	return nil
}

// Render returns the table as aligned monospaced text.
func (t *Table) Render() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(t.Columns)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String(), nil
}

// WriteCSV writes the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("harness: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("harness: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders the table as a GitHub-flavored markdown table with
// notes as a trailing blockquote, ready for inclusion in EXPERIMENTS.md.
func (t *Table) Markdown() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s: %s**\n\n", t.ID, t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String(), nil
}

// Figure is a rendered figure: titled series ready for plotting.
type Figure struct {
	// ID is the experiment identifier (e.g. "F1").
	ID string
	// Title, XLabel and YLabel annotate the chart.
	Title, XLabel, YLabel string
	// Series holds the plotted lines.
	Series []plot.Series
}

// ASCII renders the figure as a terminal chart.
func (f *Figure) ASCII(width, height int) (string, error) {
	return plot.ASCII(f.Series, plot.Options{
		Title: fmt.Sprintf("%s: %s", f.ID, f.Title), XLabel: f.XLabel, YLabel: f.YLabel,
		Width: width, Height: height,
	})
}

// SVG renders the figure as an SVG document.
func (f *Figure) SVG(width, height int) (string, error) {
	return plot.SVG(f.Series, plot.Options{
		Title: fmt.Sprintf("%s: %s", f.ID, f.Title), XLabel: f.XLabel, YLabel: f.YLabel,
		Width: width, Height: height,
	})
}

// WriteCSV writes the figure's series in long form: series, x, y.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.XLabel, f.YLabel}); err != nil {
		return fmt.Errorf("harness: writing CSV header: %w", err)
	}
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("harness: series %q has mismatched lengths", s.Name)
		}
		for i := range s.X {
			rec := []string{s.Name, formatFloat(s.X[i]), formatFloat(s.Y[i])}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("harness: writing CSV row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return fmt.Sprintf("%.10g", v) }
