package harness

import (
	"repro/internal/engine"
	"repro/internal/sim"
)

// Params bundles everything an experiment run can be steered by: sweep
// resolution for figures, the Monte-Carlo configuration for embedded
// simulations, the evaluation backend, and the (memoizing) engine the
// evaluations route through. The zero value is usable: Auto backend, a
// fresh engine, and each runner's documented default resolution.
type Params struct {
	// Points is the sweep resolution for figure experiments (per curve).
	Points int
	// Sim configures embedded Monte-Carlo evaluations and carries the
	// observer (Sim.Obs) into both the simulator and the engine.
	Sim sim.Config
	// Backend selects how rule evaluations run (Auto, Exact, MonteCarlo).
	// Experiments that are exact by construction ignore it.
	Backend engine.Backend
	// Pi optionally sets per-player input ranges (x_i ~ U[0, Pi[i]]) for
	// experiments that accept heterogeneous instances (T10); nil is the
	// homogeneous U[0,1] game.
	Pi []float64
	// Engine optionally shares a memoization cache across runs; nil
	// builds a private engine wired to Sim and Sim.Obs.
	Engine *engine.Engine
}

// engine returns the params' engine, building one on demand so every
// runner can assume a non-nil engine with the observer attached. The
// Monte-Carlo worker count doubles as the exact backend's shard width —
// one -workers knob steers both backends.
func (p Params) engine() *engine.Engine {
	if p.Engine != nil {
		return p.Engine
	}
	return engine.New(engine.Config{Sim: p.Sim, Obs: p.Sim.Obs, ExactWorkers: p.Sim.Workers})
}
