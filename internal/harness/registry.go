package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes figure experiments from table experiments.
type Kind int

// Experiment kinds.
const (
	KindFigure Kind = iota + 1
	KindTable
)

// Experiment is a registry entry: one regenerable table or figure.
type Experiment struct {
	// ID is the DESIGN.md experiment id (e.g. "F1", "T2").
	ID string
	// Title describes the experiment.
	Title string
	// Kind reports whether RunFigure or RunTable applies.
	Kind Kind
	// RunFigure regenerates a figure (nil for tables).
	RunFigure func(p Params) (Figure, error)
	// RunTable regenerates a table (nil for figures).
	RunTable func(p Params) (Table, error)
}

// Registry returns all experiments keyed by id.
func Registry() map[string]Experiment {
	return map[string]Experiment{
		"F1": {
			ID: "F1", Kind: KindFigure,
			Title:     "Non-oblivious winning probability vs threshold, n=3,4,5",
			RunFigure: Figure1,
		},
		"F2": {
			ID: "F2", Kind: KindFigure,
			Title:     "Oblivious winning probability vs coin bias, n=3,4,5",
			RunFigure: Figure2,
		},
		"F3": {
			ID: "F3", Kind: KindFigure,
			Title: "Algorithm classes vs capacity δ at n=4 (extension)",
			RunFigure: func(p Params) (Figure, error) {
				return Figure3(4, p)
			},
		},
		"T1": {
			ID: "T1", Kind: KindTable,
			Title: "Optimal oblivious algorithms per n (Theorem 4.3)",
			RunTable: func(p Params) (Table, error) {
				return TableOblivious([]int{2, 3, 4, 5, 6, 7, 8, 9, 10}, p)
			},
		},
		"T2": {
			ID: "T2", Kind: KindTable,
			Title:    "Case n=3, δ=1 (Section 5.2.1)",
			RunTable: func(Params) (Table, error) { return TableCaseN3() },
		},
		"T3": {
			ID: "T3", Kind: KindTable,
			Title:    "Case n=4, δ=4/3 (Section 5.2.2)",
			RunTable: func(Params) (Table, error) { return TableCaseN4() },
		},
		"T4": {
			ID: "T4", Kind: KindTable,
			Title: "Knowledge/uniformity trade-off",
			RunTable: func(p Params) (Table, error) {
				return TableTradeoff([]int{2, 3, 4, 5, 6, 7, 8}, p)
			},
		},
		"T5": {
			ID: "T5", Kind: KindTable,
			Title:    "Value of information: PY91 communication ladder (extension)",
			RunTable: TableValueOfInformation,
		},
		"T6": {
			ID: "T6", Kind: KindTable,
			Title: "Beyond single thresholds: two-interval rules (extension)",
			RunTable: func(Params) (Table, error) {
				return TableBeyondThresholds(512)
			},
		},
		"T7": {
			ID: "T7", Kind: KindTable,
			Title: "Scaling with n at δ = n/3 (extension)",
			RunTable: func(p Params) (Table, error) {
				return TableAsymptotics([]int{2, 4, 6, 8, 10, 12, 16, 20, 24}, p)
			},
		},
		"T8": {
			ID: "T8", Kind: KindTable,
			Title: "Value of one broadcast bit (extension)",
			RunTable: func(Params) (Table, error) {
				return TableOneBitValue([]int{2, 3, 4, 5, 6})
			},
		},
		"T9": {
			ID: "T9", Kind: KindTable,
			Title:    "Non-uniform input distributions (extension)",
			RunTable: func(Params) (Table, error) { return TableNonUniformInputs() },
		},
		"T10": {
			ID: "T10", Kind: KindTable,
			Title:    "Heterogeneous input ranges x_i ~ U[0, π_i] (extension)",
			RunTable: TableHeterogeneous,
		},
		"T11": {
			ID: "T11", Kind: KindTable,
			Title:    "Departure of the optimal a-vector from the symmetric ray (extension)",
			RunTable: TableVectorOptimum,
		},
		"V1": {
			ID: "V1", Kind: KindTable,
			Title:    "Exact formulas vs Monte-Carlo simulation",
			RunTable: TableValidation,
		},
	}
}

// aliases maps mnemonic experiment names (as accepted by the CLIs, e.g.
// `nocomm table oblivious`) onto registry ids.
var aliases = map[string]string{
	"thresholds":           "F1",
	"coins":                "F2",
	"crossover":            "F3",
	"oblivious":            "T1",
	"case-n3":              "T2",
	"case-n4":              "T3",
	"tradeoff":             "T4",
	"value-of-information": "T5",
	"beyond":               "T6",
	"asymptotics":          "T7",
	"one-bit":              "T8",
	"non-uniform":          "T9",
	"hetero":               "T10",
	"vector-optimum":       "T11",
	"validation":           "V1",
}

// IDs returns the registry keys in sorted order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup fetches one experiment by id or mnemonic alias,
// case-insensitively ("T1", "t1" and "oblivious" all resolve to T1).
func Lookup(id string) (Experiment, error) {
	key := strings.ToUpper(strings.TrimSpace(id))
	if canonical, ok := aliases[strings.ToLower(strings.TrimSpace(id))]; ok {
		key = canonical
	}
	e, ok := Registry()[key]
	if !ok {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, IDs())
	}
	return e, nil
}
