package harness

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestEveryExperimentEmitsOneRootSpan regenerates every registered
// experiment (tiny sweep/trial budgets) under a fresh observer and asserts
// the contract the run logs rely on: exactly one root span named
// experiment.<ID> per run, properly closed, with the wall-time gauge set.
func TestEveryExperimentEmitsOneRootSpan(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			o := obs.New(obs.NewRegistry(), obs.NewSink(&buf))
			out, err := exp.Run(o, Params{Points: 3, Sim: sim.Config{Trials: 500, Seed: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if (out.Figure == nil) == (out.Table == nil) {
				t.Errorf("%s: exactly one of Figure/Table must be set", id)
			}
			events, err := obs.ReadEvents(&buf)
			if err != nil {
				t.Fatal(err)
			}
			rootStarts, rootEnds := 0, 0
			for _, ev := range events {
				if ev.Name != "experiment."+id {
					continue
				}
				switch ev.Type {
				case obs.EventSpanStart:
					if ev.Parent != 0 {
						t.Errorf("%s: experiment span is not a root span", id)
					}
					rootStarts++
				case obs.EventSpanEnd:
					rootEnds++
				}
			}
			if rootStarts != 1 || rootEnds != 1 {
				t.Errorf("%s: root span start/end = %d/%d, want 1/1", id, rootStarts, rootEnds)
			}
			if o.Gauge("exp."+id+".wall_seconds").Value() <= 0 {
				t.Errorf("%s: wall-time gauge not set", id)
			}
			if o.Counter("harness.experiments").Value() != 1 {
				t.Errorf("%s: experiment counter = %d, want 1", id, o.Counter("harness.experiments").Value())
			}
		})
	}
}
