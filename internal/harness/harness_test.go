package harness

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/plot"
	"repro/internal/sim"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	out, err := tab.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"X: demo", "a", "bb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" {
		t.Errorf("CSV output wrong:\n%s", buf.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2|3"}},
		Notes:   []string{"footnote"},
	}
	md, err := tab.Markdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"**X: demo**", "| a | b |", "|---|---|", `2\|3`, "> footnote"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	bad := Table{ID: "B", Columns: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if _, err := bad.Markdown(); err == nil {
		t.Error("ragged rows: expected error")
	}
}

func TestTableValidation(t *testing.T) {
	bad := Table{ID: "B", Columns: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if _, err := bad.Render(); err == nil {
		t.Error("ragged rows: expected error")
	}
	if err := bad.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("ragged rows: expected CSV error")
	}
	empty := Table{ID: "E"}
	if _, err := empty.Render(); err == nil {
		t.Error("no columns: expected error")
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	fig := Figure{
		ID: "FX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []plot.Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 0}}},
	}
	ascii, err := fig.ASCII(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii, "FX: demo") {
		t.Error("ASCII missing title")
	}
	svg, err := fig.SVG(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") {
		t.Error("SVG missing root element")
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "series,x,y") {
		t.Errorf("figure CSV header wrong: %q", buf.String())
	}
	if strings.Count(buf.String(), "\n") != 3 {
		t.Errorf("figure CSV should have 3 lines:\n%s", buf.String())
	}
	// Mismatched series length.
	fig.Series[0].Y = fig.Series[0].Y[:1]
	if err := fig.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("mismatched series: expected error")
	}
}

func TestFigure1ShapeAndNonUniformity(t *testing.T) {
	fig, err := Figure1(Params{Points: 101})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(FigureNs) {
		t.Fatalf("got %d series", len(fig.Series))
	}
	argmax := make([]float64, len(fig.Series))
	for si, s := range fig.Series {
		if len(s.X) != 101 {
			t.Fatalf("series %q has %d points", s.Name, len(s.X))
		}
		best := 0
		for i := range s.X {
			if s.Y[i] < 0 || s.Y[i] > 1 {
				t.Fatalf("series %q has probability %v outside [0,1]", s.Name, s.Y[i])
			}
			if s.Y[i] > s.Y[best] {
				best = i
			}
		}
		argmax[si] = s.X[best]
	}
	// Non-uniformity made visible: the n=3 and n=4 argmaxes differ.
	if math.Abs(argmax[0]-argmax[1]) < 0.02 {
		t.Errorf("F1 argmaxes %v should differ across n (non-uniformity)", argmax)
	}
	// n=3 curve peaks near the paper's 0.622.
	if math.Abs(argmax[0]-0.622) > 0.02 {
		t.Errorf("n=3 argmax = %v, want ≈ 0.622", argmax[0])
	}
	if _, err := Figure1(Params{Points: 1}); err == nil {
		t.Error("1 point: expected error")
	}
}

func TestFigure2PeaksAtHalf(t *testing.T) {
	fig, err := Figure2(Params{Points: 101})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		best := 0
		for i := range s.X {
			if s.Y[i] > s.Y[best] {
				best = i
			}
		}
		if math.Abs(s.X[best]-0.5) > 0.01 {
			t.Errorf("series %q argmax = %v, want 0.5 (uniformity)", s.Name, s.X[best])
		}
	}
	if _, err := Figure2(Params{}); err == nil {
		t.Error("0 points: expected error")
	}
}

func TestTableObliviousContents(t *testing.T) {
	tab, err := TableOblivious([]int{3, 4}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // two δ per n, minus the n=3 coincidence δ=1=n/3
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	out, err := tab.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.416667") { // 5/12 for n=3, δ=1
		t.Errorf("T1 missing the 5/12 value:\n%s", out)
	}
	if _, err := TableOblivious(nil, Params{}); err == nil {
		t.Error("empty list: expected error")
	}
}

func TestTableCaseN3Contents(t *testing.T) {
	tab, err := TableCaseN3()
	if err != nil {
		t.Fatal(err)
	}
	out, err := tab.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.622036", "0.544631", "6/7"} {
		if !strings.Contains(out, want) {
			t.Errorf("T2 missing %q:\n%s", want, out)
		}
	}
}

func TestTableCaseN4Contents(t *testing.T) {
	tab, err := TableCaseN4()
	if err != nil {
		t.Fatal(err)
	}
	out, err := tab.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.677998", "0.43132", "0.42853"} {
		if !strings.Contains(out, want) {
			t.Errorf("T3 missing %q:\n%s", want, out)
		}
	}
}

func TestTableTradeoffOrdering(t *testing.T) {
	p := Params{Sim: sim.Config{Trials: 60000, Seed: 3}}
	tab, err := TableTradeoff([]int{3, 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	if _, err := TableTradeoff(nil, p); err == nil {
		t.Error("empty list: expected error")
	}
}

func TestTableValidationAllWithinFiveSigma(t *testing.T) {
	tab, err := TableValidation(Params{Sim: sim.Config{Trials: 150000, Seed: 21}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 7 {
		t.Fatalf("got %d validation rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		z, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("parsing z %q: %v", row[5], err)
		}
		if z > 5 {
			t.Errorf("validation row %v deviates %v standard errors", row, z)
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	ids := IDs()
	want := []string{"F1", "F2", "F3", "T1", "T10", "T11", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "V1"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries: %v", len(ids), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("IDs()[%d] = %q, want %q", i, ids[i], id)
		}
	}
	for _, id := range ids {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case KindFigure:
			if e.RunFigure == nil {
				t.Errorf("%s: figure without runner", id)
			}
		case KindTable:
			if e.RunTable == nil {
				t.Errorf("%s: table without runner", id)
			}
		default:
			t.Errorf("%s: unknown kind %v", id, e.Kind)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id: expected error")
	}
}

func TestRegistryRunnersExecute(t *testing.T) {
	// Smoke-run every registry entry with small budgets.
	p := Params{Points: 21, Sim: sim.Config{Trials: 20000, Seed: 4}}
	for _, id := range IDs() {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case KindFigure:
			fig, err := e.RunFigure(p)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				continue
			}
			if len(fig.Series) == 0 {
				t.Errorf("%s: no series", id)
			}
		case KindTable:
			tab, err := e.RunTable(p)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				continue
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s: no rows", id)
			}
			if _, err := tab.Render(); err != nil {
				t.Errorf("%s render: %v", id, err)
			}
		}
	}
}
