package harness

import (
	"fmt"
	"math"
	"math/big"
	"strings"

	"repro/internal/engine"
	"repro/internal/nonoblivious"
	"repro/internal/problem"
)

// VectorOptimumRow is one instance's entry in the T11 chart: the optimal
// per-player threshold vector a* against the best symmetric threshold β*,
// with the departure from the symmetric ray and (for n ≤
// nonoblivious.MaxNExact) a big.Rat certificate on the vector value.
type VectorOptimumRow struct {
	// Instance is the problem evaluated.
	Instance problem.Instance
	// A is the optimal threshold vector a*.
	A []float64
	// PVector is P(a*), the vector family's optimum.
	PVector float64
	// Beta is the best symmetric threshold β*.
	Beta float64
	// PSymmetric is P(β*, …, β*), the symmetric ray's optimum.
	PSymmetric float64
	// Departure is max_i |a*_i − β*|: how far the optimum leaves the ray.
	Departure float64
	// Gain is PVector − PSymmetric (≥ 0 up to search tolerance).
	Gain float64
	// CertErr is |PVector − exact(a*)| against the big.Rat oracle and
	// CertBound the certified float64 round-off bound; Certified reports
	// whether the oracle ran (n ≤ nonoblivious.MaxNExact).
	CertErr   float64
	CertBound float64
	Certified bool
}

// vectorOptimumInstances is the T11 instance sweep: the homogeneous
// case-study instance (where the optimum must stay on the symmetric
// ray), then heterogeneous π vectors and a capacity shift that pull the
// optimal a-vector off the ray.
func vectorOptimumInstances() ([]problem.Instance, error) {
	specs := []struct {
		n     int
		delta float64
		pi    []float64
	}{
		{3, 1, nil},
		{3, 1, []float64{0.5, 1, 1}},
		{3, 2.0 / 3.0, []float64{0.5, 0.75, 1}},
		{4, 4.0 / 3.0, []float64{0.5, 1, 1, 1}},
	}
	out := make([]problem.Instance, 0, len(specs))
	for _, s := range specs {
		var inst problem.Instance
		var err error
		if s.pi != nil {
			inst, err = problem.NewPi(s.n, s.delta, s.pi)
		} else {
			inst, err = problem.New(s.n, s.delta)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// VectorOptimumRows computes the T11 chart rows on the given instances:
// both searches route through the params' (shared, memoizing) engine
// with the exact backend, so the symmetric search rides the vector
// search's cache. For n ≤ nonoblivious.MaxNExact the vector value is
// re-evaluated by the big.Rat oracle at the float-rounded point and the
// difference checked against the certified round-off bound.
func VectorOptimumRows(p Params, instances []problem.Instance) ([]VectorOptimumRow, error) {
	eng := p.engine()
	rows := make([]VectorOptimumRow, 0, len(instances))
	for _, inst := range instances {
		vec, err := eng.Optimize(inst, engine.ThresholdVectorFamily{}, engine.OptimizeOptions{Backend: engine.Exact})
		if err != nil {
			return nil, fmt.Errorf("harness: vector optimum on %s: %w", inst, err)
		}
		sym, err := eng.Optimize(inst, engine.ThresholdBetaFamily{}, engine.OptimizeOptions{Backend: engine.Exact})
		if err != nil {
			return nil, fmt.Errorf("harness: symmetric optimum on %s: %w", inst, err)
		}
		row := VectorOptimumRow{
			Instance:   inst,
			A:          vec.Params,
			PVector:    vec.Value,
			Beta:       sym.Params[0],
			PSymmetric: sym.Value,
			Gain:       vec.Value - sym.Value,
		}
		for _, a := range vec.Params {
			row.Departure = math.Max(row.Departure, math.Abs(a-row.Beta))
		}
		if inst.N <= nonoblivious.MaxNExact {
			exact, bound, err := certifyVector(inst, vec.Params)
			if err != nil {
				return nil, fmt.Errorf("harness: certifying %s: %w", inst, err)
			}
			row.CertErr = math.Abs(vec.Value - exact)
			row.CertBound = bound
			row.Certified = true
			if row.CertErr > bound {
				return nil, fmt.Errorf("harness: %s: |P* − exact| = %g exceeds certified bound %g", inst, row.CertErr, bound)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// certifyVector re-evaluates the threshold vector with the big.Rat
// oracle at exactly the float-rounded point (SetFloat64 is exact, so no
// snapping is introduced) and returns the oracle value plus the
// certified float64 round-off bound.
func certifyVector(inst problem.Instance, a []float64) (exact, bound float64, err error) {
	aRat := make([]*big.Rat, len(a))
	for i, v := range a {
		aRat[i] = new(big.Rat).SetFloat64(v)
	}
	piMin := 1.0
	piRat := make([]*big.Rat, inst.N)
	for i := range piRat {
		piRat[i] = big.NewRat(1, 1)
		if inst.Pi != nil {
			piRat[i] = new(big.Rat).SetFloat64(inst.Pi[i])
			piMin = math.Min(piMin, inst.Pi[i])
		}
	}
	p, err := nonoblivious.WinningProbabilityPiRat(aRat, piRat, new(big.Rat).SetFloat64(inst.Delta))
	if err != nil {
		return 0, 0, err
	}
	exact, _ = p.Float64()
	return exact, nonoblivious.ExactErrorBound(inst.N, inst.Delta, piMin), nil
}

// TableVectorOptimum builds T11: where the optimal threshold vector
// leaves the symmetric ray. Each row pits the full a-vector optimum
// against the best symmetric threshold on one instance; the homogeneous
// case study stays on the ray (departure ≈ 0, the sanity anchor) while
// heterogeneous π vectors pull the optimum off it by amounts far above
// the certified numerical error, so the departures are provably real.
func TableVectorOptimum(p Params) (Table, error) {
	instances, err := vectorOptimumInstances()
	if err != nil {
		return Table{}, err
	}
	rows, err := VectorOptimumRows(p, instances)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "T11",
		Title: "Departure of the optimal a-vector from the symmetric ray (extension)",
		Columns: []string{
			"instance", "a*", "P*(a*)", "β*", "P*(β)", "departure", "gain", "cert",
		},
		Notes: []string{
			"departure = max_i |a*_i − β*|; gain = P*(a*) − P*(β)",
			fmt.Sprintf("cert: |P*(a*) − big.Rat oracle at a*| ≤ certified float64 bound (n ≤ %d)", nonoblivious.MaxNExact),
		},
	}
	for _, r := range rows {
		cert := "—"
		if r.Certified {
			cert = fmt.Sprintf("%.1e ≤ %.1e", r.CertErr, r.CertBound)
		}
		av := make([]string, len(r.A))
		for i, a := range r.A {
			av[i] = fmt.Sprintf("%.4f", a)
		}
		t.Rows = append(t.Rows, []string{
			r.Instance.String(),
			"(" + strings.Join(av, ", ") + ")",
			fmt.Sprintf("%.6f", r.PVector),
			fmt.Sprintf("%.6f", r.Beta),
			fmt.Sprintf("%.6f", r.PSymmetric),
			fmt.Sprintf("%.4f", r.Departure),
			fmt.Sprintf("%.2e", r.Gain),
			cert,
		})
	}
	return t, nil
}
