package qrand

import (
	"math/bits"
	"testing"
)

func TestNewRejectsBadDim(t *testing.T) {
	for _, d := range []int{0, -1, MaxDim + 1} {
		if _, err := New(d, 1); err == nil {
			t.Errorf("New(%d) accepted an out-of-range dimension", d)
		}
	}
	for _, d := range []int{1, 2, MaxDim} {
		if _, err := New(d, 1); err != nil {
			t.Errorf("New(%d): %v", d, err)
		}
	}
}

// Every dimension of a digitally-shifted Sobol sequence is a (0,1)-
// sequence in base 2: among the first 2^k points, each dyadic interval
// [i/2^j, (i+1)/2^j) with j <= k contains exactly 2^(k-j) points. The
// XOR shift permutes dyadic intervals at every level, so the property
// must survive scrambling.
func TestDyadicStratification(t *testing.T) {
	const k = 10
	seq, err := New(MaxDim, 0xfeedface)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 1<<k)
	for dim := 0; dim < MaxDim; dim++ {
		seq.Fill(buf, dim, 0, len(buf))
		for j := 1; j <= k; j++ {
			counts := make([]int, 1<<j)
			for _, x := range buf {
				counts[int(x*float64(int(1)<<j))]++
			}
			want := 1 << (k - j)
			for bin, c := range counts {
				if c != want {
					t.Fatalf("dim %d: level %d bin %d holds %d points, want %d", dim, j, bin, c, want)
				}
			}
		}
	}
}

// The generator matrix is upper triangular with a unit diagonal, so the
// index -> state map is injective: a dimension's stream must not repeat.
func TestStreamNeverRepeats(t *testing.T) {
	const window = 1 << 12
	seq, err := New(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, window)
	for dim := 0; dim < 8; dim++ {
		seq.Fill(buf, dim, 0, window)
		seen := make(map[float64]int, window)
		for i, x := range buf {
			if j, dup := seen[x]; dup {
				t.Fatalf("dim %d: value %v repeats at indices %d and %d", dim, x, j, i)
			}
			seen[x] = i
		}
	}
}

func TestValuesInUnitInterval(t *testing.T) {
	seq, err := New(MaxDim, 7)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 256)
	for dim := 0; dim < MaxDim; dim++ {
		for _, start := range []uint64{0, 1, 1 << 20, 1<<40 + 12345} {
			seq.Fill(buf, dim, start, len(buf))
			for i, x := range buf {
				if !(x >= 0 && x < 1) {
					t.Fatalf("dim %d index %d: %v outside [0,1)", dim, start+uint64(i), x)
				}
			}
		}
	}
}

// Fill at an arbitrary offset must agree with random access via Point:
// the lane path and the direct radical-inverse path are the same stream.
func TestFillMatchesPoint(t *testing.T) {
	const dim = 5
	seq, err := New(dim, 99)
	if err != nil {
		t.Fatal(err)
	}
	const start, count = 777, 130
	cols := make([][]float64, dim)
	for d := range cols {
		cols[d] = make([]float64, count)
		seq.Fill(cols[d], d, start, count)
	}
	pt := make([]float64, dim)
	for i := 0; i < count; i++ {
		seq.Point(start+uint64(i), pt)
		for d := 0; d < dim; d++ {
			if cols[d][i] != pt[d] {
				t.Fatalf("index %d dim %d: Fill=%v Point=%v", start+i, d, cols[d][i], pt[d])
			}
		}
	}
}

func TestSeedsReproducibleAndDistinct(t *testing.T) {
	a1, _ := New(4, 123)
	a2, _ := New(4, 123)
	b, _ := New(4, 124)
	x1 := make([]float64, 64)
	x2 := make([]float64, 64)
	y := make([]float64, 64)
	a1.Fill(x1, 2, 0, 64)
	a2.Fill(x2, 2, 0, 64)
	b.Fill(y, 2, 0, 64)
	same := true
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("same seed diverged at index %d: %v vs %v", i, x1[i], x2[i])
		}
		if x1[i] != y[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// The digital shift must preserve each point set's group structure: the
// scrambled stream is the unscrambled stream XORed with a constant, so
// pairwise XORs of states are seed-independent. Spot-check via the first
// direction vector: state(i=1) ^ state(i=0) == v_0 for every dimension.
func TestDirectionVectorDiagonal(t *testing.T) {
	for d := 0; d < MaxDim; d++ {
		for j := 0; j < 64; j++ {
			v := directions[d][j]
			if v == 0 {
				t.Fatalf("dim %d: direction %d is zero", d, j)
			}
			if bits.TrailingZeros64(v) != 63-j {
				t.Fatalf("dim %d: direction %d has lowest bit %d, want %d (unit diagonal)",
					d, j, bits.TrailingZeros64(v), 63-j)
			}
		}
	}
}

// Fill is the QMC sampler's hot path: it must stay allocation-free.
func TestFillAllocationFree(t *testing.T) {
	seq, err := New(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 256)
	allocs := testing.AllocsPerRun(100, func() {
		for d := 0; d < 16; d++ {
			seq.Fill(buf, d, 4096, len(buf))
		}
	})
	if allocs != 0 {
		t.Fatalf("Fill allocated %v times per run, want 0", allocs)
	}
}

// FuzzStream drives arbitrary (seed, dim, start) windows and checks the
// invariants the simulator relies on: values stay in [0,1), the window
// never repeats a value, and Fill agrees with Point random access.
func FuzzStream(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint64(0))
	f.Add(uint64(42), uint8(7), uint64(1<<30))
	f.Add(uint64(0), uint8(MaxDim-1), uint64(1<<50))
	f.Fuzz(func(t *testing.T, seed uint64, dim uint8, start uint64) {
		d := int(dim) % MaxDim
		seq, err := New(d+1, seed)
		if err != nil {
			t.Fatal(err)
		}
		const window = 512
		if start > 1<<62 {
			start >>= 2
		}
		buf := make([]float64, window)
		seq.Fill(buf, d, start, window)
		seen := make(map[float64]bool, window)
		pt := make([]float64, d+1)
		for i, x := range buf {
			if !(x >= 0 && x < 1) {
				t.Fatalf("index %d: %v outside [0,1)", start+uint64(i), x)
			}
			if seen[x] {
				t.Fatalf("index %d: value %v repeated inside window", start+uint64(i), x)
			}
			seen[x] = true
			seq.Point(start+uint64(i), pt)
			if pt[d] != x {
				t.Fatalf("index %d: Fill=%v Point=%v", start+uint64(i), x, pt[d])
			}
		}
	})
}

func BenchmarkFill(b *testing.B) {
	seq, err := New(4, 11)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.Fill(buf, i&3, uint64(i)<<8, len(buf))
	}
}
