// Package qrand provides low-discrepancy (quasi-random) point sequences
// for the mc-qmc sampling mode: a 64-bit Sobol sequence with per-replicate
// digital-shift scrambling.
//
// Direction numbers are derived at package init from primitive polynomials
// over GF(2), found by exhaustive search in ascending (degree, value)
// order, with odd initial values m_k drawn from a fixed SplitMix64 stream.
// The base point set is therefore a fixed, reproducible constant of the
// package; randomization happens only through the per-instance digital
// shift (a per-dimension XOR mask derived from the caller's seed), which
// keeps every point uniformly distributed on the 2^-53 grid while
// preserving the dyadic equidistribution of the underlying net. Averaging
// estimates over independently seeded replicates yields an unbiased
// estimator with an honest, sample-based standard error.
//
// Points are generated in Gray-code order (the standard Sobol traversal):
// the first 2^k points of any prefix form the same set as the first 2^k
// radical-inverse points, and consecutive indices differ by a single
// direction-vector XOR, so lane fills cost a few instructions per
// coordinate. The map index -> state is injective per dimension (the
// generator matrix is upper triangular with a unit diagonal), so a
// dimension's stream never repeats for indices below 2^64.
package qrand

import (
	"fmt"
	"math/bits"
)

// MaxDim is the largest number of dimensions a Sequence supports. It is
// bounded by the number of primitive polynomials enumerated at init; 96
// covers every instance the simulator's QMC mode accepts (n players plus
// one coin dimension per strictly-randomized player).
const MaxDim = 96

// directions[d][j] is the j-th direction vector of dimension d, stored as
// a 64-bit binary fraction (bit 63 = 1/2). Computed once at package init.
var directions [MaxDim][64]uint64

func init() {
	// Dimension 0 is the van der Corput sequence: v_j = 2^-(j+1).
	for j := 0; j < 64; j++ {
		directions[0][j] = 1 << (63 - j)
	}
	polys := primitivePolys(MaxDim - 1)
	var m [64]uint64
	for d := 1; d < MaxDim; d++ {
		p := uint64(polys[d-1])
		s := bits.Len64(p) - 1 // degree of the polynomial
		for k := 0; k < s; k++ {
			m[k] = initialM(d, k+1)
		}
		// m_k = 2^s m_{k-s} XOR m_{k-s} XOR_{i=1..s-1} c_i 2^i m_{k-i},
		// where c_i is the coefficient of x^(s-i) in the polynomial.
		for k := s; k < 64; k++ {
			v := m[k-s] ^ (m[k-s] << uint(s))
			for i := 1; i < s; i++ {
				if p>>(uint(s-i))&1 == 1 {
					v ^= m[k-i] << uint(i)
				}
			}
			m[k] = v
		}
		for j := 0; j < 64; j++ {
			directions[d][j] = m[j] << uint(63-j)
		}
	}
}

// initialM returns the initial direction value m_k for dimension d:
// odd, below 2^k, drawn from a fixed (seed-independent) SplitMix64 hash
// so the base sequence is a stable constant of the package.
func initialM(d, k int) uint64 {
	r := splitmix(0x5bf0_3635_0c48_b1a1 ^ uint64(d)*0x9e3779b97f4a7c15 ^ uint64(k)<<32)
	return r&(1<<uint(k)-1) | 1
}

// splitmix is the SplitMix64 finalizer, used to derive initial direction
// values and scramble masks from integer labels.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sequence is a digitally-shifted Sobol sequence over a fixed number of
// dimensions. Instances are cheap (one mask per dimension) and safe for
// concurrent use: Fill is stateless with respect to the receiver.
type Sequence struct {
	dim  int
	mask []uint64
}

// New returns a Sequence over dim dimensions whose digital shift is
// derived from seed. Two sequences with the same (dim, seed) generate
// identical points; different seeds give independent scramblings of the
// same underlying net.
func New(dim int, seed uint64) (*Sequence, error) {
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("qrand: dimension %d out of range [1, %d]", dim, MaxDim)
	}
	s := &Sequence{dim: dim, mask: make([]uint64, dim)}
	for d := range s.mask {
		s.mask[d] = splitmix(seed ^ uint64(d+1)*0xd1342543de82ef95)
	}
	return s, nil
}

// Dim reports the number of dimensions the sequence generates.
func (s *Sequence) Dim() int { return s.dim }

// state returns the unscrambled Sobol state of point index i in
// dimension d: the XOR of the direction vectors selected by the bits of
// the Gray code of i.
func state(d int, i uint64) uint64 {
	v := &directions[d]
	g := i ^ i>>1
	var x uint64
	for g != 0 {
		x ^= v[bits.TrailingZeros64(g)]
		g &= g - 1
	}
	return x
}

// Fill writes coordinate dim of points start..start+count-1 into
// dst[:count]. Values lie in [0, 1). It performs no allocations, so lane
// kernels can stream coordinates column by column.
func (s *Sequence) Fill(dst []float64, dim int, start uint64, count int) {
	if dim < 0 || dim >= s.dim {
		panic(fmt.Sprintf("qrand: Fill dimension %d out of range [0, %d)", dim, s.dim))
	}
	m := s.mask[dim]
	v := &directions[dim]
	x := state(dim, start)
	for i := 0; i < count; i++ {
		// Exactly the stdlib rand/v2 Float64 construction: the top 53
		// bits of the scrambled state, scaled into [0, 1).
		dst[i] = float64((x^m)>>11) / (1 << 53)
		x ^= v[bits.TrailingZeros64(start+uint64(i)+1)]
	}
}

// Point writes all coordinates of point index i into dst[:Dim()].
// Intended for tests and spot checks; lane code should use Fill.
func (s *Sequence) Point(i uint64, dst []float64) {
	if len(dst) < s.dim {
		panic("qrand: Point destination shorter than dimension")
	}
	for d := 0; d < s.dim; d++ {
		dst[d] = float64((state(d, i)^s.mask[d])>>11) / (1 << 53)
	}
}

// --- primitive polynomial search over GF(2) ---

// primitivePolys returns the first count primitive polynomials over
// GF(2) in ascending (degree, value) order, encoded as bitmasks with the
// leading and constant terms set.
func primitivePolys(count int) []uint32 {
	polys := make([]uint32, 0, count)
	for d := 1; len(polys) < count; d++ {
		ord := uint64(1)<<uint(d) - 1
		factors := primeFactors(ord)
		for mid := uint32(0); mid < 1<<uint(d-1) && len(polys) < count; mid++ {
			p := uint32(1)<<uint(d) | mid<<1 | 1
			if isPrimitive(uint64(p), d, ord, factors) {
				polys = append(polys, p)
			}
		}
	}
	return polys
}

// isPrimitive reports whether p (degree d, constant term 1) is primitive:
// the multiplicative order of x in GF(2)[x]/(p) equals ord = 2^d - 1.
// That can only hold when p is irreducible, so no separate check is
// needed: a reducible p has a unit group smaller than ord.
func isPrimitive(p uint64, d int, ord uint64, factors []uint64) bool {
	if polyPowMod(2, ord, p, d) != 1 {
		return false
	}
	for _, q := range factors {
		if polyPowMod(2, ord/q, p, d) == 1 {
			return false
		}
	}
	return true
}

// polyMulMod multiplies two polynomials of degree < d over GF(2),
// reduced modulo p (degree d).
func polyMulMod(a, b, p uint64, d int) uint64 {
	var r uint64
	for b != 0 {
		if b&1 == 1 {
			r ^= a
		}
		b >>= 1
		a <<= 1
		if a>>uint(d)&1 == 1 {
			a ^= p
		}
	}
	return r
}

// polyPowMod computes base^e modulo p (degree d) over GF(2).
func polyPowMod(base, e, p uint64, d int) uint64 {
	r := uint64(1)
	for ; e != 0; e >>= 1 {
		if e&1 == 1 {
			r = polyMulMod(r, base, p, d)
		}
		base = polyMulMod(base, base, p, d)
	}
	return r
}

// primeFactors returns the distinct prime factors of n by trial division
// (n is at most 2^MaxDegree - 1, so this is instant).
func primeFactors(n uint64) []uint64 {
	var fs []uint64
	for f := uint64(2); f*f <= n; f++ {
		if n%f == 0 {
			fs = append(fs, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
