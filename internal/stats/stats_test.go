package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Error("zero-value accumulator invariants violated")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", r.Variance(), 32.0/7)
	}
	if math.Abs(r.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if math.Abs(r.StdErr()-r.StdDev()/math.Sqrt(8)) > 1e-15 {
		t.Errorf("stderr = %v", r.StdErr())
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Variance() != 0 || r.Min() != 3.5 || r.Max() != 3.5 || r.Mean() != 3.5 {
		t.Error("single observation invariants violated")
	}
}

func TestRunningMergeMatchesSequentialProperty(t *testing.T) {
	f := func(seedA, seedB uint64, nA, nB uint8) bool {
		rngA := rand.New(rand.NewPCG(seedA, 1))
		rngB := rand.New(rand.NewPCG(seedB, 2))
		var a, b, all Running
		for i := 0; i < int(nA); i++ {
			x := rngA.NormFloat64()
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nB); i++ {
			x := rngB.NormFloat64()
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		tol := 1e-9 * (1 + math.Abs(all.Mean()))
		if math.Abs(a.Mean()-all.Mean()) > tol {
			return false
		}
		return math.Abs(a.Variance()-all.Variance()) <= 1e-9*(1+all.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Merge(b) // both empty
	if a.N() != 0 {
		t.Error("merging empties should stay empty")
	}
	b.Add(2)
	a.Merge(b) // empty receiver
	if a.N() != 1 || a.Mean() != 2 {
		t.Error("merge into empty should copy")
	}
	var c Running
	a.Merge(c) // empty argument
	if a.N() != 1 || a.Mean() != 2 {
		t.Error("merging an empty argument should be a no-op")
	}
}

func TestProportionBasics(t *testing.T) {
	var p Proportion
	if p.Estimate() != 0 || p.StdErr() != 0 {
		t.Error("empty proportion invariants violated")
	}
	for i := 0; i < 10; i++ {
		p.Add(i < 3)
	}
	if p.Trials() != 10 || p.Successes() != 3 {
		t.Errorf("trials/successes = %d/%d", p.Trials(), p.Successes())
	}
	if math.Abs(p.Estimate()-0.3) > 1e-15 {
		t.Errorf("estimate = %v", p.Estimate())
	}
	want := math.Sqrt(0.3 * 0.7 / 10)
	if math.Abs(p.StdErr()-want) > 1e-15 {
		t.Errorf("stderr = %v, want %v", p.StdErr(), want)
	}
}

func TestProportionAddNAndMerge(t *testing.T) {
	var p Proportion
	if err := p.AddN(5, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddN(11, 10); err == nil {
		t.Error("successes > trials: expected error")
	}
	if err := p.AddN(-1, 10); err == nil {
		t.Error("negative successes: expected error")
	}
	if err := p.AddN(0, -1); err == nil {
		t.Error("negative trials: expected error")
	}
	var q Proportion
	if err := q.AddN(3, 10); err != nil {
		t.Fatal(err)
	}
	p.Merge(q)
	if p.Trials() != 20 || p.Successes() != 8 {
		t.Errorf("after merge: %d/%d", p.Successes(), p.Trials())
	}
}

func TestWilsonCI(t *testing.T) {
	var p Proportion
	if _, _, err := p.WilsonCI(1.96); err == nil {
		t.Error("empty counter: expected error")
	}
	if err := p.AddN(50, 100); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := p.WilsonCI(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("CI [%v, %v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%v, %v] too wide for n=100", lo, hi)
	}
	if _, _, err := p.WilsonCI(0); err == nil {
		t.Error("z=0: expected error")
	}
	if _, _, err := p.WilsonCI(math.NaN()); err == nil {
		t.Error("z=NaN: expected error")
	}
	// Extreme proportions stay clamped in [0, 1].
	var ones Proportion
	if err := ones.AddN(10, 10); err != nil {
		t.Fatal(err)
	}
	lo, hi, err = ones.WilsonCI(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0 || hi > 1 {
		t.Errorf("CI [%v, %v] escaped [0, 1]", lo, hi)
	}
}

func TestWilsonCICoverageProperty(t *testing.T) {
	// With the true p = 0.545 (the paper's optimal winning probability for
	// n=3), the 95% Wilson interval should cover p in the vast majority of
	// simulated experiments.
	const trueP = 0.545
	rng := rand.New(rand.NewPCG(7, 9))
	covered := 0
	const experiments = 300
	for e := 0; e < experiments; e++ {
		var p Proportion
		for i := 0; i < 400; i++ {
			p.Add(rng.Float64() < trueP)
		}
		lo, hi, err := p.WilsonCI(1.96)
		if err != nil {
			t.Fatal(err)
		}
		if lo <= trueP && trueP <= hi {
			covered++
		}
	}
	if covered < 270 { // 90% of experiments; nominal is 95%
		t.Errorf("Wilson CI covered true p in only %d/%d experiments", covered, experiments)
	}
}

func TestECDFBasics(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty sample: expected error")
	}
	if _, err := NewECDF([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN sample: expected error")
	}
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75}, // ties included
		{3, 1},
		{9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e, err := NewECDF(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = -100
	if e.At(0) != 0 {
		t.Error("ECDF aliased its input sample")
	}
}

func TestKSDistanceUniformSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = rng.Float64()
	}
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.KSDistance(func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(len(sample), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Errorf("KS distance %v exceeds 1%% critical value %v for a true uniform sample", d, crit)
	}
	// A wrong CDF must be detected.
	dWrong, err := e.KSDistance(func(x float64) float64 { return x * x })
	if err != nil {
		t.Fatal(err)
	}
	if dWrong < crit {
		t.Errorf("KS distance %v against wrong CDF should exceed %v", dWrong, crit)
	}
	if _, err := e.KSDistance(nil); err == nil {
		t.Error("nil CDF: expected error")
	}
}

func TestKSCriticalValueValidation(t *testing.T) {
	if _, err := KSCriticalValue(0, 0.05); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := KSCriticalValue(100, 0.5); err == nil {
		t.Error("unsupported alpha: expected error")
	}
	for _, alpha := range []float64{0.10, 0.05, 0.01} {
		v, err := KSCriticalValue(100, alpha)
		if err != nil || v <= 0 {
			t.Errorf("alpha=%v: %v, %v", alpha, v, err)
		}
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("empty range: expected error")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero buckets: expected error")
	}
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-0.5, 0, 0.1, 0.3, 0.6, 0.99, 1.0, 1.5} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	// x == hi lands in the last bucket.
	if h.Counts[3] != 2 { // 0.99 and 1.0
		t.Errorf("last bucket = %d, want 2", h.Counts[3])
	}
	d, err := h.Density(0)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 0 holds {0, 0.1}: 2 of 6 in a width-0.25 bucket.
	if math.Abs(d-2.0/6/0.25) > 1e-12 {
		t.Errorf("density = %v", d)
	}
	if _, err := h.Density(9); err == nil {
		t.Error("out-of-range bucket: expected error")
	}
	empty, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Density(0); err == nil {
		t.Error("empty histogram density: expected error")
	}
}
