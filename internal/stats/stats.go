// Package stats provides the streaming statistics used to validate the
// paper's exact formulas against Monte-Carlo simulation: Welford running
// moments, binomial (Wilson) confidence intervals for win probabilities,
// empirical CDFs, and the Kolmogorov-Smirnov distance between an empirical
// sample and an analytic CDF.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of observations with Welford's numerically
// stable online algorithm. The zero value is ready for use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Merge folds another accumulator into r (parallel reduction), using the
// Chan et al. pairwise update.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.mean += delta * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean (0 when empty).
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Min returns the minimum observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the maximum observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Proportion is a Bernoulli success counter with confidence intervals.
// The zero value is ready for use.
type Proportion struct {
	successes int64
	trials    int64
}

// Add records one trial.
func (p *Proportion) Add(success bool) {
	p.trials++
	if success {
		p.successes++
	}
}

// AddN records a batch of trials.
func (p *Proportion) AddN(successes, trials int64) error {
	if trials < 0 || successes < 0 || successes > trials {
		return fmt.Errorf("stats: invalid batch %d/%d", successes, trials)
	}
	p.successes += successes
	p.trials += trials
	return nil
}

// Merge folds another counter into p.
func (p *Proportion) Merge(o Proportion) {
	p.successes += o.successes
	p.trials += o.trials
}

// Trials returns the number of trials.
func (p *Proportion) Trials() int64 { return p.trials }

// Successes returns the number of successes.
func (p *Proportion) Successes() int64 { return p.successes }

// Estimate returns the success fraction (0 when empty).
func (p *Proportion) Estimate() float64 {
	if p.trials == 0 {
		return 0
	}
	return float64(p.successes) / float64(p.trials)
}

// StdErr returns the binomial standard error of the estimate.
func (p *Proportion) StdErr() float64 {
	if p.trials == 0 {
		return 0
	}
	e := p.Estimate()
	return math.Sqrt(e * (1 - e) / float64(p.trials))
}

// WilsonCI returns the Wilson score confidence interval at the given
// normal quantile z (1.96 for 95%). It returns an error for non-positive z
// or an empty counter.
func (p *Proportion) WilsonCI(z float64) (lo, hi float64, err error) {
	if z <= 0 || math.IsNaN(z) {
		return 0, 0, fmt.Errorf("stats: non-positive z quantile %v", z)
	}
	if p.trials == 0 {
		return 0, 0, fmt.Errorf("stats: Wilson interval of empty counter")
	}
	n := float64(p.trials)
	phat := p.Estimate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample. It returns an error on an empty or
// NaN-containing sample.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: empty sample for ECDF")
	}
	cp := make([]float64, len(sample))
	copy(cp, sample)
	for i, v := range cp {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("stats: NaN at sample index %d", i)
		}
	}
	sort.Float64s(cp)
	return &ECDF{sorted: cp}, nil
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of sample points ≤ x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// scan forward over ties to include all points equal to x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// KSDistance returns the Kolmogorov-Smirnov statistic
// sup_x |ECDF(x) - cdf(x)| against an analytic CDF, evaluated at the
// sample points (both one-sided gaps). It returns an error if cdf is nil.
func (e *ECDF) KSDistance(cdf func(float64) float64) (float64, error) {
	if cdf == nil {
		return 0, fmt.Errorf("stats: nil CDF for KS distance")
	}
	n := float64(len(e.sorted))
	var d float64
	for i, x := range e.sorted {
		f := cdf(x)
		upper := float64(i+1)/n - f
		lower := f - float64(i)/n
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return d, nil
}

// KSCriticalValue returns the asymptotic Kolmogorov-Smirnov critical value
// c(α)/√n for the common significance levels α ∈ {0.10, 0.05, 0.01}.
// It returns an error for other levels or non-positive n.
func KSCriticalValue(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: non-positive sample size %d", n)
	}
	var c float64
	switch alpha {
	case 0.10:
		c = 1.224
	case 0.05:
		c = 1.358
	case 0.01:
		c = 1.628
	default:
		return 0, fmt.Errorf("stats: unsupported KS significance level %v", alpha)
	}
	return c / math.Sqrt(float64(n)), nil
}

// Histogram bins a sample into equal-width buckets over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
}

// NewHistogram builds a histogram with the given number of buckets.
// It returns an error for invalid bounds or bucket counts.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v]", lo, hi)
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: bucket count %d must be positive", buckets)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, buckets)}, nil
}

// Add records one observation, counting out-of-range values in Under/Over.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		if x == h.Hi {
			h.Counts[len(h.Counts)-1]++
			return
		}
		h.Over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) {
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Density returns the normalized density of bucket i (observations per
// unit x). It returns an error for an out-of-range bucket or empty
// histogram.
func (h *Histogram) Density(i int) (float64, error) {
	if i < 0 || i >= len(h.Counts) {
		return 0, fmt.Errorf("stats: bucket %d out of range [0, %d)", i, len(h.Counts))
	}
	total := h.Total()
	if total == 0 {
		return 0, fmt.Errorf("stats: density of empty histogram")
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(total) * width), nil
}
