package response

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/combin"
	"repro/internal/model"
	"repro/internal/optimize"
)

// StepRule is a randomized decision rule with a piecewise-constant
// response function: the unit interval is split into equal cells and a
// player whose input lands in cell i chooses bin 0 with probability
// Probs[i]. This is the full randomized generality of the paper's model
// (Section 3: "a function which assigns, for each input, a probability
// distribution on {0,1}"), discretized; deterministic interval-set rules
// are the 0/1-valued special case.
type StepRule struct {
	probs []float64
}

// NewStepRule validates the cell probabilities (each in [0, 1], at least
// one cell).
func NewStepRule(probs []float64) (*StepRule, error) {
	if len(probs) == 0 {
		return nil, fmt.Errorf("response: step rule needs at least one cell")
	}
	cp := make([]float64, len(probs))
	for i, p := range probs {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return nil, fmt.Errorf("response: cell %d probability %v outside [0, 1]", i, p)
		}
		cp[i] = p
	}
	return &StepRule{probs: cp}, nil
}

// Cells returns the number of cells.
func (r *StepRule) Cells() int { return len(r.probs) }

// Probs returns a copy of the cell probabilities.
func (r *StepRule) Probs() []float64 {
	out := make([]float64, len(r.probs))
	copy(out, r.probs)
	return out
}

// ProbAt returns P(bin 0 | input = x).
func (r *StepRule) ProbAt(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x >= 1 {
		x = math.Nextafter(1, 0)
	}
	i := int(x * float64(len(r.probs)))
	if i >= len(r.probs) {
		i = len(r.probs) - 1
	}
	return r.probs[i]
}

// LocalRule returns a model.LocalRule view of the step rule for the
// simulator.
func (r *StepRule) LocalRule() model.LocalRule { return stepLocalRule{r} }

type stepLocalRule struct{ r *StepRule }

// Decide implements model.LocalRule.
func (s stepLocalRule) Decide(input float64, rng *rand.Rand) (model.Bin, error) {
	p := s.r.ProbAt(input)
	switch {
	case p <= 0:
		return model.Bin1, nil
	case p >= 1:
		return model.Bin0, nil
	case rng == nil:
		return 0, fmt.Errorf("response: randomized step rule needs a random source")
	case rng.Float64() < p:
		return model.Bin0, nil
	default:
		return model.Bin1, nil
	}
}

// WinProbabilityStep evaluates the symmetric randomized rule: every player
// applies the same step response g. Conditioning on the decision vector,
// the bin-0 inputs are iid with (defective) density g(x) on [0,1] and the
// bin-1 inputs with density 1-g(x), so the convolution factorization of
// Theorem 5.1 carries over verbatim with soft densities.
func (e *Evaluator) WinProbabilityStep(r *StepRule) (float64, error) {
	if r == nil {
		return 0, fmt.Errorf("response: nil step rule")
	}
	f0 := e.resample(r.probs)
	f1 := make([]float64, len(f0))
	for i, v := range f0 {
		f1[i] = 1 - v
	}
	n0 := e.partialMasses(f0)
	n1 := e.partialMasses(f1)
	row, err := combin.PascalRow(e.n)
	if err != nil {
		return 0, err
	}
	var acc combin.Accumulator
	for k := 0; k <= e.n; k++ {
		acc.Add(row[k] * n0[e.n-k] * n1[k])
	}
	return clamp01(acc.Sum()), nil
}

// resample maps the rule's cell probabilities onto the evaluator's grid
// (cellwise-constant interpolation with exact partial-cell averaging).
func (e *Evaluator) resample(probs []float64) []float64 {
	out := make([]float64, e.grid)
	k := float64(len(probs))
	for i := range out {
		// Grid cell i covers [i, i+1)·h; average the rule over it.
		lo := float64(i) * e.h * k
		hi := (float64(i) + 1) * e.h * k
		loCell := int(lo)
		hiCell := int(hi)
		if hiCell >= len(probs) {
			hiCell = len(probs) - 1
		}
		if loCell >= len(probs) {
			loCell = len(probs) - 1
		}
		if loCell == hiCell {
			out[i] = probs[loCell]
			continue
		}
		var sum float64
		for c := loCell; c <= hiCell; c++ {
			cLo := math.Max(lo, float64(c))
			cHi := math.Min(hi, float64(c+1))
			if cHi > cLo {
				sum += probs[c] * (cHi - cLo)
			}
		}
		out[i] = sum / (hi - lo)
	}
	return out
}

// OptimizeStep searches symmetric randomized step rules with the given
// number of cells by Nelder-Mead over the cell probabilities, seeded from
// the best single threshold and from a deterministic band. Because the
// winning probability is multilinear in each individual player's response,
// randomization cannot beat the best deterministic rule globally — but
// this search operates within SYMMETRIC strategies, where interior
// randomization could in principle help; the measured answer is recorded
// in EXPERIMENTS.md.
func (e *Evaluator) OptimizeStep(cells int) (*StepRule, float64, error) {
	if cells < 1 || cells > 64 {
		return nil, 0, fmt.Errorf("response: cell count %d outside [1, 64]", cells)
	}
	obj := func(v []float64) float64 {
		probs := make([]float64, cells)
		for i, p := range v {
			probs[i] = clamp01(p)
		}
		r, err := NewStepRule(probs)
		if err != nil {
			return math.Inf(-1)
		}
		p, err := e.WinProbabilityStep(r)
		if err != nil {
			return math.Inf(-1)
		}
		return p
	}
	// Seed 1: the best single threshold as a step function.
	base, err := e.OptimizeThreshold()
	if err != nil {
		return nil, 0, err
	}
	baseBeta := 0.0
	if ivs := base.Set.Intervals(); len(ivs) > 0 {
		baseBeta = ivs[0].Hi
	}
	thresholdStart := make([]float64, cells)
	for i := range thresholdStart {
		mid := (float64(i) + 0.5) / float64(cells)
		if mid <= baseBeta {
			thresholdStart[i] = 1
		}
	}
	// Seed 2: a middle band.
	bandStart := make([]float64, cells)
	for i := range bandStart {
		mid := (float64(i) + 0.5) / float64(cells)
		if mid > 0.3 && mid < 0.75 {
			bandStart[i] = 1
		}
	}
	// Seed 3: the fair coin.
	coinStart := make([]float64, cells)
	for i := range coinStart {
		coinStart[i] = 0.5
	}
	lo := make([]float64, cells)
	hi := make([]float64, cells)
	for i := range hi {
		hi[i] = 1
	}
	bestVal := math.Inf(-1)
	var bestProbs []float64
	for _, start := range [][]float64{thresholdStart, bandStart, coinStart} {
		res, err := optimize.NelderMeadMax(obj, start, lo, hi, 0.25, 4000, 1e-10)
		if err != nil {
			return nil, 0, err
		}
		if res.Value > bestVal {
			bestVal = res.Value
			bestProbs = res.X
		}
	}
	for i, p := range bestProbs {
		bestProbs[i] = clamp01(p)
	}
	rule, err := NewStepRule(bestProbs)
	if err != nil {
		return nil, 0, err
	}
	return rule, bestVal, nil
}
