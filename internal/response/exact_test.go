package response

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/nonoblivious"
)

func ri(lo, hi *big.Rat) RatInterval { return RatInterval{Lo: lo, Hi: hi} }

func rr(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestNewRatIntervalSetValidation(t *testing.T) {
	if _, err := NewRatIntervalSet([]RatInterval{ri(rr(-1, 2), rr(1, 2))}); err == nil {
		t.Error("negative lo: expected error")
	}
	if _, err := NewRatIntervalSet([]RatInterval{ri(rr(1, 2), rr(3, 2))}); err == nil {
		t.Error("hi > 1: expected error")
	}
	if _, err := NewRatIntervalSet([]RatInterval{ri(rr(2, 3), rr(1, 3))}); err == nil {
		t.Error("inverted: expected error")
	}
	if _, err := NewRatIntervalSet([]RatInterval{ri(rr(0, 1), rr(1, 2)), ri(rr(1, 3), rr(2, 3))}); err == nil {
		t.Error("overlap: expected error")
	}
	if _, err := NewRatIntervalSet([]RatInterval{{Lo: nil, Hi: rr(1, 2)}}); err == nil {
		t.Error("nil endpoint: expected error")
	}
}

func TestRatIntervalSetMeasureAndComplement(t *testing.T) {
	s, err := NewRatIntervalSet([]RatInterval{
		ri(rr(1, 10), rr(3, 10)),
		ri(rr(3, 5), rr(4, 5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Measure().Cmp(rr(2, 5)) != 0 {
		t.Errorf("measure = %v, want 2/5", s.Measure())
	}
	c := s.Complement()
	sum := new(big.Rat).Add(s.Measure(), c.Measure())
	if sum.Cmp(rr(1, 1)) != 0 {
		t.Errorf("measures sum to %v, want 1", sum)
	}
	if len(c.intervals) != 3 {
		t.Errorf("complement has %d intervals, want 3", len(c.intervals))
	}
}

func TestRatIntervalSetFloat(t *testing.T) {
	s, err := NewRatIntervalSet([]RatInterval{ri(rr(1, 4), rr(3, 4))})
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Float()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Measure()-0.5) > 1e-15 {
		t.Errorf("float measure = %v", f.Measure())
	}
}

func TestExactWinProbabilityMatchesThresholdTheory(t *testing.T) {
	// A threshold set [0, β] must reproduce the symbolic Theorem 5.1
	// value exactly (identical rationals).
	for _, c := range []struct {
		n        int
		capacity *big.Rat
		beta     *big.Rat
	}{
		{3, rr(1, 1), rr(5, 8)},
		{3, rr(1, 1), rr(1, 2)},
		{4, rr(4, 3), rr(2, 3)},
		{5, rr(5, 3), rr(3, 5)},
	} {
		s, err := NewRatIntervalSet([]RatInterval{ri(new(big.Rat), c.beta)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactWinProbability(c.n, c.capacity, s)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := nonoblivious.SymbolicSymmetric(c.n, c.capacity)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pw.Eval(c.beta)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Errorf("n=%d δ=%v β=%v: exact set value %v vs symbolic %v",
				c.n, c.capacity, c.beta, got, want)
		}
	}
}

func TestExactWinProbabilityBandMatchesGridOracle(t *testing.T) {
	// The n=4 band finding, now in exact arithmetic: the grid-convolution
	// value must agree to its stated accuracy.
	band, err := NewRatIntervalSet([]RatInterval{ri(rr(327, 1000), rr(742, 1000))})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactWinProbability(4, rr(4, 3), band)
	if err != nil {
		t.Fatal(err)
	}
	ef, _ := exact.Float64()
	fb, err := band.Float()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(4, 4.0/3, 2048)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ev.WinProbability(fb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grid-ef) > 5e-4 {
		t.Errorf("grid %v vs exact %v", grid, ef)
	}
	// The finding itself, certified: the band beats both paper classes.
	if !(ef > 0.431328) {
		t.Errorf("exact band value %v should beat the oblivious coin 0.431327", ef)
	}
	if !(ef > 0.428540) {
		t.Errorf("exact band value %v should beat the threshold optimum 0.428539", ef)
	}
}

func TestExactWinProbabilityEmptyAndFull(t *testing.T) {
	empty, err := NewRatIntervalSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ExactWinProbability(3, rr(1, 1), empty)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(rr(1, 6)) != 0 {
		t.Errorf("P(∅) = %v, want exactly 1/6 (= F_3(1))", p)
	}
	full, err := NewRatIntervalSet([]RatInterval{ri(new(big.Rat), rr(1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	p, err = ExactWinProbability(3, rr(1, 1), full)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(rr(1, 6)) != 0 {
		t.Errorf("P([0,1]) = %v, want exactly 1/6", p)
	}
}

func TestExactWinProbabilityDegenerateIntervalIgnored(t *testing.T) {
	// A zero-width interval carries no mass; including it must not change
	// the result.
	with, err := NewRatIntervalSet([]RatInterval{
		ri(rr(1, 8), rr(1, 8)), // degenerate
		ri(rr(1, 4), rr(3, 4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewRatIntervalSet([]RatInterval{ri(rr(1, 4), rr(3, 4))})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExactWinProbability(3, rr(1, 1), with)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExactWinProbability(3, rr(1, 1), without)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) != 0 {
		t.Errorf("degenerate interval changed the value: %v vs %v", a, b)
	}
}

func TestExactWinProbabilityValidation(t *testing.T) {
	s, err := NewRatIntervalSet([]RatInterval{ri(rr(1, 4), rr(3, 4))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactWinProbability(1, rr(1, 1), s); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := ExactWinProbability(13, rr(1, 1), s); err == nil {
		t.Error("n=13: expected error")
	}
	if _, err := ExactWinProbability(3, nil, s); err == nil {
		t.Error("nil capacity: expected error")
	}
	if _, err := ExactWinProbability(3, rr(0, 1), s); err == nil {
		t.Error("zero capacity: expected error")
	}
}
