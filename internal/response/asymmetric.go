package response

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/dist"
)

// WinProbabilityVector evaluates the fully general deterministic
// no-communication algorithm: player i places its input in bin 0 exactly
// when it lies in sets[i]. This is the asymmetric extension of
// ExactWinProbability in float64: for every decision vector b, the joint
// probability that the bin-0 players' inputs land in their sets with a
// fitting sum decomposes over the pattern of intervals chosen, each
// pattern reducing to a shifted Lemma 2.4 CDF.
//
// Cost grows as 2^n × Π(intervals per player), so n is capped at 10 and
// each player's region at 4 intervals.
func WinProbabilityVector(sets []IntervalSet, capacity float64) (float64, error) {
	n := len(sets)
	if n < 2 {
		return 0, fmt.Errorf("response: need at least 2 players, got %d", n)
	}
	if n > 10 {
		return 0, fmt.Errorf("response: vector evaluation limited to 10 players, got %d", n)
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return 0, fmt.Errorf("response: capacity %v must be strictly positive and finite", capacity)
	}
	complements := make([]IntervalSet, n)
	for i, s := range sets {
		if len(s.intervals) > 4 {
			return 0, fmt.Errorf("response: player %d has %d intervals, max 4", i, len(s.intervals))
		}
		complements[i] = s.Complement()
	}
	var total combin.Accumulator
	zeroSets := make([]IntervalSet, 0, n)
	oneSets := make([]IntervalSet, 0, n)
	err := combin.ForEachSubset(n, func(b uint64) bool {
		zeroSets = zeroSets[:0]
		oneSets = oneSets[:0]
		for i := 0; i < n; i++ {
			if b&(1<<uint(i)) == 0 {
				zeroSets = append(zeroSets, sets[i])
			} else {
				oneSets = append(oneSets, complements[i])
			}
		}
		m0 := jointMass(zeroSets, capacity)
		if m0 == 0 {
			return true
		}
		m1 := jointMass(oneSets, capacity)
		total.Add(m0 * m1)
		return true
	})
	if err != nil {
		return 0, err
	}
	return clamp01(total.Sum()), nil
}

// WinProbabilityVectorPairs evaluates the most general event this package
// supports: player i contributes to bin 0 when its input lies in
// bin0[i], to bin 1 when it lies in bin1[i], and the round is only
// counted when every input lands in bin0[i] ∪ bin1[i] (the pair may
// cover less than [0,1], which is how conditioning on a communication
// outcome — e.g. a broadcast bit fixing a sub-range of the sender's input
// — enters the framework). bin0[i] and bin1[i] must be disjoint. The
// returned value is the UNCONDITIONAL probability
// P(all inputs covered ∧ Σ₀ ≤ δ ∧ Σ₁ ≤ δ); summing it over a partition of
// conditioning events yields a protocol's total winning probability.
func WinProbabilityVectorPairs(bin0, bin1 []IntervalSet, capacity float64) (float64, error) {
	n := len(bin0)
	if n < 2 {
		return 0, fmt.Errorf("response: need at least 2 players, got %d", n)
	}
	if len(bin1) != n {
		return 0, fmt.Errorf("response: %d bin-0 regions but %d bin-1 regions", n, len(bin1))
	}
	if n > 10 {
		return 0, fmt.Errorf("response: vector evaluation limited to 10 players, got %d", n)
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return 0, fmt.Errorf("response: capacity %v must be strictly positive and finite", capacity)
	}
	for i := 0; i < n; i++ {
		if len(bin0[i].intervals) > 4 || len(bin1[i].intervals) > 4 {
			return 0, fmt.Errorf("response: player %d exceeds 4 intervals per region", i)
		}
		for _, a := range bin0[i].intervals {
			for _, b := range bin1[i].intervals {
				if a.Lo < b.Hi && b.Lo < a.Hi {
					return 0, fmt.Errorf("response: player %d bin regions overlap on [%v, %v]",
						i, math.Max(a.Lo, b.Lo), math.Min(a.Hi, b.Hi))
				}
			}
		}
	}
	var total combin.Accumulator
	zeroSets := make([]IntervalSet, 0, n)
	oneSets := make([]IntervalSet, 0, n)
	err := combin.ForEachSubset(n, func(b uint64) bool {
		zeroSets = zeroSets[:0]
		oneSets = oneSets[:0]
		for i := 0; i < n; i++ {
			if b&(1<<uint(i)) == 0 {
				zeroSets = append(zeroSets, bin0[i])
			} else {
				oneSets = append(oneSets, bin1[i])
			}
		}
		m0 := jointMass(zeroSets, capacity)
		if m0 == 0 {
			return true
		}
		m1 := jointMass(oneSets, capacity)
		total.Add(m0 * m1)
		return true
	})
	if err != nil {
		return 0, err
	}
	return clamp01(total.Sum()), nil
}

// jointMass returns P(x_i ∈ regions[i] for all i, Σ x_i ≤ capacity) for
// independent U[0,1] inputs, by summing over the interval pattern each
// input selects.
func jointMass(regions []IntervalSet, capacity float64) float64 {
	m := len(regions)
	if m == 0 {
		return 1
	}
	var acc combin.Accumulator
	widths := make([]float64, m)
	pattern := make([]int, m)
	var recurse func(idx int, lowSum, volume float64)
	recurse = func(idx int, lowSum, volume float64) {
		if volume == 0 {
			return
		}
		if idx == m {
			shifted := capacity - lowSum
			if shifted <= 0 {
				return
			}
			// Widths may contain zeros for degenerate intervals; those
			// were filtered out by the volume check (volume would be 0).
			u, err := dist.NewUniformSum(widths)
			if err != nil {
				return
			}
			acc.Add(volume * u.CDF(shifted))
			return
		}
		for j, iv := range regions[idx].intervals {
			w := iv.Hi - iv.Lo
			if w <= 0 {
				continue
			}
			pattern[idx] = j
			widths[idx] = w
			recurse(idx+1, lowSum+iv.Lo, volume*w)
		}
	}
	recurse(0, 0, 1)
	return acc.Sum()
}
