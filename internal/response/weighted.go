package response

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
	"repro/internal/dist"
)

// PiecewiseDensity is an input distribution with a piecewise-constant
// density on [0, 1]: height Heights[i] on [Breaks[i], Breaks[i+1]]. It
// realizes the paper's closing future-work axis — "more realistic
// assumptions on the distribution of inputs" — inside the same
// combinatorial framework: conditioned on the piece each input lands in,
// inputs are still uniform on intervals, so every Lemma 2.4 reduction
// survives with pattern weights height·width instead of width.
type PiecewiseDensity struct {
	breaks  []*big.Rat
	heights []*big.Rat
}

// NewPiecewiseDensity validates breaks (strictly increasing from 0 to 1)
// and non-negative heights whose total mass Σ height·width is exactly 1.
func NewPiecewiseDensity(breaks, heights []*big.Rat) (PiecewiseDensity, error) {
	if len(breaks) != len(heights)+1 {
		return PiecewiseDensity{}, fmt.Errorf("response: %d breaks need %d heights, got %d",
			len(breaks), len(breaks)-1, len(heights))
	}
	if len(heights) == 0 {
		return PiecewiseDensity{}, fmt.Errorf("response: density needs at least one piece")
	}
	one := big.NewRat(1, 1)
	bs := make([]*big.Rat, len(breaks))
	for i, b := range breaks {
		if b == nil {
			return PiecewiseDensity{}, fmt.Errorf("response: nil break %d", i)
		}
		bs[i] = new(big.Rat).Set(b)
		if i > 0 && bs[i-1].Cmp(bs[i]) >= 0 {
			return PiecewiseDensity{}, fmt.Errorf("response: breaks must increase strictly")
		}
	}
	if bs[0].Sign() != 0 || bs[len(bs)-1].Cmp(one) != 0 {
		return PiecewiseDensity{}, fmt.Errorf("response: density must span [0, 1]")
	}
	hs := make([]*big.Rat, len(heights))
	mass := new(big.Rat)
	w := new(big.Rat)
	for i, h := range heights {
		if h == nil || h.Sign() < 0 {
			return PiecewiseDensity{}, fmt.Errorf("response: height %d must be non-negative", i)
		}
		hs[i] = new(big.Rat).Set(h)
		w.Sub(bs[i+1], bs[i])
		w.Mul(w, h)
		mass.Add(mass, w)
	}
	if mass.Cmp(one) != 0 {
		return PiecewiseDensity{}, fmt.Errorf("response: density mass %v, want exactly 1", mass)
	}
	return PiecewiseDensity{breaks: bs, heights: hs}, nil
}

// UniformDensity returns the U[0, 1] density.
func UniformDensity() PiecewiseDensity {
	d, err := NewPiecewiseDensity(
		[]*big.Rat{new(big.Rat), big.NewRat(1, 1)},
		[]*big.Rat{big.NewRat(1, 1)},
	)
	if err != nil {
		// Unreachable: the uniform density is valid.
		panic(err)
	}
	return d
}

// DensityAt returns the density height at the rational point x (the right
// piece at interior breakpoints, 0 outside [0, 1]).
func (d PiecewiseDensity) DensityAt(x *big.Rat) *big.Rat {
	if x.Sign() < 0 || x.Cmp(d.breaks[len(d.breaks)-1]) > 0 {
		return new(big.Rat)
	}
	for i := len(d.heights) - 1; i >= 0; i-- {
		if x.Cmp(d.breaks[i]) >= 0 {
			return new(big.Rat).Set(d.heights[i])
		}
	}
	return new(big.Rat).Set(d.heights[0])
}

// weightedCell is one atom of the decomposition: inputs conditioned into
// [lo, hi] are uniform there with total mass = height·(hi-lo).
type weightedCell struct {
	lo, width, mass *big.Rat
}

// cells intersects the density pieces with an interval set, producing the
// atoms over which patterns are enumerated.
func (d PiecewiseDensity) cells(s RatIntervalSet) []weightedCell {
	var out []weightedCell
	for _, iv := range s.intervals {
		for i, h := range d.heights {
			lo := maxRat(iv.Lo, d.breaks[i])
			hi := minRat(iv.Hi, d.breaks[i+1])
			if lo.Cmp(hi) >= 0 || h.Sign() == 0 {
				continue
			}
			w := new(big.Rat).Sub(hi, lo)
			m := new(big.Rat).Mul(w, h)
			out = append(out, weightedCell{lo: lo, width: w, mass: m})
		}
	}
	return out
}

func maxRat(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) >= 0 {
		return new(big.Rat).Set(a)
	}
	return new(big.Rat).Set(b)
}

func minRat(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) <= 0 {
		return new(big.Rat).Set(a)
	}
	return new(big.Rat).Set(b)
}

// ExactWinProbabilityDist evaluates the symmetric rule with bin-0 region s
// when the n inputs are iid with the piecewise-constant density d, in
// exact rational arithmetic. With d = UniformDensity() it coincides with
// ExactWinProbability.
func ExactWinProbabilityDist(n int, capacity *big.Rat, s RatIntervalSet, d PiecewiseDensity) (*big.Rat, error) {
	if n < 2 {
		return nil, fmt.Errorf("response: need at least 2 players, got %d", n)
	}
	if n > 10 {
		return nil, fmt.Errorf("response: exact evaluation limited to 10 players, got %d", n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("response: capacity must be strictly positive")
	}
	if len(d.heights) == 0 {
		return nil, fmt.Errorf("response: empty density (use NewPiecewiseDensity)")
	}
	n0, err := weightedMasses(n, capacity, d.cells(s))
	if err != nil {
		return nil, err
	}
	n1, err := weightedMasses(n, capacity, d.cells(s.Complement()))
	if err != nil {
		return nil, err
	}
	total := new(big.Rat)
	term := new(big.Rat)
	for k := 0; k <= n; k++ {
		c, err := combin.BinomialBig(n, k)
		if err != nil {
			return nil, err
		}
		term.SetInt(c)
		term.Mul(term, n0[n-k])
		term.Mul(term, n1[k])
		total.Add(total, term)
	}
	return total, nil
}

// weightedMasses returns N(m) = P(m iid d-inputs all land in the cells
// and their sum fits) for m = 0..n.
func weightedMasses(n int, capacity *big.Rat, cells []weightedCell) ([]*big.Rat, error) {
	out := make([]*big.Rat, n+1)
	out[0] = big.NewRat(1, 1)
	r := len(cells)
	if r == 0 {
		for m := 1; m <= n; m++ {
			out[m] = new(big.Rat)
		}
		return out, nil
	}
	for m := 1; m <= n; m++ {
		total := new(big.Rat)
		var innerErr error
		err := combin.ForEachComposition(m, r, func(parts []int) bool {
			var ws []*big.Rat
			shifted := new(big.Rat).Set(capacity)
			weight := big.NewRat(1, 1)
			tmp := new(big.Rat)
			for j, kj := range parts {
				for c := 0; c < kj; c++ {
					ws = append(ws, cells[j].width)
					weight.Mul(weight, cells[j].mass)
				}
				tmp.SetInt64(int64(kj))
				tmp.Mul(tmp, cells[j].lo)
				shifted.Sub(shifted, tmp)
			}
			mult, err := combin.Multinomial(parts...)
			if err != nil {
				innerErr = err
				return false
			}
			var cdf *big.Rat
			if shifted.Sign() <= 0 {
				cdf = new(big.Rat)
			} else {
				cdf, err = dist.CDFRat(ws, shifted)
				if err != nil {
					innerErr = err
					return false
				}
			}
			// Per ordered pattern: mass = Π (cell mass) × conditional CDF;
			// the conditional distribution of each input within its cell
			// is uniform, so the CDF ratio applies directly.
			term := new(big.Rat).SetInt64(mult)
			term.Mul(term, weight)
			term.Mul(term, cdf)
			total.Add(total, term)
			return true
		})
		if err != nil {
			return nil, err
		}
		if innerErr != nil {
			return nil, innerErr
		}
		out[m] = total
	}
	return out, nil
}
