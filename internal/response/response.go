// Package response extends the paper's analysis from single-threshold
// rules to arbitrary deterministic decision rules, the full generality the
// model of Section 3 allows ("any computable function of the inputs it
// sees").
//
// A symmetric deterministic no-communication algorithm is determined by
// its bin-0 region S ⊆ [0,1]: a player choosing by rule A places its input
// x in bin 0 exactly when x ∈ S. For measurable S the winning probability
// factors exactly like Theorem 5.1,
//
//	P = Σ_k C(n,k) N₀(n-k) N₁(k),
//
// where N₀(m) is the defective m-fold convolution mass
// P(x_1..x_m ∈ S, Σ x_i ≤ δ) and N₁ its complement analogue. This package
// represents S as a finite union of intervals and evaluates the
// convolutions numerically on a uniform grid, giving a winning-probability
// oracle for rules far outside the paper's single-threshold family — and a
// way to test whether that family is actually optimal (see
// OptimizeTwoInterval and EXPERIMENTS.md).
//
// Since the winning probability is linear in each player's response
// function with the others fixed, some deterministic rule is always
// optimal among randomized ones; this package covers the deterministic
// rules with finitely many switching points.
package response

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/combin"
	"repro/internal/model"
)

// Interval is a closed subinterval [Lo, Hi] of [0, 1].
type Interval struct {
	Lo, Hi float64
}

// IntervalSet is a finite union of disjoint, sorted intervals within
// [0, 1] — the bin-0 region of a symmetric deterministic rule.
type IntervalSet struct {
	intervals []Interval
}

// NewIntervalSet validates, sorts and merges the given intervals.
// Intervals must lie within [0, 1]; overlapping or touching intervals are
// merged. An empty set (no intervals) is valid: the rule sends everything
// to bin 1.
func NewIntervalSet(intervals []Interval) (IntervalSet, error) {
	cp := make([]Interval, 0, len(intervals))
	for i, iv := range intervals {
		if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			return IntervalSet{}, fmt.Errorf("response: interval %d = [%v, %v] invalid within [0, 1]", i, iv.Lo, iv.Hi)
		}
		cp = append(cp, iv)
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].Lo < cp[j].Lo })
	merged := make([]Interval, 0, len(cp))
	for _, iv := range cp {
		if n := len(merged); n > 0 && iv.Lo <= merged[n-1].Hi {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return IntervalSet{intervals: merged}, nil
}

// Threshold returns the single-threshold set [0, β] — the paper's §5
// family.
func Threshold(beta float64) (IntervalSet, error) {
	if math.IsNaN(beta) || beta < 0 || beta > 1 {
		return IntervalSet{}, fmt.Errorf("response: threshold %v outside [0, 1]", beta)
	}
	if beta == 0 {
		return IntervalSet{}, nil
	}
	return NewIntervalSet([]Interval{{0, beta}})
}

// Intervals returns a copy of the merged interval list.
func (s IntervalSet) Intervals() []Interval {
	out := make([]Interval, len(s.intervals))
	copy(out, s.intervals)
	return out
}

// Measure returns the Lebesgue measure |S|.
func (s IntervalSet) Measure() float64 {
	var m float64
	for _, iv := range s.intervals {
		m += iv.Hi - iv.Lo
	}
	return m
}

// Contains reports whether x ∈ S.
func (s IntervalSet) Contains(x float64) bool {
	for _, iv := range s.intervals {
		if x < iv.Lo {
			return false
		}
		if x <= iv.Hi {
			return true
		}
	}
	return false
}

// Intersect returns S ∩ [lo, hi]. It returns an error for an invalid
// window.
func (s IntervalSet) Intersect(lo, hi float64) (IntervalSet, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 1 || lo > hi {
		return IntervalSet{}, fmt.Errorf("response: invalid window [%v, %v]", lo, hi)
	}
	var out []Interval
	for _, iv := range s.intervals {
		l := math.Max(iv.Lo, lo)
		h := math.Min(iv.Hi, hi)
		if l <= h {
			out = append(out, Interval{l, h})
		}
	}
	return NewIntervalSet(out)
}

// Complement returns the closure of [0,1] \ S.
func (s IntervalSet) Complement() IntervalSet {
	var out []Interval
	cursor := 0.0
	for _, iv := range s.intervals {
		if iv.Lo > cursor {
			out = append(out, Interval{cursor, iv.Lo})
		}
		cursor = iv.Hi
	}
	if cursor < 1 {
		out = append(out, Interval{cursor, 1})
	}
	set, err := NewIntervalSet(out)
	if err != nil {
		// Unreachable: complement of a valid set is valid.
		panic(err)
	}
	return set
}

// Rule adapts the set to a model.LocalRule for the simulator. The
// returned rule implements model.BatchRule, so simulations of interval
// systems take the Monte-Carlo engine's allocation-free batch path.
func (s IntervalSet) Rule(name string) (model.IntervalUnionRule, error) {
	los := make([]float64, len(s.intervals))
	his := make([]float64, len(s.intervals))
	for j, iv := range s.intervals {
		los[j], his[j] = iv.Lo, iv.Hi
	}
	return model.NewIntervalUnionRule(name, los, his)
}

// String renders the set as a union of intervals.
func (s IntervalSet) String() string {
	if len(s.intervals) == 0 {
		return "∅"
	}
	out := ""
	for i, iv := range s.intervals {
		if i > 0 {
			out += " ∪ "
		}
		out += fmt.Sprintf("[%.4f, %.4f]", iv.Lo, iv.Hi)
	}
	return out
}

// Evaluator computes winning probabilities of symmetric interval-set rules
// by grid convolution. Construct once per (n, capacity, grid) and reuse
// across candidate sets — optimization loops evaluate thousands of sets.
type Evaluator struct {
	n        int
	capacity float64
	grid     int     // samples per unit interval
	h        float64 // grid spacing = 1/grid
}

// NewEvaluator validates the parameters. grid controls accuracy: the
// convolution error is O(1/grid²); 512 gives ≈ 1e-5 on the paper's
// instances.
func NewEvaluator(n int, capacity float64, grid int) (*Evaluator, error) {
	if n < 2 {
		return nil, fmt.Errorf("response: need at least 2 players, got %d", n)
	}
	if n > 12 {
		return nil, fmt.Errorf("response: evaluator limited to 12 players, got %d", n)
	}
	if !(capacity > 0) || math.IsInf(capacity, 1) {
		return nil, fmt.Errorf("response: capacity %v must be strictly positive and finite", capacity)
	}
	if grid < 16 || grid > 1<<16 {
		return nil, fmt.Errorf("response: grid %d outside [16, 65536]", grid)
	}
	return &Evaluator{n: n, capacity: capacity, grid: grid, h: 1.0 / float64(grid)}, nil
}

// density samples the indicator of the set on the evaluator's grid using
// midpoint sampling with partial-cell weights (exact for interval
// endpoints aligned or not).
func (e *Evaluator) density(s IntervalSet) []float64 {
	d := make([]float64, e.grid)
	for _, iv := range s.intervals {
		// Weight each cell by the overlap fraction.
		loCell := int(iv.Lo * float64(e.grid))
		hiCell := int(iv.Hi * float64(e.grid))
		if hiCell >= e.grid {
			hiCell = e.grid - 1
		}
		for c := loCell; c <= hiCell; c++ {
			cellLo := float64(c) * e.h
			cellHi := cellLo + e.h
			overlap := math.Min(iv.Hi, cellHi) - math.Max(iv.Lo, cellLo)
			if overlap > 0 {
				d[c] += overlap / e.h
			}
		}
	}
	for i, v := range d {
		if v > 1 {
			d[i] = 1
		}
	}
	return d
}

// convolve returns the discrete convolution h·(f*g).
func (e *Evaluator) convolve(f, g []float64) []float64 {
	out := make([]float64, len(f)+len(g)-1)
	for i, fv := range f {
		if fv == 0 {
			continue
		}
		for j, gv := range g {
			out[i+j] += fv * gv
		}
	}
	for i := range out {
		out[i] *= e.h
	}
	return out
}

// massBelow returns the total mass of the (defective) generation-m
// density below the capacity. Sample i of an m-fold convolution sits at
// position (i + m/2)·h and represents mass d[i]·h spread over a width-h
// cell centred there; the boundary cell is weighted by its overlap with
// (-∞, δ].
func (e *Evaluator) massBelow(d []float64, m int) float64 {
	var acc combin.Accumulator
	halfGen := float64(m) / 2
	for i, v := range d {
		if v == 0 {
			continue
		}
		center := (float64(i) + halfGen) * e.h
		cellLo := center - e.h/2
		w := (e.capacity - cellLo) / e.h
		if w <= 0 {
			break
		}
		if w > 1 {
			w = 1
		}
		acc.Add(v * w)
	}
	return acc.Sum() * e.h
}

// WinProbability evaluates the symmetric rule with bin-0 region s:
//
//	P = Σ_k C(n,k) N₀(n-k) N₁(k),
//
// with N₀(m) = P(all of x_1..x_m in S, Σ ≤ δ) computed by m-fold grid
// convolution of the indicator density of S, and N₁ likewise on the
// complement.
func (e *Evaluator) WinProbability(s IntervalSet) (float64, error) {
	f0 := e.density(s)
	f1 := e.density(s.Complement())
	n0 := e.partialMasses(f0)
	n1 := e.partialMasses(f1)
	row, err := combin.PascalRow(e.n)
	if err != nil {
		return 0, err
	}
	var acc combin.Accumulator
	for k := 0; k <= e.n; k++ {
		acc.Add(row[k] * n0[e.n-k] * n1[k])
	}
	p := acc.Sum()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// partialMasses returns N(m) for m = 0..n where N(m) is the mass of the
// m-fold self-convolution of d below the capacity; N(0) = 1.
func (e *Evaluator) partialMasses(d []float64) []float64 {
	out := make([]float64, e.n+1)
	out[0] = 1
	cur := d
	for m := 1; m <= e.n; m++ {
		out[m] = e.massBelow(cur, m)
		if m < e.n {
			cur = e.convolve(cur, d)
		}
	}
	return out
}
