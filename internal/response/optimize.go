package response

import (
	"fmt"
	"math"

	"repro/internal/optimize"
)

// OptimizeResult is the outcome of a rule-family optimization.
type OptimizeResult struct {
	// Set is the best bin-0 region found.
	Set IntervalSet
	// WinProbability is its winning probability under the evaluator's
	// grid.
	WinProbability float64
}

// OptimizeThreshold maximizes over the paper's single-threshold family
// S = [0, β] using golden-section search on the evaluator's grid oracle.
// It exists mainly as a consistency anchor: its result must match the
// exact §5.2 optimum to within grid accuracy.
func (e *Evaluator) OptimizeThreshold() (OptimizeResult, error) {
	obj := func(beta float64) float64 {
		s, err := Threshold(beta)
		if err != nil {
			return math.Inf(-1)
		}
		p, err := e.WinProbability(s)
		if err != nil {
			return math.Inf(-1)
		}
		return p
	}
	res, err := optimize.GridThenGoldenMax(obj, 0, 1, 101, 1e-6)
	if err != nil {
		return OptimizeResult{}, err
	}
	set, err := Threshold(res.X)
	if err != nil {
		return OptimizeResult{}, err
	}
	return OptimizeResult{Set: set, WinProbability: res.Value}, nil
}

// OptimizeTwoInterval maximizes over bin-0 regions of the form
// [0, a] ∪ [b, c] with 0 ≤ a ≤ b ≤ c ≤ 1 — the smallest family that
// strictly contains the paper's single thresholds (a = β, b = c collapses
// the second interval). A Nelder-Mead search from several starts probes
// whether leaving the single-threshold family helps; the single-threshold
// optimum is always a candidate, so the result never falls below it.
func (e *Evaluator) OptimizeTwoInterval() (OptimizeResult, error) {
	setFrom := func(v []float64) (IntervalSet, error) {
		a := clamp01(v[0])
		b := clamp01(v[1])
		c := clamp01(v[2])
		if b > c {
			b, c = c, b
		}
		if a > b {
			a = b
		}
		return NewIntervalSet([]Interval{{0, a}, {b, c}})
	}
	obj := func(v []float64) float64 {
		s, err := setFrom(v)
		if err != nil {
			return math.Inf(-1)
		}
		p, err := e.WinProbability(s)
		if err != nil {
			return math.Inf(-1)
		}
		return p
	}
	// Always include the best single threshold as a baseline candidate.
	base, err := e.OptimizeThreshold()
	if err != nil {
		return OptimizeResult{}, err
	}
	baseBeta := 0.0
	if ivs := base.Set.Intervals(); len(ivs) > 0 {
		baseBeta = ivs[0].Hi
	}
	best := OptimizeResult{Set: base.Set, WinProbability: base.WinProbability}
	starts := [][]float64{
		{baseBeta, baseBeta, baseBeta}, // degenerate: the threshold itself
		{baseBeta * 0.8, 0.9, 1.0},     // low cut plus a top sliver
		{0.3, 0.6, 0.8},                // middle band
		{0.1, 0.45, 0.65},              // two low bands
	}
	lo := []float64{0, 0, 0}
	hi := []float64{1, 1, 1}
	for _, start := range starts {
		res, err := optimize.NelderMeadMax(obj, start, lo, hi, 0.1, 3000, 1e-10)
		if err != nil {
			return OptimizeResult{}, fmt.Errorf("response: two-interval search from %v: %w", start, err)
		}
		if res.Value > best.WinProbability {
			s, err := setFrom(res.X)
			if err != nil {
				continue
			}
			best = OptimizeResult{Set: s, WinProbability: res.Value}
		}
	}
	return best, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
