package response

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/model"
	"repro/internal/nonoblivious"
	"repro/internal/optimize"
	"repro/internal/sim"
)

func thresholdSets(t *testing.T, betas ...float64) []IntervalSet {
	t.Helper()
	out := make([]IntervalSet, len(betas))
	for i, b := range betas {
		s, err := Threshold(b)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func TestWinProbabilityVectorMatchesThresholdTheory(t *testing.T) {
	// Per-player thresholds are a special case; must match Theorem 5.1.
	betas := []float64{0.4, 0.7, 0.55}
	got, err := WinProbabilityVector(thresholdSets(t, betas...), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := nonoblivious.WinningProbability(betas, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-11 {
		t.Errorf("vector sets %v vs Theorem 5.1 %v", got, want)
	}
}

func TestWinProbabilityVectorMatchesExactOnSymmetricBand(t *testing.T) {
	band, err := NewIntervalSet([]Interval{{0.327, 0.742}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := WinProbabilityVector([]IntervalSet{band, band, band, band}, 4.0/3)
	if err != nil {
		t.Fatal(err)
	}
	rband, err := NewRatIntervalSet([]RatInterval{{big.NewRat(327, 1000), big.NewRat(742, 1000)}})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactWinProbability(4, big.NewRat(4, 3), rband)
	if err != nil {
		t.Fatal(err)
	}
	ef, _ := exact.Float64()
	if math.Abs(got-ef) > 1e-10 {
		t.Errorf("float vector %v vs exact %v", got, ef)
	}
}

func TestWinProbabilityVectorMatchesSimulationAsymmetric(t *testing.T) {
	// Genuinely asymmetric: one threshold player, one band player, one
	// high-pass player.
	s1, err := NewIntervalSet([]Interval{{0, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewIntervalSet([]Interval{{0.3, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := NewIntervalSet([]Interval{{0.5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	sets := []IntervalSet{s1, s2, s3}
	analytic, err := WinProbabilityVector(sets, 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := make([]model.LocalRule, len(sets))
	for i, s := range sets {
		r, err := s.Rule("set")
		if err != nil {
			t.Fatal(err)
		}
		rules[i] = r
	}
	sys, err := model.NewSystem(rules, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.WinProbability(sys, sim.Config{Trials: 400000, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-analytic) > 4*res.StdErr {
		t.Errorf("analytic %v vs simulation %v ± %v", analytic, res.P, res.StdErr)
	}
}

func TestWinProbabilityVectorValidation(t *testing.T) {
	band, err := NewIntervalSet([]Interval{{0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WinProbabilityVector([]IntervalSet{band}, 1); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := WinProbabilityVector(make([]IntervalSet, 11), 1); err == nil {
		t.Error("too many players: expected error")
	}
	if _, err := WinProbabilityVector([]IntervalSet{band, band}, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	many, err := NewIntervalSet([]Interval{
		{0, 0.1}, {0.2, 0.3}, {0.4, 0.5}, {0.6, 0.7}, {0.8, 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WinProbabilityVector([]IntervalSet{many, band}, 1); err == nil {
		t.Error("too many intervals: expected error")
	}
}

func TestAsymmetricSearchAtN4(t *testing.T) {
	// Does per-player asymmetry beat the symmetric band at n=4, δ=4/3?
	// Each player gets an independent band [a_i, b_i] (8 parameters).
	// Measured answer (recorded in EXPERIMENTS.md): no material gain —
	// the optimum stays at the symmetric band value ≈ 0.4787.
	const n = 4
	capacity := 4.0 / 3
	obj := func(v []float64) float64 {
		sets := make([]IntervalSet, n)
		for i := 0; i < n; i++ {
			a, b := v[2*i], v[2*i+1]
			if a > b {
				a, b = b, a
			}
			s, err := NewIntervalSet([]Interval{{clamp01(a), clamp01(b)}})
			if err != nil {
				return math.Inf(-1)
			}
			sets[i] = s
		}
		p, err := WinProbabilityVector(sets, capacity)
		if err != nil {
			return math.Inf(-1)
		}
		return p
	}
	start := []float64{0.33, 0.74, 0.33, 0.74, 0.33, 0.74, 0.33, 0.74}
	lo := make([]float64, 2*n)
	hi := make([]float64, 2*n)
	for i := range hi {
		hi[i] = 1
	}
	res, err := optimize.NelderMeadMax(obj, start, lo, hi, 0.1, 4000, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	symmetric := 0.478720 // exact symmetric band value
	if res.Value < symmetric-2e-3 {
		t.Errorf("asymmetric search %v fell below its symmetric start %v", res.Value, symmetric)
	}
	t.Logf("n=4 asymmetric per-player bands: P = %.6f (symmetric band %.6f, gain %+.6f)",
		res.Value, symmetric, res.Value-symmetric)
	// Asymmetry escapes the symmetric class entirely: degenerate bands
	// recover the deterministic balanced split (players with full/empty
	// regions), so the search must land near the split value 0.604938.
	if res.Value < 0.59 {
		t.Errorf("asymmetric search %v should approach the balanced-split value 0.604938", res.Value)
	}
}

func TestBalancedSplitIsLocalOptimumAmongAsymmetricRules(t *testing.T) {
	// Measured finding (EXPERIMENTS.md): starting AT the balanced split
	// (players 0,1 always bin 0; players 2,3 always bin 1), no
	// Nelder-Mead perturbation of the per-player interval endpoints
	// improves on it — at n=4, δ=4/3, looking at the input buys nothing
	// beyond choosing the partition.
	const n = 4
	capacity := 4.0 / 3
	obj := func(v []float64) float64 {
		sets := make([]IntervalSet, n)
		for i := 0; i < n; i++ {
			a, b := clamp01(v[2*i]), clamp01(v[2*i+1])
			if a > b {
				a, b = b, a
			}
			s, err := NewIntervalSet([]Interval{{a, b}})
			if err != nil {
				return math.Inf(-1)
			}
			sets[i] = s
		}
		p, err := WinProbabilityVector(sets, capacity)
		if err != nil {
			return math.Inf(-1)
		}
		return p
	}
	lo := make([]float64, 2*n)
	hi := make([]float64, 2*n)
	for i := range hi {
		hi[i] = 1
	}
	start := []float64{0, 1, 0, 1, 0.5, 0.5, 0.5, 0.5} // the balanced split
	res, err := optimize.NelderMeadMax(obj, start, lo, hi, 0.08, 6000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	const split = 0.604938
	if math.Abs(res.Value-split) > 1e-4 {
		t.Errorf("search from the split found %v, want the split value %v (local optimality)", res.Value, split)
	}
}
