package response

import (
	"math"
	"testing"
)

func mustSet(t *testing.T, ivs ...Interval) IntervalSet {
	t.Helper()
	s, err := NewIntervalSet(ivs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIntersect(t *testing.T) {
	s := mustSet(t, Interval{0.1, 0.4}, Interval{0.6, 0.9})
	got, err := s.Intersect(0.3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	ivs := got.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intersection = %v", ivs)
	}
	if math.Abs(ivs[0].Lo-0.3) > 1e-15 || math.Abs(ivs[0].Hi-0.4) > 1e-15 {
		t.Errorf("first piece = %v", ivs[0])
	}
	if math.Abs(ivs[1].Lo-0.6) > 1e-15 || math.Abs(ivs[1].Hi-0.7) > 1e-15 {
		t.Errorf("second piece = %v", ivs[1])
	}
	// Empty intersection.
	empty, err := s.Intersect(0.45, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Measure() != 0 {
		t.Errorf("empty window intersection = %v", empty)
	}
	// Invalid windows.
	if _, err := s.Intersect(0.7, 0.3); err == nil {
		t.Error("inverted window: expected error")
	}
	if _, err := s.Intersect(-0.1, 0.5); err == nil {
		t.Error("negative window: expected error")
	}
	if _, err := s.Intersect(0, 1.5); err == nil {
		t.Error("window beyond 1: expected error")
	}
	if _, err := s.Intersect(math.NaN(), 1); err == nil {
		t.Error("NaN window: expected error")
	}
}

func TestWinProbabilityVectorPairsPartitionMatchesVector(t *testing.T) {
	// When bin1 is exactly the complement of bin0, the pair evaluation
	// must coincide with WinProbabilityVector.
	sets := []IntervalSet{
		mustSet(t, Interval{0, 0.6}),
		mustSet(t, Interval{0.3, 0.8}),
		mustSet(t, Interval{0.5, 1}),
	}
	comps := make([]IntervalSet, len(sets))
	for i, s := range sets {
		comps[i] = s.Complement()
	}
	pairs, err := WinProbabilityVectorPairs(sets, comps, 1)
	if err != nil {
		t.Fatal(err)
	}
	vector, err := WinProbabilityVector(sets, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pairs-vector) > 1e-12 {
		t.Errorf("pairs %v vs vector %v", pairs, vector)
	}
}

func TestWinProbabilityVectorPairsConditioningSplitsTotal(t *testing.T) {
	// Splitting player 0's domain at a cut and summing the two
	// conditioned evaluations must recover the unconditioned value.
	full := mustSet(t, Interval{0, 0.55})
	fullC := full.Complement()
	others := mustSet(t, Interval{0, 0.62})
	othersC := others.Complement()
	const cut = 0.4
	lowSet, err := full.Intersect(0, cut)
	if err != nil {
		t.Fatal(err)
	}
	lowC, err := fullC.Intersect(0, cut)
	if err != nil {
		t.Fatal(err)
	}
	highSet, err := full.Intersect(cut, 1)
	if err != nil {
		t.Fatal(err)
	}
	highC, err := fullC.Intersect(cut, 1)
	if err != nil {
		t.Fatal(err)
	}
	unconditioned, err := WinProbabilityVectorPairs(
		[]IntervalSet{full, others, others},
		[]IntervalSet{fullC, othersC, othersC}, 1)
	if err != nil {
		t.Fatal(err)
	}
	low, err := WinProbabilityVectorPairs(
		[]IntervalSet{lowSet, others, others},
		[]IntervalSet{lowC, othersC, othersC}, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := WinProbabilityVectorPairs(
		[]IntervalSet{highSet, others, others},
		[]IntervalSet{highC, othersC, othersC}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(low+high-unconditioned) > 1e-12 {
		t.Errorf("conditioning split %v + %v != total %v", low, high, unconditioned)
	}
}

func TestWinProbabilityVectorPairsValidation(t *testing.T) {
	s := mustSet(t, Interval{0, 0.5})
	c := s.Complement()
	if _, err := WinProbabilityVectorPairs([]IntervalSet{s}, []IntervalSet{c}, 1); err == nil {
		t.Error("single player: expected error")
	}
	if _, err := WinProbabilityVectorPairs([]IntervalSet{s, s}, []IntervalSet{c}, 1); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := WinProbabilityVectorPairs(make([]IntervalSet, 11), make([]IntervalSet, 11), 1); err == nil {
		t.Error("too many players: expected error")
	}
	if _, err := WinProbabilityVectorPairs([]IntervalSet{s, s}, []IntervalSet{c, c}, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	// Overlapping bin regions.
	overlap := mustSet(t, Interval{0.4, 0.8})
	if _, err := WinProbabilityVectorPairs([]IntervalSet{s, s}, []IntervalSet{overlap, c}, 1); err == nil {
		t.Error("overlapping regions: expected error")
	}
	// Too many intervals per region.
	many := mustSet(t,
		Interval{0, 0.05}, Interval{0.1, 0.15}, Interval{0.2, 0.25},
		Interval{0.3, 0.35}, Interval{0.4, 0.45})
	if _, err := WinProbabilityVectorPairs([]IntervalSet{many, s}, []IntervalSet{c, c}, 1); err == nil {
		t.Error("too many intervals: expected error")
	}
}
