package response

import (
	"fmt"
	"math/big"

	"repro/internal/combin"
	"repro/internal/dist"
)

// RatInterval is a closed rational subinterval [Lo, Hi] of [0, 1].
type RatInterval struct {
	Lo, Hi *big.Rat
}

// RatIntervalSet is an exact-rational bin-0 region: a finite union of
// disjoint intervals with rational endpoints.
type RatIntervalSet struct {
	intervals []RatInterval
}

// NewRatIntervalSet validates the intervals: each within [0, 1] with
// Lo ≤ Hi, pairwise disjoint, and sorted ascending. (Unlike the float
// constructor this one does not merge — exact inputs are expected to be in
// canonical form already.)
func NewRatIntervalSet(intervals []RatInterval) (RatIntervalSet, error) {
	one := big.NewRat(1, 1)
	cp := make([]RatInterval, len(intervals))
	for i, iv := range intervals {
		if iv.Lo == nil || iv.Hi == nil {
			return RatIntervalSet{}, fmt.Errorf("response: nil endpoint in interval %d", i)
		}
		if iv.Lo.Sign() < 0 || iv.Hi.Cmp(one) > 0 || iv.Lo.Cmp(iv.Hi) > 0 {
			return RatIntervalSet{}, fmt.Errorf("response: interval %d = [%v, %v] invalid within [0, 1]", i, iv.Lo, iv.Hi)
		}
		cp[i] = RatInterval{Lo: new(big.Rat).Set(iv.Lo), Hi: new(big.Rat).Set(iv.Hi)}
		if i > 0 && cp[i-1].Hi.Cmp(cp[i].Lo) > 0 {
			return RatIntervalSet{}, fmt.Errorf("response: intervals %d and %d overlap or are unsorted", i-1, i)
		}
	}
	return RatIntervalSet{intervals: cp}, nil
}

// Measure returns |S| exactly.
func (s RatIntervalSet) Measure() *big.Rat {
	m := new(big.Rat)
	for _, iv := range s.intervals {
		w := new(big.Rat).Sub(iv.Hi, iv.Lo)
		m.Add(m, w)
	}
	return m
}

// Complement returns the closure of [0,1] \ S.
func (s RatIntervalSet) Complement() RatIntervalSet {
	one := big.NewRat(1, 1)
	var out []RatInterval
	cursor := new(big.Rat)
	for _, iv := range s.intervals {
		if iv.Lo.Cmp(cursor) > 0 {
			out = append(out, RatInterval{Lo: new(big.Rat).Set(cursor), Hi: new(big.Rat).Set(iv.Lo)})
		}
		cursor = new(big.Rat).Set(iv.Hi)
	}
	if cursor.Cmp(one) < 0 {
		out = append(out, RatInterval{Lo: cursor, Hi: one})
	}
	set, err := NewRatIntervalSet(out)
	if err != nil {
		// Unreachable: complement of a valid set is valid.
		panic(err)
	}
	return set
}

// Float converts to the float64 IntervalSet (for the simulator and the
// grid oracle).
func (s RatIntervalSet) Float() (IntervalSet, error) {
	out := make([]Interval, len(s.intervals))
	for i, iv := range s.intervals {
		lo, _ := iv.Lo.Float64()
		hi, _ := iv.Hi.Float64()
		out[i] = Interval{Lo: lo, Hi: hi}
	}
	return NewIntervalSet(out)
}

// ExactWinProbability evaluates the symmetric rule with bin-0 region s for
// n players and rational capacity δ, in exact rational arithmetic.
//
// Conditioned on which players choose bin 0 and on WHICH interval of the
// region each such player's input falls into, the inputs are independent
// uniforms on those intervals; shifting each to the origin reduces the
// joint event to the Lemma 2.4 CDF with per-player widths and a shifted
// capacity:
//
//	N(m) = Σ_{k_1+..+k_r = m} multinomial(m; k) ·
//	        F_{widths(k)}(δ - Σ_j k_j·lo_j),
//
// where width w_j = hi_j - lo_j appears k_j times. The winning probability
// is then Theorem 5.1's Σ_k C(n,k) N₀(n-k) N₁(k) with N₀ over s and N₁
// over its complement. Degenerate intervals (zero width) carry zero mass
// and are skipped.
func ExactWinProbability(n int, capacity *big.Rat, s RatIntervalSet) (*big.Rat, error) {
	if n < 2 {
		return nil, fmt.Errorf("response: need at least 2 players, got %d", n)
	}
	if n > 12 {
		return nil, fmt.Errorf("response: exact evaluation limited to 12 players, got %d", n)
	}
	if capacity == nil || capacity.Sign() <= 0 {
		return nil, fmt.Errorf("response: capacity must be strictly positive")
	}
	n0, err := exactMasses(n, capacity, s)
	if err != nil {
		return nil, err
	}
	n1, err := exactMasses(n, capacity, s.Complement())
	if err != nil {
		return nil, err
	}
	total := new(big.Rat)
	term := new(big.Rat)
	for k := 0; k <= n; k++ {
		c, err := combin.BinomialBig(n, k)
		if err != nil {
			return nil, err
		}
		term.SetInt(c)
		term.Mul(term, n0[n-k])
		term.Mul(term, n1[k])
		total.Add(total, term)
	}
	return total, nil
}

// exactMasses returns N(m) for m = 0..n: the probability that m
// independent U[0,1] inputs all land in the region AND their sum stays at
// most the capacity.
func exactMasses(n int, capacity *big.Rat, s RatIntervalSet) ([]*big.Rat, error) {
	// Drop zero-width intervals: they carry no probability mass.
	var ivs []RatInterval
	for _, iv := range s.intervals {
		if iv.Lo.Cmp(iv.Hi) < 0 {
			ivs = append(ivs, iv)
		}
	}
	out := make([]*big.Rat, n+1)
	out[0] = big.NewRat(1, 1)
	r := len(ivs)
	if r == 0 {
		for m := 1; m <= n; m++ {
			out[m] = new(big.Rat)
		}
		return out, nil
	}
	widths := make([]*big.Rat, r)
	for j, iv := range ivs {
		widths[j] = new(big.Rat).Sub(iv.Hi, iv.Lo)
	}
	for m := 1; m <= n; m++ {
		total := new(big.Rat)
		var innerErr error
		err := combin.ForEachComposition(m, r, func(parts []int) bool {
			// Assemble the width multiset and the shifted capacity.
			var ws []*big.Rat
			shifted := new(big.Rat).Set(capacity)
			tmp := new(big.Rat)
			for j, kj := range parts {
				for c := 0; c < kj; c++ {
					ws = append(ws, widths[j])
				}
				tmp.SetInt64(int64(kj))
				tmp.Mul(tmp, ivs[j].Lo)
				shifted.Sub(shifted, tmp)
			}
			// Joint probability: multinomial ways are NOT needed —
			// the players are distinguishable and each lands in a fixed
			// interval pattern; summing over ordered assignments means
			// multiplying the unordered composition by the multinomial
			// count.
			mult, err := combin.Multinomial(parts...)
			if err != nil {
				innerErr = err
				return false
			}
			var cdf *big.Rat
			if shifted.Sign() <= 0 {
				cdf = new(big.Rat)
			} else {
				cdf, err = dist.CDFRat(ws, shifted)
				if err != nil {
					innerErr = err
					return false
				}
			}
			// Probability that a specific ordered pattern occurs and the
			// sum fits: Π w_j^{k_j} × conditionalCDF — but CDFRat already
			// integrates the volume ratio; the joint mass is the volume
			// itself: Π widths × CDF.
			mass := new(big.Rat).SetInt64(mult)
			for _, w := range ws {
				mass.Mul(mass, w)
			}
			mass.Mul(mass, cdf)
			total.Add(total, mass)
			return true
		})
		if err != nil {
			return nil, err
		}
		if innerErr != nil {
			return nil, innerErr
		}
		out[m] = total
	}
	return out, nil
}
