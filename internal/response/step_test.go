package response

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/nonoblivious"
	"repro/internal/oblivious"
	"repro/internal/sim"
)

func TestNewStepRuleValidation(t *testing.T) {
	if _, err := NewStepRule(nil); err == nil {
		t.Error("empty cells: expected error")
	}
	if _, err := NewStepRule([]float64{0.5, 1.2}); err == nil {
		t.Error("probability > 1: expected error")
	}
	if _, err := NewStepRule([]float64{-0.1}); err == nil {
		t.Error("negative probability: expected error")
	}
	if _, err := NewStepRule([]float64{math.NaN()}); err == nil {
		t.Error("NaN: expected error")
	}
	r, err := NewStepRule([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells() != 3 {
		t.Errorf("Cells = %d", r.Cells())
	}
	ps := r.Probs()
	ps[0] = 9
	if r.probs[0] == 9 {
		t.Error("Probs() leaked internal slice")
	}
}

func TestStepRuleProbAt(t *testing.T) {
	r, err := NewStepRule([]float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0.1}, {0.2, 0.1}, {0.34, 0.5}, {0.66, 0.5}, {0.67, 0.9},
		{0.99, 0.9}, {1, 0.9}, {-0.5, 0.1}, {1.5, 0.9},
	}
	for _, c := range cases {
		if got := r.ProbAt(c.x); got != c.want {
			t.Errorf("ProbAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestStepRuleLocalRule(t *testing.T) {
	r, err := NewStepRule([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	lr := r.LocalRule()
	// Deterministic cells work without an rng.
	b, err := lr.Decide(0.25, nil)
	if err != nil || b != model.Bin0 {
		t.Errorf("Decide(0.25) = %v, %v; want Bin0", b, err)
	}
	b, err = lr.Decide(0.75, nil)
	if err != nil || b != model.Bin1 {
		t.Errorf("Decide(0.75) = %v, %v; want Bin1", b, err)
	}
	// Randomized cells need an rng.
	r2, err := NewStepRule([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.LocalRule().Decide(0.5, nil); err == nil {
		t.Error("randomized cell with nil rng: expected error")
	}
}

func TestWinProbabilityStepMatchesDeterministicLimits(t *testing.T) {
	ev, err := NewEvaluator(3, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// A 0/1 step rule approximating the threshold 0.5 must match the
	// exact threshold value.
	cells := 64
	probs := make([]float64, cells)
	for i := 0; i < cells/2; i++ {
		probs[i] = 1
	}
	r, err := NewStepRule(probs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.WinProbabilityStep(r)
	if err != nil {
		t.Fatal(err)
	}
	want, err := nonoblivious.SymmetricWinningProbability(3, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("step threshold %v vs exact %v", got, want)
	}
	if _, err := ev.WinProbabilityStep(nil); err == nil {
		t.Error("nil rule: expected error")
	}
}

func TestWinProbabilityStepMatchesObliviousCoin(t *testing.T) {
	// The constant-1/2 step rule IS the oblivious fair coin.
	ev, err := NewEvaluator(4, 4.0/3, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewStepRule([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.WinProbabilityStep(r)
	if err != nil {
		t.Fatal(err)
	}
	obl, err := oblivious.Optimal(4, 4.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-obl.WinProbability) > 1e-3 {
		t.Errorf("constant-1/2 step %v vs Theorem 4.3 value %v", got, obl.WinProbability)
	}
}

func TestWinProbabilityStepMatchesSimulation(t *testing.T) {
	// A genuinely randomized, non-monotone response function.
	r, err := NewStepRule([]float64{0.9, 0.2, 0.7, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(3, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := ev.WinProbabilityStep(r)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := model.UniformSystem(3, r.LocalRule(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.WinProbability(sys, sim.Config{Trials: 400000, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-analytic) > 4*res.StdErr+1e-3 {
		t.Errorf("convolution %v vs simulation %v ± %v", analytic, res.P, res.StdErr)
	}
}

func TestOptimizeStepDoesNotBeatDeterministicByMuch(t *testing.T) {
	// Within symmetric strategies, does interior randomization help?
	// The measured answer (recorded in EXPERIMENTS.md): no — the search
	// lands on an (almost) deterministic rule matching the best
	// two-interval rule.
	ev, err := NewEvaluator(4, 4.0/3, 256)
	if err != nil {
		t.Fatal(err)
	}
	rule, val, err := ev.OptimizeStep(12)
	if err != nil {
		t.Fatal(err)
	}
	band, err := NewIntervalSet([]Interval{{0.3271, 0.7416}})
	if err != nil {
		t.Fatal(err)
	}
	bandVal, err := ev.WinProbability(band)
	if err != nil {
		t.Fatal(err)
	}
	if val < bandVal-5e-3 {
		t.Errorf("step optimum %v fell below the deterministic band %v", val, bandVal)
	}
	t.Logf("n=4 δ=4/3: step-rule optimum %.6f (band %.6f), probs %.2f", val, bandVal, rule.Probs())
	if _, _, err := ev.OptimizeStep(0); err == nil {
		t.Error("zero cells: expected error")
	}
	if _, _, err := ev.OptimizeStep(100); err == nil {
		t.Error("too many cells: expected error")
	}
}
