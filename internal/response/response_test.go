package response

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/nonoblivious"
	"repro/internal/sim"
)

func TestNewIntervalSetValidation(t *testing.T) {
	if _, err := NewIntervalSet([]Interval{{-0.1, 0.5}}); err == nil {
		t.Error("negative lo: expected error")
	}
	if _, err := NewIntervalSet([]Interval{{0.2, 1.1}}); err == nil {
		t.Error("hi > 1: expected error")
	}
	if _, err := NewIntervalSet([]Interval{{0.6, 0.4}}); err == nil {
		t.Error("inverted interval: expected error")
	}
	if _, err := NewIntervalSet([]Interval{{math.NaN(), 0.5}}); err == nil {
		t.Error("NaN: expected error")
	}
	empty, err := NewIntervalSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Measure() != 0 || empty.Contains(0.5) {
		t.Error("empty set invariants violated")
	}
	if empty.String() != "∅" {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestIntervalSetMerging(t *testing.T) {
	s, err := NewIntervalSet([]Interval{{0.5, 0.7}, {0.1, 0.3}, {0.25, 0.55}})
	if err != nil {
		t.Fatal(err)
	}
	ivs := s.Intervals()
	if len(ivs) != 1 || ivs[0].Lo != 0.1 || ivs[0].Hi != 0.7 {
		t.Errorf("merged intervals = %v, want single [0.1, 0.7]", ivs)
	}
	if math.Abs(s.Measure()-0.6) > 1e-15 {
		t.Errorf("measure = %v, want 0.6", s.Measure())
	}
}

func TestIntervalSetContains(t *testing.T) {
	s, err := NewIntervalSet([]Interval{{0.1, 0.3}, {0.6, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want bool
	}{
		{0.05, false}, {0.1, true}, {0.2, true}, {0.3, true},
		{0.45, false}, {0.6, true}, {0.8, true}, {0.9, false},
	}
	for _, c := range cases {
		if got := s.Contains(c.x); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestIntervalSetComplement(t *testing.T) {
	s, err := NewIntervalSet([]Interval{{0.1, 0.3}, {0.6, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Complement()
	ivs := c.Intervals()
	want := []Interval{{0, 0.1}, {0.3, 0.6}, {0.8, 1}}
	if len(ivs) != len(want) {
		t.Fatalf("complement = %v", ivs)
	}
	for i := range want {
		if math.Abs(ivs[i].Lo-want[i].Lo) > 1e-15 || math.Abs(ivs[i].Hi-want[i].Hi) > 1e-15 {
			t.Errorf("complement interval %d = %v, want %v", i, ivs[i], want[i])
		}
	}
	if math.Abs(s.Measure()+c.Measure()-1) > 1e-15 {
		t.Error("measures of set and complement should sum to 1")
	}
	// Complement of everything is empty; of empty is everything.
	full, err := NewIntervalSet([]Interval{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Complement().Measure() != 0 {
		t.Error("complement of [0,1] should be empty")
	}
	empty, err := NewIntervalSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Complement().Measure() != 1 {
		t.Error("complement of ∅ should be [0,1]")
	}
}

func TestThresholdConstructor(t *testing.T) {
	s, err := Threshold(0.622)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Measure()-0.622) > 1e-15 {
		t.Errorf("measure = %v", s.Measure())
	}
	zero, err := Threshold(0)
	if err != nil || zero.Measure() != 0 {
		t.Errorf("Threshold(0) = %v, %v", zero, err)
	}
	if _, err := Threshold(1.2); err == nil {
		t.Error("β > 1: expected error")
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(1, 1, 512); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := NewEvaluator(13, 1, 512); err == nil {
		t.Error("n=13: expected error")
	}
	if _, err := NewEvaluator(3, 0, 512); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := NewEvaluator(3, 1, 8); err == nil {
		t.Error("tiny grid: expected error")
	}
	if _, err := NewEvaluator(3, 1, 1<<17); err == nil {
		t.Error("huge grid: expected error")
	}
}

func TestEvaluatorMatchesExactThresholdTheory(t *testing.T) {
	// The convolution oracle restricted to [0, β] must reproduce the
	// paper's Theorem 5.1 values.
	cases := []struct {
		n        int
		capacity float64
	}{
		{3, 1},
		{4, 4.0 / 3},
		{5, 5.0 / 3},
	}
	for _, c := range cases {
		ev, err := NewEvaluator(c.n, c.capacity, 2048)
		if err != nil {
			t.Fatal(err)
		}
		for _, beta := range []float64{0.2, 0.45, 0.622, 0.8, 1.0} {
			s, err := Threshold(beta)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.WinProbability(s)
			if err != nil {
				t.Fatal(err)
			}
			want, err := nonoblivious.SymmetricWinningProbability(c.n, c.capacity, beta)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 3e-4 {
				t.Errorf("n=%d δ=%v β=%v: convolution %v vs exact %v", c.n, c.capacity, beta, got, want)
			}
		}
	}
}

func TestEvaluatorMatchesSimulationOnBandRule(t *testing.T) {
	// A genuinely non-threshold rule: bin 0 for the middle band.
	s, err := NewIntervalSet([]Interval{{0.25, 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(3, 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := ev.WinProbability(s)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := s.Rule("band")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := model.UniformSystem(3, rule, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.WinProbability(sys, sim.Config{Trials: 400000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-analytic) > 4*res.StdErr+5e-4 {
		t.Errorf("convolution %v vs simulation %v ± %v", analytic, res.P, res.StdErr)
	}
}

func TestEvaluatorEmptyAndFullSets(t *testing.T) {
	ev, err := NewEvaluator(3, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := NewIntervalSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Empty bin-0 region: everyone in bin 1, P = F_3(1) = 1/6.
	p, err := ev.WinProbability(empty)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/6) > 1e-3 {
		t.Errorf("P(∅) = %v, want 1/6", p)
	}
	full, err := NewIntervalSet([]Interval{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p, err = ev.WinProbability(full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/6) > 1e-3 {
		t.Errorf("P([0,1]) = %v, want 1/6", p)
	}
}

func TestOptimizeThresholdRecoversPaperOptimum(t *testing.T) {
	ev, err := NewEvaluator(3, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.OptimizeThreshold()
	if err != nil {
		t.Fatal(err)
	}
	ivs := res.Set.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("threshold optimum set = %v", res.Set)
	}
	if math.Abs(ivs[0].Hi-0.622) > 0.01 {
		t.Errorf("recovered β = %v, want ≈ 0.622", ivs[0].Hi)
	}
	if math.Abs(res.WinProbability-0.5446) > 2e-3 {
		t.Errorf("recovered P = %v, want ≈ 0.5446", res.WinProbability)
	}
}

func TestOptimizeTwoIntervalDoesNotBeatThresholdByMuch(t *testing.T) {
	// Extension experiment: probing beyond the paper's single-threshold
	// family. The search must never fall below the single-threshold
	// optimum (it contains it); the measured improvement, if any, is
	// recorded in EXPERIMENTS.md.
	ev, err := NewEvaluator(3, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ev.OptimizeThreshold()
	if err != nil {
		t.Fatal(err)
	}
	double, err := ev.OptimizeTwoInterval()
	if err != nil {
		t.Fatal(err)
	}
	if double.WinProbability < single.WinProbability-1e-9 {
		t.Errorf("two-interval search %v fell below its own threshold baseline %v",
			double.WinProbability, single.WinProbability)
	}
	t.Logf("n=3 δ=1: threshold %.6f vs two-interval %.6f (set %v)",
		single.WinProbability, double.WinProbability, double.Set)
}

func TestBandRuleBeatsThresholdAndCoinAtN4(t *testing.T) {
	// Extension finding (recorded in EXPERIMENTS.md): at n=4, δ=4/3 the
	// middle-band rule S ≈ [0.327, 0.742] wins with probability ≈ 0.478,
	// strictly beating BOTH the optimal single threshold (0.42854) and
	// the oblivious 1/2-coin (0.43133). The paper's single-threshold
	// restriction is therefore lossy for n = 4. Verified here by the
	// convolution oracle and by simulation.
	band, err := NewIntervalSet([]Interval{{0.3271, 0.7416}})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(4, 4.0/3, 1024)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := ev.WinProbability(band)
	if err != nil {
		t.Fatal(err)
	}
	if analytic < 0.47 {
		t.Errorf("band rule convolution value = %v, want ≈ 0.478", analytic)
	}
	rule, err := band.Rule("band")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := model.UniformSystem(4, rule, 4.0/3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.WinProbability(sys, sim.Config{Trials: 300000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const coin = 0.431327   // oblivious 1/2 exact value
	const thresh = 0.428539 // optimal single threshold exact value
	if res.P-4*res.StdErr < coin {
		t.Errorf("band rule simulated %v ± %v should clearly beat the coin %v", res.P, res.StdErr, coin)
	}
	if res.P-4*res.StdErr < thresh {
		t.Errorf("band rule simulated %v ± %v should clearly beat the threshold optimum %v", res.P, res.StdErr, thresh)
	}
}

func TestIntervalSetContainsComplementPartitionProperty(t *testing.T) {
	// Property: every point is in exactly one of S, complement(S)
	// (boundaries may be in both; probe off-boundary points).
	f := func(a, b, c, d uint8, xRaw uint16) bool {
		lo1, hi1 := float64(a%100)/100, float64(b%100)/100
		if lo1 > hi1 {
			lo1, hi1 = hi1, lo1
		}
		lo2, hi2 := float64(c%100)/100, float64(d%100)/100
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		s, err := NewIntervalSet([]Interval{{lo1, hi1}, {lo2, hi2}})
		if err != nil {
			return false
		}
		x := (float64(xRaw) + 0.5) / 65536 // avoid exact boundary hits
		in := s.Contains(x)
		inC := s.Complement().Contains(x)
		return in != inC || (in && inC)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
