package response

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"

	"repro/internal/stats"
)

func mustDensity(t *testing.T, breaks, heights []*big.Rat) PiecewiseDensity {
	t.Helper()
	d, err := NewPiecewiseDensity(breaks, heights)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// skewedDensity has density 3/2 on [0, 1/2] and 1/2 on [1/2, 1]: small
// inputs are three times likelier than large ones.
func skewedDensity(t *testing.T) PiecewiseDensity {
	t.Helper()
	return mustDensity(t,
		[]*big.Rat{new(big.Rat), rr(1, 2), rr(1, 1)},
		[]*big.Rat{rr(3, 2), rr(1, 2)},
	)
}

func TestNewPiecewiseDensityValidation(t *testing.T) {
	one := rr(1, 1)
	if _, err := NewPiecewiseDensity([]*big.Rat{new(big.Rat), one}, nil); err == nil {
		t.Error("missing heights: expected error")
	}
	if _, err := NewPiecewiseDensity([]*big.Rat{new(big.Rat), one}, []*big.Rat{rr(1, 2)}); err == nil {
		t.Error("mass 1/2: expected error")
	}
	if _, err := NewPiecewiseDensity([]*big.Rat{rr(1, 10), one}, []*big.Rat{one}); err == nil {
		t.Error("not spanning 0: expected error")
	}
	if _, err := NewPiecewiseDensity([]*big.Rat{new(big.Rat), rr(1, 2)}, []*big.Rat{rr(2, 1)}); err == nil {
		t.Error("not spanning 1: expected error")
	}
	if _, err := NewPiecewiseDensity([]*big.Rat{new(big.Rat), one, one}, []*big.Rat{one, one}); err == nil {
		t.Error("non-increasing breaks: expected error")
	}
	if _, err := NewPiecewiseDensity([]*big.Rat{new(big.Rat), rr(1, 2), one}, []*big.Rat{rr(3, 1), rr(-1, 1)}); err == nil {
		t.Error("negative height: expected error")
	}
	if _, err := NewPiecewiseDensity([]*big.Rat{new(big.Rat), nil}, []*big.Rat{one}); err == nil {
		t.Error("nil break: expected error")
	}
}

func TestDensityAt(t *testing.T) {
	d := skewedDensity(t)
	if d.DensityAt(rr(1, 4)).Cmp(rr(3, 2)) != 0 {
		t.Error("density on the low piece should be 3/2")
	}
	if d.DensityAt(rr(3, 4)).Cmp(rr(1, 2)) != 0 {
		t.Error("density on the high piece should be 1/2")
	}
	if d.DensityAt(rr(-1, 4)).Sign() != 0 {
		t.Error("density below 0 should be 0")
	}
	if d.DensityAt(rr(1, 2)).Cmp(rr(1, 2)) != 0 {
		t.Error("density at an interior break follows the right piece")
	}
}

func TestExactWinProbabilityDistUniformMatchesBase(t *testing.T) {
	// With the uniform density the weighted evaluation must reproduce
	// ExactWinProbability exactly.
	u := UniformDensity()
	for _, beta := range []*big.Rat{rr(1, 2), rr(5, 8), rr(1, 3)} {
		s, err := NewRatIntervalSet([]RatInterval{ri(new(big.Rat), beta)})
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := ExactWinProbabilityDist(3, rr(1, 1), s, u)
		if err != nil {
			t.Fatal(err)
		}
		base, err := ExactWinProbability(3, rr(1, 1), s)
		if err != nil {
			t.Fatal(err)
		}
		if weighted.Cmp(base) != 0 {
			t.Errorf("β=%v: weighted %v vs base %v", beta, weighted, base)
		}
	}
	// Band rules too.
	band, err := NewRatIntervalSet([]RatInterval{ri(rr(1, 3), rr(3, 4))})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := ExactWinProbabilityDist(4, rr(4, 3), band, u)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExactWinProbability(4, rr(4, 3), band)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Cmp(base) != 0 {
		t.Errorf("band: weighted %v vs base %v", weighted, base)
	}
}

func TestExactWinProbabilityDistSkewedMatchesSimulation(t *testing.T) {
	d := skewedDensity(t)
	s, err := NewRatIntervalSet([]RatInterval{ri(new(big.Rat), rr(5, 8))})
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := ExactWinProbabilityDist(3, rr(1, 1), s, d)
	if err != nil {
		t.Fatal(err)
	}
	af, _ := analytic.Float64()
	// Simulate: sample from the skewed density by inverse transform
	// (CDF: 3x/2 on [0,1/2] → mass 3/4; then 1/2-density).
	sample := func(rng *rand.Rand) float64 {
		u := rng.Float64()
		if u <= 0.75 {
			return u * 2 / 3
		}
		return 0.5 + (u-0.75)*2
	}
	rng := rand.New(rand.NewPCG(314, 159))
	var prop stats.Proportion
	const trials = 400000
	for i := 0; i < trials; i++ {
		var load0, load1 float64
		for j := 0; j < 3; j++ {
			x := sample(rng)
			if x <= 0.625 {
				load0 += x
			} else {
				load1 += x
			}
		}
		prop.Add(load0 <= 1 && load1 <= 1)
	}
	if math.Abs(prop.Estimate()-af) > 4*prop.StdErr() {
		t.Errorf("analytic %v vs simulated %v ± %v", af, prop.Estimate(), prop.StdErr())
	}
}

func TestSkewedInputsShiftTheOptimum(t *testing.T) {
	// The paper's future-work axis quantified: with small inputs three
	// times likelier, the optimal threshold moves off the uniform-case
	// optimum 0.622 and the winning probability landscape changes.
	d := skewedDensity(t)
	bestBeta, bestP := -1.0, -1.0
	uniP := -1.0
	for num := int64(1); num < 64; num++ {
		beta := rr(num, 64)
		s, err := NewRatIntervalSet([]RatInterval{ri(new(big.Rat), beta)})
		if err != nil {
			t.Fatal(err)
		}
		p, err := ExactWinProbabilityDist(3, rr(1, 1), s, d)
		if err != nil {
			t.Fatal(err)
		}
		pf, _ := p.Float64()
		if pf > bestP {
			bestP = pf
			bestBeta, _ = beta.Float64()
		}
		if num == 40 { // 40/64 = 0.625 ≈ uniform-case optimum
			uniP = pf
		}
	}
	if math.Abs(bestBeta-0.622) < 0.02 {
		t.Errorf("skewed optimum β = %v should move away from the uniform optimum 0.622", bestBeta)
	}
	if bestP < uniP {
		t.Errorf("grid best %v should beat the uniform-case threshold's value %v", bestP, uniP)
	}
	t.Logf("skewed inputs (3:1 small): optimal β ≈ %.4f with P ≈ %.6f (uniform-case β=0.622 gives %.6f)",
		bestBeta, bestP, uniP)
}

func TestExactWinProbabilityDistValidation(t *testing.T) {
	u := UniformDensity()
	s, err := NewRatIntervalSet([]RatInterval{ri(new(big.Rat), rr(1, 2))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactWinProbabilityDist(1, rr(1, 1), s, u); err == nil {
		t.Error("n=1: expected error")
	}
	if _, err := ExactWinProbabilityDist(11, rr(1, 1), s, u); err == nil {
		t.Error("n=11: expected error")
	}
	if _, err := ExactWinProbabilityDist(3, nil, s, u); err == nil {
		t.Error("nil capacity: expected error")
	}
	if _, err := ExactWinProbabilityDist(3, rr(1, 1), s, PiecewiseDensity{}); err == nil {
		t.Error("zero-value density: expected error")
	}
}
