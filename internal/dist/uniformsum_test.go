package dist

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewUniformSumValidation(t *testing.T) {
	if _, err := NewUniformSum(nil); err == nil {
		t.Error("empty widths: expected error")
	}
	if _, err := NewUniformSum([]float64{1, 0}); err == nil {
		t.Error("zero width: expected error")
	}
	if _, err := NewUniformSum([]float64{-1}); err == nil {
		t.Error("negative width: expected error")
	}
	if _, err := NewUniformSum([]float64{math.Inf(1)}); err == nil {
		t.Error("infinite width: expected error")
	}
	if _, err := NewUniformSum(make([]float64, MaxSubsetDim+1)); err == nil {
		t.Error("too many summands: expected error")
	}
}

func TestUniformSumAccessorsAndMoments(t *testing.T) {
	u, err := NewUniformSum([]float64{0.5, 1.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 3 {
		t.Errorf("N = %d, want 3", u.N())
	}
	lo, hi := u.Support()
	if lo != 0 || hi != 3 {
		t.Errorf("support = [%v, %v], want [0, 3]", lo, hi)
	}
	if math.Abs(u.Mean()-1.5) > 1e-15 {
		t.Errorf("mean = %v, want 1.5", u.Mean())
	}
	wantVar := (0.25 + 2.25 + 1) / 12
	if math.Abs(u.Variance()-wantVar) > 1e-15 {
		t.Errorf("variance = %v, want %v", u.Variance(), wantVar)
	}
	ws := u.Widths()
	ws[0] = 9
	if u.widths[0] == 9 {
		t.Error("Widths() leaked internal slice")
	}
}

func TestUniformSumMatchesIrwinHallForUnitWidths(t *testing.T) {
	for m := 1; m <= 8; m++ {
		widths := make([]float64, m)
		for i := range widths {
			widths[i] = 1
		}
		u, err := NewUniformSum(widths)
		if err != nil {
			t.Fatal(err)
		}
		ih, err := NewIrwinHall(m)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0.0; tt <= float64(m); tt += 0.13 {
			if d := math.Abs(u.CDF(tt) - ih.CDF(tt)); d > 1e-10 {
				t.Errorf("m=%d t=%v: UniformSum %v vs IrwinHall %v", m, tt, u.CDF(tt), ih.CDF(tt))
			}
			if d := math.Abs(u.PDF(tt) - ih.PDF(tt)); d > 1e-9 {
				t.Errorf("m=%d t=%v: PDF %v vs IrwinHall %v", m, tt, u.PDF(tt), ih.PDF(tt))
			}
		}
	}
}

func TestUniformSumCDFBoundaries(t *testing.T) {
	u, err := NewUniformSum([]float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if u.CDF(0) != 0 || u.CDF(-1) != 0 {
		t.Error("CDF at or below 0 should be 0")
	}
	if u.CDF(1.0) != 1 || u.CDF(5) != 1 {
		t.Error("CDF at or beyond support should be 1")
	}
}

func TestUniformSumTwoAsymmetricExactValue(t *testing.T) {
	// x ~ U[0, 1], y ~ U[0, 2]: P(x + y ≤ 1) = area of triangle with legs
	// 1,1 inside the 1×2 rectangle divided by 2 = (1/2)/2 = 1/4.
	u, err := NewUniformSum([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.CDF(1); math.Abs(got-0.25) > 1e-14 {
		t.Errorf("P(x+y ≤ 1) = %v, want 0.25", got)
	}
	// P(x + y ≤ 2) = (2 - (1/2) - (1/2)) / 2 ... compute directly:
	// area{x+y≤2} in [0,1]×[0,2] = 2 - area{x+y>2} = 2 - 1/2 = 3/2 → 3/4.
	if got := u.CDF(2); math.Abs(got-0.75) > 1e-14 {
		t.Errorf("P(x+y ≤ 2) = %v, want 0.75", got)
	}
}

func TestUniformSumPDFIsDerivativeOfCDF(t *testing.T) {
	u, err := NewUniformSum([]float64{0.5, 1.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for _, x := range []float64{0.2, 0.7, 1.3, 2.0, 2.4} {
		numeric := (u.CDF(x+h) - u.CDF(x-h)) / (2 * h)
		analytic := u.PDF(x)
		if math.Abs(numeric-analytic) > 1e-5 {
			t.Errorf("f(%v): analytic %v vs numeric %v", x, analytic, numeric)
		}
	}
}

func TestUniformSumPDFOutsideSupport(t *testing.T) {
	u, err := NewUniformSum([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if u.PDF(-0.1) != 0 || u.PDF(0) != 0 || u.PDF(1) != 0 || u.PDF(2) != 0 {
		t.Error("PDF outside open support should be 0")
	}
}

func TestUniformSumCDFMonotoneProperty(t *testing.T) {
	f := func(w1, w2, w3 uint8, aRaw, bRaw uint16) bool {
		widths := []float64{
			0.05 + float64(w1)/64,
			0.05 + float64(w2)/64,
			0.05 + float64(w3)/64,
		}
		u, err := NewUniformSum(widths)
		if err != nil {
			return false
		}
		_, hi := u.Support()
		a := float64(aRaw) / 65535 * hi
		b := float64(bRaw) / 65535 * hi
		if a > b {
			a, b = b, a
		}
		return u.CDF(a) <= u.CDF(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformSumSampleMatchesCDF(t *testing.T) {
	u, err := NewUniformSum([]float64{0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 5))
	const n = 100000
	threshold := 1.0
	want := u.CDF(threshold)
	hits := 0
	for i := 0; i < n; i++ {
		v, err := u.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if v <= threshold {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.006 {
		t.Errorf("empirical CDF(1) = %v, analytic %v", got, want)
	}
	if _, err := u.Sample(nil); err == nil {
		t.Error("nil rng: expected error")
	}
}

func TestCDFRatMatchesFloat(t *testing.T) {
	widths := []*big.Rat{big.NewRat(1, 2), big.NewRat(3, 4), big.NewRat(1, 1)}
	wf := make([]float64, len(widths))
	for i, w := range widths {
		wf[i], _ = w.Float64()
	}
	u, err := NewUniformSum(wf)
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(0); num <= 9; num++ {
		tr := big.NewRat(num, 4)
		tf, _ := tr.Float64()
		exact, err := CDFRat(widths, tr)
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := exact.Float64()
		if math.Abs(u.CDF(tf)-ef) > 1e-12 {
			t.Errorf("t=%v: float %v vs exact %v", tf, u.CDF(tf), ef)
		}
	}
}

func TestCDFRatValidation(t *testing.T) {
	one := big.NewRat(1, 1)
	if _, err := CDFRat(nil, one); err == nil {
		t.Error("empty widths: expected error")
	}
	if _, err := CDFRat([]*big.Rat{one}, nil); err == nil {
		t.Error("nil threshold: expected error")
	}
	if _, err := CDFRat([]*big.Rat{nil}, one); err == nil {
		t.Error("nil width: expected error")
	}
	if _, err := CDFRat([]*big.Rat{big.NewRat(-1, 2)}, one); err == nil {
		t.Error("negative width: expected error")
	}
	many := make([]*big.Rat, 25)
	for i := range many {
		many[i] = one
	}
	if _, err := CDFRat(many, one); err == nil {
		t.Error("too many summands: expected error")
	}
	// Boundary clamps.
	v, err := CDFRat([]*big.Rat{one}, big.NewRat(-1, 1))
	if err != nil || v.Sign() != 0 {
		t.Errorf("CDFRat below support = %v, %v; want 0", v, err)
	}
	v, err = CDFRat([]*big.Rat{one}, big.NewRat(2, 1))
	if err != nil || v.Cmp(one) != 0 {
		t.Errorf("CDFRat above support = %v, %v; want 1", v, err)
	}
}
