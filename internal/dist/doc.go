// Package dist implements the probability distributions of Section 2.2 of
// the paper: sums of independent, uniformly distributed random variables.
//
// The paper reduces "no overflow in a bin" to the event that a sum of
// independent uniforms stays below the bin capacity, and computes the
// probability by inclusion-exclusion over the polytope volumes of
// Proposition 2.2. This package exposes those results directly:
//
//   - UniformSum: Σ x_i with x_i ~ U[0, π_i]. Its CDF is Lemma 2.4 and its
//     density is Lemma 2.5 — the paper notes the density formula answers a
//     research problem posed by Rota.
//   - IrwinHall: the classical special case π_i = 1 (Corollary 2.6), with
//     the O(m) binomial-collapse fast path, quantiles, and sampling.
//   - ShiftedUniformSum: Σ x_i with x_i ~ U[π_i, 1] (Lemma 2.7), the
//     conditional distribution of inputs that chose the "high" bin under a
//     single-threshold algorithm.
//
// Every CDF has a float64 implementation with compensated summation and an
// exact rational implementation used as a test oracle and for the certified
// optimality computations.
package dist
