package dist

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewIrwinHallValidation(t *testing.T) {
	if _, err := NewIrwinHall(-1); err == nil {
		t.Error("negative order: expected error")
	}
	if _, err := NewIrwinHall(MaxIrwinHallN + 1); err == nil {
		t.Error("over-limit order: expected error")
	}
	ih, err := NewIrwinHall(0)
	if err != nil {
		t.Fatalf("order 0 should be allowed: %v", err)
	}
	if ih.N() != 0 {
		t.Errorf("N = %d, want 0", ih.N())
	}
}

func TestIrwinHallDegenerateOrderZero(t *testing.T) {
	ih, err := NewIrwinHall(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ih.CDF(0); got != 1 {
		t.Errorf("F_0(0) = %v, want 1 (point mass at 0)", got)
	}
	if got := ih.CDF(-0.5); got != 0 {
		t.Errorf("F_0(-0.5) = %v, want 0", got)
	}
	if got := ih.CDF(3); got != 1 {
		t.Errorf("F_0(3) = %v, want 1", got)
	}
	if got := ih.PDF(0.5); got != 0 {
		t.Errorf("f_0(0.5) = %v, want 0", got)
	}
	q, err := ih.Quantile(0.7)
	if err != nil || q != 0 {
		t.Errorf("Quantile(0.7) = %v, %v; want 0, nil", q, err)
	}
}

func TestIrwinHallKnownValues(t *testing.T) {
	cases := []struct {
		m    int
		t    float64
		want float64
	}{
		{1, 0.3, 0.3}, // uniform CDF
		{1, 1.0, 1.0},
		{2, 1.0, 0.5}, // triangle distribution
		{2, 0.5, 0.125},
		{2, 1.5, 0.875},
		{3, 1.0, 1.0 / 6}, // unit simplex volume
		{3, 1.5, 0.5},     // symmetry at the mean
		{3, 2.0, 5.0 / 6},
		{4, 2.0, 0.5},
		{5, 2.5, 0.5},
	}
	for _, c := range cases {
		got, err := IrwinHallCDF(c.m, c.t)
		if err != nil {
			t.Fatalf("IrwinHallCDF(%d, %v): %v", c.m, c.t, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F_%d(%v) = %.15f, want %.15f", c.m, c.t, got, c.want)
		}
	}
}

func TestIrwinHallCDFBoundaries(t *testing.T) {
	ih, err := NewIrwinHall(4)
	if err != nil {
		t.Fatal(err)
	}
	if ih.CDF(0) != 0 || ih.CDF(-1) != 0 {
		t.Error("CDF below support should be 0")
	}
	if ih.CDF(4) != 1 || ih.CDF(10) != 1 {
		t.Error("CDF above support should be 1")
	}
	lo, hi := ih.Support()
	if lo != 0 || hi != 4 {
		t.Errorf("support = [%v, %v], want [0, 4]", lo, hi)
	}
}

func TestIrwinHallMoments(t *testing.T) {
	ih, err := NewIrwinHall(7)
	if err != nil {
		t.Fatal(err)
	}
	if ih.Mean() != 3.5 {
		t.Errorf("mean = %v, want 3.5", ih.Mean())
	}
	if math.Abs(ih.Variance()-7.0/12) > 1e-15 {
		t.Errorf("variance = %v, want 7/12", ih.Variance())
	}
}

func TestIrwinHallCDFMonotoneProperty(t *testing.T) {
	f := func(mRaw uint8, aRaw, bRaw uint16) bool {
		m := 1 + int(mRaw%10)
		a := float64(aRaw) / 65535 * float64(m)
		b := float64(bRaw) / 65535 * float64(m)
		if a > b {
			a, b = b, a
		}
		ih, err := NewIrwinHall(m)
		if err != nil {
			return false
		}
		return ih.CDF(a) <= ih.CDF(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIrwinHallSymmetryProperty(t *testing.T) {
	// F_m(t) + F_m(m - t) = 1 by symmetry of the density about m/2.
	f := func(mRaw uint8, tRaw uint16) bool {
		m := 1 + int(mRaw%12)
		tt := float64(tRaw) / 65535 * float64(m)
		ih, err := NewIrwinHall(m)
		if err != nil {
			return false
		}
		return math.Abs(ih.CDF(tt)+ih.CDF(float64(m)-tt)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIrwinHallPDFIsDerivativeOfCDF(t *testing.T) {
	ih, err := NewIrwinHall(5)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for _, x := range []float64{0.4, 1.1, 2.5, 3.9, 4.6} {
		numeric := (ih.CDF(x+h) - ih.CDF(x-h)) / (2 * h)
		analytic := ih.PDF(x)
		if math.Abs(numeric-analytic) > 1e-5 {
			t.Errorf("f_5(%v): analytic %v vs numeric %v", x, analytic, numeric)
		}
	}
}

func TestIrwinHallPDFIntegratesToOne(t *testing.T) {
	ih, err := NewIrwinHall(6)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 6000
	var sum float64
	h := 6.0 / steps
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * ih.PDF(float64(i)*h)
	}
	sum *= h
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("∫ f_6 = %v, want 1", sum)
	}
}

func TestIrwinHallPDFOutsideSupport(t *testing.T) {
	ih, err := NewIrwinHall(3)
	if err != nil {
		t.Fatal(err)
	}
	if ih.PDF(-0.1) != 0 || ih.PDF(0) != 0 || ih.PDF(3) != 0 || ih.PDF(3.5) != 0 {
		t.Error("PDF outside open support should be 0")
	}
}

func TestIrwinHallQuantileRoundTrip(t *testing.T) {
	ih, err := NewIrwinHall(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		q, err := ih.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ih.CDF(q)-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, ih.CDF(q))
		}
	}
	if q, err := ih.Quantile(0); err != nil || q != 0 {
		t.Errorf("Quantile(0) = %v, %v", q, err)
	}
	if q, err := ih.Quantile(1); err != nil || q != 4 {
		t.Errorf("Quantile(1) = %v, %v", q, err)
	}
	if _, err := ih.Quantile(-0.1); err == nil {
		t.Error("Quantile(-0.1): expected error")
	}
	if _, err := ih.Quantile(1.1); err == nil {
		t.Error("Quantile(1.1): expected error")
	}
	if _, err := ih.Quantile(math.NaN()); err == nil {
		t.Error("Quantile(NaN): expected error")
	}
}

func TestIrwinHallSampleMatchesCDF(t *testing.T) {
	ih, err := NewIrwinHall(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 13))
	const n = 200000
	var below15 int
	var sum float64
	for i := 0; i < n; i++ {
		v, err := ih.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		if v <= 1.5 {
			below15++
		}
	}
	empirical := float64(below15) / n
	if math.Abs(empirical-0.5) > 0.005 {
		t.Errorf("empirical F_3(1.5) = %v, want ≈ 0.5", empirical)
	}
	if math.Abs(sum/n-1.5) > 0.01 {
		t.Errorf("empirical mean = %v, want ≈ 1.5", sum/n)
	}
	if _, err := ih.Sample(nil); err == nil {
		t.Error("nil rng: expected error")
	}
}

func TestIrwinHallCDFRatMatchesFloat(t *testing.T) {
	for m := 1; m <= 10; m++ {
		for num := int64(0); num <= int64(4*m); num++ {
			tr := big.NewRat(num, 4)
			tf, _ := tr.Float64()
			exact, err := IrwinHallCDFRat(m, tr)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := IrwinHallCDF(m, tf)
			if err != nil {
				t.Fatal(err)
			}
			ef, _ := exact.Float64()
			if math.Abs(approx-ef) > 1e-10 {
				t.Errorf("m=%d t=%v: float %v vs exact %v", m, tf, approx, ef)
			}
		}
	}
}

func TestIrwinHallCDFRatLargeOrder(t *testing.T) {
	// The exact path works far beyond the float64 cancellation limit.
	m := 60
	half := big.NewRat(int64(m), 2)
	v, err := IrwinHallCDFRat(m, half)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("F_60(30) = %v, want exactly 1/2 by symmetry", v)
	}
}

func TestIrwinHallCDFRatValidation(t *testing.T) {
	if _, err := IrwinHallCDFRat(-1, big.NewRat(1, 2)); err == nil {
		t.Error("negative order: expected error")
	}
	if _, err := IrwinHallCDFRat(3, nil); err == nil {
		t.Error("nil threshold: expected error")
	}
	if _, err := IrwinHallCDFRat(MaxIrwinHallRatN+1, big.NewRat(1, 2)); err == nil {
		t.Error("over-limit order: expected error")
	}
	v, err := IrwinHallCDFRat(0, big.NewRat(1, 2))
	if err != nil || v.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("F_0(1/2) = %v, %v; want 1", v, err)
	}
	v, err = IrwinHallCDFRat(0, big.NewRat(-1, 2))
	if err != nil || v.Sign() != 0 {
		t.Errorf("F_0(-1/2) = %v, %v; want 0", v, err)
	}
	v, err = IrwinHallCDFRat(2, big.NewRat(-1, 2))
	if err != nil || v.Sign() != 0 {
		t.Errorf("F_2(-1/2) = %v, %v; want 0", v, err)
	}
	v, err = IrwinHallCDFRat(2, big.NewRat(7, 2))
	if err != nil || v.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("F_2(7/2) = %v, %v; want 1", v, err)
	}
}
