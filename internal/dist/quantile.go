package dist

import (
	"fmt"
	"math"
)

// Quantile returns the t with CDF(t) = p for the uniform-sum
// distribution, found by bisection on the exact CDF. It returns an error
// if p is outside [0, 1].
func (u *UniformSum) Quantile(p float64) (float64, error) {
	lo, hi := u.Support()
	return quantileByBisection(u.CDF, lo, hi, p)
}

// Quantile returns the t with CDF(t) = p for the shifted uniform-sum
// distribution. It returns an error if p is outside [0, 1].
func (s *ShiftedUniformSum) Quantile(p float64) (float64, error) {
	lo, hi := s.Support()
	return quantileByBisection(s.CDF, lo, hi, p)
}

func quantileByBisection(cdf func(float64) float64, lo, hi, p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("dist: quantile probability %v outside [0, 1]", p)
	}
	if p == 0 {
		return lo, nil
	}
	if p == 1 {
		return hi, nil
	}
	for i := 0; i < 200 && hi-lo > 1e-13*(1+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// NormalApproxError reports how far the Irwin-Hall distribution of order m
// is from its moment-matched normal approximation N(m/2, m/12), as the
// Kolmogorov distance sup_t |F_m(t) - Φ((t-m/2)/√(m/12))| evaluated on a
// uniform grid of the support. The CLT makes this shrink like O(1/√m),
// which quantifies when the paper's exact formulas actually matter: for
// the small n of the paper's instances the error is several percent.
func NormalApproxError(m int, gridPoints int) (float64, error) {
	if gridPoints < 2 {
		return 0, fmt.Errorf("dist: need at least 2 grid points, got %d", gridPoints)
	}
	ih, err := NewIrwinHall(m)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, fmt.Errorf("dist: normal approximation undefined for m = 0")
	}
	mean := float64(m) / 2
	sd := math.Sqrt(float64(m) / 12)
	var worst float64
	for i := 0; i < gridPoints; i++ {
		t := float64(m) * float64(i) / float64(gridPoints-1)
		exact := ih.CDF(t)
		approx := stdNormalCDF((t - mean) / sd)
		if d := math.Abs(exact - approx); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// stdNormalCDF is Φ, the standard normal CDF.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
