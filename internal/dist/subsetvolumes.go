package dist

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/combin"
)

// SubsetVolumeStats counts the work one AllSubsetVolumes call performed,
// for the exact backend's observability counters.
type SubsetVolumeStats struct {
	// Subsets is the number of subset cells produced (2^n).
	Subsets uint64
	// Incremental is the number of O(1) incremental state updates: the
	// per-exponent radix-power updates plus the sum-over-subsets pair
	// additions.
	Incremental uint64
	// Rebuilt is the number of cells whose base term had to be rebuilt
	// from scratch rather than updated incrementally (zero here: the
	// shared threshold makes every radix exponent-independent).
	Rebuilt uint64
}

// AllSubsetVolumes returns vol[T] = Vol{y : 0 ≤ y_i ≤ w_i (i ∈ T),
// Σ_{i∈T} y_i ≤ t} for every T ⊆ {0, ..., n-1} — the Proposition 2.2
// box-simplex volume of every subset of the widths at one shared threshold
// t — in O(n²·2^n) float64 operations total, against Θ(3^n) for evaluating
// each subset's inclusion-exclusion sum independently.
//
// Inclusion-exclusion gives Vol(T) = (1/m!) Σ_{I⊆T} (−1)^{|I|} (t−σ_I)_+^m
// with m = |T| and σ_I = Σ_{i∈I} w_i. Two observations make the joint
// computation cheap:
//
//   - the radix t−σ_I does not depend on m, so the signed base table
//     p_m[I] = (−1)^{|I|} (t−σ_I)_+^m / m! is maintained incrementally
//     across exponents: p_m[I] = p_{m−1}[I] · (t−σ_I)/m, one multiply per
//     cell per exponent;
//   - for a fixed m, Σ_{I⊆T} p_m[I] for every T at once is the bitwise
//     sum-over-subsets (zeta) transform, n·2^(n-1) pair additions.
//
// Entries with |T| = m are read off after pass m. Volumes are clamped
// below at 0; dividing vol[T] by Π_{i∈T} w_i yields the Lemma 2.4 CDF of
// Σ_{i∈T} U[0, w_i] at t. Zero widths are admitted (their coordinates
// contribute zero volume, so vol[T] = 0 for any T containing one).
//
// workers shards the zeta passes; results are bit-identical for every
// worker count because the pass structure and all write locations are
// fixed by n alone.
func AllSubsetVolumes(widths []float64, t float64, workers int) ([]float64, SubsetVolumeStats, error) {
	n := len(widths)
	var stats SubsetVolumeStats
	if n > combin.MaxSubsetTable {
		return nil, stats, fmt.Errorf("dist: subset-volume table limited to %d dimensions, got %d", combin.MaxSubsetTable, n)
	}
	for i, w := range widths {
		if math.IsNaN(w) || w < 0 || math.IsInf(w, 1) {
			return nil, stats, fmt.Errorf("dist: width %d = %v must be finite and non-negative", i, w)
		}
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, stats, fmt.Errorf("dist: subset-volume threshold %v must be finite", t)
	}
	size := uint64(1) << uint(n)
	stats.Subsets = size
	vol := make([]float64, size)
	if t >= 0 {
		vol[0] = 1 // the empty box-simplex
	}
	if n == 0 {
		return vol, stats, nil
	}
	sums, err := combin.SubsetSums(widths)
	if err != nil {
		return nil, stats, err
	}
	// radix[I] = t − σ_I, reusing the sums table in place.
	radix := sums
	p := make([]float64, size)
	for mask := uint64(0); mask < size; mask++ {
		r := t - radix[mask]
		radix[mask] = r
		if r > 0 {
			if bits.OnesCount64(mask)%2 == 1 {
				p[mask] = -1
			} else {
				p[mask] = 1
			}
		}
	}
	scratch := make([]float64, size)
	for m := 1; m <= n; m++ {
		invM := 1 / float64(m)
		for mask := uint64(0); mask < size; mask++ {
			v := p[mask] * radix[mask] * invM
			p[mask] = v
			scratch[mask] = v
		}
		if err := combin.SumOverSubsets(scratch, n, workers); err != nil {
			return nil, stats, err
		}
		// Only the |T| = m entries are volumes at this exponent.
		if err := combin.ForEachKSubsetMask(n, m, func(mask uint64) bool {
			v := scratch[mask]
			if v < 0 {
				v = 0
			}
			vol[mask] = v
			return true
		}); err != nil {
			return nil, stats, err
		}
	}
	// Per exponent: 2^n radix-power updates plus n·2^(n-1) zeta additions.
	stats.Incremental = uint64(n)*size + uint64(n)*uint64(n)*size/2
	return vol, stats, nil
}
