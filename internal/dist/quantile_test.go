package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformSumQuantileRoundTrip(t *testing.T) {
	u, err := NewUniformSum([]float64{0.5, 1.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		q, err := u.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(u.CDF(q)-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, u.CDF(q))
		}
	}
	q, err := u.Quantile(0)
	if err != nil || q != 0 {
		t.Errorf("Quantile(0) = %v, %v", q, err)
	}
	q, err = u.Quantile(1)
	if err != nil || q != 2.5 {
		t.Errorf("Quantile(1) = %v, %v; want 2.5", q, err)
	}
	if _, err := u.Quantile(-0.5); err == nil {
		t.Error("p < 0: expected error")
	}
	if _, err := u.Quantile(math.NaN()); err == nil {
		t.Error("p = NaN: expected error")
	}
}

func TestShiftedSumQuantileRoundTrip(t *testing.T) {
	s, err := NewShiftedUniformSum([]float64{0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.05, 0.3, 0.5, 0.8, 0.95} {
		q, err := s.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.CDF(q)-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, s.CDF(q))
		}
	}
	if _, err := s.Quantile(2); err == nil {
		t.Error("p > 1: expected error")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	u, err := NewUniformSum([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65535
		b := float64(bRaw) / 65535
		if a > b {
			a, b = b, a
		}
		qa, errA := u.Quantile(a)
		qb, errB := u.Quantile(b)
		return errA == nil && errB == nil && qa <= qb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformSumQuantileMatchesIrwinHall(t *testing.T) {
	u, err := NewUniformSum([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	ih, err := NewIrwinHall(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.2, 0.5, 0.8} {
		qu, err := u.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		qi, err := ih.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qu-qi) > 1e-8 {
			t.Errorf("p=%v: uniform-sum quantile %v vs Irwin-Hall %v", p, qu, qi)
		}
	}
}

func TestNormalApproxErrorShrinksWithM(t *testing.T) {
	e3, err := NormalApproxError(3, 2001)
	if err != nil {
		t.Fatal(err)
	}
	e12, err := NormalApproxError(12, 2001)
	if err != nil {
		t.Fatal(err)
	}
	e25, err := NormalApproxError(25, 2001)
	if err != nil {
		t.Fatal(err)
	}
	if !(e3 > e12 && e12 > e25) {
		t.Errorf("normal approximation error should shrink: m=3 %v, m=12 %v, m=25 %v", e3, e12, e25)
	}
	// At the paper's n=3 the CLT is visibly wrong (≈ 1% Kolmogorov
	// distance), justifying the exact combinatorial treatment.
	if e3 < 0.005 {
		t.Errorf("m=3 error %v suspiciously small", e3)
	}
	if e25 > 0.01 {
		t.Errorf("m=25 error %v suspiciously large", e25)
	}
}

func TestNormalApproxErrorValidation(t *testing.T) {
	if _, err := NormalApproxError(0, 100); err == nil {
		t.Error("m=0: expected error")
	}
	if _, err := NormalApproxError(-1, 100); err == nil {
		t.Error("m=-1: expected error")
	}
	if _, err := NormalApproxError(3, 1); err == nil {
		t.Error("1 grid point: expected error")
	}
	if _, err := NormalApproxError(MaxIrwinHallN+1, 100); err == nil {
		t.Error("m over limit: expected error")
	}
}

func TestStdNormalCDFKnownValues(t *testing.T) {
	if math.Abs(stdNormalCDF(0)-0.5) > 1e-15 {
		t.Error("Φ(0) != 1/2")
	}
	if math.Abs(stdNormalCDF(1.959963985)-0.975) > 1e-6 {
		t.Errorf("Φ(1.96) = %v", stdNormalCDF(1.959963985))
	}
	if math.Abs(stdNormalCDF(-1.959963985)-0.025) > 1e-6 {
		t.Errorf("Φ(-1.96) = %v", stdNormalCDF(-1.959963985))
	}
}
