package dist

import (
	"fmt"
	"math"
	"math/big"
	"math/rand/v2"

	"repro/internal/combin"
)

// MaxIrwinHallN bounds the Irwin-Hall order for which the alternating
// binomial series of Corollary 2.6 remains numerically trustworthy in
// float64 (catastrophic cancellation sets in around m ≈ 25-30; the exact
// rational path has no such limit within MaxIrwinHallRatN).
const MaxIrwinHallN = 25

// MaxIrwinHallRatN bounds the exact rational Irwin-Hall order.
const MaxIrwinHallRatN = 200

// IrwinHall is the distribution of the sum of m independent U[0,1] random
// variables (Corollary 2.6 of the paper). The degenerate case m = 0 — the
// empty sum, identically zero — is allowed because the winning-probability
// formulas sum over decision vectors that may leave a bin empty.
type IrwinHall struct {
	m int
}

// NewIrwinHall constructs the Irwin-Hall distribution of order m ≥ 0.
func NewIrwinHall(m int) (*IrwinHall, error) {
	if m < 0 {
		return nil, fmt.Errorf("dist: Irwin-Hall order %d must be non-negative", m)
	}
	if m > MaxIrwinHallN {
		return nil, fmt.Errorf("dist: float64 Irwin-Hall limited to order %d, got %d (use CDFRat)", MaxIrwinHallN, m)
	}
	return &IrwinHall{m: m}, nil
}

// N returns the order m.
func (ih *IrwinHall) N() int { return ih.m }

// Mean returns m/2.
func (ih *IrwinHall) Mean() float64 { return float64(ih.m) / 2 }

// Variance returns m/12.
func (ih *IrwinHall) Variance() float64 { return float64(ih.m) / 12 }

// Support returns [0, m].
func (ih *IrwinHall) Support() (lo, hi float64) { return 0, float64(ih.m) }

// CDF evaluates Corollary 2.6,
//
//	F_m(t) = (1/m!) Σ_{0 ≤ i ≤ m, i < t} (-1)^i C(m, i) (t - i)^m,
//
// clamped to [0, 1]. For m = 0 the empty sum is identically zero, so
// F_0(t) = 1 for t ≥ 0 and 0 otherwise.
func (ih *IrwinHall) CDF(t float64) float64 {
	if ih.m == 0 {
		if t >= 0 {
			return 1
		}
		return 0
	}
	if t <= 0 {
		return 0
	}
	if t >= float64(ih.m) {
		return 1
	}
	m := ih.m
	sum, err := combin.SignedBinomialSum(m,
		func(i int) bool { return float64(i) < t },
		func(i int) float64 { return math.Pow(t-float64(i), float64(m)) })
	if err != nil {
		// Unreachable: guards and terms are non-nil and m is validated.
		return math.NaN()
	}
	f, err := combin.FactorialFloat(m)
	if err != nil {
		return math.NaN()
	}
	return clamp01(sum / f)
}

// PDF evaluates the Irwin-Hall density, the m = "all ones" case of
// Lemma 2.5:
//
//	f_m(t) = (1/(m-1)!) Σ_{0 ≤ i ≤ m, i < t} (-1)^i C(m, i) (t - i)^(m-1).
//
// The density is 0 outside the open support, and the m = 0 point mass has
// no density (PDF returns 0 everywhere for m = 0).
func (ih *IrwinHall) PDF(t float64) float64 {
	if ih.m == 0 {
		return 0
	}
	if t <= 0 || t >= float64(ih.m) {
		return 0
	}
	m := ih.m
	sum, err := combin.SignedBinomialSum(m,
		func(i int) bool { return float64(i) < t },
		func(i int) float64 { return math.Pow(t-float64(i), float64(m-1)) })
	if err != nil {
		return math.NaN()
	}
	f, err := combin.FactorialFloat(m - 1)
	if err != nil {
		return math.NaN()
	}
	v := sum / f
	if v < 0 {
		return 0
	}
	return v
}

// Quantile returns the t with CDF(t) = p, found by bisection with Newton
// polish. It returns an error if p is outside [0, 1].
func (ih *IrwinHall) Quantile(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("dist: quantile probability %v outside [0, 1]", p)
	}
	if ih.m == 0 {
		return 0, nil
	}
	if p == 0 {
		return 0, nil
	}
	if p == 1 {
		return float64(ih.m), nil
	}
	lo, hi := 0.0, float64(ih.m)
	for i := 0; i < 200 && hi-lo > 1e-14; i++ {
		mid := (lo + hi) / 2
		if ih.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Sample draws one value of the sum. It returns an error if rng is nil.
func (ih *IrwinHall) Sample(rng *rand.Rand) (float64, error) {
	if rng == nil {
		return 0, fmt.Errorf("dist: nil random source")
	}
	var s float64
	for i := 0; i < ih.m; i++ {
		s += rng.Float64()
	}
	return s, nil
}

// IrwinHallCDF is a convenience wrapper evaluating F_m(t) without
// constructing a distribution value. It returns an error for invalid m.
func IrwinHallCDF(m int, t float64) (float64, error) {
	ih, err := NewIrwinHall(m)
	if err != nil {
		return 0, err
	}
	return ih.CDF(t), nil
}

// IrwinHallCDFRat evaluates Corollary 2.6 exactly at a rational point.
// Orders up to MaxIrwinHallRatN are supported; m = 0 follows the same
// point-mass convention as CDF.
func IrwinHallCDFRat(m int, t *big.Rat) (*big.Rat, error) {
	if m < 0 {
		return nil, fmt.Errorf("dist: Irwin-Hall order %d must be non-negative", m)
	}
	if m > MaxIrwinHallRatN {
		return nil, fmt.Errorf("dist: exact Irwin-Hall limited to order %d, got %d", MaxIrwinHallRatN, m)
	}
	if t == nil {
		return nil, fmt.Errorf("dist: nil threshold")
	}
	if m == 0 {
		if t.Sign() >= 0 {
			return big.NewRat(1, 1), nil
		}
		return new(big.Rat), nil
	}
	if t.Sign() <= 0 {
		return new(big.Rat), nil
	}
	if t.Cmp(new(big.Rat).SetInt64(int64(m))) >= 0 {
		return big.NewRat(1, 1), nil
	}
	sum, err := combin.SignedBinomialSumRat(m,
		func(i int) bool {
			return new(big.Rat).SetInt64(int64(i)).Cmp(t) < 0
		},
		func(i int) *big.Rat {
			d := new(big.Rat).Sub(t, new(big.Rat).SetInt64(int64(i)))
			return ratPow(d, m)
		})
	if err != nil {
		return nil, err
	}
	invFact, err := combin.InvFactorialRat(m)
	if err != nil {
		return nil, err
	}
	return sum.Mul(sum, invFact), nil
}
