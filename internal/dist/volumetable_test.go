package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

// volumeWalkBound is the tolerance for delta-updated volumes along random
// coordinate walks: each touched cell is recomputed from exact subset-sum
// state and rounded once per update, so the accumulated drift stays within
// a few hundred ulps of the n·2^n-op rebuild — far inside the evaluators'
// certified ExactErrorBound (≈1e-8 at these sizes), which is the bound the
// downstream property tests assert end to end.
const volumeWalkBound = 1e-10

// TestVolumeTableBuildMatchesAllSubsetVolumes pins Build against the
// one-shot AllSubsetVolumes bit for bit, for serial and sharded zeta
// passes.
func TestVolumeTableBuildMatchesAllSubsetVolumes(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 1))
	for _, n := range []int{1, 2, 5, 9} {
		widths := make([]float64, n)
		for i := range widths {
			widths[i] = rng.Float64()
		}
		threshold := float64(n) / 3
		want, _, err := AllSubsetVolumes(widths, threshold, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		vt, err := NewVolumeTable(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, workers := range []int{1, 4} {
			if err := vt.Build(widths, threshold, workers); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for mask, w := range want {
				if math.Float64bits(vt.Vol()[mask]) != math.Float64bits(w) {
					t.Fatalf("n=%d workers=%d mask=%d: table %x, AllSubsetVolumes %x",
						n, workers, mask, math.Float64bits(vt.Vol()[mask]), math.Float64bits(w))
				}
			}
		}
	}
}

// TestVolumeTableSetCoordTracksRebuild walks 200 random coordinate updates
// and checks every subset volume against a fresh AllSubsetVolumes rebuild.
func TestVolumeTableSetCoordTracksRebuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 2))
	for _, n := range []int{2, 6, 9} {
		widths := make([]float64, n)
		for i := range widths {
			widths[i] = rng.Float64()
		}
		threshold := float64(n) / 3
		vt, err := NewVolumeTable(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := vt.Build(widths, threshold, 1); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200; step++ {
			i := rng.IntN(n)
			widths[i] = rng.Float64()
			if err := vt.SetCoord(i, widths[i]); err != nil {
				t.Fatal(err)
			}
			want, _, err := AllSubsetVolumes(widths, threshold, 1)
			if err != nil {
				t.Fatal(err)
			}
			for mask, w := range want {
				if d := math.Abs(vt.Vol()[mask] - w); d > volumeWalkBound {
					t.Fatalf("n=%d step %d mask=%d: delta %v vs rebuild %v (|diff| %g)",
						n, step, mask, vt.Vol()[mask], w, d)
				}
			}
		}
		stats := vt.Stats()
		if stats.Updates == 0 || stats.Subsets != stats.Updates*uint64(1)<<uint(n-1) {
			t.Errorf("n=%d: stats %+v inconsistent", n, stats)
		}
	}
}

// TestVolumeTableSetCoordNoOp requires an unchanged width to leave the
// table untouched without counting an update.
func TestVolumeTableSetCoordNoOp(t *testing.T) {
	vt, err := NewVolumeTable(3)
	if err != nil {
		t.Fatal(err)
	}
	widths := []float64{0.25, 0.5, 0.75}
	if err := vt.Build(widths, 1, 1); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), vt.Vol()...)
	if err := vt.SetCoord(1, 0.5); err != nil {
		t.Fatal(err)
	}
	for mask := range before {
		if math.Float64bits(vt.Vol()[mask]) != math.Float64bits(before[mask]) {
			t.Fatalf("no-op SetCoord changed mask %d", mask)
		}
	}
	if vt.Stats().Updates != 0 {
		t.Errorf("no-op SetCoord counted an update: %+v", vt.Stats())
	}
}

// TestVolumeTableErrors covers the guards: bad dimension, bad widths, use
// before Build, out-of-range coordinates.
func TestVolumeTableErrors(t *testing.T) {
	if _, err := NewVolumeTable(0); err == nil {
		t.Error("NewVolumeTable(0) accepted")
	}
	vt, err := NewVolumeTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := vt.SetCoord(0, 0.5); err == nil {
		t.Error("SetCoord before Build accepted")
	}
	if err := vt.Build([]float64{0.5}, 1, 1); err == nil {
		t.Error("Build with wrong length accepted")
	}
	if err := vt.Build([]float64{0.5, math.NaN()}, 1, 1); err == nil {
		t.Error("Build with NaN width accepted")
	}
	if err := vt.Build([]float64{0.5, -1}, 1, 1); err == nil {
		t.Error("Build with negative width accepted")
	}
	if err := vt.Build([]float64{0.5, 0.5}, math.NaN(), 1); err == nil {
		t.Error("Build with NaN threshold accepted")
	}
	if err := vt.Build([]float64{0.5, 0.5}, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := vt.SetCoord(-1, 0.5); err == nil {
		t.Error("SetCoord(-1) accepted")
	}
	if err := vt.SetCoord(2, 0.5); err == nil {
		t.Error("SetCoord out of range accepted")
	}
	if err := vt.SetCoord(0, math.NaN()); err == nil {
		t.Error("SetCoord NaN accepted")
	}
	if err := vt.SetCoord(0, math.Inf(1)); err == nil {
		t.Error("SetCoord +Inf accepted")
	}
}
