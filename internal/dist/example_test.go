package dist_test

import (
	"fmt"
	"math/big"

	"repro/internal/dist"
)

// ExampleIrwinHall evaluates Corollary 2.6: the probability that the sum
// of three unit uniforms stays below 1 is the volume of the unit simplex.
func ExampleIrwinHall() {
	ih, err := dist.NewIrwinHall(3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("F_3(1.0) = %.6f\n", ih.CDF(1.0))
	fmt.Printf("F_3(1.5) = %.6f (symmetry about the mean)\n", ih.CDF(1.5))
	// Output:
	// F_3(1.0) = 0.166667
	// F_3(1.5) = 0.500000 (symmetry about the mean)
}

// ExampleIrwinHallCDFRat evaluates the same CDF exactly: F_3(1) = 1/6.
func ExampleIrwinHallCDFRat() {
	v, err := dist.IrwinHallCDFRat(3, big.NewRat(1, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println("F_3(1) =", v.RatString())
	// Output:
	// F_3(1) = 1/6
}

// ExampleUniformSum evaluates Lemma 2.4 for asymmetric interval widths:
// P(x + y ≤ 1) with x ~ U[0,1], y ~ U[0,2] is 1/4.
func ExampleUniformSum() {
	u, err := dist.NewUniformSum([]float64{1, 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(x+y ≤ 1) = %.4f\n", u.CDF(1))
	fmt.Printf("density at the mode: f(1.5) = %.4f\n", u.PDF(1.5))
	// Output:
	// P(x+y ≤ 1) = 0.2500
	// density at the mode: f(1.5) = 0.5000
}

// ExampleShiftedUniformSum evaluates Lemma 2.7: the conditional load of a
// bin that received two inputs known to exceed their thresholds.
func ExampleShiftedUniformSum() {
	s, err := dist.NewShiftedUniformSum([]float64{0.622, 0.622})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(load ≤ 1.5 | both above 0.622) = %.4f\n", s.CDF(1.5))
	// Output:
	// P(load ≤ 1.5 | both above 0.622) = 0.2293
}
