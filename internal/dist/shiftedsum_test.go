package dist

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewShiftedUniformSumValidation(t *testing.T) {
	if _, err := NewShiftedUniformSum(nil); err == nil {
		t.Error("empty lowers: expected error")
	}
	if _, err := NewShiftedUniformSum([]float64{0.5, 1.0}); err == nil {
		t.Error("lower bound 1: expected error")
	}
	if _, err := NewShiftedUniformSum([]float64{-0.1}); err == nil {
		t.Error("negative lower bound: expected error")
	}
	if _, err := NewShiftedUniformSum([]float64{math.NaN()}); err == nil {
		t.Error("NaN lower bound: expected error")
	}
	if _, err := NewShiftedUniformSum(make([]float64, MaxSubsetDim+1)); err == nil {
		t.Error("too many summands: expected error")
	}
}

func TestShiftedSumAccessorsAndMoments(t *testing.T) {
	s, err := NewShiftedUniformSum([]float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 {
		t.Errorf("N = %d, want 2", s.N())
	}
	lo, hi := s.Support()
	if math.Abs(lo-0.8) > 1e-15 || hi != 2 {
		t.Errorf("support = [%v, %v], want [0.8, 2]", lo, hi)
	}
	if math.Abs(s.Mean()-(0.6+0.8)) > 1e-15 {
		t.Errorf("mean = %v, want 1.4", s.Mean())
	}
	wantVar := (0.64 + 0.16) / 12
	if math.Abs(s.Variance()-wantVar) > 1e-15 {
		t.Errorf("variance = %v, want %v", s.Variance(), wantVar)
	}
	ls := s.Lowers()
	ls[0] = 9
	if s.lowers[0] == 9 {
		t.Error("Lowers() leaked internal slice")
	}
}

func TestShiftedSumZeroLowersMatchesIrwinHall(t *testing.T) {
	for m := 1; m <= 6; m++ {
		s, err := NewShiftedUniformSum(make([]float64, m))
		if err != nil {
			t.Fatal(err)
		}
		ih, err := NewIrwinHall(m)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0.05; tt < float64(m); tt += 0.17 {
			if d := math.Abs(s.CDF(tt) - ih.CDF(tt)); d > 1e-9 {
				t.Errorf("m=%d t=%v: shifted %v vs IrwinHall %v", m, tt, s.CDF(tt), ih.CDF(tt))
			}
		}
	}
}

func TestShiftedSumCDFMatchesComplement(t *testing.T) {
	s, err := NewShiftedUniformSum([]float64{0.3, 0.6, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1.2; tt <= 3.0; tt += 0.09 {
		direct := s.CDF(tt)
		viaComp, err := s.CDFViaComplement(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct-viaComp) > 1e-10 {
			t.Errorf("t=%v: Lemma 2.7 direct %v vs complement %v", tt, direct, viaComp)
		}
	}
}

func TestShiftedSumCDFBoundaries(t *testing.T) {
	s, err := NewShiftedUniformSum([]float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.CDF(0.7) != 0 {
		t.Error("CDF below Σπ should be 0")
	}
	if s.CDF(2) != 1 || s.CDF(3) != 1 {
		t.Error("CDF at or beyond m should be 1")
	}
}

func TestShiftedSumSingleVariable(t *testing.T) {
	// One variable uniform on [0.4, 1]: F(t) = (t - 0.4)/0.6.
	s, err := NewShiftedUniformSum([]float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0.45; tt < 1; tt += 0.05 {
		want := (tt - 0.4) / 0.6
		if math.Abs(s.CDF(tt)-want) > 1e-12 {
			t.Errorf("F(%v) = %v, want %v", tt, s.CDF(tt), want)
		}
	}
}

func TestShiftedSumCDFMonotoneProperty(t *testing.T) {
	f := func(l1, l2 uint8, aRaw, bRaw uint16) bool {
		lowers := []float64{float64(l1%200) / 256, float64(l2%200) / 256}
		s, err := NewShiftedUniformSum(lowers)
		if err != nil {
			return false
		}
		lo, hi := s.Support()
		a := lo + float64(aRaw)/65535*(hi-lo)
		b := lo + float64(bRaw)/65535*(hi-lo)
		if a > b {
			a, b = b, a
		}
		return s.CDF(a) <= s.CDF(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftedSumSampleMatchesCDF(t *testing.T) {
	s, err := NewShiftedUniformSum([]float64{0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 34))
	const n = 100000
	threshold := 1.4
	want := s.CDF(threshold)
	hits := 0
	for i := 0; i < n; i++ {
		v, err := s.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0.8 || v > 2 {
			t.Fatalf("sample %v outside support [0.8, 2]", v)
		}
		if v <= threshold {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.006 {
		t.Errorf("empirical CDF(1.4) = %v, analytic %v", got, want)
	}
	if _, err := s.Sample(nil); err == nil {
		t.Error("nil rng: expected error")
	}
}

func TestShiftedCDFRatMatchesFloat(t *testing.T) {
	lowers := []*big.Rat{big.NewRat(1, 4), big.NewRat(1, 2), big.NewRat(2, 5)}
	lf := make([]float64, len(lowers))
	for i, l := range lowers {
		lf[i], _ = l.Float64()
	}
	s, err := NewShiftedUniformSum(lf)
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(5); num <= 12; num++ {
		tr := big.NewRat(num, 4)
		tf, _ := tr.Float64()
		exact, err := ShiftedCDFRat(lowers, tr)
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := exact.Float64()
		if math.Abs(s.CDF(tf)-ef) > 1e-10 {
			t.Errorf("t=%v: float %v vs exact %v", tf, s.CDF(tf), ef)
		}
	}
}

func TestShiftedCDFRatValidation(t *testing.T) {
	one := big.NewRat(1, 1)
	half := big.NewRat(1, 2)
	if _, err := ShiftedCDFRat(nil, half); err == nil {
		t.Error("empty lowers: expected error")
	}
	if _, err := ShiftedCDFRat([]*big.Rat{half}, nil); err == nil {
		t.Error("nil threshold: expected error")
	}
	if _, err := ShiftedCDFRat([]*big.Rat{one}, half); err == nil {
		t.Error("lower bound 1: expected error")
	}
	if _, err := ShiftedCDFRat([]*big.Rat{nil}, half); err == nil {
		t.Error("nil lower: expected error")
	}
	if _, err := ShiftedCDFRat([]*big.Rat{big.NewRat(-1, 4)}, half); err == nil {
		t.Error("negative lower: expected error")
	}
}
