package dist

import (
	"math"
	"math/bits"
	"testing"
)

// TestAllSubsetVolumesMatchesCDF pins every table entry against the
// independently-derived Lemma 2.4 CDF of the same subset (vol = CDF · Πw).
func TestAllSubsetVolumesMatchesCDF(t *testing.T) {
	widths := []float64{0.5, 1, 0.75, 2, 0.25, 1.5}
	n := len(widths)
	for _, thr := range []float64{0.2, 1, 2.5, 7} {
		vol, stats, err := AllSubsetVolumes(widths, thr, 1)
		if err != nil {
			t.Fatalf("AllSubsetVolumes(t=%v): %v", thr, err)
		}
		if stats.Subsets != 1<<uint(n) {
			t.Fatalf("stats.Subsets = %d, want %d", stats.Subsets, 1<<uint(n))
		}
		if stats.Incremental == 0 {
			t.Fatal("stats.Incremental = 0, want incremental work recorded")
		}
		for mask := uint64(0); mask < uint64(len(vol)); mask++ {
			var sub []float64
			prod := 1.0
			for i, w := range widths {
				if mask&(1<<uint(i)) != 0 {
					sub = append(sub, w)
					prod *= w
				}
			}
			want := prod
			if len(sub) > 0 {
				u, err := NewUniformSum(sub)
				if err != nil {
					t.Fatalf("NewUniformSum: %v", err)
				}
				want = u.CDF(thr) * prod
			} else if thr < 0 {
				want = 0
			}
			if math.Abs(vol[mask]-want) > 1e-11*(1+prod) {
				t.Fatalf("t=%v vol[%b] = %v, want %v", thr, mask, vol[mask], want)
			}
		}
	}
}

// TestAllSubsetVolumesZeroWidth checks that zero widths flatten their
// subsets' volumes to zero while leaving disjoint subsets untouched.
func TestAllSubsetVolumesZeroWidth(t *testing.T) {
	vol, _, err := AllSubsetVolumes([]float64{0.5, 0, 1}, 1, 1)
	if err != nil {
		t.Fatalf("AllSubsetVolumes: %v", err)
	}
	for mask := uint64(0); mask < 8; mask++ {
		if mask&2 != 0 {
			if vol[mask] != 0 {
				t.Fatalf("vol[%b] = %v, want 0 for a zero-width subset", mask, vol[mask])
			}
		} else if vol[mask] <= 0 {
			t.Fatalf("vol[%b] = %v, want positive", mask, vol[mask])
		}
	}
	// {0, 2}: Vol{0≤y0≤0.5, 0≤y2≤1, y0+y2 ≤ 1} = 0.5·1 − 0.5²/2 = 0.375.
	if math.Abs(vol[5]-0.375) > 1e-12 {
		t.Fatalf("vol[101] = %v, want 0.375", vol[5])
	}
}

// TestAllSubsetVolumesWorkersBitIdentical requires the sharded zeta passes
// to reproduce the serial bits exactly.
func TestAllSubsetVolumesWorkersBitIdentical(t *testing.T) {
	widths := make([]float64, 12)
	for i := range widths {
		widths[i] = 0.25 + 0.125*float64(i%5)
	}
	ref, _, err := AllSubsetVolumes(widths, 2.5, 1)
	if err != nil {
		t.Fatalf("AllSubsetVolumes: %v", err)
	}
	for _, workers := range []int{2, 4} {
		got, _, err := AllSubsetVolumes(widths, 2.5, workers)
		if err != nil {
			t.Fatalf("AllSubsetVolumes(workers=%d): %v", workers, err)
		}
		for mask := range got {
			if math.Float64bits(got[mask]) != math.Float64bits(ref[mask]) {
				t.Fatalf("workers=%d: vol[%b] differs from serial (%v vs %v)",
					workers, mask, got[mask], ref[mask])
			}
		}
	}
}

// TestAllSubsetVolumesRejects covers the validation paths.
func TestAllSubsetVolumesRejects(t *testing.T) {
	if _, _, err := AllSubsetVolumes([]float64{-1}, 1, 1); err == nil {
		t.Fatal("accepted a negative width")
	}
	if _, _, err := AllSubsetVolumes([]float64{math.NaN()}, 1, 1); err == nil {
		t.Fatal("accepted a NaN width")
	}
	if _, _, err := AllSubsetVolumes([]float64{1}, math.Inf(1), 1); err == nil {
		t.Fatal("accepted an infinite threshold")
	}
	if _, _, err := AllSubsetVolumes(make([]float64, 40), 1, 1); err == nil {
		t.Fatal("accepted an oversized dimension")
	}
}

// TestAllSubsetVolumesPopcountCoverage sanity-checks that every
// cardinality layer was filled (no pass skipped).
func TestAllSubsetVolumesPopcountCoverage(t *testing.T) {
	widths := []float64{0.5, 0.5, 0.5, 0.5}
	vol, _, err := AllSubsetVolumes(widths, 10, 1) // t beyond support: every CDF is 1
	if err != nil {
		t.Fatalf("AllSubsetVolumes: %v", err)
	}
	for mask := uint64(0); mask < 16; mask++ {
		want := math.Pow(0.5, float64(bits.OnesCount64(mask)))
		if math.Abs(vol[mask]-want) > 1e-12 {
			t.Fatalf("vol[%b] = %v, want full box %v", mask, vol[mask], want)
		}
	}
}
