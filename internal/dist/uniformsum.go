package dist

import (
	"fmt"
	"math"
	"math/big"
	"math/rand/v2"

	"repro/internal/combin"
)

// MaxSubsetDim bounds the number of summands for the subset-based
// (asymmetric) inclusion-exclusion formulas; their cost is O(2^m).
const MaxSubsetDim = 30

// UniformSum is the distribution of Σ_{i=1..m} x_i where the x_i are
// independent and x_i ~ U[0, π_i] (Lemmas 2.4 and 2.5 of the paper).
type UniformSum struct {
	widths []float64
}

// NewUniformSum constructs the distribution of a sum of independent
// uniforms on [0, π_i]. All widths must be strictly positive and finite,
// and at most MaxSubsetDim widths are supported.
func NewUniformSum(widths []float64) (*UniformSum, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("dist: uniform sum needs at least one summand")
	}
	if len(widths) > MaxSubsetDim {
		return nil, fmt.Errorf("dist: uniform sum supports at most %d summands, got %d", MaxSubsetDim, len(widths))
	}
	cp := make([]float64, len(widths))
	for i, w := range widths {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("dist: width %d = %v must be strictly positive and finite", i, w)
		}
		cp[i] = w
	}
	return &UniformSum{widths: cp}, nil
}

// N returns the number of summands m.
func (u *UniformSum) N() int { return len(u.widths) }

// Widths returns a copy of the interval widths π_i.
func (u *UniformSum) Widths() []float64 {
	out := make([]float64, len(u.widths))
	copy(out, u.widths)
	return out
}

// Support returns the support [0, Σ π_i] of the sum.
func (u *UniformSum) Support() (lo, hi float64) {
	var s float64
	for _, w := range u.widths {
		s += w
	}
	return 0, s
}

// Mean returns E[Σ x_i] = Σ π_i / 2.
func (u *UniformSum) Mean() float64 {
	var s float64
	for _, w := range u.widths {
		s += w / 2
	}
	return s
}

// Variance returns Var[Σ x_i] = Σ π_i² / 12.
func (u *UniformSum) Variance() float64 {
	var s float64
	for _, w := range u.widths {
		s += w * w / 12
	}
	return s
}

// CDF evaluates Lemma 2.4:
//
//	F(t) = 1/(m! Π π_l) · Σ_{I : Σ_{l∈I} π_l < t} (-1)^|I| (t - Σ_{l∈I} π_l)^m.
//
// Values are clamped to [0, 1]: F(t) = 0 for t ≤ 0 and 1 beyond the
// support.
func (u *UniformSum) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if _, hi := u.Support(); t >= hi {
		return 1
	}
	m := len(u.widths)
	var acc combin.Accumulator
	var running float64
	// Gray-code walk keeps the subset weight sum incremental.
	_ = combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running += u.widths[flipped]
			} else {
				running -= u.widths[flipped]
			}
		}
		rem := t - running
		if rem <= 0 {
			return true
		}
		v := math.Pow(rem, float64(m))
		if combin.Popcount(mask)%2 == 1 {
			v = -v
		}
		acc.Add(v)
		return true
	})
	norm := float64(1)
	for i, w := range u.widths {
		norm *= w * float64(i+1)
	}
	return clamp01(acc.Sum() / norm)
}

// PDF evaluates Lemma 2.5, the density of the sum:
//
//	f(t) = 1/((m-1)! Π π_l) · Σ_{I : Σ_{l∈I} π_l < t} (-1)^|I| (t - Σ_{l∈I} π_l)^(m-1).
//
// The density is 0 outside the open support.
func (u *UniformSum) PDF(t float64) float64 {
	_, hi := u.Support()
	if t <= 0 || t >= hi {
		return 0
	}
	m := len(u.widths)
	var acc combin.Accumulator
	var running float64
	_ = combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running += u.widths[flipped]
			} else {
				running -= u.widths[flipped]
			}
		}
		rem := t - running
		if rem <= 0 {
			return true
		}
		v := math.Pow(rem, float64(m-1))
		if combin.Popcount(mask)%2 == 1 {
			v = -v
		}
		acc.Add(v)
		return true
	})
	norm := float64(1)
	for i, w := range u.widths {
		norm *= w
		if i >= 1 {
			norm *= float64(i)
		}
	}
	v := acc.Sum() / norm
	if v < 0 {
		return 0
	}
	return v
}

// Sample draws one value of the sum using the given random source.
// It returns an error if rng is nil.
func (u *UniformSum) Sample(rng *rand.Rand) (float64, error) {
	if rng == nil {
		return 0, fmt.Errorf("dist: nil random source")
	}
	var s float64
	for _, w := range u.widths {
		s += rng.Float64() * w
	}
	return s, nil
}

// CDFRat evaluates Lemma 2.4 exactly for rational widths and threshold.
// It returns an error on invalid widths, threshold, or dimension.
func CDFRat(widths []*big.Rat, t *big.Rat) (*big.Rat, error) {
	m := len(widths)
	if m == 0 {
		return nil, fmt.Errorf("dist: uniform sum needs at least one summand")
	}
	if m > 24 {
		return nil, fmt.Errorf("dist: exact rational CDF supports at most 24 summands, got %d", m)
	}
	if t == nil {
		return nil, fmt.Errorf("dist: nil threshold")
	}
	support := new(big.Rat)
	for i, w := range widths {
		if w == nil || w.Sign() <= 0 {
			return nil, fmt.Errorf("dist: width %d must be strictly positive", i)
		}
		support.Add(support, w)
	}
	if t.Sign() <= 0 {
		return new(big.Rat), nil
	}
	if t.Cmp(support) >= 0 {
		return big.NewRat(1, 1), nil
	}
	total := new(big.Rat)
	running := new(big.Rat)
	rem := new(big.Rat)
	_ = combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running.Add(running, widths[flipped])
			} else {
				running.Sub(running, widths[flipped])
			}
		}
		rem.Sub(t, running)
		if rem.Sign() <= 0 {
			return true
		}
		term := ratPow(rem, m)
		if combin.Popcount(mask)%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
		return true
	})
	norm := big.NewRat(1, 1)
	for i, w := range widths {
		norm.Mul(norm, w)
		norm.Mul(norm, big.NewRat(int64(i+1), 1))
	}
	return total.Quo(total, norm), nil
}

func ratPow(r *big.Rat, n int) *big.Rat {
	out := big.NewRat(1, 1)
	base := new(big.Rat).Set(r)
	for n > 0 {
		if n&1 == 1 {
			out.Mul(out, base)
		}
		base.Mul(base, base)
		n >>= 1
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
