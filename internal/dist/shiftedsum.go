package dist

import (
	"fmt"
	"math"
	"math/big"
	"math/rand/v2"

	"repro/internal/combin"
)

// ShiftedUniformSum is the distribution of Σ_{i=1..m} x_i where the x_i
// are independent and x_i ~ U[π_i, 1] with 0 ≤ π_i < 1 (Lemma 2.7 of the
// paper). Under a single-threshold decision algorithm this is exactly the
// conditional distribution of the load placed in the "high" bin.
type ShiftedUniformSum struct {
	lowers []float64
}

// NewShiftedUniformSum constructs the distribution of a sum of independent
// uniforms on [π_i, 1]. All lower bounds must lie in [0, 1).
func NewShiftedUniformSum(lowers []float64) (*ShiftedUniformSum, error) {
	if len(lowers) == 0 {
		return nil, fmt.Errorf("dist: shifted uniform sum needs at least one summand")
	}
	if len(lowers) > MaxSubsetDim {
		return nil, fmt.Errorf("dist: shifted uniform sum supports at most %d summands, got %d", MaxSubsetDim, len(lowers))
	}
	cp := make([]float64, len(lowers))
	for i, l := range lowers {
		if l < 0 || l >= 1 || math.IsNaN(l) {
			return nil, fmt.Errorf("dist: lower bound %d = %v must be in [0, 1)", i, l)
		}
		cp[i] = l
	}
	return &ShiftedUniformSum{lowers: cp}, nil
}

// N returns the number of summands m.
func (s *ShiftedUniformSum) N() int { return len(s.lowers) }

// Lowers returns a copy of the lower bounds π_i.
func (s *ShiftedUniformSum) Lowers() []float64 {
	out := make([]float64, len(s.lowers))
	copy(out, s.lowers)
	return out
}

// Support returns [Σ π_i, m].
func (s *ShiftedUniformSum) Support() (lo, hi float64) {
	var sum float64
	for _, l := range s.lowers {
		sum += l
	}
	return sum, float64(len(s.lowers))
}

// Mean returns Σ (1 + π_i)/2.
func (s *ShiftedUniformSum) Mean() float64 {
	var sum float64
	for _, l := range s.lowers {
		sum += (1 + l) / 2
	}
	return sum
}

// Variance returns Σ (1 - π_i)²/12.
func (s *ShiftedUniformSum) Variance() float64 {
	var sum float64
	for _, l := range s.lowers {
		sum += (1 - l) * (1 - l) / 12
	}
	return sum
}

// CDF evaluates Lemma 2.7:
//
//	F(t) = 1 - 1/(m! Π(1-π_l)) Σ_{I : |I| < m - t + Σ_{l∈I} π_l}
//	        (-1)^|I| (m - t - |I| + Σ_{l∈I} π_l)^m,
//
// clamped to [0, 1].
func (s *ShiftedUniformSum) CDF(t float64) float64 {
	lo, hi := s.Support()
	if t <= lo {
		return 0
	}
	if t >= hi {
		return 1
	}
	m := len(s.lowers)
	mt := float64(m) - t
	var acc combin.Accumulator
	var running float64
	_ = combin.ForEachSubsetGray(m, func(mask uint64, flipped int, added bool) bool {
		if flipped >= 0 {
			if added {
				running += s.lowers[flipped]
			} else {
				running -= s.lowers[flipped]
			}
		}
		rem := mt - float64(combin.Popcount(mask)) + running
		if rem <= 0 {
			return true
		}
		v := math.Pow(rem, float64(m))
		if combin.Popcount(mask)%2 == 1 {
			v = -v
		}
		acc.Add(v)
		return true
	})
	norm := float64(1)
	for i, l := range s.lowers {
		norm *= (1 - l) * float64(i+1)
	}
	return clamp01(1 - acc.Sum()/norm)
}

// CDFViaComplement evaluates the same CDF through the substitution
// x'_i = 1 - x_i used in the paper's proof of Lemma 2.7:
// P(Σ x_i ≤ t) = 1 - P(Σ x'_i ≤ m - t) with x'_i ~ U[0, 1 - π_i].
// It exists as an independent implementation for cross-validation.
func (s *ShiftedUniformSum) CDFViaComplement(t float64) (float64, error) {
	widths := make([]float64, len(s.lowers))
	for i, l := range s.lowers {
		widths[i] = 1 - l
	}
	comp, err := NewUniformSum(widths)
	if err != nil {
		return 0, fmt.Errorf("dist: building complement distribution: %w", err)
	}
	return clamp01(1 - comp.CDF(float64(len(s.lowers))-t)), nil
}

// Sample draws one value of the sum. It returns an error if rng is nil.
func (s *ShiftedUniformSum) Sample(rng *rand.Rand) (float64, error) {
	if rng == nil {
		return 0, fmt.Errorf("dist: nil random source")
	}
	var sum float64
	for _, l := range s.lowers {
		sum += l + rng.Float64()*(1-l)
	}
	return sum, nil
}

// ShiftedCDFRat evaluates Lemma 2.7 exactly for rational lower bounds and
// threshold, via the complement identity and the exact Lemma 2.4 kernel.
func ShiftedCDFRat(lowers []*big.Rat, t *big.Rat) (*big.Rat, error) {
	m := len(lowers)
	if m == 0 {
		return nil, fmt.Errorf("dist: shifted uniform sum needs at least one summand")
	}
	if t == nil {
		return nil, fmt.Errorf("dist: nil threshold")
	}
	one := big.NewRat(1, 1)
	widths := make([]*big.Rat, m)
	for i, l := range lowers {
		if l == nil || l.Sign() < 0 || l.Cmp(one) >= 0 {
			return nil, fmt.Errorf("dist: lower bound %d must be in [0, 1)", i)
		}
		widths[i] = new(big.Rat).Sub(one, l)
	}
	comp := new(big.Rat).SetInt64(int64(m))
	comp.Sub(comp, t)
	c, err := CDFRat(widths, comp)
	if err != nil {
		return nil, err
	}
	return new(big.Rat).Sub(one, c), nil
}
